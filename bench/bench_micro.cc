// Microbenchmarks (google-benchmark) for the hot paths of the substrate:
// fabric send→deliver round trips (with allocations/op), SHA-1 piggyback
// hashing, event-queue throughput, greedy next-hop selection, topology path
// queries, and the deterministic RNG.
#include <benchmark/benchmark.h>

#include "bench/alloc_counter.h"
#include "common/rng.h"
#include "common/sha1.h"
#include "net/network.h"
#include "net/topology.h"
#include "overlay/routing_table.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "transport/tcp_model.h"

namespace fuse {
namespace {

// One data-message round trip through SimFabric on a warm connection: send,
// departure, delivery, ack callback. Reports allocations per operation — the
// fast path (pooled send state, PayloadBuf payloads, dense tables) must stay
// at 0 once warm.
void BM_FabricSendDeliver(benchmark::State& state) {
  TopologyConfig tcfg;
  tcfg.num_as = 40;
  Simulation sim(7);
  SimNetwork net{Topology::Generate(tcfg, sim.rng())};
  SimFabric fabric(sim, net, CostModel::Simulator());
  const HostId a = net.AddHost(sim.rng());
  const HostId b = net.AddHost(sim.rng());
  uint64_t received = 0;
  fabric.TransportFor(b)->RegisterHandler(msgtype::kTest,
                                          [&received](const WireMessage&) { ++received; });
  const uint8_t payload_bytes[28] = {1, 2, 3};
  auto round_trip = [&] {
    WireMessage m;
    m.to = b;
    m.type = msgtype::kTest;
    m.category = MsgCategory::kApp;
    m.payload = PayloadBuf(payload_bytes, sizeof(payload_bytes));
    bool acked = false;
    fabric.TransportFor(a)->Send(std::move(m), [&acked](const Status&) { acked = true; });
    sim.RunAll();
    benchmark::DoNotOptimize(acked);
  };
  for (int warm = 0; warm < 64; ++warm) {
    round_trip();  // warm the connection, pools, and scratch capacities
  }
  const uint64_t allocs_before = alloc_counter::Read();
  uint64_t iters = 0;
  for (auto _ : state) {
    round_trip();
    ++iters;
  }
  const uint64_t allocs = alloc_counter::Read() - allocs_before;
  state.counters["allocs/op"] =
      benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(iters));
  state.SetItemsProcessed(static_cast<int64_t>(iters));
  benchmark::DoNotOptimize(received);
}
BENCHMARK(BM_FabricSendDeliver);

void BM_Sha1PiggybackHash(benchmark::State& state) {
  // Typical payload: a handful of 16-byte FUSE ids.
  const size_t ids = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> words(ids * 2, 0x0123456789abcdefULL);
  for (auto _ : state) {
    Sha1 h;
    for (uint64_t w : words) {
      h.UpdateU64(w);
    }
    Sha1Digest d = h.Finish();
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * ids * 16));
}
BENCHMARK(BM_Sha1PiggybackHash)->Arg(1)->Arg(8)->Arg(64);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.ScheduleAfter(Duration::Micros(i % 97), [&sink] { ++sink; });
    }
    q.RunAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_RoutingTableNextHop(benchmark::State& state) {
  OverlayParams params;
  RoutingTable table("node00500", params);
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "node%05d", static_cast<int>(rng.UniformInt(0, 999)));
    table.OfferLeaf(NodeRef{name, HostId(static_cast<uint64_t>(i))});
  }
  for (int h = 1; h < 6; ++h) {
    char name[16];
    std::snprintf(name, sizeof(name), "node%05d", static_cast<int>(rng.UniformInt(0, 999)));
    table.SetLevel(h, true, NodeRef{name, HostId(static_cast<uint64_t>(100 + h))});
  }
  int i = 0;
  for (auto _ : state) {
    char dest[16];
    std::snprintf(dest, sizeof(dest), "node%05d", (i++ * 37) % 1000);
    auto hop = table.NextHopTowards(dest);
    benchmark::DoNotOptimize(hop);
  }
}
BENCHMARK(BM_RoutingTableNextHop);

void BM_TopologyPathQuery(benchmark::State& state) {
  Rng rng(2);
  const Topology topo = Topology::Generate(TopologyConfig{}, rng);
  Rng pick(3);
  for (auto _ : state) {
    const RouterId a = topo.RandomRouter(pick);
    const RouterId b = topo.RandomRouter(pick);
    auto p = topo.GetPath(a, b);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_TopologyPathQuery);

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformInt(0, 999));
  }
}
BENCHMARK(BM_RngUniformInt);

}  // namespace
}  // namespace fuse

BENCHMARK_MAIN();
