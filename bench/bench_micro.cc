// Microbenchmarks (google-benchmark) for the hot paths of the substrate:
// SHA-1 piggyback hashing, event-queue throughput, greedy next-hop selection,
// topology path queries, and the deterministic RNG.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/sha1.h"
#include "net/topology.h"
#include "overlay/routing_table.h"
#include "sim/event_queue.h"

namespace fuse {
namespace {

void BM_Sha1PiggybackHash(benchmark::State& state) {
  // Typical payload: a handful of 16-byte FUSE ids.
  const size_t ids = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> words(ids * 2, 0x0123456789abcdefULL);
  for (auto _ : state) {
    Sha1 h;
    for (uint64_t w : words) {
      h.UpdateU64(w);
    }
    Sha1Digest d = h.Finish();
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * ids * 16));
}
BENCHMARK(BM_Sha1PiggybackHash)->Arg(1)->Arg(8)->Arg(64);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.ScheduleAfter(Duration::Micros(i % 97), [&sink] { ++sink; });
    }
    q.RunAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_RoutingTableNextHop(benchmark::State& state) {
  OverlayParams params;
  RoutingTable table("node00500", params);
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "node%05d", static_cast<int>(rng.UniformInt(0, 999)));
    table.OfferLeaf(NodeRef{name, HostId(static_cast<uint64_t>(i))});
  }
  for (int h = 1; h < 6; ++h) {
    char name[16];
    std::snprintf(name, sizeof(name), "node%05d", static_cast<int>(rng.UniformInt(0, 999)));
    table.SetLevel(h, true, NodeRef{name, HostId(static_cast<uint64_t>(100 + h))});
  }
  int i = 0;
  for (auto _ : state) {
    char dest[16];
    std::snprintf(dest, sizeof(dest), "node%05d", (i++ * 37) % 1000);
    auto hop = table.NextHopTowards(dest);
    benchmark::DoNotOptimize(hop);
  }
}
BENCHMARK(BM_RoutingTableNextHop);

void BM_TopologyPathQuery(benchmark::State& state) {
  Rng rng(2);
  const Topology topo = Topology::Generate(TopologyConfig{}, rng);
  Rng pick(3);
  for (auto _ : state) {
    const RouterId a = topo.RandomRouter(pick);
    const RouterId b = topo.RandomRouter(pick);
    auto p = topo.GetPath(a, b);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_TopologyPathQuery);

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformInt(0, 999));
  }
}
BENCHMARK(BM_RngUniformInt);

}  // namespace
}  // namespace fuse

BENCHMARK_MAIN();
