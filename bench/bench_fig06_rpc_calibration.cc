// Figure 6: RPC latency calibration.
//
// 2400 RPC exchanges between random node pairs. On the "cluster" (connection
// setup + messaging overheads) the first RPC between a pair pays TCP connect;
// the second travels a cached connection and should closely track the
// "simulator" (no setup, no overheads) — the paper's validation that both of
// its platforms model the same Mercator topology.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "net/network.h"
#include "rpc/rpc.h"
#include "sim/simulation.h"
#include "transport/tcp_model.h"

namespace fuse {
namespace {

struct RpcRun {
  Summary first_ms;
  Summary second_ms;
};

RpcRun RunRpcs(CostModel cost, uint64_t seed, int pairs, bool back_to_back) {
  Simulation sim(seed);
  SimNetwork net{Topology::Generate(TopologyConfig{}, sim.rng())};
  SimFabric fabric(sim, net, cost);
  const int n = 400;
  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<RpcNode>> rpc;
  for (int i = 0; i < n; ++i) {
    hosts.push_back(net.AddHost(sim.rng()));
  }
  for (int i = 0; i < n; ++i) {
    rpc.push_back(std::make_unique<RpcNode>(fabric.TransportFor(hosts[i])));
    rpc.back()->Handle(1, [](HostId, const std::vector<uint8_t>& req) { return req; });
  }

  RpcRun out;
  for (int k = 0; k < pairs; ++k) {
    const size_t a = static_cast<size_t>(sim.rng().UniformInt(0, n - 1));
    size_t b = a;
    while (b == a) {
      b = static_cast<size_t>(sim.rng().UniformInt(0, n - 1));
    }
    for (int round = 0; round < (back_to_back ? 2 : 1); ++round) {
      bool done = false;
      const TimePoint t0 = sim.Now();
      TimePoint t1 = t0;
      rpc[a]->Call(hosts[b], 1, {1, 2, 3, 4}, Duration::Minutes(1),
                   [&](const Status& s, const std::vector<uint8_t>&) {
                     if (s.ok()) {
                       t1 = sim.Now();
                     }
                     done = true;
                   });
      sim.RunUntilCondition([&] { return done; }, sim.Now() + Duration::Minutes(2));
      const double ms = (t1 - t0).ToMillisF();
      if (ms > 0) {
        (round == 0 ? out.first_ms : out.second_ms).Add(ms);
      }
      // New pairs must not reuse stale clock alignment; small gap.
      sim.RunFor(Duration::Millis(50));
    }
  }
  return out;
}

}  // namespace
}  // namespace fuse

int main() {
  using namespace fuse;
  using namespace fuse::bench;
  Header("Figure 6: RPC latency CDFs (cluster 1st / cluster 2nd / simulator)",
         "paper section 7.2, Figure 6");

  const int kPairs = 1200;  // 2400 RPCs on the cluster (two per pair)
  RpcRun cluster = RunRpcs(CostModel::Cluster(), 6001, kPairs, /*back_to_back=*/true);
  RpcRun simulator = RunRpcs(CostModel::Simulator(), 6001, kPairs, /*back_to_back=*/false);

  std::printf("\nRPC time in milliseconds:\n");
  PrintPercentileRow("1st cluster RPC", cluster.first_ms);
  PrintPercentileRow("2nd cluster RPC", cluster.second_ms);
  PrintPercentileRow("simulator RPC", simulator.first_ms);

  std::printf("\nCDF (fraction of samples at or below each latency):\n");
  std::printf("  %10s %12s %12s %12s\n", "ms", "1st-cluster", "2nd-cluster", "simulator");
  for (double ms : {50.0, 100.0, 130.0, 160.0, 200.0, 300.0, 500.0, 1000.0, 2000.0}) {
    std::printf("  %10.0f %12.3f %12.3f %12.3f\n", ms, cluster.first_ms.FractionAtMost(ms),
                cluster.second_ms.FractionAtMost(ms), simulator.first_ms.FractionAtMost(ms));
  }

  const double ratio = cluster.first_ms.Median() / simulator.first_ms.Median();
  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  median simulator RPC            : %7.1f ms   (paper: ~130 ms)\n",
              simulator.first_ms.Median());
  std::printf("  2nd-cluster tracks simulator    : %7.1f vs %.1f ms\n",
              cluster.second_ms.Median(), simulator.first_ms.Median());
  std::printf("  1st-cluster / simulator median  : %7.2fx      (paper: ~2x, connect cost)\n",
              ratio);
  return 0;
}
