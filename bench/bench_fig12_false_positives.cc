// Figure 12: FUSE group failures (false positives) caused by packet loss.
//
// 20 groups of each size in {2,4,8,16,32}; loss is then enabled and the
// system runs for 30 minutes. The paper observed no failures at 0% and at
// 5.8% median route loss (TCP retransmission masks them) and growing failure
// fractions — increasing with group size — at 11.4% and 21.5%, where TCP
// connections themselves start to break.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"

namespace {

std::map<int, std::pair<int, int>> RunLoss(double per_link_loss, uint64_t seed) {
  using namespace fuse;
  using namespace fuse::bench;
  SimCluster cluster(PaperClusterConfig(seed, /*cluster_mode=*/true));
  cluster.Build();

  std::map<int, std::pair<int, int>> failed_total;  // size -> (failed, total)
  struct Watch {
    int size;
    bool failed = false;
  };
  std::vector<std::unique_ptr<Watch>> watches;
  for (const int size : {2, 4, 8, 16, 32}) {
    for (int g = 0; g < 20; ++g) {
      const auto members = cluster.PickLiveNodes(static_cast<size_t>(size));
      Status status;
      const FuseId id = CreateGroupTimed(cluster, members[0], members, &status, nullptr);
      if (!status.ok()) {
        continue;
      }
      failed_total[size].second++;
      watches.push_back(std::make_unique<Watch>());
      Watch* w = watches.back().get();
      w->size = size;
      cluster.node(members[0]).fuse()->RegisterFailureHandler(id, [w](FuseId) {
        w->failed = true;
      });
    }
  }
  cluster.sim().RunFor(Duration::Minutes(2));  // settle before enabling loss
  cluster.net().SetPerLinkLossRate(per_link_loss);
  cluster.sim().RunFor(Duration::Minutes(30));
  for (const auto& w : watches) {
    if (w->failed) {
      failed_total[w->size].first++;
    }
  }
  return failed_total;
}

}  // namespace

int main() {
  using namespace fuse;
  using namespace fuse::bench;
  Header("Figure 12: group failures due to packet loss (30 minutes)",
         "paper section 7.6, Figure 12");

  const struct {
    double link_loss;
    const char* median_route;
  } kRates[] = {{0.0, "0%"}, {0.004, "5.8%"}, {0.008, "11.4%"}, {0.016, "21.5%"}};

  std::map<double, std::map<int, std::pair<int, int>>> results;
  for (const auto& r : kRates) {
    results[r.link_loss] = RunLoss(r.link_loss, 12001);
  }

  std::printf("\n%% of groups failed within 30 minutes:\n");
  std::printf("  %10s", "size");
  for (const auto& r : kRates) {
    std::printf(" %13s", r.median_route);
  }
  std::printf("\n");
  for (const int size : {2, 4, 8, 16, 32}) {
    std::printf("  %10d", size);
    for (const auto& r : kRates) {
      const auto [failed, total] = results[r.link_loss][size];
      std::printf(" %12.0f%%", total == 0 ? 0.0 : 100.0 * failed / total);
    }
    std::printf("\n");
  }

  int low_loss_failures = 0;
  int high_loss_failures = 0;
  for (const int size : {2, 4, 8, 16, 32}) {
    low_loss_failures += results[0.0][size].first + results[0.004][size].first;
    high_loss_failures += results[0.016][size].first;
  }
  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  no failures at 0%% / 5.8%% loss   : %s (%d failures)\n",
              low_loss_failures == 0 ? "yes" : "NO", low_loss_failures);
  std::printf("  failures at 21.5%% loss          : %d groups (paper: many, growing with size)\n",
              high_loss_failures);
  return 0;
}
