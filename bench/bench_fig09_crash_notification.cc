// Figure 9: combined latency of ping timeout, repair timeout, and failure
// notification when nodes crash.
//
// 400 FUSE groups of size 5; then one physical machine (10 co-located
// virtual nodes) is disconnected. Every group containing a disconnected node
// must deliver notifications to its surviving members. The distribution is
// dominated by the ping interval (U[0,60s] until the next ping + 20 s ping
// timeout) plus the repair timeouts (60 s member / 120 s root), bounding
// notification within ~4 minutes.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace fuse;
  using namespace fuse::bench;
  Header("Figure 9: crash-failure notification latency CDF", "paper section 7.4, Figure 9");

  SimCluster cluster(PaperClusterConfig(9001, /*cluster_mode=*/true));
  cluster.Build();

  // 400 groups of size 5.
  struct GroupInfo {
    FuseId id;
    std::vector<size_t> members;
  };
  std::vector<GroupInfo> groups;
  for (int g = 0; g < 400; ++g) {
    const auto members = cluster.PickLiveNodes(5);
    Status status;
    const FuseId id = CreateGroupTimed(cluster, members[0], members, &status, nullptr);
    if (status.ok()) {
      groups.push_back({id, members});
    }
  }
  cluster.sim().RunFor(Duration::Minutes(2));  // settle

  // Disconnect one "physical machine": 10 co-located virtual nodes.
  const size_t machine_first = 120;  // nodes 120..129 share a router
  Summary latency_min;
  int affected_groups = 0;
  int expected_notifications = 0;
  int delivered = 0;
  const TimePoint t0 = cluster.sim().Now();
  for (const auto& g : groups) {
    bool affected = false;
    for (size_t m : g.members) {
      if (m >= machine_first && m < machine_first + 10) {
        affected = true;
      }
    }
    if (!affected) {
      continue;
    }
    ++affected_groups;
    for (size_t m : g.members) {
      if (m >= machine_first && m < machine_first + 10) {
        continue;  // will be dead
      }
      ++expected_notifications;
      cluster.node(m).fuse()->RegisterFailureHandler(
          g.id, [&cluster, &latency_min, &delivered, t0](FuseId) {
            latency_min.Add((cluster.sim().Now() - t0).ToSecondsF() / 60.0);
            ++delivered;
          });
    }
  }
  for (size_t m = machine_first; m < machine_first + 10; ++m) {
    cluster.Crash(m);
  }
  cluster.sim().RunFor(Duration::Minutes(10));

  std::printf("\naffected groups: %d (paper: 42 of 400)\n", affected_groups);
  std::printf("notifications delivered: %d of %d expected (paper: 163)\n", delivered,
              expected_notifications);
  std::printf("\nCDF of notification latency (minutes):\n");
  std::printf("  %8s %10s\n", "minutes", "fraction");
  for (double minutes : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0}) {
    std::printf("  %8.1f %10.3f\n", minutes, latency_min.FractionAtMost(minutes));
  }
  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  all live members notified        : %s\n",
              delivered == expected_notifications ? "yes" : "NO");
  std::printf("  nothing before ping detection    : min = %.2f min (>~0.3)\n", latency_min.Min());
  std::printf("  done within ~4-5 minutes         : max = %.2f min\n", latency_min.Max());
  std::printf("  ping+repair timeouts dominate    : p50 = %.2f min (paper: ~1.5-2.5)\n",
              latency_min.Median());
  return 0;
}
