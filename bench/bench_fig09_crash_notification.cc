// Figure 9: combined latency of ping timeout, repair timeout, and failure
// notification when nodes crash.
//
// 400 FUSE groups of size 5; then one physical machine (10 co-located
// virtual nodes) is disconnected. Every group containing a disconnected node
// must deliver notifications to its surviving members. The distribution is
// dominated by the ping interval (U[0,60s] until the next ping + 20 s ping
// timeout) plus the repair timeouts (60 s member / 120 s root), bounding
// notification within ~4 minutes.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace fuse;
  using namespace fuse::bench;
  // --json <path>: also emit machine-readable results (CI perf baseline).
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  Header("Figure 9: crash-failure notification latency CDF", "paper section 7.4, Figure 9");

  SimCluster cluster(PaperClusterConfig(9001, /*cluster_mode=*/true));
  cluster.Build();

  // 400 groups of size 5.
  struct GroupInfo {
    FuseId id;
    std::vector<size_t> members;
  };
  std::vector<GroupInfo> groups;
  for (int g = 0; g < 400; ++g) {
    const auto members = cluster.PickLiveNodes(5);
    Status status;
    const FuseId id = CreateGroupTimed(cluster, members[0], members, &status, nullptr);
    if (status.ok()) {
      groups.push_back({id, members});
    }
  }
  cluster.sim().RunFor(Duration::Minutes(2));  // settle

  // Disconnect one "physical machine": 10 co-located virtual nodes.
  const size_t machine_first = 120;  // nodes 120..129 share a router
  Summary latency_min;
  int affected_groups = 0;
  int expected_notifications = 0;
  int delivered = 0;
  const TimePoint t0 = cluster.sim().Now();
  for (const auto& g : groups) {
    bool affected = false;
    for (size_t m : g.members) {
      if (m >= machine_first && m < machine_first + 10) {
        affected = true;
      }
    }
    if (!affected) {
      continue;
    }
    ++affected_groups;
    for (size_t m : g.members) {
      if (m >= machine_first && m < machine_first + 10) {
        continue;  // will be dead
      }
      ++expected_notifications;
      cluster.node(m).fuse()->RegisterFailureHandler(
          g.id, [&cluster, &latency_min, &delivered, t0](FuseId) {
            latency_min.Add((cluster.sim().Now() - t0).ToSecondsF() / 60.0);
            ++delivered;
          });
    }
  }
  for (size_t m = machine_first; m < machine_first + 10; ++m) {
    cluster.Crash(m);
  }
  cluster.sim().RunFor(Duration::Minutes(10));

  std::printf("\naffected groups: %d (paper: 42 of 400)\n", affected_groups);
  std::printf("notifications delivered: %d of %d expected (paper: 163)\n", delivered,
              expected_notifications);
  std::printf("\nCDF of notification latency (minutes):\n");
  std::printf("  %8s %10s\n", "minutes", "fraction");
  for (double minutes : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0}) {
    std::printf("  %8.1f %10.3f\n", minutes, latency_min.FractionAtMost(minutes));
  }
  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  all live members notified        : %s\n",
              delivered == expected_notifications ? "yes" : "NO");
  std::printf("  nothing before ping detection    : min = %.2f min (>~0.3)\n", latency_min.Min());
  std::printf("  done within ~4-5 minutes         : max = %.2f min\n", latency_min.Max());
  std::printf("  ping+repair timeouts dominate    : p50 = %.2f min (paper: ~1.5-2.5)\n",
              latency_min.Median());

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n"
                   "  \"bench\": \"fig09_crash_notification\", \"nodes\": 400,\n"
                   "  \"affected_groups\": %d,\n"
                   "  \"expected_notifications\": %d, \"delivered\": %d,\n"
                   "  \"latency_min_minutes\": %.3f, \"latency_p50_minutes\": %.3f,\n"
                   "  \"latency_p90_minutes\": %.3f, \"latency_max_minutes\": %.3f\n"
                   "}\n",
                   affected_groups, expected_notifications, delivered, latency_min.Min(),
                   latency_min.Median(), latency_min.Percentile(90), latency_min.Max());
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
