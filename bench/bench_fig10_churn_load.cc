// Figure 10 (plus the section 7.5 steady-state result): network message load
// without churn, with churn, and with churn plus FUSE groups.
//
// Paper numbers: a stable 300-node overlay generates 238 msg/s; a churning
// 400-node overlay (avg 300 live, 30-minute half-life) 270 msg/s (+13%); the
// same churn with 100 10-member FUSE groups 523 msg/s (+94% over churn). And
// with no churn, 400 FUSE groups of 10 add *no* messages over the overlay
// baseline (337 vs 338 msg/s) — liveness is piggybacked.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

double MeasureRate(fuse::SimCluster& cluster, fuse::Duration window) {
  const auto w = cluster.sim().metrics().BeginWindow(cluster.sim().Now());
  cluster.sim().RunFor(window);
  return cluster.sim().metrics().MessagesPerSecond(w, cluster.sim().Now());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fuse;
  using namespace fuse::bench;
  // --json <path>: also emit machine-readable results (CI perf baseline).
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  Header("Figure 10 / section 7.5: steady-state load and overlay churn",
         "paper section 7.5, Figure 10");
  const Duration kWindow = Duration::Minutes(10);

  // --- Part 1 (section 7.5): no churn, FUSE groups are free. ---
  double no_groups_rate = 0, with_groups_rate = 0;
  double avg_neighbors = 0;
  {
    SimCluster cluster(PaperClusterConfig(10001, /*cluster_mode=*/true));
    cluster.Build();
    cluster.sim().RunFor(Duration::Minutes(3));
    avg_neighbors = cluster.AvgDistinctNeighbors();
    no_groups_rate = MeasureRate(cluster, kWindow);
    for (int g = 0; g < 400; ++g) {
      const auto members = cluster.PickLiveNodes(10);
      Status status;
      CreateGroupTimed(cluster, members[0], members, &status, nullptr);
    }
    cluster.sim().RunFor(Duration::Minutes(2));
    with_groups_rate = MeasureRate(cluster, kWindow);
  }

  // --- Part 2 (Figure 10): churn costs. ---
  // Stable 300-node overlay.
  double stable300 = 0;
  {
    ClusterConfig cfg = PaperClusterConfig(10002, true);
    cfg.num_nodes = 300;
    SimCluster cluster(cfg);
    cluster.Build();
    cluster.sim().RunFor(Duration::Minutes(3));
    stable300 = MeasureRate(cluster, kWindow);
  }
  // Churning 400-node overlay: 200 stable + 200 churning, ~100 alive on
  // average (mean uptime == mean downtime), median lifetime ~30 min.
  const Duration kChurnMean = Duration::SecondsF(30.0 * 60.0 / 0.6931);
  double churn_rate = 0;
  {
    SimCluster cluster(PaperClusterConfig(10003, true));
    cluster.Build();
    cluster.StartChurn(200, 200, kChurnMean, kChurnMean);
    cluster.sim().RunFor(Duration::Minutes(20));  // let the population settle
    churn_rate = MeasureRate(cluster, kWindow);
    cluster.StopChurn();
  }
  // Churn plus 100 FUSE groups of 10 on the stable nodes.
  double churn_fuse_rate = 0;
  {
    SimCluster cluster(PaperClusterConfig(10004, true));
    cluster.Build();
    for (int g = 0; g < 100; ++g) {
      std::vector<size_t> members;
      while (members.size() < 10) {
        const size_t m = static_cast<size_t>(cluster.sim().rng().UniformInt(0, 199));
        bool dup = false;
        for (size_t e : members) {
          dup = dup || e == m;
        }
        if (!dup) {
          members.push_back(m);
        }
      }
      Status status;
      CreateGroupTimed(cluster, members[0], members, &status, nullptr);
    }
    cluster.StartChurn(200, 200, kChurnMean, kChurnMean);
    cluster.sim().RunFor(Duration::Minutes(20));
    churn_fuse_rate = MeasureRate(cluster, kWindow);
    cluster.StopChurn();
  }

  std::printf("\n400-node overlay, avg distinct neighbors/node: %.1f (paper: 32.3)\n",
              avg_neighbors);
  std::printf("\nsection 7.5 — steady state, no churn (msgs/sec over 10 min):\n");
  std::printf("  %-34s %8.1f   (paper: 337)\n", "overlay only (400 nodes)", no_groups_rate);
  std::printf("  %-34s %8.1f   (paper: 338)\n", "with 400 FUSE groups of 10", with_groups_rate);
  std::printf("  FUSE group overhead: %+.1f msg/s (%.2f%%) — piggybacked liveness\n",
              with_groups_rate - no_groups_rate,
              100.0 * (with_groups_rate - no_groups_rate) / no_groups_rate);

  std::printf("\nFigure 10 — churn costs (msgs/sec over 10 min):\n");
  std::printf("  %-34s %8.1f   (paper: 238)\n", "no churn (300 stable nodes)", stable300);
  std::printf("  %-34s %8.1f   (paper: 270, +13%%)\n", "with churn (avg ~300 live)", churn_rate);
  std::printf("  %-34s %8.1f   (paper: 523, +94%%)\n", "churn + 100 FUSE groups of 10",
              churn_fuse_rate);
  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  churn premium over stable        : %+.0f%% (paper: +13%%)\n",
              100.0 * (churn_rate - stable300) / stable300);
  std::printf("  FUSE-under-churn premium         : %+.0f%% (paper: +94%%)\n",
              100.0 * (churn_fuse_rate - churn_rate) / churn_rate);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n"
                   "  \"bench\": \"fig10_churn_load\", \"nodes\": 400,\n"
                   "  \"avg_neighbors\": %.2f,\n"
                   "  \"overlay_only_msgs_per_s\": %.2f, \"with_groups_msgs_per_s\": %.2f,\n"
                   "  \"stable300_msgs_per_s\": %.2f, \"churn_msgs_per_s\": %.2f,\n"
                   "  \"churn_fuse_msgs_per_s\": %.2f,\n"
                   "  \"churn_premium_pct\": %.1f, \"fuse_under_churn_premium_pct\": %.1f\n"
                   "}\n",
                   avg_neighbors, no_groups_rate, with_groups_rate, stable300, churn_rate,
                   churn_fuse_rate, 100.0 * (churn_rate - stable300) / stable300,
                   100.0 * (churn_fuse_rate - churn_rate) / churn_rate);
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
