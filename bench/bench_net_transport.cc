// Transport fast-path benchmark: TCP-framed vs UDP-batched messaging at 64
// hosts on one machine (ROADMAP "Datagram fast path").
//
// Every host gets its own fabric (socket set or datagram socket) on a shared
// LiveRuntime loop — the single-process analogue of one fabric per worker —
// and streams ping-sized messages to its 8 ring neighbors under a bounded
// per-sender window, the shape of FUSE's steady-state liveness traffic. We
// measure, per transport:
//
//   * msgs/wall-s        — acked application messages per wall-clock second;
//   * syscalls/msg       — transport I/O syscalls per acked message (the UDP
//                          fabric coalesces records per destination and
//                          batches datagrams through sendmmsg/recvmmsg);
//   * batch occupancy    — data records per datagram put on the wire;
//   * retransmit rate    — RTO-driven resends per message (loss-free run:
//                          this is scheduling pressure, not packet loss).
//
// Usage:
//   bench_net_transport                    # 64 nodes, 2000 msgs/node
//   bench_net_transport --nodes 64 --msgs 4000 --window 16
//   bench_net_transport --json out.json
//   bench_net_transport --smoke            # reduced run + self-enforcing
//                                          #   acceptance gate: UDP >= 2x
//                                          #   msgs/wall-s OR <= 0.5x
//                                          #   syscalls/msg vs TCP
//   bench_net_transport --probe-sendmmsg   # exit 0 iff kernel has sendmmsg
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/serialize.h"
#include "runtime/live_runtime.h"
#include "transport/fabric.h"

#if defined(__linux__)
#include "transport/datagram_transport.h"
#include "transport/socket_transport.h"
#endif

namespace {

using namespace fuse;

struct Options {
  int nodes = 64;
  int msgs_per_node = 2000;
  int window = 16;  // outstanding sends per host
};

struct PassResult {
  bool ran = false;
  uint64_t messages = 0;
  uint64_t failures = 0;
  double wall_s = 0;
  double msgs_per_wall_s = 0;
  double syscalls_per_msg = 0;
  uint64_t send_syscalls = 0;
  uint64_t recv_syscalls = 0;
  uint64_t datagrams = 0;
  uint64_t records = 0;
  uint64_t retransmits = 0;
  double batch_occupancy = 0;
  double retransmit_rate = 0;
  bool used_mmsg = false;
};

#if defined(__linux__)

PassResult RunPass(TransportKind kind, const Options& opt) {
  PassResult res;
  const uint64_t total =
      static_cast<uint64_t>(opt.nodes) * static_cast<uint64_t>(opt.msgs_per_node);

  LiveRuntime::Config rc;
  rc.seed = 64001;
  LiveRuntime rt(rc);
  std::vector<std::unique_ptr<Fabric>> fabrics;
  std::vector<Transport*> transports(static_cast<size_t>(opt.nodes), nullptr);

  // 8 ring neighbors per sender (the overlay's leaf-set shape).
  std::vector<std::vector<int>> neighbors(static_cast<size_t>(opt.nodes));
  for (int i = 0; i < opt.nodes; ++i) {
    for (int d = 1; d <= 4; ++d) {
      neighbors[i].push_back((i + d) % opt.nodes);
      neighbors[i].push_back((i + opt.nodes - d) % opt.nodes);
    }
  }

  struct SenderState {
    int sent = 0;
  };
  std::vector<SenderState> senders(static_cast<size_t>(opt.nodes));
  uint64_t acked = 0;
  uint64_t failures = 0;
  uint64_t delivered = 0;
  bool done = false;
  std::chrono::steady_clock::time_point t0, t1;

  rt.RunOnLoop([&] {
    std::vector<uint16_t> ports(static_cast<size_t>(opt.nodes));
    for (int i = 0; i < opt.nodes; ++i) {
      std::unique_ptr<Fabric> f;
      if (kind == TransportKind::kUdp) {
        DatagramFabric::Options o;
        o.seed = 64001 + static_cast<uint64_t>(i);
        f = std::make_unique<DatagramFabric>(&rt, o);
      } else {
        f = std::make_unique<SocketFabric>(&rt);
      }
      ports[i] = f->Listen();
      fabrics.push_back(std::move(f));
    }
    for (int i = 0; i < opt.nodes; ++i) {
      for (int j = 0; j < opt.nodes; ++j) {
        if (i != j) {
          fabrics[i]->SetPeerAddr(HostId(static_cast<uint64_t>(j + 1)), ports[j]);
        }
      }
      transports[i] = fabrics[i]->TransportFor(HostId(static_cast<uint64_t>(i + 1)));
      transports[i]->RegisterHandler(msgtype::kTest,
                                     [&delivered](const WireMessage&) { ++delivered; });
    }
  });

  // Windowed streaming: each ack admits the sender's next message, so the
  // flow resembles steady-state ping traffic rather than one giant burst.
  auto send_next = std::make_shared<std::function<void(int)>>();
  *send_next = [&, send_next](int i) {
    SenderState& s = senders[i];
    if (s.sent >= opt.msgs_per_node) {
      return;
    }
    const int k = s.sent++;
    const int dest = neighbors[i][static_cast<size_t>(k) % neighbors[i].size()];
    WireMessage m;
    m.to = HostId(static_cast<uint64_t>(dest + 1));
    m.type = msgtype::kTest;
    m.category = MsgCategory::kApp;
    Writer w;
    w.PutU64(static_cast<uint64_t>(k));  // ping-sized: seq + 20-byte hash
    const uint8_t hash[20] = {};
    w.PutBytes(hash, sizeof(hash));
    m.payload = w.Take();
    transports[i]->Send(std::move(m), [&, i](const Status& st) {
      if (!st.ok()) {
        ++failures;
      }
      if (++acked == total) {
        t1 = std::chrono::steady_clock::now();
        done = true;
      }
      (*send_next)(i);
    });
  };

  Metrics before;
  rt.RunOnLoop([&] {
    before.AddFrom(rt.metrics());
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < opt.nodes; ++i) {
      for (int w = 0; w < opt.window; ++w) {
        (*send_next)(i);
      }
    }
  });

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(300);
  for (;;) {
    bool d = false;
    rt.RunOnLoop([&] { d = done; });
    if (d) {
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "FAILED: pass timed out (%llu/%llu acked)\n",
                   static_cast<unsigned long long>(acked),
                   static_cast<unsigned long long>(total));
      rt.Stop();
      return res;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  rt.RunOnLoop([&] {
    const Metrics& m = rt.metrics();
    res.send_syscalls =
        m.GetCounter(Counter::kTransportSendSyscalls) - before.GetCounter(Counter::kTransportSendSyscalls);
    res.recv_syscalls =
        m.GetCounter(Counter::kTransportRecvSyscalls) - before.GetCounter(Counter::kTransportRecvSyscalls);
    res.datagrams = m.GetCounter(Counter::kTransportDatagramsSent);
    res.records = m.GetCounter(Counter::kTransportRecordsSent);
    res.retransmits = m.GetCounter(Counter::kRetransmitsTotal);
    if (kind == TransportKind::kUdp) {
      res.used_mmsg = static_cast<DatagramFabric*>(fabrics[0].get())->used_mmsg();
    }
  });

  res.ran = true;
  res.messages = total;
  res.failures = failures;
  res.wall_s = std::chrono::duration<double>(t1 - t0).count();
  res.msgs_per_wall_s = res.wall_s > 0 ? static_cast<double>(total) / res.wall_s : 0;
  res.syscalls_per_msg =
      static_cast<double>(res.send_syscalls + res.recv_syscalls) / static_cast<double>(total);
  res.batch_occupancy =
      res.datagrams > 0 ? static_cast<double>(res.records) / static_cast<double>(res.datagrams) : 0;
  res.retransmit_rate = static_cast<double>(res.retransmits) / static_cast<double>(total);

  // Publish through the shared gauge vocabulary (common/metrics.h) so the
  // numbers land in the same reporting surface the parity tests read.
  rt.RunOnLoop([&] {
    rt.metrics().SetGauge(Gauge::kSyscallsPerMsg, res.syscalls_per_msg);
    rt.metrics().SetGauge(Gauge::kBatchOccupancy, res.batch_occupancy);
  });

  rt.Stop();
  return res;
}

#else  // !__linux__

PassResult RunPass(TransportKind, const Options&) {
  std::fprintf(stderr, "bench_net_transport needs the Linux epoll loop; skipping\n");
  return PassResult{};
}

#endif  // __linux__

void PrintPass(const char* label, const PassResult& r) {
  std::printf("\n== %s ==\n", label);
  if (!r.ran) {
    std::printf("  (did not run)\n");
    return;
  }
  std::printf("  messages          %12llu   failures %llu\n",
              static_cast<unsigned long long>(r.messages),
              static_cast<unsigned long long>(r.failures));
  std::printf("  wall_s            %12.3f\n", r.wall_s);
  std::printf("  msgs_per_wall_s   %12.0f\n", r.msgs_per_wall_s);
  std::printf("  syscalls_per_msg  %12.3f   (send %llu, recv %llu)\n", r.syscalls_per_msg,
              static_cast<unsigned long long>(r.send_syscalls),
              static_cast<unsigned long long>(r.recv_syscalls));
  if (r.datagrams > 0) {
    std::printf("  batch_occupancy   %12.2f   (%llu records / %llu datagrams)\n",
                r.batch_occupancy, static_cast<unsigned long long>(r.records),
                static_cast<unsigned long long>(r.datagrams));
    std::printf("  retransmit_rate   %12.4f   (%llu retransmits)\n", r.retransmit_rate,
                static_cast<unsigned long long>(r.retransmits));
    std::printf("  used_mmsg         %12s\n", r.used_mmsg ? "yes" : "no (fallback)");
  }
}

void WriteJson(const std::string& path, const Options& opt, const PassResult& tcp,
               const PassResult& udp) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"net_transport\",\n"
               "  \"nodes\": %d, \"window\": %d, \"messages_total\": %llu,\n"
               "  \"tcp_msgs_per_wall_s\": %.0f, \"tcp_syscalls_per_msg\": %.3f,\n"
               "  \"udp_msgs_per_wall_s\": %.0f, \"udp_syscalls_per_msg\": %.3f,\n"
               "  \"udp_batch_occupancy\": %.2f, \"udp_retransmit_rate\": %.4f,\n"
               "  \"udp_used_mmsg\": %s\n}\n",
               opt.nodes, opt.window, static_cast<unsigned long long>(tcp.messages),
               tcp.msgs_per_wall_s, tcp.syscalls_per_msg, udp.msgs_per_wall_s,
               udp.syscalls_per_msg, udp.batch_occupancy, udp.retransmit_rate,
               udp.used_mmsg ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      opt.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--msgs") == 0 && i + 1 < argc) {
      opt.msgs_per_node = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      opt.window = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--probe-sendmmsg") == 0) {
#if defined(__linux__)
      const bool ok = fuse::DatagramSupportsMmsg();
      std::printf("sendmmsg: %s\n", ok ? "available" : "unavailable");
      return ok ? 0 : 1;
#else
      std::printf("sendmmsg: unavailable (not Linux)\n");
      return 1;
#endif
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 2;
    }
  }
  if (smoke) {
    opt.msgs_per_node = 500;
  }

  std::printf("=====================================================================\n");
  std::printf("Transport fast path: TCP-framed vs UDP-batched at %d nodes\n", opt.nodes);
  std::printf("%d msgs/node to 8 ring neighbors, window %d (steady-state ping shape)\n",
              opt.msgs_per_node, opt.window);
  std::printf("=====================================================================\n");

  const PassResult tcp = RunPass(TransportKind::kTcp, opt);
  PrintPass("tcp (socket fabric, framed streams)", tcp);
  const PassResult udp = RunPass(TransportKind::kUdp, opt);
  PrintPass("udp (datagram fabric, coalesced + mmsg-batched)", udp);

  if (!tcp.ran || !udp.ran) {
    return 1;
  }
  if (tcp.failures > 0 || udp.failures > 0) {
    std::fprintf(stderr, "FAILED: send failures on a loss-free run (tcp %llu, udp %llu)\n",
                 static_cast<unsigned long long>(tcp.failures),
                 static_cast<unsigned long long>(udp.failures));
    return 1;
  }

  const double throughput_ratio =
      tcp.msgs_per_wall_s > 0 ? udp.msgs_per_wall_s / tcp.msgs_per_wall_s : 0;
  const double syscall_ratio =
      tcp.syscalls_per_msg > 0 ? udp.syscalls_per_msg / tcp.syscalls_per_msg : 1;
  std::printf("\nudp/tcp msgs_per_wall_s ratio:  %.2fx  (acceptance: >= 2x, OR)\n",
              throughput_ratio);
  std::printf("udp/tcp syscalls_per_msg ratio: %.2fx  (acceptance: <= 0.5x)\n", syscall_ratio);

  if (!json_path.empty()) {
    WriteJson(json_path, opt, tcp, udp);
  }

  // The acceptance gate self-enforces even where the baseline comparator
  // skips wall-clock metrics (FUSE_PERF_SKIP_WALL=1 in CI): the claim is a
  // same-machine ratio, so it is valid on any runner.
  if (throughput_ratio < 2.0 && syscall_ratio > 0.5) {
    std::fprintf(stderr,
                 "FAILED: datagram fast path lost its edge (throughput %.2fx < 2x AND "
                 "syscalls %.2fx > 0.5x)\n",
                 throughput_ratio, syscall_ratio);
    return 1;
  }
  return 0;
}
