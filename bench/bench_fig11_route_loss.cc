// Figure 11: CDFs of per-route packet loss for three per-link loss rates.
//
// With per-link loss p and an h-hop route, per-route loss is 1-(1-p)^h.
// The paper's topology has routes of 2-43 hops (median 15), so per-link
// rates of 0.4%/0.8%/1.6% give median per-route rates of ~5.8%/11.4%/21.5%.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "net/network.h"

int main() {
  using namespace fuse;
  using namespace fuse::bench;
  Header("Figure 11: per-route loss CDFs for per-link loss rates",
         "paper section 7.6, Figure 11");

  Rng rng(11001);
  SimNetwork net{Topology::Generate(TopologyConfig{}, rng)};
  std::vector<HostId> hosts;
  for (int i = 0; i < 400; ++i) {
    hosts.push_back(net.AddHost(rng));
  }

  Summary hops;
  std::vector<std::pair<HostId, HostId>> routes;
  for (int i = 0; i < 4000; ++i) {
    const HostId a = hosts[rng.UniformInt(0, 399)];
    const HostId b = hosts[rng.UniformInt(0, 399)];
    if (a == b) {
      continue;
    }
    routes.emplace_back(a, b);
    hops.Add(net.GetPath(a, b).hops);
  }

  std::printf("\nroute hop counts: min=%.0f p50=%.0f max=%.0f (paper: 2..43, median 15)\n",
              hops.Min(), hops.Median(), hops.Max());

  const double link_rates[] = {0.004, 0.008, 0.016};
  std::vector<Summary> route_loss(3);
  for (int k = 0; k < 3; ++k) {
    net.SetPerLinkLossRate(link_rates[k]);
    for (const auto& [a, b] : routes) {
      route_loss[k].Add(100.0 * (1.0 - net.RouteSuccessProbability(a, b)));
    }
  }

  std::printf("\nCDF of per-route loss rate (%%):\n");
  std::printf("  %10s %14s %14s %14s\n", "loss <= %", "link 0.4%", "link 0.8%", "link 1.6%");
  for (double pct : {2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0}) {
    std::printf("  %10.0f %14.3f %14.3f %14.3f\n", pct, route_loss[0].FractionAtMost(pct),
                route_loss[1].FractionAtMost(pct), route_loss[2].FractionAtMost(pct));
  }

  std::printf("\nmedian per-route loss rates:\n");
  std::printf("  per-link 0.4%% -> %5.1f%%   (paper: 5.8%%)\n", route_loss[0].Median());
  std::printf("  per-link 0.8%% -> %5.1f%%   (paper: 11.4%%)\n", route_loss[1].Median());
  std::printf("  per-link 1.6%% -> %5.1f%%   (paper: 21.5%%)\n", route_loss[2].Median());
  return 0;
}
