// Scaling benchmark: 100k virtual nodes on the sharded parallel simulator.
//
// This is the tentpole target of the sharding work: a cluster an order of
// magnitude past bench_scale_10k, runnable only because (a) the simulation is
// partitioned across shards executing in conservative lockstep epochs, and
// (b) each node's periodic pings are coalesced behind one timer pair instead
// of two timers per neighbor (~200k armed timers instead of ~3M).
//
// Defaults: 8 shards, hardware-concurrency worker threads, coalesced pings.
// The smoke mode used by the CI gate builds the full 100k overlay and runs
// the 60-sim-second steady-state ping window; the full mode additionally
// measures the Figure 9 crash-notification experiment at this scale.
//
// Usage:
//   bench_scale_100k                       # full run at 100000 nodes
//   bench_scale_100k --smoke               # CI gate: build + 60 sim-s pings
//   bench_scale_100k --nodes 50000         # other scales
//   bench_scale_100k --shards 8 --threads 8
//   bench_scale_100k --no-coalesce         # per-neighbor timers (slow!)
//   bench_scale_100k --json out.json
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/scale_bench.h"

int main(int argc, char** argv) {
  using namespace fuse::bench;

  bool smoke = false;
  std::string json_path;
  int nodes = 100000;
  ScaleOptions opt;
  opt.shards = 8;
  opt.threads = static_cast<int>(std::thread::hardware_concurrency());
  if (opt.threads < 1) {
    opt.threads = 1;
  }
  opt.coalesce = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      opt.shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-coalesce") == 0) {
      opt.coalesce = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--nodes N] [--shards S] [--threads T]\n"
                   "          [--no-coalesce] [--json out.json]\n",
                   argv[0]);
      return 1;
    }
  }
  opt.with_groups = !smoke;

  Header("Scale: 100k virtual nodes on the sharded parallel simulator",
         "ROADMAP 'Shard the simulator; push toward 100k-1M nodes'");
  std::printf("config: %d nodes, %d shards, %d threads, coalesced pings %s\n", nodes, opt.shards,
              opt.threads, opt.coalesce ? "on" : "off");
  std::vector<ScaleResult> results;
  results.push_back(RunScale(nodes, opt));
  PrintScaleResult(results.back(), opt.with_groups);
  if (!json_path.empty()) {
    WriteScaleJson(json_path, results, opt.with_groups);
  }
  return 0;
}
