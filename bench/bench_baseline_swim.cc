// Baseline comparison (paper section 2): FUSE vs a SWIM-style weakly
// consistent membership service.
//
// Two scenarios: (a) steady-state message cost and crash-detection latency;
// (b) the intransitive connectivity failure, where a membership list forces a
// bad choice (section 2's three options) while FUSE fails exactly the
// affected group.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "membership/swim.h"
#include "net/network.h"
#include "transport/tcp_model.h"

namespace {

using namespace fuse;
using namespace fuse::bench;

constexpr int kNodes = 100;

struct SwimResult {
  double msgs_per_sec = 0;
  double detect_s = 0;     // first detection of the crash anywhere
  double everyone_s = 0;   // dissemination complete
};

SwimResult RunSwim(uint64_t seed) {
  Simulation sim(seed);
  SimNetwork net{Topology::Generate(TopologyConfig{}, sim.rng())};
  SimFabric fabric(sim, net, CostModel::Simulator());
  std::vector<HostId> hosts;
  for (int i = 0; i < kNodes; ++i) {
    hosts.push_back(net.AddHost(sim.rng()));
  }
  std::vector<std::unique_ptr<SwimMember>> members;
  for (int i = 0; i < kNodes; ++i) {
    members.push_back(std::make_unique<SwimMember>(fabric.TransportFor(hosts[i])));
  }
  for (auto& m : members) {
    m->Start(hosts);
  }
  sim.RunFor(Duration::Minutes(2));
  const auto w = sim.metrics().BeginWindow(sim.Now());
  sim.RunFor(Duration::Minutes(10));
  SwimResult out;
  out.msgs_per_sec = sim.metrics().MessagesPerSecond(w, sim.Now());

  const TimePoint t0 = sim.Now();
  fabric.CrashHost(hosts[7]);
  members[7]->Stop();
  TimePoint first = TimePoint::Max();
  for (size_t i = 0; i < members.size(); ++i) {
    if (i != 7) {
      members[i]->SetDeathHandler([&, i](HostId dead) {
        if (dead == hosts[7] && sim.Now() < first) {
          first = sim.Now();
        }
      });
    }
  }
  auto all_know = [&] {
    for (size_t i = 0; i < members.size(); ++i) {
      if (i != 7 && members[i]->StateOf(hosts[7]) != SwimMember::State::kDead) {
        return false;
      }
    }
    return true;
  };
  sim.RunUntilCondition(all_know, sim.Now() + Duration::Minutes(20));
  out.detect_s = (first - t0).ToSecondsF();
  out.everyone_s = (sim.Now() - t0).ToSecondsF();
  return out;
}

struct FuseResult {
  double msgs_per_sec = 0;
  double detect_s = 0;
  double everyone_s = 0;
};

FuseResult RunFuse(uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.seed = seed;
  cfg.cost = CostModel::Simulator();
  SimCluster cluster(cfg);
  cluster.Build();
  // A comparable monitoring workload: 25 groups of 4.
  struct GroupInfo {
    FuseId id;
    std::vector<size_t> members;
  };
  std::vector<GroupInfo> groups;
  for (int g = 0; g < 25; ++g) {
    const auto members = cluster.PickLiveNodes(4);
    Status status;
    const FuseId id = CreateGroupTimed(cluster, members[0], members, &status, nullptr);
    if (status.ok()) {
      groups.push_back({id, members});
    }
  }
  cluster.sim().RunFor(Duration::Minutes(2));
  const auto w = cluster.sim().metrics().BeginWindow(cluster.sim().Now());
  cluster.sim().RunFor(Duration::Minutes(10));
  FuseResult out;
  out.msgs_per_sec = cluster.sim().metrics().MessagesPerSecond(w, cluster.sim().Now());

  // Crash one node that belongs to at least one group.
  const size_t victim = groups.front().members.back();
  int pending = 0;
  const TimePoint t0 = cluster.sim().Now();
  TimePoint first = TimePoint::Max();
  TimePoint last = t0;
  for (const auto& g : groups) {
    bool has_victim = false;
    for (size_t m : g.members) {
      has_victim = has_victim || m == victim;
    }
    if (!has_victim) {
      continue;
    }
    for (size_t m : g.members) {
      if (m == victim) {
        continue;
      }
      ++pending;
      cluster.node(m).fuse()->RegisterFailureHandler(g.id, [&](FuseId) {
        --pending;
        if (cluster.sim().Now() < first) {
          first = cluster.sim().Now();
        }
        last = cluster.sim().Now();
      });
    }
  }
  cluster.Crash(victim);
  cluster.sim().RunUntilCondition([&] { return pending == 0; },
                                  cluster.sim().Now() + Duration::Minutes(10));
  out.detect_s = (first - t0).ToSecondsF();
  out.everyone_s = (last - t0).ToSecondsF();
  return out;
}

}  // namespace

int main() {
  Header("Baseline: FUSE vs SWIM-style membership (100 nodes)", "paper section 2");

  const SwimResult swim = RunSwim(70001);
  const FuseResult fuse_r = RunFuse(70002);

  std::printf("\nsteady-state load and crash detection:\n");
  std::printf("  %-22s %14s %16s %18s\n", "system", "msgs/sec", "first detect", "all informed");
  std::printf("  %-22s %14.1f %14.1fs %16.1fs\n", "SWIM membership", swim.msgs_per_sec,
              swim.detect_s, swim.everyone_s);
  std::printf("  %-22s %14.1f %14.1fs %16.1fs\n", "FUSE (25 groups of 4)", fuse_r.msgs_per_sec,
              fuse_r.detect_s, fuse_r.everyone_s);

  std::printf("\nsemantic difference (section 2):\n");
  std::printf("  SWIM answers \"is node X up?\" system-wide; under an intransitive failure it\n");
  std::printf("  must pick one of three bad options (declare a reachable node dead, leave the\n");
  std::printf("  pair stuck, or expose inconsistency). FUSE scopes failure to the *group*:\n");
  std::printf("  only groups whose communication actually broke are signalled — demonstrated\n");
  std::printf("  in tests/fuse_test.cc (FuseIntransitiveTest) and\n");
  std::printf("  tests/membership_test.cc (IntransitiveFailureForcesBadChoice).\n");
  return 0;
}
