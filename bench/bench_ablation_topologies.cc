// Ablation (paper section 5/5.1): liveness-checking topology trade-offs.
//
// Measures steady-state message load as the number of groups grows, for the
// three alternative topologies (direct spanning tree, all-to-all, central
// server) versus the overlay-sharing implementation, plus crash-notification
// latency. The paper's qualitative claims: the overlay implementation's load
// is independent of the group count; the alternatives pay per-group liveness
// traffic (all-to-all n^2 per group) but all-to-all halves worst-case
// notification latency to twice the ping interval.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "fuse/alt_topologies.h"
#include "net/network.h"
#include "transport/tcp_model.h"

namespace {

using namespace fuse;
using namespace fuse::bench;

constexpr int kNodes = 64;
constexpr int kGroupSize = 8;

// Steady-state msgs/s with `num_groups` groups under one alt topology, plus
// the latency until all survivors hear about a crash.
struct AltResult {
  double msgs_per_sec = 0;
  double notify_latency_s = 0;
};

AltResult RunAlt(LivenessTopology topology, int num_groups, uint64_t seed) {
  Simulation sim(seed);
  SimNetwork net{Topology::Generate(TopologyConfig{}, sim.rng())};
  SimFabric fabric(sim, net, CostModel::Simulator());
  std::vector<HostId> hosts;
  for (int i = 0; i < kNodes; ++i) {
    hosts.push_back(net.AddHost(sim.rng()));
  }
  AltFuseConfig cfg;
  cfg.topology = topology;
  cfg.central_server = hosts[0];
  std::vector<std::unique_ptr<AltFuseNode>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<AltFuseNode>(fabric.TransportFor(hosts[i]), cfg));
  }
  std::vector<std::pair<FuseId, std::vector<size_t>>> groups;
  for (int g = 0; g < num_groups; ++g) {
    std::vector<size_t> idx = sim.rng().SampleIndices(kNodes - 1, kGroupSize);
    for (auto& i : idx) {
      ++i;  // skip host 0 (reserved for the central server)
    }
    std::vector<HostId> members;
    for (size_t i : idx) {
      members.push_back(hosts[i]);
    }
    bool done = false;
    FuseId id;
    nodes[idx[0]]->CreateGroup(members, [&](const Status& s, FuseId gid) {
      done = true;
      if (s.ok()) {
        id = gid;
      }
    });
    sim.RunUntilCondition([&] { return done; }, sim.Now() + Duration::Minutes(2));
    if (id.valid()) {
      groups.emplace_back(id, idx);
    }
  }
  sim.RunFor(Duration::Minutes(3));

  AltResult out;
  const auto w = sim.metrics().BeginWindow(sim.Now());
  sim.RunFor(Duration::Minutes(10));
  out.msgs_per_sec = sim.metrics().MessagesPerSecond(w, sim.Now());

  // Crash one member of the last group; time until all survivors know.
  if (!groups.empty()) {
    const auto& [id, idx] = groups.back();
    int pending = 0;
    const TimePoint t0 = sim.Now();
    TimePoint last = t0;
    for (size_t k = 0; k + 1 < idx.size(); ++k) {
      ++pending;
      nodes[idx[k]]->RegisterFailureHandler(id, [&](FuseId) {
        --pending;
        last = sim.Now();
      });
    }
    const size_t victim = idx.back();
    fabric.CrashHost(hosts[victim]);
    nodes[victim]->Shutdown();
    sim.RunUntilCondition([&] { return pending == 0; }, sim.Now() + Duration::Minutes(10));
    out.notify_latency_s = (last - t0).ToSecondsF();
  }
  return out;
}

double RunOverlayFuse(int num_groups, uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.seed = seed;
  cfg.cost = CostModel::Simulator();
  SimCluster cluster(cfg);
  cluster.Build();
  for (int g = 0; g < num_groups; ++g) {
    const auto members = cluster.PickLiveNodes(kGroupSize);
    Status status;
    CreateGroupTimed(cluster, members[0], members, &status, nullptr);
  }
  cluster.sim().RunFor(Duration::Minutes(3));
  const auto w = cluster.sim().metrics().BeginWindow(cluster.sim().Now());
  cluster.sim().RunFor(Duration::Minutes(10));
  return cluster.sim().metrics().MessagesPerSecond(w, cluster.sim().Now());
}

}  // namespace

int main() {
  Header("Ablation: liveness-checking topologies (64 nodes, groups of 8)",
         "paper sections 5 and 5.1");

  std::printf("\nsteady-state message load (msgs/sec) vs number of groups:\n");
  std::printf("  %14s %12s %12s %14s %14s\n", "groups", "overlay", "direct-tree", "all-to-all",
              "central-srv");
  for (const int g : {10, 40, 80}) {
    const double overlay = RunOverlayFuse(g, 50000 + g);
    const AltResult tree = RunAlt(LivenessTopology::kDirectTree, g, 51000 + g);
    const AltResult a2a = RunAlt(LivenessTopology::kAllToAll, g, 52000 + g);
    const AltResult srv = RunAlt(LivenessTopology::kCentralServer, g, 53000 + g);
    std::printf("  %14d %12.1f %12.1f %14.1f %14.1f\n", g, overlay, tree.msgs_per_sec,
                a2a.msgs_per_sec, srv.msgs_per_sec);
  }

  std::printf("\ncrash-notification latency (seconds, until all survivors notified):\n");
  const AltResult tree = RunAlt(LivenessTopology::kDirectTree, 10, 54001);
  const AltResult a2a = RunAlt(LivenessTopology::kAllToAll, 10, 54002);
  const AltResult srv = RunAlt(LivenessTopology::kCentralServer, 10, 54003);
  std::printf("  %-16s %8.1f s\n", "direct-tree", tree.notify_latency_s);
  std::printf("  %-16s %8.1f s   (worst case: 2x ping interval, section 5.1)\n", "all-to-all",
              a2a.notify_latency_s);
  std::printf("  %-16s %8.1f s\n", "central-server", srv.notify_latency_s);

  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  overlay load ~independent of group count; alternatives grow with it\n");
  std::printf("  all-to-all costs ~n^2 per group but needs no forwarding trust\n");
  return 0;
}
