// Shared helpers for the experiment-reproduction benches. Each bench binary
// regenerates one table or figure from the paper's evaluation (section 7) and
// prints the corresponding rows, plus the paper's reported values for
// comparison. Absolute numbers differ (our substrate is a calibrated
// simulator, not the authors' ModelNet cluster); the shapes are the result.
#ifndef FUSE_BENCH_BENCH_UTIL_H_
#define FUSE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "runtime/sim_cluster.h"

namespace fuse {
namespace bench {

inline ClusterConfig PaperClusterConfig(uint64_t seed, bool cluster_mode) {
  ClusterConfig cfg;
  cfg.num_nodes = 400;
  cfg.seed = seed;
  // The paper's live testbed: 400 virtual nodes, 10 per physical machine.
  cfg.hosts_per_machine = cluster_mode ? 10 : 1;
  cfg.cost = cluster_mode ? CostModel::Cluster() : CostModel::Simulator();
  return cfg;
}

inline void Header(const std::string& title, const std::string& paper_ref) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("=====================================================================\n");
}

inline void PrintPercentileRow(const char* label, const Summary& s) {
  std::printf("  %-22s n=%-4zu p25=%9.1f  p50=%9.1f  p75=%9.1f  max=%9.1f\n", label, s.Count(),
              s.Percentile(25), s.Percentile(50), s.Percentile(75), s.Max());
}

// Synchronous group creation helper; returns latency via *latency_ms.
inline FuseId CreateGroupTimed(SimCluster& cluster, size_t root,
                               const std::vector<size_t>& members, Status* status_out,
                               double* latency_ms) {
  FuseId id;
  bool done = false;
  Status status;
  const TimePoint t0 = cluster.sim().Now();
  TimePoint t1 = t0;
  cluster.node(root).fuse()->CreateGroup(cluster.RefsOf(members),
                                         [&](const Status& s, FuseId gid) {
                                           status = s;
                                           id = gid;
                                           t1 = cluster.sim().Now();
                                           done = true;
                                         });
  cluster.sim().RunUntilCondition([&] { return done; },
                                  cluster.sim().Now() + Duration::Minutes(3));
  if (status_out != nullptr) {
    *status_out = status;
  }
  if (latency_ms != nullptr) {
    *latency_ms = (t1 - t0).ToMillisF();
  }
  return id;
}

}  // namespace bench
}  // namespace fuse

#endif  // FUSE_BENCH_BENCH_UTIL_H_
