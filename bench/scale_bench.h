// Shared machinery for the scaling benchmarks (bench_scale_10k,
// bench_scale_100k): build a large cluster on either simulator backend
// (classic single-threaded, or sharded parallel via --shards/--threads),
// measure steady-state event throughput and timer pressure, and optionally
// run the Figure 9 crash-notification experiment at scale.
//
// Everything below is written against the ClusterHarness surface plus two
// narrow backend probes (executed-event count and queue stats), so the same
// measurement loop produces comparable numbers for both engines.
#ifndef FUSE_BENCH_SCALE_BENCH_H_
#define FUSE_BENCH_SCALE_BENCH_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/sharded_sim_cluster.h"
#include "runtime/sim_cluster.h"

namespace fuse {
namespace bench {

inline double WallSecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct ScaleOptions {
  int shards = 0;        // 0 = classic single-threaded backend
  int threads = 1;       // sharded backend worker count
  bool coalesce = false; // batch each node's pings behind one timer pair
  bool with_groups = true;
};

struct ScaleResult {
  int nodes = 0;
  int shards = 0;
  int threads = 0;
  bool coalesce = false;
  double build_wall_s = 0;
  double avg_neighbors = 0;
  uint64_t steady_events = 0;
  double steady_events_per_wall_s = 0;
  double steady_msgs_per_sim_s = 0;
  size_t pending_timers = 0;
  uint64_t timers_scheduled = 0;
  uint64_t timers_cancelled = 0;
  size_t wheel_live[3] = {0, 0, 0};  // live entries per timer-wheel level
  int64_t lookahead_us = 0;  // sharded backend only
  int groups = 0;
  int expected_notifications = 0;
  int delivered_notifications = 0;
  double notify_p50_min = 0;
  double notify_max_min = 0;
};

// The two backend probes the harness surface does not carry.
struct ScaleProbes {
  std::function<uint64_t()> executed;
  std::function<EventQueue::Stats()> queue_stats;
};

inline ScaleProbes ProbesFor(ClusterHarness& cluster, const ScaleOptions& opt) {
  ScaleProbes p;
  if (opt.shards > 0) {
    auto& sharded = static_cast<ShardedSimCluster&>(cluster);
    p.executed = [&sharded] { return sharded.sim().TotalExecuted(); };
    p.queue_stats = [&sharded] { return sharded.sim().AggregateQueueStats(); };
  } else {
    auto& classic = static_cast<SimCluster&>(cluster);
    p.executed = [&classic] { return classic.sim().queue().ExecutedCount(); };
    p.queue_stats = [&classic] { return classic.sim().queue().GetStats(); };
  }
  return p;
}

inline ScaleResult RunScale(int n, const ScaleOptions& opt) {
  ScaleResult res;
  res.nodes = n;
  res.shards = opt.shards;
  res.threads = opt.shards > 0 ? opt.threads : 1;
  res.coalesce = opt.coalesce;

  ClusterConfig cfg = ClusterConfig::LargeScale(n, /*seed=*/77);
  cfg.num_shards = opt.shards;
  cfg.threads = opt.threads;
  cfg.overlay.coalesce_pings = opt.coalesce;
  const std::unique_ptr<ClusterHarness> cluster_ptr = MakeSimCluster(cfg);
  ClusterHarness& cluster = *cluster_ptr;
  const ScaleProbes probes = ProbesFor(cluster, opt);

  const auto t0 = std::chrono::steady_clock::now();
  cluster.Build();
  res.build_wall_s = WallSecondsSince(t0);
  res.avg_neighbors = cluster.AvgDistinctNeighbors();
  if (opt.shards > 0) {
    res.lookahead_us = static_cast<ShardedSimCluster&>(cluster).sim().lookahead().ToMicros();
  }

  // Steady state: 60 simulated seconds of full-mesh liveness pinging.
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t events0 = probes.executed();
  const uint64_t msgs0 = cluster.env().metrics().TotalMessages();
  cluster.AdvanceFor(Duration::Seconds(60));
  const double steady_wall = WallSecondsSince(t1);
  res.steady_events = probes.executed() - events0;
  res.steady_events_per_wall_s =
      steady_wall > 0 ? static_cast<double>(res.steady_events) / steady_wall : 0;
  res.steady_msgs_per_sim_s =
      static_cast<double>(cluster.env().metrics().TotalMessages() - msgs0) / 60.0;
  const EventQueue::Stats qs = probes.queue_stats();
  res.pending_timers = qs.pending;
  res.timers_scheduled = qs.scheduled;
  res.timers_cancelled = qs.cancelled;
  for (int w = 0; w < 3; ++w) {
    res.wheel_live[w] = qs.wheel_live[w];
  }

  if (!opt.with_groups) {
    return res;
  }

  // Figure 9 at scale: groups of 5, one "machine" (10 co-located virtual
  // nodes) dies, survivors of affected groups must hear about it.
  struct GroupInfo {
    FuseId id;
    std::vector<size_t> members;
  };
  const int num_groups = std::min(400, n / 5);
  std::vector<GroupInfo> groups;
  for (int g = 0; g < num_groups; ++g) {
    const auto members = cluster.PickLiveNodes(5);
    struct CreateState {
      bool done = false;
      Status status;
      FuseId id;
    };
    auto st = std::make_shared<CreateState>();
    cluster.Run([&] {
      cluster.CreateGroupInContext(members[0], cluster.RefsOf(members),
                                   [st](const Status& s, FuseId id) {
                                     st->status = s;
                                     st->id = id;
                                     st->done = true;
                                   });
    });
    cluster.Await([st] { return st->done; }, Duration::Minutes(3));
    if (st->done && st->status.ok()) {
      groups.push_back({st->id, members});
    }
  }
  res.groups = static_cast<int>(groups.size());
  cluster.AdvanceFor(Duration::Minutes(2));  // settle

  const size_t machine_first = static_cast<size_t>(n) / 2;  // 10 co-located nodes
  const size_t machine_last = machine_first + 10;
  auto latency_min = std::make_shared<Summary>();
  auto delivered = std::make_shared<int>(0);
  const TimePoint t_crash = cluster.env().Now();
  for (const auto& g : groups) {
    bool affected = false;
    for (size_t m : g.members) {
      affected = affected || (m >= machine_first && m < machine_last);
    }
    if (!affected) {
      continue;
    }
    for (size_t m : g.members) {
      if (m >= machine_first && m < machine_last) {
        continue;  // will be dead
      }
      ++res.expected_notifications;
      cluster.Run([&] {
        cluster.WatchGroupMemberInContext(
            m, g.id, [&cluster, latency_min, delivered, t_crash] {
              latency_min->Add((cluster.env().Now() - t_crash).ToSecondsF() / 60.0);
              ++*delivered;
            });
      });
    }
  }
  for (size_t m = machine_first; m < machine_last; ++m) {
    cluster.Crash(m);
  }
  cluster.AdvanceFor(Duration::Minutes(10));
  res.delivered_notifications = *delivered;
  res.notify_p50_min = latency_min->Count() > 0 ? latency_min->Median() : 0;
  res.notify_max_min = latency_min->Count() > 0 ? latency_min->Max() : 0;
  return res;
}

inline void PrintScaleResult(const ScaleResult& r, bool with_groups) {
  std::printf("\n--- %d nodes", r.nodes);
  if (r.shards > 0) {
    std::printf(" (%d shards, %d threads%s)", r.shards, r.threads,
                r.coalesce ? ", coalesced pings" : "");
  } else if (r.coalesce) {
    std::printf(" (coalesced pings)");
  }
  std::printf(" ---\n");
  std::printf("  build wall time          : %8.2f s\n", r.build_wall_s);
  std::printf("  avg distinct neighbors   : %8.1f\n", r.avg_neighbors);
  std::printf("  steady-state sim events  : %8llu in 60 sim-s\n",
              static_cast<unsigned long long>(r.steady_events));
  std::printf("  events / wall second     : %8.0f\n", r.steady_events_per_wall_s);
  std::printf("  messages / sim second    : %8.0f\n", r.steady_msgs_per_sim_s);
  std::printf("  pending timers at rest   : %8zu\n", r.pending_timers);
  std::printf("  timers scheduled (total) : %8llu  (cancelled %llu)\n",
              static_cast<unsigned long long>(r.timers_scheduled),
              static_cast<unsigned long long>(r.timers_cancelled));
  std::printf("  wheel occupancy (L0/1/2) : %zu / %zu / %zu\n", r.wheel_live[0], r.wheel_live[1],
              r.wheel_live[2]);
  if (r.shards > 0) {
    std::printf("  conservative lookahead   : %8lld us\n",
                static_cast<long long>(r.lookahead_us));
  }
  if (with_groups) {
    std::printf("  groups created           : %8d\n", r.groups);
    std::printf("  crash notifications      : %d of %d delivered\n", r.delivered_notifications,
                r.expected_notifications);
    std::printf("  notification latency     : p50 = %.2f min, max = %.2f min\n", r.notify_p50_min,
                r.notify_max_min);
  }
}

inline void WriteScaleJson(const std::string& path, const std::vector<ScaleResult>& results,
                           bool with_groups) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(f,
                 "    {\"nodes\": %d, \"shards\": %d, \"threads\": %d, \"coalesce\": %s,\n"
                 "     \"build_wall_s\": %.3f, \"avg_neighbors\": %.2f,\n"
                 "     \"steady_events\": %llu, \"events_per_wall_s\": %.0f,\n"
                 "     \"msgs_per_sim_s\": %.1f, \"pending_timers\": %zu,\n"
                 "     \"timers_scheduled\": %llu, \"timers_cancelled\": %llu",
                 r.nodes, r.shards, r.threads, r.coalesce ? "true" : "false", r.build_wall_s,
                 r.avg_neighbors, static_cast<unsigned long long>(r.steady_events),
                 r.steady_events_per_wall_s, r.steady_msgs_per_sim_s, r.pending_timers,
                 static_cast<unsigned long long>(r.timers_scheduled),
                 static_cast<unsigned long long>(r.timers_cancelled));
    if (with_groups) {
      std::fprintf(f,
                   ",\n     \"groups\": %d, \"expected_notifications\": %d,\n"
                   "     \"delivered_notifications\": %d, \"notify_p50_min\": %.3f,\n"
                   "     \"notify_max_min\": %.3f",
                   r.groups, r.expected_notifications, r.delivered_notifications,
                   r.notify_p50_min, r.notify_max_min);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace bench
}  // namespace fuse

#endif  // FUSE_BENCH_SCALE_BENCH_H_
