// Group fast-path benchmark: drive up to one million concurrent FUSE groups
// through GroupService on the classic simulator and measure where the cost
// goes once the per-ping liveness work is O(1) per link
// (FuseParams::incremental_link_digest + coalesce_group_timers):
//
//   * create throughput through the admission-windowed pipeline,
//   * steady-state events per wall second with every group idle,
//   * memory density (approx bytes of group state per group) and timer
//     pressure (armed FUSE-layer timers per group — O(nodes), not
//     O(groups), with coalescing on),
//   * signal -> notification latency p50/p99.9 over a sampled group subset,
//     with group churn (signal + replacement create) in the background.
//
// Usage:
//   bench_groups_1m                        # 1M groups, 16 nodes, fast path
//   bench_groups_1m --groups 200000
//   bench_groups_1m --classic              # recompute/per-group-timer path
//   bench_groups_1m --compare              # 100k groups on one link: classic
//                                          #   vs fast path, prints speedup
//   bench_groups_1m --smoke                # reduced CI gate (groups1m label)
//   bench_groups_1m --json out.json
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/scale_bench.h"
#include "common/metrics.h"
#include "service/group_service.h"

namespace {

using namespace fuse;
using namespace fuse::bench;

struct GroupsOptions {
  long groups = 1000000;
  int nodes = 16;
  int size = 2;  // members per group (root included)
  bool fastpath = true;
  long notify_samples = 10000;
  // Compare mode: every group spans the same (root 0, member 1) pair, so one
  // overlay link carries all of them.
  bool one_link = false;
};

struct GroupsResult {
  long groups_requested = 0;
  long groups_created = 0;
  int nodes = 0;
  int size = 0;
  bool fastpath = true;
  double build_wall_s = 0;
  double create_wall_s = 0;
  double creates_per_wall_s = 0;
  uint64_t steady_events = 0;
  double events_per_wall_s = 0;
  size_t pending_timers = 0;
  double bytes_per_group = 0;
  uint64_t armed_group_timers = 0;
  double armed_timers_per_group = 0;
  long notify_samples = 0;
  long notify_delivered = 0;
  double notify_p50_ms = 0;
  double notify_p999_ms = 0;
};

// Deterministic member spread: group g is rooted at g % nodes and spans the
// next size-1 nodes at a stride that varies with g, so every node pair
// carries load without RNG churn in the driver.
std::vector<size_t> MembersFor(long g, int nodes, int size) {
  std::vector<size_t> members;
  members.reserve(static_cast<size_t>(size));
  const size_t root = static_cast<size_t>(g % nodes);
  members.push_back(root);
  const size_t stride = 1 + static_cast<size_t>((g / nodes) % (nodes - 1));
  for (int k = 1; k < size; ++k) {
    members.push_back((root + k * stride) % static_cast<size_t>(nodes));
  }
  return members;
}

GroupsResult RunGroups(const GroupsOptions& opt) {
  GroupsResult res;
  res.groups_requested = opt.groups;
  res.nodes = opt.nodes;
  res.size = opt.size;
  res.fastpath = opt.fastpath;

  ClusterConfig cfg = ClusterConfig::LargeScale(opt.nodes, /*seed=*/99);
  cfg.fuse.incremental_link_digest = opt.fastpath;
  cfg.fuse.coalesce_group_timers = opt.fastpath;
  SimCluster cluster(cfg);

  auto t0 = std::chrono::steady_clock::now();
  cluster.Build();
  res.build_wall_s = WallSecondsSince(t0);

  GroupServiceOptions sopts;
  sopts.max_inflight_creates = 1024;
  GroupService svc(cluster, sopts);

  const auto members_for = [&opt](long g) {
    return opt.one_link ? std::vector<size_t>{0, 1} : MembersFor(g, opt.nodes, opt.size);
  };
  t0 = std::chrono::steady_clock::now();
  for (long g = 0; g < opt.groups; ++g) {
    const std::vector<size_t> members = members_for(g);
    svc.Create(members[0], members);
    // Keep the queue from buffering a million closures: admit in waves.
    if (svc.NumPendingCreates() >= 4096) {
      svc.Drain(Duration::Minutes(10));
    }
  }
  svc.Drain(Duration::Minutes(30));
  res.create_wall_s = WallSecondsSince(t0);
  res.groups_created = static_cast<long>(svc.counters().creates_ok);
  res.creates_per_wall_s =
      res.create_wall_s > 0 ? static_cast<double>(res.groups_created) / res.create_wall_s : 0;

  // Steady state: every group idle, liveness riding on overlay pings only.
  t0 = std::chrono::steady_clock::now();
  const uint64_t events0 = cluster.sim().queue().ExecutedCount();
  cluster.AdvanceFor(Duration::Seconds(60));
  const double steady_wall = WallSecondsSince(t0);
  res.steady_events = cluster.sim().queue().ExecutedCount() - events0;
  res.events_per_wall_s =
      steady_wall > 0 ? static_cast<double>(res.steady_events) / steady_wall : 0;
  res.pending_timers = cluster.sim().queue().GetStats().pending;

  // Density and timer-pressure gauges, published through the metrics sink so
  // the report and the JSON read from one place.
  size_t total_bytes = 0;
  uint64_t armed = 0;
  size_t live_groups = 0;
  cluster.Run([&] {
    for (size_t i = 0; i < cluster.size(); ++i) {
      total_bytes += cluster.node(i).fuse()->ApproxGroupBytes();
      armed += cluster.node(i).fuse()->CountArmedGroupTimers();
    }
  });
  live_groups = svc.NumLive();
  total_bytes += svc.ApproxServiceBytes();
  res.bytes_per_group =
      live_groups > 0 ? static_cast<double>(total_bytes) / static_cast<double>(live_groups) : 0;
  res.armed_group_timers = armed;
  res.armed_timers_per_group =
      live_groups > 0 ? static_cast<double>(armed) / static_cast<double>(live_groups) : 0;
  cluster.env().metrics().SetGauge(Gauge::kBytesPerGroup, res.bytes_per_group);
  cluster.env().metrics().SetGauge(Gauge::kArmedTimersPerGroup, res.armed_timers_per_group);

  // Signal -> notification latency over a sampled subset, with churn: each
  // signaled group is immediately replaced by a fresh create, so the service
  // sees arrival + departure, not just teardown.
  const long samples = std::min<long>(opt.notify_samples, res.groups_created);
  std::vector<FuseId> sampled;
  sampled.reserve(static_cast<size_t>(samples));
  {
    const size_t stride =
        samples > 0 ? std::max<size_t>(1, svc.NumLive() / static_cast<size_t>(samples)) : 1;
    size_t i = 0;
    svc.ForEachLive([&](FuseId id, const GroupService::Record&) {
      if (i++ % stride == 0 && sampled.size() < static_cast<size_t>(samples)) {
        sampled.push_back(id);
      }
    });
  }
  auto latency_ms = std::make_shared<Summary>();
  auto delivered = std::make_shared<long>(0);
  auto starts = std::make_shared<std::vector<TimePoint>>(sampled.size());
  for (size_t i = 0; i < sampled.size(); ++i) {
    const GroupService::Record* rec = svc.FindLive(sampled[i]);
    const size_t watcher = rec->members.size() > 1 ? rec->members[1] : rec->root;
    svc.Watch(watcher, sampled[i], [&cluster, latency_ms, delivered, starts, i](FuseId) {
      latency_ms->Add((cluster.env().Now() - (*starts)[i]).ToMillisF());
      ++*delivered;
    });
  }
  long churn_seq = 0;
  for (size_t i = 0; i < sampled.size(); ++i) {
    const GroupService::Record* rec = svc.FindLive(sampled[i]);
    const size_t signaler = rec != nullptr ? rec->root : 0;
    (*starts)[i] = cluster.env().Now();
    svc.Signal(signaler, sampled[i]);
    const std::vector<size_t> churn_members = members_for(churn_seq);
    svc.Create(churn_members[0], churn_members);
    ++churn_seq;
    if ((i + 1) % 1024 == 0) {
      svc.Drain(Duration::Minutes(5));
    }
  }
  svc.Drain(Duration::Minutes(10));
  cluster.Await([&] { return *delivered >= static_cast<long>(sampled.size()); },
                Duration::Minutes(10));
  res.notify_samples = static_cast<long>(sampled.size());
  res.notify_delivered = *delivered;
  res.notify_p50_ms = latency_ms->Count() > 0 ? latency_ms->Percentile(50) : 0;
  res.notify_p999_ms = latency_ms->Count() > 0 ? latency_ms->Percentile(99.9) : 0;
  return res;
}

void PrintGroupsResult(const GroupsResult& r) {
  std::printf("\n--- %ld groups, %d nodes, size %d (%s) ---\n", r.groups_requested, r.nodes,
              r.size, r.fastpath ? "fast path" : "classic");
  std::printf("  build wall time          : %10.2f s\n", r.build_wall_s);
  std::printf("  groups created           : %10ld of %ld\n", r.groups_created,
              r.groups_requested);
  std::printf("  create throughput        : %10.0f creates / wall s\n", r.creates_per_wall_s);
  std::printf("  steady-state sim events  : %10llu in 60 sim-s\n",
              static_cast<unsigned long long>(r.steady_events));
  std::printf("  events / wall second     : %10.0f\n", r.events_per_wall_s);
  std::printf("  pending timers at rest   : %10zu\n", r.pending_timers);
  std::printf("  bytes / group (approx)   : %10.1f\n", r.bytes_per_group);
  std::printf("  armed FUSE timers        : %10llu  (%.4f per group)\n",
              static_cast<unsigned long long>(r.armed_group_timers), r.armed_timers_per_group);
  std::printf("  notifications            : %10ld of %ld sampled\n", r.notify_delivered,
              r.notify_samples);
  std::printf("  notify latency           : p50 = %.1f ms, p99.9 = %.1f ms\n", r.notify_p50_ms,
              r.notify_p999_ms);
}

void WriteGroupsJson(const std::string& path, const GroupsResult& r) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"groups_1m\",\n"
               "  \"groups\": %ld, \"nodes\": %d, \"size\": %d, \"fastpath\": %s,\n"
               "  \"build_wall_s\": %.3f, \"create_wall_s\": %.3f,\n"
               "  \"creates_per_wall_s\": %.0f,\n"
               "  \"steady_events\": %llu, \"events_per_wall_s\": %.0f,\n"
               "  \"pending_timers\": %zu,\n"
               "  \"bytes_per_group\": %.1f, \"armed_group_timers\": %llu,\n"
               "  \"notify_samples\": %ld, \"notify_delivered\": %ld,\n"
               "  \"notify_p50_ms\": %.2f, \"notify_p999_ms\": %.2f\n}\n",
               r.groups_created, r.nodes, r.size, r.fastpath ? "true" : "false", r.build_wall_s,
               r.create_wall_s, r.creates_per_wall_s,
               static_cast<unsigned long long>(r.steady_events), r.events_per_wall_s,
               r.pending_timers, r.bytes_per_group,
               static_cast<unsigned long long>(r.armed_group_timers), r.notify_samples,
               r.notify_delivered, r.notify_p50_ms, r.notify_p999_ms);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

// The A/B for the tentpole claim: pile every group onto one (root, member)
// pair so a single overlay link carries all of them, then compare steady-state
// throughput with and without the fast path. Classic mode pays O(groups) SHA-1
// bytes and O(groups) timer re-arms per ping on that link; the fast path pays
// a memcmp and one stamp.
void RunCompare(long groups) {
  GroupsOptions base;
  base.groups = groups;
  base.nodes = 16;
  base.size = 2;
  base.notify_samples = 1000;
  base.one_link = true;

  std::printf("\n== one link, %ld groups: classic (recompute) pass ==\n", groups);
  GroupsOptions classic = base;
  classic.fastpath = false;
  const GroupsResult rc = RunGroups(classic);
  PrintGroupsResult(rc);

  std::printf("\n== one link, %ld groups: fast-path pass ==\n", groups);
  GroupsOptions fast = base;
  fast.fastpath = true;
  const GroupsResult rf = RunGroups(fast);
  PrintGroupsResult(rf);

  const double speedup =
      rc.events_per_wall_s > 0 ? rf.events_per_wall_s / rc.events_per_wall_s : 0;
  std::printf("\nsteady-state events/wall-s speedup (fast / classic): %.1fx  (target >= 5x)\n",
              speedup);
  std::printf("armed timers: classic %llu vs fast %llu\n",
              static_cast<unsigned long long>(rc.armed_group_timers),
              static_cast<unsigned long long>(rf.armed_group_timers));
}

}  // namespace

int main(int argc, char** argv) {
  GroupsOptions opt;
  bool smoke = false;
  bool compare = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--groups") == 0 && i + 1 < argc) {
      opt.groups = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      opt.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      opt.size = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--classic") == 0) {
      opt.fastpath = false;
    } else if (std::strcmp(argv[i], "--compare") == 0) {
      compare = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 2;
    }
  }

  Header("Group fast path: 1M concurrent groups through GroupService",
         "ROADMAP 'Millions of live FUSE groups'; FuseParams::incremental_link_digest + "
         "coalesce_group_timers");

  if (compare) {
    RunCompare(smoke ? 20000 : 100000);
    return 0;
  }
  if (smoke) {
    opt.groups = 20000;
    opt.notify_samples = 2000;
  }
  const GroupsResult r = RunGroups(opt);
  PrintGroupsResult(r);
  if (!json_path.empty()) {
    WriteGroupsJson(json_path, r);
  }
  if (r.groups_created < r.groups_requested || r.notify_delivered < r.notify_samples) {
    std::fprintf(stderr, "FAILED: creates %ld/%ld, notifications %ld/%ld\n", r.groups_created,
                 r.groups_requested, r.notify_delivered, r.notify_samples);
    return 1;
  }
  return 0;
}
