// Section 4 statistics: FUSE group sizes in SV trees.
//
// The paper: "simulating a 2000 subscriber tree on a 16,000 node overlay
// required an average of 2.9 members per FUSE group with a maximum size of
// 13", with sizes nearly independent of tree size and growing slowly with
// overlay size. We sweep subscriber counts and overlay sizes and report the
// same statistics.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "svtree/sv_tree.h"

namespace {

struct TreeStats {
  double mean = 0;
  int max = 0;
  int links = 0;
};

TreeStats BuildTree(int overlay_nodes, int subscribers, uint64_t seed) {
  using namespace fuse;
  using namespace fuse::bench;
  ClusterConfig cfg;
  cfg.num_nodes = overlay_nodes;
  cfg.seed = seed;
  cfg.cost = CostModel::Simulator();
  cfg.overlay.table.leaf_set_half = 4;  // keep overlay routes multi-hop
  SimCluster cluster(cfg);
  cluster.Build();

  std::vector<std::unique_ptr<SvTreeNode>> apps(cluster.size());
  for (size_t i = 0; i < cluster.size(); ++i) {
    auto& node = cluster.node(i);
    apps[i] = std::make_unique<SvTreeNode>(node.transport(), node.overlay(), node.fuse());
  }
  const size_t root = cluster.size() - 1;  // high name: clockwise paths overlap
  apps[root]->CreateTopic("t");
  // Subscribe a random sample, high names first so interception can happen.
  std::vector<size_t> subs;
  for (size_t i = 0; i + 1 < cluster.size(); ++i) {
    subs.push_back(i);
  }
  cluster.sim().rng().Shuffle(subs);
  subs.resize(static_cast<size_t>(subscribers));
  std::sort(subs.rbegin(), subs.rend());
  for (size_t s : subs) {
    apps[s]->Subscribe("t", cluster.RefOf(root),
                       [](const std::string&, uint64_t, const std::vector<uint8_t>&) {});
    cluster.sim().RunUntilCondition([&] { return apps[s]->HasUplink("t"); },
                                    cluster.sim().Now() + Duration::Minutes(3));
  }
  cluster.sim().RunFor(Duration::Minutes(1));

  TreeStats out;
  long total = 0;
  for (size_t s : subs) {
    for (int size : apps[s]->stats().group_sizes) {
      total += size;
      out.max = std::max(out.max, size);
      out.links++;
    }
  }
  out.mean = out.links == 0 ? 0.0 : static_cast<double>(total) / out.links;
  return out;
}

}  // namespace

int main() {
  using namespace fuse;
  using namespace fuse::bench;
  Header("Section 4: FUSE group sizes in SV trees", "paper section 4 statistics");

  std::printf("\ntree-size sweep (overlay fixed at 400 nodes):\n");
  std::printf("  %12s %12s %10s %8s\n", "subscribers", "fuse groups", "mean size", "max");
  for (const int subs : {50, 150, 300}) {
    const TreeStats s = BuildTree(400, subs, 40001 + subs);
    std::printf("  %12d %12d %10.2f %8d\n", subs, s.links, s.mean, s.max);
  }

  std::printf("\noverlay-size sweep (subscribers fixed at 25%% of overlay):\n");
  std::printf("  %12s %12s %10s %8s\n", "overlay", "fuse groups", "mean size", "max");
  for (const int nodes : {200, 400, 800}) {
    const TreeStats s = BuildTree(nodes, nodes / 4, 41001 + nodes);
    std::printf("  %12d %12d %10.2f %8d\n", nodes, s.links, s.mean, s.max);
  }

  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  mean group size small (~3)       : paper reports 2.9, max 13, on a 16k overlay\n");
  std::printf("  sizes ~independent of tree size, growing slowly with overlay size\n");
  return 0;
}
