// Ablation (paper section 6): repair vs. immediate failure on delegate paths.
//
// The paper chose to repair liveness trees when a path through a delegate
// breaks, noting the simpler alternative — signalling failure on every group
// using the path — "can be a significant source of false positives". We
// measure exactly that: group survival under overlay churn (no member of any
// watched group ever crashes) with repair on and off.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace fuse;
using namespace fuse::bench;

struct RepairResult {
  int groups = 0;
  int false_positives = 0;
  uint64_t repairs = 0;
};

RepairResult Run(bool attempt_repair, uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_nodes = 200;
  cfg.seed = seed;
  cfg.cost = CostModel::Cluster();
  cfg.hosts_per_machine = 10;
  cfg.fuse.attempt_repair = attempt_repair;
  SimCluster cluster(cfg);
  cluster.Build();

  // Groups entirely within the stable first half; churn the second half.
  RepairResult out;
  struct Watch {
    bool failed = false;
  };
  std::vector<std::unique_ptr<Watch>> watches;
  for (int g = 0; g < 40; ++g) {
    std::vector<size_t> members;
    for (size_t i : cluster.sim().rng().SampleIndices(100, 5)) {
      members.push_back(i);
    }
    Status status;
    const FuseId id = CreateGroupTimed(cluster, members[0], members, &status, nullptr);
    if (!status.ok()) {
      continue;
    }
    out.groups++;
    watches.push_back(std::make_unique<Watch>());
    Watch* w = watches.back().get();
    cluster.node(members[0]).fuse()->RegisterFailureHandler(id, [w](FuseId) { w->failed = true; });
  }
  // Aggressive churn among the other 100 nodes: delegates die constantly.
  cluster.StartChurn(100, 100, Duration::Minutes(8), Duration::Minutes(8));
  cluster.sim().RunFor(Duration::Minutes(45));
  cluster.StopChurn();
  for (const auto& w : watches) {
    if (w->failed) {
      out.false_positives++;
    }
  }
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.IsUp(i)) {
      out.repairs += cluster.node(i).fuse()->stats().repairs_initiated;
    }
  }
  return out;
}

}  // namespace

int main() {
  Header("Ablation: repair vs immediate failure on delegate-path breaks",
         "paper section 6 design choice");

  const RepairResult with_repair = Run(/*attempt_repair=*/true, 61001);
  const RepairResult no_repair = Run(/*attempt_repair=*/false, 61001);

  std::printf("\n45 minutes of churn among non-members (no watched member ever crashes):\n");
  std::printf("  %-22s %10s %18s %10s\n", "mode", "groups", "false positives", "repairs");
  std::printf("  %-22s %10d %15d (%2.0f%%) %10llu\n", "repair (paper)", with_repair.groups,
              with_repair.false_positives,
              100.0 * with_repair.false_positives / with_repair.groups,
              static_cast<unsigned long long>(with_repair.repairs));
  std::printf("  %-22s %10d %15d (%2.0f%%) %10llu\n", "immediate failure", no_repair.groups,
              no_repair.false_positives, 100.0 * no_repair.false_positives / no_repair.groups,
              static_cast<unsigned long long>(no_repair.repairs));

  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  repair keeps false positives near zero; immediate failure does not\n");
  return 0;
}
