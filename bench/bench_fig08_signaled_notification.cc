// Figure 8: latency of explicitly signalled failure notification.
//
// For the same group sizes as Figure 7, a random member calls SignalFailure;
// we record when each other member's handler fires. Expectations from the
// paper: notification is much cheaper than creation (cached connections,
// one-way messages, no blocking on the slowest member); a non-root signaller
// adds a forwarding hop; and at sizes 16/32 the root's per-message
// serialization cost becomes visible.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace fuse;
  using namespace fuse::bench;
  Header("Figure 8: latency of signalled notification (ms) by group size",
         "paper section 7.4, Figure 8");

  SimCluster cluster(PaperClusterConfig(8001, /*cluster_mode=*/true));
  cluster.Build();

  std::map<int, Summary> by_size;
  double max_ms = 0;
  for (const int size : {2, 4, 8, 16, 32}) {
    for (int g = 0; g < 20; ++g) {
      const auto members = cluster.PickLiveNodes(static_cast<size_t>(size));
      Status status;
      const FuseId id = CreateGroupTimed(cluster, members[0], members, &status, nullptr);
      if (!status.ok()) {
        continue;
      }
      cluster.sim().RunFor(Duration::Seconds(2));
      // Register handlers everywhere; a random non-signaller measures arrival.
      int pending = 0;
      const TimePoint t0 = cluster.sim().Now();
      Summary* sink = &by_size[size];
      for (size_t m : members) {
        ++pending;
        cluster.node(m).fuse()->RegisterFailureHandler(
            id, [&cluster, &pending, sink, t0, &max_ms](FuseId) {
              const double ms = (cluster.sim().Now() - t0).ToMillisF();
              sink->Add(ms);
              max_ms = std::max(max_ms, ms);
              --pending;
            });
      }
      const size_t signaller =
          members[static_cast<size_t>(cluster.sim().rng().UniformInt(0, size - 1))];
      cluster.node(signaller).fuse()->SignalFailure(id);
      cluster.sim().RunUntilCondition([&] { return pending == 0; },
                                      cluster.sim().Now() + Duration::Minutes(2));
    }
  }

  std::printf("\nnotification latency at each member (cluster mode):\n");
  for (auto& [size, s] : by_size) {
    char label[32];
    std::snprintf(label, sizeof(label), "group size %d", size);
    PrintPercentileRow(label, s);
  }

  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  far below creation latency      : size-32 p50 = %.0f ms (creation was ~2000)\n",
              by_size[32].Median());
  std::printf("  extra forwarding hop visible    : p50 size-4 / size-2 = %.2fx (>1)\n",
              by_size[4].Median() / by_size[2].Median());
  std::printf("  serialization cost at size 32   : p50 size-32 / size-8 = %.2fx (>1)\n",
              by_size[32].Median() / by_size[8].Median());
  std::printf("  max observed                    : %.0f ms (paper: 1165 ms)\n", max_ms);
  return 0;
}
