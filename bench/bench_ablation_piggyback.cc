// Ablation (paper section 6.1): piggybacking the FUSE hash on overlay pings
// vs. sending per-link FUSE liveness messages.
//
// "FUSE could have sent its own messages across these same links, but the
// piggybacking approach amortizes the messaging costs." We count the
// monitored (group, link) pairs actually present and compare the measured
// overhead (20 hash bytes per ping) with the message load a non-piggybacked
// implementation would add.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace fuse;
  using namespace fuse::bench;
  Header("Ablation: piggybacked hash vs separate FUSE liveness messages",
         "paper section 6.1 design choice");

  SimCluster cluster(PaperClusterConfig(62001, /*cluster_mode=*/true));
  cluster.Build();
  cluster.sim().RunFor(Duration::Minutes(2));

  std::printf("\n%8s %16s %22s %22s %14s\n", "groups", "overlay msg/s", "monitored group-links",
              "separate-ping msg/s", "extra bytes/s");
  for (const int target_groups : {100, 200, 400}) {
    while (true) {
      size_t current = 0;
      for (size_t i = 0; i < cluster.size(); ++i) {
        current += cluster.node(i).fuse()->stats().groups_created;
      }
      if (current >= static_cast<size_t>(target_groups)) {
        break;
      }
      const auto members = cluster.PickLiveNodes(10);
      Status status;
      CreateGroupTimed(cluster, members[0], members, &status, nullptr);
    }
    cluster.sim().RunFor(Duration::Minutes(2));

    const auto w = cluster.sim().metrics().BeginWindow(cluster.sim().Now());
    cluster.sim().RunFor(Duration::Minutes(5));
    const double overlay_rate =
        cluster.sim().metrics().MessagesPerSecond(w, cluster.sim().Now());

    size_t monitored_links = 0;
    for (size_t i = 0; i < cluster.size(); ++i) {
      monitored_links += cluster.node(i).fuse()->NumMonitoredLinks();
    }
    // A non-piggybacked FUSE would ping each monitored (group, link) pair
    // once per period from each side, plus replies.
    const double separate_rate =
        2.0 * static_cast<double>(monitored_links) /
        cluster.config().overlay.ping_period.ToSecondsF();
    // The piggyback costs 20 bytes on each overlay ping and reply instead.
    const double ping_rate =
        static_cast<double>(
            cluster.sim().metrics().MessageCount(MsgCategory::kOverlayPing) +
            cluster.sim().metrics().MessageCount(MsgCategory::kOverlayPingReply)) /
        cluster.sim().Now().ToSecondsF();
    const double extra_bytes = 20.0 * ping_rate;

    std::printf("%8d %16.1f %22zu %22.1f %14.1f\n", target_groups, overlay_rate, monitored_links,
                separate_rate, extra_bytes);
  }

  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  separate per-link FUSE pings would add load proportional to group count;\n");
  std::printf("  piggybacking costs only 20 bytes per existing overlay ping (section 7.5)\n");

  // Second ablation: batched piggybacking. Suppose FUSE did send per-group
  // liveness messages instead of riding the overlay ping — how much of the
  // piggyback's amortization does the datagram fabric's per-destination
  // coalescing win back? Model: g groups share a monitored link with ping
  // period P; each group emits one 20-byte liveness record per period at an
  // independent phase. With coalescing horizon h, records to the same
  // destination within h ride one datagram, so a period's g records occupy
  // at most ceil(P/h) flush slots: datagrams/period = min(g, ceil(P/h)).
  // True piggybacking stays the floor — 0 extra messages, 20 bytes on an
  // overlay ping that is already paid for.
  {
    const double period_s = cluster.config().overlay.ping_period.ToSecondsF();
    constexpr double kHashBytes = 20.0;    // FUSE liveness record payload
    constexpr double kRecordHdr = 12.0;    // per-record framing in a datagram
    constexpr double kDatagramHdr = 28.0;  // IP + UDP per datagram on the wire
    // Horizons as fractions of the ping period: the fabric's default
    // sub-millisecond horizon (vs P = 60 s) coalesces nothing across groups,
    // so the sweep covers the region where batching starts to matter —
    // trading up to a full period of notification staleness for it.
    const std::vector<double> horizons_s = {0.0, period_s / 100.0, period_s / 10.0,
                                            period_s};

    std::printf("\nbatched piggybacking (coalescing horizon x groups/link, per link, period %.0f s):\n",
                period_s);
    std::printf("%14s", "horizon");
    for (const int g : {1, 4, 16, 64}) {
      std::printf(" %10s=%-3d", "g", g);
    }
    std::printf("   (datagrams/period | bytes/period)\n");
    for (const double h_s : horizons_s) {
      if (h_s == 0.0) {
        std::printf("%14s", "none");
      } else {
        std::printf("%12.1f s", h_s);
      }
      for (const int g : {1, 4, 16, 64}) {
        const double slots =
            h_s == 0.0 ? static_cast<double>(g)
                       : std::min(static_cast<double>(g), std::ceil(period_s / h_s));
        const double bytes =
            slots * kDatagramHdr + static_cast<double>(g) * (kHashBytes + kRecordHdr);
        std::printf(" %6.0f|%-7.0f", slots, bytes);
      }
      std::printf("\n");
    }
    std::printf("%14s", "piggyback");
    for (const int g : {1, 4, 16, 64}) {
      // One 20-byte hash on each of the period's two overlay ping legs; the
      // datagram itself is already paid for by the overlay.
      (void)g;
      std::printf(" %6.0f|%-7.0f", 0.0, 2.0 * kHashBytes);
    }
    std::printf("\n");
    std::printf("  coalescing recovers the message amortization once h approaches P (slots -> 1)\n");
    std::printf("  but still pays %d+%d bytes per group-record; the piggyback's constant 20 B/ping\n",
                static_cast<int>(kHashBytes), static_cast<int>(kRecordHdr));
    std::printf("  is independent of groups/link — the paper's design holds even against batching\n");
  }
  return 0;
}
