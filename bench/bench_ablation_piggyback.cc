// Ablation (paper section 6.1): piggybacking the FUSE hash on overlay pings
// vs. sending per-link FUSE liveness messages.
//
// "FUSE could have sent its own messages across these same links, but the
// piggybacking approach amortizes the messaging costs." We count the
// monitored (group, link) pairs actually present and compare the measured
// overhead (20 hash bytes per ping) with the message load a non-piggybacked
// implementation would add.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace fuse;
  using namespace fuse::bench;
  Header("Ablation: piggybacked hash vs separate FUSE liveness messages",
         "paper section 6.1 design choice");

  SimCluster cluster(PaperClusterConfig(62001, /*cluster_mode=*/true));
  cluster.Build();
  cluster.sim().RunFor(Duration::Minutes(2));

  std::printf("\n%8s %16s %22s %22s %14s\n", "groups", "overlay msg/s", "monitored group-links",
              "separate-ping msg/s", "extra bytes/s");
  for (const int target_groups : {100, 200, 400}) {
    while (true) {
      size_t current = 0;
      for (size_t i = 0; i < cluster.size(); ++i) {
        current += cluster.node(i).fuse()->stats().groups_created;
      }
      if (current >= static_cast<size_t>(target_groups)) {
        break;
      }
      const auto members = cluster.PickLiveNodes(10);
      Status status;
      CreateGroupTimed(cluster, members[0], members, &status, nullptr);
    }
    cluster.sim().RunFor(Duration::Minutes(2));

    const auto w = cluster.sim().metrics().BeginWindow(cluster.sim().Now());
    cluster.sim().RunFor(Duration::Minutes(5));
    const double overlay_rate =
        cluster.sim().metrics().MessagesPerSecond(w, cluster.sim().Now());

    size_t monitored_links = 0;
    for (size_t i = 0; i < cluster.size(); ++i) {
      monitored_links += cluster.node(i).fuse()->NumMonitoredLinks();
    }
    // A non-piggybacked FUSE would ping each monitored (group, link) pair
    // once per period from each side, plus replies.
    const double separate_rate =
        2.0 * static_cast<double>(monitored_links) /
        cluster.config().overlay.ping_period.ToSecondsF();
    // The piggyback costs 20 bytes on each overlay ping and reply instead.
    const double ping_rate =
        static_cast<double>(
            cluster.sim().metrics().MessageCount(MsgCategory::kOverlayPing) +
            cluster.sim().metrics().MessageCount(MsgCategory::kOverlayPingReply)) /
        cluster.sim().Now().ToSecondsF();
    const double extra_bytes = 20.0 * ping_rate;

    std::printf("%8d %16.1f %22zu %22.1f %14.1f\n", target_groups, overlay_rate, monitored_links,
                separate_rate, extra_bytes);
  }

  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  separate per-link FUSE pings would add load proportional to group count;\n");
  std::printf("  piggybacking costs only 20 bytes per existing overlay ping (section 7.5)\n");
  return 0;
}
