// Binary-wide counting allocator hook: replaces global operator new/delete
// so a test or benchmark can assert (or report) how many heap allocations a
// code path performs.
//
// IMPORTANT: this header DEFINES the replacement operators. Include it from
// exactly ONE translation unit of a binary (including it twice in the same
// binary violates the one-definition rule at link time).
#ifndef FUSE_BENCH_ALLOC_COUNTER_H_
#define FUSE_BENCH_ALLOC_COUNTER_H_

#include <atomic>
#include <cstdlib>
#include <new>

namespace fuse {
namespace alloc_counter {

inline std::atomic<uint64_t> count{0};

inline uint64_t Read() { return count.load(std::memory_order_relaxed); }

}  // namespace alloc_counter
}  // namespace fuse

// GCC flags free() inside a replaced operator delete as mismatched; the
// replacement pair below routes every new through malloc, so it is matched.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  fuse::alloc_counter::count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

#endif  // FUSE_BENCH_ALLOC_COUNTER_H_
