// Figure 7: latency of FUSE group creation vs. group size.
//
// 20 groups of each size in {2,4,8,16,32}, members uniformly distributed;
// blocking create (the callback fires once every member replied). The paper
// reports growing percentiles with size (more members => higher chance of a
// slow path) and simulator times about half the cluster times (no TCP
// connection setup).
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"

namespace {

std::map<int, fuse::Summary> RunCreation(bool cluster_mode, uint64_t seed) {
  using namespace fuse;
  using namespace fuse::bench;
  SimCluster cluster(PaperClusterConfig(seed, cluster_mode));
  cluster.Build();
  std::map<int, Summary> by_size;
  size_t created = 0;
  for (const int size : {2, 4, 8, 16, 32}) {
    for (int g = 0; g < 20; ++g) {
      const auto members = cluster.PickLiveNodes(static_cast<size_t>(size));
      Status status;
      double ms = 0;
      CreateGroupTimed(cluster, members[0], members, &status, &ms);
      if (status.ok()) {
        by_size[size].Add(ms);
        ++created;
      }
      cluster.sim().RunFor(Duration::Seconds(2));
    }
  }
  // Density/timer-pressure gauges over the groups left alive, published the
  // same way bench_groups_1m reports them.
  size_t total_bytes = 0;
  uint64_t armed = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    total_bytes += cluster.node(i).fuse()->ApproxGroupBytes();
    armed += cluster.node(i).fuse()->CountArmedGroupTimers();
  }
  if (created > 0) {
    Metrics& metrics = cluster.env().metrics();
    metrics.SetGauge(Gauge::kBytesPerGroup,
                     static_cast<double>(total_bytes) / static_cast<double>(created));
    metrics.SetGauge(Gauge::kArmedTimersPerGroup,
                     static_cast<double>(armed) / static_cast<double>(created));
    std::printf("  [%s] %s=%.1f %s=%.2f over %zu groups\n",
                cluster_mode ? "cluster" : "simulator", GaugeName(Gauge::kBytesPerGroup),
                metrics.GetGauge(Gauge::kBytesPerGroup), GaugeName(Gauge::kArmedTimersPerGroup),
                metrics.GetGauge(Gauge::kArmedTimersPerGroup), created);
  }
  return by_size;
}

}  // namespace

int main() {
  using namespace fuse;
  using namespace fuse::bench;
  Header("Figure 7: latency of group creation (ms) by group size", "paper section 7.3, Figure 7");

  auto cluster_runs = RunCreation(/*cluster_mode=*/true, 7001);
  auto sim_runs = RunCreation(/*cluster_mode=*/false, 7001);

  std::printf("\ncluster mode (connection setup + messaging overheads):\n");
  for (auto& [size, s] : cluster_runs) {
    char label[32];
    std::snprintf(label, sizeof(label), "group size %d", size);
    PrintPercentileRow(label, s);
  }
  std::printf("\nsimulator mode:\n");
  for (auto& [size, s] : sim_runs) {
    char label[32];
    std::snprintf(label, sizeof(label), "group size %d", size);
    PrintPercentileRow(label, s);
  }

  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  creation latency grows with size : size-32 p50 / size-2 p50 = %.2fx (>1)\n",
              cluster_runs[32].Median() / cluster_runs[2].Median());
  std::printf("  simulator ~ half of cluster      : cluster p50 / simulator p50 @8 = %.2fx "
              "(paper: ~2x)\n",
              cluster_runs[8].Median() / sim_runs[8].Median());
  std::printf("  cluster size-32 p50              : %.0f ms (paper: ~2000-2500 ms)\n",
              cluster_runs[32].Median());
  return 0;
}
