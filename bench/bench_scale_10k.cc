// Scaling benchmark: pushes the simulator past the paper's 400 virtual nodes
// toward 10k+, exercising the timer-wheel event core under the full
// steady-state ping load (every node pings every distinct routing-table
// neighbor each period — paper section 7.4).
//
// For each scale it reports:
//   * Build() wall time (topology + joins + ring convergence),
//   * steady-state throughput: simulated events and messages executed per
//     wall second over 60 simulated seconds of pinging,
//   * timer pressure: pending/scheduled/cancelled event counts (the numbers
//     ping coalescing is measured against),
//   * crash-notification latency: one co-located "machine" (10 virtual
//     nodes) crashes and every surviving member of an affected FUSE group
//     must be notified (the Figure 9 experiment, at scale).
//
// Usage:
//   bench_scale_10k                      # full sweep: 1000 4000 10000
//   bench_scale_10k 1000 4000            # explicit scales
//   bench_scale_10k --smoke              # CI gate: 10k build + 60 s pings
//   bench_scale_10k --shards 8 --threads 4   # sharded parallel backend
//   bench_scale_10k --coalesce           # batch each node's pings
//   bench_scale_10k --json out.json ...  # also emit machine-readable results
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/scale_bench.h"

int main(int argc, char** argv) {
  using namespace fuse::bench;

  bool smoke = false;
  std::string json_path;
  std::vector<int> scales;
  ScaleOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      opt.shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--coalesce") == 0) {
      opt.coalesce = true;
    } else {
      scales.push_back(std::atoi(argv[i]));
    }
  }
  if (scales.empty()) {
    scales = smoke ? std::vector<int>{10000} : std::vector<int>{1000, 4000, 10000};
  }
  opt.with_groups = !smoke;

  Header("Scale: timer-wheel event core at 1k-10k virtual nodes",
         "ROADMAP 'Scale the simulator' (beyond paper section 7.1's 400 nodes)");
  std::vector<ScaleResult> results;
  for (int n : scales) {
    results.push_back(RunScale(n, opt));
    PrintScaleResult(results.back(), opt.with_groups);
  }
  if (!json_path.empty()) {
    WriteScaleJson(json_path, results, opt.with_groups);
  }
  return 0;
}
