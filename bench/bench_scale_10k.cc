// Scaling benchmark: pushes SimCluster past the paper's 400 virtual nodes
// toward 10k+, exercising the timer-wheel event core under the full
// steady-state ping load (every node pings every distinct routing-table
// neighbor each period — paper section 7.4).
//
// For each scale it reports:
//   * Build() wall time (topology + joins + ring convergence),
//   * steady-state throughput: simulated events and messages executed per
//     wall second over 60 simulated seconds of pinging,
//   * crash-notification latency: one co-located "machine" (10 virtual
//     nodes) crashes and every surviving member of an affected FUSE group
//     must be notified (the Figure 9 experiment, at scale).
//
// Usage:
//   bench_scale_10k                      # full sweep: 1000 4000 10000
//   bench_scale_10k 1000 4000            # explicit scales
//   bench_scale_10k --smoke              # CI gate: 10k build + 60 s pings
//   bench_scale_10k --json out.json ...  # also emit machine-readable results
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace fuse;
using namespace fuse::bench;

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct ScaleResult {
  int nodes = 0;
  double build_wall_s = 0;
  double avg_neighbors = 0;
  uint64_t steady_events = 0;
  double steady_events_per_wall_s = 0;
  double steady_msgs_per_sim_s = 0;
  size_t pending_timers = 0;
  int groups = 0;
  int expected_notifications = 0;
  int delivered_notifications = 0;
  double notify_p50_min = 0;
  double notify_max_min = 0;
};

ScaleResult RunScale(int n, bool with_groups) {
  ScaleResult res;
  res.nodes = n;

  SimCluster cluster(ClusterConfig::LargeScale(n, /*seed=*/77));
  const auto t0 = std::chrono::steady_clock::now();
  cluster.Build();
  res.build_wall_s = WallSeconds(t0);
  res.avg_neighbors = cluster.AvgDistinctNeighbors();

  // Steady state: 60 simulated seconds of full-mesh liveness pinging.
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t events0 = cluster.sim().queue().ExecutedCount();
  const uint64_t msgs0 = cluster.sim().metrics().TotalMessages();
  cluster.sim().RunFor(Duration::Seconds(60));
  const double steady_wall = WallSeconds(t1);
  res.steady_events = cluster.sim().queue().ExecutedCount() - events0;
  res.steady_events_per_wall_s =
      steady_wall > 0 ? static_cast<double>(res.steady_events) / steady_wall : 0;
  res.steady_msgs_per_sim_s =
      static_cast<double>(cluster.sim().metrics().TotalMessages() - msgs0) / 60.0;
  res.pending_timers = cluster.sim().queue().PendingCount();

  if (!with_groups) {
    return res;
  }

  // Figure 9 at scale: groups of 5, one "machine" (10 co-located virtual
  // nodes) dies, survivors of affected groups must hear about it.
  struct GroupInfo {
    FuseId id;
    std::vector<size_t> members;
  };
  const int num_groups = std::min(400, n / 5);
  std::vector<GroupInfo> groups;
  for (int g = 0; g < num_groups; ++g) {
    const auto members = cluster.PickLiveNodes(5);
    Status status;
    const FuseId id = CreateGroupTimed(cluster, members[0], members, &status, nullptr);
    if (status.ok()) {
      groups.push_back({id, members});
    }
  }
  res.groups = static_cast<int>(groups.size());
  cluster.sim().RunFor(Duration::Minutes(2));  // settle

  const size_t machine_first = static_cast<size_t>(n) / 2;  // 10 co-located nodes
  const size_t machine_last = machine_first + 10;
  Summary latency_min;
  int delivered = 0;
  const TimePoint t_crash = cluster.sim().Now();
  for (const auto& g : groups) {
    bool affected = false;
    for (size_t m : g.members) {
      affected = affected || (m >= machine_first && m < machine_last);
    }
    if (!affected) {
      continue;
    }
    for (size_t m : g.members) {
      if (m >= machine_first && m < machine_last) {
        continue;  // will be dead
      }
      ++res.expected_notifications;
      cluster.node(m).fuse()->RegisterFailureHandler(
          g.id, [&cluster, &latency_min, &delivered, t_crash](FuseId) {
            latency_min.Add((cluster.sim().Now() - t_crash).ToSecondsF() / 60.0);
            ++delivered;
          });
    }
  }
  for (size_t m = machine_first; m < machine_last; ++m) {
    cluster.Crash(m);
  }
  cluster.sim().RunFor(Duration::Minutes(10));
  res.delivered_notifications = delivered;
  res.notify_p50_min = latency_min.Count() > 0 ? latency_min.Median() : 0;
  res.notify_max_min = latency_min.Count() > 0 ? latency_min.Max() : 0;
  return res;
}

void PrintResult(const ScaleResult& r, bool with_groups) {
  std::printf("\n--- %d nodes ---\n", r.nodes);
  std::printf("  build wall time          : %8.2f s\n", r.build_wall_s);
  std::printf("  avg distinct neighbors   : %8.1f\n", r.avg_neighbors);
  std::printf("  steady-state sim events  : %8llu in 60 sim-s\n",
              static_cast<unsigned long long>(r.steady_events));
  std::printf("  events / wall second     : %8.0f\n", r.steady_events_per_wall_s);
  std::printf("  messages / sim second    : %8.0f\n", r.steady_msgs_per_sim_s);
  std::printf("  pending timers at rest   : %8zu\n", r.pending_timers);
  if (with_groups) {
    std::printf("  groups created           : %8d\n", r.groups);
    std::printf("  crash notifications      : %d of %d delivered\n", r.delivered_notifications,
                r.expected_notifications);
    std::printf("  notification latency     : p50 = %.2f min, max = %.2f min\n", r.notify_p50_min,
                r.notify_max_min);
  }
}

void WriteJson(const std::string& path, const std::vector<ScaleResult>& results,
               bool with_groups) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(f,
                 "    {\"nodes\": %d, \"build_wall_s\": %.3f, \"avg_neighbors\": %.2f,\n"
                 "     \"steady_events\": %llu, \"events_per_wall_s\": %.0f,\n"
                 "     \"msgs_per_sim_s\": %.1f, \"pending_timers\": %zu",
                 r.nodes, r.build_wall_s, r.avg_neighbors,
                 static_cast<unsigned long long>(r.steady_events), r.steady_events_per_wall_s,
                 r.steady_msgs_per_sim_s, r.pending_timers);
    if (with_groups) {
      std::fprintf(f,
                   ",\n     \"groups\": %d, \"expected_notifications\": %d,\n"
                   "     \"delivered_notifications\": %d, \"notify_p50_min\": %.3f,\n"
                   "     \"notify_max_min\": %.3f",
                   r.groups, r.expected_notifications, r.delivered_notifications,
                   r.notify_p50_min, r.notify_max_min);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::vector<int> scales;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      scales.push_back(std::atoi(argv[i]));
    }
  }
  if (scales.empty()) {
    scales = smoke ? std::vector<int>{10000} : std::vector<int>{1000, 4000, 10000};
  }
  const bool with_groups = !smoke;

  Header("Scale: timer-wheel event core at 1k-10k virtual nodes",
         "ROADMAP 'Scale the simulator' (beyond paper section 7.1's 400 nodes)");
  std::vector<ScaleResult> results;
  for (int n : scales) {
    results.push_back(RunScale(n, with_groups));
    PrintResult(results.back(), with_groups);
  }
  if (!json_path.empty()) {
    WriteJson(json_path, results, with_groups);
  }
  return 0;
}
