// SkipNetNode: one overlay node — join protocol, greedy name routing with
// per-hop client upcalls, neighbor liveness, and routing-table repair.
//
// This provides the two features the paper's FUSE implementation requires of
// its overlay (section 6.1): client upcalls on every intermediate hop of a
// routed message, and a routing table visible to the client (FUSE piggybacks
// its hash on the ping traffic between routing-table neighbors).
#ifndef FUSE_OVERLAY_SKIPNET_NODE_H_
#define FUSE_OVERLAY_SKIPNET_NODE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "overlay/ping_manager.h"
#include "overlay/routing_table.h"
#include "overlay/skipnet_id.h"
#include "rpc/rpc.h"
#include "transport/transport.h"

namespace fuse {

// Serialization helpers shared with FUSE wire messages.
void WriteNodeRef(Writer& w, const NodeRef& ref);
NodeRef ReadNodeRef(Reader& r);

struct SkipNetConfig {
  OverlayParams table;
  Duration ping_period = Duration::Seconds(60);  // paper section 7.1
  Duration ping_timeout = Duration::Seconds(20);  // paper section 7.4
  Duration join_timeout = Duration::Seconds(30);
  int join_attempts = 3;
  Duration query_timeout = Duration::Seconds(10);
  int walk_budget = 48;  // max ring-walk steps per level during join/repair
  Duration repair_delay = Duration::Seconds(1);
  // Leaf-set anti-entropy: every period, exchange neighborhoods with one leaf
  // neighbor so the level-0 ring converges after failures.
  Duration leaf_exchange_period = Duration::Seconds(150);
  // When false, liveness pinging must be started explicitly (the cluster
  // harness defers it until the whole overlay is built).
  bool start_maintenance_on_join = true;
  // Batch all of a node's periodic pings behind one timer pair instead of
  // two timers per neighbor (see PingManager). Off by default: flipping it
  // changes the schedule, and the blessed deterministic traces were recorded
  // without it. Large-scale benches turn it on.
  bool coalesce_pings = false;
};

class SkipNetNode {
 public:
  using JoinCallback = std::function<void(const Status&)>;

  // Per-hop upcall for routed client messages. Fires on every node the
  // message visits, including the origin and the terminal node. The handler
  // may mutate `payload` (the message forwards with the mutated bytes) and
  // may consume the message by returning true (it is not forwarded further).
  struct RoutedUpcall {
    std::string dest;       // destination name
    NodeRef origin;         // node that called RouteByName
    HostId prev_hop;        // invalid at the origin
    NodeRef next_hop;       // invalid at the terminal node
    bool at_dest = false;   // true iff this node's name equals dest
    int hop_index = 0;      // 0 at the origin
    std::vector<uint8_t> payload;
  };
  using RoutedHandler = std::function<bool(RoutedUpcall&)>;
  using NeighborFailureHandler = std::function<void(HostId)>;

  SkipNetNode(Transport* transport, RpcNode* rpc, std::string name, NumericId numeric,
              SkipNetConfig config);
  ~SkipNetNode();

  SkipNetNode(const SkipNetNode&) = delete;
  SkipNetNode& operator=(const SkipNetNode&) = delete;

  // --- lifecycle ---
  // Declares this node the first member of a fresh overlay.
  void JoinAsFirst();
  // Joins via any existing member; `cb` fires once.
  void Join(HostId bootstrap, JoinCallback cb);
  bool joined() const { return joined_; }
  // Begins neighbor liveness checking (called automatically after join).
  void StartMaintenance();
  // Runs one leaf-set anti-entropy exchange immediately (used by the cluster
  // harness to converge the ring right after construction).
  void RunLeafExchangeOnce();
  // Stops all timers; the node stops participating (used before destruction).
  void Shutdown();

  // --- identity / introspection ---
  const NodeRef& self() const { return self_; }
  const NumericId& numeric() const { return numeric_; }
  const RoutingTable& table() const { return table_; }
  std::vector<HostId> DistinctNeighborHosts() const { return table_.DistinctNeighborHosts(); }
  size_t NumDistinctNeighbors() const { return table_.DistinctNeighborHosts().size(); }

  // --- client (FUSE) surface ---
  void SetRoutedHandler(uint16_t client_tag, RoutedHandler handler);
  // Routes `payload` greedily toward `dest_name`; upcalls fire along the way.
  void RouteByName(const std::string& dest_name, uint16_t client_tag,
                   std::vector<uint8_t> payload, MsgCategory category);
  void SetPingPayloadProvider(PingManager::PayloadProvider p);
  void SetPingPayloadObserver(PingManager::PayloadObserver o);
  // Client hook invoked (in addition to internal repair) when a routing-table
  // neighbor is detected as failed.
  void SetNeighborFailureHandler(NeighborFailureHandler h);

  // Reports a neighbor as failed (e.g. the client saw a broken connection).
  void ReportNeighborFailure(HostId host);

 private:
  // Internal routed-message tag for join searches.
  static constexpr uint16_t kJoinSearchTag = 0;

  struct RoutedEnvelope {
    std::string dest;
    uint16_t tag = 0;
    NodeRef origin;
    uint16_t hops = 0;
    uint8_t category = 0;
    std::vector<uint8_t> payload;
  };

  static std::vector<uint8_t> EncodeEnvelope(const RoutedEnvelope& env);
  static std::optional<RoutedEnvelope> DecodeEnvelope(const WireMessage& msg);

  // --- routed messages ---
  void HandleRouted(const WireMessage& msg);
  void ProcessEnvelope(RoutedEnvelope env, HostId prev_hop);
  void ForwardEnvelope(RoutedEnvelope env, const NodeRef& next, int retries_left);

  // --- join ---
  void HandleJoinSearch(const RoutedUpcall& upcall);
  void HandleJoinSearchReply(const WireMessage& msg);
  void StartJoinAttempt();
  void FinishJoin(const Status& status);
  void ClimbLevel(int level, bool clockwise, NodeRef walk_at, int steps_left);
  void ClimbNextAfter(int level, bool clockwise);

  // --- neighbor pointer maintenance ---
  void HandleNeighborNotify(const WireMessage& msg);
  void SendNeighborNotify(const NodeRef& to, int level);
  // Adopts `candidate` into level `h` pointers / leaf set if it is nearer
  // than what we have. Returns true if anything changed.
  bool TryAdopt(int level, const NodeRef& candidate, const NumericId& numeric);

  // --- neighbor queries (rpc) ---
  std::vector<uint8_t> HandleNeighborQuery(HostId caller, const std::vector<uint8_t>& req);

  // --- failure handling / repair ---
  void OnNeighborFailed(HostId host);
  void ScheduleRepair();
  void RunRepair();
  void RepairWalk(int level, bool clockwise, NodeRef walk_at, int steps_left);
  void RefillLeafSet();
  // Asks `target` for its neighborhood and merges the reply into our table.
  void QueryAndMergeNeighborhood(const NodeRef& target);
  void ScheduleLeafExchange();
  void FixLevelZeroFromLeafSet();

  void RefreshPingSet();

  Transport* transport_;
  RpcNode* rpc_;
  NodeRef self_;
  NumericId numeric_;
  SkipNetConfig config_;
  RoutingTable table_;
  PingManager pings_;

  bool joined_ = false;
  bool shutdown_ = false;

  // Join state.
  JoinCallback join_cb_;
  HostId join_bootstrap_;
  int join_attempts_left_ = 0;
  TimerId join_timer_;
  int climb_level_ = 0;
  bool climb_cw_done_ = false;

  // Pending repair.
  TimerId repair_timer_;
  TimerId leaf_exchange_timer_;
  bool exchange_cw_next_ = true;

  // Hosts recently detected as failed: not re-adopted from stale candidate
  // lists until the quarantine expires (or they contact us again).
  std::unordered_map<HostId, TimePoint> recently_failed_;
  bool IsQuarantined(HostId host) const;
  void ClearQuarantine(HostId host) { recently_failed_.erase(host); }

  std::unordered_map<uint16_t, RoutedHandler> routed_handlers_;
  NeighborFailureHandler client_failure_handler_;
  PingManager::PayloadProvider client_payload_provider_;
};

}  // namespace fuse

#endif  // FUSE_OVERLAY_SKIPNET_NODE_H_
