#include "overlay/ping_manager.h"

#include <utility>

namespace fuse {

namespace {
// Wire layout: u64 seq, then the client payload to the end of the message.
constexpr size_t kPingHeaderBytes = 8;
}  // namespace

PingManager::PingManager(Transport* transport, Duration period, Duration timeout, bool coalesce)
    : transport_(transport), period_(period), timeout_(timeout), coalesce_(coalesce) {
  transport_->RegisterHandler(msgtype::kOverlayPing,
                              [this](const WireMessage& m) { OnPing(m); });
  transport_->RegisterHandler(msgtype::kOverlayPingReply,
                              [this](const WireMessage& m) { OnPingReply(m); });
  if (coalesce_) {
    round_timer_.Bind(transport_->env());
    round_timeout_.Bind(transport_->env());
    round_timeout_.SetCallback([this] { OnRoundTimeout(); });
  }
}

PingManager::~PingManager() { Stop(); }

void PingManager::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  if (coalesce_) {
    // One jittered phase for the whole batch: the cluster's rounds spread
    // over the period even though each node's pings leave together.
    const Duration phase =
        Duration::Micros(transport_->env().rng().UniformInt(0, period_.ToMicros()));
    round_timer_.Start(phase, period_, [this] { SendRound(); });
    return;
  }
  peers_.ForEach([this](uint64_t key, Peer& peer) {
    if (!peer.ping.running() && !peer.failed) {
      StartPeerPings(HostId(key));
    }
  });
}

void PingManager::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (coalesce_) {
    round_timer_.Stop();
    round_timeout_.Cancel();
    peers_.ForEach([](uint64_t, Peer& peer) { peer.awaiting = false; });
    return;
  }
  peers_.ForEach([](uint64_t, Peer& peer) {
    peer.ping.Stop();
    peer.timeout.Cancel();
  });
}

void PingManager::UpdateNeighbors(const std::vector<HostId>& neighbors) {
  // Stamp every wanted peer with this round's epoch, creating the new ones;
  // whatever still carries an older stamp afterwards is no longer wanted.
  // No scratch map: the stamp lives in the peer entry.
  ++wanted_epoch_;
  for (const HostId h : neighbors) {
    if (Peer* existing = peers_.Find(h.value); existing != nullptr) {
      existing->wanted_epoch = wanted_epoch_;
      continue;
    }
    Peer& p = peers_.FindOrInsert(h.value);
    p.wanted_epoch = wanted_epoch_;
    if (coalesce_) {
      continue;  // no per-peer timers: the next round picks the peer up
    }
    p.ping.Bind(transport_->env());
    p.timeout.Bind(transport_->env());
    // The timeout callback is installed once; every subsequent ping just
    // rearms it (Restart), allocation-free.
    p.timeout.SetCallback([this, h] { HandleFailure(h); });
    if (running_) {
      StartPeerPings(h);
    }
  }
  doomed_.clear();
  peers_.ForEach([this](uint64_t key, Peer& peer) {
    if (peer.wanted_epoch != wanted_epoch_) {
      doomed_.push_back(key);
    }
  });
  for (const uint64_t key : doomed_) {
    peers_.Erase(key);  // resets the entry: its timers auto-cancel
  }
}

void PingManager::StartPeerPings(HostId peer) {
  Peer* p = peers_.Find(peer.value);
  if (p == nullptr || p->failed) {
    return;
  }
  // A jittered first ping spreads load over the period (matches the
  // steady-state message-rate accounting of section 7.5); afterwards the
  // cycle is strictly periodic.
  const Duration phase =
      Duration::Micros(transport_->env().rng().UniformInt(0, period_.ToMicros()));
  p->ping.Start(phase, period_, [this, peer] { SendPing(peer); });
}

void PingManager::SendPing(HostId peer) {
  Peer* p = peers_.Find(peer.value);
  if (p == nullptr || p->failed || !running_) {
    return;
  }
  // Keep the earliest outstanding deadline: if timeout >= period, a new
  // periodic send must not push out the failure verdict for the previous,
  // still-unanswered ping (a dead peer would never time out otherwise).
  if (!p->timeout.pending()) {
    p->timeout.Restart(timeout_);
  }
  SendPingTo(peer);
}

void PingManager::SendPingTo(HostId peer) {
  const uint64_t seq = next_seq_++;

  scratch_.Clear();
  scratch_.PutU64(seq);
  if (provider_) {
    provider_(peer, scratch_);
  }

  WireMessage msg;
  msg.to = peer;
  msg.type = msgtype::kOverlayPing;
  msg.category = MsgCategory::kOverlayPing;
  msg.payload = scratch_.TakeShared();

  transport_->Send(std::move(msg), [this, peer](const Status& s) {
    if (!s.ok()) {
      HandleFailure(peer);
    }
  });
}

void PingManager::SendRound() {
  if (!running_) {
    return;
  }
  // Snapshot the batch first: a synchronous send failure can reach client
  // code that mutates peers_ (UpdateNeighbors) under our feet.
  round_scratch_.clear();
  peers_.ForEach([this](uint64_t key, Peer& peer) {
    if (!peer.failed) {
      round_scratch_.push_back(key);
    }
  });
  const TimePoint now = transport_->env().Now();
  bool armed_any = false;
  for (const uint64_t key : round_scratch_) {
    Peer* p = peers_.Find(key);
    if (p == nullptr || p->failed) {
      continue;
    }
    SendPingTo(HostId(key));
    p = peers_.Find(key);  // the send's failure callback may have mutated peers_
    if (p == nullptr || p->failed) {
      continue;
    }
    if (!p->awaiting) {  // earliest-deadline rule, as in SendPing
      p->awaiting = true;
      p->deadline = now + timeout_;
      armed_any = true;
    }
  }
  // Invariant: whenever any peer is awaiting, round_timeout_ is pending (at
  // or before the earliest deadline) — so a non-pending timer here means the
  // batch's fresh deadline is the earliest.
  if (armed_any && !round_timeout_.pending()) {
    round_timeout_.Restart(timeout_);
  }
}

void PingManager::OnRoundTimeout() {
  const TimePoint now = transport_->env().Now();
  round_scratch_.clear();
  TimePoint next = TimePoint::Max();
  peers_.ForEach([&](uint64_t key, Peer& peer) {
    if (peer.failed || !peer.awaiting) {
      return;
    }
    if (peer.deadline <= now) {
      round_scratch_.push_back(key);
    } else if (peer.deadline < next) {
      next = peer.deadline;
    }
  });
  // Re-arm before reporting: failure handlers may reenter (UpdateNeighbors).
  // A removed peer at worst leaves one spurious no-op fire behind. Start, not
  // Restart: inside the timer's own callback the stored function is consumed
  // (see sim/timer.h), so a self-rearm must supply it again.
  if (next != TimePoint::Max()) {
    round_timeout_.Start(next - now, [this] { OnRoundTimeout(); });
  }
  for (const uint64_t key : round_scratch_) {
    HandleFailure(HostId(key));
  }
}

void PingManager::OnPing(const WireMessage& msg) {
  if (msg.payload.size() < kPingHeaderBytes) {
    return;
  }
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  // Reply with our own payload for this link (links are monitored from both
  // sides; replies let the pinger check our view of the shared state).
  scratch_.Clear();
  scratch_.PutU64(seq);
  if (provider_) {
    provider_(msg.from, scratch_);
  }
  WireMessage reply;
  reply.to = msg.from;
  reply.type = msgtype::kOverlayPingReply;
  reply.category = MsgCategory::kOverlayPingReply;
  reply.payload = scratch_.TakeShared();
  transport_->Send(std::move(reply), nullptr);

  if (observer_) {
    observer_(msg.from, msg.payload.data() + kPingHeaderBytes,
              msg.payload.size() - kPingHeaderBytes);
  }
}

void PingManager::OnPingReply(const WireMessage& msg) {
  if (msg.payload.size() < kPingHeaderBytes) {
    return;
  }
  // The echoed seq is not inspected: liveness only needs "a reply arrived".
  if (Peer* p = peers_.Find(msg.from.value); p != nullptr) {
    // Any reply from the peer proves liveness, so disarm the failure timeout
    // even if it answers an older ping than the latest one sent (with
    // timeout >= period several pings can be outstanding; a reply slower
    // than one period must not count as a failure).
    p->timeout.Cancel();
    p->awaiting = false;
  }
  if (observer_) {
    observer_(msg.from, msg.payload.data() + kPingHeaderBytes,
              msg.payload.size() - kPingHeaderBytes);
  }
}

void PingManager::HandleFailure(HostId peer) {
  Peer* p = peers_.Find(peer.value);
  if (p == nullptr || p->failed) {
    return;
  }
  p->ping.Stop();
  p->timeout.Cancel();
  p->awaiting = false;
  p->failed = true;  // stop pinging; owner removes the peer via UpdateNeighbors
  if (on_failure_) {
    on_failure_(peer);
  }
}

}  // namespace fuse
