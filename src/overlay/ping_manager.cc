#include "overlay/ping_manager.h"

#include <utility>

#include "common/serialize.h"

namespace fuse {

PingManager::PingManager(Transport* transport, Duration period, Duration timeout)
    : transport_(transport), period_(period), timeout_(timeout) {
  transport_->RegisterHandler(msgtype::kOverlayPing,
                              [this](const WireMessage& m) { OnPing(m); });
  transport_->RegisterHandler(msgtype::kOverlayPingReply,
                              [this](const WireMessage& m) { OnPingReply(m); });
}

PingManager::~PingManager() { Stop(); }

void PingManager::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  for (auto& [host, peer] : peers_) {
    if (!peer.ping.running() && !peer.failed) {
      StartPeerPings(host);
    }
  }
}

void PingManager::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (auto& [host, peer] : peers_) {
    peer.ping.Stop();
    peer.timeout.Cancel();
  }
}

void PingManager::UpdateNeighbors(const std::vector<HostId>& neighbors) {
  // Remove peers no longer in the set (their timers auto-cancel).
  std::unordered_map<HostId, bool> wanted;
  for (HostId h : neighbors) {
    wanted[h] = true;
  }
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (!wanted.contains(it->first)) {
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
  for (HostId h : neighbors) {
    if (!peers_.contains(h)) {
      auto [it, inserted] = peers_.emplace(h, Peer(transport_->env()));
      // The timeout callback is installed once; every subsequent ping just
      // rearms it (Restart), allocation-free.
      it->second.timeout.SetCallback([this, h] { HandleFailure(h); });
      if (running_) {
        StartPeerPings(h);
      }
    }
  }
}

void PingManager::StartPeerPings(HostId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.failed) {
    return;
  }
  // A jittered first ping spreads load over the period (matches the
  // steady-state message-rate accounting of section 7.5); afterwards the
  // cycle is strictly periodic.
  const Duration phase =
      Duration::Micros(transport_->env().rng().UniformInt(0, period_.ToMicros()));
  it->second.ping.Start(phase, period_, [this, peer] { SendPing(peer); });
}

void PingManager::SendPing(HostId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.failed || !running_) {
    return;
  }
  Peer& p = it->second;
  const uint64_t seq = next_seq_++;

  Writer w;
  w.PutU64(seq);
  std::vector<uint8_t> payload = provider_ ? provider_(peer) : std::vector<uint8_t>{};
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutBytes(payload.data(), payload.size());

  WireMessage msg;
  msg.to = peer;
  msg.type = msgtype::kOverlayPing;
  msg.category = MsgCategory::kOverlayPing;
  msg.payload = w.Take();

  // Keep the earliest outstanding deadline: if timeout >= period, a new
  // periodic send must not push out the failure verdict for the previous,
  // still-unanswered ping (a dead peer would never time out otherwise).
  if (!p.timeout.pending()) {
    p.timeout.Restart(timeout_);
  }
  transport_->Send(std::move(msg), [this, peer](const Status& s) {
    if (!s.ok()) {
      HandleFailure(peer);
    }
  });
}

void PingManager::OnPing(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  const uint32_t len = r.GetU32();
  std::vector<uint8_t> remote_payload(len);
  r.GetBytes(remote_payload.data(), len);
  if (!r.ok()) {
    return;
  }
  // Reply with our own payload for this link (links are monitored from both
  // sides; replies let the pinger check our view of the shared state).
  Writer w;
  w.PutU64(seq);
  std::vector<uint8_t> payload = provider_ ? provider_(msg.from) : std::vector<uint8_t>{};
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutBytes(payload.data(), payload.size());

  WireMessage reply;
  reply.to = msg.from;
  reply.type = msgtype::kOverlayPingReply;
  reply.category = MsgCategory::kOverlayPingReply;
  reply.payload = w.Take();
  transport_->Send(std::move(reply), nullptr);

  if (observer_) {
    observer_(msg.from, remote_payload);
  }
}

void PingManager::OnPingReply(const WireMessage& msg) {
  Reader r(msg.payload);
  r.GetU64();  // echoed seq; liveness only needs "a reply arrived"
  const uint32_t len = r.GetU32();
  std::vector<uint8_t> remote_payload(len);
  r.GetBytes(remote_payload.data(), len);
  if (!r.ok()) {
    return;
  }
  auto it = peers_.find(msg.from);
  if (it != peers_.end()) {
    // Any reply from the peer proves liveness, so disarm the failure timeout
    // even if it answers an older ping than the latest one sent (with
    // timeout >= period several pings can be outstanding; a reply slower
    // than one period must not count as a failure).
    it->second.timeout.Cancel();
  }
  if (observer_) {
    observer_(msg.from, remote_payload);
  }
}

void PingManager::HandleFailure(HostId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.failed) {
    return;
  }
  Peer& p = it->second;
  p.ping.Stop();
  p.timeout.Cancel();
  p.failed = true;  // stop pinging; owner removes the peer via UpdateNeighbors
  if (on_failure_) {
    on_failure_(peer);
  }
}

}  // namespace fuse
