#include "overlay/ping_manager.h"

#include <utility>

#include "common/serialize.h"

namespace fuse {

PingManager::PingManager(Transport* transport, Duration period, Duration timeout)
    : transport_(transport), period_(period), timeout_(timeout) {
  transport_->RegisterHandler(msgtype::kOverlayPing,
                              [this](const WireMessage& m) { OnPing(m); });
  transport_->RegisterHandler(msgtype::kOverlayPingReply,
                              [this](const WireMessage& m) { OnPingReply(m); });
}

PingManager::~PingManager() { Stop(); }

void PingManager::CancelTimers(Peer& p) {
  if (p.next_ping.valid()) {
    transport_->env().Cancel(p.next_ping);
    p.next_ping = TimerId();
  }
  if (p.timeout.valid()) {
    transport_->env().Cancel(p.timeout);
    p.timeout = TimerId();
  }
  p.awaiting_seq = 0;
}

void PingManager::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  for (auto& [host, peer] : peers_) {
    if (!peer.next_ping.valid() && !peer.failed) {
      SchedulePing(host,
                   Duration::Micros(transport_->env().rng().UniformInt(0, period_.ToMicros())));
    }
  }
}

void PingManager::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (auto& [host, peer] : peers_) {
    CancelTimers(peer);
  }
}

void PingManager::UpdateNeighbors(const std::vector<HostId>& neighbors) {
  // Remove peers no longer in the set.
  std::unordered_map<HostId, bool> wanted;
  for (HostId h : neighbors) {
    wanted[h] = true;
  }
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (!wanted.contains(it->first)) {
      CancelTimers(it->second);
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
  // Add new peers with a jittered first ping (spreads load; matches the
  // steady-state message-rate accounting of section 7.5).
  for (HostId h : neighbors) {
    if (!peers_.contains(h)) {
      Peer p;
      peers_.emplace(h, p);
      if (running_) {
        SchedulePing(h,
                     Duration::Micros(transport_->env().rng().UniformInt(0, period_.ToMicros())));
      }
    }
  }
}

void PingManager::SchedulePing(HostId peer, Duration delay) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.failed) {
    return;
  }
  it->second.next_ping =
      transport_->env().Schedule(delay, [this, peer] { SendPing(peer); });
}

void PingManager::SendPing(HostId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.failed || !running_) {
    return;
  }
  Peer& p = it->second;
  p.next_ping = TimerId();
  const uint64_t seq = next_seq_++;
  p.awaiting_seq = seq;

  Writer w;
  w.PutU64(seq);
  std::vector<uint8_t> payload = provider_ ? provider_(peer) : std::vector<uint8_t>{};
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutBytes(payload.data(), payload.size());

  WireMessage msg;
  msg.to = peer;
  msg.type = msgtype::kOverlayPing;
  msg.category = MsgCategory::kOverlayPing;
  msg.payload = w.Take();

  p.timeout = transport_->env().Schedule(timeout_, [this, peer] { HandleFailure(peer); });
  transport_->Send(std::move(msg), [this, peer](const Status& s) {
    if (!s.ok()) {
      HandleFailure(peer);
    }
  });
}

void PingManager::OnPing(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  const uint32_t len = r.GetU32();
  std::vector<uint8_t> remote_payload(len);
  r.GetBytes(remote_payload.data(), len);
  if (!r.ok()) {
    return;
  }
  // Reply with our own payload for this link (links are monitored from both
  // sides; replies let the pinger check our view of the shared state).
  Writer w;
  w.PutU64(seq);
  std::vector<uint8_t> payload = provider_ ? provider_(msg.from) : std::vector<uint8_t>{};
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutBytes(payload.data(), payload.size());

  WireMessage reply;
  reply.to = msg.from;
  reply.type = msgtype::kOverlayPingReply;
  reply.category = MsgCategory::kOverlayPingReply;
  reply.payload = w.Take();
  transport_->Send(std::move(reply), nullptr);

  if (observer_) {
    observer_(msg.from, remote_payload);
  }
}

void PingManager::OnPingReply(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  const uint32_t len = r.GetU32();
  std::vector<uint8_t> remote_payload(len);
  r.GetBytes(remote_payload.data(), len);
  if (!r.ok()) {
    return;
  }
  auto it = peers_.find(msg.from);
  if (it != peers_.end() && it->second.awaiting_seq == seq) {
    Peer& p = it->second;
    p.awaiting_seq = 0;
    if (p.timeout.valid()) {
      transport_->env().Cancel(p.timeout);
      p.timeout = TimerId();
    }
    SchedulePing(msg.from, period_);
  }
  if (observer_) {
    observer_(msg.from, remote_payload);
  }
}

void PingManager::HandleFailure(HostId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.failed) {
    return;
  }
  Peer& p = it->second;
  CancelTimers(p);
  p.failed = true;  // stop pinging; owner removes the peer via UpdateNeighbors
  if (on_failure_) {
    on_failure_(peer);
  }
}

}  // namespace fuse
