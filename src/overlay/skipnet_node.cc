#include "overlay/skipnet_node.h"

#include <utility>

#include "common/logging.h"
#include "common/serialize.h"

namespace fuse {
namespace {

constexpr int kMaxRoutedHops = 64;
constexpr int kForwardRetries = 2;

}  // namespace

void WriteNodeRef(Writer& w, const NodeRef& ref) {
  w.PutString(ref.name);
  w.PutU64(ref.host.value);
}

NodeRef ReadNodeRef(Reader& r) {
  NodeRef ref;
  ref.name = r.GetString();
  ref.host = HostId(r.GetU64());
  return ref;
}

SkipNetNode::SkipNetNode(Transport* transport, RpcNode* rpc, std::string name, NumericId numeric,
                         SkipNetConfig config)
    : transport_(transport),
      rpc_(rpc),
      self_{std::move(name), transport->local_host()},
      numeric_(numeric),
      config_(config),
      table_(self_.name, config.table),
      pings_(transport, config.ping_period, config.ping_timeout, config.coalesce_pings) {
  transport_->RegisterHandler(msgtype::kOverlayRouted,
                              [this](const WireMessage& m) { HandleRouted(m); });
  transport_->RegisterHandler(msgtype::kOverlayJoinSearchReply,
                              [this](const WireMessage& m) { HandleJoinSearchReply(m); });
  transport_->RegisterHandler(msgtype::kOverlayNeighborNotify,
                              [this](const WireMessage& m) { HandleNeighborNotify(m); });
  rpc_->Handle(msgtype::kOverlayNeighborQuery,
               [this](HostId caller, const std::vector<uint8_t>& req) {
                 return HandleNeighborQuery(caller, req);
               });
  pings_.SetPayloadProvider([this](HostId neighbor, Writer& w) {
    if (client_payload_provider_) {
      client_payload_provider_(neighbor, w);
    }
  });
  pings_.SetFailureHandler([this](HostId neighbor) { OnNeighborFailed(neighbor); });
}

SkipNetNode::~SkipNetNode() { Shutdown(); }

void SkipNetNode::Shutdown() {
  if (shutdown_) {
    return;
  }
  shutdown_ = true;
  pings_.Stop();
  if (join_timer_.valid()) {
    transport_->env().Cancel(join_timer_);
    join_timer_ = TimerId();
  }
  if (repair_timer_.valid()) {
    transport_->env().Cancel(repair_timer_);
    repair_timer_ = TimerId();
  }
  if (leaf_exchange_timer_.valid()) {
    transport_->env().Cancel(leaf_exchange_timer_);
    leaf_exchange_timer_ = TimerId();
  }
}

void SkipNetNode::JoinAsFirst() {
  joined_ = true;
  if (config_.start_maintenance_on_join) {
    StartMaintenance();
  }
}

void SkipNetNode::Join(HostId bootstrap, JoinCallback cb) {
  FUSE_CHECK(!joined_) << "already joined";
  join_cb_ = std::move(cb);
  join_bootstrap_ = bootstrap;
  join_attempts_left_ = config_.join_attempts;
  StartJoinAttempt();
}

void SkipNetNode::StartJoinAttempt() {
  if (shutdown_) {
    return;
  }
  if (join_attempts_left_ <= 0) {
    FinishJoin(Status::Timeout("join: no response"));
    return;
  }
  join_attempts_left_--;

  Writer w;
  WriteNodeRef(w, self_);
  RoutedEnvelope env;
  env.dest = self_.name;
  env.tag = kJoinSearchTag;
  env.origin = self_;
  env.hops = 0;
  env.category = static_cast<uint8_t>(MsgCategory::kOverlayJoin);
  env.payload = w.Take();

  WireMessage msg;
  msg.to = join_bootstrap_;
  msg.type = msgtype::kOverlayRouted;
  msg.category = MsgCategory::kOverlayJoin;
  msg.payload = EncodeEnvelope(env);
  transport_->Send(std::move(msg), nullptr);

  join_timer_ = transport_->env().Schedule(config_.join_timeout, [this] {
    join_timer_ = TimerId();
    StartJoinAttempt();
  });
}

void SkipNetNode::FinishJoin(const Status& status) {
  if (join_timer_.valid()) {
    transport_->env().Cancel(join_timer_);
    join_timer_ = TimerId();
  }
  if (status.ok()) {
    joined_ = true;
    if (config_.start_maintenance_on_join) {
      StartMaintenance();
    }
  }
  if (join_cb_) {
    auto cb = std::move(join_cb_);
    join_cb_ = nullptr;
    cb(status);
  }
}

void SkipNetNode::StartMaintenance() {
  if (shutdown_) {
    return;
  }
  pings_.Start();
  RefreshPingSet();
  if (!leaf_exchange_timer_.valid()) {
    ScheduleLeafExchange();
  }
}

void SkipNetNode::RunLeafExchangeOnce() {
  if (shutdown_) {
    return;
  }
  if (!table_.leaf_cw().empty()) {
    QueryAndMergeNeighborhood(table_.leaf_cw().back());
  }
  if (!table_.leaf_ccw().empty()) {
    QueryAndMergeNeighborhood(table_.leaf_ccw().back());
  }
}

void SkipNetNode::ScheduleLeafExchange() {
  const Duration jitter = Duration::Micros(
      transport_->env().rng().UniformInt(0, config_.leaf_exchange_period.ToMicros() / 4));
  leaf_exchange_timer_ =
      transport_->env().Schedule(config_.leaf_exchange_period + jitter, [this] {
        leaf_exchange_timer_ = TimerId();
        if (shutdown_) {
          return;
        }
        // Alternate sides; pick the farthest kept leaf (it knows the part of
        // the ring we see least of).
        const auto& side = exchange_cw_next_ ? table_.leaf_cw() : table_.leaf_ccw();
        exchange_cw_next_ = !exchange_cw_next_;
        if (!side.empty()) {
          QueryAndMergeNeighborhood(side.back());
        }
        ScheduleLeafExchange();
      });
}

void SkipNetNode::SetRoutedHandler(uint16_t client_tag, RoutedHandler handler) {
  FUSE_CHECK(client_tag != kJoinSearchTag) << "tag 0 is reserved";
  routed_handlers_[client_tag] = std::move(handler);
}

void SkipNetNode::SetPingPayloadProvider(PingManager::PayloadProvider p) {
  client_payload_provider_ = std::move(p);
}

void SkipNetNode::SetPingPayloadObserver(PingManager::PayloadObserver o) {
  pings_.SetPayloadObserver(std::move(o));
}

void SkipNetNode::SetNeighborFailureHandler(NeighborFailureHandler h) {
  client_failure_handler_ = std::move(h);
}

void SkipNetNode::ReportNeighborFailure(HostId host) { OnNeighborFailed(host); }

// ---------------------------------------------------------------------------
// Routed messages.
// ---------------------------------------------------------------------------

std::vector<uint8_t> SkipNetNode::EncodeEnvelope(const RoutedEnvelope& env) {
  Writer w;
  w.PutString(env.dest);
  w.PutU16(env.tag);
  WriteNodeRef(w, env.origin);
  w.PutU16(env.hops);
  w.PutU8(env.category);
  w.PutU32(static_cast<uint32_t>(env.payload.size()));
  w.PutBytes(env.payload.data(), env.payload.size());
  return w.Take();
}

std::optional<SkipNetNode::RoutedEnvelope> SkipNetNode::DecodeEnvelope(const WireMessage& msg) {
  Reader r(msg.payload);
  RoutedEnvelope env;
  env.dest = r.GetString();
  env.tag = r.GetU16();
  env.origin = ReadNodeRef(r);
  env.hops = r.GetU16();
  env.category = r.GetU8();
  const uint32_t len = r.GetU32();
  env.payload.resize(len);
  r.GetBytes(env.payload.data(), len);
  if (!r.ok()) {
    return std::nullopt;
  }
  return env;
}

void SkipNetNode::RouteByName(const std::string& dest_name, uint16_t client_tag,
                              std::vector<uint8_t> payload, MsgCategory category) {
  RoutedEnvelope env;
  env.dest = dest_name;
  env.tag = client_tag;
  env.origin = self_;
  env.hops = 0;
  env.category = static_cast<uint8_t>(category);
  env.payload = std::move(payload);
  ProcessEnvelope(std::move(env), HostId());
}

void SkipNetNode::HandleRouted(const WireMessage& msg) {
  auto env = DecodeEnvelope(msg);
  if (!env) {
    return;
  }
  ProcessEnvelope(std::move(*env), msg.from);
}

void SkipNetNode::ProcessEnvelope(RoutedEnvelope env, HostId prev_hop) {
  if (env.hops >= kMaxRoutedHops) {
    FUSE_LOG(Warning) << self_.name << ": dropping routed message after " << env.hops << " hops";
    return;
  }
  const bool at_dest = env.dest == self_.name;
  auto next = table_.NextHopTowards(env.dest);

  if (env.tag == kJoinSearchTag) {
    // Incarnation-aware join routing: a next hop on the joiner's own host
    // must be a stale entry for a dead incarnation — the joiner itself is
    // not in the overlay yet, so forwarding there would bounce the search
    // off the joiner's self-host guard until ping timeouts evict the entry.
    // The join search is proof the host came back, so evict the stale entry
    // now (no quarantine: the replacement is demonstrably alive) and route
    // around it.
    if (next.has_value() && next->host == env.origin.host &&
        env.origin.host != self_.host) {
      table_.RemoveHost(env.origin.host);
      FixLevelZeroFromLeafSet();
      RefreshPingSet();
      ScheduleRepair();
      next = table_.NextHopTowards(env.dest);
    }
    // Internal: deliver at the terminal node (the owner of the joiner's
    // name position), no client upcall.
    if (!next.has_value() || at_dest) {
      RoutedUpcall upcall;
      upcall.dest = env.dest;
      upcall.origin = env.origin;
      upcall.prev_hop = prev_hop;
      upcall.at_dest = at_dest;
      upcall.hop_index = env.hops;
      upcall.payload = std::move(env.payload);
      HandleJoinSearch(upcall);
      return;
    }
  } else {
    const auto it = routed_handlers_.find(env.tag);
    if (it != routed_handlers_.end()) {
      RoutedUpcall upcall;
      upcall.dest = env.dest;
      upcall.origin = env.origin;
      upcall.prev_hop = prev_hop;
      upcall.next_hop = next.has_value() ? *next : NodeRef{};
      upcall.at_dest = at_dest;
      upcall.hop_index = env.hops;
      upcall.payload = std::move(env.payload);
      const bool consumed = it->second(upcall);
      env.payload = std::move(upcall.payload);
      if (consumed) {
        return;
      }
    }
  }

  if (next.has_value() && !at_dest) {
    env.hops++;
    ForwardEnvelope(std::move(env), *next, kForwardRetries);
  }
}

void SkipNetNode::ForwardEnvelope(RoutedEnvelope env, const NodeRef& next, int retries_left) {
  WireMessage msg;
  msg.to = next.host;
  msg.type = msgtype::kOverlayRouted;
  msg.category = static_cast<MsgCategory>(env.category);
  msg.payload = EncodeEnvelope(env);
  const HostId next_host = next.host;
  transport_->Send(std::move(msg),
                   [this, env = std::move(env), next_host, retries_left](const Status& s) mutable {
                     if (s.ok() || shutdown_) {
                       return;
                     }
                     // Next hop unreachable: treat as a failed neighbor and
                     // re-route around it if we still can.
                     OnNeighborFailed(next_host);
                     if (retries_left <= 0) {
                       return;
                     }
                     const auto alt = table_.NextHopTowards(env.dest);
                     if (alt.has_value()) {
                       ForwardEnvelope(std::move(env), *alt, retries_left - 1);
                     }
                   });
}

// ---------------------------------------------------------------------------
// Join protocol.
// ---------------------------------------------------------------------------

void SkipNetNode::HandleJoinSearch(const RoutedUpcall& upcall) {
  Reader r(upcall.payload.data(), upcall.payload.size());
  const NodeRef joiner = ReadNodeRef(r);
  if (!r.ok() || !joiner.valid() || joiner.host == self_.host) {
    return;
  }
  ClearQuarantine(joiner.host);
  // Reply with ourself and everything we know near the joiner's position:
  // our leaf sets and ring pointers are the joiner's level-0 seed candidates.
  Writer w;
  WriteNodeRef(w, self_);
  const auto neighbors = table_.DistinctNeighbors();
  w.PutU32(static_cast<uint32_t>(neighbors.size()));
  for (const auto& ref : neighbors) {
    WriteNodeRef(w, ref);
  }
  WireMessage msg;
  msg.to = joiner.host;
  msg.type = msgtype::kOverlayJoinSearchReply;
  msg.category = MsgCategory::kOverlayJoin;
  msg.payload = w.Take();
  transport_->Send(std::move(msg), nullptr);

  // The owner also learns about the joiner right away.
  TryAdopt(0, joiner, NumericId());
  RefreshPingSet();
}

void SkipNetNode::HandleJoinSearchReply(const WireMessage& msg) {
  if (joined_ || !join_cb_) {
    return;  // stale reply from an earlier attempt
  }
  Reader r(msg.payload);
  const NodeRef owner = ReadNodeRef(r);
  const uint32_t n = r.GetU32();
  std::vector<NodeRef> candidates;
  candidates.reserve(n + 1);
  candidates.push_back(owner);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    candidates.push_back(ReadNodeRef(r));
  }
  if (!r.ok()) {
    return;
  }
  if (join_timer_.valid()) {
    transport_->env().Cancel(join_timer_);
    join_timer_ = TimerId();
  }

  for (const auto& c : candidates) {
    if (c.valid() && c.host != self_.host && !IsQuarantined(c.host)) {
      table_.OfferLeaf(c);
    }
  }
  FixLevelZeroFromLeafSet();
  // Tell every candidate about us so their pointers and leaf sets splice us
  // in; the adopters forward to displaced nodes, healing the ring.
  for (const auto& c : candidates) {
    if (c.valid() && c.host != self_.host) {
      SendNeighborNotify(c, 0);
    }
  }

  // Climb the numeric rings: find level-h neighbors by walking level-(h-1).
  climb_level_ = 1;
  climb_cw_done_ = false;
  const NodeRef start = table_.level(0).cw;
  if (!start.valid()) {
    FinishJoin(Status::Ok());  // we are alone
    return;
  }
  ClimbLevel(climb_level_, /*clockwise=*/true, start, config_.walk_budget);
}

void SkipNetNode::ClimbNextAfter(int level, bool clockwise) {
  if (clockwise) {
    // Walk the other side of the same level.
    climb_cw_done_ = true;
    const NodeRef start = table_.level(level - 1).ccw;
    if (start.valid()) {
      ClimbLevel(level, /*clockwise=*/false, start, config_.walk_budget);
      return;
    }
  }
  // Both sides done (or ccw impossible): proceed to the next level if we
  // found at least one member of the current ring; otherwise higher rings
  // are empty too and the join is complete.
  const bool found_any = table_.level(level).cw.valid() || table_.level(level).ccw.valid();
  if (!found_any || level + 1 >= table_.params().max_levels) {
    FinishJoin(Status::Ok());
    return;
  }
  climb_level_ = level + 1;
  climb_cw_done_ = false;
  const NodeRef start = table_.level(level).cw;
  if (!start.valid()) {
    FinishJoin(Status::Ok());
    return;
  }
  ClimbLevel(climb_level_, /*clockwise=*/true, start, config_.walk_budget);
}

void SkipNetNode::ClimbLevel(int level, bool clockwise, NodeRef walk_at, int steps_left) {
  if (shutdown_ || joined_) {
    return;
  }
  if (!walk_at.valid() || walk_at.host == self_.host || steps_left <= 0) {
    ClimbNextAfter(level, clockwise);
    return;
  }
  // Ask the walked node for its numeric id and its level-(h-1) ring pointer.
  Writer w;
  w.PutU8(static_cast<uint8_t>(level - 1));
  w.PutU8(clockwise ? 1 : 0);
  w.PutU8(0);  // no leaf set wanted
  rpc_->Call(walk_at.host, msgtype::kOverlayNeighborQuery, w.Take(), config_.query_timeout,
             [this, level, clockwise, walk_at, steps_left](const Status& s,
                                                           const std::vector<uint8_t>& reply) {
               if (shutdown_ || joined_) {
                 return;
               }
               if (!s.ok()) {
                 ClimbNextAfter(level, clockwise);
                 return;
               }
               Reader r(reply);
               const NumericId their_numeric(r.GetU64());
               const uint8_t has_ptr = r.GetU8();
               NodeRef ptr;
               if (has_ptr) {
                 ptr = ReadNodeRef(r);
               }
               if (!r.ok()) {
                 ClimbNextAfter(level, clockwise);
                 return;
               }
               const int bits = table_.params().bits_per_digit();
               if (numeric_.SharesPrefix(their_numeric, level, bits)) {
                 // Found the nearest ring member in this direction.
                 if (!IsQuarantined(walk_at.host)) {
                   table_.SetLevel(level, clockwise, walk_at);
                   SendNeighborNotify(walk_at, level);
                 }
                 ClimbNextAfter(level, clockwise);
                 return;
               }
               ClimbLevel(level, clockwise, ptr, steps_left - 1);
             },
             MsgCategory::kOverlayJoin);
}

// ---------------------------------------------------------------------------
// Neighbor pointer maintenance.
// ---------------------------------------------------------------------------

void SkipNetNode::SendNeighborNotify(const NodeRef& to, int level) {
  Writer w;
  w.PutU8(static_cast<uint8_t>(level));
  WriteNodeRef(w, self_);
  w.PutU64(numeric_.bits());
  WireMessage msg;
  msg.to = to.host;
  msg.type = msgtype::kOverlayNeighborNotify;
  msg.category = MsgCategory::kOverlayJoin;
  msg.payload = w.Take();
  transport_->Send(std::move(msg), nullptr);
}

bool SkipNetNode::TryAdopt(int level, const NodeRef& candidate, const NumericId& cand_numeric) {
  if (!candidate.valid() || candidate.host == self_.host || candidate.name == self_.name) {
    return false;
  }
  if (IsQuarantined(candidate.host)) {
    return false;
  }
  bool changed = false;
  if (level == 0) {
    changed = table_.OfferLeaf(candidate);
    FixLevelZeroFromLeafSet();
  } else {
    const int bits = table_.params().bits_per_digit();
    if (!numeric_.SharesPrefix(cand_numeric, level, bits)) {
      return false;  // not actually a member of our level-h ring
    }
    auto consider = [&](bool cw) {
      const NodeRef& current = cw ? table_.level(level).cw : table_.level(level).ccw;
      const bool nearer = !current.valid() ||
                          (cw ? CwStrictlyBetween(candidate.name, self_.name, current.name)
                              : CwStrictlyBetween(candidate.name, current.name, self_.name));
      if (nearer) {
        const NodeRef displaced = current;
        table_.SetLevel(level, cw, candidate);
        changed = true;
        // The displaced node's opposite pointer likely needs to become the
        // candidate; forward the notification so the ring heals.
        if (displaced.valid() && displaced.host != candidate.host) {
          Writer w;
          w.PutU8(static_cast<uint8_t>(level));
          WriteNodeRef(w, candidate);
          w.PutU64(cand_numeric.bits());
          WireMessage msg;
          msg.to = displaced.host;
          msg.type = msgtype::kOverlayNeighborNotify;
          msg.category = MsgCategory::kOverlayJoin;
          msg.payload = w.Take();
          transport_->Send(std::move(msg), nullptr);
        }
      }
    };
    consider(true);
    consider(false);
  }
  if (changed) {
    RefreshPingSet();
  }
  return changed;
}

void SkipNetNode::HandleNeighborNotify(const WireMessage& msg) {
  ClearQuarantine(msg.from);
  Reader r(msg.payload);
  const int level = r.GetU8();
  const NodeRef candidate = ReadNodeRef(r);
  const NumericId cand_numeric(r.GetU64());
  if (!r.ok() || level >= table_.params().max_levels) {
    return;
  }
  TryAdopt(level, candidate, cand_numeric);
}

std::vector<uint8_t> SkipNetNode::HandleNeighborQuery(HostId caller,
                                                      const std::vector<uint8_t>& req) {
  (void)caller;
  Reader r(req.data(), req.size());
  const int level = r.GetU8();
  const bool clockwise = r.GetU8() != 0;
  const bool want_leaf = r.GetU8() != 0;
  Writer w;
  w.PutU64(numeric_.bits());
  if (!r.ok() || level >= table_.params().max_levels) {
    w.PutU8(0);
    w.PutU32(0);
    return w.Take();
  }
  const NodeRef& ptr = clockwise ? table_.level(level).cw : table_.level(level).ccw;
  w.PutU8(ptr.valid() ? 1 : 0);
  if (ptr.valid()) {
    WriteNodeRef(w, ptr);
  }
  if (want_leaf) {
    const auto neighbors = table_.DistinctNeighbors();
    w.PutU32(static_cast<uint32_t>(neighbors.size()));
    for (const auto& n : neighbors) {
      WriteNodeRef(w, n);
    }
  } else {
    w.PutU32(0);
  }
  return w.Take();
}

// ---------------------------------------------------------------------------
// Failure handling and repair.
// ---------------------------------------------------------------------------

bool SkipNetNode::IsQuarantined(HostId host) const {
  const auto it = recently_failed_.find(host);
  if (it == recently_failed_.end()) {
    return false;
  }
  // Quarantine for two ping periods: long enough for the rest of the overlay
  // to also notice the failure and stop advertising the dead node.
  return transport_->env().Now() - it->second < config_.ping_period * int64_t{2};
}

void SkipNetNode::OnNeighborFailed(HostId host) {
  if (shutdown_ || host == self_.host) {
    return;
  }
  recently_failed_[host] = transport_->env().Now();
  if (!table_.HasNeighbor(host)) {
    return;  // already removed (duplicate detection)
  }
  // Tell the client (FUSE) first: it needs to know which monitored links
  // died; its own per-group state references this host.
  if (client_failure_handler_) {
    client_failure_handler_(host);
  }
  table_.RemoveHost(host);
  FixLevelZeroFromLeafSet();
  RefreshPingSet();
  ScheduleRepair();
}

void SkipNetNode::ScheduleRepair() {
  if (repair_timer_.valid() || shutdown_) {
    return;
  }
  const Duration jitter =
      Duration::Micros(transport_->env().rng().UniformInt(0, config_.repair_delay.ToMicros()));
  repair_timer_ = transport_->env().Schedule(config_.repair_delay + jitter, [this] {
    repair_timer_ = TimerId();
    RunRepair();
  });
}

void SkipNetNode::RunRepair() {
  if (shutdown_ || !joined_) {
    return;
  }
  RefillLeafSet();
  // Re-walk any ring level that lost a pointer. Each level walk is an
  // independent async chain; budget-capped like the join walks.
  for (int h = 1; h < table_.params().max_levels; ++h) {
    const bool lower_ok = table_.level(h - 1).cw.valid() || table_.level(h - 1).ccw.valid();
    if (!lower_ok) {
      break;  // no ring members below; higher levels are empty too
    }
    for (const bool cw : {true, false}) {
      const NodeRef& cur = cw ? table_.level(h).cw : table_.level(h).ccw;
      if (cur.valid()) {
        continue;
      }
      const NodeRef start = cw ? table_.level(h - 1).cw : table_.level(h - 1).ccw;
      if (start.valid()) {
        RepairWalk(h, cw, start, config_.walk_budget);
      }
    }
  }
}

void SkipNetNode::RepairWalk(int level, bool clockwise, NodeRef walk_at, int steps_left) {
  if (shutdown_ || !walk_at.valid() || walk_at.host == self_.host || steps_left <= 0) {
    return;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(level - 1));
  w.PutU8(clockwise ? 1 : 0);
  w.PutU8(0);
  rpc_->Call(walk_at.host, msgtype::kOverlayNeighborQuery, w.Take(), config_.query_timeout,
             [this, level, clockwise, walk_at, steps_left](const Status& s,
                                                           const std::vector<uint8_t>& reply) {
               if (shutdown_ || !s.ok()) {
                 return;
               }
               Reader r(reply);
               const NumericId their_numeric(r.GetU64());
               const uint8_t has_ptr = r.GetU8();
               NodeRef ptr;
               if (has_ptr) {
                 ptr = ReadNodeRef(r);
               }
               if (!r.ok()) {
                 return;
               }
               const int bits = table_.params().bits_per_digit();
               if (numeric_.SharesPrefix(their_numeric, level, bits)) {
                 if (!IsQuarantined(walk_at.host)) {
                   table_.SetLevel(level, clockwise, walk_at);
                   SendNeighborNotify(walk_at, level);
                   RefreshPingSet();
                 }
                 return;
               }
               RepairWalk(level, clockwise, ptr, steps_left - 1);
             },
             MsgCategory::kOverlayJoin);
}

void SkipNetNode::RefillLeafSet() {
  const bool cw_low =
      table_.leaf_cw().size() < static_cast<size_t>(table_.params().leaf_set_half);
  const bool ccw_low =
      table_.leaf_ccw().size() < static_cast<size_t>(table_.params().leaf_set_half);
  if (!cw_low && !ccw_low) {
    return;
  }
  // Ask the farthest surviving leaf (it is nearest to the hole) for its
  // neighborhood and merge the answer.
  const std::vector<NodeRef>& side = cw_low ? table_.leaf_cw() : table_.leaf_ccw();
  NodeRef target;
  if (!side.empty()) {
    target = side.back();
  } else if (!table_.leaf_cw().empty()) {
    target = table_.leaf_cw().back();
  } else if (!table_.leaf_ccw().empty()) {
    target = table_.leaf_ccw().back();
  } else {
    return;  // totally isolated; nothing we can do locally
  }
  QueryAndMergeNeighborhood(target);
}

void SkipNetNode::QueryAndMergeNeighborhood(const NodeRef& target) {
  Writer w;
  w.PutU8(0);
  w.PutU8(1);
  w.PutU8(1);  // want leaf set
  rpc_->Call(target.host, msgtype::kOverlayNeighborQuery, w.Take(), config_.query_timeout,
             [this](const Status& s, const std::vector<uint8_t>& reply) {
               if (shutdown_ || !s.ok()) {
                 return;
               }
               Reader r(reply);
               r.GetU64();  // numeric id (unused)
               const uint8_t has_ptr = r.GetU8();
               if (has_ptr) {
                 ReadNodeRef(r);
               }
               const uint32_t n = r.GetU32();
               std::vector<NodeRef> added;
               for (uint32_t i = 0; i < n && r.ok(); ++i) {
                 const NodeRef ref = ReadNodeRef(r);
                 if (ref.valid() && ref.host != self_.host && !IsQuarantined(ref.host) &&
                     table_.OfferLeaf(ref)) {
                   added.push_back(ref);
                 }
               }
               if (!added.empty()) {
                 FixLevelZeroFromLeafSet();
                 // Only the newly learned nodes need to hear about us.
                 for (const auto& ref : added) {
                   SendNeighborNotify(ref, 0);
                 }
                 RefreshPingSet();
               }
             },
             MsgCategory::kOverlayJoin);
}

void SkipNetNode::FixLevelZeroFromLeafSet() {
  const NodeRef cw = table_.leaf_cw().empty() ? NodeRef{} : table_.leaf_cw().front();
  const NodeRef ccw = table_.leaf_ccw().empty() ? NodeRef{} : table_.leaf_ccw().front();
  table_.SetLevel(0, true, cw);
  table_.SetLevel(0, false, ccw);
}

void SkipNetNode::RefreshPingSet() {
  if (pings_.running()) {
    pings_.UpdateNeighbors(table_.DistinctNeighborHosts());
  }
}

}  // namespace fuse
