#include "overlay/routing_table.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/logging.h"

namespace fuse {

void RoutingTable::SetLevel(int h, bool clockwise, const NodeRef& ref) {
  FUSE_CHECK(h >= 0 && h < num_levels()) << "level out of range";
  if (clockwise) {
    levels_[h].cw = ref;
  } else {
    levels_[h].ccw = ref;
  }
}

bool RoutingTable::OfferLeaf(const NodeRef& ref) {
  if (!ref.valid() || ref.name == self_name_) {
    return false;
  }
  auto offer_side = [&](std::vector<NodeRef>& side, bool cw) -> bool {
    // `side` is sorted nearest-first in walking order from self.
    for (const auto& existing : side) {
      if (existing.host == ref.host) {
        return false;
      }
    }
    // Find insertion point: ref belongs before the first entry that is
    // further from self (in this side's walking direction).
    size_t pos = side.size();
    for (size_t i = 0; i < side.size(); ++i) {
      const bool ref_nearer = cw ? CwStrictlyBetween(ref.name, self_name_, side[i].name)
                                 : CwStrictlyBetween(ref.name, side[i].name, self_name_);
      if (ref_nearer) {
        pos = i;
        break;
      }
    }
    const size_t cap = static_cast<size_t>(params_.leaf_set_half);
    if (pos >= cap) {
      return false;  // further than all kept entries
    }
    side.insert(side.begin() + static_cast<long>(pos), ref);
    if (side.size() > cap) {
      side.resize(cap);
    }
    return true;
  };
  bool changed = offer_side(leaf_cw_, /*cw=*/true);
  changed |= offer_side(leaf_ccw_, /*cw=*/false);
  return changed;
}

bool RoutingTable::RemoveHost(HostId host) {
  bool removed = false;
  for (auto& entry : levels_) {
    if (entry.cw.valid() && entry.cw.host == host) {
      entry.cw.Reset();
      removed = true;
    }
    if (entry.ccw.valid() && entry.ccw.host == host) {
      entry.ccw.Reset();
      removed = true;
    }
  }
  auto purge = [&](std::vector<NodeRef>& side) {
    const auto it = std::remove_if(side.begin(), side.end(),
                                   [&](const NodeRef& r) { return r.host == host; });
    if (it != side.end()) {
      side.erase(it, side.end());
      removed = true;
    }
  };
  purge(leaf_cw_);
  purge(leaf_ccw_);
  return removed;
}

void RoutingTable::ForEachRef(const std::function<void(const NodeRef&)>& fn) const {
  for (const auto& entry : levels_) {
    if (entry.cw.valid()) {
      fn(entry.cw);
    }
    if (entry.ccw.valid()) {
      fn(entry.ccw);
    }
  }
  for (const auto& r : leaf_cw_) {
    fn(r);
  }
  for (const auto& r : leaf_ccw_) {
    fn(r);
  }
}

std::vector<HostId> RoutingTable::DistinctNeighborHosts() const {
  std::unordered_set<HostId> seen;
  std::vector<HostId> out;
  ForEachRef([&](const NodeRef& r) {
    if (seen.insert(r.host).second) {
      out.push_back(r.host);
    }
  });
  return out;
}

std::vector<NodeRef> RoutingTable::DistinctNeighbors() const {
  std::unordered_set<HostId> seen;
  std::vector<NodeRef> out;
  ForEachRef([&](const NodeRef& r) {
    if (seen.insert(r.host).second) {
      out.push_back(r);
    }
  });
  return out;
}

bool RoutingTable::HasNeighbor(HostId host) const {
  bool found = false;
  ForEachRef([&](const NodeRef& r) { found = found || r.host == host; });
  return found;
}

std::optional<NodeRef> RoutingTable::NextHopTowards(const std::string& dest) const {
  if (dest == self_name_) {
    return std::nullopt;
  }
  // Greedy: the candidate in (self, dest] furthest clockwise from self.
  const NodeRef* best = nullptr;
  ForEachRef([&](const NodeRef& r) {
    if (r.name == self_name_) {
      return;
    }
    if (!CwInInterval(r.name, self_name_, dest)) {
      return;  // would overshoot (or is behind us)
    }
    if (best == nullptr || CwStrictlyBetween(best->name, self_name_, r.name) ||
        (best->name == r.name && best->host != r.host && r.name == dest)) {
      best = &r;
    }
  });
  if (best == nullptr) {
    return std::nullopt;
  }
  return *best;
}

std::string RoutingTable::DebugString() const {
  std::string out = "RoutingTable(" + self_name_ + ")\n";
  for (int h = 0; h < num_levels(); ++h) {
    const auto& e = levels_[h];
    if (!e.cw.valid() && !e.ccw.valid()) {
      continue;
    }
    out += "  L" + std::to_string(h) + " cw=" + (e.cw.valid() ? e.cw.name : "-") +
           " ccw=" + (e.ccw.valid() ? e.ccw.name : "-") + "\n";
  }
  out += "  leaf_cw:";
  for (const auto& r : leaf_cw_) {
    out += " " + r.name;
  }
  out += "\n  leaf_ccw:";
  for (const auto& r : leaf_ccw_) {
    out += " " + r.name;
  }
  out += "\n";
  return out;
}

}  // namespace fuse
