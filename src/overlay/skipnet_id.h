// SkipNet identifiers and circular name-space arithmetic.
//
// A SkipNet node (Harvey et al., USITS 2003) has two identities: a *name ID*
// (a string; nodes are arranged in one circular ring sorted lexicographically
// by name) and a random *numeric ID*. Level-h rings partition nodes by the
// first h digits (base-b) of the numeric ID; the paper's FUSE deployment uses
// base 8 (section 7.1).
#ifndef FUSE_OVERLAY_SKIPNET_ID_H_
#define FUSE_OVERLAY_SKIPNET_ID_H_

#include <cstdint>
#include <string>

#include "common/ids.h"

namespace fuse {

// A reference to an overlay node: its name plus the host it runs on.
struct NodeRef {
  std::string name;
  HostId host;

  bool valid() const { return host.valid() && !name.empty(); }
  void Reset() {
    name.clear();
    host = HostId();
  }

  friend bool operator==(const NodeRef& a, const NodeRef& b) {
    return a.host == b.host && a.name == b.name;
  }
  friend bool operator!=(const NodeRef& a, const NodeRef& b) { return !(a == b); }
};

// Numeric-ID digit helpers. Digits are taken from the most significant bits
// downward so that longer shared prefixes correspond to higher ring levels.
class NumericId {
 public:
  NumericId() = default;
  explicit NumericId(uint64_t bits) : bits_(bits) {}

  uint64_t bits() const { return bits_; }

  // The h-th digit (0-based from the most significant), base 2^bits_per_digit.
  uint32_t Digit(int h, int bits_per_digit) const;

  // True if `other` shares the first `h` digits with this id.
  bool SharesPrefix(const NumericId& other, int h, int bits_per_digit) const;

  friend bool operator==(NumericId a, NumericId b) { return a.bits_ == b.bits_; }

 private:
  uint64_t bits_ = 0;
};

// Circular (wrapping) lexicographic name order helpers. The ring is ordered
// by increasing name; "clockwise" walks toward larger names and wraps.
//
// True iff walking clockwise from `a` (exclusive) reaches `x` no later than
// `b` (inclusive); i.e. x is in the circular interval (a, b]. When a == b the
// interval is the entire ring.
bool CwInInterval(const std::string& x, const std::string& a, const std::string& b);

// True iff `x` is strictly between a and b walking clockwise: x in (a, b).
bool CwStrictlyBetween(const std::string& x, const std::string& a, const std::string& b);

}  // namespace fuse

#endif  // FUSE_OVERLAY_SKIPNET_ID_H_
