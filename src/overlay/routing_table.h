// SkipNet routing state for one node: per-level ring pointers plus the
// level-0 leaf set. Pure data structure — all messaging lives in SkipNetNode.
#ifndef FUSE_OVERLAY_ROUTING_TABLE_H_
#define FUSE_OVERLAY_ROUTING_TABLE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "overlay/skipnet_id.h"

namespace fuse {

struct OverlayParams {
  int base = 8;            // ring branching factor (paper section 7.1)
  int leaf_set_half = 8;   // leaf set of 16: 8 nearest on each side
  int max_levels = 21;     // 64-bit numeric ids, 3 bits per digit

  int bits_per_digit() const {
    int b = 0;
    while ((1 << (b + 1)) <= base) {
      ++b;
    }
    return b == 0 ? 1 : b;
  }
};

class RoutingTable {
 public:
  RoutingTable(std::string self_name, const OverlayParams& params)
      : self_name_(std::move(self_name)), params_(params), levels_(params.max_levels) {}

  struct LevelEntry {
    NodeRef cw;
    NodeRef ccw;
  };

  const std::string& self_name() const { return self_name_; }
  const OverlayParams& params() const { return params_; }

  const LevelEntry& level(int h) const { return levels_[h]; }
  int num_levels() const { return static_cast<int>(levels_.size()); }

  const std::vector<NodeRef>& leaf_cw() const { return leaf_cw_; }
  const std::vector<NodeRef>& leaf_ccw() const { return leaf_ccw_; }

  // Sets the ring pointer at `h`. Invalid ref clears the slot.
  void SetLevel(int h, bool clockwise, const NodeRef& ref);

  // Offers a node as a leaf-set candidate; keeps the nearest leaf_set_half on
  // each side. Returns true if the leaf set changed.
  bool OfferLeaf(const NodeRef& ref);

  // Removes every pointer that references `host` (node failed or left).
  // Returns true if anything was removed.
  bool RemoveHost(HostId host);

  // All distinct hosts referenced anywhere in the table (ring levels + leaf
  // set). These are exactly the neighbors the node must ping (section 5).
  std::vector<HostId> DistinctNeighborHosts() const;
  // All distinct refs (deduplicated by host).
  std::vector<NodeRef> DistinctNeighbors() const;

  // Greedy clockwise next hop toward `dest`: among all known neighbors
  // strictly inside (self, dest], the one that makes the most progress.
  // Returns nullopt when the local node is the last hop (owner or dest).
  std::optional<NodeRef> NextHopTowards(const std::string& dest) const;

  // True if any pointer references `host`.
  bool HasNeighbor(HostId host) const;

  // Human-readable dump for tests and debugging.
  std::string DebugString() const;

 private:
  void ForEachRef(const std::function<void(const NodeRef&)>& fn) const;

  std::string self_name_;
  OverlayParams params_;
  std::vector<LevelEntry> levels_;
  // Sorted by circular proximity to self: [0] is the nearest.
  std::vector<NodeRef> leaf_cw_;
  std::vector<NodeRef> leaf_ccw_;
};

}  // namespace fuse

#endif  // FUSE_OVERLAY_ROUTING_TABLE_H_
