// Liveness checking of routing-table neighbors.
//
// Every distinct routing-table neighbor is pinged once per period (60 s in
// the paper, with a 20 s timeout — section 7.4). Each ping request and reply
// carries an opaque client payload: this is the hook FUSE uses to piggyback
// its 20-byte SHA-1 hash of the jointly monitored group list (section 6.1),
// so FUSE adds no messages of its own in the failure-free steady state.
// Links are monitored from both sides: each endpoint pings independently.
//
// The warm request→reply cycle is allocation-free end to end: peers live in
// an open-addressed table (common/flat_map.h) reconciled against the wanted
// set by epoch stamping instead of a scratch hash map, messages are encoded
// into a reused Writer whose bytes become an inline PayloadBuf, the client
// payload is appended directly to that Writer by the provider, and the
// observer sees the remote payload as a view into the received message. Each
// peer owns a rearming PeriodicTimer (phase-jittered so the cluster's ping
// load spreads over the period) and a one-shot timeout Timer whose callback
// is installed once at peer creation.
//
// Wire format (request and reply): u64 sequence number, then the client
// payload running to the end of the message.
#ifndef FUSE_OVERLAY_PING_MANAGER_H_
#define FUSE_OVERLAY_PING_MANAGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/ids.h"
#include "common/serialize.h"
#include "common/time.h"
#include "sim/timer.h"
#include "transport/transport.h"

namespace fuse {

class PingManager {
 public:
  // Appends the payload for a ping (request or reply) on the link to
  // `neighbor` directly to the message under construction.
  using PayloadProvider = std::function<void(HostId neighbor, Writer& w)>;
  // Observes the payload the remote side attached (fires for both requests
  // and replies received). The bytes are only valid during the call.
  using PayloadObserver = std::function<void(HostId neighbor, const uint8_t* data, size_t len)>;
  // A neighbor failed to acknowledge a ping within the timeout (or the
  // connection broke).
  using FailureHandler = std::function<void(HostId neighbor)>;

  PingManager(Transport* transport, Duration period, Duration timeout);
  ~PingManager();

  PingManager(const PingManager&) = delete;
  PingManager& operator=(const PingManager&) = delete;

  void SetPayloadProvider(PayloadProvider p) { provider_ = std::move(p); }
  void SetPayloadObserver(PayloadObserver o) { observer_ = std::move(o); }
  void SetFailureHandler(FailureHandler h) { on_failure_ = std::move(h); }

  // Reconciles the pinged set with the current neighbor list: new neighbors
  // get a jittered first ping; removed neighbors stop being pinged.
  void UpdateNeighbors(const std::vector<HostId>& neighbors);

  void Start();
  void Stop();
  bool running() const { return running_; }

  size_t NumPeers() const { return peers_.size(); }

 private:
  struct Peer {
    PeriodicTimer ping;  // sends one ping per period (jittered phase)
    Timer timeout;       // armed while a ping is unanswered; any reply disarms
    bool failed = false; // failure already reported; awaiting removal
    uint64_t wanted_epoch = 0;  // last UpdateNeighbors round that listed us
  };

  // Begins the peer's periodic ping cycle at a jittered phase.
  void StartPeerPings(HostId peer);
  void SendPing(HostId peer);
  void OnPing(const WireMessage& msg);
  void OnPingReply(const WireMessage& msg);
  void HandleFailure(HostId peer);

  Transport* transport_;
  Duration period_;
  Duration timeout_;
  PayloadProvider provider_;
  PayloadObserver observer_;
  FailureHandler on_failure_;
  FlatMap<Peer> peers_;  // keyed by HostId::value
  uint64_t next_seq_ = 1;
  uint64_t wanted_epoch_ = 0;
  bool running_ = false;
  Writer scratch_;                // reused encode buffer (capacity stays warm)
  std::vector<uint64_t> doomed_;  // reused reconciliation scratch
};

}  // namespace fuse

#endif  // FUSE_OVERLAY_PING_MANAGER_H_
