// Liveness checking of routing-table neighbors.
//
// Every distinct routing-table neighbor is pinged once per period (60 s in
// the paper, with a 20 s timeout — section 7.4). Each ping request and reply
// carries an opaque client payload: this is the hook FUSE uses to piggyback
// its 20-byte SHA-1 hash of the jointly monitored group list (section 6.1),
// so FUSE adds no messages of its own in the failure-free steady state.
// Links are monitored from both sides: each endpoint pings independently.
//
// The warm request→reply cycle is allocation-free end to end: peers live in
// an open-addressed table (common/flat_map.h) reconciled against the wanted
// set by epoch stamping instead of a scratch hash map, messages are encoded
// into a reused Writer whose bytes become an inline PayloadBuf, the client
// payload is appended directly to that Writer by the provider, and the
// observer sees the remote payload as a view into the received message. Each
// peer owns a rearming PeriodicTimer (phase-jittered so the cluster's ping
// load spreads over the period) and a one-shot timeout Timer whose callback
// is installed once at peer creation.
//
// Wire format (request and reply): u64 sequence number, then the client
// payload running to the end of the message.
#ifndef FUSE_OVERLAY_PING_MANAGER_H_
#define FUSE_OVERLAY_PING_MANAGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/ids.h"
#include "common/serialize.h"
#include "common/time.h"
#include "sim/timer.h"
#include "transport/transport.h"

namespace fuse {

class PingManager {
 public:
  // Appends the payload for a ping (request or reply) on the link to
  // `neighbor` directly to the message under construction.
  using PayloadProvider = std::function<void(HostId neighbor, Writer& w)>;
  // Observes the payload the remote side attached (fires for both requests
  // and replies received). The bytes are only valid during the call.
  using PayloadObserver = std::function<void(HostId neighbor, const uint8_t* data, size_t len)>;
  // A neighbor failed to acknowledge a ping within the timeout (or the
  // connection broke).
  using FailureHandler = std::function<void(HostId neighbor)>;

  // With `coalesce` set, the manager runs ONE phase-jittered periodic timer
  // that pings every peer in a batch round, plus ONE timeout timer tracking
  // the earliest outstanding per-peer deadline — 2 armed timers per node
  // instead of 2 per (node, neighbor), which is what keeps the timer wheels
  // breathing at 100k nodes. Per-peer semantics are preserved exactly: each
  // peer's failure verdict still lands `timeout` after its own unanswered
  // ping (the shared timer re-arms to the next-earliest deadline), and any
  // reply still disarms that peer. What changes is phasing: all of a node's
  // pings leave together once per period instead of each on its own jitter,
  // and a peer added mid-period waits for the next round instead of getting
  // an immediate jittered first ping.
  PingManager(Transport* transport, Duration period, Duration timeout, bool coalesce = false);
  ~PingManager();

  PingManager(const PingManager&) = delete;
  PingManager& operator=(const PingManager&) = delete;

  void SetPayloadProvider(PayloadProvider p) { provider_ = std::move(p); }
  void SetPayloadObserver(PayloadObserver o) { observer_ = std::move(o); }
  void SetFailureHandler(FailureHandler h) { on_failure_ = std::move(h); }

  // Reconciles the pinged set with the current neighbor list: new neighbors
  // get a jittered first ping; removed neighbors stop being pinged.
  void UpdateNeighbors(const std::vector<HostId>& neighbors);

  void Start();
  void Stop();
  bool running() const { return running_; }

  size_t NumPeers() const { return peers_.size(); }

 private:
  struct Peer {
    PeriodicTimer ping;  // sends one ping per period (jittered phase)
    Timer timeout;       // armed while a ping is unanswered; any reply disarms
    bool failed = false; // failure already reported; awaiting removal
    uint64_t wanted_epoch = 0;  // last UpdateNeighbors round that listed us
    // Coalesced mode only: an unanswered ping is outstanding and its failure
    // verdict is due at `deadline` (tracked by the shared round_timeout_).
    bool awaiting = false;
    TimePoint deadline;
  };

  // Begins the peer's periodic ping cycle at a jittered phase.
  void StartPeerPings(HostId peer);
  void SendPing(HostId peer);
  // Encodes and transmits one ping (no timeout bookkeeping).
  void SendPingTo(HostId peer);
  // Coalesced mode: one batch of pings to every live peer.
  void SendRound();
  // Coalesced mode: fail every peer whose deadline passed, then re-arm for
  // the earliest remaining one.
  void OnRoundTimeout();
  void OnPing(const WireMessage& msg);
  void OnPingReply(const WireMessage& msg);
  void HandleFailure(HostId peer);

  Transport* transport_;
  Duration period_;
  Duration timeout_;
  PayloadProvider provider_;
  PayloadObserver observer_;
  FailureHandler on_failure_;
  FlatMap<Peer> peers_;  // keyed by HostId::value
  uint64_t next_seq_ = 1;
  uint64_t wanted_epoch_ = 0;
  bool running_ = false;
  const bool coalesce_;
  PeriodicTimer round_timer_;  // coalesced: one ping batch per period
  Timer round_timeout_;        // coalesced: earliest outstanding deadline
  Writer scratch_;                // reused encode buffer (capacity stays warm)
  std::vector<uint64_t> doomed_;  // reused reconciliation scratch
  std::vector<uint64_t> round_scratch_;  // reused batch scratch (coalesced)
};

}  // namespace fuse

#endif  // FUSE_OVERLAY_PING_MANAGER_H_
