// Liveness checking of routing-table neighbors.
//
// Every distinct routing-table neighbor is pinged once per period (60 s in
// the paper, with a 20 s timeout — section 7.4). Each ping request and reply
// carries an opaque client payload: this is the hook FUSE uses to piggyback
// its 20-byte SHA-1 hash of the jointly monitored group list (section 6.1),
// so FUSE adds no messages of its own in the failure-free steady state.
// Links are monitored from both sides: each endpoint pings independently.
//
// Each peer owns a rearming PeriodicTimer (phase-jittered so the cluster's
// ping load spreads over the period) and a one-shot timeout Timer whose
// callback is installed once at peer creation — the steady-state
// send/ack/rearm cycle allocates nothing.
#ifndef FUSE_OVERLAY_PING_MANAGER_H_
#define FUSE_OVERLAY_PING_MANAGER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "sim/timer.h"
#include "transport/transport.h"

namespace fuse {

class PingManager {
 public:
  // Returns the payload to attach to a ping (request or reply) on the link to
  // `neighbor`.
  using PayloadProvider = std::function<std::vector<uint8_t>(HostId neighbor)>;
  // Observes the payload the remote side attached (fires for both requests
  // and replies received).
  using PayloadObserver = std::function<void(HostId neighbor, const std::vector<uint8_t>&)>;
  // A neighbor failed to acknowledge a ping within the timeout (or the
  // connection broke).
  using FailureHandler = std::function<void(HostId neighbor)>;

  PingManager(Transport* transport, Duration period, Duration timeout);
  ~PingManager();

  PingManager(const PingManager&) = delete;
  PingManager& operator=(const PingManager&) = delete;

  void SetPayloadProvider(PayloadProvider p) { provider_ = std::move(p); }
  void SetPayloadObserver(PayloadObserver o) { observer_ = std::move(o); }
  void SetFailureHandler(FailureHandler h) { on_failure_ = std::move(h); }

  // Reconciles the pinged set with the current neighbor list: new neighbors
  // get a jittered first ping; removed neighbors stop being pinged.
  void UpdateNeighbors(const std::vector<HostId>& neighbors);

  void Start();
  void Stop();
  bool running() const { return running_; }

  size_t NumPeers() const { return peers_.size(); }

 private:
  struct Peer {
    explicit Peer(Environment& env) : ping(env), timeout(env) {}

    PeriodicTimer ping;  // sends one ping per period (jittered phase)
    Timer timeout;       // armed while a ping is unanswered; any reply disarms
    bool failed = false; // failure already reported; awaiting removal
  };

  // Begins the peer's periodic ping cycle at a jittered phase.
  void StartPeerPings(HostId peer);
  void SendPing(HostId peer);
  void OnPing(const WireMessage& msg);
  void OnPingReply(const WireMessage& msg);
  void HandleFailure(HostId peer);

  Transport* transport_;
  Duration period_;
  Duration timeout_;
  PayloadProvider provider_;
  PayloadObserver observer_;
  FailureHandler on_failure_;
  std::unordered_map<HostId, Peer> peers_;
  uint64_t next_seq_ = 1;
  bool running_ = false;
};

}  // namespace fuse

#endif  // FUSE_OVERLAY_PING_MANAGER_H_
