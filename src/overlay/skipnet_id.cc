#include "overlay/skipnet_id.h"

#include "common/logging.h"

namespace fuse {

uint32_t NumericId::Digit(int h, int bits_per_digit) const {
  const int shift = 64 - (h + 1) * bits_per_digit;
  FUSE_CHECK(shift >= 0) << "digit index out of range";
  return static_cast<uint32_t>((bits_ >> shift) & ((uint64_t{1} << bits_per_digit) - 1));
}

bool NumericId::SharesPrefix(const NumericId& other, int h, int bits_per_digit) const {
  if (h <= 0) {
    return true;
  }
  const int bits = h * bits_per_digit;
  if (bits >= 64) {
    return bits_ == other.bits_;
  }
  return (bits_ >> (64 - bits)) == (other.bits_ >> (64 - bits));
}

bool CwInInterval(const std::string& x, const std::string& a, const std::string& b) {
  if (a == b) {
    return true;  // whole ring
  }
  if (a < b) {
    return a < x && x <= b;
  }
  return x > a || x <= b;  // interval wraps through the name-space origin
}

bool CwStrictlyBetween(const std::string& x, const std::string& a, const std::string& b) {
  if (x == b) {
    return false;
  }
  return CwInInterval(x, a, b);
}

}  // namespace fuse
