// Request/response RPC over the transport, with per-call timeouts.
//
// Used by the calibration workload (Figure 6) and by applications; FUSE's own
// direct exchanges (create/repair) use explicit wire messages as in the paper.
#ifndef FUSE_RPC_RPC_H_
#define FUSE_RPC_RPC_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "transport/transport.h"

namespace fuse {

class RpcNode {
 public:
  using ResponseCallback = std::function<void(const Status&, const std::vector<uint8_t>& reply)>;
  // Invoked on the server host; the returned bytes are sent back as the reply.
  using MethodHandler =
      std::function<std::vector<uint8_t>(HostId caller, const std::vector<uint8_t>& request)>;

  explicit RpcNode(Transport* transport);
  ~RpcNode();

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  // Registers the server-side handler for `method`.
  void Handle(uint16_t method, MethodHandler handler);

  // Issues a call; `cb` fires exactly once with the reply, a timeout, or a
  // transport error.
  void Call(HostId dest, uint16_t method, std::vector<uint8_t> request, Duration timeout,
            ResponseCallback cb, MsgCategory category = MsgCategory::kRpc);

  size_t PendingCalls() const { return outstanding_.size(); }

 private:
  struct Outstanding {
    ResponseCallback cb;
    TimerId timer;
  };

  void OnRequest(const WireMessage& msg);
  void OnResponse(const WireMessage& msg);
  void Complete(uint64_t rpc_id, const Status& status, const std::vector<uint8_t>& reply);

  Transport* transport_;
  std::unordered_map<uint16_t, MethodHandler> methods_;
  std::unordered_map<uint64_t, Outstanding> outstanding_;
  uint64_t next_rpc_id_ = 1;
};

}  // namespace fuse

#endif  // FUSE_RPC_RPC_H_
