#include "rpc/rpc.h"

#include <utility>

#include "common/serialize.h"

namespace fuse {

RpcNode::RpcNode(Transport* transport) : transport_(transport) {
  transport_->RegisterHandler(msgtype::kRpcRequest,
                              [this](const WireMessage& m) { OnRequest(m); });
  transport_->RegisterHandler(msgtype::kRpcResponse,
                              [this](const WireMessage& m) { OnResponse(m); });
}

RpcNode::~RpcNode() {
  // Cancel pending timers. Callbacks are dropped, NOT invoked: at teardown
  // the objects they capture may already be destroyed.
  for (auto& [id, out] : outstanding_) {
    transport_->env().Cancel(out.timer);
  }
  outstanding_.clear();
}

void RpcNode::Handle(uint16_t method, MethodHandler handler) {
  methods_[method] = std::move(handler);
}

void RpcNode::Call(HostId dest, uint16_t method, std::vector<uint8_t> request, Duration timeout,
                   ResponseCallback cb, MsgCategory category) {
  const uint64_t rpc_id = next_rpc_id_++;

  Writer w;
  w.PutU64(rpc_id);
  w.PutU16(method);
  w.PutU32(static_cast<uint32_t>(request.size()));
  w.PutBytes(request.data(), request.size());

  Outstanding out;
  out.cb = std::move(cb);
  out.timer = transport_->env().Schedule(timeout, [this, rpc_id] {
    Complete(rpc_id, Status::Timeout("rpc timeout"), {});
  });
  outstanding_.emplace(rpc_id, std::move(out));

  WireMessage msg;
  msg.to = dest;
  msg.type = msgtype::kRpcRequest;
  msg.category = category;
  msg.payload = w.Take();
  transport_->Send(std::move(msg), [this, rpc_id](const Status& s) {
    if (!s.ok()) {
      Complete(rpc_id, s, {});
    }
  });
}

void RpcNode::OnRequest(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t rpc_id = r.GetU64();
  const uint16_t method = r.GetU16();
  const uint32_t len = r.GetU32();
  std::vector<uint8_t> body(len);
  r.GetBytes(body.data(), len);
  if (!r.ok()) {
    return;
  }

  std::vector<uint8_t> reply;
  uint8_t ok = 0;
  const auto it = methods_.find(method);
  if (it != methods_.end()) {
    reply = it->second(msg.from, body);
    ok = 1;
  }

  Writer w;
  w.PutU64(rpc_id);
  w.PutU8(ok);
  w.PutU32(static_cast<uint32_t>(reply.size()));
  w.PutBytes(reply.data(), reply.size());

  WireMessage resp;
  resp.to = msg.from;
  resp.type = msgtype::kRpcResponse;
  resp.category = msg.category;
  resp.payload = w.Take();
  transport_->Send(std::move(resp), nullptr);
}

void RpcNode::OnResponse(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t rpc_id = r.GetU64();
  const uint8_t ok = r.GetU8();
  const uint32_t len = r.GetU32();
  std::vector<uint8_t> body(len);
  r.GetBytes(body.data(), len);
  if (!r.ok()) {
    return;
  }
  Complete(rpc_id, ok ? Status::Ok() : Status::NotFound("no such rpc method"), body);
}

void RpcNode::Complete(uint64_t rpc_id, const Status& status, const std::vector<uint8_t>& reply) {
  const auto it = outstanding_.find(rpc_id);
  if (it == outstanding_.end()) {
    return;  // duplicate completion (late reply after timeout): drop
  }
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  transport_->env().Cancel(out.timer);
  if (out.cb) {
    out.cb(status, reply);
  }
}

}  // namespace fuse
