#include "fuse/alt_topologies.h"

#include <utility>

#include "common/logging.h"
#include "common/serialize.h"

namespace fuse {
namespace {

// kAltCreate payload: id, member count, members.
// kAltCreateReply payload: id, accept u8.
// kAltPing / kAltPingReply payload: seq u64, id (zero id = central-server
//   host-level ping).
// kAltNotify payload: id.

std::vector<uint8_t> EncodeId(const FuseId& id) {
  Writer w;
  WriteFuseId(w, id);
  return w.Take();
}

}  // namespace

AltFuseNode::AltFuseNode(Transport* transport, AltFuseConfig config)
    : transport_(transport), config_(config) {
  is_server_ = config_.topology == LivenessTopology::kCentralServer &&
               config_.central_server == transport_->local_host();
  transport_->RegisterHandler(msgtype::kAltCreate,
                              [this](const WireMessage& m) { OnCreate(m); });
  transport_->RegisterHandler(msgtype::kAltCreateReply,
                              [this](const WireMessage& m) { OnCreateReply(m); });
  transport_->RegisterHandler(msgtype::kAltPing, [this](const WireMessage& m) { OnPing(m); });
  transport_->RegisterHandler(msgtype::kAltPingReply,
                              [this](const WireMessage& m) { OnPingReply(m); });
  transport_->RegisterHandler(msgtype::kAltNotify,
                              [this](const WireMessage& m) { OnNotify(m); });
}

AltFuseNode::~AltFuseNode() { Shutdown(); }

void AltFuseNode::Shutdown() {
  if (shutdown_) {
    return;
  }
  shutdown_ = true;
  Environment& env = transport_->env();
  for (auto& [id, g] : groups_) {
    for (auto& [peer, ping] : g.pings) {
      env.Cancel(ping.next_ping);
      env.Cancel(ping.timeout);
    }
  }
  for (auto& [id, p] : creating_) {
    env.Cancel(p.timer);
  }
  for (auto& [host, timer] : server_watchdogs_) {
    env.Cancel(timer);
  }
  env.Cancel(server_ping_.next_ping);
  env.Cancel(server_ping_.timeout);
  groups_.clear();
  creating_.clear();
}

std::vector<HostId> AltFuseNode::PingTargets(const GroupState& g) const {
  std::vector<HostId> targets;
  const HostId self = transport_->local_host();
  switch (config_.topology) {
    case LivenessTopology::kAllToAll:
      for (HostId m : g.members) {
        if (m != self) {
          targets.push_back(m);
        }
      }
      break;
    case LivenessTopology::kDirectTree: {
      // Star rooted at the creator (members[0]): the root pings everyone,
      // everyone pings the root. Both sides monitor each link.
      const HostId root = g.members.front();
      if (self == root) {
        for (HostId m : g.members) {
          if (m != self) {
            targets.push_back(m);
          }
        }
      } else {
        targets.push_back(root);
      }
      break;
    }
    case LivenessTopology::kCentralServer:
      // Host-level pinging to the server is shared across groups and managed
      // separately (server_ping_).
      break;
  }
  return targets;
}

void AltFuseNode::CreateGroup(std::vector<HostId> members, CreateCallback cb) {
  Environment& env = transport_->env();
  const FuseId id = FuseId::Generate(env.rng());
  // Normalize: creator first, then the others.
  std::vector<HostId> all;
  all.push_back(transport_->local_host());
  for (HostId m : members) {
    if (m != transport_->local_host()) {
      all.push_back(m);
    }
  }

  CreatePending p;
  p.members = all;
  p.cb = std::move(cb);
  for (HostId m : all) {
    if (m != transport_->local_host()) {
      p.awaiting.insert(m);
    }
  }
  if (config_.topology == LivenessTopology::kCentralServer &&
      config_.central_server != transport_->local_host()) {
    p.awaiting.insert(config_.central_server);
  }

  Writer w;
  WriteFuseId(w, id);
  w.PutU32(static_cast<uint32_t>(all.size()));
  for (HostId m : all) {
    w.PutU64(m.value);
  }
  const PayloadBuf payload = w.Take();  // shared across the create fan-out
  std::vector<HostId> contacts(p.awaiting.begin(), p.awaiting.end());

  const bool immediate = p.awaiting.empty();
  p.timer = env.Schedule(config_.create_timeout, [this, id] {
    const auto it = creating_.find(id);
    if (it == creating_.end()) {
      return;
    }
    CreatePending pending = std::move(it->second);
    creating_.erase(it);
    const PayloadBuf notify_payload = EncodeId(id);
    for (HostId m : pending.members) {
      if (m != transport_->local_host()) {
        WireMessage n;
        n.to = m;
        n.type = msgtype::kAltNotify;
        n.category = MsgCategory::kFuseHardNotification;
        n.payload = notify_payload;
        transport_->Send(std::move(n), nullptr);
      }
    }
    if (pending.cb) {
      pending.cb(Status::Timeout("alt create"), id);
    }
  });
  creating_.emplace(id, std::move(p));

  for (HostId c : contacts) {
    WireMessage msg;
    msg.to = c;
    msg.type = msgtype::kAltCreate;
    msg.category = MsgCategory::kFuseCreate;
    msg.payload = payload;
    transport_->Send(std::move(msg), nullptr);
  }
  if (immediate) {
    const auto it = creating_.find(id);
    if (it != creating_.end()) {
      CreatePending pending = std::move(it->second);
      creating_.erase(it);
      env.Cancel(pending.timer);
      GroupState g;
      g.id = id;
      g.members = pending.members;
      groups_.emplace(id, std::move(g));
      if (pending.cb) {
        pending.cb(Status::Ok(), id);
      }
    }
  }
}

void AltFuseNode::OnCreate(const WireMessage& msg) {
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  const uint32_t n = r.GetU32();
  std::vector<HostId> members;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    members.emplace_back(r.GetU64());
  }
  if (!r.ok()) {
    return;
  }
  if (is_server_) {
    // Register the group for monitoring; start watchdogs for its members.
    for (HostId m : members) {
      server_groups_of_[m].insert(id);
      if (!server_watchdogs_.contains(m)) {
        server_watchdogs_[m] = transport_->env().Schedule(
            config_.ping_period + config_.ping_timeout, [this, m] { ServerHostDown(m); });
      }
    }
    GroupState g;
    g.id = id;
    g.members = members;
    groups_.emplace(id, std::move(g));
  } else if (!groups_.contains(id)) {
    GroupState g;
    g.id = id;
    g.members = members;
    auto [it, inserted] = groups_.emplace(id, std::move(g));
    (void)inserted;
    StartPings(it->second);
  }

  Writer w;
  WriteFuseId(w, id);
  w.PutU8(1);
  WireMessage reply;
  reply.to = msg.from;
  reply.type = msgtype::kAltCreateReply;
  reply.category = MsgCategory::kFuseCreate;
  reply.payload = w.Take();
  transport_->Send(std::move(reply), nullptr);
}

void AltFuseNode::OnCreateReply(const WireMessage& msg) {
  if (msg.payload.empty()) {
    return;  // inline completion path
  }
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  if (!r.ok()) {
    return;
  }
  const auto it = creating_.find(id);
  if (it == creating_.end()) {
    return;
  }
  it->second.awaiting.erase(msg.from);
  if (!it->second.awaiting.empty()) {
    return;
  }
  CreatePending p = std::move(it->second);
  creating_.erase(it);
  transport_->env().Cancel(p.timer);
  GroupState g;
  g.id = id;
  g.members = p.members;
  auto [git, inserted] = groups_.emplace(id, std::move(g));
  (void)inserted;
  StartPings(git->second);
  if (p.cb) {
    p.cb(Status::Ok(), id);
  }
}

void AltFuseNode::StartPings(GroupState& g) {
  Environment& env = transport_->env();
  if (config_.topology == LivenessTopology::kCentralServer) {
    if (!server_ping_running_ && !is_server_) {
      server_ping_running_ = true;
      const Duration phase =
          Duration::Micros(env.rng().UniformInt(0, config_.ping_period.ToMicros()));
      server_ping_.next_ping =
          env.Schedule(phase, [this] { SendPing(FuseId{}, config_.central_server); });
    }
    return;
  }
  const FuseId id = g.id;
  for (HostId peer : PingTargets(g)) {
    PeerPing& ping = g.pings[peer];
    const Duration phase =
        Duration::Micros(env.rng().UniformInt(0, config_.ping_period.ToMicros()));
    ping.next_ping = env.Schedule(phase, [this, id, peer] { SendPing(id, peer); });
  }
}

void AltFuseNode::SendPing(FuseId id, HostId peer) {
  if (shutdown_) {
    return;
  }
  const bool host_level = !id.valid();
  PeerPing* ping = nullptr;
  if (host_level) {
    ping = &server_ping_;
  } else {
    GroupState* g = groups_.contains(id) ? &groups_[id] : nullptr;
    if (g == nullptr) {
      return;
    }
    ping = &g->pings[peer];
  }
  const uint64_t seq = next_seq_++;
  ping->awaiting = seq;
  Writer w;
  w.PutU64(seq);
  WriteFuseId(w, id);
  WireMessage msg;
  msg.to = peer;
  msg.type = msgtype::kAltPing;
  msg.category = MsgCategory::kOverlayPing;
  msg.payload = w.Take();
  transport_->Send(std::move(msg), [this, id, peer](const Status& s) {
    if (!s.ok()) {
      PingFailed(id, peer);
    }
  });
  ping->timeout = transport_->env().Schedule(config_.ping_timeout,
                                             [this, id, peer] { PingFailed(id, peer); });
}

void AltFuseNode::OnPing(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  const FuseId id = ReadFuseId(r);
  if (!r.ok()) {
    return;
  }
  if (is_server_) {
    ServerNoteAlive(msg.from);
  }
  // Only answer pings for groups we still believe in: silence converts a
  // dead group into the peer's failure notification (the "fuse" burning).
  if (id.valid() && !groups_.contains(id)) {
    return;
  }
  Writer w;
  w.PutU64(seq);
  WriteFuseId(w, id);
  WireMessage reply;
  reply.to = msg.from;
  reply.type = msgtype::kAltPingReply;
  reply.category = MsgCategory::kOverlayPingReply;
  reply.payload = w.Take();
  transport_->Send(std::move(reply), nullptr);
}

void AltFuseNode::OnPingReply(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  const FuseId id = ReadFuseId(r);
  if (!r.ok()) {
    return;
  }
  Environment& env = transport_->env();
  if (!id.valid()) {
    if (server_ping_.awaiting == seq) {
      server_ping_.awaiting = 0;
      env.Cancel(server_ping_.timeout);
      server_ping_.next_ping = env.Schedule(
          config_.ping_period, [this] { SendPing(FuseId{}, config_.central_server); });
    }
    return;
  }
  GroupState* g = groups_.contains(id) ? &groups_[id] : nullptr;
  if (g == nullptr) {
    return;
  }
  auto it = g->pings.find(msg.from);
  if (it != g->pings.end() && it->second.awaiting == seq) {
    it->second.awaiting = 0;
    env.Cancel(it->second.timeout);
    const HostId peer = msg.from;
    it->second.next_ping =
        env.Schedule(config_.ping_period, [this, id, peer] { SendPing(id, peer); });
  }
}

void AltFuseNode::PingFailed(FuseId id, HostId peer) {
  if (shutdown_) {
    return;
  }
  if (!id.valid()) {
    // Lost contact with the central server: conservative group failure on
    // everything it was monitoring for us.
    std::vector<FuseId> ids;
    ids.reserve(groups_.size());
    for (const auto& [gid, g] : groups_) {
      ids.push_back(gid);
    }
    for (const FuseId& gid : ids) {
      FailGroup(gid);
    }
    server_ping_running_ = false;
    return;
  }
  (void)peer;
  FailGroup(id);
}

void AltFuseNode::FailGroup(FuseId id) {
  const auto it = groups_.find(id);
  if (it == groups_.end()) {
    return;
  }
  for (HostId m : it->second.members) {
    if (m != transport_->local_host()) {
      WireMessage msg;
      msg.to = m;
      msg.type = msgtype::kAltNotify;
      msg.category = MsgCategory::kFuseHardNotification;
      msg.payload = EncodeId(id);
      transport_->Send(std::move(msg), nullptr);
    }
  }
  DropGroup(id, /*deliver=*/true);
}

void AltFuseNode::OnNotify(const WireMessage& msg) {
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  if (!r.ok()) {
    return;
  }
  DropGroup(id, /*deliver=*/true);
}

void AltFuseNode::RegisterFailureHandler(FuseId id, FailureHandler handler) {
  const auto it = groups_.find(id);
  if (it != groups_.end()) {
    it->second.handler = std::move(handler);
    return;
  }
  transport_->env().Schedule(Duration::Zero(), [this, id, handler = std::move(handler)] {
    notifications_delivered_++;
    handler(id);
  });
}

void AltFuseNode::SignalFailure(FuseId id) { FailGroup(id); }

void AltFuseNode::DropGroup(FuseId id, bool deliver) {
  const auto it = groups_.find(id);
  if (it == groups_.end()) {
    return;
  }
  Environment& env = transport_->env();
  for (auto& [peer, ping] : it->second.pings) {
    env.Cancel(ping.next_ping);
    env.Cancel(ping.timeout);
  }
  FailureHandler handler = std::move(it->second.handler);
  if (is_server_) {
    for (HostId m : it->second.members) {
      const auto git = server_groups_of_.find(m);
      if (git != server_groups_of_.end()) {
        git->second.erase(id);
      }
    }
  }
  groups_.erase(it);
  if (deliver && handler) {
    notifications_delivered_++;
    handler(id);
  }
}

void AltFuseNode::ServerNoteAlive(HostId who) {
  Environment& env = transport_->env();
  auto& timer = server_watchdogs_[who];
  env.Cancel(timer);
  timer = env.Schedule(config_.ping_period + config_.ping_timeout,
                       [this, who] { ServerHostDown(who); });
}

void AltFuseNode::ServerHostDown(HostId who) {
  const auto it = server_groups_of_.find(who);
  if (it == server_groups_of_.end()) {
    return;
  }
  const std::vector<FuseId> ids(it->second.begin(), it->second.end());
  for (const FuseId& id : ids) {
    FailGroup(id);
  }
  server_groups_of_.erase(who);
}

}  // namespace fuse
