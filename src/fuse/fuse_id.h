// FuseId: the globally unique identifier of a FUSE notification group.
//
// Notably (section 2), a FUSE ID is *not* bound to a process or machine: it
// names a group of nodes and, by application convention, the distributed
// state whose fate is shared through the group.
#ifndef FUSE_FUSE_FUSE_ID_H_
#define FUSE_FUSE_FUSE_ID_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/serialize.h"

namespace fuse {

struct FuseId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return hi != 0 || lo != 0; }

  // 128 random bits; collision probability is negligible.
  static FuseId Generate(Rng& rng) {
    FuseId id;
    do {
      id.hi = rng.NextU64();
      id.lo = rng.NextU64();
    } while (!id.valid());
    return id;
  }

  std::string ToString() const {
    char buf[36];
    std::snprintf(buf, sizeof(buf), "%016llx-%016llx", static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
  }

  friend bool operator==(const FuseId& a, const FuseId& b) { return a.hi == b.hi && a.lo == b.lo; }
  friend bool operator!=(const FuseId& a, const FuseId& b) { return !(a == b); }
  friend bool operator<(const FuseId& a, const FuseId& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

inline void WriteFuseId(Writer& w, const FuseId& id) {
  w.PutU64(id.hi);
  w.PutU64(id.lo);
}

inline FuseId ReadFuseId(Reader& r) {
  FuseId id;
  id.hi = r.GetU64();
  id.lo = r.GetU64();
  return id;
}

struct FuseIdHash {
  size_t operator()(const FuseId& id) const {
    uint64_t x = id.hi ^ (id.lo * 0x9e3779b97f4a7c15ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace fuse

namespace std {
template <>
struct hash<fuse::FuseId> {
  size_t operator()(const fuse::FuseId& id) const { return fuse::FuseIdHash{}(id); }
};
}  // namespace std

#endif  // FUSE_FUSE_FUSE_ID_H_
