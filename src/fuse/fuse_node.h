// FuseNode: the FUSE layer on one host (paper sections 3, 5, 6).
//
// Public API (paper Figure 1): CreateGroup / RegisterFailureHandler /
// SignalFailure, providing *distributed one-way agreement*: once any member
// observes a failure — node crash, arbitrary network failure, or an explicit
// application signal — every live group member hears exactly one failure
// notification within a bounded time, and the group is gone.
//
// Implementation choices match the paper's:
//  * blocking create semantics (the callback fires only after every member
//    was contacted, or with an error after the create timeout);
//  * liveness spanning trees along overlay routes (members route
//    InstallChecking toward the root; intermediate nodes become delegates);
//  * liveness is piggybacked on overlay ping traffic as a 20-byte SHA-1 of
//    the per-link live FUSE-ID list, so FUSE adds no steady-state messages;
//  * hash mismatches trigger a reconcile exchange with a 5 s grace period;
//  * delegate/path failures trigger SoftNotifications and *repair*, not
//    application-visible failures; create/repair failures and explicit
//    signals trigger HardNotifications that are reflected to applications;
//  * per-group repair frequency backs off exponentially, capped at 40 s;
//  * no stable storage: crash recovery is re-registration plus the
//    reconciliation mechanism tearing down groups the crashed node forgot.
//
// Group fast path (FuseParams::incremental_link_digest /
// coalesce_group_timers, both opt-in): the per-ping liveness cost is O(1) in
// the number of groups on a link. The piggyback hash becomes a maintained
// XOR-of-SHA1 set digest updated at link add/remove time, and the per-group
// link/backstop timers on the healthy path collapse into one last-heard
// stamp per neighbor plus a single earliest-deadline sweep timer per node.
// Group state itself lives in a generation-tagged Pool indexed by a
// Flat128Map, with the rarely-used repair machinery split into an on-demand
// side allocation, so a million idle groups cost bytes, not timers.
#ifndef FUSE_FUSE_FUSE_NODE_H_
#define FUSE_FUSE_FUSE_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/pool.h"
#include "common/sha1.h"
#include "common/status.h"
#include "fuse/fuse_id.h"
#include "fuse/params.h"
#include "overlay/skipnet_node.h"
#include "sim/timer.h"
#include "transport/transport.h"

namespace fuse {

class FuseNode {
 public:
  // Invoked exactly once when the group fails. The handler may call back
  // into FuseNode (e.g. to create a replacement group).
  using FailureHandler = std::function<void(FuseId)>;
  using CreateCallback = std::function<void(const Status&, FuseId)>;

  // Statistics exposed for tests and benches.
  struct Stats {
    uint64_t notifications_delivered = 0;  // app handler invocations
    uint64_t hard_notifications_sent = 0;
    uint64_t soft_notifications_sent = 0;
    uint64_t repairs_initiated = 0;        // root-side repair rounds
    uint64_t reconciles = 0;
    uint64_t groups_created = 0;
    uint64_t groups_failed = 0;            // groups that died at this node
  };

  // The overlay routed-message tag FUSE claims for InstallChecking.
  static constexpr uint16_t kRoutedTag = 1;

  FuseNode(Transport* transport, SkipNetNode* overlay, FuseParams params = FuseParams());
  ~FuseNode();

  FuseNode(const FuseNode&) = delete;
  FuseNode& operator=(const FuseNode&) = delete;

  // --- paper Figure 1 API ---
  // Creates a group containing this node (the root) and `members`. The
  // callback fires with Ok and the new FUSE ID once every member was
  // contacted, or with an error (and the dead ID) if any was unreachable.
  void CreateGroup(std::vector<NodeRef> members, CreateCallback cb);
  // Registers the failure callback. If the ID is unknown or already failed,
  // the handler is invoked immediately (asynchronously), per section 3.2.
  void RegisterFailureHandler(FuseId id, FailureHandler handler);
  // Explicit failure notification (fail-on-send, application-defined failure
  // conditions, voluntary departure — sections 3.4, 4).
  void SignalFailure(FuseId id);

  // --- introspection ---
  bool HasLiveGroup(FuseId id) const { return group_index_.Find(id.hi, id.lo) != nullptr; }
  // True if this node holds root or member (participant) state for the group;
  // false for delegate-only state or unknown ids.
  bool IsParticipant(FuseId id) const {
    const GroupState* g = Find(id);
    return g != nullptr && (g->is_root || g->is_member);
  }
  size_t NumLiveGroups() const { return group_index_.size(); }
  // Total (group, neighbor) pairs monitored on this node's overlay links —
  // the messages-per-period a non-piggybacked implementation would send.
  size_t NumMonitoredLinks() const {
    size_t n = 0;
    for (const auto& [peer, pl] : links_by_peer_) {
      n += pl.ids.size();
    }
    return n;
  }
  const Stats& stats() const { return stats_; }
  NodeRef self() const { return overlay_->self(); }
  // One-line summary of the group's local state (role, seq, monitored link
  // peers) — empty string when the group is unknown here. For tests and
  // fuzz-repro triage.
  std::string DebugGroupState(FuseId id) const;

  // Estimated heap bytes held by this node's group state (pool slots, link
  // index, member lists). For the bytes-per-group bench gauges.
  size_t ApproxGroupBytes() const;
  // Armed FUSE-layer timers (link, backstop, repair, sweep). The coalesced
  // fast path keeps this O(neighbors); classic mode is O(groups).
  size_t CountArmedGroupTimers() const;
  // Oracle for the incremental digest: recomputes every per-peer digest from
  // scratch and compares with the maintained value. Always true when
  // incremental_link_digest is off.
  bool DebugVerifyLinkDigests() const;

  void Shutdown();

 private:
  // All timers below are RAII handles: dropping a LinkEntry, CreatePending,
  // RepairPending, or GroupState disarms everything it owns, so the teardown
  // paths need no explicit cancellation bookkeeping.
  struct LinkEntry {
    HostId peer;
    uint32_t seq = 0;           // tree incarnation this link belongs to
    TimePoint installed_at;     // for the reconcile grace period
    Timer timer;                // classic mode: per-(group, link) liveness backstop
  };

  struct CreatePending {
    std::vector<NodeRef> members;
    std::set<std::string> awaiting_reply;    // member names
    std::set<std::string> installed_early;   // InstallChecking before reply
    std::vector<HostId> early_links;         // last hops of early installs
    CreateCallback cb;
    Timer timer;
  };

  struct RepairPending {
    std::set<std::string> awaiting_reply;
    Timer timer;
  };

  // Repair/install machinery, allocated only while a group needs it. The
  // overwhelming majority of groups never repair, so keeping these five
  // timers and three containers out of GroupState is what makes a million
  // idle groups fit densely in the pool. Once a root has run a repair the
  // aux stays (repair_backoff/last_repair_time carry the paper's 6.5 backoff
  // state across rounds); see MaybeTrimAux.
  struct RepairAux {
    // Member: waiting to hear from the root after initiating repair.
    Timer member_repair_timer;
    // Root: repair bookkeeping.
    std::unique_ptr<RepairPending> repair;
    // Root: a NeedRepair arrived while a repair round was already in flight.
    // The complaining member's new path may have raced with the very failure
    // it reported, so the round in flight can complete "successfully" while
    // leaving that member unmonitored — another round must follow.
    bool rerepair_requested = false;
    std::set<std::string> install_pending;  // members whose path is not installed
    Timer install_timer;
    Duration repair_backoff = Duration::Zero();
    TimePoint last_repair_time;
    Timer scheduled_repair;
  };

  struct GroupState {
    FuseId id;
    uint32_t seq = 0;
    bool is_root = false;
    bool is_member = false;     // non-root member
    NodeRef root;               // valid on members
    std::vector<NodeRef> members;  // valid on the root (excludes the root)

    // Liveness tree links this node monitors for the group, in install
    // order. A group has a handful of links at most, so a linear scan beats
    // a per-group hash table and keeps the state one small vector.
    std::vector<LinkEntry> links;

    // Members/root: group-level liveness backstop (paper 6.2: "a timer ...
    // that will signal failure in the event of future communication
    // failures", reset only by liveness checking). In coalesced mode it is
    // armed only while the group has no links (the per-peer sweep covers it
    // otherwise).
    Timer backstop;

    std::unique_ptr<RepairAux> aux;

    FailureHandler handler;
  };

  using GroupRef = Pool<GroupState>::Ref;

  // Per-neighbor liveness index: which groups ride on the link, plus the two
  // fast-path fields — the maintained XOR-of-SHA1 set digest
  // (incremental_link_digest) and the last healthy-confirmation stamp
  // (coalesce_group_timers).
  struct PeerLinks {
    // Ordered so the classic SHA-1 piggyback hash and the reconcile link
    // list are deterministic.
    std::set<FuseId> ids;
    Sha1Digest digest{};
    TimePoint last_refresh;
  };

  // --- API plumbing ---
  void FinishCreate(FuseId id, const Status& status);

  // --- wire handlers ---
  void OnCreateRequest(const WireMessage& msg);
  void OnCreateReply(const WireMessage& msg);
  bool OnInstallUpcall(const SkipNetNode::RoutedUpcall& upcall);
  void OnSoftNotification(const WireMessage& msg);
  void OnHardNotification(const WireMessage& msg);
  void OnNeedRepair(const WireMessage& msg);
  void OnRepairRequest(const WireMessage& msg);
  void OnRepairReply(const WireMessage& msg);
  void OnReconcileRequest(const WireMessage& msg);
  void OnReconcileReply(const WireMessage& msg);

  // --- liveness ---
  bool LinkHashFor(HostId neighbor, Sha1Digest* out);
  void AppendPingPayload(HostId neighbor, Writer& w);
  void OnPingPayload(HostId neighbor, const uint8_t* data, size_t len);
  void OnOverlayNeighborFailed(HostId neighbor);
  void AddLink(GroupState& g, HostId peer, uint32_t seq);
  void RemoveLink(GroupState& g, HostId peer);
  void ResetLinkTimers(HostId neighbor);
  void ArmLinkTimer(FuseId id, HostId peer, LinkEntry& link);
  void ArmBackstop(GroupState& g);
  void HandleLinkDown(FuseId id, HostId peer);
  // Coalesced mode: one timer armed at the earliest per-peer deadline;
  // firing rescans the peer table and tears down every stale link.
  void ArmPeerSweep();
  void SweepStalePeers();

  // --- notifications ---
  void SendSoftToTree(GroupState& g, HostId except, uint32_t seq);
  void SendHard(FuseId id, HostId to);
  void RootFailGroup(GroupState& g);        // Hard to all members + local app
  void DeliverLocalFailure(FuseId id);      // invoke handler + teardown

  // --- repair ---
  void MemberInitiateRepair(GroupState& g);
  void RootScheduleRepair(FuseId id);
  void RootStartRepair(FuseId id);
  void RootRepairFailed(FuseId id);
  void SendInstallChecking(GroupState& g);

  // --- reconciliation ---
  void MaybeReconcile(HostId neighbor);
  std::vector<uint8_t> EncodeLinkList(HostId neighbor);
  void ProcessRemoteLinkList(HostId neighbor, Reader& r);

  // --- state management ---
  // Pointers returned by Find/Emplace are invalidated by the next Emplace
  // (the pool's backing vector may grow) — the same contract as Pool::Get.
  // Group allocation happens only in create/install entry paths and inside
  // application failure handlers; never hold a GroupState* across those.
  GroupState* Find(FuseId id);
  const GroupState* Find(FuseId id) const;
  GroupState& Emplace(GroupState&& g);
  void DropGroup(FuseId id, bool deliver_to_app);
  void EraseLinkIndex(FuseId id, HostId peer);
  void AddLinkIndex(FuseId id, HostId peer);
  LinkEntry* FindLink(GroupState& g, HostId peer);
  const LinkEntry* FindLink(const GroupState& g, HostId peer) const;
  RepairAux& Aux(GroupState& g);
  void MaybeTrimAux(GroupState& g);
  // XOR of SHA-1(hi || lo) into the digest: self-inverse, so the same call
  // both adds and removes an id from the set fingerprint.
  static void XorInto(Sha1Digest& digest, FuseId id);

  Transport* transport_;
  SkipNetNode* overlay_;
  FuseParams params_;
  bool shutdown_ = false;

  // Group table: a generation-tagged pool of GroupState slots indexed by the
  // full 128-bit FUSE ID (folding to 64 bits would let a hash collision
  // silently alias two live groups).
  Pool<GroupState> group_pool_;
  Flat128Map<GroupRef> group_index_;
  std::unordered_map<FuseId, CreatePending> creating_;
  std::unordered_map<HostId, PeerLinks> links_by_peer_;
  std::unordered_map<HostId, TimePoint> last_reconcile_;

  // Coalesced mode: the single per-node group-liveness timer.
  Timer peer_sweep_;
  // Pooled scratch snapshots for the failure paths (OnOverlayNeighborFailed,
  // SweepStalePeers): reused across invocations, handed off by swap so a
  // reentrant activation owns its own snapshot.
  std::vector<FuseId> fail_scratch_;
  std::vector<std::pair<HostId, FuseId>> sweep_scratch_;

  Stats stats_;
};

}  // namespace fuse

#endif  // FUSE_FUSE_FUSE_NODE_H_
