#include "fuse/fuse_node.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/sha1.h"

namespace fuse {
namespace {

// Wire encodings. All FUSE direct messages are small fixed structures.

std::vector<uint8_t> EncodeIdOnly(const FuseId& id) {
  Writer w;
  WriteFuseId(w, id);
  return w.Take();
}

std::vector<uint8_t> EncodeIdSeq(const FuseId& id, uint32_t seq) {
  Writer w;
  WriteFuseId(w, id);
  w.PutU32(seq);
  return w.Take();
}

}  // namespace

FuseNode::FuseNode(Transport* transport, SkipNetNode* overlay, FuseParams params)
    : transport_(transport), overlay_(overlay), params_(params) {
  transport_->RegisterHandler(msgtype::kFuseGroupCreateRequest,
                              [this](const WireMessage& m) { OnCreateRequest(m); });
  transport_->RegisterHandler(msgtype::kFuseGroupCreateReply,
                              [this](const WireMessage& m) { OnCreateReply(m); });
  transport_->RegisterHandler(msgtype::kFuseSoftNotification,
                              [this](const WireMessage& m) { OnSoftNotification(m); });
  transport_->RegisterHandler(msgtype::kFuseHardNotification,
                              [this](const WireMessage& m) { OnHardNotification(m); });
  transport_->RegisterHandler(msgtype::kFuseNeedRepair,
                              [this](const WireMessage& m) { OnNeedRepair(m); });
  transport_->RegisterHandler(msgtype::kFuseGroupRepairRequest,
                              [this](const WireMessage& m) { OnRepairRequest(m); });
  transport_->RegisterHandler(msgtype::kFuseGroupRepairReply,
                              [this](const WireMessage& m) { OnRepairReply(m); });
  transport_->RegisterHandler(msgtype::kFuseReconcileRequest,
                              [this](const WireMessage& m) { OnReconcileRequest(m); });
  transport_->RegisterHandler(msgtype::kFuseReconcileReply,
                              [this](const WireMessage& m) { OnReconcileReply(m); });

  overlay_->SetRoutedHandler(
      kRoutedTag, [this](SkipNetNode::RoutedUpcall& u) { return OnInstallUpcall(u); });
  overlay_->SetPingPayloadProvider([this](HostId n, Writer& w) { AppendPingPayload(n, w); });
  overlay_->SetPingPayloadObserver(
      [this](HostId n, const uint8_t* data, size_t len) { OnPingPayload(n, data, len); });
  overlay_->SetNeighborFailureHandler([this](HostId n) { OnOverlayNeighborFailed(n); });
}

FuseNode::~FuseNode() { Shutdown(); }

void FuseNode::Shutdown() {
  if (shutdown_) {
    return;
  }
  shutdown_ = true;
  // Detach from the overlay so its pings stop calling into us.
  overlay_->SetPingPayloadProvider(nullptr);
  overlay_->SetPingPayloadObserver(nullptr);
  overlay_->SetNeighborFailureHandler(nullptr);
  peer_sweep_.Cancel();
  // Every timer is an RAII handle owned by the state being dropped here.
  group_index_ = Flat128Map<GroupRef>();
  group_pool_ = Pool<GroupState>();
  creating_.clear();
  links_by_peer_.clear();
}

FuseNode::GroupState* FuseNode::Find(FuseId id) {
  const GroupRef* ref = group_index_.Find(id.hi, id.lo);
  return ref == nullptr ? nullptr : group_pool_.Get(*ref);
}

const FuseNode::GroupState* FuseNode::Find(FuseId id) const {
  return const_cast<FuseNode*>(this)->Find(id);
}

FuseNode::GroupState& FuseNode::Emplace(GroupState&& g) {
  const FuseId id = g.id;
  const GroupRef ref = group_pool_.Alloc();  // invalidates outstanding GroupState*
  *group_pool_.Get(ref) = std::move(g);
  group_index_.FindOrInsert(id.hi, id.lo) = ref;
  return *group_pool_.Get(ref);
}

FuseNode::LinkEntry* FuseNode::FindLink(GroupState& g, HostId peer) {
  for (LinkEntry& link : g.links) {
    if (link.peer == peer) {
      return &link;
    }
  }
  return nullptr;
}

const FuseNode::LinkEntry* FuseNode::FindLink(const GroupState& g, HostId peer) const {
  return const_cast<FuseNode*>(this)->FindLink(const_cast<GroupState&>(g), peer);
}

FuseNode::RepairAux& FuseNode::Aux(GroupState& g) {
  if (g.aux == nullptr) {
    g.aux = std::make_unique<RepairAux>();
  }
  return *g.aux;
}

void FuseNode::MaybeTrimAux(GroupState& g) {
  if (g.aux == nullptr) {
    return;
  }
  const RepairAux& a = *g.aux;
  // Roots that have repaired keep their aux: repair_backoff/last_repair_time
  // must survive between rounds or the exponential backoff (paper 6.5) would
  // reset every time the tree heals.
  if (a.repair == nullptr && !a.rerepair_requested && a.install_pending.empty() &&
      !a.install_timer.pending() && !a.scheduled_repair.pending() &&
      !a.member_repair_timer.pending() && a.last_repair_time == TimePoint()) {
    g.aux.reset();
  }
}

std::string FuseNode::DebugGroupState(FuseId id) const {
  const GroupState* g = Find(id);
  if (g == nullptr) {
    return "";
  }
  std::string s = g->is_root ? "root" : g->is_member ? "member" : "delegate";
  s += " seq=" + std::to_string(g->seq);
  s += " links=[";
  bool first = true;
  for (const LinkEntry& link : g->links) {
    if (!first) {
      s += " ";
    }
    first = false;
    s += std::to_string(link.peer.value);
    if (!params_.coalesce_group_timers && !link.timer.pending()) {
      s += "(idle)";
    }
  }
  s += "]";
  if (g->aux != nullptr) {
    if (!g->aux->install_pending.empty()) {
      s += " install_pending=" + std::to_string(g->aux->install_pending.size());
    }
    if (g->aux->repair != nullptr) {
      s += " repairing";
    }
    if (g->aux->member_repair_timer.pending()) {
      s += " member_repair_armed";
    }
  }
  if (params_.coalesce_group_timers) {
    s += " coalesced";
  } else if (!g->backstop.pending()) {
    s += " BACKSTOP-IDLE";
  }
  return s;
}

size_t FuseNode::ApproxGroupBytes() const {
  // Deliberately an estimate from container sizes (not an allocator hook):
  // deterministic for a deterministic run, which lets the bench gauges sit
  // in the perf baseline.
  size_t total = 0;
  total += group_index_.size() * (2 * sizeof(uint64_t) + sizeof(GroupRef) + 1);
  group_index_.ForEach([&](uint64_t, uint64_t, const GroupRef& ref) {
    const GroupState* g = group_pool_.Get(ref);
    if (g == nullptr) {
      return;
    }
    total += sizeof(GroupState);
    total += g->links.capacity() * sizeof(LinkEntry);
    total += g->members.capacity() * sizeof(NodeRef);
    for (const auto& m : g->members) {
      total += m.name.capacity();
    }
    total += g->root.name.capacity();
    if (g->aux != nullptr) {
      total += sizeof(RepairAux);
    }
  });
  for (const auto& [peer, pl] : links_by_peer_) {
    // Red-black tree node: key + parent/left/right pointers + color word.
    total += sizeof(PeerLinks) + pl.ids.size() * (sizeof(FuseId) + 4 * sizeof(void*));
  }
  return total;
}

size_t FuseNode::CountArmedGroupTimers() const {
  size_t n = 0;
  group_index_.ForEach([&](uint64_t, uint64_t, const GroupRef& ref) {
    const GroupState* g = group_pool_.Get(ref);
    if (g == nullptr) {
      return;
    }
    if (g->backstop.pending()) {
      ++n;
    }
    for (const LinkEntry& link : g->links) {
      if (link.timer.pending()) {
        ++n;
      }
    }
    if (g->aux != nullptr) {
      const RepairAux& a = *g->aux;
      if (a.member_repair_timer.pending()) {
        ++n;
      }
      if (a.install_timer.pending()) {
        ++n;
      }
      if (a.scheduled_repair.pending()) {
        ++n;
      }
      if (a.repair != nullptr && a.repair->timer.pending()) {
        ++n;
      }
    }
  });
  if (peer_sweep_.pending()) {
    ++n;
  }
  return n;
}

bool FuseNode::DebugVerifyLinkDigests() const {
  if (!params_.incremental_link_digest) {
    return true;
  }
  for (const auto& [peer, pl] : links_by_peer_) {
    Sha1Digest expect{};
    for (const FuseId& id : pl.ids) {
      XorInto(expect, id);
    }
    if (expect != pl.digest) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

void FuseNode::CreateGroup(std::vector<NodeRef> members, CreateCallback cb) {
  Environment& env = transport_->env();
  const FuseId id = FuseId::Generate(env.rng());

  // The creator is implicitly the root; drop it from the member list if the
  // caller included it.
  std::vector<NodeRef> others;
  for (auto& m : members) {
    if (m.host != transport_->local_host()) {
      others.push_back(std::move(m));
    }
  }

  if (others.empty()) {
    // A one-node group: trivially created; it can only fail explicitly.
    GroupState g;
    g.id = id;
    g.is_root = true;
    Emplace(std::move(g));
    stats_.groups_created++;
    env.Schedule(Duration::Zero(), [cb = std::move(cb), id] { cb(Status::Ok(), id); });
    return;
  }

  CreatePending p;
  p.members = others;
  for (const auto& m : others) {
    p.awaiting_reply.insert(m.name);
  }
  p.cb = std::move(cb);
  p.timer.Bind(env);
  p.timer.Start(params_.create_timeout,
                [this, id] { FinishCreate(id, Status::Timeout("group create")); });
  creating_.emplace(id, std::move(p));

  Writer w;
  WriteFuseId(w, id);
  WriteNodeRef(w, self());
  // One shared buffer for the whole fan-out.
  const PayloadBuf payload = w.Take();
  for (const auto& m : others) {
    WireMessage msg;
    msg.to = m.host;
    msg.type = msgtype::kFuseGroupCreateRequest;
    msg.category = MsgCategory::kFuseCreate;
    msg.payload = payload;
    transport_->Send(std::move(msg), nullptr);
  }
}

void FuseNode::FinishCreate(FuseId id, const Status& status) {
  const auto it = creating_.find(id);
  if (it == creating_.end()) {
    return;
  }
  CreatePending p = std::move(it->second);
  creating_.erase(it);
  p.timer.Cancel();

  if (!status.ok()) {
    // Creation failed: notify everyone who may already have installed state
    // (paper 6.2); late replies find no creating entry and are ignored.
    for (const auto& m : p.members) {
      SendHard(id, m.host);
    }
    if (p.cb) {
      p.cb(status, id);
    }
    return;
  }

  GroupState g;
  g.id = id;
  g.is_root = true;
  g.members = p.members;
  std::set<std::string> install_pending;
  for (const auto& m : p.members) {
    if (!p.installed_early.contains(m.name)) {
      install_pending.insert(m.name);
    }
  }
  GroupState& gs = Emplace(std::move(g));
  for (HostId peer : p.early_links) {
    AddLink(gs, peer, /*seq=*/0);
  }
  if (!install_pending.empty()) {
    RepairAux& aux = Aux(gs);
    aux.install_pending = std::move(install_pending);
    aux.install_timer.Bind(transport_->env());
    aux.install_timer.Start(params_.install_timeout, [this, id] { RootScheduleRepair(id); });
  }
  ArmBackstop(gs);
  stats_.groups_created++;
  if (p.cb) {
    p.cb(Status::Ok(), id);
  }
}

void FuseNode::RegisterFailureHandler(FuseId id, FailureHandler handler) {
  GroupState* g = Find(id);
  if (g != nullptr && (g->is_root || g->is_member)) {
    g->handler = std::move(handler);
    return;
  }
  // Unknown (or already failed, or delegate-only) id: the failure handler is
  // invoked immediately (paper 3.1/3.2).
  transport_->env().Schedule(Duration::Zero(), [this, id, handler = std::move(handler)] {
    stats_.notifications_delivered++;
    handler(id);
  });
}

void FuseNode::SignalFailure(FuseId id) {
  GroupState* g = Find(id);
  if (g == nullptr) {
    return;  // already failed: notification already happened or is in flight
  }
  if (g->is_root) {
    RootFailGroup(*g);
    return;
  }
  if (g->is_member) {
    SendHard(id, g->root.host);
    SendSoftToTree(*g, HostId(), g->seq);
    DeliverLocalFailure(id);
    return;
  }
  // Delegate-only state: applications on pure delegates hold no group state;
  // clean up silently.
  DropGroup(id, /*deliver_to_app=*/false);
}

// ---------------------------------------------------------------------------
// Create protocol (member side + root replies).
// ---------------------------------------------------------------------------

void FuseNode::OnCreateRequest(const WireMessage& msg) {
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  const NodeRef root = ReadNodeRef(r);
  if (!r.ok()) {
    return;
  }
  GroupState* existing = Find(id);
  if (existing == nullptr) {
    GroupState g;
    g.id = id;
    g.is_member = true;
    g.root = root;
    GroupState& gs = Emplace(std::move(g));
    ArmBackstop(gs);
    SendInstallChecking(gs);
  } else {
    existing->is_member = true;
    existing->root = root;
  }

  Writer w;
  WriteFuseId(w, id);
  WriteNodeRef(w, self());
  w.PutU8(1);  // accept
  WireMessage reply;
  reply.to = msg.from;
  reply.type = msgtype::kFuseGroupCreateReply;
  reply.category = MsgCategory::kFuseCreate;
  reply.payload = w.Take();
  transport_->Send(std::move(reply), nullptr);
}

void FuseNode::OnCreateReply(const WireMessage& msg) {
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  const NodeRef member = ReadNodeRef(r);
  const uint8_t accept = r.GetU8();
  if (!r.ok()) {
    return;
  }
  const auto it = creating_.find(id);
  if (it == creating_.end()) {
    return;  // late reply: create already finished or failed
  }
  if (!accept) {
    FinishCreate(id, Status::Failed("member refused"));
    return;
  }
  it->second.awaiting_reply.erase(member.name);
  if (it->second.awaiting_reply.empty()) {
    FinishCreate(id, Status::Ok());
  }
}

void FuseNode::SendInstallChecking(GroupState& g) {
  Writer w;
  WriteFuseId(w, g.id);
  w.PutU32(g.seq);
  WriteNodeRef(w, self());
  overlay_->RouteByName(g.root.name, kRoutedTag, w.Take(), MsgCategory::kFuseInstallChecking);
}

bool FuseNode::OnInstallUpcall(const SkipNetNode::RoutedUpcall& upcall) {
  Reader r(upcall.payload.data(), upcall.payload.size());
  const FuseId id = ReadFuseId(r);
  const uint32_t seq = r.GetU32();
  const NodeRef member = ReadNodeRef(r);
  if (!r.ok()) {
    return false;
  }

  if (!upcall.prev_hop.valid()) {
    // We are the member that originated this InstallChecking: monitor the
    // first hop toward the root.
    GroupState* g = Find(id);
    if (g != nullptr && upcall.next_hop.valid()) {
      AddLink(*g, upcall.next_hop.host, seq);
    }
    return false;
  }

  if (upcall.at_dest) {
    // Arrived at the root: record the member's path as installed and monitor
    // the last hop.
    GroupState* g = Find(id);
    if (g != nullptr && g->is_root) {
      if (seq == g->seq && g->aux != nullptr) {
        RepairAux& aux = *g->aux;
        aux.install_pending.erase(member.name);
        if (aux.install_pending.empty()) {
          aux.install_timer.Cancel();
          if (aux.repair == nullptr && aux.rerepair_requested) {
            // The tree looks complete, but a member complained while it was
            // being rebuilt — run another round.
            RootScheduleRepair(id);
          } else if (aux.repair == nullptr) {
            MaybeTrimAux(*g);
          }
        }
      }
      AddLink(*g, upcall.prev_hop, seq);
      ArmBackstop(*g);
      return false;
    }
    // Create still in flight: remember the early install.
    const auto it = creating_.find(id);
    if (it != creating_.end()) {
      if (seq == 0) {
        it->second.installed_early.insert(member.name);
        // Monitor the last hop once the root state exists; easiest is to
        // defer by re-adding on completion — record via a synthetic pending
        // link. We instead install the link immediately after create
        // completes by re-walking installed_early; the prev hop is stored
        // alongside.
        it->second.early_links.push_back(upcall.prev_hop);
      }
      return false;
    }
    // Delivered at a node that is not (and is not becoming) the group's
    // root: the route toward the root's name dead-ended short of it — the
    // root crashed, or its name region is partitioned away. A checking path
    // that is not anchored at the root must fail loudly (paper 6.5: a
    // message that encounters a node with no knowledge of the group signals
    // a HardNotification), or the member would monitor a dangling path
    // forever.
    SendHard(id, member.host);
    return false;
  }

  // Intermediate hop: we become (or refresh) a delegate for this group.
  if (!upcall.next_hop.valid()) {
    // The route stalled here short of the root (broken overlay route with no
    // forward progress possible). Installing the half-built path would leave
    // the member monitoring a chain anchored at nothing — and the two ends
    // would keep each other's link hashes fresh indefinitely, so the member
    // would never hear the group fail. Refuse the path and fail it loudly
    // instead.
    SendHard(id, member.host);
    return false;
  }
  GroupState* g = Find(id);
  if (g == nullptr) {
    GroupState fresh;
    fresh.id = id;
    fresh.seq = seq;
    g = &Emplace(std::move(fresh));
  }
  if (seq < g->seq) {
    return false;  // stale path install
  }
  g->seq = seq;
  AddLink(*g, upcall.prev_hop, seq);
  AddLink(*g, upcall.next_hop.host, seq);
  return false;
}

// ---------------------------------------------------------------------------
// Liveness: piggybacked hashes, timers, reconciliation.
// ---------------------------------------------------------------------------

void FuseNode::XorInto(Sha1Digest& digest, FuseId id) {
  Sha1 h;
  h.UpdateU64(id.hi);
  h.UpdateU64(id.lo);
  const Sha1Digest d = h.Finish();
  for (size_t i = 0; i < digest.size(); ++i) {
    digest[i] ^= d[i];
  }
}

void FuseNode::AddLinkIndex(FuseId id, HostId peer) {
  PeerLinks& pl = links_by_peer_[peer];
  if (pl.ids.insert(id).second && params_.incremental_link_digest) {
    XorInto(pl.digest, id);
  }
  if (params_.coalesce_group_timers) {
    // A fresh install counts as hearing from the peer: the sweep must not
    // tear down a link that never had a chance to confirm a ping.
    pl.last_refresh = transport_->env().Now();
    ArmPeerSweep();
  }
}

void FuseNode::EraseLinkIndex(FuseId id, HostId peer) {
  const auto it = links_by_peer_.find(peer);
  if (it != links_by_peer_.end()) {
    if (it->second.ids.erase(id) > 0 && params_.incremental_link_digest) {
      XorInto(it->second.digest, id);  // XOR is self-inverse: this removes it
    }
    if (it->second.ids.empty()) {
      links_by_peer_.erase(it);
    }
  }
}

void FuseNode::AddLink(GroupState& g, HostId peer, uint32_t seq) {
  if (peer == transport_->local_host() || !peer.valid()) {
    return;
  }
  LinkEntry* link = FindLink(g, peer);
  if (link == nullptr) {
    g.links.emplace_back();
    link = &g.links.back();
    link->peer = peer;
    link->installed_at = transport_->env().Now();
  }
  link->seq = std::max(link->seq, seq);
  if (params_.coalesce_group_timers) {
    // No per-link timer: the peer sweep covers it. A participant that just
    // gained its first link no longer needs the empty-links backstop.
    AddLinkIndex(g.id, peer);
    if (g.is_root || g.is_member) {
      ArmBackstop(g);
    }
    return;
  }
  ArmLinkTimer(g.id, peer, *link);
  AddLinkIndex(g.id, peer);
}

void FuseNode::RemoveLink(GroupState& g, HostId peer) {
  for (auto it = g.links.begin(); it != g.links.end(); ++it) {
    if (it->peer == peer) {
      g.links.erase(it);  // the link timer auto-cancels
      EraseLinkIndex(g.id, peer);
      if (params_.coalesce_group_timers && g.links.empty() && (g.is_root || g.is_member)) {
        ArmBackstop(g);  // last link gone: fall back to the per-group backstop
      }
      return;
    }
  }
}

void FuseNode::ArmLinkTimer(FuseId id, HostId peer, LinkEntry& link) {
  // The callback is installed once per link; every ping-driven refresh
  // afterwards is an allocation-free rearm.
  if (!link.timer.has_callback()) {
    link.timer.Bind(transport_->env());
    link.timer.SetCallback([this, id, peer] { HandleLinkDown(id, peer); });
  }
  link.timer.Restart(params_.link_liveness_timeout);
}

void FuseNode::ArmBackstop(GroupState& g) {
  if (params_.coalesce_group_timers && !g.links.empty()) {
    // Healthy coalesced path: the per-peer sweep covers this group through
    // its links; the per-group timer stays disarmed.
    g.backstop.Cancel();
    return;
  }
  if (!g.backstop.has_callback()) {
    const FuseId id = g.id;
    g.backstop.Bind(transport_->env());
    g.backstop.SetCallback([this, id] {
      GroupState* grp = Find(id);
      if (grp == nullptr) {
        return;
      }
      ArmBackstop(*grp);  // keep the backstop alive while we attempt repair
      if (grp->is_member) {
        MemberInitiateRepair(*grp);
      } else if (grp->is_root) {
        RootScheduleRepair(id);
      }
    });
  }
  g.backstop.Restart(params_.link_liveness_timeout);
}

void FuseNode::ArmPeerSweep() {
  if (!params_.coalesce_group_timers || shutdown_ || links_by_peer_.empty()) {
    return;
  }
  if (peer_sweep_.pending()) {
    // Already armed at some earlier min-deadline. Stamps only move forward
    // and a new peer's deadline (now + timeout) can never undercut a armed
    // minimum, so the pending fire is always early enough; it rescans and
    // rearms. Spurious wakeups cost one O(neighbors) scan.
    return;
  }
  TimePoint earliest = TimePoint::Max();
  for (const auto& [peer, pl] : links_by_peer_) {
    earliest = std::min(earliest, pl.last_refresh);
  }
  const TimePoint now = transport_->env().Now();
  const TimePoint deadline = earliest + params_.link_liveness_timeout;
  const Duration delay = deadline > now ? deadline - now : Duration::Zero();
  peer_sweep_.Bind(transport_->env());
  // Start (not Restart): this also runs from inside the sweep's own fire,
  // where the stored callback is temporarily consumed.
  peer_sweep_.Start(delay, [this] { SweepStalePeers(); });
}

void FuseNode::SweepStalePeers() {
  const TimePoint now = transport_->env().Now();
  // Snapshot the stale (peer, id) pairs first: HandleLinkDown mutates both
  // the peer table and the group table. Swap-in the pooled scratch so a
  // reentrant activation owns its own buffer.
  std::vector<std::pair<HostId, FuseId>> stale = std::move(sweep_scratch_);
  stale.clear();
  for (const auto& [peer, pl] : links_by_peer_) {
    if (now - pl.last_refresh >= params_.link_liveness_timeout) {
      for (const FuseId& id : pl.ids) {
        stale.emplace_back(peer, id);
      }
    }
  }
  for (const auto& [peer, id] : stale) {
    HandleLinkDown(id, peer);
  }
  stale.clear();
  sweep_scratch_ = std::move(stale);
  ArmPeerSweep();
}

// Computes the 20-byte piggyback hash of the link's live FUSE-ID list, or
// returns false when nothing is monitored on that link. Classic mode hashes
// the whole ID list (O(groups-on-link), once per ping sent and received);
// incremental mode returns the digest maintained at add/remove time. Both
// encodings are 20 bytes, so the mode changes no message sizes — only which
// side pays the CPU.
bool FuseNode::LinkHashFor(HostId neighbor, Sha1Digest* out) {
  const auto it = links_by_peer_.find(neighbor);
  if (it == links_by_peer_.end() || it->second.ids.empty()) {
    return false;
  }
  if (params_.incremental_link_digest) {
    *out = it->second.digest;
    return true;
  }
  Sha1 h;
  for (const FuseId& id : it->second.ids) {
    h.UpdateU64(id.hi);
    h.UpdateU64(id.lo);
  }
  *out = h.Finish();
  return true;
}

void FuseNode::AppendPingPayload(HostId neighbor, Writer& w) {
  Sha1Digest d;
  if (LinkHashFor(neighbor, &d)) {
    w.PutBytes(d.data(), d.size());
  }
}

void FuseNode::OnPingPayload(HostId neighbor, const uint8_t* data, size_t len) {
  Sha1Digest local;
  const bool monitored = LinkHashFor(neighbor, &local);
  if (!monitored && len == 0) {
    return;  // both sides agree: nothing monitored on this link
  }
  if (monitored && len == local.size() && std::memcmp(data, local.data(), len) == 0) {
    ResetLinkTimers(neighbor);
    return;
  }
  MaybeReconcile(neighbor);
}

void FuseNode::ResetLinkTimers(HostId neighbor) {
  const auto it = links_by_peer_.find(neighbor);
  if (it == links_by_peer_.end()) {
    return;
  }
  if (params_.coalesce_group_timers) {
    // O(1) healthy path: one stamp covers every group on the link; the
    // armed sweep timer needs no adjustment (it rescans on fire).
    it->second.last_refresh = transport_->env().Now();
    return;
  }
  for (const FuseId& id : it->second.ids) {
    GroupState* g = Find(id);
    if (g == nullptr) {
      continue;
    }
    LinkEntry* link = FindLink(*g, neighbor);
    if (link != nullptr) {
      ArmLinkTimer(id, neighbor, *link);
    }
    if (g->is_root || g->is_member) {
      ArmBackstop(*g);
    }
  }
}

void FuseNode::OnOverlayNeighborFailed(HostId neighbor) {
  const auto it = links_by_peer_.find(neighbor);
  if (it == links_by_peer_.end()) {
    return;
  }
  // Snapshot into the pooled scratch (swap idiom: HandleLinkDown can cascade
  // into another neighbor failure, and each activation must own its
  // snapshot; the innermost one donates the capacity back on return).
  std::vector<FuseId> ids = std::move(fail_scratch_);
  ids.assign(it->second.ids.begin(), it->second.ids.end());
  for (const FuseId& id : ids) {
    HandleLinkDown(id, neighbor);
  }
  ids.clear();
  fail_scratch_ = std::move(ids);
}

void FuseNode::HandleLinkDown(FuseId id, HostId peer) {
  GroupState* g = Find(id);
  if (g == nullptr) {
    return;
  }
  uint32_t seq = g->seq;
  const LinkEntry* link = FindLink(*g, peer);
  if (link != nullptr) {
    seq = std::max(seq, link->seq);
  }
  RemoveLink(*g, peer);
  SendSoftToTree(*g, peer, seq);
  if (g->is_member) {
    if (params_.attempt_repair) {
      MemberInitiateRepair(*g);
    } else {
      // Ablation: no repair — convert the path failure directly into a group
      // failure.
      SendHard(id, g->root.host);
      DeliverLocalFailure(id);
    }
  } else if (g->is_root) {
    if (params_.attempt_repair) {
      RootScheduleRepair(id);
    } else {
      RootFailGroup(*g);
    }
  } else {
    // Pure delegate: cleaning up the checking state for this group entirely
    // (paper 6.3).
    DropGroup(id, /*deliver_to_app=*/false);
  }
}

void FuseNode::MaybeReconcile(HostId neighbor) {
  Environment& env = transport_->env();
  const TimePoint now = env.Now();
  const auto it = last_reconcile_.find(neighbor);
  if (it != last_reconcile_.end() && now - it->second < params_.reconcile_min_interval) {
    return;
  }
  last_reconcile_[neighbor] = now;
  stats_.reconciles++;
  WireMessage msg;
  msg.to = neighbor;
  msg.type = msgtype::kFuseReconcileRequest;
  msg.category = MsgCategory::kFuseReconcile;
  msg.payload = EncodeLinkList(neighbor);
  transport_->Send(std::move(msg), nullptr);
}

std::vector<uint8_t> FuseNode::EncodeLinkList(HostId neighbor) {
  Writer w;
  const auto it = links_by_peer_.find(neighbor);
  const TimePoint now = transport_->env().Now();
  if (it == links_by_peer_.end()) {
    w.PutU32(0);
    return w.Take();
  }
  w.PutU32(static_cast<uint32_t>(it->second.ids.size()));
  for (const FuseId& id : it->second.ids) {
    WriteFuseId(w, id);
    const GroupState* g = Find(id);
    uint32_t seq = 0;
    uint64_t age_us = 0;
    if (g != nullptr) {
      const LinkEntry* link = FindLink(*g, neighbor);
      if (link != nullptr) {
        seq = link->seq;
        age_us = static_cast<uint64_t>((now - link->installed_at).ToMicros());
      }
    }
    w.PutU32(seq);
    w.PutU64(age_us);
  }
  return w.Take();
}

void FuseNode::ProcessRemoteLinkList(HostId neighbor, Reader& r) {
  const uint32_t n = r.GetU32();
  std::set<FuseId> remote;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const FuseId id = ReadFuseId(r);
    r.GetU32();  // seq (informational)
    r.GetU64();  // age
    remote.insert(id);
  }
  if (!r.ok()) {
    return;
  }
  const auto it = links_by_peer_.find(neighbor);
  if (it == links_by_peer_.end()) {
    return;
  }
  const std::vector<FuseId> mine(it->second.ids.begin(), it->second.ids.end());
  const TimePoint now = transport_->env().Now();
  bool agreed = false;
  for (const FuseId& id : mine) {
    GroupState* g = Find(id);
    if (g == nullptr) {
      continue;
    }
    LinkEntry* link = FindLink(*g, neighbor);
    if (link == nullptr) {
      continue;
    }
    if (remote.contains(id)) {
      // Agreement: the tree lives on; reset the timers (paper 6.3).
      agreed = true;
      if (!params_.coalesce_group_timers) {
        ArmLinkTimer(id, neighbor, *link);
        if (g->is_root || g->is_member) {
          ArmBackstop(*g);
        }
      }
    } else if (now - link->installed_at > params_.grace_period) {
      // Disagreement beyond the grace period: the neighbor does not believe
      // this liveness tree exists; tear it down on our side.
      HandleLinkDown(id, neighbor);
    }
  }
  if (agreed && params_.coalesce_group_timers) {
    // One stamp bump covers every agreed group on the link. Re-find: the
    // HandleLinkDown calls above may have erased and recreated table entries.
    const auto it2 = links_by_peer_.find(neighbor);
    if (it2 != links_by_peer_.end()) {
      it2->second.last_refresh = now;
    }
  }
}

void FuseNode::OnReconcileRequest(const WireMessage& msg) {
  // Reply with our view first (so the requester always gets an answer), then
  // process theirs.
  WireMessage reply;
  reply.to = msg.from;
  reply.type = msgtype::kFuseReconcileReply;
  reply.category = MsgCategory::kFuseReconcile;
  reply.payload = EncodeLinkList(msg.from);
  transport_->Send(std::move(reply), nullptr);

  Reader r(msg.payload);
  ProcessRemoteLinkList(msg.from, r);
}

void FuseNode::OnReconcileReply(const WireMessage& msg) {
  Reader r(msg.payload);
  ProcessRemoteLinkList(msg.from, r);
}

// ---------------------------------------------------------------------------
// Notifications.
// ---------------------------------------------------------------------------

void FuseNode::SendSoftToTree(GroupState& g, HostId except, uint32_t seq) {
  const PayloadBuf payload = EncodeIdSeq(g.id, seq);
  for (const LinkEntry& link : g.links) {
    if (link.peer == except) {
      continue;
    }
    WireMessage msg;
    msg.to = link.peer;
    msg.type = msgtype::kFuseSoftNotification;
    msg.category = MsgCategory::kFuseSoftNotification;
    msg.payload = payload;
    transport_->Send(std::move(msg), nullptr);
    stats_.soft_notifications_sent++;
  }
}

void FuseNode::SendHard(FuseId id, HostId to) {
  if (!to.valid() || to == transport_->local_host()) {
    return;
  }
  WireMessage msg;
  msg.to = to;
  msg.type = msgtype::kFuseHardNotification;
  msg.category = MsgCategory::kFuseHardNotification;
  msg.payload = EncodeIdOnly(id);
  transport_->Send(std::move(msg), nullptr);
  stats_.hard_notifications_sent++;
}

void FuseNode::OnSoftNotification(const WireMessage& msg) {
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  const uint32_t seq = r.GetU32();
  if (!r.ok()) {
    return;
  }
  GroupState* g = Find(id);
  if (g == nullptr) {
    return;
  }
  if (seq < g->seq) {
    return;  // stale: a repair already superseded this tree (paper 6.4)
  }
  SendSoftToTree(*g, msg.from, seq);
  if (g->is_member) {
    RemoveLink(*g, msg.from);
    MemberInitiateRepair(*g);
  } else if (g->is_root) {
    RemoveLink(*g, msg.from);
    RootScheduleRepair(id);
  } else {
    DropGroup(id, /*deliver_to_app=*/false);
  }
}

void FuseNode::OnHardNotification(const WireMessage& msg) {
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  if (!r.ok()) {
    return;
  }
  GroupState* g = Find(id);
  if (g == nullptr) {
    return;  // already gone: exactly-once behavior
  }
  if (g->is_root) {
    // Forward to every other member, clean the liveness tree, notify the
    // local application (paper 6.4, Figure 4).
    for (const auto& m : g->members) {
      if (m.host != msg.from) {
        SendHard(id, m.host);
      }
    }
    SendSoftToTree(*g, HostId(), g->seq);
    DeliverLocalFailure(id);
    return;
  }
  if (g->is_member) {
    DeliverLocalFailure(id);
    return;
  }
  DropGroup(id, /*deliver_to_app=*/false);
}

void FuseNode::RootFailGroup(GroupState& g) {
  const FuseId id = g.id;
  for (const auto& m : g.members) {
    SendHard(id, m.host);
  }
  SendSoftToTree(g, HostId(), g.seq);
  DeliverLocalFailure(id);
}

void FuseNode::DeliverLocalFailure(FuseId id) { DropGroup(id, /*deliver_to_app=*/true); }

void FuseNode::DropGroup(FuseId id, bool deliver_to_app) {
  const GroupRef* rp = group_index_.Find(id.hi, id.lo);
  if (rp == nullptr) {
    return;
  }
  const GroupRef ref = *rp;
  GroupState& g = *group_pool_.Get(ref);
  // Releasing the pool slot below disarms every timer the group owns (links,
  // backstop, repair machinery); only the peer index needs explicit
  // maintenance.
  for (const LinkEntry& link : g.links) {
    EraseLinkIndex(id, link.peer);
  }
  const bool was_participant = g.is_root || g.is_member;
  FailureHandler handler = std::move(g.handler);
  group_index_.Erase(id.hi, id.lo);
  group_pool_.Release(ref);
  if (was_participant) {
    stats_.groups_failed++;
  }
  if (deliver_to_app && handler) {
    stats_.notifications_delivered++;
    handler(id);
  }
}

// ---------------------------------------------------------------------------
// Repair.
// ---------------------------------------------------------------------------

void FuseNode::MemberInitiateRepair(GroupState& g) {
  if (g.aux != nullptr && g.aux->member_repair_timer.pending()) {
    return;  // already waiting for the root
  }
  const FuseId id = g.id;
  WireMessage msg;
  msg.to = g.root.host;
  msg.type = msgtype::kFuseNeedRepair;
  msg.category = MsgCategory::kFuseNeedRepair;
  msg.payload = EncodeIdSeq(id, g.seq);
  const HostId root_host = g.root.host;
  // Arm the timer before issuing the send: when the root's connection is
  // already gone, Send invokes the error callback synchronously, which fails
  // the group and frees this GroupState — touching `g` after Send would be a
  // use-after-free. DropGroup disarms the timer along with the rest of the
  // group's state, so arming first is safe in either order.
  RepairAux& aux = Aux(g);
  aux.member_repair_timer.Bind(transport_->env());
  aux.member_repair_timer.Start(params_.member_repair_timeout, [this, id] {
    // No repair response from the root within a minute (paper 6.5 / 7.4):
    // signal locally, best-effort Hard to the root, clean up.
    GroupState* grp = Find(id);
    if (grp == nullptr) {
      return;
    }
    SendHard(id, grp->root.host);
    SendSoftToTree(*grp, HostId(), grp->seq);
    DeliverLocalFailure(id);
  });
  transport_->Send(std::move(msg), [this, id, root_host](const Status& s) {
    if (s.ok()) {
      return;
    }
    // Root unreachable (broken connection): treat as group failure (6.1).
    GroupState* grp = Find(id);
    if (grp != nullptr && grp->is_member) {
      SendHard(id, root_host);
      SendSoftToTree(*grp, HostId(), grp->seq);
      DeliverLocalFailure(id);
    }
  });
}

void FuseNode::OnNeedRepair(const WireMessage& msg) {
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  r.GetU32();  // member's seq (informational)
  if (!r.ok()) {
    return;
  }
  GroupState* g = Find(id);
  if (g == nullptr || !g->is_root) {
    // The group no longer exists here: make sure the member finds out.
    SendHard(id, msg.from);
    return;
  }
  RootScheduleRepair(id);
}

void FuseNode::RootScheduleRepair(FuseId id) {
  GroupState* g = Find(id);
  if (g == nullptr || !g->is_root) {
    return;
  }
  RepairAux& aux = Aux(*g);
  if (aux.repair != nullptr) {
    // A round is already in flight. It cannot simply absorb this request:
    // the member asking for repair may have lost its freshly-installed path
    // in a race with the round's own installs, in which case the round
    // completes with that member holding no liveness links at all — and its
    // crash would go undetected. Remember to run another round when the
    // current one (and its installs) finish.
    aux.rerepair_requested = true;
    return;
  }
  if (aux.scheduled_repair.pending()) {
    return;  // a repair is queued; it will rebuild from the state at start
  }
  Environment& env = transport_->env();
  const TimePoint now = env.Now();
  // Exponential backoff per group, capped at 40 s; decays after quiet periods
  // (paper 6.5).
  if (aux.last_repair_time != TimePoint() &&
      now - aux.last_repair_time > params_.repair_backoff_reset) {
    aux.repair_backoff = Duration::Zero();
  }
  const Duration delay = aux.repair_backoff;
  aux.repair_backoff = aux.repair_backoff.IsZero()
                           ? params_.repair_backoff_initial
                           : std::min(aux.repair_backoff * int64_t{2}, params_.repair_backoff_cap);
  aux.scheduled_repair.Bind(env);
  aux.scheduled_repair.Start(delay, [this, id] { RootStartRepair(id); });
}

void FuseNode::RootStartRepair(FuseId id) {
  GroupState* g = Find(id);
  if (g == nullptr || !g->is_root || (g->aux != nullptr && g->aux->repair != nullptr)) {
    return;
  }
  Environment& env = transport_->env();
  stats_.repairs_initiated++;
  RepairAux& aux = Aux(*g);
  // Complaints that predate this round are satisfied by it; only a
  // NeedRepair racing with the round's installs re-arms the flag.
  aux.rerepair_requested = false;
  g->seq++;
  aux.last_repair_time = env.Now();
  aux.repair = std::make_unique<RepairPending>();
  aux.install_pending.clear();
  for (const auto& m : g->members) {
    aux.repair->awaiting_reply.insert(m.name);
    aux.install_pending.insert(m.name);
  }
  aux.install_timer.Cancel();
  aux.repair->timer.Bind(env);
  aux.repair->timer.Start(params_.root_repair_timeout, [this, id] { RootRepairFailed(id); });

  const PayloadBuf repair_payload = EncodeIdSeq(id, g->seq);
  // Snapshot the member hosts: a send to an already-disconnected member
  // fails synchronously, and the failure callback fails the whole group and
  // frees this GroupState — iterating g->members directly would walk freed
  // memory once that happens.
  std::vector<HostId> member_hosts;
  member_hosts.reserve(g->members.size());
  for (const auto& m : g->members) {
    member_hosts.push_back(m.host);
  }
  for (HostId host : member_hosts) {
    WireMessage msg;
    msg.to = host;
    msg.type = msgtype::kFuseGroupRepairRequest;
    msg.category = MsgCategory::kFuseRepair;
    msg.payload = repair_payload;
    transport_->Send(std::move(msg), [this, id](const Status& s) {
      if (!s.ok()) {
        // A member is unreachable: the repair has failed (paper 6.5).
        RootRepairFailed(id);
      }
    });
    if (Find(id) == nullptr) {
      return;  // the group already failed via a synchronous send error
    }
  }
}

void FuseNode::OnRepairRequest(const WireMessage& msg) {
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  const uint32_t new_seq = r.GetU32();
  if (!r.ok()) {
    return;
  }
  GroupState* g = Find(id);
  Writer w;
  WriteFuseId(w, id);
  WriteNodeRef(w, self());
  if (g == nullptr || g->is_root) {
    // "If a repair message ever encounters a member that no longer has
    // knowledge of the group, it fails and signals a HardNotification."
    w.PutU8(0);
    WireMessage reply;
    reply.to = msg.from;
    reply.type = msgtype::kFuseGroupRepairReply;
    reply.category = MsgCategory::kFuseRepair;
    reply.payload = w.Take();
    transport_->Send(std::move(reply), nullptr);
    return;
  }
  // Adopt the new tree incarnation: stale SoftNotifications for the old tree
  // are discarded from here on (paper 6.5).
  g->seq = std::max(g->seq, new_seq);
  if (g->aux != nullptr) {
    g->aux->member_repair_timer.Cancel();
    MaybeTrimAux(*g);
  }
  // The old tree links are obsolete; the new InstallChecking re-creates them.
  const std::vector<HostId> old_links = [&] {
    std::vector<HostId> v;
    v.reserve(g->links.size());
    for (const LinkEntry& link : g->links) {
      v.push_back(link.peer);
    }
    return v;
  }();
  for (HostId peer : old_links) {
    RemoveLink(*g, peer);
  }
  ArmBackstop(*g);

  w.PutU8(1);
  WireMessage reply;
  reply.to = msg.from;
  reply.type = msgtype::kFuseGroupRepairReply;
  reply.category = MsgCategory::kFuseRepair;
  reply.payload = w.Take();
  transport_->Send(std::move(reply), nullptr);

  SendInstallChecking(*g);
}

void FuseNode::OnRepairReply(const WireMessage& msg) {
  Reader r(msg.payload);
  const FuseId id = ReadFuseId(r);
  const NodeRef member = ReadNodeRef(r);
  const uint8_t ok = r.GetU8();
  if (!r.ok()) {
    return;
  }
  GroupState* g = Find(id);
  if (g == nullptr || !g->is_root || g->aux == nullptr || g->aux->repair == nullptr) {
    return;
  }
  if (!ok) {
    RootRepairFailed(id);
    return;
  }
  RepairAux& aux = *g->aux;
  aux.repair->awaiting_reply.erase(member.name);
  if (!aux.repair->awaiting_reply.empty()) {
    return;
  }
  // Every member answered: the repair round succeeded. Now wait for the new
  // liveness paths to install.
  aux.repair.reset();  // the repair timer auto-cancels
  if (!aux.install_pending.empty()) {
    aux.install_timer.Bind(transport_->env());
    aux.install_timer.Start(params_.install_timeout, [this, id] { RootScheduleRepair(id); });
  } else if (aux.rerepair_requested) {
    // A member complained mid-round; its path may already be broken again.
    RootScheduleRepair(id);
  }
}

void FuseNode::RootRepairFailed(FuseId id) {
  GroupState* g = Find(id);
  if (g == nullptr || !g->is_root) {
    return;
  }
  RootFailGroup(*g);
}

}  // namespace fuse
