// FUSE protocol constants. Section 3.3: there is deliberately NO API for
// applications to tune the timeout/retry policy — these values are fixed by
// the implementation, and applications layer their own timeouts on top.
#ifndef FUSE_FUSE_PARAMS_H_
#define FUSE_FUSE_PARAMS_H_

#include "common/time.h"

namespace fuse {

struct FuseParams {
  // Root: how long CreateGroup waits for every GroupCreateReply before the
  // creation attempt fails (not stated in the paper; chosen well above the
  // worst observed RTT).
  Duration create_timeout = Duration::Seconds(30);

  // Root: how long to wait for InstallChecking from every member before
  // attempting a repair (paper section 6.2: install timer => repair).
  Duration install_timeout = Duration::Seconds(45);

  // Member: after initiating repair (NeedRepair), how long to wait to hear
  // from the root before locally signalling failure (section 7.4: "If a root
  // has failed, the members time out after 1 minute").
  Duration member_repair_timeout = Duration::Seconds(60);

  // Root: how long to wait for all GroupRepairReplies (section 7.4: "If a
  // member has failed, the root times out after 2 minutes").
  Duration root_repair_timeout = Duration::Seconds(120);

  // Per-(group, link) liveness backstop: if no ping confirmation arrives on a
  // monitored link for this long, the link is declared down. Slightly more
  // than ping period (60 s) + ping timeout (20 s).
  Duration link_liveness_timeout = Duration::Seconds(90);

  // Grace period before a liveness-tree disagreement is acted on (section
  // 6.3: resolves the InstallChecking/ping race; 5 s in the paper).
  Duration grace_period = Duration::Seconds(5);

  // Per-group exponential backoff for repair frequency, capped at 40 s
  // (section 6.5).
  Duration repair_backoff_initial = Duration::Seconds(5);
  Duration repair_backoff_cap = Duration::Seconds(40);
  // After this long without a repair, the backoff resets.
  Duration repair_backoff_reset = Duration::Seconds(120);

  // Rate limit for reconcile exchanges per link.
  Duration reconcile_min_interval = Duration::Seconds(5);

  // Ablation switch (paper section 6): when false, a path failure involving a
  // delegate is signalled to the application immediately instead of being
  // repaired ("has the advantage of implementation simplicity, but can be a
  // significant source of false positives").
  bool attempt_repair = true;

  // Group fast path, part 1 (off by default so classic golden traces stay
  // byte-identical): maintain an order-independent 160-bit digest per
  // (link, peer) — the XOR of SHA-1(FuseId) over the link's live IDs,
  // updated O(1) on link add/remove — instead of re-running SHA-1 over the
  // whole ID list on every ping sent and received. Both encodings are 20
  // bytes on the wire, so enabling this changes no message sizes (and hence
  // no simulated schedules), only the per-ping CPU cost.
  bool incremental_link_digest = false;

  // Group fast path, part 2 (off by default): replace the per-(group, link)
  // liveness timers and per-group backstops on the healthy path with one
  // last-heard stamp per neighbor and a single earliest-deadline sweep timer
  // per node, the same coalescing move SkipNetConfig::coalesce_pings applies
  // to ping timers. Armed timers become O(neighbors) instead of O(groups);
  // detection of a stale link may lag the classic per-link timer by up to
  // one sweep rescan, which is within the protocol's timeout slack.
  bool coalesce_group_timers = false;
};

}  // namespace fuse

#endif  // FUSE_FUSE_PARAMS_H_
