// Alternative FUSE liveness-checking topologies (paper section 5.1).
//
// All three provide the same distributed one-way agreement semantics as the
// overlay implementation, with different security/scalability trade-offs:
//  * kDirectTree    — per-group spanning tree without an overlay (a star
//                     rooted at the creator): no delegates to attack, but
//                     liveness traffic is additive in the number of groups;
//  * kAllToAll      — per-group all-to-all pinging: n^2 messages per group,
//                     but no member depends on another to forward
//                     notifications, and worst-case notification latency
//                     drops to twice the ping interval;
//  * kCentralServer — every node pings one trusted server per interval
//                     (suitable inside a data center); the server converts a
//                     missed ping into notifications for every group the
//                     silent node belongs to.
#ifndef FUSE_FUSE_ALT_TOPOLOGIES_H_
#define FUSE_FUSE_ALT_TOPOLOGIES_H_

#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "fuse/fuse_id.h"
#include "transport/transport.h"

namespace fuse {

enum class LivenessTopology {
  kDirectTree,
  kAllToAll,
  kCentralServer,
};

struct AltFuseConfig {
  LivenessTopology topology = LivenessTopology::kAllToAll;
  Duration ping_period = Duration::Seconds(60);
  Duration ping_timeout = Duration::Seconds(20);
  Duration create_timeout = Duration::Seconds(30);
  // For kCentralServer: the host running the monitoring server.
  HostId central_server;
};

// One node of an alternative-topology FUSE implementation. On the central
// server host (kCentralServer), the same class acts as the monitor.
class AltFuseNode {
 public:
  using FailureHandler = std::function<void(FuseId)>;
  using CreateCallback = std::function<void(const Status&, FuseId)>;

  AltFuseNode(Transport* transport, AltFuseConfig config);
  ~AltFuseNode();

  AltFuseNode(const AltFuseNode&) = delete;
  AltFuseNode& operator=(const AltFuseNode&) = delete;

  void CreateGroup(std::vector<HostId> members, CreateCallback cb);
  void RegisterFailureHandler(FuseId id, FailureHandler handler);
  void SignalFailure(FuseId id);

  bool HasLiveGroup(FuseId id) const { return groups_.contains(id); }
  size_t NumLiveGroups() const { return groups_.size(); }
  uint64_t notifications_delivered() const { return notifications_delivered_; }

  void Shutdown();

 private:
  struct PeerPing {
    TimerId next_ping;
    TimerId timeout;
    uint64_t awaiting = 0;
  };

  struct GroupState {
    FuseId id;
    std::vector<HostId> members;  // full list including the creator
    // (group, peer) ping schedules (kDirectTree / kAllToAll).
    std::unordered_map<HostId, PeerPing> pings;
    FailureHandler handler;
  };

  struct CreatePending {
    std::vector<HostId> members;
    std::set<HostId> awaiting;
    CreateCallback cb;
    TimerId timer;
  };

  // Which peers this node pings for a group, given the topology.
  std::vector<HostId> PingTargets(const GroupState& g) const;

  void OnCreate(const WireMessage& msg);
  void OnCreateReply(const WireMessage& msg);
  void OnPing(const WireMessage& msg);
  void OnPingReply(const WireMessage& msg);
  void OnNotify(const WireMessage& msg);

  void StartPings(GroupState& g);
  void SendPing(FuseId id, HostId peer);
  void PingFailed(FuseId id, HostId peer);
  void FailGroup(FuseId id);  // notify all members + local app + teardown
  void DropGroup(FuseId id, bool deliver);

  // Central-server role.
  void ServerNoteAlive(HostId who);
  void ServerHostDown(HostId who);

  Transport* transport_;
  AltFuseConfig config_;
  bool shutdown_ = false;
  bool is_server_ = false;

  std::unordered_map<FuseId, GroupState> groups_;
  std::unordered_map<FuseId, CreatePending> creating_;
  uint64_t next_seq_ = 1;
  uint64_t notifications_delivered_ = 0;

  // Server-side state (kCentralServer): per-host watchdog + host -> groups.
  std::unordered_map<HostId, TimerId> server_watchdogs_;
  std::unordered_map<HostId, std::unordered_set<FuseId>> server_groups_of_;
  // Member-side: one ping schedule to the server shared by all groups.
  PeerPing server_ping_;
  bool server_ping_running_ = false;
};

}  // namespace fuse

#endif  // FUSE_FUSE_ALT_TOPOLOGIES_H_
