#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fuse {

void Summary::Add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

void Summary::Clear() {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Summary::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  return Sum() / static_cast<double>(values_.size());
}

double Summary::Sum() const {
  double s = 0.0;
  for (double v : values_) {
    s += v;
  }
  return s;
}

double Summary::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Summary::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Summary::StdDev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  const double m = Mean();
  double acc = 0.0;
  for (double v : values_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::Percentile(double p) const {
  EnsureSorted();
  if (sorted_.empty()) {
    return 0.0;
  }
  if (p <= 0.0) {
    return sorted_.front();
  }
  if (p >= 100.0) {
    return sorted_.back();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) {
    return sorted_.back();
  }
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::vector<std::pair<double, double>> Summary::Cdf(size_t points) const {
  EnsureSorted();
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) {
    return out;
  }
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    const size_t idx =
        std::min(sorted_.size() - 1,
                 static_cast<size_t>(frac * static_cast<double>(sorted_.size())) -
                     (i == points ? 1 : 0));
    out.emplace_back(sorted_[std::min(idx, sorted_.size() - 1)], frac);
  }
  return out;
}

double Summary::FractionAtMost(double threshold) const {
  EnsureSorted();
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::string Summary::OneLine() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.2f p25=%.2f p50=%.2f p75=%.2f p95=%.2f max=%.2f mean=%.2f", Count(),
                Min(), Percentile(25), Percentile(50), Percentile(75), Percentile(95), Max(),
                Mean());
  return buf;
}

std::string RenderCdf(const Summary& s, size_t points, const std::string& value_label,
                      double value_scale) {
  std::string out = "  " + value_label + "  cum_fraction\n";
  char buf[96];
  for (const auto& [value, frac] : s.Cdf(points)) {
    std::snprintf(buf, sizeof(buf), "  %12.3f  %6.3f\n", value * value_scale, frac);
    out += buf;
  }
  return out;
}

}  // namespace fuse
