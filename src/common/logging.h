// Lightweight leveled logging. Quiet by default (warnings and errors only) so
// benchmark output stays clean; tests and examples can raise verbosity.
#ifndef FUSE_COMMON_LOGGING_H_
#define FUSE_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace fuse {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global threshold; messages below it are discarded.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// A no-op sink so disabled log statements do not evaluate their stream args.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace fuse

#define FUSE_LOG_ENABLED(level) (level >= ::fuse::GetLogThreshold())

#define FUSE_LOG(severity)                                                      \
  if (!FUSE_LOG_ENABLED(::fuse::LogLevel::k##severity)) {                       \
  } else                                                                        \
    ::fuse::internal::LogMessage(::fuse::LogLevel::k##severity, __FILE__, __LINE__).stream()

// Assertion macro used for internal invariants (active in all build modes).
#define FUSE_CHECK(cond)                                                        \
  if (cond) {                                                                   \
  } else                                                                        \
    ::fuse::internal::LogMessage(::fuse::LogLevel::kFatal, __FILE__, __LINE__).stream() \
        << "Check failed: " #cond " "

#endif  // FUSE_COMMON_LOGGING_H_
