// FlatMap<V>: an open-addressed hash table keyed by uint64_t.
//
// Replaces std::unordered_map on simulator hot paths (the per-pair connection
// table, the ping manager's peer table). Keys and slot states live in arrays
// separate from the values, so a probe touches 9 bytes per slot instead of
// sizeof(V): at 10k-node scale the connection table holds ~10^5 entries of
// ~150 bytes each, and keeping the probe stream dense is what makes lookups
// cache-resident. Erase leaves a tombstone; tombstones are compacted on
// growth.
//
// Contracts that differ from unordered_map:
//   * value references are invalidated by FindOrInsert (rehash moves slots) —
//     re-find after any insertion, and never hold a reference across a call
//     that may insert;
//   * iteration order is the probe order (deterministic for a deterministic
//     key/insertion history, but not sorted — callers needing a canonical
//     order must sort the keys they collect).
#ifndef FUSE_COMMON_FLAT_MAP_H_
#define FUSE_COMMON_FLAT_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace fuse {

template <typename V>
class FlatMap {
 public:
  V* Find(uint64_t key) {
    if (states_.empty()) {
      return nullptr;
    }
    const size_t mask = states_.size() - 1;
    for (size_t i = Mix(key) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) {
        return nullptr;
      }
      if (states_[i] == kFull && keys_[i] == key) {
        return &values_[i];
      }
    }
  }

  const V* Find(uint64_t key) const { return const_cast<FlatMap*>(this)->Find(key); }

  // Returns the value for `key`, default-constructing it if absent. May
  // rehash: invalidates outstanding value references.
  V& FindOrInsert(uint64_t key) {
    if (states_.empty() || (size_ + tombstones_ + 1) * 4 > states_.size() * 3) {
      Grow();
    }
    const size_t mask = states_.size() - 1;
    size_t insert_at = SIZE_MAX;
    for (size_t i = Mix(key) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kFull && keys_[i] == key) {
        return values_[i];
      }
      if (states_[i] == kTombstone && insert_at == SIZE_MAX) {
        insert_at = i;
      }
      if (states_[i] == kEmpty) {
        if (insert_at == SIZE_MAX) {
          insert_at = i;
        } else {
          --tombstones_;  // reusing a tombstone slot
        }
        states_[insert_at] = kFull;
        keys_[insert_at] = key;
        ++size_;
        return values_[insert_at];
      }
    }
  }

  // Erases `key` if present, resetting the value so held resources drop now.
  bool Erase(uint64_t key) {
    if (size_ == 0) {
      return false;
    }
    const size_t mask = states_.size() - 1;
    for (size_t i = Mix(key) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) {
        return false;
      }
      if (states_[i] == kFull && keys_[i] == key) {
        states_[i] = kTombstone;
        values_[i] = V{};
        --size_;
        ++tombstones_;
        return true;
      }
    }
  }

  // Calls fn(key, value) for every entry, in probe order. The callback must
  // not insert or erase.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) {
        fn(keys_[i], values_[i]);
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) {
        fn(keys_[i], values_[i]);
      }
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  enum State : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  // splitmix64 finalizer: strong avalanche for sequential/packed keys.
  static size_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  void Grow() {
    // Double when genuinely full; same size when growth was forced by
    // tombstone buildup (compaction only).
    const size_t new_cap =
        states_.empty() ? 16 : ((size_ + 1) * 4 > states_.size() * 3 ? states_.size() * 2
                                                                     : states_.size());
    std::vector<uint8_t> old_states = std::move(states_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    states_.assign(new_cap, kEmpty);
    keys_.assign(new_cap, 0);
    values_ = std::vector<V>(new_cap);  // default-construct: V may be move-only
    tombstones_ = 0;
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) {
        continue;
      }
      size_t j = Mix(old_keys[i]) & mask;
      while (states_[j] == kFull) {
        j = (j + 1) & mask;
      }
      states_[j] = kFull;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }

  std::vector<uint8_t> states_;
  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

// Flat128Map<V>: the same open-addressed table keyed by a 128-bit (hi, lo)
// pair — the shape of a FuseId. Folding 128-bit group IDs down to 64 bits
// and keying a FlatMap on the fold would make a hash collision between two
// live groups silently alias their state, so the group tables store and
// compare the full key instead. Same contracts as FlatMap: FindOrInsert
// invalidates value references, iteration is probe order.
template <typename V>
class Flat128Map {
 public:
  V* Find(uint64_t hi, uint64_t lo) {
    if (states_.empty()) {
      return nullptr;
    }
    const size_t mask = states_.size() - 1;
    for (size_t i = Mix(hi, lo) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) {
        return nullptr;
      }
      if (states_[i] == kFull && keys_[i].first == hi && keys_[i].second == lo) {
        return &values_[i];
      }
    }
  }

  const V* Find(uint64_t hi, uint64_t lo) const {
    return const_cast<Flat128Map*>(this)->Find(hi, lo);
  }

  // Returns the value for the key, default-constructing it if absent. May
  // rehash: invalidates outstanding value references.
  V& FindOrInsert(uint64_t hi, uint64_t lo) {
    if (states_.empty() || (size_ + tombstones_ + 1) * 4 > states_.size() * 3) {
      Grow();
    }
    const size_t mask = states_.size() - 1;
    size_t insert_at = SIZE_MAX;
    for (size_t i = Mix(hi, lo) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kFull && keys_[i].first == hi && keys_[i].second == lo) {
        return values_[i];
      }
      if (states_[i] == kTombstone && insert_at == SIZE_MAX) {
        insert_at = i;
      }
      if (states_[i] == kEmpty) {
        if (insert_at == SIZE_MAX) {
          insert_at = i;
        } else {
          --tombstones_;  // reusing a tombstone slot
        }
        states_[insert_at] = kFull;
        keys_[insert_at] = {hi, lo};
        ++size_;
        return values_[insert_at];
      }
    }
  }

  // Erases the key if present, resetting the value so held resources drop now.
  bool Erase(uint64_t hi, uint64_t lo) {
    if (size_ == 0) {
      return false;
    }
    const size_t mask = states_.size() - 1;
    for (size_t i = Mix(hi, lo) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) {
        return false;
      }
      if (states_[i] == kFull && keys_[i].first == hi && keys_[i].second == lo) {
        states_[i] = kTombstone;
        values_[i] = V{};
        --size_;
        ++tombstones_;
        return true;
      }
    }
  }

  // Calls fn(hi, lo, value) for every entry, in probe order. The callback
  // must not insert or erase.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) {
        fn(keys_[i].first, keys_[i].second, values_[i]);
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) {
        fn(keys_[i].first, keys_[i].second, values_[i]);
      }
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  enum State : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  static size_t Mix(uint64_t hi, uint64_t lo) {
    uint64_t x = hi ^ (lo * 0x9e3779b97f4a7c15ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  void Grow() {
    const size_t new_cap =
        states_.empty() ? 16 : ((size_ + 1) * 4 > states_.size() * 3 ? states_.size() * 2
                                                                     : states_.size());
    std::vector<uint8_t> old_states = std::move(states_);
    std::vector<std::pair<uint64_t, uint64_t>> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    states_.assign(new_cap, kEmpty);
    keys_.assign(new_cap, {0, 0});
    values_ = std::vector<V>(new_cap);  // default-construct: V may be move-only
    tombstones_ = 0;
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) {
        continue;
      }
      size_t j = Mix(old_keys[i].first, old_keys[i].second) & mask;
      while (states_[j] == kFull) {
        j = (j + 1) & mask;
      }
      states_[j] = kFull;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }

  std::vector<uint8_t> states_;
  std::vector<std::pair<uint64_t, uint64_t>> keys_;
  std::vector<V> values_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace fuse

#endif  // FUSE_COMMON_FLAT_MAP_H_
