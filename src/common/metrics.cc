#include "common/metrics.h"

#include <cstdio>

namespace fuse {

const char* MsgCategoryName(MsgCategory c) {
  switch (c) {
    case MsgCategory::kOverlayPing:
      return "overlay_ping";
    case MsgCategory::kOverlayPingReply:
      return "overlay_ping_reply";
    case MsgCategory::kOverlayJoin:
      return "overlay_join";
    case MsgCategory::kOverlayRouted:
      return "overlay_routed";
    case MsgCategory::kFuseCreate:
      return "fuse_create";
    case MsgCategory::kFuseInstallChecking:
      return "fuse_install_checking";
    case MsgCategory::kFuseSoftNotification:
      return "fuse_soft_notification";
    case MsgCategory::kFuseHardNotification:
      return "fuse_hard_notification";
    case MsgCategory::kFuseNeedRepair:
      return "fuse_need_repair";
    case MsgCategory::kFuseRepair:
      return "fuse_repair";
    case MsgCategory::kFuseReconcile:
      return "fuse_reconcile";
    case MsgCategory::kRpc:
      return "rpc";
    case MsgCategory::kApp:
      return "app";
    case MsgCategory::kTransportControl:
      return "transport_control";
    case MsgCategory::kCount:
      break;
  }
  return "unknown";
}

const char* GaugeName(Gauge g) {
  switch (g) {
    case Gauge::kBytesPerGroup:
      return "bytes_per_group";
    case Gauge::kArmedTimersPerGroup:
      return "armed_timers_per_group";
    case Gauge::kSyscallsPerMsg:
      return "syscalls_per_msg";
    case Gauge::kBatchOccupancy:
      return "batch_occupancy";
    case Gauge::kCount:
      break;
  }
  return "unknown";
}

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kTransportSendSyscalls:
      return "transport_send_syscalls";
    case Counter::kTransportRecvSyscalls:
      return "transport_recv_syscalls";
    case Counter::kTransportDatagramsSent:
      return "transport_datagrams_sent";
    case Counter::kTransportRecordsSent:
      return "transport_records_sent";
    case Counter::kRetransmitsTotal:
      return "retransmits_total";
    case Counter::kAcksDedupedTotal:
      return "acks_deduped_total";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

uint64_t Metrics::TotalMessages() const {
  uint64_t total = 0;
  for (const auto& e : counters_) {
    total += e.messages;
  }
  return total;
}

uint64_t Metrics::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& e : counters_) {
    total += e.bytes;
  }
  return total;
}

void Metrics::Reset() {
  counters_.fill(Entry{});
  gauges_.fill(0.0);
  event_counters_.fill(0);
}

std::string Metrics::Report() const {
  std::string out;
  char buf[128];
  for (size_t i = 0; i < counters_.size(); ++i) {
    const auto& e = counters_[i];
    if (e.messages == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "  %-24s %12llu msgs %14llu bytes\n",
                  MsgCategoryName(static_cast<MsgCategory>(i)),
                  static_cast<unsigned long long>(e.messages),
                  static_cast<unsigned long long>(e.bytes));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-24s %12llu msgs %14llu bytes\n", "TOTAL",
                static_cast<unsigned long long>(TotalMessages()),
                static_cast<unsigned long long>(TotalBytes()));
  out += buf;
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i] == 0.0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "  %-24s %14.2f\n", GaugeName(static_cast<Gauge>(i)),
                  gauges_[i]);
    out += buf;
  }
  for (size_t i = 0; i < event_counters_.size(); ++i) {
    if (event_counters_[i] == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "  %-24s %14llu\n", CounterName(static_cast<Counter>(i)),
                  static_cast<unsigned long long>(event_counters_[i]));
    out += buf;
  }
  return out;
}

double Metrics::MessagesPerSecond(const Window& w, TimePoint now) const {
  const double elapsed = (now - w.start_time).ToSecondsF();
  if (elapsed <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(TotalMessages() - w.start_messages) / elapsed;
}

}  // namespace fuse
