// UniqueFunction: a move-only callable wrapper with a guaranteed small-buffer
// optimization.
//
// std::function only stores a callable inline when it is trivially copyable
// (libstdc++'s __is_location_invariant, and libc++ behaves the same), so the
// event core's hot-path closures — which capture a shared_ptr to timer state —
// always go to the heap. This wrapper stores any nothrow-move-constructible
// callable up to kInlineSize bytes inline, falling back to the heap only for
// large captures. Timer rearming and event-queue entry reuse are built on
// this guarantee: see sim/timer.h and sim/event_queue.h.
#ifndef FUSE_COMMON_FUNCTION_H_
#define FUSE_COMMON_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fuse {

class UniqueFunction {
 public:
  // Fits the simulator's steady-state closures (a shared_ptr or a `this`
  // pointer plus a couple of 8-16 byte ids) without heap traffic.
  static constexpr size_t kInlineSize = 48;

  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callables must be nothrow move constructible");
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { MoveFrom(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  UniqueFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const UniqueFunction& f, std::nullptr_t) { return f.ops_ == nullptr; }
  friend bool operator!=(const UniqueFunction& f, std::nullptr_t) { return f.ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(unsigned char* buf);
    // Moves the stored callable from src into dst's (raw) buffer.
    void (*relocate)(unsigned char* dst, unsigned char* src);
    void (*destroy)(unsigned char* buf);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](unsigned char* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](unsigned char* dst, unsigned char* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*s));
        s->~Fn();
      },
      [](unsigned char* buf) { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](unsigned char* buf) { (**reinterpret_cast<Fn**>(buf))(); },
      [](unsigned char* dst, unsigned char* src) {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](unsigned char* buf) { delete *reinterpret_cast<Fn**>(buf); },
  };

  void MoveFrom(UniqueFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace fuse

#endif  // FUSE_COMMON_FUNCTION_H_
