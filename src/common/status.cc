#include "common/status.h"

namespace fuse {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kUnreachable:
      return "UNREACHABLE";
    case StatusCode::kBroken:
      return "BROKEN";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailed:
      return "FAILED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace fuse
