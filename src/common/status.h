// Minimal Status / Result types. The library does not use exceptions;
// operations that can fail return Status (or deliver one via callback).
#ifndef FUSE_COMMON_STATUS_H_
#define FUSE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace fuse {

enum class StatusCode {
  kOk = 0,
  kTimeout,          // operation did not finish within its deadline
  kUnreachable,      // destination cannot be contacted (fault rules / crash)
  kBroken,           // transport connection broke mid-operation
  kCancelled,        // caller or shutdown cancelled the operation
  kNotFound,         // referenced entity does not exist (e.g. dead FUSE id)
  kAlreadyExists,    // duplicate creation
  kInvalidArgument,  // caller error
  kFailed,           // generic failure
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Timeout(std::string m = "") { return Status(StatusCode::kTimeout, std::move(m)); }
  static Status Unreachable(std::string m = "") {
    return Status(StatusCode::kUnreachable, std::move(m));
  }
  static Status Broken(std::string m = "") { return Status(StatusCode::kBroken, std::move(m)); }
  static Status Cancelled(std::string m = "") {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status NotFound(std::string m = "") { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Failed(std::string m = "") { return Status(StatusCode::kFailed, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }
  friend bool operator!=(const Status& a, const Status& b) { return a.code_ != b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace fuse

#endif  // FUSE_COMMON_STATUS_H_
