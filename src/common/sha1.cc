#include "common/sha1.h"

#include <cstring>

namespace fuse {
namespace {

uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

}  // namespace

Sha1::Sha1() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f;
    uint32_t k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_bytes_ += len;
  if (buffer_len_ > 0) {
    const size_t need = 64 - buffer_len_;
    const size_t take = len < need ? len : need;
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

void Sha1::UpdateU64(uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<uint8_t>(v >> (56 - i * 8));
  }
  Update(b, 8);
}

Sha1Digest Sha1::Finish() {
  const uint64_t bit_len = total_bytes_ * 8;
  const uint8_t pad = 0x80;
  Update(&pad, 1);
  const uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  UpdateU64(bit_len);

  Sha1Digest d;
  for (int i = 0; i < 5; ++i) {
    d[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
    d[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    d[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    d[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  return d;
}

Sha1Digest Sha1::Hash(const void* data, size_t len) {
  Sha1 h;
  h.Update(data, len);
  return h.Finish();
}

std::string Sha1::ToHex(const Sha1Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace fuse
