// Strong integer identifier types used throughout the library.
//
// Each subsystem gets its own incompatible ID type so that a HostId can never
// be passed where a TimerId is expected. IDs are cheap value types (one
// uint64_t) and hashable for use in unordered containers.
#ifndef FUSE_COMMON_IDS_H_
#define FUSE_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace fuse {

// CRTP-free strong typedef over uint64_t. `Tag` only disambiguates types.
template <typename Tag>
struct StrongId {
  uint64_t value = kInvalidValue;

  static constexpr uint64_t kInvalidValue = ~uint64_t{0};

  constexpr StrongId() = default;
  constexpr explicit StrongId(uint64_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalidValue; }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value == b.value; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value != b.value; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value < b.value; }
  friend constexpr bool operator>(StrongId a, StrongId b) { return a.value > b.value; }
  friend constexpr bool operator<=(StrongId a, StrongId b) { return a.value <= b.value; }
  friend constexpr bool operator>=(StrongId a, StrongId b) { return a.value >= b.value; }

  std::string ToString() const {
    return valid() ? std::to_string(value) : std::string("<invalid>");
  }
};

// A host is one simulated (or live) process: it runs one overlay node and one
// FUSE layer. Equivalent to a "virtual node" in the paper's cluster.
using HostId = StrongId<struct HostIdTag>;

// A router in the underlying (Mercator-like) physical topology.
using RouterId = StrongId<struct RouterIdTag>;

// An autonomous system in the physical topology.
using AsId = StrongId<struct AsIdTag>;

// Handle for a scheduled timer/event; used to cancel.
using TimerId = StrongId<struct TimerIdTag>;

// Correlates an RPC request with its response.
using RpcId = StrongId<struct RpcIdTag>;

// Hash functor usable with all StrongId instantiations.
struct StrongIdHash {
  template <typename Tag>
  size_t operator()(StrongId<Tag> id) const {
    // splitmix64 finalizer: good avalanche for sequential ids.
    uint64_t x = id.value + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

// Combines a hash into a running seed (boost::hash_combine recipe, 64-bit).
inline void HashCombine(size_t& seed, size_t h) {
  seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
}

}  // namespace fuse

namespace std {
template <typename Tag>
struct hash<fuse::StrongId<Tag>> {
  size_t operator()(fuse::StrongId<Tag> id) const { return fuse::StrongIdHash{}(id); }
};
}  // namespace std

#endif  // FUSE_COMMON_IDS_H_
