#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace fuse {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(static_cast<int>(level)); }

LogLevel GetLogThreshold() { return static_cast<LogLevel>(g_threshold.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace fuse
