#include "common/rng.h"

#include <cmath>

namespace fuse {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
  // Avoid the all-zero state (cannot occur from SplitMix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % span);
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  // Floyd's algorithm would avoid the O(n) vector, but n is small in all of
  // our uses and this keeps the distribution obviously uniform.
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) {
    all[i] = i;
  }
  Shuffle(all);
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace fuse
