// Bounds-checked binary serialization for wire messages.
//
// All protocol messages (overlay and FUSE) serialize through these classes so
// that message sizes counted by the metrics layer reflect real encodings, and
// so the live runtime can move bytes between threads exactly as the simulator
// moves them between hosts.
#ifndef FUSE_COMMON_SERIALIZE_H_
#define FUSE_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/payload_buf.h"

namespace fuse {

class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutBytes(const void* data, size_t len);
  // Length-prefixed (u32) string.
  void PutString(std::string_view s);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  // Copies the current bytes into a PayloadBuf without surrendering the
  // buffer: a Writer kept as a member and Clear()ed between messages makes
  // the encode step of a hot path allocation-free once its capacity is warm.
  PayloadBuf TakeShared() const { return PayloadBuf(buf_.data(), buf_.size()); }
  void Clear() { buf_.clear(); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Reader(const std::vector<uint8_t>& v) : Reader(v.data(), v.size()) {}
  explicit Reader(const PayloadBuf& b) : Reader(b.data(), b.size()) {}

  uint8_t GetU8();
  uint16_t GetU16();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble();
  std::string GetString();
  void GetBytes(void* out, size_t len);

  // True iff no read has run past the end so far.
  bool ok() const { return ok_; }
  // True iff all bytes were consumed and no error occurred.
  bool Done() const { return ok_ && pos_ == len_; }
  size_t remaining() const { return ok_ ? len_ - pos_ : 0; }

 private:
  bool Ensure(size_t n);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fuse

#endif  // FUSE_COMMON_SERIALIZE_H_
