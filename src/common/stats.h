// Descriptive statistics helpers used by benches and EXPERIMENTS reporting:
// percentile summaries and CDF extraction, matching the presentation style of
// the paper's figures (25th/median/75th bars, latency CDFs).
#ifndef FUSE_COMMON_STATS_H_
#define FUSE_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace fuse {

// Collects samples; answers order statistics. Sorting is lazy.
class Summary {
 public:
  void Add(double v);
  void Clear();

  size_t Count() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;
  double StdDev() const;

  // Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // Evenly spaced CDF points: `points` pairs of (value, cumulative fraction).
  std::vector<std::pair<double, double>> Cdf(size_t points) const;

  // For each threshold, the fraction of samples <= threshold.
  double FractionAtMost(double threshold) const;

  const std::vector<double>& values() const { return values_; }

  // "n=20 p25=... p50=... p75=... max=..." one-line rendering.
  std::string OneLine() const;

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Renders a CDF as aligned text rows "value fraction" for bench output.
std::string RenderCdf(const Summary& s, size_t points, const std::string& value_label,
                      double value_scale = 1.0);

}  // namespace fuse

#endif  // FUSE_COMMON_STATS_H_
