#include "common/serialize.h"

namespace fuse {

void Writer::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v >> 8));
  PutU8(static_cast<uint8_t>(v));
}

void Writer::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v >> 16));
  PutU16(static_cast<uint16_t>(v));
}

void Writer::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v >> 32));
  PutU32(static_cast<uint32_t>(v));
}

void Writer::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Writer::PutBytes(const void* data, size_t len) {
  if (len == 0) {
    return;  // `data` may be null for empty payloads
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void Writer::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s.data(), s.size());
}

bool Reader::Ensure(size_t n) {
  if (!ok_ || len_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Reader::GetU8() {
  if (!Ensure(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint16_t Reader::GetU16() {
  const uint16_t hi = GetU8();
  return static_cast<uint16_t>((hi << 8) | GetU8());
}

uint32_t Reader::GetU32() {
  const uint32_t hi = GetU16();
  return (hi << 16) | GetU16();
}

uint64_t Reader::GetU64() {
  const uint64_t hi = GetU32();
  return (hi << 32) | GetU32();
}

double Reader::GetDouble() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string Reader::GetString() {
  const uint32_t n = GetU32();
  if (!Ensure(n)) {
    return "";
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void Reader::GetBytes(void* out, size_t len) {
  if (len == 0) {
    return;  // `out` may be null for empty payloads
  }
  if (!Ensure(len)) {
    std::memset(out, 0, len);
    return;
  }
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
}

}  // namespace fuse
