// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic decision in the simulator draws from an explicitly seeded
// Rng so whole experiments replay bit-identically. Never use std::rand or
// std::random_device inside the library.
#ifndef FUSE_COMMON_RNG_H_
#define FUSE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fuse {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t NextU64();

  // Uniform integer in the closed range [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // k distinct indices drawn uniformly from [0, n). Requires k <= n.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  // A child generator whose stream is independent of (but determined by) this
  // one. Useful for giving each node its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace fuse

#endif  // FUSE_COMMON_RNG_H_
