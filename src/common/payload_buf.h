// PayloadBuf: immutable message payload bytes, ref-counted with a small
// buffer optimization.
//
// WireMessage payloads used to be std::vector<uint8_t>, which made every
// fan-out (one buffer to N destinations), every retransmission-bookkeeping
// copy, and every in-order delivery slot pay a heap allocation plus a byte
// copy. A PayloadBuf is immutable after construction, so copies are safe to
// share: payloads up to kInlineSize bytes (every steady-state FUSE message —
// pings carry seq + a 20-byte SHA-1) live inline in the handle and copying
// them is a memcpy with no heap traffic; larger payloads live in one shared
// heap block and copying bumps a reference count. The count is atomic
// because the live runtime moves messages across threads.
//
// Adopting a std::vector (the Writer::Take() path) moves the vector's buffer
// into the shared block for large payloads — encode once, share everywhere.
#ifndef FUSE_COMMON_PAYLOAD_BUF_H_
#define FUSE_COMMON_PAYLOAD_BUF_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <utility>
#include <vector>

namespace fuse {

class PayloadBuf {
 public:
  // Covers every steady-state protocol payload (ping seq + hash = 28 bytes,
  // id+seq notifications = 20) while keeping WireMessage copy-cheap.
  static constexpr size_t kInlineSize = 48;

  PayloadBuf() = default;

  // Copies [data, data+n): inline when small, one shared block otherwise.
  PayloadBuf(const uint8_t* data, size_t n) : size_(n) {
    if (n <= kInlineSize) {
      if (n > 0) {
        std::memcpy(inline_, data, n);
      }
    } else {
      rep_ = new Rep{std::vector<uint8_t>(data, data + n)};
    }
  }

  // Adopts a vector (moves the buffer for large payloads). Intentionally
  // implicit: `msg.payload = writer.Take();` reads naturally everywhere.
  PayloadBuf(std::vector<uint8_t> v)  // NOLINT(google-explicit-constructor)
      : size_(v.size()) {
    if (size_ <= kInlineSize) {
      if (size_ > 0) {
        std::memcpy(inline_, v.data(), size_);
      }
    } else {
      rep_ = new Rep{std::move(v)};
    }
  }

  PayloadBuf(std::initializer_list<uint8_t> il) : PayloadBuf(il.begin(), il.size()) {}

  PayloadBuf(const PayloadBuf& other) : size_(other.size_) {
    if (size_ <= kInlineSize) {
      std::memcpy(inline_, other.inline_, size_);
    } else {
      rep_ = other.rep_;
      rep_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  PayloadBuf(PayloadBuf&& other) noexcept : size_(other.size_) {
    if (size_ <= kInlineSize) {
      std::memcpy(inline_, other.inline_, size_);
    } else {
      rep_ = other.rep_;
      other.size_ = 0;
    }
  }

  PayloadBuf& operator=(const PayloadBuf& other) {
    if (this != &other) {
      PayloadBuf tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }

  PayloadBuf& operator=(PayloadBuf&& other) noexcept {
    if (this != &other) {
      Release();
      size_ = other.size_;
      if (size_ <= kInlineSize) {
        std::memcpy(inline_, other.inline_, size_);
      } else {
        rep_ = other.rep_;
        other.size_ = 0;
      }
    }
    return *this;
  }

  ~PayloadBuf() { Release(); }

  const uint8_t* data() const { return size_ <= kInlineSize ? inline_ : rep_->bytes.data(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data()[i]; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + size_; }

  friend bool operator==(const PayloadBuf& a, const PayloadBuf& b) {
    return a.size_ == b.size_ && (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }
  friend bool operator!=(const PayloadBuf& a, const PayloadBuf& b) { return !(a == b); }

 private:
  struct Rep {
    std::vector<uint8_t> bytes;
    std::atomic<uint32_t> refs{1};
  };

  void Release() {
    if (size_ > kInlineSize && rep_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete rep_;
    }
    size_ = 0;
  }

  size_t size_ = 0;
  union {
    Rep* rep_;
    uint8_t inline_[kInlineSize];
  };
};

}  // namespace fuse

#endif  // FUSE_COMMON_PAYLOAD_BUF_H_
