// Message and event accounting.
//
// The paper's Figure 10 reports system-wide messages per second by scenario;
// Section 7.5 verifies that FUSE adds no messages beyond overlay maintenance
// in the absence of failures. Every transmitted message is attributed to a
// category here so benches can report the same breakdowns.
#ifndef FUSE_COMMON_METRICS_H_
#define FUSE_COMMON_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/time.h"

namespace fuse {

enum class MsgCategory : int {
  kOverlayPing = 0,        // overlay routing-table liveness ping (carries FUSE hash)
  kOverlayPingReply,       // its acknowledgment (carries FUSE hash)
  kOverlayJoin,            // join / neighbor-search / notification traffic
  kOverlayRouted,          // client messages routed hop-by-hop over the overlay
  kFuseCreate,             // GroupCreateRequest / reply
  kFuseInstallChecking,    // InstallChecking (routed via overlay)
  kFuseSoftNotification,   // SoftNotification
  kFuseHardNotification,   // HardNotification
  kFuseNeedRepair,         // NeedRepair
  kFuseRepair,             // GroupRepairRequest / reply
  kFuseReconcile,          // live FUSE-ID list exchange after a hash mismatch
  kRpc,                    // application RPC (calibration workload)
  kApp,                    // application payload (SV-tree content, SWIM, ...)
  kTransportControl,       // connection handshake segments
  kCount,
};

const char* MsgCategoryName(MsgCategory c);

// Point-in-time state gauges, alongside the monotonic message counters. The
// group fast-path benches report memory density and timer pressure through
// these so the perf baseline can band them.
enum class Gauge : int {
  kBytesPerGroup = 0,       // approx heap bytes of group state / live groups
  kArmedTimersPerGroup,     // armed FUSE-layer timers / live groups
  kSyscallsPerMsg,          // transport I/O syscalls / application messages
  kBatchOccupancy,          // messages coalesced per datagram (UDP fabric)
  kCount,
};

const char* GaugeName(Gauge g);

// Transport-level event counters, orthogonal to the per-category message
// accounting above. The real fabrics (TCP sockets, UDP datagrams) count
// their syscalls and reliability events here so bench_net_transport and the
// parity tests can report syscalls/msg, batch occupancy, and retransmit
// pressure without ptrace-style instrumentation.
enum class Counter : int {
  kTransportSendSyscalls = 0,  // send/sendto/sendmmsg invocations
  kTransportRecvSyscalls,      // recv/recvfrom/recvmmsg invocations
  kTransportDatagramsSent,     // UDP datagrams put on the wire
  kTransportRecordsSent,       // data records inside those datagrams
  kRetransmitsTotal,           // data records re-sent after an RTO
  kAcksDedupedTotal,           // duplicate deliveries suppressed (re-acked)
  kCount,
};

const char* CounterName(Counter c);

class Metrics {
 public:
  void IncMessage(MsgCategory c, uint64_t bytes) {
    auto& e = counters_[static_cast<size_t>(c)];
    e.messages += 1;
    e.bytes += bytes;
  }

  uint64_t MessageCount(MsgCategory c) const {
    return counters_[static_cast<size_t>(c)].messages;
  }
  uint64_t ByteCount(MsgCategory c) const { return counters_[static_cast<size_t>(c)].bytes; }

  uint64_t TotalMessages() const;
  uint64_t TotalBytes() const;

  // Gauges are last-writer-wins snapshots (AddFrom does not sum them; a
  // ratio like bytes/group does not aggregate by addition).
  void SetGauge(Gauge g, double value) { gauges_[static_cast<size_t>(g)] = value; }
  double GetGauge(Gauge g) const { return gauges_[static_cast<size_t>(g)]; }

  void IncCounter(Counter c, uint64_t n = 1) { event_counters_[static_cast<size_t>(c)] += n; }
  uint64_t GetCounter(Counter c) const { return event_counters_[static_cast<size_t>(c)]; }

  void Reset();

  // Accumulates another instance's counters into this one. The sharded
  // simulator keeps one Metrics per shard and aggregates at read time.
  void AddFrom(const Metrics& other) {
    for (size_t i = 0; i < counters_.size(); ++i) {
      counters_[i].messages += other.counters_[i].messages;
      counters_[i].bytes += other.counters_[i].bytes;
    }
    for (size_t i = 0; i < event_counters_.size(); ++i) {
      event_counters_[i] += other.event_counters_[i];
    }
  }

  // Multi-line "category messages bytes" table.
  std::string Report() const;

  // Snapshot of total message count; used with a later snapshot and the
  // elapsed sim time to compute messages/second over a window.
  struct Window {
    uint64_t start_messages = 0;
    TimePoint start_time;
  };
  Window BeginWindow(TimePoint now) const { return Window{TotalMessages(), now}; }
  double MessagesPerSecond(const Window& w, TimePoint now) const;

 private:
  struct Entry {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };
  std::array<Entry, static_cast<size_t>(MsgCategory::kCount)> counters_{};
  std::array<double, static_cast<size_t>(Gauge::kCount)> gauges_{};
  std::array<uint64_t, static_cast<size_t>(Counter::kCount)> event_counters_{};
};

}  // namespace fuse

#endif  // FUSE_COMMON_METRICS_H_
