// Pool<T>: a generation-tagged freelist pool of value-type entries.
//
// The same pattern as the event queue's pooled timer entries (sim/event_queue):
// entries are addressed by a small Ref (index + generation) instead of a
// shared_ptr, so allocating per-message state on a hot path costs a freelist
// pop instead of a heap allocation, and dangling references are detected by a
// generation mismatch instead of kept alive by reference counting. Release
// resets the entry to a default-constructed value, dropping any captured
// resources (callbacks, buffers) immediately.
//
// References returned by Get() are invalidated by Alloc() (the backing vector
// may grow): re-resolve a Ref after any call that can allocate.
#ifndef FUSE_COMMON_POOL_H_
#define FUSE_COMMON_POOL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace fuse {

template <typename T>
class Pool {
 public:
  struct Ref {
    uint32_t index = UINT32_MAX;
    uint32_t generation = 0;

    friend bool operator==(Ref a, Ref b) {
      return a.index == b.index && a.generation == b.generation;
    }
    friend bool operator!=(Ref a, Ref b) { return !(a == b); }
  };

  // Returns a ref to a default-state entry (recycled when possible).
  Ref Alloc() {
    uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<uint32_t>(entries_.size());
      entries_.emplace_back();
    }
    ++live_;
    return Ref{index, entries_[index].generation};
  }

  // Resolves a ref; nullptr if the entry was released (stale generation).
  T* Get(Ref r) {
    if (r.index >= entries_.size() || entries_[r.index].generation != r.generation) {
      return nullptr;
    }
    return &entries_[r.index].value;
  }
  const T* Get(Ref r) const { return const_cast<Pool*>(this)->Get(r); }

  // Releases a live entry: bumps the generation (staling every outstanding
  // ref) and resets the value so held resources are dropped now. Releasing
  // a stale ref would silently alias future allocations, so it is fatal.
  void Release(Ref r) {
    FUSE_CHECK(r.index < entries_.size() && entries_[r.index].generation == r.generation)
        << "releasing a stale pool ref";
    Entry& e = entries_[r.index];
    e.generation++;
    e.value = T{};
    free_.push_back(r.index);
    --live_;
  }

  size_t live() const { return live_; }

 private:
  struct Entry {
    uint32_t generation = 1;
    T value;
  };

  std::vector<Entry> entries_;
  std::vector<uint32_t> free_;
  size_t live_ = 0;
};

}  // namespace fuse

#endif  // FUSE_COMMON_POOL_H_
