// Simulation time: explicit Duration / TimePoint value types with microsecond
// resolution. Distinct from std::chrono so that simulated time can never be
// accidentally mixed with wall-clock time; the live runtime converts at its
// boundary.
#ifndef FUSE_COMMON_TIME_H_
#define FUSE_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace fuse {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000000); }
  static constexpr Duration Minutes(int64_t m) { return Duration(m * 60000000); }
  static constexpr Duration SecondsF(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration MillisF(double ms) {
    return Duration(static_cast<int64_t>(ms * 1e3));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t ToMicros() const { return us_; }
  constexpr double ToMillisF() const { return static_cast<double>(us_) / 1e3; }
  constexpr double ToSecondsF() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool IsZero() const { return us_ == 0; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.us_ + b.us_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.us_ - b.us_); }
  friend constexpr Duration operator*(Duration a, int64_t k) { return Duration(a.us_ * k); }
  friend constexpr Duration operator*(int64_t k, Duration a) { return Duration(a.us_ * k); }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration(static_cast<int64_t>(static_cast<double>(a.us_) * k));
  }
  friend constexpr Duration operator/(Duration a, int64_t k) { return Duration(a.us_ / k); }
  constexpr Duration& operator+=(Duration b) {
    us_ += b.us_;
    return *this;
  }
  constexpr Duration& operator-=(Duration b) {
    us_ -= b.us_;
    return *this;
  }

  friend constexpr bool operator==(Duration a, Duration b) { return a.us_ == b.us_; }
  friend constexpr bool operator!=(Duration a, Duration b) { return a.us_ != b.us_; }
  friend constexpr bool operator<(Duration a, Duration b) { return a.us_ < b.us_; }
  friend constexpr bool operator>(Duration a, Duration b) { return a.us_ > b.us_; }
  friend constexpr bool operator<=(Duration a, Duration b) { return a.us_ <= b.us_; }
  friend constexpr bool operator>=(Duration a, Duration b) { return a.us_ >= b.us_; }

  std::string ToString() const;

 private:
  constexpr explicit Duration(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }
  static constexpr TimePoint Zero() { return TimePoint(0); }
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr int64_t ToMicros() const { return us_; }
  constexpr double ToSecondsF() const { return static_cast<double>(us_) / 1e6; }
  constexpr double ToMillisF() const { return static_cast<double>(us_) / 1e3; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.us_ + d.ToMicros());
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.us_ - d.ToMicros());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::Micros(a.us_ - b.us_);
  }

  friend constexpr bool operator==(TimePoint a, TimePoint b) { return a.us_ == b.us_; }
  friend constexpr bool operator!=(TimePoint a, TimePoint b) { return a.us_ != b.us_; }
  friend constexpr bool operator<(TimePoint a, TimePoint b) { return a.us_ < b.us_; }
  friend constexpr bool operator>(TimePoint a, TimePoint b) { return a.us_ > b.us_; }
  friend constexpr bool operator<=(TimePoint a, TimePoint b) { return a.us_ <= b.us_; }
  friend constexpr bool operator>=(TimePoint a, TimePoint b) { return a.us_ >= b.us_; }

  std::string ToString() const;

 private:
  constexpr explicit TimePoint(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

}  // namespace fuse

#endif  // FUSE_COMMON_TIME_H_
