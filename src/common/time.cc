#include "common/time.h"

#include <cstdio>

namespace fuse {

std::string Duration::ToString() const {
  char buf[48];
  const int64_t us = us_;
  if (us % 1000000 == 0 && (us >= 1000000 || us <= -1000000)) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(us / 1000000));
  } else if (us % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(us / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

std::string TimePoint::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", ToSecondsF());
  return buf;
}

}  // namespace fuse
