// SHA-1 (FIPS 180-1), implemented from scratch.
//
// FUSE piggybacks a 20-byte SHA-1 digest of the per-link FUSE-ID list on
// overlay ping traffic (paper section 6.1). SHA-1 is used here exactly as in
// the paper: as a compact set fingerprint, not for security.
#ifndef FUSE_COMMON_SHA1_H_
#define FUSE_COMMON_SHA1_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>

namespace fuse {

using Sha1Digest = std::array<uint8_t, 20>;

class Sha1 {
 public:
  Sha1();

  // Streams `len` bytes into the hash state.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }
  void UpdateU64(uint64_t v);

  // Finalizes and returns the digest. The object must not be reused after.
  Sha1Digest Finish();

  // One-shot convenience.
  static Sha1Digest Hash(const void* data, size_t len);
  static Sha1Digest Hash(std::string_view s) { return Hash(s.data(), s.size()); }

  // Lowercase hex rendering of a digest.
  static std::string ToHex(const Sha1Digest& d);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace fuse

#endif  // FUSE_COMMON_SHA1_H_
