// ShardedSim: a conservatively-synchronized parallel discrete-event
// simulator. Hosts are partitioned across S shards (see sim/shard.h); shards
// execute in lockstep epochs whose length is bounded by the lookahead L — the
// minimum one-way cross-shard network latency. Within an epoch [B, E),
// E <= t_first + L (t_first = earliest pending event anywhere), every shard
// runs its own events in isolation: a cross-shard message sent at time
// s >= t_first arrives at s + latency >= t_first + L >= E, so nothing sent
// during the epoch can affect the epoch itself. At the barrier the control
// thread merges all shard outboxes in canonical (deliver time, source shard,
// sequence) order and injects them into destination queues, replays deferred
// harness upcalls in (time, shard, sequence) order, and runs any control-
// plane events (churn timers, Await predicates) that came due.
//
// Determinism contract: the full schedule — every event on every queue, every
// RNG draw, every metric — is a function of (seed, shard count) only. The
// worker-thread count decides how many shards execute concurrently, never
// what they execute, so the same seed produces byte-identical traces at
// --threads 1, 2 and 8. Epochs where only one shard (or none) has work are
// executed inline on the control thread, and the epoch start fast-forwards
// to the earliest pending event, so idle stretches cost one barrier, not
// one barrier per lookahead window.
//
// The control plane is itself an Environment (the harness's env()): a
// separate event queue + RNG + Metrics that only ever runs on the control
// thread with all workers parked, which is what makes harness code — churn
// timers, fault application, Build's bookkeeping — barrier-safe without
// locks. Control events run before shard events carrying the same timestamp.
#ifndef FUSE_SIM_SHARDED_SIM_H_
#define FUSE_SIM_SHARDED_SIM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "sim/environment.h"
#include "sim/event_queue.h"
#include "sim/shard.h"

namespace fuse {

class ShardedSim : public Environment {
 public:
  // `threads` is the worker pool size; it is clamped to [0, num_shards] and
  // <= 1 means every shard runs inline on the control thread (no worker
  // threads at all — the degenerate case used by --threads=1 runs).
  ShardedSim(uint64_t seed, uint32_t num_shards, int threads);
  ~ShardedSim() override;

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  // Environment implementation: the control plane. Schedule/Cancel operate on
  // the control queue; rng() is the control stream (node identities, boot
  // picks, churn draws); metrics() aggregates all shards on every call.
  TimePoint Now() const override { return now_; }
  TimerId Schedule(Duration d, UniqueFunction fn) override {
    return control_queue_.ScheduleAfter(d, std::move(fn));
  }
  bool Cancel(TimerId id) override { return control_queue_.Cancel(id); }
  Rng& rng() override { return control_rng_; }
  Metrics& metrics() override;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  int threads() const { return static_cast<int>(workers_.size()); }
  Shard& shard(uint32_t i) { return *shards_[i]; }

  // The conservative lookahead. Starts at a floor of the same-router hop
  // latency (200us); the deployment raises it once host placement is known.
  // Must only shrink or be set before the first Run* call.
  void SetLookahead(Duration l);
  Duration lookahead() const { return lookahead_; }

  void RunFor(Duration d) { RunUntil(now_ + d); }
  void RunUntil(TimePoint t);
  // Runs until `pred` (evaluated on the control thread at barriers) holds or
  // `deadline` passes; returns pred's final value. Predicate granularity is
  // one epoch — coarser than the single-threaded sim's per-event check, but
  // bounded by the lookahead, which is far below protocol timescales.
  bool RunUntilCondition(const std::function<bool()>& pred, TimePoint deadline);

  // Aggregate observability across the control queue and every shard.
  uint64_t TotalExecuted() const;
  size_t TotalPending() const;
  EventQueue::Stats AggregateQueueStats() const;
  EventQueue& control_queue() { return control_queue_; }

 private:
  // Runs one parallel phase: every shard executes [its now, end) — or [.., end]
  // when `inclusive` — then the calling (control) thread blocks until all are
  // done.
  void RunShards(TimePoint end, bool inclusive);
  // Barrier work: sync the control clock, inject outboxes, replay upcalls.
  void DrainBarrier(TimePoint t);
  void InjectOutboxes(TimePoint barrier);
  bool RunDeferredUpcalls();
  void WorkerLoop();

  // The core loop shared by RunUntil and RunUntilCondition.
  bool RunCore(const std::function<bool()>& pred, TimePoint deadline);

  EventQueue control_queue_;
  Rng control_rng_;
  Metrics aggregate_metrics_;  // refreshed on metrics() calls
  std::vector<std::unique_ptr<Shard>> shards_;
  Duration lookahead_;
  TimePoint now_;
  bool lookahead_frozen_ = false;

  // Worker pool. Epoch dispatch: the control thread publishes (target,
  // inclusive, generation) under mu_ and wakes the workers; workers claim
  // shards via next_shard_ and report completion under mu_. Both directions
  // synchronize through mu_, so shard state written in epoch N
  // happens-before barrier reads and epoch N+1 execution.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_gen_ = 0;
  TimePoint epoch_target_;
  bool epoch_inclusive_ = false;
  std::atomic<uint32_t> next_shard_{0};
  size_t workers_done_ = 0;
  bool shutdown_ = false;

  // Scratch for barrier merging (reused across epochs).
  struct MergeEntry {
    TimePoint deliver_at;
    uint32_t src_shard;
    uint64_t seq;
    uint32_t dst_shard;
    UniqueFunction fn;
  };
  std::vector<MergeEntry> merge_scratch_;
  struct UpcallEntry {
    TimePoint when;
    uint32_t shard;
    uint64_t seq;
    std::function<void()> fn;
  };
  std::vector<UpcallEntry> upcall_scratch_;
};

}  // namespace fuse

#endif  // FUSE_SIM_SHARDED_SIM_H_
