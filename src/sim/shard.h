// Shard: one partition of the sharded discrete-event simulator.
//
// A shard owns everything its hosts touch on the hot path — a 3-level
// timer-wheel event queue, a private RNG stream derived from (seed, shard
// index), and a Metrics instance — so an epoch's worth of events executes
// with zero cross-thread sharing. Two cross-shard side channels accumulate
// during an epoch and are drained by ShardedSim at the barrier:
//
//   * outboxes: per-destination-shard vectors of (deliver_at, seq, closure),
//     the SPSC queues cross-shard WireMessages travel through. Entries carry
//     a per-source-shard sequence number so the control thread can merge all
//     outboxes in canonical (deliver_at, src shard, seq) order before
//     injecting them into destination queues — the property that makes the
//     global schedule independent of worker-thread count;
//   * a deferred-upcall log: harness-level callbacks (join completions,
//     group-create results, failure-watch fires) recorded as
//     (virtual time, seq, closure) and replayed on the control thread in
//     canonical (time, shard, seq) order, so callbacks that mutate
//     harness-shared state never run on a worker thread.
//
// Shard::Current() is a thread-local pointer to the shard whose events are
// executing; it is how Deployment::Defer and the fabric's send path find the
// shard-local side channels without plumbing a context argument through every
// protocol callback.
#ifndef FUSE_SIM_SHARD_H_
#define FUSE_SIM_SHARD_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "sim/environment.h"
#include "sim/event_queue.h"

namespace fuse {

class Shard : public Environment {
 public:
  Shard(uint32_t index, uint64_t seed, uint32_t num_shards);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // Environment implementation (the base env for this shard's hosts).
  TimePoint Now() const override { return queue_.Now(); }
  TimerId Schedule(Duration d, UniqueFunction fn) override {
    return queue_.ScheduleAfter(d, std::move(fn));
  }
  bool Cancel(TimerId id) override { return queue_.Cancel(id); }
  Rng& rng() override { return rng_; }
  Metrics& metrics() override { return metrics_; }

  uint32_t index() const { return index_; }
  uint32_t num_shards() const { return num_shards_; }
  EventQueue& queue() { return queue_; }
  const EventQueue& queue() const { return queue_; }

  // The shard whose events are executing on this thread, or nullptr when the
  // caller is in control/barrier context.
  static Shard* Current();

  // Records a harness upcall to replay on the control thread at the next
  // barrier (canonical order: (recorded time, shard index, record seq)).
  void DeferUpcall(std::function<void()> fn) {
    deferred_.push_back(Deferred{Now(), next_defer_seq_++, std::move(fn)});
  }

  // Queues `fn` for injection into shard `dst`'s event queue at the next
  // barrier, to fire at `deliver_at`. `deliver_at` must be at or past the
  // epoch boundary — guaranteed by the conservative lookahead (any cross-
  // shard message sent during [B, E) arrives >= send time + lookahead >= E).
  void PushCrossShard(uint32_t dst, TimePoint deliver_at, UniqueFunction fn) {
    outboxes_[dst].push_back(CrossMsg{deliver_at, next_cross_seq_++, std::move(fn)});
  }

  // --- ShardedSim internals (control thread / assigned worker only) ---

  struct Deferred {
    TimePoint when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct CrossMsg {
    TimePoint deliver_at;
    uint64_t seq;
    UniqueFunction fn;
  };

  // Runs this shard's events in [Now, end) — or [Now, end] when `inclusive` —
  // with Current() set for the duration, then parks the clock at `end`.
  void RunEpoch(TimePoint end, bool inclusive);

  TimePoint NextEventTime() { return queue_.NextEventTime(); }

  bool HasDeferred() const { return !deferred_.empty(); }
  std::vector<Deferred> TakeDeferred() {
    std::vector<Deferred> out = std::move(deferred_);
    deferred_.clear();
    return out;
  }
  std::vector<CrossMsg>& outbox(uint32_t dst) { return outboxes_[dst]; }

 private:
  const uint32_t index_;
  const uint32_t num_shards_;
  EventQueue queue_;
  Rng rng_;
  Metrics metrics_;
  std::vector<Deferred> deferred_;
  std::vector<std::vector<CrossMsg>> outboxes_;  // one per destination shard
  uint64_t next_defer_seq_ = 0;
  uint64_t next_cross_seq_ = 0;
};

}  // namespace fuse

#endif  // FUSE_SIM_SHARD_H_
