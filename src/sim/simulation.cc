#include "sim/simulation.h"

namespace fuse {

bool Simulation::RunUntilCondition(const std::function<bool()>& pred, TimePoint deadline) {
  while (!pred()) {
    if (queue_.Empty() || queue_.Now() >= deadline) {
      return pred();
    }
    queue_.RunOne();
  }
  return true;
}

}  // namespace fuse
