// Deterministic discrete-event queue.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled
// for the same instant run in the order they were scheduled — this makes the
// whole simulation a deterministic function of its seed. Cancellation is lazy
// (cancelled entries are skipped on pop), which keeps Schedule/Cancel O(log n).
#ifndef FUSE_SIM_EVENT_QUEUE_H_
#define FUSE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace fuse {

class EventQueue {
 public:
  using EventFn = std::function<void()>;

  TimePoint Now() const { return now_; }

  // Schedules `fn` at absolute time `t` (clamped to Now if in the past).
  TimerId ScheduleAt(TimePoint t, EventFn fn);

  // Schedules `fn` after `d` (clamped to zero if negative).
  TimerId ScheduleAfter(Duration d, EventFn fn);

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(TimerId id);

  // Runs the single earliest event. Returns false if the queue is empty.
  bool RunOne();

  // Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(TimePoint t);

  // Convenience: RunUntil(Now + d).
  void RunFor(Duration d);

  // Runs events until the queue drains or `max_events` fire; returns the
  // number of events executed.
  size_t RunAll(size_t max_events = SIZE_MAX);

  bool Empty() const { return live_count_ == 0; }
  size_t PendingCount() const { return live_count_; }
  uint64_t ExecutedCount() const { return executed_; }

 private:
  struct Entry {
    TimePoint when;
    uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops and runs the top entry; assumes the queue is non-empty after
  // cancelled-entry skipping was already performed by the caller.
  void PopAndRun();
  // Drops cancelled entries from the top of the heap.
  void SkimCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<uint64_t> cancelled_;
  TimePoint now_ = TimePoint::Zero();
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace fuse

#endif  // FUSE_SIM_EVENT_QUEUE_H_
