// Deterministic discrete-event queue on a hierarchical timer wheel.
//
// Determinism contract (unchanged from the original binary-heap core): events
// fire in (time, insertion-sequence) order, so two events scheduled for the
// same instant run in the order they were scheduled — this makes the whole
// simulation a deterministic function of its seed.
//
// Structure. Three wheel levels of 256 slots each, with slot granularities of
// 2^10, 2^18 and 2^26 microseconds (~1 ms, ~0.26 s, ~67 s), cover roughly the
// next 4.7 hours of virtual time; anything further lands in a heap-backed
// overflow level and is pulled into the wheels as the clock approaches it.
// The paper's workload (per-neighbor pings every 60 s, 20 s timeouts,
// millisecond RTTs) lives entirely in levels 0-1, where Schedule is O(1):
// append to a slot vector. As the wheel turns, a due slot is drained into a
// small "due" heap ordered by (time, seq); only that heap — which holds at
// most one level-0 slot window (~1 ms) of events plus same-window inserts —
// pays O(log k) ordering cost, with k tiny compared to the total pending
// count. This is what lets SimCluster scale to 10k+ nodes: the steady-state
// ping load schedules and fires millions of timers without a global heap.
//
// Cancellation is O(1) and fully reclaims the event: a TimerId encodes
// (pool index, generation); wheel slots are intrusive doubly-linked lists
// threaded through the pool entries, so Cancel unlinks the entry and frees
// it — closure included — immediately. There is no tombstone set; cancelling
// an already-fired or never-issued id is detected by a generation mismatch
// and changes no accounting. Only entries in the two small heaps (due
// window, far-future overflow) are lazily skipped, and their storage is
// still reclaimed at cancel time.
//
// Storage discipline: a wheel slot is one uint32 head index — there are no
// per-slot vectors whose capacity must warm up — so once the pool and the
// two heaps have grown to the workload's steady pending count, scheduling,
// cancelling, and firing allocate nothing, no matter how events happen to
// coincide within a slot.
#ifndef FUSE_SIM_EVENT_QUEUE_H_
#define FUSE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/function.h"
#include "common/ids.h"
#include "common/time.h"

namespace fuse {

class EventQueue {
 public:
  // Move-only with a guaranteed small-buffer optimization: pooled entries
  // re-accept typical closures without heap traffic (see common/function.h).
  using EventFn = UniqueFunction;

  EventQueue();

  TimePoint Now() const { return now_; }

  // Schedules `fn` at absolute time `t` (clamped to Now if in the past).
  TimerId ScheduleAt(TimePoint t, EventFn fn);

  // Schedules `fn` after `d` (clamped to zero if negative).
  TimerId ScheduleAfter(Duration d, EventFn fn);

  // Cancels a pending event in O(1), releasing its closure immediately.
  // Returns false if it already ran, was already cancelled, or was never
  // issued; in those cases no accounting changes.
  bool Cancel(TimerId id);

  // Runs the single earliest event. Returns false if the queue is empty.
  bool RunOne();

  // Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(TimePoint t);

  // Runs all events with time strictly < t, then advances the clock to
  // exactly t. Events pending at exactly t stay queued and fire first on the
  // next run call. This is the epoch primitive for the sharded simulator:
  // each shard runs [now, epoch_end) in isolation, and cross-shard messages
  // injected afterwards may legally land at exactly epoch_end.
  void RunUntilBefore(TimePoint t);

  // Convenience: RunUntil(Now + d).
  void RunFor(Duration d);

  // Runs events until the queue drains or `max_events` fire; returns the
  // number of events executed.
  size_t RunAll(size_t max_events = SIZE_MAX);

  // Time of the earliest pending event, or TimePoint::Max() if none. May
  // advance the wheel cursor (never the clock); idempotent and safe to call
  // between run calls.
  TimePoint NextEventTime();

  bool Empty() const { return live_count_ == 0; }
  size_t PendingCount() const { return live_count_; }
  uint64_t ExecutedCount() const { return executed_; }

  // Introspection counters for timer-pressure reporting (scale benches
  // compare these before/after ping coalescing).
  struct Stats {
    uint64_t scheduled = 0;  // total ScheduleAt/After calls ever
    uint64_t executed = 0;   // total events fired
    uint64_t cancelled = 0;  // total successful Cancels
    size_t pending = 0;      // live entries right now
    size_t wheel_live[3] = {0, 0, 0};  // live entries per wheel level
    size_t due_size = 0;       // due-heap refs (includes lazily-dead ones)
    size_t overflow_size = 0;  // overflow-heap refs (includes dead ones)
  };
  Stats GetStats() const;

 private:
  // Wheel geometry. kSlotBits slots per level; level L slots span
  // 2^(kShift0 + L*kSlotBits) microseconds.
  static constexpr int kShift0 = 10;    // level-0 slot = 1024 us
  static constexpr int kSlotBits = 8;   // 256 slots per level
  static constexpr int kLevels = 3;
  static constexpr uint64_t kSlots = uint64_t{1} << kSlotBits;
  static constexpr uint64_t kSlotMask = kSlots - 1;

  static constexpr uint32_t kNil = UINT32_MAX;

  // One pooled event. Entries are recycled through a free list; `generation`
  // is bumped on every release so stale references (in the heaps, or
  // user-held TimerIds) can be detected.
  struct Event {
    TimePoint when;
    uint64_t seq = 0;       // global insertion sequence: the FIFO tiebreak
    uint32_t generation = 1;
    // Where this entry's reference currently lives. Wheel entries are linked
    // into their slot's intrusive list so Cancel can unlink in O(1);
    // references in the due/overflow heaps are skipped lazily via the
    // generation. The covering slot number is recomputed from `when` and
    // `level`, so no slot/position bookkeeping is stored.
    enum class Where : uint8_t { kFree, kWheel, kDue, kOverflow };
    Where where = Where::kFree;
    uint8_t level = 0;   // wheel level (when where == kWheel)
    uint32_t prev = kNil;  // intrusive slot-list links (when where == kWheel)
    uint32_t next = kNil;
    EventFn fn;
  };

  // Reference to a pool entry at a specific generation.
  struct Ref {
    uint32_t index;
    uint32_t generation;
  };

  struct DueEntry {
    TimePoint when;
    uint64_t seq;
    Ref ref;
  };
  struct DueLater {
    bool operator()(const DueEntry& a, const DueEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  struct OverflowEntry {
    TimePoint when;
    Ref ref;
  };
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      return a.when > b.when;
    }
  };

  static constexpr uint64_t SlotOf(TimePoint t, int level) {
    return static_cast<uint64_t>(t.ToMicros()) >> (kShift0 + level * kSlotBits);
  }

  bool IsLive(Ref r) const { return pool_[r.index].generation == r.generation; }

  uint32_t AllocEvent(TimePoint when, EventFn fn);
  void ReleaseEvent(uint32_t index);
  // Places a live pool entry into the wheel level that covers it (or the due
  // heap, if its level-0 slot has already been drained).
  void Place(Ref r);
  // Moves every live entry of `levels_[level][slot]` one level down (or into
  // the due heap for level 0).
  void DrainSlot(int level, uint64_t slot);
  // Pulls overflow-heap entries now covered by the wheels.
  void RefillFromOverflow();
  // Advances the wheel cursor until the due heap holds the earliest pending
  // event, or returns false when nothing is pending anywhere.
  bool FillDue();
  // Pops and runs the due heap's top entry.
  void PopAndRun();

  // Event pool + free list.
  std::vector<Event> pool_;
  std::vector<uint32_t> free_list_;

  // levels_[L][s] heads the intrusive list of events whose absolute level-L
  // slot number, modulo the rotation, is s. A slot only ever holds events
  // for one absolute slot number at a time (enforced by Place's level
  // selection against cursor_). All wheel entries are live: Cancel unlinks
  // eagerly, so level_refs_ is an exact count of pending events stored in
  // the wheels.
  uint32_t levels_[kLevels][kSlots];
  size_t level_refs_[kLevels] = {0, 0, 0};

  // Absolute level-0 slot number of the next slot to drain. Invariant: every
  // pending wheel/overflow event has SlotOf(when, 0) >= cursor_, and every
  // due-heap event has SlotOf(when, 0) < cursor_.
  uint64_t cursor_ = 0;

  std::priority_queue<DueEntry, std::vector<DueEntry>, DueLater> due_;
  std::priority_queue<OverflowEntry, std::vector<OverflowEntry>, OverflowLater> overflow_;

  TimePoint now_ = TimePoint::Zero();
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  uint64_t executed_ = 0;
  uint64_t scheduled_ = 0;
  uint64_t cancelled_ = 0;
};

}  // namespace fuse

#endif  // FUSE_SIM_EVENT_QUEUE_H_
