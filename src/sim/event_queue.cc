#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fuse {

EventQueue::EventQueue() {
  // Typical steady-state pending count for a mid-size cluster; avoids the
  // first few pool reallocations.
  pool_.reserve(1024);
  free_list_.reserve(1024);
  for (auto& level : levels_) {
    for (uint32_t& head : level) {
      head = kNil;
    }
  }
}

uint32_t EventQueue::AllocEvent(TimePoint when, EventFn fn) {
  uint32_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
  } else {
    index = static_cast<uint32_t>(pool_.size());
    FUSE_CHECK(pool_.size() < UINT32_MAX) << "event pool exhausted";
    pool_.emplace_back();
  }
  Event& e = pool_[index];
  e.when = when;
  e.seq = next_seq_++;
  e.fn = std::move(fn);
  return index;
}

void EventQueue::ReleaseEvent(uint32_t index) {
  Event& e = pool_[index];
  e.fn = nullptr;  // release the closure now; a heap ref may linger
  e.where = Event::Where::kFree;
  e.generation++;
  free_list_.push_back(index);
}

void EventQueue::Place(Ref r) {
  Event& e = pool_[r.index];
  const uint64_t slot0 = SlotOf(e.when, 0);
  if (slot0 < cursor_) {
    // The covering slot was already drained (the event lands inside the
    // window currently being run); order it through the due heap.
    e.where = Event::Where::kDue;
    due_.push(DueEntry{e.when, e.seq, r});
    return;
  }
  for (int level = 0; level < kLevels; ++level) {
    const uint64_t slot = SlotOf(e.when, level);
    if (slot - (cursor_ >> (level * kSlotBits)) < kSlots) {
      uint32_t& head = levels_[level][slot & kSlotMask];
      e.where = Event::Where::kWheel;
      e.level = static_cast<uint8_t>(level);
      e.prev = kNil;
      e.next = head;
      if (head != kNil) {
        pool_[head].prev = r.index;
      }
      head = r.index;
      level_refs_[level]++;
      return;
    }
  }
  e.where = Event::Where::kOverflow;
  overflow_.push(OverflowEntry{e.when, r});
}

void EventQueue::DrainSlot(int level, uint64_t slot) {
  // Detach the whole list first: Place (level 0: due_ pushes; level > 0:
  // re-inserts one level down) relinks each entry, so the walk reads `next`
  // before handing the entry over. Wheel entries are always live (Cancel
  // unlinks eagerly). List order within a slot is irrelevant: execution
  // order is decided by the (time, seq) due heap.
  uint32_t idx = levels_[level][slot & kSlotMask];
  levels_[level][slot & kSlotMask] = kNil;
  size_t drained = 0;
  while (idx != kNil) {
    Event& e = pool_[idx];
    const uint32_t next = e.next;
    ++drained;
    Place(Ref{idx, e.generation});
    idx = next;
  }
  level_refs_[level] -= drained;
}

void EventQueue::RefillFromOverflow() {
  const uint64_t top_horizon = (cursor_ >> ((kLevels - 1) * kSlotBits)) + kSlots;
  while (!overflow_.empty()) {
    const OverflowEntry& top = overflow_.top();
    if (!IsLive(top.ref)) {
      overflow_.pop();
      continue;
    }
    if (SlotOf(top.when, kLevels - 1) >= top_horizon) {
      return;
    }
    const Ref r = top.ref;
    overflow_.pop();
    Place(r);
  }
}

bool EventQueue::FillDue() {
  // Skim stale (cancelled) entries so `due_.top()` is always live.
  while (!due_.empty() && !IsLive(due_.top().ref)) {
    due_.pop();
  }
  while (due_.empty()) {
    if (live_count_ == 0) {
      return false;
    }
    if (level_refs_[0] == 0 && level_refs_[1] == 0 && level_refs_[2] == 0) {
      // Everything pending is in the overflow heap: jump the wheel straight
      // to the earliest overflow event instead of stepping empty slots.
      while (!overflow_.empty() && !IsLive(overflow_.top().ref)) {
        overflow_.pop();
      }
      FUSE_CHECK(!overflow_.empty()) << "live_count_ out of sync with storage";
      cursor_ = std::max(cursor_, SlotOf(overflow_.top().when, 0));
      RefillFromOverflow();
      continue;
    }
    // Step the window forward, then drain the slot it just passed: its
    // events now satisfy slot0 < cursor_, so Place routes them into the due
    // heap. Cascades run when the cursor *enters* a higher-level slot, i.e.
    // when the lower bits wrap to zero; cascaded events have slot0 >=
    // cursor_, so Place routes them into lower wheel levels instead.
    if (level_refs_[0] == 0) {
      // Level 0 is empty, so every level-0 slot up to the next level-1
      // boundary is empty too (higher-level events always live past the
      // boundary that will cascade them): jump there in one step instead of
      // walking empty slots.
      cursor_ = (cursor_ | kSlotMask) + 1;
    } else {
      const uint64_t due_slot = cursor_;
      ++cursor_;
      DrainSlot(0, due_slot);
    }
    if ((cursor_ & kSlotMask) == 0) {
      DrainSlot(1, cursor_ >> kSlotBits);
      if (((cursor_ >> kSlotBits) & kSlotMask) == 0) {
        DrainSlot(2, cursor_ >> (2 * kSlotBits));
        RefillFromOverflow();
      }
    }
    while (!due_.empty() && !IsLive(due_.top().ref)) {
      due_.pop();
    }
  }
  return true;
}

TimerId EventQueue::ScheduleAt(TimePoint t, EventFn fn) {
  if (t < now_) {
    t = now_;
  }
  FUSE_CHECK(fn != nullptr) << "scheduling a null event";
  const uint32_t index = AllocEvent(t, std::move(fn));
  const uint32_t generation = pool_[index].generation;
  Place(Ref{index, generation});
  ++live_count_;
  ++scheduled_;
  // Pack (generation, index) into the id; see Cancel.
  return TimerId((uint64_t{generation} << 32) | index);
}

TimerId EventQueue::ScheduleAfter(Duration d, EventFn fn) {
  if (d < Duration::Zero()) {
    d = Duration::Zero();
  }
  return ScheduleAt(now_ + d, std::move(fn));
}

bool EventQueue::Cancel(TimerId id) {
  if (!id.valid()) {
    return false;
  }
  const uint32_t index = static_cast<uint32_t>(id.value & 0xffffffffULL);
  const uint32_t generation = static_cast<uint32_t>(id.value >> 32);
  if (index >= pool_.size() || pool_[index].generation != generation) {
    return false;  // already ran, already cancelled, or never issued
  }
  Event& e = pool_[index];
  if (e.where == Event::Where::kWheel) {
    // Unlink from the slot's intrusive list; the covering slot number is
    // recomputed from the event's own time and level.
    if (e.prev != kNil) {
      pool_[e.prev].next = e.next;
    } else {
      uint32_t& head = levels_[e.level][SlotOf(e.when, e.level) & kSlotMask];
      FUSE_CHECK(head == index) << "corrupt timer handle";
      head = e.next;
    }
    if (e.next != kNil) {
      pool_[e.next].prev = e.prev;
    }
    level_refs_[e.level]--;
  }
  // kDue / kOverflow refs are skipped lazily via the generation bump.
  ReleaseEvent(index);
  FUSE_CHECK(live_count_ > 0) << "cancel with no live events";
  --live_count_;
  ++cancelled_;
  return true;
}

void EventQueue::PopAndRun() {
  const DueEntry top = due_.top();
  due_.pop();
  Event& e = pool_[top.ref.index];
  FUSE_CHECK(e.when >= now_) << "event queue time went backwards";
  now_ = e.when;
  // Move the closure out and release the entry *before* running, so the
  // callback may freely schedule and cancel (and reuse this pool entry).
  EventFn fn = std::move(e.fn);
  ReleaseEvent(top.ref.index);
  --live_count_;
  ++executed_;
  fn();
}

bool EventQueue::RunOne() {
  if (!FillDue()) {
    return false;
  }
  PopAndRun();
  return true;
}

void EventQueue::RunUntil(TimePoint t) {
  while (FillDue() && due_.top().when <= t) {
    PopAndRun();
  }
  if (now_ < t) {
    now_ = t;
  }
  // Keep the wheel cursor in step with the clock across empty stretches, so
  // the next schedule after a long quiet RunUntil lands in a near slot
  // instead of making FillDue walk the gap slot by slot. Safe because every
  // remaining pending event is later than t (the loop above drained all
  // earlier ones into execution).
  cursor_ = std::max(cursor_, SlotOf(now_, 0));
}

void EventQueue::RunUntilBefore(TimePoint t) {
  while (FillDue() && due_.top().when < t) {
    PopAndRun();
  }
  if (now_ < t) {
    now_ = t;
  }
  // Same cursor sync as RunUntil. Every remaining pending event has
  // when >= t: wheel/overflow entries keep slot0 >= cursor_, and any due-heap
  // entry at exactly t already satisfied slot0 < cursor_ before the bump.
  cursor_ = std::max(cursor_, SlotOf(now_, 0));
}

void EventQueue::RunFor(Duration d) { RunUntil(now_ + d); }

TimePoint EventQueue::NextEventTime() {
  if (!FillDue()) {
    return TimePoint::Max();
  }
  return due_.top().when;
}

EventQueue::Stats EventQueue::GetStats() const {
  Stats s;
  s.scheduled = scheduled_;
  s.executed = executed_;
  s.cancelled = cancelled_;
  s.pending = live_count_;
  for (int level = 0; level < kLevels; ++level) {
    s.wheel_live[level] = level_refs_[level];
  }
  s.due_size = due_.size();
  s.overflow_size = overflow_.size();
  return s;
}

size_t EventQueue::RunAll(size_t max_events) {
  size_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
  return n;
}

}  // namespace fuse
