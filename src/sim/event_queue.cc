#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace fuse {

TimerId EventQueue::ScheduleAt(TimePoint t, EventFn fn) {
  if (t < now_) {
    t = now_;
  }
  const uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq, std::move(fn)});
  ++live_count_;
  return TimerId(seq);
}

TimerId EventQueue::ScheduleAfter(Duration d, EventFn fn) {
  if (d < Duration::Zero()) {
    d = Duration::Zero();
  }
  return ScheduleAt(now_ + d, std::move(fn));
}

bool EventQueue::Cancel(TimerId id) {
  if (!id.valid()) {
    return false;
  }
  // We cannot know cheaply whether the id is still pending; track it in the
  // cancelled set and reconcile at pop time. Guard against double-cancel by
  // checking membership first.
  if (cancelled_.contains(id.value)) {
    return false;
  }
  // Ids from the future (never issued) are rejected.
  if (id.value >= next_seq_) {
    return false;
  }
  cancelled_.insert(id.value);
  if (live_count_ > 0) {
    --live_count_;
  }
  return true;
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

void EventQueue::PopAndRun() {
  // Move the entry out before popping so the callback may schedule/cancel.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  FUSE_CHECK(e.when >= now_) << "event queue time went backwards";
  now_ = e.when;
  --live_count_;
  ++executed_;
  e.fn();
}

bool EventQueue::RunOne() {
  SkimCancelled();
  if (heap_.empty()) {
    return false;
  }
  PopAndRun();
  return true;
}

void EventQueue::RunUntil(TimePoint t) {
  while (true) {
    SkimCancelled();
    if (heap_.empty() || heap_.top().when > t) {
      break;
    }
    PopAndRun();
  }
  if (now_ < t) {
    now_ = t;
  }
}

void EventQueue::RunFor(Duration d) { RunUntil(now_ + d); }

size_t EventQueue::RunAll(size_t max_events) {
  size_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
  return n;
}

}  // namespace fuse
