// First-class RAII timer handles over Environment::Schedule/Cancel.
//
// Raw TimerIds force every protocol layer to repeat the same bookkeeping:
// cancel-before-rearm, clear-after-fire, cancel-everything-on-teardown. Timer
// and PeriodicTimer own that lifecycle instead:
//
//   * auto-cancel on destruction — dropping the owning struct (a peer entry,
//     a group state) silently disarms its timers;
//   * rearm without reallocation — the callback is stored once in a shared
//     state block, and the closure handed to the event queue captures only
//     the shared_ptr, which UniqueFunction (common/function.h) stores
//     inline. Together with the event queue's pooled entries this makes the
//     steady-state ping load (arm timeout / cancel / rearm, per neighbor per
//     period) allocation-free;
//   * safe moves — the scheduled closure references the shared state, never
//     the handle, so handles can live in containers that relocate them.
//
// Thread-safety matches the underlying Environment convention: handles must
// be driven from the environment's event thread (the simulation loop, or
// LiveRuntime's loop thread).
#ifndef FUSE_SIM_TIMER_H_
#define FUSE_SIM_TIMER_H_

#include <functional>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "sim/environment.h"

namespace fuse {

// One-shot timer. Start sets the callback and arms; Restart rearms with the
// existing callback (the allocation-free steady-state path); Cancel disarms.
// A pending timer that is restarted or cancelled will not fire.
class Timer {
 public:
  Timer() = default;
  explicit Timer(Environment& env) : env_(&env) {}
  ~Timer() { Cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  Timer(Timer&& other) noexcept
      : env_(other.env_), id_(other.id_), state_(std::move(other.state_)) {
    other.id_ = TimerId();
  }
  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      Cancel();
      env_ = other.env_;
      id_ = other.id_;
      state_ = std::move(other.state_);
      other.id_ = TimerId();
    }
    return *this;
  }

  // Binds a default-constructed handle to its environment. Idempotent; must
  // not change the environment while the timer is pending.
  void Bind(Environment& env) {
    FUSE_CHECK(env_ == nullptr || env_ == &env || !pending()) << "rebinding a pending timer";
    env_ = &env;
  }

  // Sets (or replaces) the callback without arming.
  void SetCallback(std::function<void()> fn) {
    EnsureState();
    state_->fn = std::move(fn);
  }

  // Sets the callback and arms the timer, replacing any pending fire.
  void Start(Duration d, std::function<void()> fn) {
    SetCallback(std::move(fn));
    Restart(d);
  }

  // Rearms with the callback from the last Start/SetCallback. Note: inside
  // the timer's own callback the stored function is temporarily consumed, so
  // self-rearming callbacks must use Start (or SetCallback + Restart), not
  // bare Restart.
  void Restart(Duration d) {
    FUSE_CHECK(env_ != nullptr) << "timer not bound to an environment";
    FUSE_CHECK(state_ != nullptr && state_->fn != nullptr) << "timer has no callback";
    Cancel();
    state_->pending = true;
    // Captures one shared_ptr (16 bytes): stored inline by UniqueFunction,
    // so arming allocates nothing.
    id_ = env_->Schedule(d, [s = state_] {
      if (!s->pending) {
        return;  // raced with a cancel the queue could not see (live runtime)
      }
      s->pending = false;
      // Run the callback from a local so it may safely replace itself (via
      // Start/SetCallback); restore it afterwards unless it did.
      std::function<void()> fn = std::move(s->fn);
      fn();
      if (s->fn == nullptr) {
        s->fn = std::move(fn);
      }
    });
  }

  // Disarms. Returns true if a pending fire was cancelled.
  bool Cancel() {
    if (!pending()) {
      return false;
    }
    state_->pending = false;
    env_->Cancel(id_);
    id_ = TimerId();
    return true;
  }

  bool pending() const { return state_ != nullptr && state_->pending; }
  bool has_callback() const { return state_ != nullptr && state_->fn != nullptr; }

 private:
  struct State {
    std::function<void()> fn;
    bool pending = false;
  };

  void EnsureState() {
    if (state_ == nullptr) {
      state_ = std::make_shared<State>();
    }
  }

  Environment* env_ = nullptr;
  TimerId id_;
  std::shared_ptr<State> state_;
};

// Fixed-period repeating timer. The callback runs once per period after the
// initial delay; it is rearmed before it is invoked, so the callback may call
// Stop() (or destroy the handle) to end the cycle.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  explicit PeriodicTimer(Environment& env) : env_(&env) {}
  ~PeriodicTimer() { Stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  PeriodicTimer(PeriodicTimer&& other) noexcept
      : env_(other.env_), state_(std::move(other.state_)) {}
  PeriodicTimer& operator=(PeriodicTimer&& other) noexcept {
    if (this != &other) {
      Stop();
      env_ = other.env_;
      state_ = std::move(other.state_);
    }
    return *this;
  }

  void Bind(Environment& env) {
    FUSE_CHECK(env_ == nullptr || env_ == &env || !running()) << "rebinding a running timer";
    env_ = &env;
  }

  // Fires first after `initial_delay` (use a jittered phase to spread load),
  // then every `period`. Replaces any previous cycle.
  void Start(Duration initial_delay, Duration period, std::function<void()> fn) {
    FUSE_CHECK(env_ != nullptr) << "timer not bound to an environment";
    Stop();
    state_ = std::make_shared<State>();
    state_->env = env_;
    state_->period = period;
    state_->fn = std::move(fn);
    state_->running = true;
    Arm(state_, initial_delay);
  }

  // Convenience: first fire after one full period.
  void Start(Duration period, std::function<void()> fn) {
    Start(period, period, std::move(fn));
  }

  void Stop() {
    if (!running()) {
      return;
    }
    state_->running = false;
    state_->env->Cancel(state_->id);
    state_.reset();
  }

  bool running() const { return state_ != nullptr && state_->running; }

 private:
  struct State {
    Environment* env = nullptr;
    Duration period;
    std::function<void()> fn;
    bool running = false;
    TimerId id;
  };

  static void Arm(const std::shared_ptr<State>& s, Duration d) {
    // Same shared_ptr-only capture as Timer: rearming each cycle is
    // allocation-free.
    s->id = s->env->Schedule(d, [s] {
      if (!s->running) {
        return;
      }
      Arm(s, s->period);  // rearm first so fn may Stop() or re-Start()
      s->fn();
    });
  }

  Environment* env_ = nullptr;
  std::shared_ptr<State> state_;
};

}  // namespace fuse

#endif  // FUSE_SIM_TIMER_H_
