#include "sim/shard.h"

namespace fuse {

namespace {
thread_local Shard* tls_current_shard = nullptr;
}  // namespace

Shard* Shard::Current() { return tls_current_shard; }

Shard::Shard(uint32_t index, uint64_t seed, uint32_t num_shards)
    : index_(index),
      num_shards_(num_shards),
      // Per-shard stream: a splitmix-style mix of the run seed and the shard
      // index, so the stream depends only on (seed, shard count layout) — not
      // on which worker thread happens to execute the shard.
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (uint64_t{index} + 1))),
      outboxes_(num_shards) {}

void Shard::RunEpoch(TimePoint end, bool inclusive) {
  Shard* const prev = tls_current_shard;
  tls_current_shard = this;
  if (inclusive) {
    queue_.RunUntil(end);
  } else {
    queue_.RunUntilBefore(end);
  }
  tls_current_shard = prev;
}

}  // namespace fuse
