// Simulation: the top-level owner of the event queue, the master RNG, and the
// metrics registry for one experiment run.
#ifndef FUSE_SIM_SIMULATION_H_
#define FUSE_SIM_SIMULATION_H_

#include <functional>
#include <memory>

#include "common/metrics.h"
#include "common/rng.h"
#include "sim/environment.h"
#include "sim/event_queue.h"

namespace fuse {

class Simulation : public Environment {
 public:
  explicit Simulation(uint64_t seed) : rng_(seed) {}

  // Environment implementation.
  TimePoint Now() const override { return queue_.Now(); }
  TimerId Schedule(Duration d, UniqueFunction fn) override {
    return queue_.ScheduleAfter(d, std::move(fn));
  }
  bool Cancel(TimerId id) override { return queue_.Cancel(id); }
  Rng& rng() override { return rng_; }
  Metrics& metrics() override { return metrics_; }

  EventQueue& queue() { return queue_; }

  void RunFor(Duration d) { queue_.RunFor(d); }
  void RunUntil(TimePoint t) { queue_.RunUntil(t); }
  size_t RunAll(size_t max_events = SIZE_MAX) { return queue_.RunAll(max_events); }

  // Runs until `pred` is true or `deadline` passes; returns pred's final value.
  // Useful for "block until operation completes" patterns in tests.
  bool RunUntilCondition(const std::function<bool()>& pred, TimePoint deadline);

 private:
  EventQueue queue_;
  Rng rng_;
  Metrics metrics_;
};

}  // namespace fuse

#endif  // FUSE_SIM_SIMULATION_H_
