#include "sim/sharded_sim.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fuse {

namespace {
// Floor lookahead: two co-located hosts (same router) are one 200us hop
// apart — the minimum any topology placement can produce (topology.cc,
// GetPath's same-router case).
constexpr Duration kMinLookahead = Duration::Micros(200);
}  // namespace

ShardedSim::ShardedSim(uint64_t seed, uint32_t num_shards, int threads)
    : control_rng_(seed), lookahead_(kMinLookahead), now_(TimePoint::Zero()) {
  FUSE_CHECK(num_shards >= 1) << "need at least one shard";
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, seed, num_shards));
  }
  int workers = threads;
  if (workers > static_cast<int>(num_shards)) {
    workers = static_cast<int>(num_shards);
  }
  if (workers <= 1) {
    workers = 0;  // run shards inline on the control thread
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ShardedSim::~ShardedSim() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

Metrics& ShardedSim::metrics() {
  // Aggregate-on-read: message accounting happens on shard metrics (hosts
  // write through their shard environment); nothing in the control plane
  // increments, so rebuilding the aggregate here is safe.
  aggregate_metrics_.Reset();
  for (auto& s : shards_) {
    aggregate_metrics_.AddFrom(s->metrics());
  }
  return aggregate_metrics_;
}

void ShardedSim::SetLookahead(Duration l) {
  FUSE_CHECK(!lookahead_frozen_ || l <= lookahead_)
      << "lookahead may only shrink once the sim has run";
  if (l < kMinLookahead) {
    l = kMinLookahead;
  }
  lookahead_ = l;
}

void ShardedSim::WorkerLoop() {
  uint64_t seen_gen = 0;
  for (;;) {
    TimePoint target;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_gen_ != seen_gen; });
      if (shutdown_) {
        return;
      }
      seen_gen = epoch_gen_;
      target = epoch_target_;
      inclusive = epoch_inclusive_;
    }
    for (;;) {
      const uint32_t i = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards_.size()) {
        break;
      }
      shards_[i]->RunEpoch(target, inclusive);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++workers_done_ == workers_.size()) {
        done_cv_.notify_one();
      }
    }
  }
}

void ShardedSim::RunShards(TimePoint end, bool inclusive) {
  if (workers_.empty()) {
    for (auto& s : shards_) {
      s->RunEpoch(end, inclusive);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_target_ = end;
    epoch_inclusive_ = inclusive;
    next_shard_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    ++epoch_gen_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
  }
}

void ShardedSim::InjectOutboxes(TimePoint barrier) {
  merge_scratch_.clear();
  for (uint32_t src = 0; src < shards_.size(); ++src) {
    for (uint32_t dst = 0; dst < shards_.size(); ++dst) {
      auto& box = shards_[src]->outbox(dst);
      for (auto& m : box) {
        FUSE_CHECK(m.deliver_at >= barrier)
            << "cross-shard message violates the lookahead barrier";
        merge_scratch_.push_back(MergeEntry{m.deliver_at, src, m.seq, dst, std::move(m.fn)});
      }
      box.clear();
    }
  }
  if (merge_scratch_.empty()) {
    return;
  }
  // Canonical injection order: destination queues assign insertion sequence
  // numbers in this order, so ties at one (queue, time) always resolve the
  // same way regardless of which worker produced the message first.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const MergeEntry& a, const MergeEntry& b) {
              if (a.deliver_at != b.deliver_at) {
                return a.deliver_at < b.deliver_at;
              }
              if (a.src_shard != b.src_shard) {
                return a.src_shard < b.src_shard;
              }
              return a.seq < b.seq;
            });
  for (auto& e : merge_scratch_) {
    shards_[e.dst_shard]->queue().ScheduleAt(e.deliver_at, std::move(e.fn));
  }
  merge_scratch_.clear();
}

bool ShardedSim::RunDeferredUpcalls() {
  upcall_scratch_.clear();
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->HasDeferred()) {
      continue;
    }
    for (auto& d : shards_[i]->TakeDeferred()) {
      upcall_scratch_.push_back(UpcallEntry{d.when, i, d.seq, std::move(d.fn)});
    }
  }
  if (upcall_scratch_.empty()) {
    return false;
  }
  std::sort(upcall_scratch_.begin(), upcall_scratch_.end(),
            [](const UpcallEntry& a, const UpcallEntry& b) {
              if (a.when != b.when) {
                return a.when < b.when;
              }
              if (a.shard != b.shard) {
                return a.shard < b.shard;
              }
              return a.seq < b.seq;
            });
  // Replayed upcalls run in barrier context (Current() == nullptr): they may
  // freely touch harness state, schedule control events, or send — sends land
  // in outboxes for the follow-up injection pass.
  std::vector<UpcallEntry> batch = std::move(upcall_scratch_);
  upcall_scratch_.clear();
  for (auto& u : batch) {
    u.fn();
  }
  return true;
}

void ShardedSim::DrainBarrier(TimePoint t) {
  // Control clock keeps pace with the shard clocks so barrier-context code
  // (upcalls, control events) reads a current Now(). Executes nothing: every
  // pending control event is at >= t by construction of the epoch bound.
  control_queue_.RunUntilBefore(t);
  now_ = t;
  InjectOutboxes(t);
  if (RunDeferredUpcalls()) {
    // Upcalls may have produced sends of their own; inject them too. Their
    // delivery times are >= t + network latency > t.
    InjectOutboxes(t);
  }
}

bool ShardedSim::RunCore(const std::function<bool()>& pred, TimePoint deadline) {
  lookahead_frozen_ = true;
  for (;;) {
    if (pred && pred()) {
      return true;
    }
    const TimePoint t_ctrl = control_queue_.NextEventTime();
    TimePoint t_shard = TimePoint::Max();
    for (auto& s : shards_) {
      const TimePoint t = s->NextEventTime();
      if (t < t_shard) {
        t_shard = t;
      }
    }
    if (std::min(t_ctrl, t_shard) > deadline) {
      // Nothing left within the horizon: park every clock at the deadline.
      RunShards(deadline, /*inclusive=*/false);
      DrainBarrier(deadline);
      control_queue_.RunUntil(deadline);
      return pred ? pred() : true;
    }
    if (t_ctrl <= t_shard) {
      // Control events lead at this timestamp. Advance the shard clocks so
      // the control action observes a consistent snapshot (no shard events
      // exist before t_ctrl), then run the control batch with workers parked.
      RunShards(t_ctrl, /*inclusive=*/false);
      now_ = t_ctrl;
      control_queue_.RunUntil(t_ctrl);
      InjectOutboxes(t_ctrl);
      if (RunDeferredUpcalls()) {
        InjectOutboxes(t_ctrl);
      }
      continue;
    }
    // Parallel epoch. Fast-forward its start to the earliest pending event
    // and bound it by the lookahead, the next control event, and the horizon.
    TimePoint end = t_shard + lookahead_;
    if (t_ctrl < end) {
      end = t_ctrl;
    }
    if (end > deadline) {
      // Final stretch: run inclusively to the deadline. Safe because every
      // message sent at >= t_shard arrives >= t_shard + lookahead > deadline.
      RunShards(deadline, /*inclusive=*/true);
      DrainBarrier(deadline);
      continue;  // upcalls may have scheduled control work at <= deadline
    }
    RunShards(end, /*inclusive=*/false);
    DrainBarrier(end);
  }
}

void ShardedSim::RunUntil(TimePoint t) {
  if (t < now_) {
    return;
  }
  RunCore(nullptr, t);
}

bool ShardedSim::RunUntilCondition(const std::function<bool()>& pred, TimePoint deadline) {
  return RunCore(pred, deadline);
}

uint64_t ShardedSim::TotalExecuted() const {
  uint64_t total = control_queue_.ExecutedCount();
  for (const auto& s : shards_) {
    total += s->queue().ExecutedCount();
  }
  return total;
}

size_t ShardedSim::TotalPending() const {
  size_t total = control_queue_.PendingCount();
  for (const auto& s : shards_) {
    total += s->queue().PendingCount();
  }
  return total;
}

EventQueue::Stats ShardedSim::AggregateQueueStats() const {
  EventQueue::Stats agg = control_queue_.GetStats();
  for (const auto& s : shards_) {
    const EventQueue::Stats st = s->queue().GetStats();
    agg.scheduled += st.scheduled;
    agg.executed += st.executed;
    agg.cancelled += st.cancelled;
    agg.pending += st.pending;
    for (int level = 0; level < 3; ++level) {
      agg.wheel_live[level] += st.wheel_live[level];
    }
    agg.due_size += st.due_size;
    agg.overflow_size += st.overflow_size;
  }
  return agg;
}

}  // namespace fuse
