// Environment: the capability surface node-level code (overlay, FUSE,
// applications) is written against. The discrete-event simulator and the live
// (wall-clock, threaded) runtime both implement it — mirroring the paper's
// "identical code base except for the base messaging layer".
#ifndef FUSE_SIM_ENVIRONMENT_H_
#define FUSE_SIM_ENVIRONMENT_H_

#include "common/function.h"
#include "common/ids.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/time.h"

namespace fuse {

class Environment {
 public:
  virtual ~Environment() = default;

  virtual TimePoint Now() const = 0;

  // Schedules `fn` to run after `d`. The returned id can cancel it.
  // UniqueFunction keeps small captures inline, so scheduling a typical
  // protocol closure does not allocate.
  virtual TimerId Schedule(Duration d, UniqueFunction fn) = 0;
  virtual bool Cancel(TimerId id) = 0;

  // Source of all randomness for code running in this environment.
  virtual Rng& rng() = 0;

  // Global message accounting.
  virtual Metrics& metrics() = 0;
};

}  // namespace fuse

#endif  // FUSE_SIM_ENVIRONMENT_H_
