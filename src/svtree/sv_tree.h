// Subscriber/Volunteer (SV) trees: the scalable event delivery application
// FUSE was invented for (paper section 4; Herald project).
//
// An SV tree routes content around non-interested overlay nodes: a subscriber
// routes its subscription toward the tree root along overlay (RPF) paths; the
// first *interested* node (root, established subscriber, or volunteer) on the
// path intercepts it and becomes the content parent, creating a direct
// content-forwarding link that bypasses the non-interested intermediate
// nodes.
//
// Failure handling is the paper's design pattern verbatim: each
// content-forwarding link is tied to one FUSE group whose members are the
// link endpoints plus the bypassed RPF nodes; failure notification garbage
// collects all related state and the subscriber re-subscribes under a new
// version stamp (version stamps keep late notifications from acting on new
// links). A voluntary leave explicitly signals the same FUSE groups a crash
// would have signalled.
#ifndef FUSE_SVTREE_SV_TREE_H_
#define FUSE_SVTREE_SV_TREE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "fuse/fuse_node.h"
#include "overlay/skipnet_node.h"
#include "transport/transport.h"

namespace fuse {

struct SvTreeConfig {
  Duration subscribe_timeout = Duration::Seconds(30);
  Duration resubscribe_delay = Duration::Seconds(2);
  int max_subscribe_attempts = 5;
};

class SvTreeNode {
 public:
  // Delivery callback: content published on `topic`.
  using ContentHandler =
      std::function<void(const std::string& topic, uint64_t seq, const std::vector<uint8_t>&)>;

  // The overlay routed-message tag SV trees claim for subscriptions.
  static constexpr uint16_t kRoutedTag = 2;

  struct Stats {
    uint64_t content_received = 0;
    uint64_t content_forwarded = 0;
    uint64_t resubscribes = 0;
    uint64_t links_created = 0;
    uint64_t links_garbage_collected = 0;
    // Sizes (member count) of the FUSE groups created for our uplinks.
    std::vector<int> group_sizes;
  };

  SvTreeNode(Transport* transport, SkipNetNode* overlay, FuseNode* fuse,
             SvTreeConfig config = SvTreeConfig());
  ~SvTreeNode();

  SvTreeNode(const SvTreeNode&) = delete;
  SvTreeNode& operator=(const SvTreeNode&) = delete;

  // --- root role ---
  // Declares this node the rendezvous root for `topic`.
  void CreateTopic(const std::string& topic);
  // Publishes to all current subscribers via the content-forwarding tree.
  void Publish(const std::string& topic, std::vector<uint8_t> data);

  // --- subscriber role ---
  // Subscribes; content arrives via `handler`. The tree root is identified
  // by its overlay node reference.
  void Subscribe(const std::string& topic, const NodeRef& root, ContentHandler handler);
  // Voluntary departure: signals the uplink FUSE group and the groups of any
  // children links through us (paper: leave == simulated failure).
  void Unsubscribe(const std::string& topic);
  // Volunteers forward content for topics they do not consume.
  void Volunteer(const std::string& topic, const NodeRef& root);

  bool IsSubscribed(const std::string& topic) const;
  bool HasUplink(const std::string& topic) const;
  size_t NumChildren(const std::string& topic) const;
  const Stats& stats() const { return stats_; }

  void Shutdown();

 private:
  struct ChildLink {
    NodeRef child;
    uint32_t version = 0;
    FuseId group;  // learned via LinkNotify; invalid until then
  };

  struct TopicState {
    bool is_root = false;
    bool is_volunteer = false;   // forwards but does not deliver
    NodeRef root;
    ContentHandler handler;

    // Uplink (towards the root); absent on the root itself.
    bool uplink_live = false;
    NodeRef parent;
    uint32_t version = 0;        // current subscription version stamp
    FuseId uplink_group;
    TimerId subscribe_timer;
    int subscribe_attempts = 0;

    // Downlinks (children we forward content to), keyed by child name.
    std::map<std::string, ChildLink> children;

    // Content dedup.
    std::set<uint64_t> seen_seqs;
  };

  bool OnSubscribeUpcall(SkipNetNode::RoutedUpcall& upcall);
  void OnSubscribeReply(const WireMessage& msg);
  void OnLinkNotify(const WireMessage& msg);
  void OnContent(const WireMessage& msg);

  void SendSubscribe(const std::string& topic);
  void ScheduleResubscribe(const std::string& topic);
  void EstablishUplink(const std::string& topic, TopicState& state, const NodeRef& parent,
                       uint32_t version, const std::vector<NodeRef>& bypassed);
  void ForwardContent(const std::string& topic, TopicState& state, uint64_t seq,
                      const std::vector<uint8_t>& data);
  bool Interested(const std::string& topic) const;

  Transport* transport_;
  SkipNetNode* overlay_;
  FuseNode* fuse_;
  SvTreeConfig config_;
  bool shutdown_ = false;
  std::unordered_map<std::string, TopicState> topics_;
  uint64_t next_pub_seq_ = 1;
  Stats stats_;
};

}  // namespace fuse

#endif  // FUSE_SVTREE_SV_TREE_H_
