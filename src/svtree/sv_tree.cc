#include "svtree/sv_tree.h"

#include <utility>

#include "common/logging.h"
#include "common/serialize.h"

namespace fuse {
namespace {

struct SubscribePayload {
  std::string topic;
  NodeRef subscriber;
  uint32_t version = 0;
  std::vector<NodeRef> bypassed;

  std::vector<uint8_t> Encode() const {
    Writer w;
    w.PutString(topic);
    WriteNodeRef(w, subscriber);
    w.PutU32(version);
    w.PutU32(static_cast<uint32_t>(bypassed.size()));
    for (const auto& b : bypassed) {
      WriteNodeRef(w, b);
    }
    return w.Take();
  }

  static bool Decode(const std::vector<uint8_t>& bytes, SubscribePayload* out) {
    Reader r(bytes);
    out->topic = r.GetString();
    out->subscriber = ReadNodeRef(r);
    out->version = r.GetU32();
    const uint32_t n = r.GetU32();
    out->bypassed.clear();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      out->bypassed.push_back(ReadNodeRef(r));
    }
    return r.ok();
  }
};

}  // namespace

SvTreeNode::SvTreeNode(Transport* transport, SkipNetNode* overlay, FuseNode* fuse,
                       SvTreeConfig config)
    : transport_(transport), overlay_(overlay), fuse_(fuse), config_(config) {
  overlay_->SetRoutedHandler(
      kRoutedTag, [this](SkipNetNode::RoutedUpcall& u) { return OnSubscribeUpcall(u); });
  transport_->RegisterHandler(msgtype::kSvSubscribeReply,
                              [this](const WireMessage& m) { OnSubscribeReply(m); });
  transport_->RegisterHandler(msgtype::kSvContent,
                              [this](const WireMessage& m) { OnContent(m); });
  transport_->RegisterHandler(msgtype::kSvSubscribe,  // used for LinkNotify
                              [this](const WireMessage& m) { OnLinkNotify(m); });
}

SvTreeNode::~SvTreeNode() { Shutdown(); }

void SvTreeNode::Shutdown() {
  if (shutdown_) {
    return;
  }
  shutdown_ = true;
  for (auto& [topic, state] : topics_) {
    if (state.subscribe_timer.valid()) {
      transport_->env().Cancel(state.subscribe_timer);
    }
  }
  topics_.clear();
}

bool SvTreeNode::Interested(const std::string& topic) const {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return false;
  }
  return it->second.is_root || it->second.uplink_live;
}

bool SvTreeNode::IsSubscribed(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it != topics_.end() && !it->second.is_root && !it->second.is_volunteer;
}

bool SvTreeNode::HasUplink(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it != topics_.end() && it->second.uplink_live;
}

size_t SvTreeNode::NumChildren(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.children.size();
}

// ---------------------------------------------------------------------------
// Roles.
// ---------------------------------------------------------------------------

void SvTreeNode::CreateTopic(const std::string& topic) {
  TopicState& state = topics_[topic];
  state.is_root = true;
  state.root = overlay_->self();
}

void SvTreeNode::Subscribe(const std::string& topic, const NodeRef& root,
                           ContentHandler handler) {
  TopicState& state = topics_[topic];
  if (state.is_root) {
    return;  // the root implicitly receives everything it publishes
  }
  state.root = root;
  state.handler = std::move(handler);
  state.is_volunteer = false;
  if (state.uplink_live) {
    return;  // already linked (e.g. was a volunteer before)
  }
  state.version++;
  state.subscribe_attempts = 0;
  SendSubscribe(topic);
}

void SvTreeNode::Volunteer(const std::string& topic, const NodeRef& root) {
  TopicState& state = topics_[topic];
  if (state.is_root || state.uplink_live) {
    state.is_volunteer = !state.is_root;
    return;
  }
  state.root = root;
  state.is_volunteer = true;
  state.handler = nullptr;
  state.version++;
  state.subscribe_attempts = 0;
  SendSubscribe(topic);
}

void SvTreeNode::Unsubscribe(const std::string& topic) {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return;
  }
  // Collect the FUSE groups tied to our links, *then* drop the topic state,
  // then signal: our own failure handlers find no state and do nothing, while
  // parents and children garbage collect and re-route around us (paper 4:
  // voluntary leave signals the group that a failure would have signalled).
  std::vector<FuseId> to_signal;
  if (it->second.uplink_live && it->second.uplink_group.valid()) {
    to_signal.push_back(it->second.uplink_group);
  }
  for (const auto& [name, child] : it->second.children) {
    if (child.group.valid()) {
      to_signal.push_back(child.group);
    }
  }
  if (it->second.subscribe_timer.valid()) {
    transport_->env().Cancel(it->second.subscribe_timer);
  }
  topics_.erase(it);
  for (const FuseId& id : to_signal) {
    fuse_->SignalFailure(id);
  }
}

// ---------------------------------------------------------------------------
// Subscription path.
// ---------------------------------------------------------------------------

void SvTreeNode::SendSubscribe(const std::string& topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end() || shutdown_) {
    return;
  }
  TopicState& state = it->second;
  if (state.subscribe_attempts >= config_.max_subscribe_attempts) {
    return;  // give up; the application may retry with a fresh Subscribe
  }
  state.subscribe_attempts++;

  SubscribePayload payload;
  payload.topic = topic;
  payload.subscriber = overlay_->self();
  payload.version = state.version;
  overlay_->RouteByName(state.root.name, kRoutedTag, payload.Encode(), MsgCategory::kApp);

  if (state.subscribe_timer.valid()) {
    transport_->env().Cancel(state.subscribe_timer);
  }
  state.subscribe_timer =
      transport_->env().Schedule(config_.subscribe_timeout, [this, topic = topic] {
        auto sit = topics_.find(topic);
        if (sit != topics_.end()) {
          sit->second.subscribe_timer = TimerId();
          if (!sit->second.uplink_live) {
            SendSubscribe(topic);
          }
        }
      });
}

bool SvTreeNode::OnSubscribeUpcall(SkipNetNode::RoutedUpcall& upcall) {
  if (shutdown_) {
    return false;
  }
  SubscribePayload payload;
  if (!SubscribePayload::Decode(upcall.payload, &payload)) {
    return false;
  }
  if (payload.subscriber.host == transport_->local_host()) {
    return false;  // our own subscription leaving: just forward
  }
  if (Interested(payload.topic)) {
    // Intercept: we become the content parent; the subscriber learns the
    // bypassed RPF nodes so it can tie them into the link's FUSE group.
    Writer w;
    w.PutString(payload.topic);
    w.PutU32(payload.version);
    WriteNodeRef(w, overlay_->self());
    w.PutU32(static_cast<uint32_t>(payload.bypassed.size()));
    for (const auto& b : payload.bypassed) {
      WriteNodeRef(w, b);
    }
    WireMessage reply;
    reply.to = payload.subscriber.host;
    reply.type = msgtype::kSvSubscribeReply;
    reply.category = MsgCategory::kApp;
    reply.payload = w.Take();
    transport_->Send(std::move(reply), nullptr);
    return true;  // consumed: the subscription stops here
  }
  // Not interested: we are a bypassed RPF node; record ourselves into the
  // payload so the eventual content link fate-shares with us.
  payload.bypassed.push_back(overlay_->self());
  upcall.payload = payload.Encode();
  return false;
}

void SvTreeNode::OnSubscribeReply(const WireMessage& msg) {
  Reader r(msg.payload);
  const std::string topic = r.GetString();
  const uint32_t version = r.GetU32();
  const NodeRef parent = ReadNodeRef(r);
  const uint32_t n = r.GetU32();
  std::vector<NodeRef> bypassed;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    bypassed.push_back(ReadNodeRef(r));
  }
  if (!r.ok()) {
    return;
  }
  auto it = topics_.find(topic);
  if (it == topics_.end() || it->second.version != version || it->second.uplink_live) {
    return;  // stale reply (old version stamp) — paper 3.3/4 race handling
  }
  EstablishUplink(topic, it->second, parent, version, bypassed);
}

void SvTreeNode::EstablishUplink(const std::string& topic, TopicState& state,
                                 const NodeRef& parent, uint32_t version,
                                 const std::vector<NodeRef>& bypassed) {
  if (state.subscribe_timer.valid()) {
    transport_->env().Cancel(state.subscribe_timer);
    state.subscribe_timer = TimerId();
  }
  // One FUSE group ties together the content link endpoints and the bypassed
  // RPF nodes (paper section 4).
  std::vector<NodeRef> members;
  members.push_back(parent);
  for (const auto& b : bypassed) {
    members.push_back(b);
  }
  fuse_->CreateGroup(
      members, [this, topic, parent, version, size = members.size() + 1](const Status& s,
                                                                         FuseId id) {
        auto it = topics_.find(topic);
        if (it == topics_.end() || it->second.version != version) {
          // The world moved on while the group was being created; if the
          // group came up, tear it down so no state is orphaned.
          if (s.ok()) {
            fuse_->SignalFailure(id);
          }
          return;
        }
        TopicState& st = it->second;
        if (!s.ok()) {
          st.version++;
          st.subscribe_attempts = 0;
          ScheduleResubscribe(topic);
          return;
        }
        st.uplink_live = true;
        st.parent = parent;
        st.uplink_group = id;
        stats_.links_created++;
        stats_.group_sizes.push_back(static_cast<int>(size));
        fuse_->RegisterFailureHandler(id, [this, topic, version](FuseId) {
          auto tit = topics_.find(topic);
          if (tit == topics_.end() || tit->second.version != version) {
            return;  // stale notification: a newer link exists (version stamp)
          }
          TopicState& ts = tit->second;
          ts.uplink_live = false;
          ts.uplink_group = FuseId();
          stats_.links_garbage_collected++;
          stats_.resubscribes++;
          ts.version++;
          ts.subscribe_attempts = 0;
          ScheduleResubscribe(topic);
        });
        // Tell the parent which FUSE group guards this link so it can tie
        // its child state to the same fate.
        Writer w;
        w.PutString(topic);
        w.PutU32(version);
        WriteNodeRef(w, overlay_->self());
        WriteFuseId(w, id);
        WireMessage notify;
        notify.to = parent.host;
        notify.type = msgtype::kSvSubscribe;
        notify.category = MsgCategory::kApp;
        notify.payload = w.Take();
        transport_->Send(std::move(notify), nullptr);
      });
}

void SvTreeNode::ScheduleResubscribe(const std::string& topic) {
  if (shutdown_) {
    return;
  }
  const Duration jitter =
      Duration::Micros(transport_->env().rng().UniformInt(0, 1000000));
  transport_->env().Schedule(config_.resubscribe_delay + jitter, [this, topic = topic] {
    auto it = topics_.find(topic);
    if (it != topics_.end() && !it->second.uplink_live && !it->second.is_root) {
      SendSubscribe(topic);
    }
  });
}

void SvTreeNode::OnLinkNotify(const WireMessage& msg) {
  Reader r(msg.payload);
  const std::string topic = r.GetString();
  const uint32_t version = r.GetU32();
  const NodeRef child = ReadNodeRef(r);
  const FuseId id = ReadFuseId(r);
  if (!r.ok()) {
    return;
  }
  auto it = topics_.find(topic);
  if (it == topics_.end() || !Interested(topic)) {
    // We are no longer a valid parent (left between reply and notify):
    // fail the link so the child re-routes.
    fuse_->SignalFailure(id);
    return;
  }
  ChildLink link;
  link.child = child;
  link.version = version;
  link.group = id;
  it->second.children[child.name] = link;
  fuse_->RegisterFailureHandler(id, [this, topic, name = child.name, version](FuseId) {
    auto tit = topics_.find(topic);
    if (tit == topics_.end()) {
      return;
    }
    const auto cit = tit->second.children.find(name);
    if (cit != tit->second.children.end() && cit->second.version == version) {
      tit->second.children.erase(cit);
      stats_.links_garbage_collected++;
    }
  });
}

// ---------------------------------------------------------------------------
// Content path.
// ---------------------------------------------------------------------------

void SvTreeNode::Publish(const std::string& topic, std::vector<uint8_t> data) {
  auto it = topics_.find(topic);
  FUSE_CHECK(it != topics_.end() && it->second.is_root) << "Publish on a non-root node";
  const uint64_t seq = next_pub_seq_++;
  it->second.seen_seqs.insert(seq);
  ForwardContent(topic, it->second, seq, data);
}

void SvTreeNode::ForwardContent(const std::string& topic, TopicState& state, uint64_t seq,
                                const std::vector<uint8_t>& data) {
  for (const auto& [name, child] : state.children) {
    Writer w;
    w.PutString(topic);
    w.PutU64(seq);
    w.PutU32(static_cast<uint32_t>(data.size()));
    w.PutBytes(data.data(), data.size());
    WireMessage msg;
    msg.to = child.child.host;
    msg.type = msgtype::kSvContent;
    msg.category = MsgCategory::kApp;
    msg.payload = w.Take();
    transport_->Send(std::move(msg), nullptr);
    stats_.content_forwarded++;
  }
}

void SvTreeNode::OnContent(const WireMessage& msg) {
  Reader r(msg.payload);
  const std::string topic = r.GetString();
  const uint64_t seq = r.GetU64();
  const uint32_t len = r.GetU32();
  std::vector<uint8_t> data(len);
  r.GetBytes(data.data(), len);
  if (!r.ok()) {
    return;
  }
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return;
  }
  TopicState& state = it->second;
  if (!state.seen_seqs.insert(seq).second) {
    return;  // duplicate
  }
  if (state.handler && !state.is_volunteer) {
    stats_.content_received++;
    state.handler(topic, seq, data);
  }
  ForwardContent(topic, state, seq, data);
}

}  // namespace fuse
