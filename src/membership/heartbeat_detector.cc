#include "membership/heartbeat_detector.h"

namespace fuse {

// Heartbeats reuse the SWIM ping wire type with a zero seq: the payload is a
// single sentinel byte so the two protocols cannot run on one transport at
// the same time (they never do; one detector per experiment).
HeartbeatDetector::HeartbeatDetector(Transport* transport, HeartbeatConfig config)
    : transport_(transport), config_(config) {
  transport_->RegisterHandler(msgtype::kSwimPing,
                              [this](const WireMessage& m) { OnHeartbeat(m); });
  send_timer_.Bind(transport_->env());
}

HeartbeatDetector::~HeartbeatDetector() { Stop(); }

void HeartbeatDetector::Start(const std::vector<HostId>& peers) {
  Environment& env = transport_->env();
  for (HostId p : peers) {
    if (p != transport_->local_host()) {
      auto [it, inserted] = peers_.emplace(p, Peer(env));
      it->second.timeout_timer.SetCallback([this, p] {
        auto& pp = peers_.at(p);
        if (pp.up) {
          pp.up = false;
          if (on_status_) {
            on_status_(p, false);
          }
        }
      });
    }
  }
  running_ = true;
  for (auto& [h, peer] : peers_) {
    peer.timeout_timer.Restart(config_.timeout);
  }
  const Duration phase = Duration::Micros(env.rng().UniformInt(0, config_.period.ToMicros()));
  send_timer_.Start(phase, config_.period, [this] { SendHeartbeats(); });
}

void HeartbeatDetector::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  send_timer_.Stop();
  for (auto& [h, peer] : peers_) {
    peer.timeout_timer.Cancel();
  }
}

bool HeartbeatDetector::IsUp(HostId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.up;
}

size_t HeartbeatDetector::NumUp() const {
  size_t n = 0;
  for (const auto& [h, p] : peers_) {
    if (p.up) {
      ++n;
    }
  }
  return n;
}

void HeartbeatDetector::SendHeartbeats() {
  if (!running_) {
    return;
  }
  for (const auto& [h, peer] : peers_) {
    WireMessage msg;
    msg.to = h;
    msg.type = msgtype::kSwimPing;
    msg.category = MsgCategory::kApp;
    msg.payload = {0x48};
    transport_->Send(std::move(msg), nullptr);
  }
}

void HeartbeatDetector::OnHeartbeat(const WireMessage& msg) {
  const auto it = peers_.find(msg.from);
  if (it == peers_.end()) {
    return;
  }
  if (!it->second.up) {
    it->second.up = true;
    if (on_status_) {
      on_status_(msg.from, true);
    }
  }
  it->second.timeout_timer.Restart(config_.timeout);
}

}  // namespace fuse
