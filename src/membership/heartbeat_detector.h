// All-to-all heartbeat unreliable failure detector (paper section 2): the
// weakest building block — periodic heartbeats, per-peer timeout, up/down
// callbacks. Used as an ablation baseline against FUSE's shared liveness
// checking and against SWIM's probe+gossip design.
#ifndef FUSE_MEMBERSHIP_HEARTBEAT_DETECTOR_H_
#define FUSE_MEMBERSHIP_HEARTBEAT_DETECTOR_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/timer.h"
#include "transport/transport.h"

namespace fuse {

struct HeartbeatConfig {
  Duration period = Duration::Seconds(5);
  Duration timeout = Duration::Seconds(15);
};

class HeartbeatDetector {
 public:
  using StatusHandler = std::function<void(HostId peer, bool up)>;

  HeartbeatDetector(Transport* transport, HeartbeatConfig config = HeartbeatConfig());
  ~HeartbeatDetector();

  HeartbeatDetector(const HeartbeatDetector&) = delete;
  HeartbeatDetector& operator=(const HeartbeatDetector&) = delete;

  void Start(const std::vector<HostId>& peers);
  void Stop();
  void SetStatusHandler(StatusHandler h) { on_status_ = std::move(h); }

  bool IsUp(HostId peer) const;
  size_t NumUp() const;

 private:
  struct Peer {
    explicit Peer(Environment& env) : timeout_timer(env) {}

    bool up = true;
    Timer timeout_timer;  // callback installed once; heartbeats just rearm
  };

  void SendHeartbeats();
  void OnHeartbeat(const WireMessage& msg);

  Transport* transport_;
  HeartbeatConfig config_;
  bool running_ = false;
  std::unordered_map<HostId, Peer> peers_;
  PeriodicTimer send_timer_;
  StatusHandler on_status_;
};

}  // namespace fuse

#endif  // FUSE_MEMBERSHIP_HEARTBEAT_DETECTOR_H_
