#include "membership/swim.h"

#include <algorithm>
#include <utility>

#include "common/serialize.h"

namespace fuse {
namespace {

// Ping / ack payload layout:
//   seq u64, subject u64 (probe target for ping-req; else self), gossip list.
// Gossip entry: subject u64, state u8, incarnation u32.

}  // namespace

SwimMember::SwimMember(Transport* transport, SwimConfig config)
    : transport_(transport), config_(config) {
  transport_->RegisterHandler(msgtype::kSwimPing, [this](const WireMessage& m) { OnPing(m); });
  transport_->RegisterHandler(msgtype::kSwimAck, [this](const WireMessage& m) { OnAck(m); });
  transport_->RegisterHandler(msgtype::kSwimPingReq,
                              [this](const WireMessage& m) { OnPingReq(m); });
  transport_->RegisterHandler(msgtype::kSwimPingReqAck,
                              [this](const WireMessage& m) { OnPingReqAck(m); });
}

SwimMember::~SwimMember() { Stop(); }

void SwimMember::Start(const std::vector<HostId>& peers) {
  Environment& env = transport_->env();
  for (HostId p : peers) {
    if (p != transport_->local_host()) {
      members_.emplace(p, Member(env));
      probe_order_.push_back(p);
    }
  }
  env.rng().Shuffle(probe_order_);
  running_ = true;
  tick_timer_.Bind(env);
  const Duration phase =
      Duration::Micros(env.rng().UniformInt(0, config_.protocol_period.ToMicros()));
  tick_timer_.Start(phase, config_.protocol_period, [this] { Tick(); });
}

void SwimMember::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  tick_timer_.Stop();
  probes_.clear();  // probe timers auto-cancel
  for (auto& [h, m] : members_) {
    m.suspicion_timer.Cancel();
  }
}

SwimMember::State SwimMember::StateOf(HostId h) const {
  const auto it = members_.find(h);
  return it == members_.end() ? State::kDead : it->second.state;
}

size_t SwimMember::NumAlive() const {
  size_t n = 0;
  for (const auto& [h, m] : members_) {
    if (m.state != State::kDead) {
      ++n;
    }
  }
  return n;
}

size_t SwimMember::NumDead() const { return members_.size() - NumAlive(); }

void SwimMember::QueueUpdate(HostId subject, State state, uint32_t incarnation) {
  gossip_.push_back(Update{subject, state, incarnation, config_.gossip_retransmits});
  while (gossip_.size() > 64) {
    gossip_.pop_front();
  }
}

void SwimMember::AppendGossip(Writer& w) {
  int count = 0;
  for (auto& u : gossip_) {
    if (u.remaining_sends <= 0) {
      continue;
    }
    if (++count > config_.gossip_fanout) {
      break;
    }
  }
  w.PutU8(static_cast<uint8_t>(std::min(count, config_.gossip_fanout)));
  int emitted = 0;
  for (auto& u : gossip_) {
    if (u.remaining_sends <= 0) {
      continue;
    }
    if (emitted >= config_.gossip_fanout) {
      break;
    }
    w.PutU64(u.subject.value);
    w.PutU8(static_cast<uint8_t>(u.state));
    w.PutU32(u.incarnation);
    u.remaining_sends--;
    ++emitted;
  }
  while (!gossip_.empty() && gossip_.front().remaining_sends <= 0) {
    gossip_.pop_front();
  }
}

void SwimMember::ConsumeGossip(Reader& r) {
  const uint8_t n = r.GetU8();
  for (uint8_t i = 0; i < n && r.ok(); ++i) {
    const HostId subject(r.GetU64());
    const State state = static_cast<State>(r.GetU8());
    const uint32_t incarnation = r.GetU32();
    if (!r.ok()) {
      return;
    }
    if (subject == transport_->local_host()) {
      // Someone suspects us: refute with a higher incarnation.
      if (state != State::kAlive && incarnation >= self_incarnation_) {
        self_incarnation_ = incarnation + 1;
        QueueUpdate(subject, State::kAlive, self_incarnation_);
      }
      continue;
    }
    switch (state) {
      case State::kAlive:
        MarkAlive(subject, incarnation);
        break;
      case State::kSuspect:
        Suspect(subject, incarnation);
        break;
      case State::kDead:
        DeclareDead(subject, incarnation);
        break;
    }
  }
}

std::vector<uint8_t> SwimMember::MakePingPayload(uint64_t seq, HostId subject) {
  Writer w;
  w.PutU64(seq);
  w.PutU64(subject.value);
  AppendGossip(w);
  return w.Take();
}

void SwimMember::Tick() {
  if (!running_) {
    return;
  }
  // Round-robin over a shuffled order (SWIM's bounded-time probing).
  HostId target;
  for (size_t i = 0; i < probe_order_.size(); ++i) {
    const HostId candidate = probe_order_[probe_cursor_];
    probe_cursor_ = (probe_cursor_ + 1) % probe_order_.size();
    if (probe_cursor_ == 0) {
      transport_->env().rng().Shuffle(probe_order_);
    }
    const auto it = members_.find(candidate);
    if (it != members_.end() && it->second.state != State::kDead) {
      target = candidate;
      break;
    }
  }
  if (!target.valid()) {
    return;
  }
  const uint64_t seq = next_seq_++;
  stats_.probes_sent++;
  Probe probe(transport_->env());
  probe.target = target;
  probe.direct_timer.Start(config_.direct_timeout, [this, seq] { ProbeTimedOut(seq); });
  // Verdict at the end of the protocol period (SWIM's bounded detection).
  probe.final_timer.Start(config_.protocol_period * int64_t{9} / int64_t{10},
                          [this, seq] { ProbeFinalCheck(seq); });
  probes_.emplace(seq, std::move(probe));

  WireMessage msg;
  msg.to = target;
  msg.type = msgtype::kSwimPing;
  msg.category = MsgCategory::kApp;
  msg.payload = MakePingPayload(seq, transport_->local_host());
  transport_->Send(std::move(msg), nullptr);
}

void SwimMember::ProbeTimedOut(uint64_t seq) {
  const auto it = probes_.find(seq);
  if (it == probes_.end() || it->second.acked) {
    return;
  }
  const HostId target = it->second.target;
  // Indirect probes via k random proxies.
  std::vector<HostId> proxies;
  for (const auto& [h, m] : members_) {
    if (h != target && m.state != State::kDead) {
      proxies.push_back(h);
    }
  }
  transport_->env().rng().Shuffle(proxies);
  if (proxies.size() > static_cast<size_t>(config_.indirect_k)) {
    proxies.resize(config_.indirect_k);
  }
  for (HostId proxy : proxies) {
    stats_.indirect_probes_sent++;
    WireMessage msg;
    msg.to = proxy;
    msg.type = msgtype::kSwimPingReq;
    msg.category = MsgCategory::kApp;
    msg.payload = MakePingPayload(seq, target);
    transport_->Send(std::move(msg), nullptr);
  }
}

void SwimMember::ProbeFinalCheck(uint64_t seq) {
  const auto it = probes_.find(seq);
  if (it == probes_.end()) {
    return;
  }
  const HostId target = it->second.target;
  const bool acked = it->second.acked;
  probes_.erase(it);  // remaining probe timers auto-cancel
  if (acked) {
    return;
  }
  const auto mit = members_.find(target);
  if (mit != members_.end()) {
    Suspect(target, mit->second.incarnation);
    QueueUpdate(target, State::kSuspect, mit->second.incarnation);
  }
}

void SwimMember::MarkProbeAcked(uint64_t seq, HostId subject) {
  const auto it = probes_.find(seq);
  if (it != probes_.end() && it->second.target == subject) {
    it->second.acked = true;
    it->second.direct_timer.Cancel();
  }
}

void SwimMember::OnPing(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  r.GetU64();  // subject (self)
  ConsumeGossip(r);
  Writer w;
  w.PutU64(seq);
  w.PutU64(transport_->local_host().value);
  AppendGossip(w);
  WireMessage ack;
  ack.to = msg.from;
  ack.type = msgtype::kSwimAck;
  ack.category = MsgCategory::kApp;
  ack.payload = w.Take();
  transport_->Send(std::move(ack), nullptr);
}

void SwimMember::OnAck(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  const HostId subject(r.GetU64());
  ConsumeGossip(r);
  if (!r.ok()) {
    return;
  }
  MarkProbeAcked(seq, msg.from);
  // If we probed this target for someone else, relay the ack.
  const auto rit = relay_waiting_.find(seq);
  if (rit != relay_waiting_.end()) {
    Writer w;
    w.PutU64(seq);
    w.PutU64(subject.value);
    AppendGossip(w);
    WireMessage relay;
    relay.to = rit->second;
    relay.type = msgtype::kSwimPingReqAck;
    relay.category = MsgCategory::kApp;
    relay.payload = w.Take();
    transport_->Send(std::move(relay), nullptr);
    relay_waiting_.erase(rit);
  }
  MarkAlive(subject, 0);
}

void SwimMember::OnPingReq(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  const HostId target(r.GetU64());
  ConsumeGossip(r);
  if (!r.ok() || !target.valid()) {
    return;
  }
  // Probe the target on the requester's behalf; relay any ack.
  const HostId requester = msg.from;
  Writer w;
  w.PutU64(seq);
  w.PutU64(target.value);
  AppendGossip(w);
  WireMessage probe;
  probe.to = target;
  probe.type = msgtype::kSwimPing;
  probe.category = MsgCategory::kApp;
  probe.payload = w.Take();
  // Relay the target's ack back to the requester once it arrives (OnAck).
  relay_waiting_[seq] = requester;
  transport_->Send(std::move(probe), nullptr);
}

void SwimMember::OnPingReqAck(const WireMessage& msg) {
  Reader r(msg.payload);
  const uint64_t seq = r.GetU64();
  const HostId subject(r.GetU64());
  ConsumeGossip(r);
  if (!r.ok()) {
    return;
  }
  MarkProbeAcked(seq, subject);
  MarkAlive(subject, 0);
}

void SwimMember::Suspect(HostId target, uint32_t incarnation) {
  const auto it = members_.find(target);
  if (it == members_.end()) {
    return;
  }
  Member& m = it->second;
  if (m.state != State::kAlive || incarnation < m.incarnation) {
    return;
  }
  m.state = State::kSuspect;
  m.incarnation = incarnation;
  m.suspicion_timer.Start(config_.suspicion_timeout, [this, target, incarnation] {
    DeclareDead(target, incarnation);
    QueueUpdate(target, State::kDead, incarnation);
  });
}

void SwimMember::DeclareDead(HostId target, uint32_t incarnation) {
  const auto it = members_.find(target);
  if (it == members_.end()) {
    return;
  }
  Member& m = it->second;
  if (m.state == State::kDead || incarnation < m.incarnation) {
    return;
  }
  m.state = State::kDead;
  m.incarnation = incarnation;
  m.suspicion_timer.Cancel();
  stats_.deaths_declared++;
  if (on_death_) {
    on_death_(target);
  }
}

void SwimMember::MarkAlive(HostId target, uint32_t incarnation) {
  const auto it = members_.find(target);
  if (it == members_.end()) {
    return;
  }
  Member& m = it->second;
  if (m.state == State::kDead) {
    return;  // deaths are sticky in our variant (rejoin would re-add)
  }
  if (m.state == State::kSuspect && incarnation >= m.incarnation) {
    m.state = State::kAlive;
    m.incarnation = incarnation;
    m.suspicion_timer.Cancel();
  }
}

}  // namespace fuse
