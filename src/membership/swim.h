// SWIM-style weakly consistent membership (Das et al., DSN 2002) — the
// related-work baseline the paper contrasts FUSE against (section 2).
//
// Periodic random probing with indirect probes through k proxies, a
// suspicion period before declaring death, and infection-style dissemination
// of membership updates piggybacked on protocol messages. Used by benches to
// demonstrate the semantic differences the paper argues: per-node up/down
// verdicts versus FUSE's per-group failure notification, and the awkwardness
// of intransitive connectivity failures under a membership abstraction.
#ifndef FUSE_MEMBERSHIP_SWIM_H_
#define FUSE_MEMBERSHIP_SWIM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "sim/timer.h"
#include "transport/transport.h"

namespace fuse {

struct SwimConfig {
  Duration protocol_period = Duration::Seconds(2);
  // Wait for a direct ack before falling back to indirect probes.
  Duration direct_timeout = Duration::Millis(800);
  int indirect_k = 3;
  // Suspicion duration before a suspect is declared dead.
  Duration suspicion_timeout = Duration::Seconds(8);
  // Max piggybacked updates per message.
  int gossip_fanout = 8;
  // How many times each update is retransmitted before it ages out.
  int gossip_retransmits = 6;
};

class SwimMember {
 public:
  enum class State : uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

  // Invoked when a peer transitions to dead (false positive or real).
  using DeathHandler = std::function<void(HostId)>;

  SwimMember(Transport* transport, SwimConfig config = SwimConfig());
  ~SwimMember();

  SwimMember(const SwimMember&) = delete;
  SwimMember& operator=(const SwimMember&) = delete;

  // Seeds the membership list and starts the protocol period.
  void Start(const std::vector<HostId>& peers);
  void Stop();

  void SetDeathHandler(DeathHandler h) { on_death_ = std::move(h); }

  State StateOf(HostId h) const;
  size_t NumAlive() const;
  size_t NumDead() const;

  struct Stats {
    uint64_t probes_sent = 0;
    uint64_t indirect_probes_sent = 0;
    uint64_t deaths_declared = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Member {
    explicit Member(Environment& env) : suspicion_timer(env) {}

    State state = State::kAlive;
    uint32_t incarnation = 0;
    Timer suspicion_timer;  // auto-cancelled when the member entry is dropped
  };
  struct Update {
    HostId subject;
    State state;
    uint32_t incarnation;
    int remaining_sends;
  };

  struct Probe {
    explicit Probe(Environment& env) : direct_timer(env), final_timer(env) {}

    HostId target;
    bool acked = false;
    Timer direct_timer;  // indirect-probe fallback
    Timer final_timer;   // end-of-period verdict; auto-cancelled on erase
  };

  void Tick();
  void OnPing(const WireMessage& msg);
  void OnAck(const WireMessage& msg);
  void OnPingReq(const WireMessage& msg);
  void OnPingReqAck(const WireMessage& msg);

  void MarkProbeAcked(uint64_t seq, HostId subject);
  void ProbeTimedOut(uint64_t seq);
  void ProbeFinalCheck(uint64_t seq);
  void Suspect(HostId target, uint32_t incarnation);
  void DeclareDead(HostId target, uint32_t incarnation);
  void MarkAlive(HostId target, uint32_t incarnation);

  void QueueUpdate(HostId subject, State state, uint32_t incarnation);
  void AppendGossip(Writer& w);
  void ConsumeGossip(Reader& r);
  std::vector<uint8_t> MakePingPayload(uint64_t seq, HostId subject);

  Transport* transport_;
  SwimConfig config_;
  bool running_ = false;

  std::unordered_map<HostId, Member> members_;
  std::vector<HostId> probe_order_;
  size_t probe_cursor_ = 0;
  uint32_t self_incarnation_ = 0;

  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, Probe> probes_;  // outstanding probes by seq
  PeriodicTimer tick_timer_;

  std::deque<Update> gossip_;
  // Proxy bookkeeping: seq -> requester awaiting a relayed ack.
  std::unordered_map<uint64_t, HostId> relay_waiting_;
  DeathHandler on_death_;
  Stats stats_;
};

}  // namespace fuse

#endif  // FUSE_MEMBERSHIP_SWIM_H_
