// ProcessCluster: the N-process deployment — nodes run in worker OS
// processes (one "machine" each) over the real socket transport
// (src/transport/socket_transport.h), and the harness drives them through a
// small control protocol instead of in-memory calls. Linux-only.
//
// Topology of one deployment:
//
//   test process (controller)
//     ├── ProcessDeployment: LiveRuntime epoll loop owns the control
//     │   channels (one unix-socketpair FramedSocket per worker) + the
//     │   spawner channel + churn timers; fault rules are mirrored here and
//     │   broadcast to workers on every ApplyFaults.
//     ├── spawner (forked FIRST, while the controller is single-threaded):
//     │   a flat loop that forks workers on request and hands their control
//     │   fds back over SCM_RIGHTS — so mid-run restarts never fork from a
//     │   threaded process.
//     └── worker processes (forked by the spawner): each runs its own
//         LiveRuntime epoll loop + one fabric listener, and hosts the Node
//         stacks of every node the placement assigns it — the worker is the
//         "machine". Inter-machine traffic is length-prefixed WireMessages
//         over loopback TCP (or coalesced datagrams on kUdp); co-hosted
//         nodes short-circuit through the fabric's local dispatch table.
//
// Machine-crash semantics are real: with one node per worker (num_workers ==
// num_nodes, the default) CrashHost sends SIGKILL — peers observe broken TCP
// connections and refused dials, not a simulated flag — and CrashMachine is
// one SIGKILL taking down every co-hosted node at once. A single-node crash
// on a multi-tenant worker is instead an in-place kill (the node quiesces,
// its handlers unregister, fault rules mark the host down) because the
// process must survive for its co-tenants. Restart of a dead worker forks a
// fresh incarnation (new port, empty state), re-advertised to every peer
// through the controller's address map; nodes rejoin the overlay through a
// live bootstrap exactly like the paper's stable-storage-free recovery.
//
// ProcessCluster overrides ClusterHarness's per-node hooks with control
// commands, so Build/Crash/Restart/churn and the shared scenario definitions
// (runtime/scenario.cc: CrashMember, PartitionHeal, ChurnDuringCreate,
// MachineFailure) run unchanged across OS processes (ctest -L
// process-parity, -L procN).
#ifndef FUSE_RUNTIME_PROCESS_CLUSTER_H_
#define FUSE_RUNTIME_PROCESS_CLUSTER_H_

#if defined(__linux__)

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "runtime/placement.h"
#include "transport/socket_transport.h"

namespace fuse {

struct ProcessClusterConfig {
  int num_nodes = 8;
  // Worker processes hosting the nodes. 0 (the default) means one worker per
  // node — the classic layout. Smaller values pack nodes onto multi-tenant
  // workers in placement blocks: 1000 nodes on 16 workers is 16 epoll loops
  // and 16 fabric listeners, not 1000 processes.
  int num_workers = 0;
  // Single seed: the controller's rng drives node numeric ids, join
  // bootstraps and churn; each worker derives its own stream from
  // (seed, worker, incarnation).
  uint64_t seed = 1;
  SkipNetConfig overlay;
  FuseParams fuse;
  int join_batch = 4;
  HarnessTiming timing;
  SocketFabric::Options socket;
  // Inter-worker messaging layer: kTcp (socket fabric, the default) or kUdp
  // (datagram fabric: coalesced datagrams, app-level retransmit, loss is
  // silence). The choice is tagged onto the control protocol (Hello and
  // address broadcasts) so controller/worker skew fails loudly.
  TransportKind transport = TransportKind::kTcp;
  // Pre-seeded peer addresses: hosts that live outside this controller's
  // worker set (a second deployment on another machine). Typically loaded
  // from an address-map file or flag via PeerAddressMap::LoadFile/FromText
  // (format: one `<host-id> <a.b.c.d>:<port>` per line); the workers' own
  // ephemeral-port advertisements overlay these entries.
  PeerAddressMap static_addrs;

  // Scaled protocol constants (the LiveCluster FastProtocol settings) with
  // wait bounds widened for process forks and real TCP handshakes.
  static ProcessClusterConfig FastProtocol(int num_nodes, uint64_t seed);

  // The node -> worker map this config describes (blocked layout).
  Placement MakePlacement() const {
    return num_workers > 0 ? Placement::Machines(num_nodes, num_workers)
                           : Placement::Pack(num_nodes, 1);
  }
};

class ProcessDeployment;

class ProcessCluster : public ClusterHarness {
 public:
  explicit ProcessCluster(ProcessClusterConfig config);
  ~ProcessCluster() override;

  bool IsUp(size_t i) const override;
  bool IsJoined(size_t i) override;

  void CreateGroupInContext(size_t root, std::vector<NodeRef> members,
                            std::function<void(const Status&, FuseId)> cb) override;
  void WatchGroupMemberInContext(size_t m, FuseId id, std::function<void()> on_fire) override;

  // Transport event counters (syscalls, datagrams, retransmits, dedupe
  // suppressions) summed across all live workers, keyed by CounterName.
  // Best-effort: a worker that dies mid-collection contributes nothing.
  std::map<std::string, uint64_t> TransportCounters();
  // Per-machine breakdown of the same counters, indexed by worker. A dead or
  // laggard worker's slot is an empty map, not a poisoned sum.
  std::vector<std::map<std::string, uint64_t>> TransportCountersByMachine();

 protected:
  void CreateNodeInContext(size_t i) override;
  void JoinFirstInContext(size_t i) override;
  void JoinInContext(size_t i, size_t boot, std::function<void(const Status&)> done) override;
  void StartMaintenanceInContext(size_t i) override;
  void LeafExchangeInContext(size_t i) override;
  void RetireNodeInContext(size_t i) override;
  void ReviveNodeInContext(size_t i, size_t boot) override;

 private:
  ProcessDeployment* pd_;  // owned by the base class
  // Join state mirrored controller-side from JoinResult events.
  std::vector<bool> joined_;
};

}  // namespace fuse

#endif  // defined(__linux__)
#endif  // FUSE_RUNTIME_PROCESS_CLUSTER_H_
