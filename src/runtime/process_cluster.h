// ProcessCluster: the N-process deployment — every node runs in its own
// worker OS process over the real socket transport
// (src/transport/socket_transport.h), and the harness drives them through a
// small control protocol instead of in-memory calls. Linux-only.
//
// Topology of one deployment:
//
//   test process (controller)
//     ├── ProcessDeployment: LiveRuntime epoll loop owns the control
//     │   channels (one unix-socketpair FramedSocket per worker) + the
//     │   spawner channel + churn timers; fault rules are mirrored here and
//     │   broadcast to workers on every ApplyFaults.
//     ├── spawner (forked FIRST, while the controller is single-threaded):
//     │   a flat loop that forks workers on request and hands their control
//     │   fds back over SCM_RIGHTS — so mid-run restarts never fork from a
//     │   threaded process.
//     └── worker processes (forked by the spawner, one per node): each runs
//         its own LiveRuntime epoll loop + SocketFabric listener and hosts
//         one Node stack; node-to-node traffic is length-prefixed
//         WireMessages over loopback TCP.
//
// Crash semantics are real: CrashHost sends SIGKILL — peers observe broken
// TCP connections and refused dials, not a simulated flag. Restart forks a
// fresh worker (new incarnation, new port, empty state), re-advertised to
// every peer; the node rejoins the overlay through a live bootstrap exactly
// like the paper's stable-storage-free recovery.
//
// ProcessCluster overrides ClusterHarness's per-node hooks with control
// commands, so Build/Crash/Restart/churn and the shared scenario definitions
// (runtime/scenario.cc: CrashMember, PartitionHeal, ChurnDuringCreate) run
// unchanged across OS processes (ctest -L process-parity).
#ifndef FUSE_RUNTIME_PROCESS_CLUSTER_H_
#define FUSE_RUNTIME_PROCESS_CLUSTER_H_

#if defined(__linux__)

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "transport/socket_transport.h"

namespace fuse {

struct ProcessClusterConfig {
  int num_nodes = 8;
  // Single seed: the controller's rng drives node numeric ids, join
  // bootstraps and churn; each worker derives its own stream from
  // (seed, worker, incarnation).
  uint64_t seed = 1;
  SkipNetConfig overlay;
  FuseParams fuse;
  int join_batch = 4;
  HarnessTiming timing;
  SocketFabric::Options socket;
  // Inter-worker messaging layer: kTcp (socket fabric, the default) or kUdp
  // (datagram fabric: coalesced datagrams, app-level retransmit, loss is
  // silence). The choice is tagged onto the control protocol (Hello and
  // address broadcasts) so controller/worker skew fails loudly.
  TransportKind transport = TransportKind::kTcp;

  // Scaled protocol constants (the LiveCluster FastProtocol settings) with
  // wait bounds widened for process forks and real TCP handshakes.
  static ProcessClusterConfig FastProtocol(int num_nodes, uint64_t seed);
};

class ProcessDeployment;

class ProcessCluster : public ClusterHarness {
 public:
  explicit ProcessCluster(ProcessClusterConfig config);
  ~ProcessCluster() override;

  bool IsUp(size_t i) const override;
  bool IsJoined(size_t i) override;

  void CreateGroupInContext(size_t root, std::vector<NodeRef> members,
                            std::function<void(const Status&, FuseId)> cb) override;
  void WatchGroupMemberInContext(size_t m, FuseId id, std::function<void()> on_fire) override;

  // Transport event counters (syscalls, datagrams, retransmits, dedupe
  // suppressions) summed across all live workers, keyed by CounterName.
  // Best-effort: a worker that dies mid-collection contributes nothing.
  std::map<std::string, uint64_t> TransportCounters();

 protected:
  void CreateNodeInContext(size_t i) override;
  void JoinFirstInContext(size_t i) override;
  void JoinInContext(size_t i, size_t boot, std::function<void(const Status&)> done) override;
  void StartMaintenanceInContext(size_t i) override;
  void LeafExchangeInContext(size_t i) override;
  void RetireNodeInContext(size_t i) override;
  void ReviveNodeInContext(size_t i, size_t boot) override;

 private:
  ProcessDeployment* pd_;  // owned by the base class
  // Join state mirrored controller-side from JoinResult events.
  std::vector<bool> joined_;
};

}  // namespace fuse

#endif  // defined(__linux__)
#endif  // FUSE_RUNTIME_PROCESS_CLUSTER_H_
