// The ProcessCluster control protocol: the framed command/event vocabulary
// spoken between the controller and its forked workers, in one header both
// halves include (the opcodes and the addr-map codec used to be hand-mirrored
// inside process_cluster.cc's two loops).
//
// Every frame starts with a u8 opcode. Commands flow controller -> worker;
// events flow worker -> controller. Since workers became multi-tenant, node
// addressing is explicit: commands that target a node carry its HostId (the
// worker index is implied by which control channel the frame rides).
#ifndef FUSE_RUNTIME_CONTROL_PROTOCOL_H_
#define FUSE_RUNTIME_CONTROL_PROTOCOL_H_

#include <cstdint>

#include "common/logging.h"
#include "common/serialize.h"
#include "transport/fabric.h"
#include "transport/peer_address_map.h"

namespace fuse {
namespace ctrl {

// Controller -> worker commands.
inline constexpr uint8_t kCmdAddrs = 1;         // full peer address map
inline constexpr uint8_t kCmdFaults = 2;        // full fault-rule mirror
inline constexpr uint8_t kCmdCreateNode = 3;    // host id, name, numeric id
inline constexpr uint8_t kCmdJoinFirst = 4;     // host id: bootstrap the overlay
inline constexpr uint8_t kCmdJoin = 5;          // host id, seq, boot host
inline constexpr uint8_t kCmdStartMaint = 6;    // host id
inline constexpr uint8_t kCmdLeafExchange = 7;  // host id
inline constexpr uint8_t kCmdCreateGroup = 8;   // host id, seq, member refs
inline constexpr uint8_t kCmdWatch = 9;         // host id, group id
inline constexpr uint8_t kCmdStats = 10;        // generation: snapshot counters
inline constexpr uint8_t kCmdKillNode = 11;     // host id: in-place node crash
                                                // (multi-tenant worker keeps
                                                // running its other nodes)

// Worker -> controller events.
inline constexpr uint8_t kEvHello = 32;             // widx, incarnation, port, transport
inline constexpr uint8_t kEvJoinResult = 33;        // seq, ok
inline constexpr uint8_t kEvCreateGroupResult = 34; // seq, ok, group id
inline constexpr uint8_t kEvNotify = 35;            // group id, host id
inline constexpr uint8_t kEvStats = 36;             // generation, counters

// ---------------------------------------------------------------------------
// kCmdAddrs codec. The frame carries the transport kind (a config-skew
// tripwire: a worker built for UDP must never apply a TCP controller's map)
// and the controller's full PeerAddressMap; the worker overlays it onto its
// fabric, so a re-advertised host retargets in-flight retransmits.
// ---------------------------------------------------------------------------

inline void EncodeAddrs(Writer& w, TransportKind transport, const PeerAddressMap& addrs) {
  w.PutU8(kCmdAddrs);
  w.PutU8(static_cast<uint8_t>(transport));
  addrs.EncodeTo(w);
}

struct AddrsFrame {
  TransportKind transport = TransportKind::kInProcess;
  PeerAddressMap addrs;
};

// Decodes the body of a kCmdAddrs frame (opcode byte already consumed).
inline bool DecodeAddrs(Reader& r, AddrsFrame* out) {
  out->transport = static_cast<TransportKind>(r.GetU8());
  return r.ok() && out->addrs.DecodeFrom(r) && r.Done();
}

}  // namespace ctrl
}  // namespace fuse

#endif  // FUSE_RUNTIME_CONTROL_PROTOCOL_H_
