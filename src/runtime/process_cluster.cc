#include "runtime/process_cluster.h"

#if defined(__linux__)

#include <fcntl.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/serialize.h"
#include "runtime/control_protocol.h"
#include "runtime/live_cluster.h"
#include "runtime/loop_deployment.h"
#include "transport/datagram_transport.h"

namespace fuse {

// The framed command/event vocabulary both loops below speak lives in
// runtime/control_protocol.h (one header, no hand-mirrored opcode tables).
using namespace ctrl;

namespace {

// Spawner channel (SEQPACKET socketpair): requests are a bare u32 worker
// index; responses are {u32 widx, u32 pid, u32 incarnation} with the worker's
// control fd attached via SCM_RIGHTS.
struct SpawnResponse {
  uint32_t widx;
  uint32_t pid;
  uint32_t incarnation;
};

void SendFrameTo(FramedSocket& sock, const Writer& w) {
  sock.SendFrame(w.bytes().data(), w.bytes().size());
}

// --- worker process --------------------------------------------------------

// Everything one worker process owns. Lives on the worker's main-thread
// stack; all mutation happens on the worker's loop thread.
// Builds the per-run messaging layer. The worker seed is already
// (seed, worker, incarnation)-derived, so it doubles as the datagram
// fabric's session/loss-draw seed: a restarted incarnation gets a fresh
// dedupe stream for free.
std::unique_ptr<Fabric> MakeFabric(const ProcessClusterConfig& cfg, LiveRuntime* rt,
                                   uint64_t seed) {
  if (cfg.transport == TransportKind::kUdp) {
    DatagramFabric::Options o;
    o.seed = seed;
    return std::make_unique<DatagramFabric>(rt, o);
  }
  return std::make_unique<SocketFabric>(rt, cfg.socket);
}

struct Worker {
  Worker(const ProcessClusterConfig& config, uint32_t widx_in, uint32_t incarnation_in,
         LiveRuntime::Config rc)
      : cfg(config), widx(widx_in), incarnation(incarnation_in), rt(rc),
        fabric(MakeFabric(config, &rt, rc.seed)), ctrl(&rt) {}

  const ProcessClusterConfig& cfg;
  uint32_t widx;
  uint32_t incarnation;
  LiveRuntime rt;
  std::unique_ptr<Fabric> fabric;
  FramedSocket ctrl;
  std::unordered_map<uint64_t, std::unique_ptr<Node>> nodes;
  // In-place-killed co-tenants, parked (quiesced, unregistered, host-down)
  // so in-flight loop callbacks referencing them stay safe — the worker-side
  // twin of ClusterHarness::graveyard_.
  std::vector<std::unique_ptr<Node>> graveyard;

  Node* NodeFor(uint64_t host) {
    const auto it = nodes.find(host);
    FUSE_CHECK(it != nodes.end()) << "worker " << widx << ": no node for host " << host;
    return it->second.get();
  }

  void HandleCommand(const uint8_t* data, size_t len);
};

void Worker::HandleCommand(const uint8_t* data, size_t len) {
  Reader r(data, len);
  const uint8_t op = r.GetU8();
  switch (op) {
    case kCmdAddrs: {
      AddrsFrame f;
      FUSE_CHECK(DecodeAddrs(r, &f)) << "worker " << widx << ": malformed address map";
      // An address is only meaningful for the fabric it was bound by; a
      // transport mismatch means controller/worker config skew.
      FUSE_CHECK(f.transport == cfg.transport)
          << "worker " << widx << ": transport mismatch (controller "
          << TransportKindName(f.transport) << ", worker " << TransportKindName(cfg.transport)
          << ")";
      fabric->ApplyAddressMap(f.addrs);
      break;
    }
    case kCmdFaults: {
      // A truncated rule set must fail loudly here, not as a mystifying
      // agreement violation later (DecodeFrom clears before decoding).
      FUSE_CHECK(fabric->faults().DecodeFrom(r))
          << "worker " << widx << ": malformed fault rules";
      break;
    }
    case kCmdCreateNode: {
      const uint64_t host = r.GetU64();
      std::string name = r.GetString();
      const uint64_t numeric = r.GetU64();
      FUSE_CHECK(!nodes.contains(host)) << "worker " << widx << ": duplicate node " << host;
      nodes[host] = std::make_unique<Node>(fabric->TransportFor(HostId(host)), std::move(name),
                                           NumericId(numeric), cfg.overlay, cfg.fuse);
      break;
    }
    case kCmdJoinFirst: {
      NodeFor(r.GetU64())->overlay()->JoinAsFirst();
      break;
    }
    case kCmdJoin: {
      const uint64_t host = r.GetU64();
      const uint64_t boot = r.GetU64();
      const uint64_t seq = r.GetU64();
      const bool start_maint = r.GetU8() != 0;
      Node* n = NodeFor(host);
      auto reply = [this, host, seq, start_maint](const Status& s) {
        if (s.ok() && start_maint) {
          NodeFor(host)->overlay()->StartMaintenance();
        }
        Writer w;
        w.PutU8(kEvJoinResult);
        w.PutU64(seq);
        w.PutU8(s.ok() ? 1 : 0);
        w.PutString(s.ToString());
        SendFrameTo(ctrl, w);
      };
      if (boot == host) {
        // No live bootstrap existed: seed a fresh ring (restart of the only
        // survivor), mirroring the in-process revive path.
        n->overlay()->JoinAsFirst();
        reply(Status::Ok());
      } else {
        n->overlay()->Join(HostId(boot), std::move(reply));
      }
      break;
    }
    case kCmdKillNode: {
      // In-place fail-stop of one co-hosted node: the process must survive
      // for its co-tenants, so the node is quiesced the way the in-process
      // backends crash one — shut down, handlers unregistered, fault rules
      // marking the host down (the controller broadcasts the same rule to
      // every peer worker) — and parked rather than destroyed.
      const uint64_t host = r.GetU64();
      const auto it = nodes.find(host);
      FUSE_CHECK(it != nodes.end()) << "worker " << widx << ": kill of unknown node " << host;
      it->second->ShutdownAll();
      fabric->UnregisterAllHandlers(HostId(host));
      fabric->faults().SetHostDown(HostId(host), true);
      graveyard.push_back(std::move(it->second));
      nodes.erase(it);
      break;
    }
    case kCmdStartMaint: {
      NodeFor(r.GetU64())->overlay()->StartMaintenance();
      break;
    }
    case kCmdLeafExchange: {
      NodeFor(r.GetU64())->overlay()->RunLeafExchangeOnce();
      break;
    }
    case kCmdCreateGroup: {
      const uint64_t root = r.GetU64();
      const uint64_t seq = r.GetU64();
      const uint16_t n = r.GetU16();
      std::vector<NodeRef> refs;
      refs.reserve(n);
      for (uint16_t i = 0; i < n && r.ok(); ++i) {
        NodeRef ref;
        ref.name = r.GetString();
        ref.host = HostId(r.GetU64());
        refs.push_back(std::move(ref));
      }
      NodeFor(root)->fuse()->CreateGroup(
          std::move(refs), [this, seq](const Status& s, FuseId id) {
            Writer w;
            w.PutU8(kEvCreateGroupResult);
            w.PutU64(seq);
            w.PutU8(s.ok() ? 1 : 0);
            w.PutString(s.ToString());
            w.PutU64(id.hi);
            w.PutU64(id.lo);
            SendFrameTo(ctrl, w);
          });
      break;
    }
    case kCmdWatch: {
      const uint64_t host = r.GetU64();
      FuseId id;
      id.hi = r.GetU64();
      id.lo = r.GetU64();
      NodeFor(host)->fuse()->RegisterFailureHandler(id, [this, host, id](FuseId) {
        Writer w;
        w.PutU8(kEvNotify);
        w.PutU64(host);
        w.PutU64(id.hi);
        w.PutU64(id.lo);
        SendFrameTo(ctrl, w);
      });
      break;
    }
    case kCmdStats: {
      // Snapshot of this worker's transport event counters (syscalls,
      // datagrams, retransmits, dedupes); the controller sums across workers.
      const uint64_t gen = r.GetU64();
      Writer w;
      w.PutU8(kEvStats);
      w.PutU64(gen);
      w.PutU32(static_cast<uint32_t>(Counter::kCount));
      for (uint32_t i = 0; i < static_cast<uint32_t>(Counter::kCount); ++i) {
        const auto c = static_cast<Counter>(i);
        w.PutString(CounterName(c));
        w.PutU64(rt.metrics().GetCounter(c));
      }
      SendFrameTo(ctrl, w);
      break;
    }
    default:
      FUSE_CHECK(false) << "worker " << widx << ": unknown command " << int{op};
  }
}

[[noreturn]] void WorkerMain(const ProcessClusterConfig& cfg, uint32_t widx,
                             uint32_t incarnation, int ctrl_fd) {
  ::signal(SIGPIPE, SIG_IGN);
  ::fcntl(ctrl_fd, F_SETFL, O_NONBLOCK);
  // Every incarnation gets its own stream: a restarted worker must not replay
  // the FUSE ids / protocol jitter of its previous life.
  LiveRuntime::Config rc;
  rc.seed = cfg.seed;
  rc.seed ^= (uint64_t{widx} + 1) * 0x9e3779b97f4a7c15ULL;
  rc.seed ^= (uint64_t{incarnation} + 1) * 0xbf58476d1ce4e5b9ULL;
  Worker w(cfg, widx, incarnation, rc);
  const bool ok = w.rt.RunOnLoop([&] {
    const uint16_t port = w.fabric->Listen();
    w.ctrl.set_on_frame([&w](const uint8_t* d, size_t l) { w.HandleCommand(d, l); });
    // Controller gone (teardown or controller crash): this process has no
    // purpose and no state worth saving — exit like the crash-only software
    // it models.
    w.ctrl.set_on_close([] { ::_exit(0); });
    w.ctrl.Adopt(ctrl_fd, /*connecting=*/false);
    Writer hello;
    hello.PutU8(kEvHello);
    hello.PutU32(w.widx);
    hello.PutU32(w.incarnation);
    hello.PutU16(port);
    hello.PutU8(static_cast<uint8_t>(w.cfg.transport));
    SendFrameTo(w.ctrl, hello);
  });
  FUSE_CHECK(ok) << "worker loop died during setup";
  // The loop thread owns the process from here; it exits via _exit.
  for (;;) {
    ::pause();
  }
}

// --- spawner process -------------------------------------------------------
// Forked from the controller while it is still single-threaded; forks one
// worker per request and passes the worker's control fd back over SCM_RIGHTS.
// This is what keeps mid-run restarts (churn!) from ever forking a process
// that owns an event-loop thread.

void SendSpawnResponse(int fd, SpawnResponse resp, int pass_fd) {
  struct msghdr mh{};
  struct iovec iov{&resp, sizeof(resp)};
  mh.msg_iov = &iov;
  mh.msg_iovlen = 1;
  alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  mh.msg_control = cbuf;
  mh.msg_controllen = sizeof(cbuf);
  struct cmsghdr* cm = CMSG_FIRSTHDR(&mh);
  cm->cmsg_level = SOL_SOCKET;
  cm->cmsg_type = SCM_RIGHTS;
  cm->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cm), &pass_fd, sizeof(int));
  ::sendmsg(fd, &mh, MSG_NOSIGNAL);
}

[[noreturn]] void SpawnerMain(const ProcessClusterConfig cfg, int fd) {
  ::signal(SIGPIPE, SIG_IGN);
  // Bounded recv timeout so exited workers are reaped even between requests.
  struct timeval tv{};
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::vector<pid_t> kids;
  std::vector<uint32_t> incarnations(static_cast<size_t>(cfg.MakePlacement().NumMachines()), 0);
  for (;;) {
    // Reap exited workers AND forget their pids: a reaped pid number may be
    // reused by the kernel, and the teardown SIGKILL sweep below must never
    // target a recycled pid.
    for (pid_t reaped; (reaped = ::waitpid(-1, nullptr, WNOHANG)) > 0;) {
      std::erase(kids, reaped);
    }
    uint32_t widx = 0;
    const ssize_t r = ::recv(fd, &widx, sizeof(widx), 0);
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    if (r != sizeof(widx)) {
      break;  // controller closed its end (teardown) or hard error
    }
    if (widx >= incarnations.size()) {
      continue;
    }
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
      break;
    }
    const uint32_t inc = incarnations[widx]++;
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(sv[0]);
      ::close(fd);
      WorkerMain(cfg, widx, inc, sv[1]);  // never returns
    }
    ::close(sv[1]);
    if (pid > 0) {
      kids.push_back(pid);
      SendSpawnResponse(fd, SpawnResponse{widx, static_cast<uint32_t>(pid), inc}, sv[0]);
    }
    ::close(sv[0]);
  }
  for (const pid_t p : kids) {
    ::kill(p, SIGKILL);
  }
  for (const pid_t p : kids) {
    ::waitpid(p, nullptr, 0);
  }
  ::_exit(0);
}

LiveRuntime::Config ControllerRuntimeConfig(const ProcessClusterConfig& cfg) {
  LiveRuntime::Config rc;
  rc.seed = cfg.seed;  // the single randomness source the harness draws from
  return rc;
}

}  // namespace

// --- controller ------------------------------------------------------------

class ProcessDeployment : public LoopDeployment {
 public:
  // The spawner is forked in Bootstrap() BEFORE the base class starts the
  // loop thread (base-from-member via the delegating constructor), so the
  // fork happens while this process is still single-threaded.
  struct Bootstrapped {
    ProcessClusterConfig cfg;
    int spawner_fd;
    pid_t spawner_pid;
  };

  explicit ProcessDeployment(const ProcessClusterConfig& cfg)
      : ProcessDeployment(Bootstrap(cfg)) {}

  ~ProcessDeployment() override {
    runtime_->Stop();
    // Closing the control channels is the worker shutdown signal; closing
    // the spawner channel makes the spawner SIGKILL any survivor and exit.
    for (WorkerState& w : workers_) {
      w.ctrl.reset();
    }
    if (spawner_fd_ >= 0) {
      runtime_->UnwatchFd(spawner_fd_);
      ::close(spawner_fd_);
    }
    if (spawner_pid_ > 0) {
      ::waitpid(spawner_pid_, nullptr, 0);
    }
  }

  // --- Deployment ---
  Transport* CreateHost(size_t index) override {
    const size_t widx = static_cast<size_t>(placement_.MachineOf(index));
    FUSE_CHECK(widx < workers_.size()) << "host index out of range";
    const bool ready = AwaitCondition(
        [this, widx] { return workers_[widx].st == WorkerState::St::kReady; },
        Duration::Seconds(60));
    FUSE_CHECK(ready) << "worker " << widx << " failed to spawn";
    return nullptr;  // hosts live in worker processes; no in-process transport
  }

  void CrashHost(HostId h) override {
    const uint32_t widx = widx_of(h);
    if (!placement_.MultiTenant()) {
      // One node per worker: the node dies with its machine — a genuine
      // SIGKILL; peers observe broken connections and refused dials.
      KillMachineWorker(widx);
      return;
    }
    // Multi-tenant: co-tenants must survive, so a single-node crash is an
    // in-place kill. The worker quiesces the node (FIFO: this frame lands
    // before the rule broadcast below); the controller mirrors host-down and
    // replicates it so every peer fabric refuses the host's traffic — no
    // false acks from a listener that is still very much alive.
    WorkerState& w = workers_[widx];
    mirror_.SetHostDown(h, true);
    if (w.st == WorkerState::St::kReady) {
      Writer cmd;
      cmd.PutU8(kCmdKillNode);
      cmd.PutU64(h.value);
      SendTo(widx, cmd);
    } else {
      // Worker down or mid-respawn: the node has no process state to kill,
      // but a revive queued for it must not come back from the dead.
      std::erase_if(w.revives,
                    [&h](const std::unique_ptr<Revive>& rev) { return rev->host == h; });
    }
    BroadcastFaults();
    FailPendingForHost(h);
  }

  void RestartHost(HostId h) override {
    // Clear the host's down rule everywhere FIRST: an in-place kill (or an
    // in-place kill followed by a whole-machine crash) left it in the
    // mirror, and a stale rule would silently refuse the fresh incarnation.
    // Channel FIFO orders this broadcast before the revive's CreateNode.
    mirror_.SetHostDown(h, false);
    BroadcastFaults();
    const uint32_t widx = widx_of(h);
    WorkerState& w = workers_[widx];
    switch (w.st) {
      case WorkerState::St::kSpawning:
        // Crash raced a previous spawn (kill_on_ready: the in-flight fork is
        // already a fresh incarnation — adopt it), or a machine restart is
        // reviving co-tenants one by one while the respawn is in flight.
        // Either way the pending Hello serves this host's queued revive.
        w.kill_on_ready = false;
        return;
      case WorkerState::St::kReady:
        // Multi-tenant in-place revive: the process is alive; QueueRevive
        // re-creates the node inside it immediately.
        FUSE_CHECK(placement_.MultiTenant()) << "restart of live worker " << widx;
        return;
      case WorkerState::St::kDead:
        w.st = WorkerState::St::kSpawning;
        RequestSpawn(widx);
        return;
    }
  }

  void CrashMachine(const std::vector<HostId>& hosts) override {
    // The machine is the unit of failure: one SIGKILL takes down every
    // co-hosted node at once, no matter how many tenants the worker has.
    FUSE_CHECK(!hosts.empty()) << "machine crash with no hosts";
    const uint32_t widx = widx_of(hosts[0]);
    for (const HostId h : hosts) {
      FUSE_CHECK(widx_of(h) == widx) << "machine crash spans workers";
    }
    KillMachineWorker(widx);
  }

  void ApplyFaults(const std::function<void(FaultInjector&)>& fn) override {
    // Mutate the controller's mirror, then replicate the whole rule set to
    // every live worker (each evaluates it sender-side and on delivery).
    // Replication is asynchronous: frames are queued here and applied when
    // each worker's loop dispatches them (see Deployment::ApplyFaults).
    runtime_->RunOnLoop([&] {
      fn(mirror_);
      BroadcastFaults();
    });
  }

  // --- commands for ProcessCluster (loop thread only) ---
  void SendCreateNode(HostId h, const std::string& name, uint64_t numeric) {
    Writer w;
    w.PutU8(kCmdCreateNode);
    w.PutU64(h.value);
    w.PutString(name);
    w.PutU64(numeric);
    SendTo(widx_of(h), w);
  }

  void SendJoinFirst(HostId h) {
    Writer w;
    w.PutU8(kCmdJoinFirst);
    w.PutU64(h.value);
    SendTo(widx_of(h), w);
  }

  void SendJoin(HostId h, HostId boot, bool start_maint, std::function<void(const Status&)> cb) {
    if (!WorkerUsable(widx_of(h))) {
      FailLater(std::move(cb));
      return;
    }
    const uint64_t seq = next_seq_++;
    pending_joins_.emplace(seq, PendingJoin{widx_of(h), h.value, std::move(cb)});
    Writer w;
    w.PutU8(kCmdJoin);
    w.PutU64(h.value);
    w.PutU64(boot.value);
    w.PutU64(seq);
    w.PutU8(start_maint ? 1 : 0);
    SendTo(widx_of(h), w);
  }

  void SendStartMaintenance(HostId h) {
    Writer w;
    w.PutU8(kCmdStartMaint);
    w.PutU64(h.value);
    SendTo(widx_of(h), w);
  }

  void SendLeafExchange(HostId h) {
    Writer w;
    w.PutU8(kCmdLeafExchange);
    w.PutU64(h.value);
    SendTo(widx_of(h), w);
  }

  void SendCreateGroup(HostId root, const std::vector<NodeRef>& members,
                       std::function<void(const Status&, FuseId)> cb) {
    if (!WorkerUsable(widx_of(root))) {
      runtime_->Schedule(Duration::Zero(), [cb = std::move(cb)] {
        cb(Status::Broken("process: root worker not running"), FuseId());
      });
      return;
    }
    const uint64_t seq = next_seq_++;
    pending_creates_.emplace(seq, PendingCreate{widx_of(root), root.value, std::move(cb)});
    Writer w;
    w.PutU8(kCmdCreateGroup);
    w.PutU64(root.value);
    w.PutU64(seq);
    w.PutU16(static_cast<uint16_t>(members.size()));
    for (const NodeRef& m : members) {
      w.PutString(m.name);
      w.PutU64(m.host.value);
    }
    SendTo(widx_of(root), w);
  }

  void SendWatch(HostId h, FuseId id, std::function<void()> on_fire) {
    if (!WorkerUsable(widx_of(h))) {
      return;  // a watch on a dead member can never fire anyway
    }
    watches_[std::make_tuple(id.hi, id.lo, h.value)].push_back(std::move(on_fire));
    Writer w;
    w.PutU8(kCmdWatch);
    w.PutU64(h.value);
    w.PutU64(id.hi);
    w.PutU64(id.lo);
    SendTo(widx_of(h), w);
  }

  // Re-creates the node and rejoins it: immediately on a live multi-tenant
  // worker, or deferred until the respawned worker reports in.
  void QueueRevive(HostId h, std::string name, uint64_t numeric, HostId boot,
                   std::function<void(const Status&)> join_cb) {
    WorkerState& w = worker_of(h);
    if (w.st == WorkerState::St::kReady) {
      // In-place revive: RestartHost already cleared the host-down rule (and
      // FIFO put that broadcast ahead of these frames).
      SendCreateNode(h, name, numeric);
      SendJoin(h, boot, /*start_maint=*/true, std::move(join_cb));
      return;
    }
    FUSE_CHECK(w.st == WorkerState::St::kSpawning) << "revive without restart";
    w.revives.push_back(std::make_unique<Revive>(
        Revive{h, std::move(name), numeric, boot, std::move(join_cb)}));
  }

  bool WorkerUsable(size_t widx) const {
    return workers_[widx].st == WorkerState::St::kReady;
  }

  // Whether commands for this host currently have a process to land in.
  bool HostUsable(HostId h) const { return WorkerUsable(widx_of(h)); }

  size_t NumWorkers() const { return workers_.size(); }

  // Snapshots the transport event counters (send/recv syscalls, datagrams,
  // retransmits, dedupe suppressions) of every live worker — the
  // process-backend view of the metrics each worker's fabric maintains,
  // broken down per machine. Generation-tagged so a laggard reply from an
  // earlier collection can never pollute this one. Best-effort: a worker
  // that dies mid-collection leaves its slot empty when the bound expires.
  std::vector<std::map<std::string, uint64_t>> CollectTransportCounters(Duration bound) {
    runtime_->RunOnLoop([&] {
      ++stats_gen_;
      stats_by_worker_.assign(workers_.size(), {});
      stats_expected_ = 0;
      stats_received_ = 0;
      Writer w;
      w.PutU8(kCmdStats);
      w.PutU64(stats_gen_);
      for (uint32_t i = 0; i < workers_.size(); ++i) {
        if (workers_[i].st == WorkerState::St::kReady) {
          SendTo(i, w);
          ++stats_expected_;
        }
      }
    });
    AwaitCondition([this] { return stats_received_ >= stats_expected_; }, bound);
    std::vector<std::map<std::string, uint64_t>> out;
    runtime_->RunOnLoop([&] { out = stats_by_worker_; });
    return out;
  }

 private:
  struct Revive {
    HostId host;
    std::string name;
    uint64_t numeric;
    HostId boot;
    std::function<void(const Status&)> join_cb;
  };

  struct WorkerState {
    enum class St { kSpawning, kReady, kDead };
    St st = St::kSpawning;
    bool kill_on_ready = false;
    pid_t pid = -1;
    uint32_t incarnation = 0;
    uint16_t port = 0;  // latest advertised port (kept across death)
    std::unique_ptr<FramedSocket> ctrl;
    // Revives awaiting the respawned worker's Hello — after a machine crash,
    // one per co-hosted node being restarted.
    std::vector<std::unique_ptr<Revive>> revives;
  };

  struct PendingJoin {
    uint32_t widx;
    uint64_t host;
    std::function<void(const Status&)> cb;
  };
  struct PendingCreate {
    uint32_t widx;
    uint64_t host;
    std::function<void(const Status&, FuseId)> cb;
  };

  static Bootstrapped Bootstrap(ProcessClusterConfig cfg) {
    // Worker-side protocol config: maintenance starts explicitly, exactly as
    // the harness forces for its own copy.
    cfg.overlay.start_maintenance_on_join = false;
    int sp[2];
    FUSE_CHECK(::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, sp) == 0)
        << "socketpair failed: " << std::strerror(errno);
    const pid_t pid = ::fork();
    FUSE_CHECK(pid >= 0) << "fork failed: " << std::strerror(errno);
    if (pid == 0) {
      ::close(sp[0]);
      SpawnerMain(cfg, sp[1]);  // never returns
    }
    ::close(sp[1]);
    ::fcntl(sp[0], F_SETFL, O_NONBLOCK);
    return Bootstrapped{std::move(cfg), sp[0], pid};
  }

  explicit ProcessDeployment(Bootstrapped b)
      : LoopDeployment(ControllerRuntimeConfig(b.cfg)),
        cfg_(std::move(b.cfg)),
        placement_(cfg_.MakePlacement()),
        spawner_fd_(b.spawner_fd),
        spawner_pid_(b.spawner_pid) {
    // Addresses of peers outside this deployment (another controller's
    // workers on another machine) underlay the workers' own advertisements.
    addr_map_.Merge(cfg_.static_addrs);
    workers_.resize(static_cast<size_t>(placement_.NumMachines()));
    for (uint32_t i = 0; i < workers_.size(); ++i) {
      RequestSpawn(i);
    }
    // Registered after the state table exists: from here on, every mutation
    // happens on the loop thread.
    runtime_->WatchFd(spawner_fd_, EPOLLIN, [this](uint32_t) { OnSpawnerReadable(); });
  }

  uint32_t widx_of(HostId h) const {
    return static_cast<uint32_t>(placement_.MachineOf(static_cast<size_t>(h.value)));
  }
  WorkerState& worker_of(HostId h) { return workers_[widx_of(h)]; }

  void RequestSpawn(uint32_t widx) {
    const ssize_t n = ::send(spawner_fd_, &widx, sizeof(widx), MSG_NOSIGNAL);
    FUSE_CHECK(n == sizeof(widx)) << "spawn request failed: " << std::strerror(errno);
  }

  void OnSpawnerReadable() {
    for (;;) {
      SpawnResponse resp{};
      struct msghdr mh{};
      struct iovec iov{&resp, sizeof(resp)};
      mh.msg_iov = &iov;
      mh.msg_iovlen = 1;
      alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
      mh.msg_control = cbuf;
      mh.msg_controllen = sizeof(cbuf);
      const ssize_t n = ::recvmsg(spawner_fd_, &mh, 0);
      if (n <= 0) {
        return;  // EAGAIN, or the spawner died (teardown surfaces it)
      }
      int fd = -1;
      for (struct cmsghdr* cm = CMSG_FIRSTHDR(&mh); cm != nullptr; cm = CMSG_NXTHDR(&mh, cm)) {
        if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SCM_RIGHTS) {
          std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
        }
      }
      if (n != sizeof(resp) || fd < 0 || resp.widx >= workers_.size()) {
        if (fd >= 0) {
          ::close(fd);
        }
        continue;
      }
      ::fcntl(fd, F_SETFL, O_NONBLOCK);
      WorkerState& w = workers_[resp.widx];
      w.pid = static_cast<pid_t>(resp.pid);
      w.incarnation = resp.incarnation;
      w.ctrl = std::make_unique<FramedSocket>(runtime_.get());
      const uint32_t widx = resp.widx;
      w.ctrl->set_on_frame(
          [this, widx](const uint8_t* d, size_t l) { OnWorkerFrame(widx, d, l); });
      w.ctrl->set_on_close([this, widx] { OnWorkerClosed(widx); });
      w.ctrl->Adopt(fd, /*connecting=*/false);
    }
  }

  void OnWorkerFrame(uint32_t widx, const uint8_t* data, size_t len) {
    WorkerState& w = workers_[widx];
    Reader r(data, len);
    switch (r.GetU8()) {
      case kEvHello: {
        r.GetU32();  // widx (redundant: the channel identifies the worker)
        r.GetU32();  // incarnation
        w.port = r.GetU16();
        const auto tk = static_cast<TransportKind>(r.GetU8());
        FUSE_CHECK(r.ok() && tk == cfg_.transport)
            << "worker " << widx << " came up on transport " << TransportKindName(tk)
            << ", controller expects " << TransportKindName(cfg_.transport);
        if (w.kill_on_ready) {
          // A crash was requested while this incarnation was still forking.
          // This frame came in on w.ctrl itself, and FramedSocket forbids
          // destroying the socket from its own on_frame — kill the process
          // now but release the channel from a fresh loop event.
          w.kill_on_ready = false;
          w.revives.clear();
          w.st = WorkerState::St::kDead;
          if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
          }
          runtime_->Schedule(Duration::Zero(), [this, widx] {
            WorkerState& ws = workers_[widx];
            // A restart may already have replaced the channel (its spawn
            // response resets st to kSpawning first); only the dead-state
            // socket is ours to drop.
            if (ws.st == WorkerState::St::kDead) {
              ws.ctrl.reset();
            }
          });
          return;
        }
        w.st = WorkerState::St::kReady;
        // Every node this worker hosts now answers at the fresh port.
        for (const size_t node : placement_.NodesOn(static_cast<int>(widx))) {
          addr_map_.Set(HostId(static_cast<uint64_t>(node)),
                        PeerEndpoint::Loopback(w.port));
        }
        SendFaultsTo(widx);
        BroadcastAddrs();
        if (!w.revives.empty()) {
          std::vector<std::unique_ptr<Revive>> revives = std::move(w.revives);
          w.revives.clear();
          for (std::unique_ptr<Revive>& rev : revives) {
            SendCreateNode(rev->host, rev->name, rev->numeric);
            SendJoin(rev->host, rev->boot, /*start_maint=*/true, std::move(rev->join_cb));
          }
        }
        return;
      }
      case kEvJoinResult: {
        const uint64_t seq = r.GetU64();
        const bool ok = r.GetU8() != 0;
        const std::string msg = r.GetString();
        const auto it = pending_joins_.find(seq);
        if (it == pending_joins_.end()) {
          return;
        }
        auto cb = std::move(it->second.cb);
        pending_joins_.erase(it);
        if (cb) {
          cb(ok ? Status::Ok() : Status::Failed(msg));
        }
        return;
      }
      case kEvCreateGroupResult: {
        const uint64_t seq = r.GetU64();
        const bool ok = r.GetU8() != 0;
        const std::string msg = r.GetString();
        FuseId id;
        id.hi = r.GetU64();
        id.lo = r.GetU64();
        const auto it = pending_creates_.find(seq);
        if (it == pending_creates_.end()) {
          return;
        }
        auto cb = std::move(it->second.cb);
        pending_creates_.erase(it);
        if (cb) {
          cb(ok ? Status::Ok() : Status::Failed(msg), id);
        }
        return;
      }
      case kEvNotify: {
        const uint64_t host = r.GetU64();
        const uint64_t hi = r.GetU64();
        const uint64_t lo = r.GetU64();
        const auto it = watches_.find(std::make_tuple(hi, lo, host));
        if (it == watches_.end()) {
          return;
        }
        for (const auto& fire : it->second) {
          fire();
        }
        return;
      }
      case kEvStats: {
        if (r.GetU64() != stats_gen_) {
          return;  // stale reply from a previous collection
        }
        const uint32_t n = r.GetU32();
        std::map<std::string, uint64_t>& slot = stats_by_worker_[widx];
        for (uint32_t i = 0; i < n && r.ok(); ++i) {
          std::string name = r.GetString();
          const uint64_t value = r.GetU64();
          slot[std::move(name)] = value;
        }
        ++stats_received_;
        return;
      }
      default:
        return;  // unknown event: tolerate (forward compatibility)
    }
  }

  void OnWorkerClosed(uint32_t widx) {
    // Commanded kills usually destroy the socket before its close event can
    // fire; the exception is the Hello-time kill, which records kDead first
    // and leaves the channel for this event (or its deferred drop). Anything
    // still live here died on its own — surface it; the scenario's
    // agreement checks will name what broke.
    WorkerState& w = workers_[widx];
    if (w.st != WorkerState::St::kDead) {
      FUSE_LOG(Warning) << "worker " << widx << " exited unexpectedly";
      w.st = WorkerState::St::kDead;
      FailPendingFor(widx);
    }
    // A crash requested against a spawn that died on its own must not carry
    // over and SIGKILL the next incarnation at its Hello.
    w.kill_on_ready = false;
    w.revives.clear();
    w.ctrl.reset();
  }

  void KillWorker(WorkerState& w) {
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);  // real fail-stop: the OS reaps via the spawner
    }
    w.ctrl.reset();
  }

  // Fail-stop of one whole machine, whatever its state. Everything pending
  // against its nodes fails with kBroken.
  void KillMachineWorker(uint32_t widx) {
    WorkerState& w = workers_[widx];
    switch (w.st) {
      case WorkerState::St::kReady:
        KillWorker(w);
        w.st = WorkerState::St::kDead;
        break;
      case WorkerState::St::kSpawning:
        // The fork is in flight; kill the process the moment it reports in.
        w.kill_on_ready = true;
        w.revives.clear();
        break;
      case WorkerState::St::kDead:
        FUSE_CHECK(false) << "crash of already-dead worker " << widx;
    }
    FailPendingFor(widx);
  }

  void FailPendingFor(uint32_t widx) {
    FailPendingMatching([widx](uint32_t w, uint64_t host) {
      (void)host;
      return w == widx;
    });
  }

  // Multi-tenant single-node crash: only the victim's pending work breaks;
  // co-tenants' in-flight joins and creates ride on.
  void FailPendingForHost(HostId h) {
    FailPendingMatching([host = h.value](uint32_t w, uint64_t ph) {
      (void)w;
      return ph == host;
    });
  }

  template <typename Pred>
  void FailPendingMatching(Pred&& dead) {
    std::vector<std::function<void(const Status&)>> joins;
    for (auto it = pending_joins_.begin(); it != pending_joins_.end();) {
      if (dead(it->second.widx, it->second.host)) {
        joins.push_back(std::move(it->second.cb));
        it = pending_joins_.erase(it);
      } else {
        ++it;
      }
    }
    std::vector<std::function<void(const Status&, FuseId)>> creates;
    for (auto it = pending_creates_.begin(); it != pending_creates_.end();) {
      if (dead(it->second.widx, it->second.host)) {
        creates.push_back(std::move(it->second.cb));
        it = pending_creates_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& cb : joins) {
      if (cb) {
        cb(Status::Broken("process: worker died"));
      }
    }
    for (auto& cb : creates) {
      if (cb) {
        cb(Status::Broken("process: worker died"), FuseId());
      }
    }
  }

  void FailLater(std::function<void(const Status&)> cb) {
    if (!cb) {
      return;
    }
    runtime_->Schedule(Duration::Zero(), [cb = std::move(cb)] {
      cb(Status::Broken("process: worker not running"));
    });
  }

  void SendTo(uint32_t widx, const Writer& w) {
    WorkerState& ws = workers_[widx];
    if (ws.ctrl != nullptr && ws.ctrl->open()) {
      SendFrameTo(*ws.ctrl, w);
    }
  }

  void BroadcastAddrs() {
    // Encode the full controller map once (the shared control-protocol
    // codec), send to every live worker; each overlays it onto its fabric.
    Writer w;
    EncodeAddrs(w, cfg_.transport, addr_map_);
    for (uint32_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].st == WorkerState::St::kReady) {
        SendTo(i, w);
      }
    }
  }

  void SendFaultsTo(uint32_t widx) {
    Writer w;
    w.PutU8(kCmdFaults);
    mirror_.EncodeTo(w);
    SendTo(widx, w);
  }

  void BroadcastFaults() {
    // Encode once, send to every live worker (same shape as BroadcastAddrs).
    Writer w;
    w.PutU8(kCmdFaults);
    mirror_.EncodeTo(w);
    for (uint32_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].st == WorkerState::St::kReady) {
        SendTo(i, w);
      }
    }
  }

  ProcessClusterConfig cfg_;
  Placement placement_;
  FaultInjector mirror_;
  // The controller's authoritative host -> endpoint map; every worker Hello
  // updates it and the whole map is re-broadcast (workers overlay, so a
  // restarted machine's new port retargets even in-flight retransmits).
  PeerAddressMap addr_map_;
  int spawner_fd_ = -1;
  pid_t spawner_pid_ = -1;
  std::vector<WorkerState> workers_;
  uint64_t next_seq_ = 1;
  // Transport-counter collection state (loop thread only), per worker.
  uint64_t stats_gen_ = 0;
  uint32_t stats_expected_ = 0;
  uint32_t stats_received_ = 0;
  std::vector<std::map<std::string, uint64_t>> stats_by_worker_;
  std::unordered_map<uint64_t, PendingJoin> pending_joins_;
  std::unordered_map<uint64_t, PendingCreate> pending_creates_;
  std::map<std::tuple<uint64_t, uint64_t, uint64_t>, std::vector<std::function<void()>>>
      watches_;
};

// --- ProcessCluster --------------------------------------------------------

ProcessClusterConfig ProcessClusterConfig::FastProtocol(int num_nodes, uint64_t seed) {
  // Derived from the LiveCluster preset so the two wall-clock backends can
  // never drift apart on protocol constants (loopback TCP is far faster than
  // the scaled timeouts, so the same values hold); only the harness wait
  // bounds widen — builds fork real processes and joins cross real TCP
  // handshakes.
  const LiveClusterConfig live = LiveClusterConfig::FastProtocol(num_nodes, seed);
  ProcessClusterConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.seed = seed;
  cfg.overlay = live.overlay;
  cfg.fuse = live.fuse;
  cfg.timing = live.timing;
  cfg.timing.join_wait = Duration::Seconds(30);
  cfg.timing.restart_wait = Duration::Seconds(30);
  return cfg;
}

namespace {

HarnessConfig HarnessConfigFrom(const ProcessClusterConfig& c) {
  HarnessConfig hc;
  hc.num_nodes = c.num_nodes;
  hc.overlay = c.overlay;
  hc.fuse = c.fuse;
  hc.join_batch = c.join_batch;
  hc.timing = c.timing;
  hc.placement = c.MakePlacement();
  return hc;
}

}  // namespace

ProcessCluster::ProcessCluster(ProcessClusterConfig config)
    : ClusterHarness(std::make_unique<ProcessDeployment>(config), HarnessConfigFrom(config)),
      pd_(static_cast<ProcessDeployment*>(&deployment())),
      joined_(static_cast<size_t>(config.num_nodes), false) {}

ProcessCluster::~ProcessCluster() {
  // This subclass's members (joined_) are destroyed before ~ClusterHarness
  // gets to quiesce the backend, and late worker events (a churn restart's
  // JoinResult) would still dispatch into them from the controller loop.
  // Stop the loop first; the base destructor's PrepareTeardown is idempotent.
  deployment().PrepareTeardown();
}

bool ProcessCluster::IsUp(size_t i) const {
  // A respawning worker is not usable yet (no process to command); sample
  // from the protocol context during churn, as with the other backends.
  return up_[i] && pd_->HostUsable(hosts_[i]);
}

bool ProcessCluster::IsJoined(size_t i) { return joined_[i]; }

void ProcessCluster::CreateNodeInContext(size_t i) {
  pd_->SendCreateNode(hosts_[i], NameOf(i), env().rng().NextU64());
}

void ProcessCluster::JoinFirstInContext(size_t i) {
  pd_->SendJoinFirst(hosts_[i]);
  joined_[i] = true;  // JoinAsFirst cannot fail
}

void ProcessCluster::JoinInContext(size_t i, size_t boot,
                                   std::function<void(const Status&)> done) {
  pd_->SendJoin(hosts_[i], hosts_[boot], /*start_maint=*/false,
                [this, i, done = std::move(done)](const Status& s) {
                  if (s.ok()) {
                    joined_[i] = true;
                  }
                  if (done) {
                    done(s);
                  }
                });
}

void ProcessCluster::StartMaintenanceInContext(size_t i) {
  pd_->SendStartMaintenance(hosts_[i]);
}

void ProcessCluster::LeafExchangeInContext(size_t i) { pd_->SendLeafExchange(hosts_[i]); }

void ProcessCluster::RetireNodeInContext(size_t i) {
  // The node's process state is already gone (SIGKILL for a whole machine,
  // the worker-side graveyard for an in-place kill); nothing in this process
  // holds node state.
  joined_[i] = false;
}

void ProcessCluster::ReviveNodeInContext(size_t i, size_t boot) {
  pd_->QueueRevive(hosts_[i], NameOf(i), env().rng().NextU64(), hosts_[boot],
                   [this, i](const Status& s) {
                     if (s.ok()) {
                       joined_[i] = true;
                     }
                   });
}

void ProcessCluster::CreateGroupInContext(size_t root, std::vector<NodeRef> members,
                                          std::function<void(const Status&, FuseId)> cb) {
  pd_->SendCreateGroup(hosts_[root], members, std::move(cb));
}

void ProcessCluster::WatchGroupMemberInContext(size_t m, FuseId id,
                                               std::function<void()> on_fire) {
  pd_->SendWatch(hosts_[m], id, std::move(on_fire));
}

std::vector<std::map<std::string, uint64_t>> ProcessCluster::TransportCountersByMachine() {
  return pd_->CollectTransportCounters(Duration::Seconds(5));
}

std::map<std::string, uint64_t> ProcessCluster::TransportCounters() {
  std::map<std::string, uint64_t> sum;
  for (const auto& machine : TransportCountersByMachine()) {
    for (const auto& [name, value] : machine) {
      sum[name] += value;
    }
  }
  return sum;
}

}  // namespace fuse

#endif  // defined(__linux__)
