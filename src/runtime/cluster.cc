#include "runtime/cluster.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace fuse {

ClusterHarness::ClusterHarness(std::unique_ptr<Deployment> deployment, HarnessConfig config)
    : deploy_(std::move(deployment)), config_(std::move(config)) {
  // The harness starts maintenance explicitly once the whole overlay exists;
  // this keeps construction cheap and matches a coordinated deployment.
  config_.overlay.start_maintenance_on_join = false;
  // Backends that don't co-locate leave the placement default-constructed;
  // normalize it to one node per machine so MachineOf/CrashMachine always
  // have a consistent map to consult.
  if (config_.placement.num_nodes != config_.num_nodes) {
    FUSE_CHECK(config_.placement.num_nodes == 0)
        << "placement covers " << config_.placement.num_nodes << " nodes, cluster has "
        << config_.num_nodes;
    config_.placement = Placement::Pack(config_.num_nodes, 1);
  }
}

ClusterHarness::~ClusterHarness() {
  // Quiesce the backend first: once no protocol code can run concurrently
  // (the live loop thread is joined; the sim pumps nothing on its own),
  // churn timers and nodes tear down on this thread without racing queued
  // deliveries or send callbacks that reference them.
  deploy_->PrepareTeardown();
  churning_ = false;
  for (Timer& t : churn_timers_) {
    t.Cancel();
  }
  churn_timers_.clear();
  nodes_.clear();
  graveyard_.clear();
}

std::string ClusterHarness::NameOf(size_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "node%05zu", i);
  return buf;
}

std::unique_ptr<Node> ClusterHarness::MakeNode(size_t i) {
  const NumericId numeric(env().rng().NextU64());
  return std::make_unique<Node>(transports_[i], NameOf(i), numeric, config_.overlay,
                                config_.fuse);
}

bool ClusterHarness::IsJoined(size_t i) {
  return nodes_[i] != nullptr && nodes_[i]->overlay()->joined();
}

void ClusterHarness::CreateNodeInContext(size_t i) { nodes_[i] = MakeNode(i); }

void ClusterHarness::JoinFirstInContext(size_t i) { nodes_[i]->overlay()->JoinAsFirst(); }

void ClusterHarness::JoinInContext(size_t i, size_t boot,
                                   std::function<void(const Status&)> done) {
  // The completion mutates harness bookkeeping (Build's batch counters), so
  // it is deferred to a context where that is safe on every backend.
  nodes_[i]->overlay()->Join(
      hosts_[boot], [this, done = std::move(done)](const Status& s) {
        deploy_->Defer([done, s] { done(s); });
      });
}

void ClusterHarness::StartMaintenanceInContext(size_t i) {
  nodes_[i]->overlay()->StartMaintenance();
}

void ClusterHarness::LeafExchangeInContext(size_t i) {
  nodes_[i]->overlay()->RunLeafExchangeOnce();
}

void ClusterHarness::RetireNodeInContext(size_t i) {
  FUSE_CHECK(nodes_[i] != nullptr) << "bad crash target";
  nodes_[i]->ShutdownAll();
  graveyard_.push_back(std::move(nodes_[i]));
}

void ClusterHarness::ReviveNodeInContext(size_t i, size_t boot) {
  FUSE_CHECK(nodes_[i] == nullptr) << "bad restart target";
  nodes_[i] = MakeNode(i);
  if (boot == i) {
    nodes_[i]->overlay()->JoinAsFirst();
    nodes_[i]->overlay()->StartMaintenance();
    return;
  }
  nodes_[i]->overlay()->Join(hosts_[boot], [this, i](const Status& s) {
    if (s.ok() && nodes_[i] != nullptr) {
      nodes_[i]->overlay()->StartMaintenance();
    }
  });
}

void ClusterHarness::CreateGroupInContext(size_t root, std::vector<NodeRef> members,
                                          std::function<void(const Status&, FuseId)> cb) {
  nodes_[root]->fuse()->CreateGroup(
      std::move(members), [this, cb = std::move(cb)](const Status& s, FuseId id) {
        deploy_->Defer([cb, s, id] { cb(s, id); });
      });
}

void ClusterHarness::WatchGroupMemberInContext(size_t m, FuseId id,
                                               std::function<void()> on_fire) {
  nodes_[m]->fuse()->RegisterFailureHandler(
      id, [this, fire = std::move(on_fire)](FuseId) { deploy_->Defer(fire); });
}

void ClusterHarness::SignalGroupInContext(size_t node, FuseId id) {
  if (nodes_[node] != nullptr) {
    nodes_[node]->fuse()->SignalFailure(id);
  }
}

void ClusterHarness::Build() {
  FUSE_CHECK(nodes_.empty() && up_.empty()) << "Build called twice";
  const int n = config_.num_nodes;
  transports_.reserve(n);
  hosts_.reserve(n);
  for (int i = 0; i < n; ++i) {
    Transport* t = deploy_->CreateHost(static_cast<size_t>(i));
    transports_.push_back(t);
    // Backends without in-process transports (worker OS processes) identify
    // hosts positionally.
    hosts_.push_back(t != nullptr ? t->local_host() : HostId(static_cast<uint64_t>(i)));
  }

  nodes_.resize(n);
  up_.assign(n, true);
  deploy_->Run([&] {
    for (int i = 0; i < n; ++i) {
      CreateNodeInContext(i);
    }
    // Node 0 seeds the overlay; the rest join in batches against random
    // already-joined nodes.
    JoinFirstInContext(0);
  });
  int joined_count = 1;
  int next = 1;
  while (next < n) {
    const int batch_end = std::min(n, next + config_.join_batch);
    int pending = batch_end - next;
    int failures = 0;
    deploy_->Run([&] {
      for (int i = next; i < batch_end; ++i) {
        const size_t boot = static_cast<size_t>(env().rng().UniformInt(0, joined_count - 1));
        JoinInContext(i, boot, [&pending, &failures](const Status& s) {
          --pending;
          if (!s.ok()) {
            ++failures;
          }
        });
      }
    });
    const bool joined = deploy_->AwaitCondition([&] { return pending == 0; },
                                                config_.timing.join_wait);
    // Snapshot the counters in the protocol context: on a live-backend
    // timeout, straggler join callbacks may still be mutating them on the
    // loop thread.
    int pending_now = 0;
    int failures_now = 0;
    deploy_->Run([&] {
      pending_now = pending;
      failures_now = failures;
    });
    FUSE_CHECK(joined && pending_now == 0 && failures_now == 0)
        << "overlay build failed: " << failures_now << " join failures, " << pending_now
        << " pending";
    joined_count = batch_end;
    next = batch_end;
  }

  deploy_->Run([&] {
    for (int i = 0; i < n; ++i) {
      StartMaintenanceInContext(i);
    }
  });
  // Converge the level-0 ring before handing the overlay to applications:
  // a few anti-entropy rounds let leaf sets settle so that steady state has
  // no further pointer churn (which would otherwise trigger spurious FUSE
  // tree repairs right after the experiment starts).
  for (int round = 0; round < 3; ++round) {
    deploy_->Run([&] {
      for (int i = 0; i < n; ++i) {
        LeafExchangeInContext(i);
      }
    });
    deploy_->AdvanceFor(config_.timing.settle_round);
  }
}

void ClusterHarness::Crash(size_t i) {
  deploy_->Run([this, i] { CrashInContext(i); });
}

void ClusterHarness::CrashInContext(size_t i) {
  FUSE_CHECK(i < up_.size() && up_[i]) << "bad crash target";
  up_[i] = false;
  deploy_->CrashHost(hosts_[i]);
  RetireNodeInContext(i);
}

void ClusterHarness::CrashMachine(size_t machine) {
  deploy_->Run([this, machine] {
    std::vector<size_t> victims;
    for (const size_t i : config_.placement.NodesOn(static_cast<int>(machine))) {
      if (up_[i]) {
        victims.push_back(i);
      }
    }
    FUSE_CHECK(!victims.empty()) << "no live nodes on machine " << machine;
    // Mark every co-hosted node down BEFORE the backend acts: the machine
    // dies as one event, and no observer (churn timers, IsUp probes) may see
    // a half-crashed machine.
    std::vector<HostId> hosts;
    hosts.reserve(victims.size());
    for (const size_t i : victims) {
      up_[i] = false;
      hosts.push_back(hosts_[i]);
    }
    deploy_->CrashMachine(hosts);
    for (const size_t i : victims) {
      RetireNodeInContext(i);
    }
  });
}

void ClusterHarness::RestartMachine(size_t machine) {
  for (const size_t i : config_.placement.NodesOn(static_cast<int>(machine))) {
    bool dead = false;
    deploy_->Run([&] { dead = !up_[i]; });
    if (dead) {
      Restart(i);
    }
  }
}

void ClusterHarness::RestartAsync(size_t i) {
  deploy_->Run([this, i] { RestartAsyncInContext(i); });
}

void ClusterHarness::RestartAsyncInContext(size_t i) {
  FUSE_CHECK(i < up_.size() && !up_[i]) << "bad restart target";
  deploy_->RestartHost(hosts_[i]);
  up_[i] = true;
  // Bootstrap from any live node other than ourselves.
  size_t boot = i;
  for (int tries = 0; tries < 64; ++tries) {
    const size_t candidate =
        static_cast<size_t>(env().rng().UniformInt(0, static_cast<int64_t>(up_.size()) - 1));
    if (candidate != i && IsUp(candidate) && IsJoined(candidate)) {
      boot = candidate;
      break;
    }
  }
  ReviveNodeInContext(i, boot);
}

void ClusterHarness::Restart(size_t i) {
  RestartAsync(i);
  deploy_->AwaitCondition([this, i] { return IsJoined(i); }, config_.timing.restart_wait);
}

void ClusterHarness::StartChurn(size_t first, size_t count, Duration mean_uptime,
                                Duration mean_downtime) {
  deploy_->Run([&] {
    churning_ = true;
    churn_uptime_ = mean_uptime;
    churn_downtime_ = mean_downtime;
    churn_timers_.resize(nodes_.size());
    for (size_t i = first; i < first + count && i < nodes_.size(); ++i) {
      ScheduleChurnDeath(i);
    }
  });
}

void ClusterHarness::StopChurn() {
  deploy_->Run([this] {
    churning_ = false;
    for (Timer& t : churn_timers_) {
      t.Cancel();
    }
  });
}

void ClusterHarness::ScheduleChurnDeath(size_t i) {
  const Duration life = Duration::SecondsF(env().rng().Exponential(churn_uptime_.ToSecondsF()));
  churn_timers_[i].Bind(env());
  churn_timers_[i].Start(life, [this, i] {
    if (!churning_) {
      return;
    }
    if (!IsUp(i)) {
      // A backend may report a reviving node as not-up-yet (a process worker
      // mid-respawn). If the node is nominally up, keep the kill/restart
      // cycle alive by drawing a fresh lifetime; only a truly crashed node
      // (up_ false: its rebirth timer owns the next step) ends this chain.
      if (up_[i]) {
        ScheduleChurnDeath(i);
      }
      return;
    }
    CrashInContext(i);
    ScheduleChurnRebirth(i);
  });
}

void ClusterHarness::ScheduleChurnRebirth(size_t i) {
  const Duration down = Duration::SecondsF(env().rng().Exponential(churn_downtime_.ToSecondsF()));
  churn_timers_[i].Start(down, [this, i] {
    if (!churning_ || up_[i]) {
      return;
    }
    RestartAsyncInContext(i);
    ScheduleChurnDeath(i);
  });
}

size_t ClusterHarness::NumLiveNodes() {
  size_t n = 0;
  deploy_->Run([&] {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (IsUp(i)) {
        ++n;
      }
    }
  });
  return n;
}

std::vector<size_t> ClusterHarness::PickLiveNodes(size_t k) {
  return PickLiveNodes(k, nodes_.size());
}

std::vector<size_t> ClusterHarness::PickLiveNodes(size_t k, size_t limit) {
  std::vector<size_t> live;
  deploy_->Run([&] {
    live.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size() && i < limit; ++i) {
      if (IsUp(i)) {
        live.push_back(i);
      }
    }
    FUSE_CHECK(k <= live.size()) << "not enough live nodes";
    env().rng().Shuffle(live);
    live.resize(k);
  });
  return live;
}

NodeRef ClusterHarness::RefOf(size_t i) const {
  // Names and hosts are stable across crash/restart, so refs can be built
  // even for currently-dead nodes (e.g. to attempt creating a group that
  // includes one).
  return NodeRef{NameOf(i), hosts_[i]};
}

std::vector<NodeRef> ClusterHarness::RefsOf(const std::vector<size_t>& indices) {
  std::vector<NodeRef> refs;
  refs.reserve(indices.size());
  for (size_t i : indices) {
    refs.push_back(RefOf(i));
  }
  return refs;
}

// The two structural probes below read in-process overlay state, so they
// only see nodes this process hosts (on a multi-process backend, remote
// nodes are skipped rather than dereferenced).
double ClusterHarness::AvgDistinctNeighbors() {
  size_t total = 0;
  size_t live = 0;
  deploy_->Run([&] {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (IsUp(i) && nodes_[i] != nullptr) {
        total += nodes_[i]->overlay()->NumDistinctNeighbors();
        ++live;
      }
    }
  });
  return live == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(live);
}

int ClusterHarness::CountRingViolations() {
  // Collect live nodes sorted by name; check each cw level-0 pointer.
  int violations = 0;
  deploy_->Run([&] {
    std::vector<size_t> live;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (IsUp(i) && nodes_[i] != nullptr) {
        live.push_back(i);
      }
    }
    if (live.size() < 2) {
      return;
    }
    std::sort(live.begin(), live.end(), [this](size_t a, size_t b) {
      return nodes_[a]->ref().name < nodes_[b]->ref().name;
    });
    for (size_t k = 0; k < live.size(); ++k) {
      const size_t i = live[k];
      const size_t expected = live[(k + 1) % live.size()];
      const NodeRef& cw = nodes_[i]->overlay()->table().level(0).cw;
      if (!cw.valid() || cw.name != nodes_[expected]->ref().name) {
        ++violations;
      }
    }
  });
  return violations;
}

}  // namespace fuse
