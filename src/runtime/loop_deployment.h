// LoopDeployment: the Deployment surface every wall-clock backend shares —
// protocol access marshalled onto a LiveRuntime loop thread, real sleeps,
// bounded polling waits, and loop-join teardown. LiveDeployment (in-process
// message fabric) and ProcessDeployment (worker OS processes over the socket
// transport) both derive from this and add only host management.
#ifndef FUSE_RUNTIME_LOOP_DEPLOYMENT_H_
#define FUSE_RUNTIME_LOOP_DEPLOYMENT_H_

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "runtime/cluster.h"
#include "runtime/live_runtime.h"

namespace fuse {

class LoopDeployment : public Deployment {
 public:
  explicit LoopDeployment(LiveRuntime::Config config)
      : runtime_(std::make_unique<LiveRuntime>(config)) {}

  Environment& env() override { return *runtime_; }

  void ApplyFaults(const std::function<void(FaultInjector&)>& fn) override {
    runtime_->ApplyFaults(fn);
  }

  void Run(const std::function<void()>& fn) override { runtime_->RunOnLoop(fn); }

  void AdvanceFor(Duration d) override {
    FUSE_CHECK(!runtime_->OnLoopThread()) << "blocking wait on the loop thread";
    std::this_thread::sleep_for(std::chrono::microseconds(d.ToMicros()));
  }

  bool AwaitCondition(const std::function<bool()>& pred, Duration bound) override {
    FUSE_CHECK(!runtime_->OnLoopThread()) << "blocking wait on the loop thread";
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(bound.ToMicros());
    for (;;) {
      bool ok = false;
      // A false return (Stop won the race) leaves ok false; the poll then
      // runs out its bound instead of spinning on a dead loop.
      runtime_->RunOnLoop([&] { ok = pred(); });
      if (ok) {
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
      std::this_thread::sleep_for(kPollInterval);
    }
  }

  bool virtual_time() const override { return false; }

  // Stops and joins the loop thread. Queued events are dropped, not run;
  // threads still blocked in RunOnLoop are released with "not run";
  // Schedule/Cancel from node destructors still work against the (now
  // inert) timer store.
  void PrepareTeardown() override { runtime_->Stop(); }

  LiveRuntime& runtime() { return *runtime_; }

 protected:
  // Wall-clock granularity of AwaitCondition polls. Each poll marshals the
  // predicate onto the loop thread, so this trades latency against loop
  // load; 2 ms is well under the scaled protocol constants (>= 50 ms).
  static constexpr std::chrono::milliseconds kPollInterval{2};

  std::unique_ptr<LiveRuntime> runtime_;
};

}  // namespace fuse

#endif  // FUSE_RUNTIME_LOOP_DEPLOYMENT_H_
