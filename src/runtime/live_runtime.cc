#include "runtime/live_runtime.h"

#include <future>
#include <utility>

#include "common/logging.h"

namespace fuse {

LiveRuntime::LiveRuntime(Config config)
    : config_(config), rng_(config.seed), start_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { Loop(); });
  loop_id_ = thread_.get_id();
}

LiveRuntime::~LiveRuntime() { Stop(); }

void LiveRuntime::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

TimePoint LiveRuntime::Now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return TimePoint::FromMicros(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

TimerId LiveRuntime::Schedule(Duration d, UniqueFunction fn) {
  const auto when = std::chrono::steady_clock::now() + std::chrono::microseconds(d.ToMicros());
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
    by_seq_.emplace(seq, queue_.emplace(QueueKey(when, seq), std::move(fn)).first);
  }
  cv_.notify_all();
  return TimerId(seq);
}

bool LiveRuntime::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!id.valid()) {
    return false;
  }
  const auto it = by_seq_.find(id.value);
  if (it == by_seq_.end()) {
    return false;  // already ran, already cancelled, or never issued
  }
  queue_.erase(it->second);
  by_seq_.erase(it);
  return true;
}

void LiveRuntime::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stopping_) {
      return;
    }
    if (queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const auto it = queue_.begin();
    const auto when = it->first.first;
    const auto now = std::chrono::steady_clock::now();
    if (when > now) {
      cv_.wait_until(lock, when);
      continue;
    }
    const uint64_t seq = it->first.second;
    UniqueFunction fn = std::move(it->second);
    by_seq_.erase(seq);
    queue_.erase(it);
    lock.unlock();
    fn();
    lock.lock();
  }
}

LiveTransport* LiveRuntime::CreateHost() {
  std::lock_guard<std::mutex> lock(mu_);
  const HostId id(hosts_.size());
  hosts_.push_back(std::make_unique<LiveTransport>(this, id));
  return hosts_.back().get();
}

void LiveRuntime::RunOnLoop(std::function<void()> fn) {
  if (OnLoopThread()) {
    fn();
    return;
  }
  std::promise<void> done;
  Schedule(Duration::Zero(), [&fn, &done] {
    fn();
    done.set_value();
  });
  done.get_future().wait();
}

void LiveRuntime::ApplyFaults(const std::function<void(FaultInjector&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  fn(faults_);
}

void LiveRuntime::SetHostDown(HostId h, bool down) {
  ApplyFaults([h, down](FaultInjector& f) { f.SetHostDown(h, down); });
}

void LiveRuntime::Send(WireMessage msg, Transport::SendCallback cb) {
  bool blocked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocked = faults_.IsBlocked(msg.from, msg.to);
  }
  metrics_.IncMessage(msg.category, msg.WireSize());
  const bool lost = blocked || rng_.Bernoulli(config_.loss_probability);
  const Duration latency = Duration::Micros(rng_.UniformInt(
      config_.min_latency.ToMicros(), config_.max_latency.ToMicros()));
  if (lost) {
    // Reliable-transport semantics: the sender eventually learns the send
    // failed (timeout compressed to a few latencies here).
    if (cb) {
      Schedule(latency * int64_t{4},
               [cb = std::move(cb)] { cb(Status::Broken("live: peer unreachable")); });
    }
    return;
  }
  const HostId to = msg.to;
  Schedule(latency, [this, msg = std::move(msg), to] {
    Transport::Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Re-check the rules at delivery time: a partition or crash applied
      // while the message was in flight takes effect immediately, as it does
      // for the sim fabric's per-attempt checks.
      if (faults_.IsBlocked(msg.from, to)) {
        return;
      }
      const uint8_t slot = MsgTypeSlot(msg.type);
      if (to.value >= handlers_.size() || slot >= handlers_[to.value].size() ||
          !handlers_[to.value][slot]) {
        return;
      }
      handler = handlers_[to.value][slot];
    }
    handler(msg);
  });
  if (cb) {
    Schedule(latency * int64_t{2}, [cb = std::move(cb)] { cb(Status::Ok()); });
  }
}

void LiveRuntime::RegisterHandler(HostId h, uint16_t type, Transport::Handler handler) {
  const uint8_t slot = MsgTypeSlot(type);
  FUSE_CHECK(slot != 0) << "unknown message type " << type
                        << " (add it to msgtype::kAllTypes)";
  std::lock_guard<std::mutex> lock(mu_);
  if (h.value >= handlers_.size()) {
    handlers_.resize(h.value + 1);
  }
  if (handlers_[h.value].size() < msgtype::kNumSlots) {
    handlers_[h.value].resize(msgtype::kNumSlots);
  }
  handlers_[h.value][slot] = std::move(handler);
}

void LiveRuntime::UnregisterAllHandlers(HostId h) {
  std::lock_guard<std::mutex> lock(mu_);
  if (h.value < handlers_.size()) {
    handlers_[h.value].clear();
  }
}

void LiveTransport::Send(WireMessage msg, SendCallback cb) {
  msg.from = host_;
  runtime_->Send(std::move(msg), std::move(cb));
}

void LiveTransport::RegisterHandler(uint16_t type, Handler handler) {
  runtime_->RegisterHandler(host_, type, std::move(handler));
}

void LiveTransport::UnregisterAllHandlers() { runtime_->UnregisterAllHandlers(host_); }

}  // namespace fuse
