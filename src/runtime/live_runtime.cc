#include "runtime/live_runtime.h"

#include <future>
#include <utility>

#include "common/logging.h"

namespace fuse {

LiveRuntime::LiveRuntime(Config config)
    : config_(config), rng_(config.seed), start_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { Loop(); });
}

LiveRuntime::~LiveRuntime() { Stop(); }

void LiveRuntime::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

TimePoint LiveRuntime::Now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return TimePoint::FromMicros(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

TimerId LiveRuntime::Schedule(Duration d, UniqueFunction fn) {
  const auto when = std::chrono::steady_clock::now() + std::chrono::microseconds(d.ToMicros());
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
    queue_.emplace(std::make_pair(when, seq), std::move(fn));
    pending_.emplace(seq, when);
  }
  cv_.notify_all();
  return TimerId(seq);
}

bool LiveRuntime::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!id.valid()) {
    return false;
  }
  const auto it = pending_.find(id.value);
  if (it == pending_.end()) {
    return false;  // already ran, already cancelled, or never issued
  }
  queue_.erase(std::make_pair(it->second, id.value));
  pending_.erase(it);
  return true;
}

void LiveRuntime::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stopping_) {
      return;
    }
    if (queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const auto it = queue_.begin();
    const auto when = it->first.first;
    const auto now = std::chrono::steady_clock::now();
    if (when > now) {
      cv_.wait_until(lock, when);
      continue;
    }
    const uint64_t seq = it->first.second;
    UniqueFunction fn = std::move(it->second);
    queue_.erase(it);
    pending_.erase(seq);
    lock.unlock();
    fn();
    lock.lock();
  }
}

LiveTransport* LiveRuntime::CreateHost() {
  std::lock_guard<std::mutex> lock(mu_);
  const HostId id(hosts_.size());
  hosts_.push_back(std::make_unique<LiveTransport>(this, id));
  return hosts_.back().get();
}

void LiveRuntime::RunOnLoop(std::function<void()> fn) {
  std::promise<void> done;
  Schedule(Duration::Zero(), [&fn, &done] {
    fn();
    done.set_value();
  });
  done.get_future().wait();
}

void LiveRuntime::SetHostDown(HostId h, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  if (h.value >= host_down_.size()) {
    host_down_.resize(h.value + 1, 0);
  }
  host_down_[h.value] = down ? 1 : 0;
}

void LiveRuntime::Send(WireMessage msg, Transport::SendCallback cb) {
  bool blocked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocked = IsDownLocked(msg.from) || IsDownLocked(msg.to);
  }
  metrics_.IncMessage(msg.category, msg.WireSize());
  const bool lost = blocked || rng_.Bernoulli(config_.loss_probability);
  const Duration latency = Duration::Micros(rng_.UniformInt(
      config_.min_latency.ToMicros(), config_.max_latency.ToMicros()));
  if (lost) {
    // Reliable-transport semantics: the sender eventually learns the send
    // failed (timeout compressed to a few latencies here).
    if (cb) {
      Schedule(latency * int64_t{4},
               [cb = std::move(cb)] { cb(Status::Broken("live: peer unreachable")); });
    }
    return;
  }
  const HostId to = msg.to;
  Schedule(latency, [this, msg = std::move(msg), to] {
    Transport::Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (IsDownLocked(to)) {
        return;
      }
      const uint8_t slot = MsgTypeSlot(msg.type);
      if (to.value >= handlers_.size() || slot >= handlers_[to.value].size() ||
          !handlers_[to.value][slot]) {
        return;
      }
      handler = handlers_[to.value][slot];
    }
    handler(msg);
  });
  if (cb) {
    Schedule(latency * int64_t{2}, [cb = std::move(cb)] { cb(Status::Ok()); });
  }
}

void LiveRuntime::RegisterHandler(HostId h, uint16_t type, Transport::Handler handler) {
  const uint8_t slot = MsgTypeSlot(type);
  FUSE_CHECK(slot != 0) << "unknown message type " << type
                        << " (add it to msgtype::kAllTypes)";
  std::lock_guard<std::mutex> lock(mu_);
  if (h.value >= handlers_.size()) {
    handlers_.resize(h.value + 1);
  }
  if (handlers_[h.value].size() < msgtype::kNumSlots) {
    handlers_[h.value].resize(msgtype::kNumSlots);
  }
  handlers_[h.value][slot] = std::move(handler);
}

void LiveRuntime::UnregisterAllHandlers(HostId h) {
  std::lock_guard<std::mutex> lock(mu_);
  if (h.value < handlers_.size()) {
    handlers_[h.value].clear();
  }
}

void LiveTransport::Send(WireMessage msg, SendCallback cb) {
  msg.from = host_;
  runtime_->Send(std::move(msg), std::move(cb));
}

void LiveTransport::RegisterHandler(uint16_t type, Handler handler) {
  runtime_->RegisterHandler(host_, type, std::move(handler));
}

void LiveTransport::UnregisterAllHandlers() { runtime_->UnregisterAllHandlers(host_); }

}  // namespace fuse
