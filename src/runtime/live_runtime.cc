#include "runtime/live_runtime.h"

#include <utility>

#include "common/logging.h"

#if FUSE_LIVE_RUNTIME_EPOLL
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>
#endif

namespace fuse {

LiveRuntime::LiveRuntime(Config config)
    : config_(config),
      rng_(config.seed),
      send_rng_(config.seed * 0x9e3779b97f4a7c15ULL + 1),
      start_(std::chrono::steady_clock::now()) {
#if FUSE_LIVE_RUNTIME_EPOLL
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  FUSE_CHECK(epoll_fd_ >= 0) << "epoll_create1 failed";
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  FUSE_CHECK(wake_fd_ >= 0 && timer_fd_ >= 0) << "eventfd/timerfd_create failed";
  struct epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  FUSE_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
  ev.data.fd = timer_fd_;
  FUSE_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) == 0);
#endif
  thread_ = std::thread([this] { Loop(); });
  loop_id_ = thread_.get_id();
}

LiveRuntime::~LiveRuntime() {
  Stop();
#if FUSE_LIVE_RUNTIME_EPOLL
  ::close(timer_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
#endif
}

void LiveRuntime::WakeLoop() {
#if FUSE_LIVE_RUNTIME_EPOLL
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
#else
  cv_.notify_all();
#endif
}

void LiveRuntime::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  WakeLoop();
  if (thread_.joinable()) {
    thread_.join();
  }
  // The loop is gone: any RunOnLoop whose wrapper never started would block
  // forever on its state. Release the callers with ran=false — the closures
  // are dropped, not run (running protocol code after stop would race the
  // teardown the caller is about to do).
  std::unordered_map<uint64_t, std::shared_ptr<MarshalState>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphans.swap(pending_marshals_);
  }
  for (auto& [seq, st] : orphans) {
    {
      std::lock_guard<std::mutex> sl(st->m);
      st->done = true;  // ran stays false
    }
    st->cv.notify_all();
  }
}

TimePoint LiveRuntime::Now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return TimePoint::FromMicros(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

TimerId LiveRuntime::Schedule(Duration d, UniqueFunction fn) {
  const auto when = std::chrono::steady_clock::now() + std::chrono::microseconds(d.ToMicros());
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
    by_seq_.emplace(seq, queue_.emplace(QueueKey(when, seq), std::move(fn)).first);
  }
  WakeLoop();
  return TimerId(seq);
}

bool LiveRuntime::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!id.valid()) {
    return false;
  }
  const auto it = by_seq_.find(id.value);
  if (it == by_seq_.end()) {
    return false;  // already ran, already cancelled, or never issued
  }
  queue_.erase(it->second);
  by_seq_.erase(it);
  return true;
}

void LiveRuntime::RunDueTimers(std::unique_lock<std::mutex>& lock) {
  while (!stopping_ && !queue_.empty()) {
    const auto it = queue_.begin();
    if (it->first.first > std::chrono::steady_clock::now()) {
      return;
    }
    const uint64_t seq = it->first.second;
    UniqueFunction fn = std::move(it->second);
    by_seq_.erase(seq);
    queue_.erase(it);
    lock.unlock();
    fn();
    lock.lock();
  }
}

#if FUSE_LIVE_RUNTIME_EPOLL

void LiveRuntime::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  struct epoll_event evs[64];
  // The deadline the timerfd is currently armed for (min() = disarmed), so
  // pure-I/O wakeups on the socket hot path skip the settime syscall.
  auto armed = std::chrono::steady_clock::time_point::min();
  while (true) {
    RunDueTimers(lock);
    if (stopping_) {
      return;
    }
    // Arm the timerfd to the earliest deadline (disarm when idle); epoll then
    // wakes this thread for whichever comes first: a due timer, an I/O event,
    // or a cross-thread wakeup.
    const auto next = queue_.empty() ? std::chrono::steady_clock::time_point::min()
                                     : queue_.begin()->first.first;
    if (next != armed) {
      armed = next;
      struct itimerspec its{};
      if (!queue_.empty()) {
        auto delta = next - std::chrono::steady_clock::now();
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count();
        its.it_value.tv_sec = ns > 0 ? ns / 1000000000 : 0;
        its.it_value.tv_nsec = ns > 0 ? ns % 1000000000 : 1;
      }
      ::timerfd_settime(timer_fd_, 0, &its, nullptr);
    }
    lock.unlock();
    const int n = ::epoll_wait(epoll_fd_, evs, 64, -1);
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == wake_fd_ || fd == timer_fd_) {
        uint64_t buf;
        while (::read(fd, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      FdHandler handler;
      {
        std::lock_guard<std::mutex> hl(mu_);
        const auto it = fd_handlers_.find(fd);
        if (it != fd_handlers_.end()) {
          handler = it->second;  // copy: the handler may Unwatch itself
        }
      }
      if (handler) {
        handler(evs[i].events);
      }
    }
    lock.lock();
  }
}

void LiveRuntime::WatchFd(int fd, uint32_t events, FdHandler handler) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_handlers_[fd] = std::move(handler);
  }
  struct epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  FUSE_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) << "epoll add fd " << fd;
}

void LiveRuntime::ModifyFd(int fd, uint32_t events) {
  struct epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  FUSE_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0) << "epoll mod fd " << fd;
}

void LiveRuntime::UnwatchFd(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_handlers_.erase(fd);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

#else  // !FUSE_LIVE_RUNTIME_EPOLL

// Portable fallback: a pure timer loop on a condition variable. No I/O
// multiplexing — the socket transport and process deployment are Linux-only.
void LiveRuntime::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    RunDueTimers(lock);
    if (stopping_) {
      return;
    }
    if (queue_.empty()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, queue_.begin()->first.first);
    }
  }
}

void LiveRuntime::WatchFd(int, uint32_t, FdHandler) {
  FUSE_CHECK(false) << "WatchFd requires the epoll loop (Linux)";
}
void LiveRuntime::ModifyFd(int, uint32_t) {
  FUSE_CHECK(false) << "ModifyFd requires the epoll loop (Linux)";
}
void LiveRuntime::UnwatchFd(int) {
  FUSE_CHECK(false) << "UnwatchFd requires the epoll loop (Linux)";
}

#endif  // FUSE_LIVE_RUNTIME_EPOLL

LiveTransport* LiveRuntime::CreateHost() {
  std::lock_guard<std::mutex> lock(mu_);
  const HostId id(hosts_.size());
  hosts_.push_back(std::make_unique<LiveTransport>(this, id));
  return hosts_.back().get();
}

bool LiveRuntime::RunOnLoop(std::function<void()> fn) {
  if (OnLoopThread()) {
    fn();
    return true;
  }
  auto st = std::make_shared<MarshalState>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return false;
    }
    const uint64_t seq = next_seq_++;
    pending_marshals_.emplace(seq, st);
    auto wrapper = [this, seq, st, fn = std::move(fn)] {
      {
        // De-register before running: once the wrapper has started, Stop()'s
        // drain (which only runs after joining this thread) must not signal
        // the state a second time.
        std::lock_guard<std::mutex> l(mu_);
        pending_marshals_.erase(seq);
      }
      fn();
      {
        std::lock_guard<std::mutex> sl(st->m);
        st->done = true;
        st->ran = true;
      }
      st->cv.notify_all();
    };
    const auto now = std::chrono::steady_clock::now();
    by_seq_.emplace(seq, queue_.emplace(QueueKey(now, seq), std::move(wrapper)).first);
  }
  WakeLoop();
  std::unique_lock<std::mutex> sl(st->m);
  st->cv.wait(sl, [&] { return st->done; });
  return st->ran;
}

void LiveRuntime::ApplyFaults(const std::function<void(FaultInjector&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  fn(faults_);
}

void LiveRuntime::SetHostDown(HostId h, bool down) {
  ApplyFaults([h, down](FaultInjector& f) { f.SetHostDown(h, down); });
}

void LiveRuntime::Send(WireMessage msg, Transport::SendCallback cb) {
  bool lost;
  Duration latency;
  {
    // Send is callable from any thread, so its draws (and the metrics
    // counters) sit in the same critical section as the fault-rule check —
    // and come from send_rng_, never the loop thread's unlocked protocol
    // stream (a lock on only one side of a shared generator would still
    // race the ping-jitter draws protocol code makes through env().rng()).
    std::lock_guard<std::mutex> lock(mu_);
    metrics_.IncMessage(msg.category, msg.WireSize());
    lost = faults_.IsBlocked(msg.from, msg.to) || send_rng_.Bernoulli(config_.loss_probability);
    latency = Duration::Micros(send_rng_.UniformInt(config_.min_latency.ToMicros(),
                                                    config_.max_latency.ToMicros()));
    // Slow-but-alive rules stretch the one-way latency; the same term feeds
    // the loss-timeout path below, mirroring the sim fabric's inflated RTO.
    latency += faults_.ExtraDelay(msg.from, msg.to);
  }
  if (lost) {
    // Reliable-transport semantics: the sender eventually learns the send
    // failed (timeout compressed to a few latencies here).
    if (cb) {
      Schedule(latency * int64_t{4},
               [cb = std::move(cb)] { cb(Status::Broken("live: peer unreachable")); });
    }
    return;
  }
  const HostId to = msg.to;
  // mutable: the inner Schedule below genuinely moves `cb` out.
  Schedule(latency, [this, msg = std::move(msg), to, latency, cb = std::move(cb)]() mutable {
    Transport::Handler handler;
    bool dropped = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Re-check the rules at delivery time: a partition or crash applied
      // while the message was in flight takes effect immediately, as it does
      // for the sim fabric's per-attempt checks.
      if (faults_.IsBlocked(msg.from, to)) {
        dropped = true;
      } else {
        const uint8_t slot = MsgTypeSlot(msg.type);
        if (to.value < handlers_.size() && slot < handlers_[to.value].size()) {
          handler = handlers_[to.value][slot];
        }
      }
    }
    if (!dropped && handler) {
      handler(msg);
    }
    // The ack reports the delivery outcome: Ok only when the message reached
    // the destination host (dispatched, or delivered-and-ignored for an
    // unregistered type), Broken when the delivery-time fault re-check
    // dropped it — matching the sim fabric's per-attempt semantics. The
    // sender learns at ~2x latency (one round trip) either way.
    if (cb) {
      Schedule(latency, [cb = std::move(cb), dropped] {
        cb(dropped ? Status::Broken("live: peer unreachable") : Status::Ok());
      });
    }
  });
}

void LiveRuntime::RegisterHandler(HostId h, uint16_t type, Transport::Handler handler) {
  const uint8_t slot = MsgTypeSlot(type);
  FUSE_CHECK(slot != 0) << "unknown message type " << type
                        << " (add it to msgtype::kAllTypes)";
  std::lock_guard<std::mutex> lock(mu_);
  if (h.value >= handlers_.size()) {
    handlers_.resize(h.value + 1);
  }
  if (handlers_[h.value].size() < msgtype::kNumSlots) {
    handlers_[h.value].resize(msgtype::kNumSlots);
  }
  handlers_[h.value][slot] = std::move(handler);
}

void LiveRuntime::UnregisterAllHandlers(HostId h) {
  std::lock_guard<std::mutex> lock(mu_);
  if (h.value < handlers_.size()) {
    handlers_[h.value].clear();
  }
}

void LiveTransport::Send(WireMessage msg, SendCallback cb) {
  msg.from = host_;
  runtime_->Send(std::move(msg), std::move(cb));
}

void LiveTransport::RegisterHandler(uint16_t type, Handler handler) {
  runtime_->RegisterHandler(host_, type, std::move(handler));
}

void LiveTransport::UnregisterAllHandlers() { runtime_->UnregisterAllHandlers(host_); }

}  // namespace fuse
