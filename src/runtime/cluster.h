// ClusterHarness: deployment-agnostic cluster machinery — topology-wide
// build/join, fail-stop crash and restart, the churn driver, fault-rule
// application, and the structural probes the paper's experiments use
// (section 7). The harness is parameterized over a small Deployment backend
// interface; the discrete-event simulator (SimCluster) and the wall-clock
// threaded runtime (LiveCluster) are both thin adapters over it, so every
// fault schedule written against the harness runs unchanged on either — the
// paper's "identical code base except for the base messaging layer" claim,
// now including the failure drivers, not just the protocol stack.
//
// Per-node operations (create, join, crash/retire, group create, failure
// watches) are virtual *InContext hooks: the in-process backends implement
// them with direct Node access, while ProcessCluster
// (src/runtime/process_cluster.h) overrides them with control-protocol
// commands to worker OS processes — which is what lets one scenario
// definition drive nodes it cannot touch in memory.
#ifndef FUSE_RUNTIME_CLUSTER_H_
#define FUSE_RUNTIME_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_injector.h"
#include "runtime/node.h"
#include "runtime/placement.h"
#include "sim/environment.h"
#include "sim/timer.h"

namespace fuse {

// Harness-level waits. Defaults are the simulator's virtual-time bounds; a
// wall-clock backend substitutes bounds matched to its (scaled) protocol
// constants.
struct HarnessTiming {
  // Bound on one batch of overlay joins during Build.
  Duration join_wait = Duration::Minutes(10);
  // Quiet period after each anti-entropy round during Build.
  Duration settle_round = Duration::Seconds(30);
  // Bound on a blocking Restart rejoining the overlay.
  Duration restart_wait = Duration::Minutes(5);
};

// The backend surface the harness needs: create hosts, crash/restart them at
// the fabric level, apply fault rules, execute in the protocol context, and
// advance (virtual or wall-clock) time.
class Deployment {
 public:
  virtual ~Deployment() = default;

  virtual Environment& env() = 0;

  // Creates host `index`'s transport endpoint. Placement policy (e.g. router
  // co-location) is backend-specific. Called once per host, in index order.
  // A backend whose hosts live in other processes (no in-process transport)
  // returns nullptr; the harness then assigns HostId(index) directly.
  virtual Transport* CreateHost(size_t index) = 0;

  // Fabric-level fail-stop crash: connections break, handlers clear, and the
  // fault rules mark the host down. Restart brings a fresh incarnation up.
  virtual void CrashHost(HostId h) = 0;
  virtual void RestartHost(HostId h) = 0;

  // Crashes every host co-located on one machine as a single failure event.
  // The default decomposes into per-host crashes (correct for in-process
  // backends, where a "machine" is bookkeeping); a backend whose machines are
  // real units of failure (one worker OS process hosting N nodes) overrides
  // this with one genuine kill.
  virtual void CrashMachine(const std::vector<HostId>& hosts) {
    for (const HostId h : hosts) {
      CrashHost(h);
    }
  }

  // Runs `fn` against the backend's fault rules under the backend's locking
  // discipline (none in the sim; the loop lock in the live runtime). In-process
  // backends take effect by the time this returns; a multi-process backend
  // replicates the rules to its workers asynchronously (effect within a
  // propagation window, not on return) — schedules that need an exact fault
  // edge must allow for that, as the shared scenarios' bounded waits do.
  virtual void ApplyFaults(const std::function<void(FaultInjector&)>& fn) = 0;

  // Executes `fn` in the protocol context and waits for it: a direct call in
  // the single-threaded sim, a loop-thread marshal (inline when already on
  // the loop thread) in the live runtime. All node/overlay/FUSE access from
  // outside the protocol context must go through here.
  virtual void Run(const std::function<void()>& fn) = 0;

  // Advances time by `d`: virtual time in the sim, a wall-clock sleep live.
  virtual void AdvanceFor(Duration d) = 0;

  // Runs until `pred` (evaluated in the protocol context) holds or `bound`
  // elapses; returns pred's final value. Virtual-time event pumping in the
  // sim, bounded wall-clock polling live.
  virtual bool AwaitCondition(const std::function<bool()>& pred, Duration bound) = 0;

  // True when time is simulated (waits are exact and free).
  virtual bool virtual_time() const = 0;

  // Quiesces the backend ahead of harness teardown: after this returns, no
  // protocol code runs concurrently (the live runtime stops and joins its
  // loop thread; the sim — already quiescent between Run*/Advance calls —
  // needs nothing), so node destruction is race-free on the caller's
  // thread. The deployment must still accept Schedule/Cancel calls (node
  // and timer destructors issue them) without running anything.
  virtual void PrepareTeardown() {}

  // Defers a harness-level upcall (join completion, group-create result,
  // failure-watch fire) to a point where it may safely touch harness-shared
  // state. Single-context backends run it immediately; the sharded simulator
  // records it on the executing shard and replays it on the control thread at
  // the next epoch barrier, in deterministic (time, shard, seq) order.
  virtual void Defer(std::function<void()> fn) { fn(); }
};

// Deployment-independent slice of a cluster configuration.
struct HarnessConfig {
  int num_nodes = 0;
  SkipNetConfig overlay;
  FuseParams fuse;
  // Nodes joined concurrently during Build (smaller = slower but gentler).
  int join_batch = 16;
  HarnessTiming timing;
  // Which machine each node lives on. Backends fill this from their own
  // co-location knobs; left default it is normalized to one node per machine
  // in the harness constructor.
  Placement placement;
};

class ClusterHarness {
 public:
  ClusterHarness(std::unique_ptr<Deployment> deployment, HarnessConfig config);
  virtual ~ClusterHarness();

  ClusterHarness(const ClusterHarness&) = delete;
  ClusterHarness& operator=(const ClusterHarness&) = delete;

  // Creates all hosts and joins every node into the overlay, then starts
  // liveness maintenance everywhere. Advances time as needed.
  // FUSE_CHECK-fails if the overlay could not be built.
  void Build();

  Deployment& deployment() { return *deploy_; }
  Environment& env() { return deploy_->env(); }
  const HarnessConfig& harness_config() const { return config_; }

  size_t size() const { return up_.size(); }
  // In-process backends only: direct access to the node stack. A
  // multi-process backend has no in-memory nodes (use the *InContext
  // vocabulary below instead).
  Node& node(size_t i) { return *nodes_[i]; }
  // Plain read; during live churn, sample it from the protocol context (Run).
  virtual bool IsUp(size_t i) const { return nodes_[i] != nullptr && up_[i]; }
  // True once node i's overlay join completed. Evaluate in the protocol
  // context during churn.
  virtual bool IsJoined(size_t i);
  static std::string NameOf(size_t i);

  // --- protocol-context execution and time control (see Deployment) ---
  void Run(const std::function<void()>& fn) { deploy_->Run(fn); }
  void AdvanceFor(Duration d) { deploy_->AdvanceFor(d); }
  bool Await(const std::function<bool()>& pred, Duration bound) {
    return deploy_->AwaitCondition(pred, bound);
  }
  void ApplyFaults(const std::function<void(FaultInjector&)>& fn) { deploy_->ApplyFaults(fn); }
  bool virtual_time() const { return deploy_->virtual_time(); }

  // --- failure injection ---
  // Fail-stop crash: the node loses all state and stops participating.
  void Crash(size_t i);
  // Restart after a crash: fresh node state (new numeric id, no FUSE state),
  // rejoins the overlay via a live bootstrap. Blocks until joined.
  void Restart(size_t i);
  // Variant that only initiates the rejoin (for use inside the protocol
  // context, e.g. from a churn timer).
  void RestartAsync(size_t i);

  // --- machine-level failure (paper section 2: the machine is the real unit
  // --- of failure; co-hosted nodes die together) ---
  const Placement& placement() const { return config_.placement; }
  int MachineOf(size_t i) const { return config_.placement.MachineOf(i); }
  // Crashes every live node on `machine` as one failure event (a single
  // SIGKILL on the process backend). At least one node there must be up.
  void CrashMachine(size_t machine);
  // Restarts (blocking, one by one) every crashed node on `machine`.
  void RestartMachine(size_t machine);

  // --- churn driver (paper section 7.5) ---
  // Starts kill/restart cycles for nodes [first, first+count): exponential
  // up-times and down-times with the given means.
  void StartChurn(size_t first, size_t count, Duration mean_uptime, Duration mean_downtime);
  void StopChurn();
  size_t NumLiveNodes();

  // --- conveniences for benches/tests ---
  // k distinct live nodes drawn uniformly (indices). When `limit` is given,
  // only indices below it are considered (e.g. the stable half of a churned
  // cluster).
  std::vector<size_t> PickLiveNodes(size_t k);
  std::vector<size_t> PickLiveNodes(size_t k, size_t limit);
  // Stable overlay reference for a node (valid even while it is crashed).
  NodeRef RefOf(size_t i) const;
  std::vector<NodeRef> RefsOf(const std::vector<size_t>& indices);
  double AvgDistinctNeighbors();

  // Level-0 ring consistency check: every live node's clockwise level-0
  // pointer is the next live node in name order. Returns the number of
  // violations (0 = perfect ring).
  int CountRingViolations();

  // --- node-op vocabulary (run these from the protocol context) ---
  // These are what the backend-parameterized scenario definitions
  // (runtime/scenario.cc) are written against: issue a group create rooted at
  // node `root`, and watch a member for failure notifications. The base
  // implementations touch the in-process Node stack; ProcessCluster overrides
  // them with worker commands.
  virtual void CreateGroupInContext(size_t root, std::vector<NodeRef> members,
                                    std::function<void(const Status&, FuseId)> cb);
  // Registers a failure watch: `on_fire` runs in the protocol context every
  // time node `m`'s handler for group `id` fires (so a duplicate notification
  // is observable as a second invocation).
  virtual void WatchGroupMemberInContext(size_t m, FuseId id, std::function<void()> on_fire);
  // Explicitly signals group failure from node `node` (paper 3.4: application
  // fail-on-send / voluntary departure). GroupService's Signal rides on this.
  virtual void SignalGroupInContext(size_t node, FuseId id);

 protected:
  // Per-node operations Build/Crash/Restart/churn route through; override all
  // of these to drive nodes that live outside this process. Each runs in the
  // protocol context.
  virtual void CreateNodeInContext(size_t i);
  virtual void JoinFirstInContext(size_t i);
  virtual void JoinInContext(size_t i, size_t boot, std::function<void(const Status&)> done);
  virtual void StartMaintenanceInContext(size_t i);
  virtual void LeafExchangeInContext(size_t i);
  // Crash aftermath once the fabric-level crash happened: quiesce and park
  // the node object (in-process), or nothing (the process is gone).
  virtual void RetireNodeInContext(size_t i);
  // Restart aftermath once the fabric-level restart happened: bring up a
  // fresh node incarnation and rejoin via `boot` (boot == i means the node
  // must seed a fresh overlay: no other live joined node existed).
  virtual void ReviveNodeInContext(size_t i, size_t boot);

  void CrashInContext(size_t i);
  void RestartAsyncInContext(size_t i);

  std::unique_ptr<Deployment> deploy_;
  HarnessConfig config_;
  std::vector<Transport*> transports_;
  std::vector<HostId> hosts_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<bool> up_;

 private:
  void ScheduleChurnDeath(size_t i);
  void ScheduleChurnRebirth(size_t i);
  std::unique_ptr<Node> MakeNode(size_t i);

  // Crashed node objects are parked here until teardown so that in-flight
  // callbacks referencing them stay safe (they check their shutdown flags).
  std::vector<std::unique_ptr<Node>> graveyard_;
  bool churning_ = false;
  Duration churn_uptime_;
  Duration churn_downtime_;
  // One kill/restart timer per churned node; StopChurn disarms them all
  // instead of leaving dead events in the queue.
  std::vector<Timer> churn_timers_;
};

}  // namespace fuse

#endif  // FUSE_RUNTIME_CLUSTER_H_
