#include "runtime/sharded_sim_cluster.h"

#include <utility>

#include "common/logging.h"
#include "sim/shard.h"

namespace fuse {

// Sharded discrete-event backend. Structure mirrors SimDeployment
// (sim_cluster.cc); the differences are the engine (ShardedSim + worker
// pool), the fabric (shard-local send state, outbox crossings), and Defer —
// which is what keeps harness-shared state off the worker threads.
class ShardedDeployment : public Deployment {
 public:
  explicit ShardedDeployment(ClusterConfig config)
      : config_(std::move(config)),
        sim_(config_.seed, static_cast<uint32_t>(config_.num_shards), config_.threads) {
    FUSE_CHECK(config_.num_shards >= 1) << "sharded backend needs num_shards >= 1";
    // Topology generation and host placement draw from the control RNG, in
    // the same order as the classic backend — the partition only decides
    // where a host's events run, never where the host sits.
    Topology topo = Topology::Generate(config_.topology, sim_.rng());
    net_ = std::make_unique<SimNetwork>(std::move(topo));
    fabric_ = std::make_unique<ShardedFabric>(sim_, *net_, config_.cost, config_.tcp,
                                              static_cast<size_t>(config_.num_nodes),
                                              config_.hosts_per_machine);
    config_.overlay.start_maintenance_on_join = false;
  }

  Environment& env() override { return sim_; }

  Transport* CreateHost(size_t index) override {
    HostId h;
    if (config_.hosts_per_machine > 1) {
      if (index % static_cast<size_t>(config_.hosts_per_machine) == 0) {
        machine_ = net_->topology().RandomRouter(sim_.rng());
      }
      h = net_->AddHostAt(machine_);
    } else {
      h = net_->AddHost(sim_.rng());
    }
    return fabric_->TransportFor(h);
  }

  void CrashHost(HostId h) override { fabric_->CrashHost(h); }
  void RestartHost(HostId h) override { fabric_->RestartHost(h); }

  void ApplyFaults(const std::function<void(FaultInjector&)>& fn) override {
    fn(net_->faults());
  }

  void Run(const std::function<void()>& fn) override { fn(); }
  void AdvanceFor(Duration d) override { sim_.RunFor(d); }
  bool AwaitCondition(const std::function<bool()>& pred, Duration bound) override {
    return sim_.RunUntilCondition(pred, sim_.Now() + bound);
  }
  bool virtual_time() const override { return true; }

  // Harness upcalls issued from protocol code run on whichever shard owns the
  // calling host; defer them to the control thread's barrier replay. Calls
  // already in barrier/control context (Current() == nullptr) run inline.
  void Defer(std::function<void()> fn) override {
    if (Shard* s = Shard::Current()) {
      s->DeferUpcall(std::move(fn));
      return;
    }
    fn();
  }

  const ClusterConfig& config() const { return config_; }
  ShardedSim& sim() { return sim_; }
  SimNetwork& net() { return *net_; }
  ShardedFabric& fabric() { return *fabric_; }

 private:
  ClusterConfig config_;
  ShardedSim sim_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<ShardedFabric> fabric_;
  RouterId machine_;
};

namespace {

HarnessConfig HarnessConfigFrom(const ClusterConfig& c) {
  HarnessConfig hc;
  hc.num_nodes = c.num_nodes;
  hc.overlay = c.overlay;
  hc.fuse = c.fuse;
  hc.join_batch = c.join_batch;
  // Same blocked machine map as the classic backend (CreateHost starts a new
  // router at every placement boundary).
  hc.placement = Placement::Pack(c.num_nodes, c.hosts_per_machine < 1 ? 1 : c.hosts_per_machine);
  return hc;  // timing keeps the virtual-time defaults
}

}  // namespace

ShardedSimCluster::ShardedSimCluster(ClusterConfig config)
    : ClusterHarness(std::make_unique<ShardedDeployment>(config), HarnessConfigFrom(config)),
      sharded_deploy_(static_cast<ShardedDeployment*>(&deployment())) {}

ShardedSimCluster::~ShardedSimCluster() = default;

ShardedSim& ShardedSimCluster::sim() { return sharded_deploy_->sim(); }
SimNetwork& ShardedSimCluster::net() { return sharded_deploy_->net(); }
ShardedFabric& ShardedSimCluster::fabric() { return sharded_deploy_->fabric(); }
const ClusterConfig& ShardedSimCluster::config() const { return sharded_deploy_->config(); }

std::unique_ptr<ClusterHarness> MakeSimCluster(ClusterConfig config) {
  if (config.num_shards > 0) {
    return std::make_unique<ShardedSimCluster>(std::move(config));
  }
  return std::make_unique<SimCluster>(std::move(config));
}

}  // namespace fuse
