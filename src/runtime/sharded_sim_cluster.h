// ShardedSimCluster: the ClusterHarness over the sharded parallel simulator
// (sim/sharded_sim.h + transport/sharded_fabric.h). Same scenario/bench/fuzz
// surface as SimCluster; the backend partitions hosts across shards and runs
// them on a worker pool in conservative lockstep epochs. Selected through
// MakeSimCluster() by setting ClusterConfig::num_shards > 0.
#ifndef FUSE_RUNTIME_SHARDED_SIM_CLUSTER_H_
#define FUSE_RUNTIME_SHARDED_SIM_CLUSTER_H_

#include <memory>

#include "net/network.h"
#include "runtime/cluster.h"
#include "runtime/sim_cluster.h"
#include "sim/sharded_sim.h"
#include "transport/sharded_fabric.h"

namespace fuse {

class ShardedDeployment;

class ShardedSimCluster : public ClusterHarness {
 public:
  explicit ShardedSimCluster(ClusterConfig config);
  ~ShardedSimCluster() override;

  ShardedSim& sim();
  SimNetwork& net();
  ShardedFabric& fabric();
  const ClusterConfig& config() const;

 private:
  ShardedDeployment* sharded_deploy_;  // owned by the base class
};

// Backend dispatch on ClusterConfig::num_shards: 0 builds the classic
// single-threaded SimCluster (bit-for-bit the traces every golden was blessed
// against), >= 1 builds a ShardedSimCluster with that many shards and
// ClusterConfig::threads workers. Note num_shards = 1 is the sharded engine
// with one shard — same epoch machinery, different (valid) trace than the
// classic backend.
std::unique_ptr<ClusterHarness> MakeSimCluster(ClusterConfig config);

}  // namespace fuse

#endif  // FUSE_RUNTIME_SHARDED_SIM_CLUSTER_H_
