// Backend-parameterized fault-schedule scenarios.
//
// Each scenario is ONE definition of a full agreement-property experiment —
// build groups, apply a fault schedule, wait for the paper's guarantee
// (exactly-once notification to every live member of a failed group, never a
// duplicate anywhere) — written against ClusterHarness, so the identical
// schedule runs on the discrete-event simulator (virtual-time waits) and on
// the live wall-clock runtime (bounded real-time waits). This is the paper's
// section 7 methodology as an executable artifact: the experiment itself,
// not just the protocol stack, is deployment-agnostic.
#ifndef FUSE_RUNTIME_SCENARIO_H_
#define FUSE_RUNTIME_SCENARIO_H_

#include <string>
#include <vector>

#include "runtime/cluster.h"

namespace fuse {

enum class ScenarioKind {
  // Crash one member of a watched group: every other member must hear
  // exactly one notification within the bound.
  kCrashMember,
  // Partition a subset of the group's hosts away, let both sides detect,
  // then heal mid-run: agreement is one-way, so reconnecting must neither
  // suppress nor duplicate any member's notification.
  kPartitionHeal,
  // Create groups while background nodes churn (kill/restart cycles), then
  // crash a member: creation must complete with a definite verdict despite
  // churn, and the agreement property must hold on the created groups.
  kChurnDuringCreate,
  // Crash one whole machine (every co-hosted node at once — one SIGKILL on
  // the process backend): every group spanning the machine must notify each
  // of its live members exactly once, while machine-disjoint groups hear
  // nothing — co-hosted repair (dead delegates replaced without notifying)
  // must not turn a machine loss into false positives. Requires a placement
  // with at least two machines.
  kMachineFailure,
};

const char* ScenarioKindName(ScenarioKind kind);

// Wait bounds and fault-schedule knobs. Virtual minutes on the simulator;
// wall-clock seconds against the scaled live protocol constants.
struct ScenarioTiming {
  Duration settle;        // quiet period after group creation
  Duration create_bound;  // bound on one CreateGroup completing
  Duration detect_bound;  // bound on all members hearing the notification
  Duration post_settle;   // extra watch window for duplicates / late fires
  Duration churn_mean_uptime;
  Duration churn_mean_downtime;

  static ScenarioTiming Sim();
  static ScenarioTiming Live();
};

struct ScenarioOptions {
  uint64_t seed = 1;
  int num_groups = 6;
  int min_group_size = 2;
  int max_group_size = 6;
  ScenarioTiming timing = ScenarioTiming::Sim();
  // Set when the network is deliberately adverse (per-link loss): a definite
  // CreateGroup failure is then a legitimate verdict (the paper, section
  // 7.6: transport connections break under such conditions), not a property
  // violation. kChurnDuringCreate implies this. The agreement properties are
  // still enforced in full on every group that did get created.
  bool tolerate_create_failures = false;
};

struct ScenarioResult {
  // Property violations, human-readable; empty means the scenario passed.
  std::vector<std::string> violations;
  int groups_created = 0;
  int creates_failed = 0;  // definite failures (allowed when tolerated)
  int notified = 0;        // exactly-once notifications observed on the target
  // True when even the retried target create failed under tolerated
  // adversity: the fault/notification phase was skipped (vacuous pass).
  bool target_skipped = false;
  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Runs one scenario on an already-Build()-ed cluster. The cluster must have
// at least 8 live nodes (kChurnDuringCreate churns the upper index half and
// draws groups from the stable lower half).
ScenarioResult RunAgreementScenario(ClusterHarness& cluster, ScenarioKind kind,
                                    const ScenarioOptions& options);

}  // namespace fuse

#endif  // FUSE_RUNTIME_SCENARIO_H_
