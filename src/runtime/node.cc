#include "runtime/node.h"

namespace fuse {

Node::Node(Transport* transport, std::string name, NumericId numeric,
           SkipNetConfig overlay_config, FuseParams fuse_params)
    : transport_(transport),
      rpc_(std::make_unique<RpcNode>(transport)),
      overlay_(std::make_unique<SkipNetNode>(transport, rpc_.get(), std::move(name), numeric,
                                             overlay_config)),
      fuse_(std::make_unique<FuseNode>(transport, overlay_.get(), fuse_params)) {}

void Node::ShutdownAll() {
  fuse_->Shutdown();
  overlay_->Shutdown();
}

}  // namespace fuse
