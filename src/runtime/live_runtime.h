// LiveRuntime: a wall-clock, threaded event loop and messaging layer.
//
// The paper ran the identical code base on a simulator and on a live cluster,
// differing only in the base messaging layer (section 7). This runtime is our
// live counterpart: the same Node stack (overlay + FUSE) driven by real time.
// All protocol code runs on one event-loop thread; application threads
// interact through blocking facades (e.g. CreateGroupBlocking) or by posting
// closures.
//
// On Linux the loop is epoll-based: one thread owns both timer firing (a
// timerfd armed to the earliest pending deadline) and I/O readiness for file
// descriptors registered via WatchFd — this is what lets the socket transport
// (src/transport/socket_transport.h) and the process-deployment control
// channels share the loop with protocol timers instead of spawning reader
// threads. On other platforms a plain condition-variable timer loop is kept
// (WatchFd is unavailable there).
//
// In-process message delivery (LiveTransport) is retained for the
// single-process LiveCluster backend. Fault semantics are expressed through
// the same FaultInjector rule set the simulator fabric consults (host down,
// blocked pairs, partitions), evaluated under the loop lock on every send AND
// at delivery time; the sender's callback reports what actually happened (Ok
// only if the message was dispatched, Broken when a fault dropped it).
#ifndef FUSE_RUNTIME_LIVE_RUNTIME_H_
#define FUSE_RUNTIME_LIVE_RUNTIME_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/fault_injector.h"
#include "sim/environment.h"
#include "transport/transport.h"

#if defined(__linux__)
#define FUSE_LIVE_RUNTIME_EPOLL 1
#endif

namespace fuse {

class LiveTransport;

class LiveRuntime : public Environment {
 public:
  struct Config {
    uint64_t seed = 1;
    Duration min_latency = Duration::Millis(1);
    Duration max_latency = Duration::Millis(5);
    double loss_probability = 0.0;
  };

  // Handler for a watched file descriptor; runs on the loop thread with the
  // EPOLL* event mask that fired. Spurious invocations are possible (an event
  // already consumed by an earlier handler in the same epoll batch) — handlers
  // must tolerate EAGAIN.
  using FdHandler = std::function<void(uint32_t events)>;

  explicit LiveRuntime(Config config);
  ~LiveRuntime() override;

  // Environment. Now/Schedule/Cancel are callable from any thread; handlers
  // run on the loop thread. rng() is protocol state and must only be drawn
  // from on the loop thread (Send, callable from any thread, draws from its
  // own mutex-guarded generator instead — one lock on one side of a shared
  // generator would not synchronize anything).
  TimePoint Now() const override;
  TimerId Schedule(Duration d, UniqueFunction fn) override;
  bool Cancel(TimerId id) override;
  Rng& rng() override { return rng_; }
  Metrics& metrics() override { return metrics_; }

  // Creates a transport endpoint for a new host.
  LiveTransport* CreateHost();

  // Runs `fn` on the loop thread and waits for it to finish. Calling from the
  // loop thread itself runs `fn` inline (protocol callbacks may re-enter the
  // runtime through higher-level drivers without deadlocking). Returns true
  // iff `fn` ran: when Stop() wins the race, the pending closure is NOT run
  // and the caller is released with false instead of blocking forever.
  bool RunOnLoop(std::function<void()> fn);
  bool OnLoopThread() const { return std::this_thread::get_id() == loop_id_; }

  // --- epoll I/O surface (Linux only; FUSE_CHECK-fails elsewhere) ---
  // Registers `fd` with the loop's epoll set; `handler` runs on the loop
  // thread whenever any event in `events` fires. Callable from any thread.
  void WatchFd(int fd, uint32_t events, FdHandler handler);
  // Changes the event mask of a watched fd.
  void ModifyFd(int fd, uint32_t events);
  // Removes `fd` from the epoll set. The caller still owns (and closes) the
  // fd. Safe against already-queued events: they are dropped on dispatch.
  void UnwatchFd(int fd);

  // Applies a mutation/query against the fault rules under the loop lock.
  // Sends racing with the mutation see either the old or the new rule set,
  // never a partially-applied one.
  void ApplyFaults(const std::function<void(FaultInjector&)>& fn);

  // Marks a host down: its messages are dropped (fail-stop crash).
  // Convenience shim over ApplyFaults.
  void SetHostDown(HostId h, bool down);

  // Stops and joins the loop thread, then releases every thread still blocked
  // in RunOnLoop (their closures are dropped, RunOnLoop returns false).
  // Post-stop the runtime is inert: Schedule/Cancel still work against the
  // (never again fired) timer store, RunOnLoop returns false immediately.
  void Stop();

  // --- used by LiveTransport ---
  void Send(WireMessage msg, Transport::SendCallback cb);
  void RegisterHandler(HostId h, uint16_t type, Transport::Handler handler);
  void UnregisterAllHandlers(HostId h);

 private:
  // Blocking state for one cross-thread RunOnLoop call. Shared between the
  // caller, the queued wrapper closure, and Stop()'s drain.
  struct MarshalState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool ran = false;
  };

  void Loop();
  // Wakes the loop out of its wait (eventfd write on the epoll path, condvar
  // notify on the portable path).
  void WakeLoop();
  // Pops and runs every timer due at `now`; called with `lock` held, returns
  // with it held.
  void RunDueTimers(std::unique_lock<std::mutex>& lock);

  Config config_;
  Rng rng_;       // protocol stream: loop-thread only (via Environment::rng())
  Rng send_rng_;  // loss/latency draws in Send: guarded by mu_
  Metrics metrics_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Pending events in one ordered map keyed (deadline, seq): the loop pops
  // the front, Cancel erases through the seq index in one step. The index is
  // also the "not yet fired" set, so Cancel of an already-run id is rejected
  // — the same eager-cancel accounting as the sim timer wheel.
  using QueueKey = std::pair<std::chrono::steady_clock::time_point, uint64_t>;
  std::map<QueueKey, UniqueFunction> queue_;
  std::unordered_map<uint64_t, std::map<QueueKey, UniqueFunction>::iterator> by_seq_;
  uint64_t next_seq_ = 1;
  bool stopping_ = false;
  // RunOnLoop calls whose wrapper has not started running yet, keyed by the
  // wrapper's timer seq. Stop() signals the survivors after joining the loop.
  std::unordered_map<uint64_t, std::shared_ptr<MarshalState>> pending_marshals_;

  std::vector<std::unique_ptr<LiveTransport>> hosts_;
  // Dense by HostId (CreateHost hands out sequential ids); each host's
  // dispatch table is a flat array indexed by MsgTypeSlot(type).
  std::vector<std::vector<Transport::Handler>> handlers_;
  // The full fault vocabulary (down hosts, blocked pairs, partitions),
  // shared with the sim fabric. Guarded by mu_.
  FaultInjector faults_;

#if FUSE_LIVE_RUNTIME_EPOLL
  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd: cross-thread loop wakeup
  int timer_fd_ = -1;  // timerfd: earliest pending deadline
  std::unordered_map<int, FdHandler> fd_handlers_;  // guarded by mu_
#endif

  std::thread thread_;
  std::thread::id loop_id_;
};

class LiveTransport : public Transport {
 public:
  LiveTransport(LiveRuntime* runtime, HostId host) : runtime_(runtime), host_(host) {}

  void Send(WireMessage msg, SendCallback cb) override;
  void RegisterHandler(uint16_t type, Handler handler) override;
  void UnregisterAllHandlers() override;
  HostId local_host() const override { return host_; }
  Environment& env() override { return *runtime_; }

 private:
  LiveRuntime* runtime_;
  HostId host_;
};

}  // namespace fuse

#endif  // FUSE_RUNTIME_LIVE_RUNTIME_H_
