// LiveRuntime: a wall-clock, threaded messaging layer.
//
// The paper ran the identical code base on a simulator and on a live cluster,
// differing only in the base messaging layer (section 7). This runtime is our
// live counterpart: the same Node stack (overlay + FUSE) driven by real time.
// All protocol code runs on one event-loop thread; application threads
// interact through blocking facades (e.g. CreateGroupBlocking) or by posting
// closures. Message latency is configurable; delivery is in-process.
//
// Fault semantics are expressed through the same FaultInjector rule set the
// simulator fabric consults (host down, blocked pairs, partitions), evaluated
// under the loop lock on every send and delivery — so a fault schedule
// written against FaultInjector runs unchanged on either backend.
#ifndef FUSE_RUNTIME_LIVE_RUNTIME_H_
#define FUSE_RUNTIME_LIVE_RUNTIME_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/fault_injector.h"
#include "sim/environment.h"
#include "transport/transport.h"

namespace fuse {

class LiveTransport;

class LiveRuntime : public Environment {
 public:
  struct Config {
    uint64_t seed = 1;
    Duration min_latency = Duration::Millis(1);
    Duration max_latency = Duration::Millis(5);
    double loss_probability = 0.0;
  };

  explicit LiveRuntime(Config config);
  ~LiveRuntime() override;

  // Environment (callable from any thread; handlers run on the loop thread).
  TimePoint Now() const override;
  TimerId Schedule(Duration d, UniqueFunction fn) override;
  bool Cancel(TimerId id) override;
  Rng& rng() override { return rng_; }
  Metrics& metrics() override { return metrics_; }

  // Creates a transport endpoint for a new host.
  LiveTransport* CreateHost();

  // Runs `fn` on the loop thread and waits for it to finish. Calling from the
  // loop thread itself runs `fn` inline (protocol callbacks may re-enter the
  // runtime through higher-level drivers without deadlocking).
  void RunOnLoop(std::function<void()> fn);
  bool OnLoopThread() const { return std::this_thread::get_id() == loop_id_; }

  // Applies a mutation/query against the fault rules under the loop lock.
  // Sends racing with the mutation see either the old or the new rule set,
  // never a partially-applied one.
  void ApplyFaults(const std::function<void(FaultInjector&)>& fn);

  // Marks a host down: its messages are dropped (fail-stop crash).
  // Convenience shim over ApplyFaults.
  void SetHostDown(HostId h, bool down);

  void Stop();

  // --- used by LiveTransport ---
  void Send(WireMessage msg, Transport::SendCallback cb);
  void RegisterHandler(HostId h, uint16_t type, Transport::Handler handler);
  void UnregisterAllHandlers(HostId h);

 private:
  void Loop();

  Config config_;
  Rng rng_;
  Metrics metrics_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Pending events in one ordered map keyed (deadline, seq): the loop pops
  // the front, Cancel erases through the seq index in one step. The index is
  // also the "not yet fired" set, so Cancel of an already-run id is rejected
  // — the same eager-cancel accounting as the sim timer wheel.
  using QueueKey = std::pair<std::chrono::steady_clock::time_point, uint64_t>;
  std::map<QueueKey, UniqueFunction> queue_;
  std::unordered_map<uint64_t, std::map<QueueKey, UniqueFunction>::iterator> by_seq_;
  uint64_t next_seq_ = 1;
  bool stopping_ = false;

  std::vector<std::unique_ptr<LiveTransport>> hosts_;
  // Dense by HostId (CreateHost hands out sequential ids); each host's
  // dispatch table is a flat array indexed by MsgTypeSlot(type).
  std::vector<std::vector<Transport::Handler>> handlers_;
  // The full fault vocabulary (down hosts, blocked pairs, partitions),
  // shared with the sim fabric. Guarded by mu_.
  FaultInjector faults_;

  std::thread thread_;
  std::thread::id loop_id_;
};

class LiveTransport : public Transport {
 public:
  LiveTransport(LiveRuntime* runtime, HostId host) : runtime_(runtime), host_(host) {}

  void Send(WireMessage msg, SendCallback cb) override;
  void RegisterHandler(uint16_t type, Handler handler) override;
  void UnregisterAllHandlers() override;
  HostId local_host() const override { return host_; }
  Environment& env() override { return *runtime_; }

 private:
  LiveRuntime* runtime_;
  HostId host_;
};

}  // namespace fuse

#endif  // FUSE_RUNTIME_LIVE_RUNTIME_H_
