// LiveCluster: the wall-clock deployment — the same ClusterHarness machinery
// as SimCluster (build, crash/restart, churn, fault rules, ring probes) over
// the threaded LiveRuntime backend. Protocol work marshals onto the runtime's
// loop thread; waits are bounded wall-clock polls instead of virtual-time
// event pumping. With this, every fault schedule written against the harness
// (tests/property schedules, scenario definitions) runs unchanged against
// real asynchrony — the paper's live-cluster configuration (section 7).
#ifndef FUSE_RUNTIME_LIVE_CLUSTER_H_
#define FUSE_RUNTIME_LIVE_CLUSTER_H_

#include <memory>

#include "runtime/cluster.h"
#include "runtime/live_runtime.h"
#include "transport/fabric.h"

namespace fuse {

struct LiveClusterConfig {
  int num_nodes = 8;
  // Single seed for the whole deployment; overrides runtime.seed.
  uint64_t seed = 1;
  // In-process message latency / loss of the live messaging layer.
  LiveRuntime::Config runtime;
  SkipNetConfig overlay;
  FuseParams fuse;
  int join_batch = 4;
  HarnessTiming timing;
  // Messaging layer between hosts. kInProcess keeps LiveRuntime's in-memory
  // delivery; kTcp/kUdp give every *machine* its own real fabric on the
  // shared loop, so inter-machine traffic crosses actual loopback sockets
  // (Linux-only; non-Linux builds FUSE_CHECK on a real transport).
  TransportKind transport = TransportKind::kInProcess;
  // Co-locates this many nodes per machine: one fault domain for
  // CrashMachine, and (on a real transport) one shared fabric + port — the
  // in-process analogue of a multi-tenant worker process.
  int nodes_per_machine = 1;

  // Preset with protocol constants scaled from simulated minutes to live
  // milliseconds, so wall-clock scenario runs finish in seconds while
  // exercising the same code paths (pings, timeouts, repair, backoff).
  static LiveClusterConfig FastProtocol(int num_nodes, uint64_t seed);
};

class LiveDeployment;

class LiveCluster : public ClusterHarness {
 public:
  explicit LiveCluster(LiveClusterConfig config);
  ~LiveCluster() override;

  LiveRuntime& runtime();

 private:
  LiveDeployment* live_deploy_;  // owned by the base class
};

}  // namespace fuse

#endif  // FUSE_RUNTIME_LIVE_CLUSTER_H_
