#include "runtime/live_cluster.h"

#include <utility>

#include "common/logging.h"
#include "runtime/loop_deployment.h"

namespace fuse {

namespace {

// The cluster-level seed is authoritative: it feeds the runtime's protocol
// rng (node ids, join bootstraps, churn intervals, protocol jitter) and,
// through a derived stream, the send path's loss/latency draws.
LiveRuntime::Config RuntimeConfigFrom(const LiveClusterConfig& c) {
  LiveRuntime::Config rc = c.runtime;
  rc.seed = c.seed;
  return rc;
}

}  // namespace

// Wall-clock in-process backend: one loop thread, marshalled protocol access,
// real sleeps (all from LoopDeployment). Fault rules live inside LiveRuntime,
// consulted by its Send path under the loop lock.
class LiveDeployment : public LoopDeployment {
 public:
  explicit LiveDeployment(const LiveClusterConfig& config)
      : LoopDeployment(RuntimeConfigFrom(config)) {}

  Transport* CreateHost(size_t index) override {
    (void)index;  // sequential ids; no placement policy in-process
    return runtime_->CreateHost();
  }

  void CrashHost(HostId h) override {
    // Fail-stop: the fault rules drop the host's traffic both ways, and the
    // dispatch table empties like a process that vanished (a restarted node
    // re-registers, as in the paper's stable-storage-free recovery).
    runtime_->SetHostDown(h, true);
    runtime_->UnregisterAllHandlers(h);
  }

  void RestartHost(HostId h) override { runtime_->SetHostDown(h, false); }
};

LiveClusterConfig LiveClusterConfig::FastProtocol(int num_nodes, uint64_t seed) {
  LiveClusterConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.seed = seed;
  // Scaled-down protocol constants (the LiveRuntime test settings): full
  // failure-detection and repair cycles complete within a couple of seconds.
  cfg.overlay.ping_period = Duration::Millis(200);
  cfg.overlay.ping_timeout = Duration::Millis(100);
  cfg.overlay.join_timeout = Duration::Millis(500);
  cfg.overlay.query_timeout = Duration::Millis(200);
  cfg.overlay.repair_delay = Duration::Millis(50);
  cfg.overlay.leaf_exchange_period = Duration::Millis(500);
  cfg.fuse.create_timeout = Duration::Seconds(2);
  cfg.fuse.install_timeout = Duration::Seconds(1);
  cfg.fuse.member_repair_timeout = Duration::Millis(600);
  cfg.fuse.root_repair_timeout = Duration::Seconds(1);
  cfg.fuse.link_liveness_timeout = Duration::Millis(400);
  cfg.fuse.grace_period = Duration::Millis(100);
  cfg.fuse.repair_backoff_initial = Duration::Millis(100);
  cfg.fuse.repair_backoff_cap = Duration::Millis(400);
  // Wall-clock wait bounds matched to those constants.
  cfg.timing.join_wait = Duration::Seconds(20);
  cfg.timing.settle_round = Duration::Millis(400);
  cfg.timing.restart_wait = Duration::Seconds(20);
  return cfg;
}

namespace {

HarnessConfig HarnessConfigFrom(const LiveClusterConfig& c) {
  HarnessConfig hc;
  hc.num_nodes = c.num_nodes;
  hc.overlay = c.overlay;
  hc.fuse = c.fuse;
  hc.join_batch = c.join_batch;
  hc.timing = c.timing;
  return hc;
}

}  // namespace

LiveCluster::LiveCluster(LiveClusterConfig config)
    : ClusterHarness(std::make_unique<LiveDeployment>(config), HarnessConfigFrom(config)),
      live_deploy_(static_cast<LiveDeployment*>(&deployment())) {}

LiveCluster::~LiveCluster() = default;

LiveRuntime& LiveCluster::runtime() { return live_deploy_->runtime(); }

}  // namespace fuse
