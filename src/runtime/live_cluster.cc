#include "runtime/live_cluster.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "runtime/loop_deployment.h"
#include "runtime/placement.h"

#if defined(__linux__)
#include "transport/datagram_transport.h"
#include "transport/socket_transport.h"
#endif

namespace fuse {

namespace {

// The cluster-level seed is authoritative: it feeds the runtime's protocol
// rng (node ids, join bootstraps, churn intervals, protocol jitter) and,
// through a derived stream, the send path's loss/latency draws.
LiveRuntime::Config RuntimeConfigFrom(const LiveClusterConfig& c) {
  LiveRuntime::Config rc = c.runtime;
  rc.seed = c.seed;
  return rc;
}

}  // namespace

// Wall-clock in-process backend: one loop thread, marshalled protocol access,
// real sleeps (all from LoopDeployment). Fault rules live inside LiveRuntime,
// consulted by its Send path under the loop lock.
class LiveDeployment : public LoopDeployment {
 public:
  explicit LiveDeployment(const LiveClusterConfig& config)
      : LoopDeployment(RuntimeConfigFrom(config)),
        transport_(config.transport),
        seed_(config.seed),
        placement_(Placement::Pack(config.num_nodes,
                                   config.nodes_per_machine < 1 ? 1 : config.nodes_per_machine)) {
#if !defined(__linux__)
    FUSE_CHECK(transport_ == TransportKind::kInProcess)
        << "real transports need the Linux epoll loop";
#endif
  }

  Transport* CreateHost(size_t index) override {
    LiveTransport* inproc = runtime_->CreateHost();
    if (transport_ == TransportKind::kInProcess) {
      return inproc;
    }
#if defined(__linux__)
    // Real-transport mode: every *machine* gets one fabric (socket set +
    // fault-rule replica) shared by its co-located hosts on the shared loop,
    // so inter-machine traffic crosses actual loopback sockets instead of the
    // in-memory queue — the single-process analogue of a multi-tenant worker
    // process. Hosts are created in index order, so a machine's fabric comes
    // up with its first host.
    const HostId h = inproc->local_host();
    const size_t m = static_cast<size_t>(placement_.MachineOf(index));
    Transport* t = nullptr;
    runtime_->RunOnLoop([&] {
      if (m == fabrics_.size()) {
        std::unique_ptr<Fabric> fab;
        if (transport_ == TransportKind::kUdp) {
          DatagramFabric::Options o;
          o.seed = seed_ ^ (0x9e3779b97f4a7c15ULL * (fabrics_.size() + 1));
          fab = std::make_unique<DatagramFabric>(runtime_.get(), o);
        } else {
          fab = std::make_unique<SocketFabric>(runtime_.get());
        }
        const uint16_t port = fab->Listen();
        fab->ApplyAddressMap(addrs_);  // addresses of every earlier host
        fabrics_.push_back(Entry{std::move(fab), port});
      }
      FUSE_CHECK(m < fabrics_.size()) << "hosts created out of placement order";
      Entry& e = fabrics_[m];
      // Advertise the new host at its machine's port, to everyone (including
      // its own fabric: co-hosted traffic still resolves, then short-circuits
      // through the local dispatch table).
      addrs_.Set(h, PeerEndpoint::Loopback(e.port));
      for (auto& other : fabrics_) {
        other.fabric->SetPeerAddr(h, e.port);
      }
      host_machine_[h.value] = m;
      t = e.fabric->TransportFor(h);
    });
    return t;
#else
    return inproc;
#endif
  }

  void CrashHost(HostId h) override {
    // Fail-stop: the fault rules drop the host's traffic both ways, and the
    // dispatch table empties like a process that vanished (a restarted node
    // re-registers, as in the paper's stable-storage-free recovery).
    runtime_->SetHostDown(h, true);
    runtime_->UnregisterAllHandlers(h);
#if defined(__linux__)
    if (!fabrics_.empty()) {
      runtime_->RunOnLoop([&] {
        for (auto& e : fabrics_) {
          e.fabric->faults().SetHostDown(h, true);
        }
        FabricOf(h)->UnregisterAllHandlers(h);
      });
    }
#endif
  }

  void RestartHost(HostId h) override {
    runtime_->SetHostDown(h, false);
#if defined(__linux__)
    if (!fabrics_.empty()) {
      runtime_->RunOnLoop([&] {
        for (auto& e : fabrics_) {
          e.fabric->faults().SetHostDown(h, false);
        }
      });
    }
#endif
  }

  void ApplyFaults(const std::function<void(FaultInjector&)>& fn) override {
    LoopDeployment::ApplyFaults(fn);
#if defined(__linux__)
    // Replicate into every fabric's rule mirror, the same way the process
    // deployment broadcasts rules into its workers.
    if (!fabrics_.empty()) {
      runtime_->RunOnLoop([&] {
        for (auto& e : fabrics_) {
          fn(e.fabric->faults());
        }
      });
    }
#endif
  }

 private:
  TransportKind transport_;
  uint64_t seed_;
  Placement placement_;
#if defined(__linux__)
  struct Entry {
    std::unique_ptr<Fabric> fabric;
    uint16_t port = 0;
  };
  Fabric* FabricOf(HostId h) {
    const auto it = host_machine_.find(h.value);
    FUSE_CHECK(it != host_machine_.end()) << "no fabric hosts " << h.value;
    return fabrics_[it->second].fabric.get();
  }
  std::vector<Entry> fabrics_;  // one per machine; loop-thread state
  std::unordered_map<uint64_t, size_t> host_machine_;
  PeerAddressMap addrs_;  // authoritative host -> endpoint map
#endif
};

LiveClusterConfig LiveClusterConfig::FastProtocol(int num_nodes, uint64_t seed) {
  LiveClusterConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.seed = seed;
  // Scaled-down protocol constants (the LiveRuntime test settings): full
  // failure-detection and repair cycles complete within a couple of seconds.
  cfg.overlay.ping_period = Duration::Millis(200);
  cfg.overlay.ping_timeout = Duration::Millis(100);
  cfg.overlay.join_timeout = Duration::Millis(500);
  cfg.overlay.query_timeout = Duration::Millis(200);
  cfg.overlay.repair_delay = Duration::Millis(50);
  cfg.overlay.leaf_exchange_period = Duration::Millis(500);
  cfg.fuse.create_timeout = Duration::Seconds(2);
  cfg.fuse.install_timeout = Duration::Seconds(1);
  cfg.fuse.member_repair_timeout = Duration::Millis(600);
  cfg.fuse.root_repair_timeout = Duration::Seconds(1);
  cfg.fuse.link_liveness_timeout = Duration::Millis(400);
  cfg.fuse.grace_period = Duration::Millis(100);
  cfg.fuse.repair_backoff_initial = Duration::Millis(100);
  cfg.fuse.repair_backoff_cap = Duration::Millis(400);
  // Wall-clock wait bounds matched to those constants.
  cfg.timing.join_wait = Duration::Seconds(20);
  cfg.timing.settle_round = Duration::Millis(400);
  cfg.timing.restart_wait = Duration::Seconds(20);
  return cfg;
}

namespace {

HarnessConfig HarnessConfigFrom(const LiveClusterConfig& c) {
  HarnessConfig hc;
  hc.num_nodes = c.num_nodes;
  hc.overlay = c.overlay;
  hc.fuse = c.fuse;
  hc.join_batch = c.join_batch;
  hc.timing = c.timing;
  hc.placement = Placement::Pack(c.num_nodes, c.nodes_per_machine < 1 ? 1 : c.nodes_per_machine);
  return hc;
}

}  // namespace

LiveCluster::LiveCluster(LiveClusterConfig config)
    : ClusterHarness(std::make_unique<LiveDeployment>(config), HarnessConfigFrom(config)),
      live_deploy_(static_cast<LiveDeployment*>(&deployment())) {}

LiveCluster::~LiveCluster() = default;

LiveRuntime& LiveCluster::runtime() { return live_deploy_->runtime(); }

}  // namespace fuse
