#include "runtime/live_cluster.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "runtime/loop_deployment.h"

#if defined(__linux__)
#include "transport/datagram_transport.h"
#include "transport/socket_transport.h"
#endif

namespace fuse {

namespace {

// The cluster-level seed is authoritative: it feeds the runtime's protocol
// rng (node ids, join bootstraps, churn intervals, protocol jitter) and,
// through a derived stream, the send path's loss/latency draws.
LiveRuntime::Config RuntimeConfigFrom(const LiveClusterConfig& c) {
  LiveRuntime::Config rc = c.runtime;
  rc.seed = c.seed;
  return rc;
}

}  // namespace

// Wall-clock in-process backend: one loop thread, marshalled protocol access,
// real sleeps (all from LoopDeployment). Fault rules live inside LiveRuntime,
// consulted by its Send path under the loop lock.
class LiveDeployment : public LoopDeployment {
 public:
  explicit LiveDeployment(const LiveClusterConfig& config)
      : LoopDeployment(RuntimeConfigFrom(config)),
        transport_(config.transport),
        seed_(config.seed) {
#if !defined(__linux__)
    FUSE_CHECK(transport_ == TransportKind::kInProcess)
        << "real transports need the Linux epoll loop";
#endif
  }

  Transport* CreateHost(size_t index) override {
    (void)index;  // sequential ids; no placement policy in-process
    LiveTransport* inproc = runtime_->CreateHost();
    if (transport_ == TransportKind::kInProcess) {
      return inproc;
    }
#if defined(__linux__)
    // Real-transport mode: every host gets its own fabric (socket set +
    // fault-rule replica) on the shared loop, so inter-host traffic crosses
    // actual loopback sockets instead of the in-memory queue — the
    // single-process analogue of one fabric per worker process.
    const HostId h = inproc->local_host();
    Transport* t = nullptr;
    runtime_->RunOnLoop([&] {
      std::unique_ptr<Fabric> fab;
      if (transport_ == TransportKind::kUdp) {
        DatagramFabric::Options o;
        o.seed = seed_ ^ (0x9e3779b97f4a7c15ULL * (fabrics_.size() + 1));
        fab = std::make_unique<DatagramFabric>(runtime_.get(), o);
      } else {
        fab = std::make_unique<SocketFabric>(runtime_.get());
      }
      const uint16_t port = fab->Listen();
      for (auto& e : fabrics_) {
        e.fabric->SetPeerAddr(h, port);
        fab->SetPeerAddr(e.host, e.port);
      }
      t = fab->TransportFor(h);
      fabrics_.push_back(Entry{std::move(fab), h, port});
    });
    return t;
#else
    return inproc;
#endif
  }

  void CrashHost(HostId h) override {
    // Fail-stop: the fault rules drop the host's traffic both ways, and the
    // dispatch table empties like a process that vanished (a restarted node
    // re-registers, as in the paper's stable-storage-free recovery).
    runtime_->SetHostDown(h, true);
    runtime_->UnregisterAllHandlers(h);
#if defined(__linux__)
    if (!fabrics_.empty()) {
      runtime_->RunOnLoop([&] {
        for (auto& e : fabrics_) {
          e.fabric->faults().SetHostDown(h, true);
          if (e.host == h) {
            e.fabric->UnregisterAllHandlers(h);
          }
        }
      });
    }
#endif
  }

  void RestartHost(HostId h) override {
    runtime_->SetHostDown(h, false);
#if defined(__linux__)
    if (!fabrics_.empty()) {
      runtime_->RunOnLoop([&] {
        for (auto& e : fabrics_) {
          e.fabric->faults().SetHostDown(h, false);
        }
      });
    }
#endif
  }

  void ApplyFaults(const std::function<void(FaultInjector&)>& fn) override {
    LoopDeployment::ApplyFaults(fn);
#if defined(__linux__)
    // Replicate into every fabric's rule mirror, the same way the process
    // deployment broadcasts rules into its workers.
    if (!fabrics_.empty()) {
      runtime_->RunOnLoop([&] {
        for (auto& e : fabrics_) {
          fn(e.fabric->faults());
        }
      });
    }
#endif
  }

 private:
  TransportKind transport_;
  uint64_t seed_;
#if defined(__linux__)
  struct Entry {
    std::unique_ptr<Fabric> fabric;
    HostId host;
    uint16_t port = 0;
  };
  std::vector<Entry> fabrics_;  // loop-thread state (mutate via RunOnLoop)
#endif
};

LiveClusterConfig LiveClusterConfig::FastProtocol(int num_nodes, uint64_t seed) {
  LiveClusterConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.seed = seed;
  // Scaled-down protocol constants (the LiveRuntime test settings): full
  // failure-detection and repair cycles complete within a couple of seconds.
  cfg.overlay.ping_period = Duration::Millis(200);
  cfg.overlay.ping_timeout = Duration::Millis(100);
  cfg.overlay.join_timeout = Duration::Millis(500);
  cfg.overlay.query_timeout = Duration::Millis(200);
  cfg.overlay.repair_delay = Duration::Millis(50);
  cfg.overlay.leaf_exchange_period = Duration::Millis(500);
  cfg.fuse.create_timeout = Duration::Seconds(2);
  cfg.fuse.install_timeout = Duration::Seconds(1);
  cfg.fuse.member_repair_timeout = Duration::Millis(600);
  cfg.fuse.root_repair_timeout = Duration::Seconds(1);
  cfg.fuse.link_liveness_timeout = Duration::Millis(400);
  cfg.fuse.grace_period = Duration::Millis(100);
  cfg.fuse.repair_backoff_initial = Duration::Millis(100);
  cfg.fuse.repair_backoff_cap = Duration::Millis(400);
  // Wall-clock wait bounds matched to those constants.
  cfg.timing.join_wait = Duration::Seconds(20);
  cfg.timing.settle_round = Duration::Millis(400);
  cfg.timing.restart_wait = Duration::Seconds(20);
  return cfg;
}

namespace {

HarnessConfig HarnessConfigFrom(const LiveClusterConfig& c) {
  HarnessConfig hc;
  hc.num_nodes = c.num_nodes;
  hc.overlay = c.overlay;
  hc.fuse = c.fuse;
  hc.join_batch = c.join_batch;
  hc.timing = c.timing;
  return hc;
}

}  // namespace

LiveCluster::LiveCluster(LiveClusterConfig config)
    : ClusterHarness(std::make_unique<LiveDeployment>(config), HarnessConfigFrom(config)),
      live_deploy_(static_cast<LiveDeployment*>(&deployment())) {}

LiveCluster::~LiveCluster() = default;

LiveRuntime& LiveCluster::runtime() { return live_deploy_->runtime(); }

}  // namespace fuse
