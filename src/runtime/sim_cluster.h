// SimCluster: the simulated deployment — the ClusterHarness machinery
// (topology-wide build, crash/restart, churn, fault rules) over a discrete
// event simulation backend: Topology + SimNetwork + SimFabric driven by
// virtual time. This is the paper's discrete-event-simulator configuration
// (section 7); LiveCluster (live_cluster.h) is the wall-clock twin.
#ifndef FUSE_RUNTIME_SIM_CLUSTER_H_
#define FUSE_RUNTIME_SIM_CLUSTER_H_

#include <memory>

#include "net/network.h"
#include "runtime/cluster.h"
#include "sim/simulation.h"
#include "transport/tcp_model.h"

namespace fuse {

struct ClusterConfig {
  int num_nodes = 400;
  uint64_t seed = 1;
  TopologyConfig topology;
  // Cluster() reproduces the paper's ModelNet testbed (connection setup +
  // messaging overheads); Simulator() reproduces its discrete event
  // simulator. Both run on this same code base, as in the paper.
  CostModel cost = CostModel::Cluster();
  TcpParams tcp;
  SkipNetConfig overlay;
  FuseParams fuse;
  // >1 co-locates this many nodes per "machine" (router), as in the paper's
  // 400-virtual-nodes-on-40-machines setup.
  int hosts_per_machine = 1;
  // Nodes joined concurrently during Build (smaller = slower but gentler).
  int join_batch = 16;
  // Backend selector for MakeSimCluster (runtime/sharded_sim_cluster.h):
  // 0 = the classic single-threaded SimCluster; >= 1 = the sharded parallel
  // simulator with this many shards. The trace is a function of
  // (seed, num_shards); `threads` only sets the worker pool size and never
  // affects the schedule.
  int num_shards = 0;
  int threads = 1;

  // Preset for large-scale runs (1k-10k+ virtual nodes, well past the
  // paper's 400): simulator cost model, the paper's 10-nodes-per-machine
  // co-location, and an aggressive join batch so Build() converges quickly.
  // The timer-wheel event core keeps the steady-state ping load (every node
  // pings every distinct neighbor each period) cheap at this scale.
  static ClusterConfig LargeScale(int num_nodes, uint64_t seed) {
    ClusterConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.seed = seed;
    cfg.cost = CostModel::Simulator();
    cfg.hosts_per_machine = 10;
    cfg.join_batch = 64;
    return cfg;
  }
};

class SimDeployment;

class SimCluster : public ClusterHarness {
 public:
  explicit SimCluster(ClusterConfig config);
  ~SimCluster() override;

  Simulation& sim();
  SimNetwork& net();
  SimFabric& fabric();
  const ClusterConfig& config() const;

 private:
  SimDeployment* sim_deploy_;  // owned by the base class
};

}  // namespace fuse

#endif  // FUSE_RUNTIME_SIM_CLUSTER_H_
