// SimCluster: builds and drives a whole simulated deployment — topology,
// messaging fabric, N full-stack nodes — and provides the failure/churn
// drivers used by the paper's experiments (section 7).
#ifndef FUSE_RUNTIME_SIM_CLUSTER_H_
#define FUSE_RUNTIME_SIM_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "runtime/node.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "transport/tcp_model.h"

namespace fuse {

struct ClusterConfig {
  int num_nodes = 400;
  uint64_t seed = 1;
  TopologyConfig topology;
  // Cluster() reproduces the paper's ModelNet testbed (connection setup +
  // messaging overheads); Simulator() reproduces its discrete event
  // simulator. Both run on this same code base, as in the paper.
  CostModel cost = CostModel::Cluster();
  TcpParams tcp;
  SkipNetConfig overlay;
  FuseParams fuse;
  // >1 co-locates this many nodes per "machine" (router), as in the paper's
  // 400-virtual-nodes-on-40-machines setup.
  int hosts_per_machine = 1;
  // Nodes joined concurrently during Build (smaller = slower but gentler).
  int join_batch = 16;

  // Preset for large-scale runs (1k-10k+ virtual nodes, well past the
  // paper's 400): simulator cost model, the paper's 10-nodes-per-machine
  // co-location, and an aggressive join batch so Build() converges quickly.
  // The timer-wheel event core keeps the steady-state ping load (every node
  // pings every distinct neighbor each period) cheap at this scale.
  static ClusterConfig LargeScale(int num_nodes, uint64_t seed) {
    ClusterConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.seed = seed;
    cfg.cost = CostModel::Simulator();
    cfg.hosts_per_machine = 10;
    cfg.join_batch = 64;
    return cfg;
  }
};

class SimCluster {
 public:
  explicit SimCluster(ClusterConfig config);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  // Creates all hosts and joins every node into the overlay, then starts
  // liveness maintenance everywhere. Runs the simulation as needed.
  // FUSE_CHECK-fails if the overlay could not be built.
  void Build();

  Simulation& sim() { return sim_; }
  SimNetwork& net() { return *net_; }
  SimFabric& fabric() { return *fabric_; }
  const ClusterConfig& config() const { return config_; }

  size_t size() const { return nodes_.size(); }
  Node& node(size_t i) { return *nodes_[i]; }
  bool IsUp(size_t i) const { return nodes_[i] != nullptr && up_[i]; }
  static std::string NameOf(size_t i);

  // --- failure injection ---
  // Fail-stop crash: the node loses all state and stops participating.
  void Crash(size_t i);
  // Restart after a crash: fresh node state (new numeric id, no FUSE state),
  // rejoins the overlay via a live bootstrap. Runs the sim until joined.
  void Restart(size_t i);
  // Variant that only initiates the rejoin (for use inside a running sim).
  void RestartAsync(size_t i);

  // --- churn driver (paper section 7.5) ---
  // Starts kill/restart cycles for nodes [first, first+count): exponential
  // up-times and down-times with the given means.
  void StartChurn(size_t first, size_t count, Duration mean_uptime, Duration mean_downtime);
  void StopChurn();
  size_t NumLiveNodes() const;

  // --- conveniences for benches/tests ---
  // k distinct live nodes drawn uniformly (indices).
  std::vector<size_t> PickLiveNodes(size_t k);
  // Stable overlay reference for a node (valid even while it is crashed).
  NodeRef RefOf(size_t i) const;
  std::vector<NodeRef> RefsOf(const std::vector<size_t>& indices);
  double AvgDistinctNeighbors() const;

  // Level-0 ring consistency check: every live node's clockwise level-0
  // pointer is the next live node in name order. Returns the number of
  // violations (0 = perfect ring).
  int CountRingViolations() const;

 private:
  void ScheduleChurnDeath(size_t i);
  void ScheduleChurnRebirth(size_t i);
  std::unique_ptr<Node> MakeNode(size_t i);

  ClusterConfig config_;
  Simulation sim_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SimFabric> fabric_;
  std::vector<HostId> hosts_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<bool> up_;
  // Crashed node objects are parked here until teardown so that in-flight
  // callbacks referencing them stay safe (they check their shutdown flags).
  std::vector<std::unique_ptr<Node>> graveyard_;
  bool churning_ = false;
  Duration churn_uptime_;
  Duration churn_downtime_;
  // One kill/restart timer per churned node; StopChurn disarms them all
  // instead of leaving dead events in the queue.
  std::vector<Timer> churn_timers_;
};

}  // namespace fuse

#endif  // FUSE_RUNTIME_SIM_CLUSTER_H_
