// Node: the full per-host stack — transport, RPC, SkipNet overlay, FUSE.
// Mirrors one "virtual node" process from the paper's evaluation.
#ifndef FUSE_RUNTIME_NODE_H_
#define FUSE_RUNTIME_NODE_H_

#include <memory>
#include <string>

#include "fuse/fuse_node.h"
#include "overlay/skipnet_node.h"
#include "rpc/rpc.h"
#include "transport/transport.h"

namespace fuse {

class Node {
 public:
  // `transport` must outlive the node (it is owned by the messaging fabric).
  Node(Transport* transport, std::string name, NumericId numeric, SkipNetConfig overlay_config,
       FuseParams fuse_params);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Transport* transport() { return transport_; }
  RpcNode* rpc() { return rpc_.get(); }
  SkipNetNode* overlay() { return overlay_.get(); }
  FuseNode* fuse() { return fuse_.get(); }
  const NodeRef& ref() const { return overlay_->self(); }
  HostId host() const { return transport_->local_host(); }

  // Stops all protocol activity (timers, pings). The object stays alive so
  // that in-flight callbacks referencing it degrade to no-ops; this is how
  // fail-stop crashes are modeled (the messaging fabric drops deliveries).
  void ShutdownAll();

 private:
  Transport* transport_;
  std::unique_ptr<RpcNode> rpc_;        // destroyed last (see member order)
  std::unique_ptr<SkipNetNode> overlay_;
  std::unique_ptr<FuseNode> fuse_;      // destroyed first: detaches overlay hooks
};

}  // namespace fuse

#endif  // FUSE_RUNTIME_NODE_H_
