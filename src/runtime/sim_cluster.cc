#include "runtime/sim_cluster.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace fuse {

SimCluster::SimCluster(ClusterConfig config) : config_(std::move(config)), sim_(config_.seed) {
  Topology topo = Topology::Generate(config_.topology, sim_.rng());
  net_ = std::make_unique<SimNetwork>(std::move(topo));
  fabric_ = std::make_unique<SimFabric>(sim_, *net_, config_.cost, config_.tcp);
  // The cluster starts maintenance explicitly once the whole overlay exists;
  // this keeps construction cheap and matches a coordinated deployment.
  config_.overlay.start_maintenance_on_join = false;
}

SimCluster::~SimCluster() = default;

std::string SimCluster::NameOf(size_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "node%05zu", i);
  return buf;
}

std::unique_ptr<Node> SimCluster::MakeNode(size_t i) {
  SimTransport* transport = fabric_->TransportFor(hosts_[i]);
  const NumericId numeric(sim_.rng().NextU64());
  return std::make_unique<Node>(transport, NameOf(i), numeric, config_.overlay, config_.fuse);
}

void SimCluster::Build() {
  FUSE_CHECK(nodes_.empty()) << "Build called twice";
  const int n = config_.num_nodes;
  hosts_.reserve(n);
  if (config_.hosts_per_machine > 1) {
    // Co-locate groups of nodes on one router ("machine"), as on the paper's
    // 40-machine ModelNet cluster.
    RouterId machine;
    for (int i = 0; i < n; ++i) {
      if (i % config_.hosts_per_machine == 0) {
        machine = net_->topology().RandomRouter(sim_.rng());
      }
      hosts_.push_back(net_->AddHostAt(machine));
    }
  } else {
    for (int i = 0; i < n; ++i) {
      hosts_.push_back(net_->AddHost(sim_.rng()));
    }
  }

  nodes_.resize(n);
  up_.assign(n, true);
  for (int i = 0; i < n; ++i) {
    nodes_[i] = MakeNode(i);
  }

  // Node 0 seeds the overlay; the rest join in batches against random
  // already-joined nodes.
  nodes_[0]->overlay()->JoinAsFirst();
  int joined_count = 1;
  int next = 1;
  while (next < n) {
    const int batch_end = std::min(n, next + config_.join_batch);
    int pending = batch_end - next;
    int failures = 0;
    for (int i = next; i < batch_end; ++i) {
      const size_t boot = static_cast<size_t>(sim_.rng().UniformInt(0, joined_count - 1));
      nodes_[i]->overlay()->Join(hosts_[boot], [&pending, &failures](const Status& s) {
        --pending;
        if (!s.ok()) {
          ++failures;
        }
      });
    }
    sim_.RunUntilCondition([&] { return pending == 0; },
                           sim_.Now() + Duration::Minutes(10));
    FUSE_CHECK(pending == 0 && failures == 0)
        << "overlay build failed: " << failures << " join failures, " << pending << " pending";
    joined_count = batch_end;
    next = batch_end;
  }

  for (int i = 0; i < n; ++i) {
    nodes_[i]->overlay()->StartMaintenance();
  }
  // Converge the level-0 ring before handing the overlay to applications:
  // a few anti-entropy rounds let leaf sets settle so that steady state has
  // no further pointer churn (which would otherwise trigger spurious FUSE
  // tree repairs right after the experiment starts).
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < n; ++i) {
      nodes_[i]->overlay()->RunLeafExchangeOnce();
    }
    sim_.RunFor(Duration::Seconds(30));
  }
}

void SimCluster::Crash(size_t i) {
  FUSE_CHECK(i < nodes_.size() && nodes_[i] != nullptr && up_[i]) << "bad crash target";
  up_[i] = false;
  fabric_->CrashHost(hosts_[i]);
  nodes_[i]->ShutdownAll();
  graveyard_.push_back(std::move(nodes_[i]));
}

void SimCluster::RestartAsync(size_t i) {
  FUSE_CHECK(i < nodes_.size() && nodes_[i] == nullptr && !up_[i]) << "bad restart target";
  fabric_->RestartHost(hosts_[i]);
  nodes_[i] = MakeNode(i);
  up_[i] = true;
  // Bootstrap from any live node other than ourselves.
  size_t boot = i;
  for (int tries = 0; tries < 64; ++tries) {
    const size_t candidate =
        static_cast<size_t>(sim_.rng().UniformInt(0, static_cast<int64_t>(nodes_.size()) - 1));
    if (candidate != i && IsUp(candidate) && nodes_[candidate]->overlay()->joined()) {
      boot = candidate;
      break;
    }
  }
  if (boot == i) {
    nodes_[i]->overlay()->JoinAsFirst();
    nodes_[i]->overlay()->StartMaintenance();
    return;
  }
  nodes_[i]->overlay()->Join(hosts_[boot], [this, i](const Status& s) {
    if (s.ok() && nodes_[i] != nullptr) {
      nodes_[i]->overlay()->StartMaintenance();
    }
  });
}

void SimCluster::Restart(size_t i) {
  RestartAsync(i);
  sim_.RunUntilCondition([&] { return nodes_[i]->overlay()->joined(); },
                         sim_.Now() + Duration::Minutes(5));
}

void SimCluster::StartChurn(size_t first, size_t count, Duration mean_uptime,
                            Duration mean_downtime) {
  churning_ = true;
  churn_uptime_ = mean_uptime;
  churn_downtime_ = mean_downtime;
  churn_timers_.resize(nodes_.size());
  for (size_t i = first; i < first + count && i < nodes_.size(); ++i) {
    ScheduleChurnDeath(i);
  }
}

void SimCluster::StopChurn() {
  churning_ = false;
  for (Timer& t : churn_timers_) {
    t.Cancel();
  }
}

void SimCluster::ScheduleChurnDeath(size_t i) {
  const Duration life = Duration::SecondsF(sim_.rng().Exponential(churn_uptime_.ToSecondsF()));
  churn_timers_[i].Bind(sim_);
  churn_timers_[i].Start(life, [this, i] {
    if (!churning_ || !IsUp(i)) {
      return;
    }
    Crash(i);
    ScheduleChurnRebirth(i);
  });
}

void SimCluster::ScheduleChurnRebirth(size_t i) {
  const Duration down = Duration::SecondsF(sim_.rng().Exponential(churn_downtime_.ToSecondsF()));
  churn_timers_[i].Start(down, [this, i] {
    if (!churning_ || up_[i]) {
      return;
    }
    RestartAsync(i);
    ScheduleChurnDeath(i);
  });
}

size_t SimCluster::NumLiveNodes() const {
  size_t n = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (IsUp(i)) {
      ++n;
    }
  }
  return n;
}

std::vector<size_t> SimCluster::PickLiveNodes(size_t k) {
  std::vector<size_t> live;
  live.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (IsUp(i)) {
      live.push_back(i);
    }
  }
  FUSE_CHECK(k <= live.size()) << "not enough live nodes";
  sim_.rng().Shuffle(live);
  live.resize(k);
  return live;
}

NodeRef SimCluster::RefOf(size_t i) const {
  // Names and hosts are stable across crash/restart, so refs can be built
  // even for currently-dead nodes (e.g. to attempt creating a group that
  // includes one).
  return NodeRef{NameOf(i), hosts_[i]};
}

std::vector<NodeRef> SimCluster::RefsOf(const std::vector<size_t>& indices) {
  std::vector<NodeRef> refs;
  refs.reserve(indices.size());
  for (size_t i : indices) {
    refs.push_back(RefOf(i));
  }
  return refs;
}

double SimCluster::AvgDistinctNeighbors() const {
  size_t total = 0;
  size_t live = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (IsUp(i)) {
      total += nodes_[i]->overlay()->NumDistinctNeighbors();
      ++live;
    }
  }
  return live == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(live);
}

int SimCluster::CountRingViolations() const {
  // Collect live nodes sorted by name; check each cw level-0 pointer.
  std::vector<size_t> live;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (IsUp(i)) {
      live.push_back(i);
    }
  }
  if (live.size() < 2) {
    return 0;
  }
  std::sort(live.begin(), live.end(), [this](size_t a, size_t b) {
    return nodes_[a]->ref().name < nodes_[b]->ref().name;
  });
  int violations = 0;
  for (size_t k = 0; k < live.size(); ++k) {
    const size_t i = live[k];
    const size_t expected = live[(k + 1) % live.size()];
    const NodeRef& cw = nodes_[i]->overlay()->table().level(0).cw;
    if (!cw.valid() || cw.name != nodes_[expected]->ref().name) {
      ++violations;
    }
  }
  return violations;
}

}  // namespace fuse
