#include "runtime/sim_cluster.h"

#include <utility>

namespace fuse {

// Discrete-event backend: virtual time, direct protocol calls, fault rules
// applied to the SimNetwork the fabric consults on every attempt.
class SimDeployment : public Deployment {
 public:
  explicit SimDeployment(ClusterConfig config)
      : config_(std::move(config)), sim_(config_.seed) {
    Topology topo = Topology::Generate(config_.topology, sim_.rng());
    net_ = std::make_unique<SimNetwork>(std::move(topo));
    fabric_ = std::make_unique<SimFabric>(sim_, *net_, config_.cost, config_.tcp);
    // Mirrors the harness's own adjustment, so config() reflects how nodes
    // are actually constructed.
    config_.overlay.start_maintenance_on_join = false;
  }

  Environment& env() override { return sim_; }

  Transport* CreateHost(size_t index) override {
    HostId h;
    if (config_.hosts_per_machine > 1) {
      // Co-locate groups of nodes on one router ("machine"), as on the
      // paper's 40-machine ModelNet cluster.
      if (index % static_cast<size_t>(config_.hosts_per_machine) == 0) {
        machine_ = net_->topology().RandomRouter(sim_.rng());
      }
      h = net_->AddHostAt(machine_);
    } else {
      h = net_->AddHost(sim_.rng());
    }
    return fabric_->TransportFor(h);
  }

  void CrashHost(HostId h) override { fabric_->CrashHost(h); }
  void RestartHost(HostId h) override { fabric_->RestartHost(h); }

  void ApplyFaults(const std::function<void(FaultInjector&)>& fn) override {
    fn(net_->faults());
  }

  void Run(const std::function<void()>& fn) override { fn(); }
  void AdvanceFor(Duration d) override { sim_.RunFor(d); }
  bool AwaitCondition(const std::function<bool()>& pred, Duration bound) override {
    return sim_.RunUntilCondition(pred, sim_.Now() + bound);
  }
  bool virtual_time() const override { return true; }

  const ClusterConfig& config() const { return config_; }
  Simulation& sim() { return sim_; }
  SimNetwork& net() { return *net_; }
  SimFabric& fabric() { return *fabric_; }

 private:
  ClusterConfig config_;
  Simulation sim_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SimFabric> fabric_;
  RouterId machine_;
};

namespace {

HarnessConfig HarnessConfigFrom(const ClusterConfig& c) {
  HarnessConfig hc;
  hc.num_nodes = c.num_nodes;
  hc.overlay = c.overlay;
  hc.fuse = c.fuse;
  hc.join_batch = c.join_batch;
  // Blocked layout matching SimDeployment::CreateHost's router boundary
  // (`index % hosts_per_machine == 0` starts a new machine), so the harness's
  // machine map names exactly the co-location the topology models.
  hc.placement = Placement::Pack(c.num_nodes, c.hosts_per_machine < 1 ? 1 : c.hosts_per_machine);
  return hc;  // timing keeps the virtual-time defaults
}

}  // namespace

SimCluster::SimCluster(ClusterConfig config)
    : ClusterHarness(std::make_unique<SimDeployment>(config), HarnessConfigFrom(config)),
      sim_deploy_(static_cast<SimDeployment*>(&deployment())) {}

SimCluster::~SimCluster() = default;

Simulation& SimCluster::sim() { return sim_deploy_->sim(); }
SimNetwork& SimCluster::net() { return sim_deploy_->net(); }
SimFabric& SimCluster::fabric() { return sim_deploy_->fabric(); }
const ClusterConfig& SimCluster::config() const { return sim_deploy_->config(); }

}  // namespace fuse
