// Placement: the nodes -> machines assignment, made first-class.
//
// FUSE's failure model is about *machines*: co-located nodes fail together
// (one SIGKILL on the process backend, one router on the sim's topology), so
// the harness needs to know which nodes share a failure domain. Placement is
// the one vocabulary all three backends speak:
//   * sim      — hosts_per_machine groups consecutive nodes under one access
//                router (SimDeployment::CreateHost starts a new machine at
//                every placement boundary);
//   * live     — nodes_per_machine groups nodes for CrashMachine scheduling
//                (each node still owns its fabric; the machine is a fault
//                domain, not a process);
//   * process  — num_workers multi-tenant worker processes, each hosting
//                nodes_per_machine FuseNodes behind one epoll loop + fabric;
//                CrashMachine is one genuine SIGKILL.
//
// The layout is blocked: machine m hosts nodes [m*npm, (m+1)*npm), with the
// last machine possibly short. This matches the sim's long-standing
// `index % hosts_per_machine == 0` boundary, so placement-aware scenarios
// replay against existing machine-grouped schedules unchanged.
#ifndef FUSE_RUNTIME_PLACEMENT_H_
#define FUSE_RUNTIME_PLACEMENT_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace fuse {

struct Placement {
  int num_nodes = 0;
  int nodes_per_machine = 1;

  // `num_nodes` nodes in blocks of `per_machine`.
  static Placement Pack(int num_nodes, int per_machine) {
    FUSE_CHECK(per_machine >= 1);
    return Placement{num_nodes, per_machine};
  }

  // `num_nodes` nodes spread over exactly `num_machines` machines (the last
  // machine runs short when the division is uneven).
  static Placement Machines(int num_nodes, int num_machines) {
    FUSE_CHECK(num_machines >= 1);
    const int per = (num_nodes + num_machines - 1) / num_machines;
    return Placement{num_nodes, per < 1 ? 1 : per};
  }

  int NumMachines() const {
    return nodes_per_machine < 1
               ? num_nodes
               : (num_nodes + nodes_per_machine - 1) / nodes_per_machine;
  }

  int MachineOf(size_t node) const {
    return static_cast<int>(node) / (nodes_per_machine < 1 ? 1 : nodes_per_machine);
  }

  std::vector<size_t> NodesOn(int machine) const {
    std::vector<size_t> nodes;
    const size_t begin = static_cast<size_t>(machine) * static_cast<size_t>(nodes_per_machine);
    const size_t end = begin + static_cast<size_t>(nodes_per_machine);
    for (size_t i = begin; i < end && i < static_cast<size_t>(num_nodes); ++i) {
      nodes.push_back(i);
    }
    return nodes;
  }

  bool MultiTenant() const { return nodes_per_machine > 1; }
};

}  // namespace fuse

#endif  // FUSE_RUNTIME_PLACEMENT_H_
