#include "runtime/scenario.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "common/logging.h"

namespace fuse {

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kCrashMember:
      return "CrashMember";
    case ScenarioKind::kPartitionHeal:
      return "PartitionHeal";
    case ScenarioKind::kChurnDuringCreate:
      return "ChurnDuringCreate";
    case ScenarioKind::kMachineFailure:
      return "MachineFailure";
  }
  return "Unknown";
}

ScenarioTiming ScenarioTiming::Sim() {
  ScenarioTiming t;
  t.settle = Duration::Minutes(2);
  t.create_bound = Duration::Minutes(3);
  // The analytic bound: ping interval + ping timeout + repair timeouts,
  // with slack for backoff — well within 8 minutes for these parameters.
  t.detect_bound = Duration::Minutes(8);
  t.post_settle = Duration::Minutes(2);
  t.churn_mean_uptime = Duration::Seconds(90);
  t.churn_mean_downtime = Duration::Seconds(60);
  return t;
}

ScenarioTiming ScenarioTiming::Live() {
  ScenarioTiming t;
  // Matched to LiveClusterConfig::FastProtocol's scaled constants: detection
  // is a few ping periods + repair timeouts, i.e. single-digit seconds.
  t.settle = Duration::Seconds(1);
  t.create_bound = Duration::Seconds(5);
  t.detect_bound = Duration::Seconds(10);
  t.post_settle = Duration::Seconds(1);
  t.churn_mean_uptime = Duration::Millis(1500);
  t.churn_mean_downtime = Duration::Millis(1000);
  return t;
}

std::string ScenarioResult::ToString() const {
  char head[96];
  std::snprintf(head, sizeof(head), "groups_created=%d creates_failed=%d notified=%d%s",
                groups_created, creates_failed, notified,
                target_skipped ? " (target skipped: adverse network)" : "");
  std::string s = head;
  for (const auto& v : violations) {
    s += "\n  violation: ";
    s += v;
  }
  return s;
}

namespace {

struct Group {
  FuseId id;
  std::vector<size_t> members;
  // member index -> notification count; written only in the protocol
  // context, read back through ClusterHarness::Run.
  std::map<size_t, int> fired;
  bool created = false;
};

// Issues one CreateGroup rooted at members[0] and waits for its verdict.
// Returns 1 on success, 0 on a definite failure, -1 when no verdict arrived
// within the bound (itself a property violation: creation must terminate).
int CreateGroupBounded(ClusterHarness& cluster, Group& g, Duration bound) {
  struct State {
    bool done = false;
    Status status;
    FuseId id;
  };
  auto st = std::make_shared<State>();
  cluster.Run([&] {
    cluster.CreateGroupInContext(g.members[0], cluster.RefsOf(g.members),
                                 [st](const Status& s, FuseId id) {
                                   st->status = s;
                                   st->id = id;
                                   st->done = true;
                                 });
  });
  if (!cluster.Await([st] { return st->done; }, bound)) {
    return -1;
  }
  if (!st->status.ok()) {
    return 0;
  }
  g.id = st->id;
  g.created = true;
  return 1;
}

// Handlers capture the Group by shared_ptr: they stay registered in the
// (still-running, on the live backend) nodes after the scenario returns, so
// a late notification must find the counters alive, not freed stack state.
void WatchGroup(ClusterHarness& cluster, const std::shared_ptr<Group>& g) {
  cluster.Run([&] {
    for (size_t m : g->members) {
      cluster.WatchGroupMemberInContext(m, g->id, [g, m] { g->fired[m]++; });
    }
  });
}

// The machine-failure schedule (ScenarioKind::kMachineFailure): kill one
// whole machine, then check exactly-once on every group that spanned it and
// silence on every group that did not.
ScenarioResult RunMachineFailure(ClusterHarness& cluster, const ScenarioOptions& options) {
  ScenarioResult res;
  const ScenarioTiming& tm = options.timing;
  Rng fault_rng(options.seed * 7919 + 17);
  char buf[160];
  auto violate = [&res](const char* v) { res.violations.emplace_back(v); };

  const Placement& pl = cluster.placement();
  FUSE_CHECK(pl.NumMachines() >= 2) << "machine failure needs a multi-machine placement";
  const int victim =
      static_cast<int>(fault_rng.UniformInt(0, static_cast<int64_t>(pl.NumMachines()) - 1));

  // Live nodes on vs off the victim machine.
  std::vector<size_t> on;
  std::vector<size_t> off;
  cluster.Run([&] {
    for (size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.IsUp(i)) {
        (cluster.MachineOf(i) == victim ? on : off).push_back(i);
      }
    }
  });
  FUSE_CHECK(!on.empty()) << "victim machine " << victim << " has no live nodes";
  FUSE_CHECK(off.size() >= static_cast<size_t>(options.max_group_size) + 2)
      << "not enough nodes off machine " << victim << " for the scenario";

  // Even groups span the victim machine (they must notify); odd groups are
  // machine-disjoint controls (they must stay silent: the machine loss makes
  // their repair paths replace dead delegates WITHOUT notifying).
  std::vector<std::shared_ptr<Group>> spanning;
  std::vector<std::shared_ptr<Group>> disjoint;
  for (int gi = 0; gi < options.num_groups; ++gi) {
    auto g = std::make_shared<Group>();
    const size_t size = static_cast<size_t>(
        fault_rng.UniformInt(options.min_group_size, options.max_group_size));
    const bool spans = gi % 2 == 0;
    fault_rng.Shuffle(on);
    fault_rng.Shuffle(off);
    if (spans) {
      // One or two members on the doomed machine, the rest elsewhere; the
      // create root is randomized over the whole membership (a root on the
      // victim machine exercises the dead-root notification path).
      const size_t on_count = std::min(on.size(), size >= 4 ? size_t{2} : size_t{1});
      g->members.assign(on.begin(), on.begin() + static_cast<long>(on_count));
      g->members.insert(g->members.end(), off.begin(),
                        off.begin() + static_cast<long>(size - on_count));
      fault_rng.Shuffle(g->members);
    } else {
      g->members.assign(off.begin(), off.begin() + static_cast<long>(size));
    }
    const int verdict = CreateGroupBounded(cluster, *g, tm.create_bound);
    if (verdict != 1) {
      ++res.creates_failed;
      std::snprintf(buf, sizeof(buf), "create of group %d %s", gi,
                    verdict == 0 ? "failed without a fault" : "returned no verdict within bound");
      violate(buf);
      continue;
    }
    ++res.groups_created;
    WatchGroup(cluster, g);
    (spans ? spanning : disjoint).push_back(std::move(g));
  }
  if (spanning.empty()) {
    return res;  // nothing left to check; the create violations tell the story
  }
  cluster.AdvanceFor(tm.settle);

  // The fault: one machine dies as a single event.
  std::set<size_t> crashed(on.begin(), on.end());
  cluster.CrashMachine(static_cast<size_t>(victim));

  // Timing half: every live member of every spanning group hears about the
  // failure within the analytic bound.
  const bool in_bound = cluster.Await(
      [&] {
        for (const auto& g : spanning) {
          for (size_t m : g->members) {
            if (crashed.contains(m)) {
              continue;
            }
            const auto it = g->fired.find(m);
            if (it == g->fired.end() || it->second < 1) {
              return false;
            }
          }
        }
        return true;
      },
      tm.detect_bound);
  if (!in_bound) {
    violate("notification did not reach every live member of a spanning group within the bound");
  }
  cluster.AdvanceFor(tm.post_settle);

  // Exactness half: exactly-once on spanning groups, silence on disjoint
  // ones (a false positive here means machine-level repair notified a group
  // the failure never touched).
  cluster.Run([&] {
    for (const auto& g : spanning) {
      for (size_t m : g->members) {
        if (crashed.contains(m)) {
          continue;
        }
        const auto it = g->fired.find(m);
        const int count = it == g->fired.end() ? 0 : it->second;
        if (count != 1) {
          std::snprintf(buf, sizeof(buf),
                        "spanning-group member %zu heard %d notifications (want 1)", m, count);
          violate(buf);
        } else {
          ++res.notified;
        }
      }
    }
    for (const auto& g : disjoint) {
      for (const auto& [m, count] : g->fired) {
        if (count > 0) {
          std::snprintf(buf, sizeof(buf),
                        "machine-disjoint group notified member %zu %d times (want silence)", m,
                        count);
          violate(buf);
        }
      }
    }
  });
  return res;
}

}  // namespace

ScenarioResult RunAgreementScenario(ClusterHarness& cluster, ScenarioKind kind,
                                    const ScenarioOptions& options) {
  if (kind == ScenarioKind::kMachineFailure) {
    return RunMachineFailure(cluster, options);
  }
  ScenarioResult res;
  const ScenarioTiming& tm = options.timing;
  Rng fault_rng(options.seed * 7919 + 13);
  char buf[160];
  auto violate = [&res](const char* v) { res.violations.emplace_back(v); };

  const size_t n = cluster.size();
  // Under churn, the upper index half cycles through kill/restart while the
  // groups live entirely in the stable lower half — so group membership is
  // deterministic, while creation traffic still routes through (and repairs
  // around) churning overlay nodes.
  const size_t stable_limit = kind == ScenarioKind::kChurnDuringCreate ? n / 2 : n;
  FUSE_CHECK(stable_limit >= static_cast<size_t>(options.max_group_size) + 2)
      << "cluster too small for scenario";

  if (kind == ScenarioKind::kChurnDuringCreate) {
    cluster.StartChurn(stable_limit, n - stable_limit, tm.churn_mean_uptime,
                       tm.churn_mean_downtime);
  }

  const bool tolerant =
      options.tolerate_create_failures || kind == ScenarioKind::kChurnDuringCreate;

  // Group 0 is the fault target; the rest are along for the never-a-duplicate
  // property (and, under adversity, for create-verdict coverage).
  std::vector<std::shared_ptr<Group>> groups;
  for (int gi = 0; gi < options.num_groups; ++gi) {
    auto g = std::make_shared<Group>();
    const size_t size = static_cast<size_t>(
        fault_rng.UniformInt(options.min_group_size, options.max_group_size));
    g->members = cluster.PickLiveNodes(size, stable_limit);
    // The target should exist; under churn or loss a create may fail with a
    // definite error (a routing delegate died, a connection broke), so give
    // it several attempts.
    const int max_attempts = gi == 0 ? 8 : 1;
    int verdict = 0;
    for (int attempt = 0; attempt < max_attempts && verdict != 1; ++attempt) {
      verdict = CreateGroupBounded(cluster, *g, tm.create_bound);
      if (verdict == -1) {
        std::snprintf(buf, sizeof(buf), "create of group %d returned no verdict within bound",
                      gi);
        violate(buf);
        break;
      }
    }
    if (verdict == 0) {
      ++res.creates_failed;
      if (!tolerant) {
        std::snprintf(buf, sizeof(buf), "create of group %d failed without a fault", gi);
        violate(buf);
      }
    }
    if (g->created) {
      ++res.groups_created;
      WatchGroup(cluster, g);
      groups.push_back(std::move(g));
    } else if (gi == 0) {
      // No target group. With a clean network that is already a recorded
      // violation; under tolerated adversity the fault/notification phase is
      // vacuous for this seed — report it as skipped rather than failed.
      if (tolerant && verdict == 0) {
        res.target_skipped = true;
      }
      if (kind == ScenarioKind::kChurnDuringCreate) {
        cluster.StopChurn();
      }
      return res;
    }
  }
  cluster.AdvanceFor(tm.settle);

  // Apply the fault schedule to the target.
  Group& target = *groups[0];
  std::set<size_t> crashed;
  switch (kind) {
    case ScenarioKind::kMachineFailure:  // handled above; unreachable
    case ScenarioKind::kCrashMember:
    case ScenarioKind::kChurnDuringCreate: {
      const size_t victim =
          target.members[fault_rng.UniformInt(0, static_cast<int64_t>(target.members.size()) - 1)];
      crashed.insert(victim);
      cluster.Crash(victim);
      break;
    }
    case ScenarioKind::kPartitionHeal: {
      // Split the group: at least one member on each side (members all on
      // one side of a partition can still talk — that is not a failure).
      // Hosts come from the harness's stable ref table, not live node state,
      // so this works identically when the nodes are remote processes.
      std::vector<HostId> side;
      for (size_t k = 0; k < std::max<size_t>(1, target.members.size() / 2); ++k) {
        side.push_back(cluster.RefOf(target.members[k]).host);
      }
      cluster.ApplyFaults([&side](FaultInjector& f) { f.PartitionHosts(side); });
      break;
    }
  }

  // Property 1, timing half: every live member hears about the failure
  // within the analytic bound. (For PartitionHeal, both partition sides
  // detect independently — the wait completes while still partitioned.)
  const bool in_bound = cluster.Await(
      [&] {
        for (size_t m : target.members) {
          if (crashed.contains(m)) {
            continue;
          }
          const auto it = target.fired.find(m);
          if (it == target.fired.end() || it->second < 1) {
            return false;
          }
        }
        return true;
      },
      tm.detect_bound);
  if (!in_bound) {
    violate("notification did not reach every live target member within the bound");
  }

  // Heal mid-run: agreement is one-way, so the group is already doomed and
  // reconnecting the network must not suppress (or duplicate) anything.
  if (kind == ScenarioKind::kPartitionHeal) {
    cluster.ApplyFaults([](FaultInjector& f) { f.ClearPartitions(); });
  }
  if (kind == ScenarioKind::kChurnDuringCreate) {
    cluster.StopChurn();
  }
  cluster.AdvanceFor(tm.post_settle);

  // Property 1, exactness half + Property 2: exactly-once on the target,
  // never more than once anywhere.
  cluster.Run([&] {
    for (size_t m : target.members) {
      if (crashed.contains(m)) {
        continue;
      }
      const auto it = target.fired.find(m);
      const int count = it == target.fired.end() ? 0 : it->second;
      if (count != 1) {
        std::snprintf(buf, sizeof(buf), "target member %zu heard %d notifications (want 1)", m,
                      count);
        violate(buf);
      } else {
        ++res.notified;
      }
    }
    for (const auto& g : groups) {
      for (const auto& [m, count] : g->fired) {
        if (count > 1) {
          std::snprintf(buf, sizeof(buf), "member %zu heard %d notifications on one group", m,
                        count);
          violate(buf);
        }
      }
    }
  });
  return res;
}

}  // namespace fuse
