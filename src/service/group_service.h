// GroupService: an application-level group facade over the ClusterHarness
// node-op vocabulary (CreateGroupInContext / WatchGroupMemberInContext /
// SignalGroupInContext), sized for millions of concurrent FUSE groups.
//
// The paper's applications (section 4) each maintain a table of live groups
// and a callback per group — exactly the bookkeeping every FUSE application
// re-implements. This service centralizes it:
//   * a sharded, open-addressed record table (Flat128Map per shard) so a
//     million 128-bit group ids index densely instead of through
//     unordered_map nodes;
//   * an admission-windowed create pipeline: creates are queued and issued
//     at most `max_inflight_creates` at a time, so driving 10^6 creates does
//     not flood every root's transport at once;
//   * one-shot failure watches that unregister the record and forward to the
//     application callback with the service's own accounting.
//
// Deployment-agnostic by construction: everything goes through the harness
// vocabulary, so the same service runs on the classic simulator, the sharded
// parallel simulator, and (via ProcessCluster's overrides) worker processes.
// Call Create/Watch/Signal from the driving thread (outside the protocol
// context); completions are Defer'ed by the harness back onto that thread.
#ifndef FUSE_SERVICE_GROUP_SERVICE_H_
#define FUSE_SERVICE_GROUP_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "fuse/fuse_id.h"
#include "runtime/cluster.h"

namespace fuse {

struct GroupServiceOptions {
  // Creates admitted to the cluster concurrently. The default keeps a 16-node
  // sim busy without flooding any single root's connection table.
  int max_inflight_creates = 512;
  // Record-table shards (power of two). Sharding bounds the per-table rehash
  // pause: growing one shard of a million-group table moves 1/shards of it.
  int table_shards = 16;
};

class GroupService {
 public:
  struct Counters {
    uint64_t creates_requested = 0;
    uint64_t creates_ok = 0;
    uint64_t creates_failed = 0;
    uint64_t signals = 0;
    uint64_t notifications = 0;  // watch callbacks fired
  };

  // Per-group record. Members are node indices (not NodeRefs): the harness
  // already owns the index -> ref mapping, and four bytes per member is what
  // keeps a million records dense.
  struct Record {
    uint32_t root = 0;
    std::vector<uint32_t> members;
  };

  explicit GroupService(ClusterHarness& cluster, GroupServiceOptions options = {});

  GroupService(const GroupService&) = delete;
  GroupService& operator=(const GroupService&) = delete;

  // Queues a group create rooted at node `root` spanning `members` (root
  // included or not — the FUSE layer drops the root from its own member
  // list). `done` fires on the driving thread after the create resolves;
  // nullptr is fine. Call Pump() or Drain() to make progress.
  void Create(size_t root, std::vector<size_t> members,
              std::function<void(const Status&, FuseId)> done = nullptr);

  // Issues queued creates up to the admission window. Returns the number
  // newly admitted. Called implicitly by Drain.
  size_t Pump();

  // Runs the cluster until every queued and in-flight create resolved, or
  // `bound` elapses. Returns true when fully drained.
  bool Drain(Duration bound);

  // One-shot failure watch: `on_fire` runs (on the driving thread) the first
  // time node `member`'s FUSE layer reports the group failed; the service
  // drops its record for the id at that point.
  void Watch(size_t member, FuseId id, std::function<void(FuseId)> on_fire);

  // Explicit failure signal from `node` (paper 3.4).
  void Signal(size_t node, FuseId id);

  const Record* FindLive(FuseId id) const;
  size_t NumLive() const;
  // fn(id, record) over every live group; must not call back into the
  // service.
  void ForEachLive(const std::function<void(FuseId, const Record&)>& fn) const;

  size_t NumPendingCreates() const { return queue_.size() + inflight_; }
  const Counters& counters() const { return counters_; }

  // Estimated heap bytes of the service's own tables (records + queue); the
  // FUSE-layer cost lives in FuseNode::ApproxGroupBytes.
  size_t ApproxServiceBytes() const;

 private:
  struct PendingCreate {
    uint32_t root;
    std::vector<uint32_t> members;
    std::function<void(const Status&, FuseId)> done;
  };

  Flat128Map<Record>& ShardFor(FuseId id);
  const Flat128Map<Record>& ShardFor(FuseId id) const;
  void Admit(PendingCreate&& pc);

  ClusterHarness& cluster_;
  GroupServiceOptions options_;
  std::deque<PendingCreate> queue_;
  size_t inflight_ = 0;
  std::vector<Flat128Map<Record>> shards_;
  Counters counters_;
  // Keeps Defer'ed completions from touching a destroyed service: they hold
  // the token weakly and bail once the service is gone.
  std::shared_ptr<GroupService*> alive_;
};

}  // namespace fuse

#endif  // FUSE_SERVICE_GROUP_SERVICE_H_
