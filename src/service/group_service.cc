#include "service/group_service.h"

#include <utility>

#include "common/logging.h"

namespace fuse {

GroupService::GroupService(ClusterHarness& cluster, GroupServiceOptions options)
    : cluster_(cluster), options_(options) {
  FUSE_CHECK(options_.max_inflight_creates > 0);
  FUSE_CHECK(options_.table_shards > 0 &&
             (options_.table_shards & (options_.table_shards - 1)) == 0)
      << "table_shards must be a power of two";
  shards_.resize(static_cast<size_t>(options_.table_shards));
  alive_ = std::make_shared<GroupService*>(this);
}

Flat128Map<GroupService::Record>& GroupService::ShardFor(FuseId id) {
  return shards_[(id.hi ^ id.lo) & (shards_.size() - 1)];
}

const Flat128Map<GroupService::Record>& GroupService::ShardFor(FuseId id) const {
  return shards_[(id.hi ^ id.lo) & (shards_.size() - 1)];
}

void GroupService::Create(size_t root, std::vector<size_t> members,
                          std::function<void(const Status&, FuseId)> done) {
  PendingCreate pc;
  pc.root = static_cast<uint32_t>(root);
  pc.members.reserve(members.size());
  for (size_t m : members) {
    pc.members.push_back(static_cast<uint32_t>(m));
  }
  pc.done = std::move(done);
  counters_.creates_requested++;
  queue_.push_back(std::move(pc));
}

size_t GroupService::Pump() {
  size_t admitted = 0;
  while (!queue_.empty() && inflight_ < static_cast<size_t>(options_.max_inflight_creates)) {
    PendingCreate pc = std::move(queue_.front());
    queue_.pop_front();
    Admit(std::move(pc));
    ++admitted;
  }
  return admitted;
}

void GroupService::Admit(PendingCreate&& pc) {
  ++inflight_;
  std::vector<size_t> member_indices(pc.members.begin(), pc.members.end());
  // The completion is Defer'ed by the harness onto the driving thread; by
  // then the service may be gone, so it re-resolves itself through the
  // liveness token.
  std::weak_ptr<GroupService*> weak = alive_;
  auto on_done = [weak, root = pc.root, members = std::move(pc.members),
                  done = std::move(pc.done)](const Status& s, FuseId id) mutable {
    const std::shared_ptr<GroupService*> self_ptr = weak.lock();
    if (self_ptr == nullptr) {
      return;
    }
    GroupService& self = **self_ptr;
    --self.inflight_;
    if (s.ok()) {
      self.counters_.creates_ok++;
      Record& rec = self.ShardFor(id).FindOrInsert(id.hi, id.lo);
      rec.root = root;
      rec.members = std::move(members);
    } else {
      self.counters_.creates_failed++;
    }
    if (done) {
      done(s, id);
    }
  };
  cluster_.Run([&] {
    cluster_.CreateGroupInContext(pc.root, cluster_.RefsOf(member_indices), std::move(on_done));
  });
}

bool GroupService::Drain(Duration bound) {
  // Refill the admission window whenever it is half empty; a per-create
  // Await round-trip would serialize the pipeline.
  while (NumPendingCreates() > 0) {
    Pump();
    const size_t low_water = static_cast<size_t>(options_.max_inflight_creates) / 2;
    const bool progressed = cluster_.Await(
        [this, low_water] {
          return inflight_ == 0 || (inflight_ <= low_water && !queue_.empty());
        },
        bound);
    if (!progressed) {
      return false;
    }
  }
  return true;
}

void GroupService::Watch(size_t member, FuseId id, std::function<void(FuseId)> on_fire) {
  std::weak_ptr<GroupService*> weak = alive_;
  auto fire = [weak, id, on_fire = std::move(on_fire)] {
    const std::shared_ptr<GroupService*> self_ptr = weak.lock();
    if (self_ptr == nullptr) {
      return;
    }
    GroupService& self = **self_ptr;
    // One-shot per (watch, fire): the FUSE layer already guarantees at most
    // one notification per registration; dropping the record here makes the
    // group disappear from the service's live view at first failure report.
    self.counters_.notifications++;
    self.ShardFor(id).Erase(id.hi, id.lo);
    if (on_fire) {
      on_fire(id);
    }
  };
  cluster_.Run([&] { cluster_.WatchGroupMemberInContext(member, id, std::move(fire)); });
}

void GroupService::Signal(size_t node, FuseId id) {
  counters_.signals++;
  cluster_.Run([&] { cluster_.SignalGroupInContext(node, id); });
}

const GroupService::Record* GroupService::FindLive(FuseId id) const {
  return ShardFor(id).Find(id.hi, id.lo);
}

size_t GroupService::NumLive() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard.size();
  }
  return n;
}

void GroupService::ForEachLive(const std::function<void(FuseId, const Record&)>& fn) const {
  for (const auto& shard : shards_) {
    shard.ForEach([&fn](uint64_t hi, uint64_t lo, const Record& rec) {
      fn(FuseId{hi, lo}, rec);
    });
  }
}

size_t GroupService::ApproxServiceBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    // Open-addressed slots at <= 3/4 load: key pair + state byte + value.
    total += shard.size() * (2 * sizeof(uint64_t) + 1 + sizeof(Record)) * 4 / 3;
    shard.ForEach([&total](uint64_t, uint64_t, const Record& rec) {
      total += rec.members.capacity() * sizeof(uint32_t);
    });
  }
  total += queue_.size() * sizeof(PendingCreate);
  return total;
}

}  // namespace fuse
