// DatagramFabric: the UDP fast path for multi-process deployments.
//
// FUSE's liveness traffic is tiny, periodic, and idempotent — a poor fit for
// TCP's head-of-line blocking and per-message framing. This fabric moves
// WireMessages as records coalesced into UDP datagrams, with an app-level
// reliability layer that keeps the Transport contract of the socket fabric:
// the sender's callback reports Ok once the destination process acknowledged
// the record, or kBroken once the retransmit budget is exhausted.
//
// Three mechanisms make it the fast path:
//   * per-destination coalescing — records queued to one peer are packed
//     into a single datagram up to an MTU budget, flushed on a short
//     batching horizon or immediately when full;
//   * syscall batching — all datagrams due in one flush go to the kernel in
//     one sendmmsg(); the read path drains with recvmmsg() (both fall back
//     to one-at-a-time sendto/recvfrom when the kernel lacks them);
//   * congestion restraint — a per-peer AIMD window (additive increase per
//     ack, halve on retransmit) bounds unacked records in flight, so loss
//     does not amplify load.
//
// Failure semantics differ from TCP deliberately: loss is *silence*. A
// SIGKILLed peer, a one-way block, or a loss burst produce no error signal;
// the sender retransmits with exponential backoff and reports kBroken only
// after max_retransmits attempts. Duplicate deliveries from retransmit races
// are suppressed at the receiver by a per-(session, destination) sequence
// watermark; duplicates are re-acked (the first ack may have been lost).
//
// Fault rules (the shared FaultInjector vocabulary) are applied natively to
// datagrams: sender-side blocks and loss bursts silently drop data records
// at pack time, receiver-side blocks silently refuse delivery (no ack, no
// nack), and blocks on the reverse path silently swallow acks — all of
// which exercise the retransmit layer for real. Linux-only.
#ifndef FUSE_TRANSPORT_DATAGRAM_TRANSPORT_H_
#define FUSE_TRANSPORT_DATAGRAM_TRANSPORT_H_

#if defined(__linux__)

#include <netinet/in.h>

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/fault_injector.h"
#include "runtime/live_runtime.h"
#include "sim/timer.h"
#include "transport/fabric.h"
#include "transport/transport.h"

namespace fuse {

class DatagramFabric;

// Per-host Transport view onto the datagram fabric.
class DatagramTransport : public Transport {
 public:
  DatagramTransport(DatagramFabric* fabric, HostId host) : fabric_(fabric), host_(host) {}

  void Send(WireMessage msg, SendCallback cb) override;
  void RegisterHandler(uint16_t type, Handler handler) override;
  void UnregisterAllHandlers() override;
  HostId local_host() const override { return host_; }
  Environment& env() override;

 private:
  DatagramFabric* fabric_;
  HostId host_;
};

class DatagramFabric : public Fabric {
 public:
  struct Options {
    // Datagram payload budget. Records are packed up to this size; a single
    // record larger than it gets a datagram of its own (up to the UDP max).
    size_t mtu_budget = 1400;
    // How long a queued record may wait for companions before the datagram
    // is flushed anyway.
    Duration coalesce_horizon = Duration::Micros(500);
    // Retransmit schedule: first RTO, doubled per attempt up to the cap.
    // The defaults exhaust in ~465 ms more-or-less matching the socket
    // fabric's dial budget, and below the protocol-level repair timeouts.
    Duration rto_initial = Duration::Millis(15);
    Duration rto_max = Duration::Millis(120);
    int max_retransmits = 6;
    // Congestion-restraint window, per destination: unacked records in
    // flight. Additive increase per ack; halved when an RTO fires.
    uint32_t cwnd_min = 4;
    uint32_t cwnd_max = 64;
    // Seeds the fabric's private rng (loss-burst and jitter draws) and its
    // session id. Deployments derive it from the run seed so fault schedules
    // replay deterministically.
    uint64_t seed = 0x9e3779b97f4a7c15ULL;
  };

  // Counters the datagram tests assert on (beyond the Metrics counters).
  struct DebugStats {
    uint64_t max_inflight = 0;   // peak unacked records to any one peer
    uint32_t min_cwnd = 0;       // smallest window any peer was clamped to
    uint64_t retransmits = 0;    // data records re-sent after an RTO
    uint64_t broken_sends = 0;   // sends failed after retransmit exhaustion
  };

  explicit DatagramFabric(LiveRuntime* rt);  // default options
  DatagramFabric(LiveRuntime* rt, Options opts);
  ~DatagramFabric() override;

  DatagramFabric(const DatagramFabric&) = delete;
  DatagramFabric& operator=(const DatagramFabric&) = delete;

  // Binds the fabric's UDP socket on a loopback ephemeral port and starts
  // receiving. Returns the port (advertised to peers out of band).
  uint16_t Listen() override;

  // Peer addresses come from the base Fabric's PeerAddressMap (SetPeerAddr /
  // ApplyAddressMap). Destinations resolve per *transmit*, not per send:
  // re-advertising a host (a restarted incarnation on a fresh port)
  // retargets future datagrams, including pending retransmits.

  DatagramTransport* TransportFor(HostId local) override;
  bool IsLocal(HostId h) const { return locals_.contains(h.value); }

  FaultInjector& faults() override { return faults_; }

  Environment& env() { return *rt_; }

  const DebugStats& debug_stats() const { return stats_; }

  // True when the kernel accepted a sendmmsg/recvmmsg call (vs the
  // one-at-a-time fallback). Meaningful after traffic has flowed.
  bool used_mmsg() const { return used_mmsg_; }

  // --- used by DatagramTransport ---
  void SendFrom(HostId from, WireMessage msg, Transport::SendCallback cb);
  void RegisterHandler(HostId h, uint16_t type, Transport::Handler handler);
  void UnregisterAllHandlers(HostId h);

 private:
  // One record awaiting acknowledgment. `wire` is the encoded data record,
  // reused verbatim for retransmits.
  struct Unacked {
    std::vector<uint8_t> wire;
    Transport::SendCallback cb;
    HostId from;
    int attempts = 0;          // wire attempts so far
    Duration rto;              // backoff for the *next* deadline
    TimePoint deadline;        // when the current attempt times out
    bool admitted = false;     // inside the congestion window
  };

  struct PeerState {
    HostId to;
    uint64_t next_seq = 1;
    uint32_t cwnd = 0;          // set from opts on creation
    uint32_t inflight = 0;      // admitted && unacked
    std::map<uint64_t, Unacked> unacked;  // by seq (ordered: retransmit scan)
    std::deque<uint64_t> ready;    // admitted, waiting for the next flush
    std::deque<uint64_t> waiting;  // sent by the app, blocked by cwnd
    size_t ready_bytes = 0;        // encoded bytes pending in `ready`
  };

  // Sequence watermark for one (sender session, destination host) stream.
  struct RecvState {
    uint64_t watermark = 0;             // all seqs <= this were delivered
    std::map<uint64_t, bool> above;     // delivered seqs > watermark
  };

  void OnReadable(uint32_t events);
  void HandleDatagram(const uint8_t* data, size_t len, const sockaddr_in& src);
  void HandleDataRecord(const uint8_t* rec, size_t len, const sockaddr_in& src);
  void HandleAckRecord(const uint8_t* rec, size_t len);
  // Appends an ack record for (session, seq, acker) to the per-source ack
  // batch flushed at the end of the current read burst.
  void QueueAck(const sockaddr_in& src, uint64_t session, uint64_t seq, HostId acker);
  void FlushAcks();

  PeerState* PeerFor(HostId to);
  void Admit(PeerState* p, uint64_t seq);
  void AdmitWaiting(PeerState* p);
  void ScheduleFlush(PeerState* p);
  // Packs every peer's ready records into datagrams and hands the batch to
  // the kernel (sendmmsg or the fallback loop).
  void FlushAll();
  void ProcessRtos();
  void ArmRtoTimer();
  void FailSend(Transport::SendCallback cb, const char* why);
  bool DispatchLocal(const WireMessage& msg);
  // One datagram ready for the kernel.
  struct OutDatagram {
    sockaddr_in addr;
    std::vector<uint8_t> bytes;
    uint32_t records = 0;
  };
  void TransmitBatch(std::vector<OutDatagram> grams);
  void SendOne(const OutDatagram& g);

  LiveRuntime* rt_;
  Options opts_;
  FaultInjector faults_;
  Rng rng_;
  uint64_t session_id_ = 0;
  int fd_ = -1;
  uint16_t port_ = 0;
  bool used_mmsg_ = false;
  DebugStats stats_;

  std::unordered_map<uint64_t, std::unique_ptr<DatagramTransport>> locals_;
  std::unordered_map<uint64_t, std::vector<Transport::Handler>> handlers_;
  std::unordered_map<uint64_t, std::unique_ptr<PeerState>> peers_;  // by dest host
  // session -> dest host -> delivery watermark.
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, RecvState>> recv_;
  // Ack batch accumulated within one read burst, keyed by source endpoint
  // (PeerEndpoint::Key-packed (ip, port): the sending fabric's socket).
  std::map<uint64_t, std::vector<uint8_t>> ack_batch_;

  Timer flush_timer_;
  Timer rto_timer_;
  TimePoint rto_deadline_;  // deadline rto_timer_ is currently armed for
};

// Runtime probe: true when this kernel accepts sendmmsg on a UDP socket.
// scripts/check.sh consults this (via bench_net_transport --probe-sendmmsg)
// to skip the UDP parity leg on kernels without it.
bool DatagramSupportsMmsg();

}  // namespace fuse

#endif  // defined(__linux__)
#endif  // FUSE_TRANSPORT_DATAGRAM_TRANSPORT_H_
