// Wire message framing shared by the simulator and live runtimes.
#ifndef FUSE_TRANSPORT_MESSAGE_H_
#define FUSE_TRANSPORT_MESSAGE_H_

#include <cstdint>

#include "common/ids.h"
#include "common/metrics.h"
#include "common/payload_buf.h"

namespace fuse {

// Message type identifiers, namespaced by subsystem. Each node-level protocol
// registers handlers for its own range.
namespace msgtype {
// rpc
inline constexpr uint16_t kRpcRequest = 0x0100;
inline constexpr uint16_t kRpcResponse = 0x0101;
// overlay
inline constexpr uint16_t kOverlayPing = 0x0200;
inline constexpr uint16_t kOverlayPingReply = 0x0201;
inline constexpr uint16_t kOverlayJoinSearch = 0x0202;
inline constexpr uint16_t kOverlayJoinSearchReply = 0x0203;
inline constexpr uint16_t kOverlayNeighborNotify = 0x0204;
inline constexpr uint16_t kOverlayRouted = 0x0205;
inline constexpr uint16_t kOverlayNeighborQuery = 0x0206;
inline constexpr uint16_t kOverlayNeighborQueryReply = 0x0207;
// fuse
inline constexpr uint16_t kFuseGroupCreateRequest = 0x0300;
inline constexpr uint16_t kFuseGroupCreateReply = 0x0301;
inline constexpr uint16_t kFuseInstallChecking = 0x0302;
inline constexpr uint16_t kFuseSoftNotification = 0x0303;
inline constexpr uint16_t kFuseHardNotification = 0x0304;
inline constexpr uint16_t kFuseNeedRepair = 0x0305;
inline constexpr uint16_t kFuseGroupRepairRequest = 0x0306;
inline constexpr uint16_t kFuseGroupRepairReply = 0x0307;
inline constexpr uint16_t kFuseReconcileRequest = 0x0308;
inline constexpr uint16_t kFuseReconcileReply = 0x0309;
// fuse alternative-topology implementations
inline constexpr uint16_t kAltPing = 0x0380;
inline constexpr uint16_t kAltPingReply = 0x0381;
inline constexpr uint16_t kAltCreate = 0x0382;
inline constexpr uint16_t kAltCreateReply = 0x0383;
inline constexpr uint16_t kAltNotify = 0x0384;
// sv-tree application
inline constexpr uint16_t kSvSubscribe = 0x0400;
inline constexpr uint16_t kSvSubscribeReply = 0x0401;
inline constexpr uint16_t kSvContent = 0x0402;
// membership (SWIM baseline)
inline constexpr uint16_t kSwimPing = 0x0500;
inline constexpr uint16_t kSwimAck = 0x0501;
inline constexpr uint16_t kSwimPingReq = 0x0502;
inline constexpr uint16_t kSwimPingReqAck = 0x0503;
// tests / examples
inline constexpr uint16_t kTest = 0x0f00;

// Every registered wire type above, in id order. This is the source of the
// dense dispatch slots below: per-host handler tables are flat arrays of
// kNumSlots entries indexed by MsgTypeSlot(type) instead of hash maps.
inline constexpr uint16_t kAllTypes[] = {
    kRpcRequest,          kRpcResponse,
    kOverlayPing,         kOverlayPingReply,     kOverlayJoinSearch,
    kOverlayJoinSearchReply, kOverlayNeighborNotify, kOverlayRouted,
    kOverlayNeighborQuery,   kOverlayNeighborQueryReply,
    kFuseGroupCreateRequest, kFuseGroupCreateReply, kFuseInstallChecking,
    kFuseSoftNotification,   kFuseHardNotification, kFuseNeedRepair,
    kFuseGroupRepairRequest, kFuseGroupRepairReply, kFuseReconcileRequest,
    kFuseReconcileReply,
    kAltPing,             kAltPingReply,         kAltCreate,
    kAltCreateReply,      kAltNotify,
    kSvSubscribe,         kSvSubscribeReply,     kSvContent,
    kSwimPing,            kSwimAck,              kSwimPingReq,
    kSwimPingReqAck,
    kTest,
};
inline constexpr uint16_t kMaxType = 0x0f00;
// Slot 0 is reserved for "unknown type" (never registered, never matched).
inline constexpr size_t kNumSlots = 1 + sizeof(kAllTypes) / sizeof(kAllTypes[0]);
}  // namespace msgtype

namespace internal {
struct MsgTypeSlotTable {
  uint8_t slot[msgtype::kMaxType + 1] = {};
  constexpr MsgTypeSlotTable() {
    uint8_t next = 1;
    for (const uint16_t t : msgtype::kAllTypes) {
      slot[t] = next++;
    }
  }
};
inline constexpr MsgTypeSlotTable kMsgTypeSlotTable{};
}  // namespace internal

// Dense dispatch slot for a wire type; 0 for types not in msgtype::kAllTypes.
inline constexpr uint8_t MsgTypeSlot(uint16_t type) {
  return type <= msgtype::kMaxType ? internal::kMsgTypeSlotTable.slot[type] : 0;
}

struct WireMessage {
  HostId from;
  HostId to;
  uint16_t type = 0;
  MsgCategory category = MsgCategory::kApp;  // metrics attribution
  // Immutable and ref-counted: fan-out to N destinations, retransmission
  // bookkeeping, and the in-order delivery slot all share one buffer.
  PayloadBuf payload;

  // Approximate on-the-wire size: payload plus transport/IP framing.
  static constexpr uint64_t kHeaderBytes = 48;
  uint64_t WireSize() const { return kHeaderBytes + payload.size(); }
};

}  // namespace fuse

#endif  // FUSE_TRANSPORT_MESSAGE_H_
