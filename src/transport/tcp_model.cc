#include "transport/tcp_model.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fuse {

void SimTransport::Send(WireMessage msg, SendCallback cb) {
  fabric_->SendFrom(host_, std::move(msg), std::move(cb));
}

void SimTransport::RegisterHandler(uint16_t type, Handler handler) {
  fabric_->RegisterHandler(host_, type, std::move(handler));
}

void SimTransport::UnregisterAllHandlers() { fabric_->UnregisterAllHandlers(host_); }

Environment& SimTransport::env() { return fabric_->EnvFor(host_); }

TimePoint SkewedHostEnv::Now() const { return fabric_->env().Now(); }

TimerId SkewedHostEnv::Schedule(Duration d, UniqueFunction fn) {
  const double rate = fabric_->network().faults().ClockRate(host_);
  if (rate == 1.0) {
    return fabric_->env().Schedule(d, std::move(fn));
  }
  return fabric_->env().Schedule(d * (1.0 / rate), std::move(fn));
}

bool SkewedHostEnv::Cancel(TimerId id) { return fabric_->env().Cancel(id); }

Rng& SkewedHostEnv::rng() { return fabric_->env().rng(); }

Metrics& SkewedHostEnv::metrics() { return fabric_->env().metrics(); }

SimFabric::SimFabric(Environment& env, SimNetwork& net, CostModel cost, TcpParams tcp)
    : env_(env), net_(net), cost_(cost), tcp_(tcp) {}

SimFabric::HostState& SimFabric::StateOf(HostId h) {
  if (h.value >= hosts_.size()) {
    hosts_.resize(h.value + 1);
  }
  HostState& hs = hosts_[h.value];
  if (hs.transport == nullptr) {
    hs.transport = std::make_unique<SimTransport>(this, h);
    hs.host_env = std::make_unique<SkewedHostEnv>(this, h);
  }
  return hs;
}

Environment& SimFabric::EnvFor(HostId host) { return *StateOf(host).host_env; }

const SimFabric::HostState* SimFabric::FindState(HostId h) const {
  if (h.value >= hosts_.size() || hosts_[h.value].transport == nullptr) {
    return nullptr;
  }
  return &hosts_[h.value];
}

SimTransport* SimFabric::TransportFor(HostId host) { return StateOf(host).transport.get(); }

SimFabric::Connection& SimFabric::ConnOf(HostId a, HostId b) {
  Connection& conn = connections_.FindOrInsert(PairKey(a, b));
  if (!conn.path_cached) {
    const HostId lo = a < b ? a : b;
    const HostId hi = a < b ? b : a;
    conn.path[0] = net_.GetPath(lo, hi);
    conn.path[1] = net_.GetPath(hi, lo);
    conn.path_cached = true;
  }
  return conn;
}

double SimFabric::RouteSuccess(uint32_t hops) const {
  return net_.RouteSuccessProbabilityForHops(hops);
}

Duration SimFabric::Rtt(HostId a, HostId b) const {
  return net_.GetPath(a, b).latency + net_.GetPath(b, a).latency;
}

bool SimFabric::IsHostUp(HostId host) const {
  const HostState* hs = FindState(host);
  // Hosts unseen by the fabric are considered up (they just have no state).
  return hs == nullptr ? !net_.faults().IsHostDown(host) : hs->up;
}

void SimFabric::CrashHost(HostId host) {
  HostState& hs = StateOf(host);
  hs.up = false;
  hs.incarnation++;
  hs.handlers.clear();
  hs.send_busy_until = TimePoint::Zero();
  net_.faults().SetHostDown(host, true);
  // Break every connection touching this host. Peers' outstanding callbacks
  // get kBroken. Collect the keys first and sort them (canonical low-pair
  // order): the callbacks BreakConnection fires may send messages, which can
  // insert new connections and rehash the table mid-iteration.
  std::vector<uint64_t> affected;
  connections_.ForEach([&](uint64_t key, Connection& conn) {
    const HostId lo(key >> 32);
    const HostId hi(key & 0xffffffffULL);
    if ((lo == host || hi == host) &&
        (conn.state != Connection::State::kClosed || !conn.pending.empty() ||
         !conn.inflight.empty())) {
      affected.push_back(key);
    }
  });
  std::sort(affected.begin(), affected.end());
  for (const uint64_t key : affected) {
    BreakConnection(connections_.Find(key));
  }
}

void SimFabric::RestartHost(HostId host) {
  HostState& hs = StateOf(host);
  hs.up = true;
  hs.incarnation++;
  hs.handlers.clear();
  net_.faults().SetHostDown(host, false);
}

void SimFabric::RegisterHandler(HostId host, uint16_t type, Transport::Handler handler) {
  const uint8_t slot = MsgTypeSlot(type);
  FUSE_CHECK(slot != 0) << "unknown message type " << type
                        << " (add it to msgtype::kAllTypes)";
  HostState& hs = StateOf(host);
  if (hs.handlers.size() < msgtype::kNumSlots) {
    hs.handlers.resize(msgtype::kNumSlots);
  }
  hs.handlers[slot] = std::move(handler);
}

void SimFabric::UnregisterAllHandlers(HostId host) { StateOf(host).handlers.clear(); }

void SimFabric::InvokeCallback(Transport::SendCallback cb, Status status) {
  if (cb) {
    cb(status);
  }
}

void SimFabric::SendFrom(HostId from, WireMessage msg, Transport::SendCallback cb) {
  HostState& hs = StateOf(from);
  if (!hs.up) {
    InvokeCallback(std::move(cb), Status::Cancelled("sender crashed"));
    return;
  }
  msg.from = from;
  const HostId to = msg.to;
  FUSE_CHECK(to.valid() && to != from) << "bad destination";
  Connection& conn = ConnOf(from, to);
  switch (conn.state) {
    case Connection::State::kOpen:
      StartDataSend(from, &conn, std::move(msg), std::move(cb));
      return;
    case Connection::State::kConnecting:
      conn.pending.push_back(PendingSend{std::move(msg), std::move(cb)});
      return;
    case Connection::State::kClosed:
      conn.pending.push_back(PendingSend{std::move(msg), std::move(cb)});
      if (!cost_.model_connection_setup) {
        conn.state = Connection::State::kOpen;
        FlushPending(from, to, &conn);
      } else {
        StartHandshake(from, to, &conn);
      }
      return;
  }
}

void SimFabric::StartHandshake(HostId initiator, HostId peer, Connection* conn) {
  conn->state = Connection::State::kConnecting;
  AttemptConnect(initiator, peer, conn->epoch, 0);
}

void SimFabric::AttemptConnect(HostId initiator, HostId peer, uint64_t epoch, int attempt) {
  Connection& conn = ConnOf(initiator, peer);
  if (conn.epoch != epoch || conn.state != Connection::State::kConnecting) {
    return;  // superseded
  }
  if (attempt >= tcp_.max_connect_attempts) {
    conn.state = Connection::State::kClosed;
    conn.epoch++;
    auto pending = std::move(conn.pending);
    conn.pending.clear();
    // From here on only locals: the callbacks may send and rehash the table.
    for (auto& p : pending) {
      InvokeCallback(std::move(p.cb), Status::Unreachable("connect failed"));
    }
    return;
  }
  // SYN + SYNACK: both must survive, and neither direction may be blocked.
  env_.metrics().IncMessage(MsgCategory::kTransportControl, WireMessage::kHeaderBytes);
  const int dir = initiator < peer ? 0 : 1;
  const FaultInjector& faults = net_.faults();
  const bool blocked =
      faults.IsBlocked(initiator, peer) || faults.IsBlocked(peer, initiator);
  // Loss bursts multiply the per-attempt survival probability, so a rule set
  // without bursts draws the exact same Bernoulli sequence as before.
  const double burst =
      faults.HasLossBursts() ? faults.BurstLossProbability(initiator, peer, env_.Now()) : 0.0;
  const bool ok =
      !blocked &&
      env_.rng().Bernoulli(RouteSuccess(conn.path[dir].hops) * (1.0 - burst)) &&
      env_.rng().Bernoulli(RouteSuccess(conn.path[1 - dir].hops) * (1.0 - burst));
  if (ok) {
    env_.metrics().IncMessage(MsgCategory::kTransportControl, WireMessage::kHeaderBytes);
    const Duration rtt = conn.path[0].latency + conn.path[1].latency +
                         faults.ExtraDelay(initiator, peer) + faults.ExtraDelay(peer, initiator);
    env_.Schedule(rtt, [this, initiator, peer, epoch] {
      Connection& c = ConnOf(initiator, peer);
      if (c.epoch != epoch || c.state != Connection::State::kConnecting) {
        return;
      }
      c.state = Connection::State::kOpen;
      FlushPending(initiator, peer, &c);
    });
  } else {
    const Duration backoff = tcp_.connect_rto * (int64_t{1} << attempt);
    env_.Schedule(backoff, [this, initiator, peer, epoch, attempt] {
      AttemptConnect(initiator, peer, epoch, attempt + 1);
    });
  }
}

void SimFabric::FlushPending(HostId a, HostId b, Connection* conn) {
  (void)a;
  (void)b;
  auto pending = std::move(conn->pending);
  conn->pending.clear();
  for (auto& p : pending) {
    StartDataSend(p.msg.from, conn, std::move(p.msg), std::move(p.cb));
  }
}

void SimFabric::StartDataSend(HostId from, Connection* conn, WireMessage msg,
                              Transport::SendCallback cb) {
  const HostId to = msg.to;
  // Materialize the destination first: StateOf may grow hosts_, so take the
  // incarnation by value before any reference into the vector is held.
  const uint64_t dest_incarnation = StateOf(to).incarnation;
  const SlotRef slot_ref = slot_pool_.Alloc();
  const SendRef st_ref = send_pool_.Alloc();
  DeliverySlot& slot = *slot_pool_.Get(slot_ref);
  DataSendState& st = *send_pool_.Get(st_ref);
  st.to = to;
  st.wire_size = msg.WireSize();
  st.category = msg.category;
  st.cb = std::move(cb);
  st.conn_epoch = conn->epoch;
  st.slot = slot_ref;
  slot.msg = std::move(msg);
  slot.dest_incarnation = dest_incarnation;
  st.inflight_pos = static_cast<uint32_t>(conn->inflight.size());
  conn->inflight.push_back(st_ref);
  // Enqueue for in-order delivery on this direction.
  const int dir = from < to ? 0 : 1;
  conn->delivery_queue[dir].push_back(slot_ref);
  // Per-send CPU occupancy: sends from one host leave serialized (§7.4).
  const Duration overhead = cost_.SendOverhead();
  TimePoint depart = env_.Now();
  if (!overhead.IsZero()) {
    HostState& hs = StateOf(from);
    const TimePoint busy_from = hs.send_busy_until > depart ? hs.send_busy_until : depart;
    depart = busy_from + overhead;
    hs.send_busy_until = depart;
  }
  env_.Schedule(depart - env_.Now(), [this, from, st_ref] { AttemptData(from, st_ref); });
}

void SimFabric::RemoveInflight(Connection& conn, SendRef ref) {
  DataSendState* st = send_pool_.Get(ref);
  const size_t pos = st->inflight_pos;
  if (pos >= conn.inflight.size() || conn.inflight[pos] != ref) {
    return;  // already detached (e.g. by BreakConnection)
  }
  conn.inflight[pos] = conn.inflight.back();
  send_pool_.Get(conn.inflight[pos])->inflight_pos = static_cast<uint32_t>(pos);
  conn.inflight.pop_back();
}

void SimFabric::AttemptData(HostId from, SendRef ref) {
  DataSendState* st = send_pool_.Get(ref);
  if (st == nullptr) {
    return;  // the connection broke and BreakConnection reclaimed the state
  }
  st->retry = TimerId();  // if this was the backoff event, it has now fired
  const HostId to = st->to;
  Connection& conn = ConnOf(from, to);
  if (conn.epoch != st->conn_epoch) {
    // Safety net: BreakConnection reclaims inflight state when it bumps the
    // epoch, so a live state with a stale epoch should not occur; fail it
    // cleanly if a future path ever bumps the epoch without draining.
    Transport::SendCallback cb = std::move(st->cb);
    send_pool_.Release(ref);
    InvokeCallback(std::move(cb), Status::Broken("connection reset"));
    return;
  }
  if (st->attempt >= tcp_.max_data_attempts) {
    RemoveInflight(conn, ref);
    Transport::SendCallback cb = std::move(st->cb);
    send_pool_.Release(ref);
    BreakConnection(&conn);  // reclaims the delivery slot with the queues
    InvokeCallback(std::move(cb), Status::Broken("retransmission limit"));
    return;
  }
  st->attempt++;
  env_.metrics().IncMessage(st->category, st->wire_size);
  const int dir = from < to ? 0 : 1;
  const FaultInjector& faults = net_.faults();
  // Directional verdicts: under an asymmetric block the data can arrive while
  // every ack is lost, so the receiver sees (and re-sees) the message while
  // the sender backs off toward a broken connection.
  const bool data_blocked = faults.IsBlocked(from, to);
  const bool ack_blocked = faults.IsBlocked(to, from);
  const double burst =
      faults.HasLossBursts() ? faults.BurstLossProbability(from, to, env_.Now()) : 0.0;
  const bool data_ok =
      !data_blocked && env_.rng().Bernoulli(RouteSuccess(conn.path[dir].hops) * (1.0 - burst));
  const bool ack_ok =
      data_ok && !ack_blocked &&
      env_.rng().Bernoulli(RouteSuccess(conn.path[1 - dir].hops) * (1.0 - burst));
  const Duration fwd_extra = faults.ExtraDelay(from, to);
  Duration one_way = conn.path[dir].latency + fwd_extra;
  const Duration jitter_max = faults.ReorderJitterFor(from, to);
  if (!jitter_max.IsZero()) {
    // Extra per-message delay scrambles arrival order across connections (and
    // lands in the slot's ready_time, so in-order delivery per connection
    // still holds via the watermark). The draw only happens when a reorder
    // rule is active, preserving the rng sequence of jitter-free schedules.
    one_way += Duration::Micros(env_.rng().UniformInt(0, jitter_max.ToMicros()));
  }
  const Duration rtt = conn.path[0].latency + conn.path[1].latency + fwd_extra +
                       faults.ExtraDelay(to, from);

  // A stale slot ref means the message was already delivered (a lost-ack
  // retransmission): nothing left to mark ready.
  if (data_ok) {
    DeliverySlot* slot = slot_pool_.Get(st->slot);
    if (slot != nullptr && !slot->ready) {
      slot->ready = true;
      slot->ready_time = env_.Now() + one_way;
      FlushDeliveries(&conn, dir);
    }
  }
  if (data_ok && ack_ok) {
    RemoveInflight(conn, ref);
    Transport::SendCallback cb = std::move(st->cb);
    send_pool_.Release(ref);
    env_.Schedule(rtt, [this, cb = std::move(cb)]() mutable {
      InvokeCallback(std::move(cb), Status::Ok());
    });
    return;
  }
  // Retransmit with exponential backoff. The closure carries only the pool
  // ref: if the connection breaks first, BreakConnection cancels the event
  // and reclaims the state, and a stale ref resolves to nothing.
  const Duration base_rto = std::max(tcp_.min_rto, rtt * int64_t{2});
  const Duration backoff = base_rto * (int64_t{1} << (st->attempt - 1));
  st->retry = env_.Schedule(backoff, [this, from, ref] { AttemptData(from, ref); });
}

void SimFabric::FlushDeliveries(Connection* conn, int dir) {
  // TCP in-order delivery with head-of-line blocking: deliver the longest
  // ready prefix of the queue; anything behind an unready slot waits.
  SlotQueue& queue = conn->delivery_queue[dir];
  while (!queue.empty()) {
    const SlotRef ref = queue.front();
    const DeliverySlot* slot = slot_pool_.Get(ref);
    if (!slot->ready) {
      break;
    }
    queue.pop_front();
    TimePoint deliver_at = slot->ready_time;
    if (deliver_at < conn->delivery_watermark[dir]) {
      deliver_at = conn->delivery_watermark[dir];
    }
    conn->delivery_watermark[dir] = deliver_at;
    // Ownership of the slot passes to the scheduled event.
    env_.Schedule(deliver_at - env_.Now(), [this, ref] { FinishDelivery(ref); });
  }
}

void SimFabric::BreakConnection(Connection* conn) {
  conn->state = Connection::State::kClosed;
  conn->epoch++;
  conn->delivery_watermark[0] = TimePoint::Zero();
  conn->delivery_watermark[1] = TimePoint::Zero();
  for (SlotQueue& queue : conn->delivery_queue) {
    while (!queue.empty()) {
      slot_pool_.Release(queue.front());
      queue.pop_front();
    }
  }
  auto pending = std::move(conn->pending);
  conn->pending.clear();
  // Drain the inflight list: cancel backoff events and reclaim the pool
  // entries now, collecting the callbacks.
  auto inflight = std::move(conn->inflight);
  conn->inflight.clear();
  std::vector<Transport::SendCallback> broken;
  broken.reserve(inflight.size());
  for (const SendRef ref : inflight) {
    DataSendState* st = send_pool_.Get(ref);
    if (st == nullptr) {
      continue;
    }
    if (st->retry.valid()) {
      env_.Cancel(st->retry);  // reclaim the backoff event immediately
    }
    broken.push_back(std::move(st->cb));
    send_pool_.Release(ref);
  }
  // Invoke callbacks last, from locals only: they may send messages, which
  // can rehash connections_ and invalidate `conn`.
  for (auto& cb : pending) {
    InvokeCallback(std::move(cb.cb), Status::Broken("connection broke"));
  }
  for (auto& cb : broken) {
    InvokeCallback(std::move(cb), Status::Broken("connection broke"));
  }
}

void SimFabric::FinishDelivery(SlotRef ref) {
  DeliverySlot* slot = slot_pool_.Get(ref);
  if (slot == nullptr) {
    return;
  }
  // Move everything out and reclaim the entry before running the handler:
  // the handler may send, and pool growth would invalidate `slot`.
  const WireMessage msg = std::move(slot->msg);
  const uint64_t incarnation = slot->dest_incarnation;
  slot_pool_.Release(ref);
  Deliver(msg.to, incarnation, msg);
}

void SimFabric::Deliver(HostId to, uint64_t incarnation, const WireMessage& msg) {
  const HostState* hs = FindState(to);
  if (hs == nullptr) {
    return;
  }
  if (!hs->up || hs->incarnation != incarnation) {
    return;  // crashed or restarted since the packet left
  }
  const uint8_t slot = MsgTypeSlot(msg.type);
  if (slot >= hs->handlers.size() || !hs->handlers[slot]) {
    FUSE_LOG(Debug) << "host " << to.ToString() << " has no handler for type " << msg.type;
    return;
  }
  // Copy the handler: it may unregister itself while running.
  Transport::Handler handler = hs->handlers[slot];
  handler(msg);
}

}  // namespace fuse
