#include "transport/tcp_model.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fuse {

void SimTransport::Send(WireMessage msg, SendCallback cb) {
  fabric_->SendFrom(host_, std::move(msg), std::move(cb));
}

void SimTransport::RegisterHandler(uint16_t type, Handler handler) {
  fabric_->RegisterHandler(host_, type, std::move(handler));
}

void SimTransport::UnregisterAllHandlers() { fabric_->UnregisterAllHandlers(host_); }

Environment& SimTransport::env() { return fabric_->env(); }

SimFabric::SimFabric(Environment& env, SimNetwork& net, CostModel cost, TcpParams tcp)
    : env_(env), net_(net), cost_(cost), tcp_(tcp) {}

SimFabric::HostState& SimFabric::StateOf(HostId h) {
  auto it = hosts_.find(h);
  if (it == hosts_.end()) {
    it = hosts_.emplace(h, HostState{}).first;
    it->second.transport = std::make_unique<SimTransport>(this, h);
  }
  return it->second;
}

SimTransport* SimFabric::TransportFor(HostId host) { return StateOf(host).transport.get(); }

SimFabric::Connection& SimFabric::ConnOf(HostId a, HostId b) { return connections_[PairKey(a, b)]; }

Duration SimFabric::Rtt(HostId a, HostId b) const {
  return net_.GetPath(a, b).latency + net_.GetPath(b, a).latency;
}

bool SimFabric::IsHostUp(HostId host) const {
  const auto it = hosts_.find(host);
  // Hosts unseen by the fabric are considered up (they just have no state).
  return it == hosts_.end() ? !net_.faults().IsHostDown(host) : it->second.up;
}

void SimFabric::CrashHost(HostId host) {
  HostState& hs = StateOf(host);
  hs.up = false;
  hs.incarnation++;
  hs.handlers.clear();
  hs.send_busy_until = TimePoint::Zero();
  net_.faults().SetHostDown(host, true);
  // Break every connection touching this host. Peers' outstanding callbacks
  // get kBroken. Collect the keys first: the callbacks BreakConnection fires
  // may send messages, which can insert new connections and rehash the map
  // mid-iteration.
  std::vector<uint64_t> affected;
  for (const auto& [key, conn] : connections_) {
    const HostId lo(key >> 32);
    const HostId hi(key & 0xffffffffULL);
    if ((lo == host || hi == host) &&
        (conn.state != Connection::State::kClosed || !conn.pending.empty() ||
         !conn.inflight.empty())) {
      affected.push_back(key);
    }
  }
  for (const uint64_t key : affected) {
    BreakConnection(&connections_[key]);
  }
}

void SimFabric::RestartHost(HostId host) {
  HostState& hs = StateOf(host);
  hs.up = true;
  hs.incarnation++;
  hs.handlers.clear();
  net_.faults().SetHostDown(host, false);
}

void SimFabric::RegisterHandler(HostId host, uint16_t type, Transport::Handler handler) {
  StateOf(host).handlers[type] = std::move(handler);
}

void SimFabric::UnregisterAllHandlers(HostId host) { StateOf(host).handlers.clear(); }

void SimFabric::InvokeCallback(Transport::SendCallback cb, Status status) {
  if (cb) {
    cb(status);
  }
}

void SimFabric::SendFrom(HostId from, WireMessage msg, Transport::SendCallback cb) {
  HostState& hs = StateOf(from);
  if (!hs.up) {
    InvokeCallback(std::move(cb), Status::Cancelled("sender crashed"));
    return;
  }
  msg.from = from;
  const HostId to = msg.to;
  FUSE_CHECK(to.valid() && to != from) << "bad destination";
  Connection& conn = ConnOf(from, to);
  switch (conn.state) {
    case Connection::State::kOpen:
      StartDataSend(from, &conn, std::move(msg), std::move(cb));
      return;
    case Connection::State::kConnecting:
      conn.pending.push_back(PendingSend{std::move(msg), std::move(cb)});
      return;
    case Connection::State::kClosed:
      conn.pending.push_back(PendingSend{std::move(msg), std::move(cb)});
      if (!cost_.model_connection_setup) {
        conn.state = Connection::State::kOpen;
        FlushPending(from, to, &conn);
      } else {
        StartHandshake(from, to, &conn);
      }
      return;
  }
}

void SimFabric::StartHandshake(HostId initiator, HostId peer, Connection* conn) {
  conn->state = Connection::State::kConnecting;
  AttemptConnect(initiator, peer, conn->epoch, 0);
}

void SimFabric::AttemptConnect(HostId initiator, HostId peer, uint64_t epoch, int attempt) {
  Connection& conn = ConnOf(initiator, peer);
  if (conn.epoch != epoch || conn.state != Connection::State::kConnecting) {
    return;  // superseded
  }
  if (attempt >= tcp_.max_connect_attempts) {
    conn.state = Connection::State::kClosed;
    conn.epoch++;
    auto pending = std::move(conn.pending);
    conn.pending.clear();
    for (auto& p : pending) {
      InvokeCallback(std::move(p.cb), Status::Unreachable("connect failed"));
    }
    return;
  }
  // SYN + SYNACK: both must survive, and the pair must not be blocked.
  env_.metrics().IncMessage(MsgCategory::kTransportControl, WireMessage::kHeaderBytes);
  const bool blocked = net_.faults().IsBlocked(initiator, peer);
  const bool ok = !blocked &&
                  env_.rng().Bernoulli(net_.RouteSuccessProbability(initiator, peer)) &&
                  env_.rng().Bernoulli(net_.RouteSuccessProbability(peer, initiator));
  if (ok) {
    env_.metrics().IncMessage(MsgCategory::kTransportControl, WireMessage::kHeaderBytes);
    const Duration rtt = Rtt(initiator, peer);
    env_.Schedule(rtt, [this, initiator, peer, epoch] {
      Connection& c = ConnOf(initiator, peer);
      if (c.epoch != epoch || c.state != Connection::State::kConnecting) {
        return;
      }
      c.state = Connection::State::kOpen;
      FlushPending(initiator, peer, &c);
    });
  } else {
    const Duration backoff = tcp_.connect_rto * (int64_t{1} << attempt);
    env_.Schedule(backoff, [this, initiator, peer, epoch, attempt] {
      AttemptConnect(initiator, peer, epoch, attempt + 1);
    });
  }
}

void SimFabric::FlushPending(HostId a, HostId b, Connection* conn) {
  (void)a;
  (void)b;
  auto pending = std::move(conn->pending);
  conn->pending.clear();
  for (auto& p : pending) {
    StartDataSend(p.msg.from, conn, std::move(p.msg), std::move(p.cb));
  }
}

void SimFabric::StartDataSend(HostId from, Connection* conn, WireMessage msg,
                              Transport::SendCallback cb) {
  HostState& hs = StateOf(from);
  const HostId to = msg.to;
  auto st = std::make_shared<DataSendState>();
  st->cb = std::move(cb);
  st->conn_epoch = conn->epoch;
  st->slot = std::make_shared<DeliverySlot>();
  st->slot->msg = std::move(msg);
  st->slot->dest_incarnation = StateOf(to).incarnation;
  st->msg = st->slot->msg;  // retransmission bookkeeping keeps its own copy
  st->inflight_pos = conn->inflight.size();
  conn->inflight.push_back(st);
  // Enqueue for in-order delivery on this direction.
  const int dir = from < to ? 0 : 1;
  conn->delivery_queue[dir].push_back(st->slot);
  // Per-send CPU occupancy: sends from one host leave serialized (§7.4).
  const Duration overhead = cost_.SendOverhead();
  TimePoint depart = env_.Now();
  if (!overhead.IsZero()) {
    const TimePoint busy_from = hs.send_busy_until > depart ? hs.send_busy_until : depart;
    depart = busy_from + overhead;
    hs.send_busy_until = depart;
  }
  env_.Schedule(depart - env_.Now(), [this, from, st] { AttemptData(from, st); });
}

void SimFabric::RemoveInflight(Connection& conn, DataSendState* st) {
  const size_t pos = st->inflight_pos;
  if (pos >= conn.inflight.size() || conn.inflight[pos].get() != st) {
    return;  // already detached (e.g. by BreakConnection)
  }
  conn.inflight[pos] = std::move(conn.inflight.back());
  conn.inflight[pos]->inflight_pos = pos;
  conn.inflight.pop_back();
}

void SimFabric::AttemptData(HostId from, std::shared_ptr<DataSendState> st) {
  const HostId to = st->msg.to;
  Connection& conn = ConnOf(from, to);
  if (conn.epoch != st->conn_epoch) {
    // The connection broke while this send's departure event was in flight.
    // BreakConnection drained the inflight list and already failed st->cb,
    // so this invocation is a no-op safety net (InvokeCallback ignores a
    // null callback) in case a future path ever bumps the epoch without
    // draining.
    InvokeCallback(std::move(st->cb), Status::Broken("connection reset"));
    return;
  }
  if (st->attempt >= tcp_.max_data_attempts) {
    RemoveInflight(conn, st.get());
    BreakConnection(&conn);
    InvokeCallback(std::move(st->cb), Status::Broken("retransmission limit"));
    return;
  }
  st->attempt++;
  env_.metrics().IncMessage(st->msg.category, st->msg.WireSize());
  const bool blocked = net_.faults().IsBlocked(from, to);
  const bool data_ok =
      !blocked && env_.rng().Bernoulli(net_.RouteSuccessProbability(from, to));
  const bool ack_ok =
      data_ok && env_.rng().Bernoulli(net_.RouteSuccessProbability(to, from));
  const Duration one_way = net_.GetPath(from, to).latency;

  if (data_ok && !st->slot->ready) {
    st->slot->ready = true;
    st->slot->ready_time = env_.Now() + one_way;
    FlushDeliveries(&conn, from < to ? 0 : 1);
  }
  if (data_ok && ack_ok) {
    RemoveInflight(conn, st.get());
    const Duration rtt = Rtt(from, to);
    auto cb = std::move(st->cb);
    env_.Schedule(rtt, [this, cb = std::move(cb)]() mutable {
      InvokeCallback(std::move(cb), Status::Ok());
    });
    return;
  }
  // Retransmit with exponential backoff. The weak capture breaks the
  // st -> retry -> callback -> st cycle; the state is kept alive by the
  // connection's inflight list, and the timer auto-cancels if the state is
  // dropped first.
  const Duration base_rto = std::max(tcp_.min_rto, Rtt(from, to) * int64_t{2});
  const Duration backoff = base_rto * (int64_t{1} << (st->attempt - 1));
  st->retry.Bind(env_);
  st->retry.Start(backoff, [this, from, weak = std::weak_ptr<DataSendState>(st)] {
    if (auto s = weak.lock()) {
      AttemptData(from, std::move(s));
    }
  });
}

void SimFabric::FlushDeliveries(Connection* conn, int dir) {
  // TCP in-order delivery with head-of-line blocking: deliver the longest
  // ready prefix of the queue; anything behind an unready slot waits.
  auto& queue = conn->delivery_queue[dir];
  while (!queue.empty() && queue.front()->ready) {
    std::shared_ptr<DeliverySlot> slot = queue.front();
    queue.pop_front();
    TimePoint deliver_at = slot->ready_time;
    if (deliver_at < conn->delivery_watermark[dir]) {
      deliver_at = conn->delivery_watermark[dir];
    }
    conn->delivery_watermark[dir] = deliver_at;
    env_.Schedule(deliver_at - env_.Now(), [this, slot] {
      Deliver(slot->msg.to, slot->dest_incarnation, slot->msg);
    });
  }
}

void SimFabric::BreakConnection(Connection* conn) {
  conn->state = Connection::State::kClosed;
  conn->epoch++;
  conn->delivery_watermark[0] = TimePoint::Zero();
  conn->delivery_watermark[1] = TimePoint::Zero();
  conn->delivery_queue[0].clear();
  conn->delivery_queue[1].clear();
  auto pending = std::move(conn->pending);
  conn->pending.clear();
  auto inflight = std::move(conn->inflight);
  conn->inflight.clear();
  for (auto& st : inflight) {
    st->retry.Cancel();  // reclaim the backoff event immediately
  }
  // Invoke callbacks last, from locals only: they may send messages, which
  // can rehash connections_ and invalidate `conn`.
  for (auto& p : pending) {
    InvokeCallback(std::move(p.cb), Status::Broken("connection broke"));
  }
  for (auto& st : inflight) {
    InvokeCallback(std::move(st->cb), Status::Broken("connection broke"));
  }
}

void SimFabric::Deliver(HostId to, uint64_t incarnation, WireMessage msg) {
  auto it = hosts_.find(to);
  if (it == hosts_.end()) {
    return;
  }
  HostState& hs = it->second;
  if (!hs.up || hs.incarnation != incarnation) {
    return;  // crashed or restarted since the packet left
  }
  const auto hit = hs.handlers.find(msg.type);
  if (hit == hs.handlers.end()) {
    FUSE_LOG(Debug) << "host " << to.ToString() << " has no handler for type " << msg.type;
    return;
  }
  // Copy the handler: it may unregister itself while running.
  Transport::Handler handler = hit->second;
  handler(msg);
}

}  // namespace fuse
