// ShardedFabric: the messaging layer for the sharded simulator
// (sim/sharded_sim.h). Same analytic TCP-over-lossy-topology model as
// SimFabric — per-attempt route survival draws in both directions,
// exponential backoff from the minimum RTO, kBroken after the retransmission
// limit, per-host send-CPU serialization, incarnation-checked delivery —
// reorganized so every piece of mutable state has exactly one owning shard:
//
//   * all per-send state (attempt counter, callback, payload) lives on the
//     *sender's* shard in a pooled entry; retransmission attempts, loss
//     draws, and latency draws all execute there, so the receiving shard
//     never contributes randomness to a message in flight;
//   * a delivery is resolved entirely at the successful attempt: the sender
//     computes the arrival time, clamps it against the per-(src,dst) FIFO
//     watermark, and ships a self-contained closure — same-shard via a plain
//     ScheduleAt, cross-shard via the shard outbox that ShardedSim merges
//     canonically at the epoch barrier;
//   * host up/incarnation flags are written only at barriers (CrashHost /
//     RestartHost run on the control thread with workers parked) and read
//     freely during epochs, so a crash is visible to every shard from the
//     next epoch on without any locking.
//
// Simplifications relative to SimFabric, acceptable because the sharded
// engine targets large-scale runs under CostModel::Simulator(): connection
// setup is not modeled (no SYN handshake, no kUnreachable connect failures —
// persistent blocks surface as kBroken after the data-retry budget), and
// in-order delivery is per-channel watermark-based rather than full
// head-of-line blocking (a retransmitted message may be overtaken by later
// traffic on the same pair). Crashes do not proactively break peers'
// in-flight sends; peers discover dead hosts through ping timeouts, exactly
// as FUSE's failure detection expects.
#ifndef FUSE_TRANSPORT_SHARDED_FABRIC_H_
#define FUSE_TRANSPORT_SHARDED_FABRIC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "common/pool.h"
#include "common/status.h"
#include "net/network.h"
#include "sim/environment.h"
#include "sim/sharded_sim.h"
#include "transport/cost_model.h"
#include "transport/transport.h"

namespace fuse {

class ShardedFabric;

// Per-host Transport view onto the sharded fabric.
class ShardedTransport : public Transport {
 public:
  ShardedTransport(ShardedFabric* fabric, HostId host) : fabric_(fabric), host_(host) {}

  void Send(WireMessage msg, SendCallback cb) override;
  void RegisterHandler(uint16_t type, Handler handler) override;
  void UnregisterAllHandlers() override;
  HostId local_host() const override { return host_; }
  Environment& env() override;

 private:
  ShardedFabric* fabric_;
  HostId host_;
};

// Per-host Environment facade: routes Now/Schedule/Cancel/rng/metrics to the
// host's owning shard, applying the same timer-rate clock skew as
// SkewedHostEnv (tcp_model.h).
class ShardedHostEnv : public Environment {
 public:
  ShardedHostEnv(ShardedFabric* fabric, HostId host) : fabric_(fabric), host_(host) {}

  TimePoint Now() const override;
  TimerId Schedule(Duration d, UniqueFunction fn) override;
  bool Cancel(TimerId id) override;
  Rng& rng() override;
  Metrics& metrics() override;

 private:
  ShardedFabric* fabric_;
  HostId host_;
};

class ShardedFabric {
 public:
  // `expected_hosts` is the cluster size; once that many hosts have been
  // materialized (all of them, before the sim first runs), the fabric
  // computes the conservative lookahead from the actual host placement and
  // installs it on the sim. `hosts_per_machine` fixes the partition block
  // alignment so co-located hosts never straddle a shard boundary.
  ShardedFabric(ShardedSim& sim, SimNetwork& net, CostModel cost, TcpParams tcp,
                size_t expected_hosts, int hosts_per_machine);

  // Host partition: contiguous machine-aligned index blocks.
  uint32_t ShardOf(HostId h) const {
    const uint64_t s = h.value / block_;
    const uint64_t cap = sim_.num_shards() - 1;
    return static_cast<uint32_t>(s < cap ? s : cap);
  }
  Shard& ShardFor(HostId h) { return sim_.shard(ShardOf(h)); }

  // Materializes host state (barrier context only: host creation, Build).
  ShardedTransport* TransportFor(HostId host);
  Environment& EnvFor(HostId host);

  // Barrier-context crash/restart (see header comment).
  void CrashHost(HostId host);
  void RestartHost(HostId host);
  bool IsHostUp(HostId host) const;

  ShardedSim& sim() { return sim_; }
  SimNetwork& network() { return net_; }
  const CostModel& cost_model() const { return cost_; }
  const TcpParams& tcp_params() const { return tcp_; }
  Duration Rtt(HostId a, HostId b) const {
    return net_.GetPath(a, b).latency + net_.GetPath(b, a).latency;
  }

  // --- used by ShardedTransport ---
  void SendFrom(HostId from, WireMessage msg, Transport::SendCallback cb);
  void RegisterHandler(HostId host, uint16_t type, Transport::Handler handler);
  void UnregisterAllHandlers(HostId host);

 private:
  struct SendState {
    HostId from;
    HostId to;
    uint64_t from_incarnation = 0;
    uint64_t to_incarnation = 0;
    WireMessage msg;  // moved out when the first surviving attempt delivers
    Transport::SendCallback cb;
    uint64_t wire_size = 0;
    MsgCategory category = MsgCategory::kApp;
    int attempt = 0;
    bool delivered = false;
  };
  using SendRef = Pool<SendState>::Ref;

  struct HostState {
    std::unique_ptr<ShardedTransport> transport;
    std::unique_ptr<ShardedHostEnv> host_env;
    std::vector<Transport::Handler> handlers;  // owning shard + barriers
    uint64_t incarnation = 1;  // barrier-written, read by any shard
    bool up = true;            // barrier-written, read by any shard
    // Sender-shard-owned:
    TimePoint send_busy_until;        // send-CPU serialization
    FlatMap<TimePoint> fifo_watermark;  // last scheduled arrival per dst host
  };

  // Per-shard send-state pool so allocation stays shard-local.
  struct PerShard {
    Pool<SendState> send_pool;
  };

  HostState& StateOf(HostId h);
  const HostState* FindState(HostId h) const;
  void Attempt(uint32_t src_shard, SendRef ref);
  void Deliver(HostId to, uint64_t incarnation, const WireMessage& msg);
  void FinalizeLookahead();

  static void InvokeCallback(Transport::SendCallback cb, Status status) {
    if (cb) {
      cb(status);
    }
  }

  ShardedSim& sim_;
  SimNetwork& net_;
  CostModel cost_;
  TcpParams tcp_;
  uint64_t block_;  // hosts per shard (machine-aligned)
  size_t expected_hosts_;
  size_t materialized_hosts_ = 0;
  std::vector<HostState> hosts_;  // dense, indexed by HostId::value
  std::vector<PerShard> per_shard_;
};

}  // namespace fuse

#endif  // FUSE_TRANSPORT_SHARDED_FABRIC_H_
