// Transport: the per-host messaging interface node-level code uses. Reliable,
// connection-oriented ("over TCP" in the paper): messages either arrive in
// order or the sender learns the connection broke. Implemented by the
// simulator fabric (tcp_model.h) and by the live runtime.
#ifndef FUSE_TRANSPORT_TRANSPORT_H_
#define FUSE_TRANSPORT_TRANSPORT_H_

#include <functional>

#include "common/status.h"
#include "sim/environment.h"
#include "transport/message.h"

namespace fuse {

class Transport {
 public:
  // Invoked on the receiving host when a message of the registered type
  // arrives.
  using Handler = std::function<void(const WireMessage&)>;
  // Invoked on the sender: Ok once the message was acknowledged, or an error
  // (kBroken / kUnreachable) when the connection failed. FUSE interprets
  // these errors as "the node at the other end is unavailable" (section 6.1).
  using SendCallback = std::function<void(const Status&)>;

  virtual ~Transport() = default;

  // Sends `msg` to msg.to; `cb` may be nullptr when the sender does not care.
  virtual void Send(WireMessage msg, SendCallback cb) = 0;

  virtual void RegisterHandler(uint16_t type, Handler handler) = 0;
  virtual void UnregisterAllHandlers() = 0;

  virtual HostId local_host() const = 0;
  virtual Environment& env() = 0;
};

}  // namespace fuse

#endif  // FUSE_TRANSPORT_TRANSPORT_H_
