// Messaging cost model: the difference between the paper's live cluster and
// its discrete event simulator.
//
// Section 7 of the paper: the cluster pays TCP connection establishment on
// first contact between a pair of nodes (Fig. 6, "1st Cluster RPC"), an
// XML-serialization cost of ~2.8 ms per message send, and ~1.1 ms per message
// for running 10 virtual nodes per physical machine. The simulator models
// none of these. Both modes run on the same code here; benches choose one.
#ifndef FUSE_TRANSPORT_COST_MODEL_H_
#define FUSE_TRANSPORT_COST_MODEL_H_

#include "common/time.h"

namespace fuse {

struct CostModel {
  // When true, the first message between a host pair is preceded by a TCP
  // handshake (one RTT, lossy, retried with backoff). When false, connections
  // open instantly (the paper's simulator behaviour).
  bool model_connection_setup = true;

  // Per-message-send CPU occupancy; sends from one host are serialized.
  Duration base_send_overhead = Duration::Zero();   // XML serialization cost
  Duration colocation_overhead = Duration::Zero();  // co-located virtual nodes

  Duration SendOverhead() const { return base_send_overhead + colocation_overhead; }

  // Paper cluster: ModelNet, 10 virtual nodes per machine, XML messaging.
  static CostModel Cluster() {
    CostModel m;
    m.model_connection_setup = true;
    m.base_send_overhead = Duration::MillisF(2.8);
    m.colocation_overhead = Duration::MillisF(1.1);
    return m;
  }

  // Paper simulator: latency-only network, free serialization.
  static CostModel Simulator() {
    CostModel m;
    m.model_connection_setup = false;
    return m;
  }
};

// TCP model constants (see tcp_model.cc for how they are used).
struct TcpParams {
  // Minimum retransmission timeout; doubled per retry.
  Duration min_rto = Duration::Seconds(1);
  // Data attempts before the connection is declared broken.
  int max_data_attempts = 6;
  // SYN attempts before connect fails.
  int max_connect_attempts = 5;
  Duration connect_rto = Duration::Seconds(1);
};

}  // namespace fuse

#endif  // FUSE_TRANSPORT_COST_MODEL_H_
