// Fabric: the deployment-facing surface shared by the real (inter-process
// capable) messaging layers — the TCP socket fabric and the UDP datagram
// fabric. A fabric owns the OS sockets for one process, hosts one or more
// local Transport endpoints, keeps a host -> (ip, port) PeerAddressMap, and
// mirrors the FaultInjector rule set so fault schedules apply to real
// traffic.
//
// Deployments select a fabric per run (ClusterConfig-level `transport`):
//   * kInProcess — LiveRuntime's in-memory delivery (no fabric; live
//     backend's default);
//   * kTcp      — SocketFabric: length-prefixed frames over nonblocking
//     loopback TCP, per-message receiver acks, broken-connection errors;
//   * kUdp      — DatagramFabric: coalesced datagrams over nonblocking UDP,
//     app-level ack/retransmit with congestion restraint, loss is silence.
#ifndef FUSE_TRANSPORT_FABRIC_H_
#define FUSE_TRANSPORT_FABRIC_H_

#include <cstdint>

#include "net/fault_injector.h"
#include "transport/peer_address_map.h"
#include "transport/transport.h"

namespace fuse {

enum class TransportKind : uint8_t {
  kInProcess = 0,
  kTcp = 1,
  kUdp = 2,
};

inline const char* TransportKindName(TransportKind k) {
  switch (k) {
    case TransportKind::kInProcess:
      return "inproc";
    case TransportKind::kTcp:
      return "tcp";
    case TransportKind::kUdp:
      return "udp";
  }
  return "unknown";
}

class Fabric {
 public:
  virtual ~Fabric() = default;

  // Binds the fabric's socket(s) on loopback and starts receiving. Returns
  // the port peers should be told about (advertised out of band by the
  // deployment's address map).
  virtual uint16_t Listen() = 0;

  // Address map maintenance: host -> (ip, port). Send paths resolve the
  // destination endpoint from the map at transmit time, so re-advertising a
  // host (a restarted incarnation on a fresh port, or a node on another
  // machine) retargets future traffic — including pending retransmits on the
  // datagram fabric. The port-only overload is the loopback shorthand for
  // same-machine peers.
  void SetPeerAddr(HostId h, const PeerEndpoint& ep) { addrs_.Set(h, ep); }
  void SetPeerAddr(HostId h, uint16_t port) { addrs_.Set(h, PeerEndpoint::Loopback(port)); }
  // Overlays a whole map (e.g. a controller's addr-map broadcast, or a
  // multi-host deployment file loaded via PeerAddressMap::LoadFile).
  void ApplyAddressMap(const PeerAddressMap& m) { addrs_.Merge(m); }
  const PeerAddressMap& peer_addrs() const { return addrs_; }

  // Creates (or returns) the transport endpoint for a host local to this
  // process.
  virtual Transport* TransportFor(HostId local) = 0;

  // Drops every handler registered for a local host (a crash empties the
  // dispatch table like a process that vanished).
  virtual void UnregisterAllHandlers(HostId h) = 0;

  // The fabric's fault-rule mirror, evaluated on every send and delivery.
  virtual FaultInjector& faults() = 0;

 protected:
  // The resolution surface shared by every fabric; concrete fabrics read it
  // at transmit/dial time and never cache resolved endpoints across sends.
  PeerAddressMap addrs_;
};

}  // namespace fuse

#endif  // FUSE_TRANSPORT_FABRIC_H_
