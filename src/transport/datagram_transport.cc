#include "transport/datagram_transport.h"

#if defined(__linux__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/serialize.h"

namespace fuse {

namespace {

// Record kinds inside a datagram.
constexpr uint8_t kRecData = 1;
constexpr uint8_t kRecAck = 2;

// Fixed encoded sizes (see Encode* below).
constexpr size_t kDataHeaderBytes = 1 + 8 + 8 + 8 + 8 + 2 + 1 + 4;  // 40
constexpr size_t kAckRecordBytes = 1 + 8 + 8 + 8;                   // 25

// A single record larger than the MTU budget still fits one datagram, up to
// the practical UDP maximum; beyond that the send fails outright.
constexpr size_t kMaxDatagramBytes = 60000;

// sendmmsg/recvmmsg batch width per syscall.
constexpr unsigned kMmsgBatch = 32;

int OpenUdpSocket() {
  return ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

sockaddr_in AddrFor(const PeerEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ep.ip);
  addr.sin_port = htons(ep.port);
  return addr;
}

// Packs a datagram source into the same (ip, port) key PeerEndpoint::Key
// produces, so ack batches aggregate per sending fabric across machines.
uint64_t SrcKey(const sockaddr_in& src) {
  return (uint64_t{ntohl(src.sin_addr.s_addr)} << 16) | ntohs(src.sin_port);
}

}  // namespace

// --- DatagramTransport ----------------------------------------------------

void DatagramTransport::Send(WireMessage msg, SendCallback cb) {
  msg.from = host_;
  fabric_->SendFrom(host_, std::move(msg), std::move(cb));
}

void DatagramTransport::RegisterHandler(uint16_t type, Handler handler) {
  fabric_->RegisterHandler(host_, type, std::move(handler));
}

void DatagramTransport::UnregisterAllHandlers() { fabric_->UnregisterAllHandlers(host_); }

Environment& DatagramTransport::env() { return fabric_->env(); }

// --- DatagramFabric: setup ------------------------------------------------

DatagramFabric::DatagramFabric(LiveRuntime* rt) : DatagramFabric(rt, Options()) {}

DatagramFabric::DatagramFabric(LiveRuntime* rt, Options opts)
    : rt_(rt), opts_(opts), rng_(opts.seed) {
  stats_.min_cwnd = opts_.cwnd_max;
  flush_timer_.Bind(*rt_);
  rto_timer_.Bind(*rt_);
}

DatagramFabric::~DatagramFabric() {
  flush_timer_.Cancel();
  rto_timer_.Cancel();
  if (fd_ >= 0) {
    rt_->UnwatchFd(fd_);
    ::close(fd_);
  }
}

uint16_t DatagramFabric::Listen() {
  FUSE_CHECK(fd_ < 0) << "Listen called twice";
  fd_ = OpenUdpSocket();
  FUSE_CHECK(fd_ >= 0) << "socket(SOCK_DGRAM) failed: " << std::strerror(errno);
  // Bursty coalesced traffic from 64 peers overruns the default buffers;
  // best-effort (the retransmit layer recovers from drops either way).
  int bytes = 4 << 20;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  sockaddr_in addr = LoopbackAddr(0);
  FUSE_CHECK(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      << "bind(127.0.0.1:0/udp) failed: " << std::strerror(errno);
  socklen_t len = sizeof(addr);
  FUSE_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  port_ = ntohs(addr.sin_port);
  // Sessions disambiguate incarnations for receiver-side dedupe; the port
  // mixes in so same-seeded fabrics in one run get distinct streams.
  session_id_ = Rng(opts_.seed ^ (uint64_t{port_} * 0x9e3779b97f4a7c15ULL)).NextU64();
  rt_->WatchFd(fd_, EPOLLIN, [this](uint32_t ev) { OnReadable(ev); });
  return port_;
}

DatagramTransport* DatagramFabric::TransportFor(HostId local) {
  auto& t = locals_[local.value];
  if (t == nullptr) {
    t = std::make_unique<DatagramTransport>(this, local);
  }
  return t.get();
}

void DatagramFabric::RegisterHandler(HostId h, uint16_t type, Transport::Handler handler) {
  const uint8_t slot = MsgTypeSlot(type);
  FUSE_CHECK(slot != 0) << "unknown message type " << type
                        << " (add it to msgtype::kAllTypes)";
  auto& table = handlers_[h.value];
  if (table.size() < msgtype::kNumSlots) {
    table.resize(msgtype::kNumSlots);
  }
  table[slot] = std::move(handler);
}

void DatagramFabric::UnregisterAllHandlers(HostId h) { handlers_.erase(h.value); }

void DatagramFabric::FailSend(Transport::SendCallback cb, const char* why) {
  stats_.broken_sends++;
  if (!cb) {
    return;
  }
  // Deferred, so callbacks never run inside the Send/flush call stack that
  // is mutating peer state.
  rt_->Schedule(Duration::Zero(),
                [cb = std::move(cb), why] { cb(Status::Broken(why)); });
}

bool DatagramFabric::DispatchLocal(const WireMessage& msg) {
  const auto it = handlers_.find(msg.to.value);
  if (it == handlers_.end()) {
    return locals_.contains(msg.to.value);  // delivered-and-ignored is still a delivery
  }
  const uint8_t slot = MsgTypeSlot(msg.type);
  if (slot < it->second.size() && it->second[slot]) {
    it->second[slot](msg);
  }
  return true;
}

// --- DatagramFabric: send path --------------------------------------------

DatagramFabric::PeerState* DatagramFabric::PeerFor(HostId to) {
  auto& p = peers_[to.value];
  if (p == nullptr) {
    p = std::make_unique<PeerState>();
    p->to = to;
    p->cwnd = opts_.cwnd_max;
  }
  return p.get();
}

void DatagramFabric::SendFrom(HostId /*from*/, WireMessage msg, Transport::SendCallback cb) {
  rt_->metrics().IncMessage(msg.category, msg.WireSize());
  if (IsLocal(msg.to)) {
    // Same-process destination: no datagram involved. Dispatch through the
    // loop (async like the wire) with a delivery-time fault re-check,
    // mirroring the socket fabric's local path.
    rt_->Schedule(Duration::Zero(), [this, msg = std::move(msg), cb = std::move(cb)] {
      bool delivered = false;
      if (!faults_.IsBlocked(msg.from, msg.to)) {
        delivered = DispatchLocal(msg);
      }
      if (cb) {
        cb(delivered ? Status::Ok() : Status::Broken("datagram: fault rules"));
      }
    });
    return;
  }
  if (!addrs_.Contains(msg.to)) {
    FailSend(std::move(cb), "datagram: no address for destination");
    return;
  }
  // Note: no sender-side fast-fail on fault rules here. Datagram loss is
  // silence — blocked records are silently skipped at pack time and the
  // retransmit budget converts a persistent block into kBroken.
  PeerState* p = PeerFor(msg.to);
  const uint64_t seq = p->next_seq++;

  Writer w;
  w.PutU8(kRecData);
  w.PutU64(session_id_);
  w.PutU64(seq);
  w.PutU64(msg.from.value);
  w.PutU64(msg.to.value);
  w.PutU16(msg.type);
  w.PutU8(static_cast<uint8_t>(msg.category));
  w.PutU32(static_cast<uint32_t>(msg.payload.size()));
  w.PutBytes(msg.payload.data(), msg.payload.size());
  if (w.bytes().size() > kMaxDatagramBytes) {
    FailSend(std::move(cb), "datagram: message too large");
    return;
  }

  Unacked u;
  u.wire = w.Take();
  u.cb = std::move(cb);
  u.from = msg.from;
  p->unacked.emplace(seq, std::move(u));
  if (p->inflight < p->cwnd) {
    Admit(p, seq);
    ScheduleFlush(p);
  } else {
    p->waiting.push_back(seq);
  }
}

void DatagramFabric::Admit(PeerState* p, uint64_t seq) {
  auto it = p->unacked.find(seq);
  if (it == p->unacked.end()) {
    return;
  }
  Unacked& u = it->second;
  u.admitted = true;
  u.deadline = rt_->Now() + opts_.rto_initial;
  u.rto = std::min(opts_.rto_initial * int64_t{2}, opts_.rto_max);
  p->inflight++;
  stats_.max_inflight = std::max<uint64_t>(stats_.max_inflight, p->inflight);
  p->ready.push_back(seq);
  p->ready_bytes += u.wire.size();
  // Cheap arm: only move the timer earlier. The full earliest-deadline scan
  // runs on fire/flush, not on the per-message hot path.
  if (!rto_timer_.pending() || u.deadline < rto_deadline_) {
    rto_deadline_ = u.deadline;
    rto_timer_.Start(opts_.rto_initial, [this] { ProcessRtos(); });
  }
}

void DatagramFabric::AdmitWaiting(PeerState* p) {
  while (p->inflight < p->cwnd && !p->waiting.empty()) {
    const uint64_t seq = p->waiting.front();
    p->waiting.pop_front();
    Admit(p, seq);
  }
}

void DatagramFabric::ScheduleFlush(PeerState* p) {
  if (p->ready_bytes >= opts_.mtu_budget) {
    FlushAll();
    return;
  }
  if (!flush_timer_.pending()) {
    flush_timer_.Start(opts_.coalesce_horizon, [this] { FlushAll(); });
  }
}

void DatagramFabric::FlushAll() {
  flush_timer_.Cancel();
  const TimePoint now = rt_->Now();
  std::vector<OutDatagram> batch;
  for (auto& [to_key, peer] : peers_) {
    PeerState* p = peer.get();
    if (p->ready.empty()) {
      continue;
    }
    // Per-transmit resolution: a retransmit after the peer re-advertised (a
    // restarted worker on a fresh port) goes to the *new* endpoint.
    const PeerEndpoint* ep = addrs_.Find(HostId(to_key));
    OutDatagram cur;
    if (ep != nullptr) {
      cur.addr = AddrFor(*ep);
    }
    for (const uint64_t seq : p->ready) {
      auto uit = p->unacked.find(seq);
      if (uit == p->unacked.end() || !uit->second.admitted) {
        continue;  // acked or failed while queued
      }
      Unacked& u = uit->second;
      u.attempts++;
      if (ep == nullptr) {
        continue;  // no address (stale retransmit): stays unacked, RTO decides
      }
      // Native datagram fault semantics: a blocked or burst-lost record is
      // silently not transmitted. It stays unacked; the retransmit layer
      // either delivers it once the rule lifts or exhausts into kBroken.
      if (faults_.IsBlocked(u.from, p->to)) {
        continue;
      }
      const double loss = faults_.BurstLossProbability(u.from, p->to, now);
      if (loss > 0.0 && rng_.Bernoulli(loss)) {
        continue;
      }
      Duration delay = faults_.ExtraDelay(u.from, p->to);
      const Duration jitter = faults_.ReorderJitterFor(u.from, p->to);
      if (jitter > Duration::Zero()) {
        delay += Duration::Micros(rng_.UniformInt(0, jitter.ToMicros()));
      }
      if (delay > Duration::Zero()) {
        // Delayed records ride their own datagram so the rest of the batch
        // is not held back; reordering across batch boundaries is the point.
        OutDatagram solo;
        solo.addr = cur.addr;
        solo.bytes = u.wire;
        solo.records = 1;
        rt_->Schedule(delay, [this, g = std::move(solo)] { SendOne(g); });
        continue;
      }
      if (!cur.bytes.empty() && cur.bytes.size() + u.wire.size() > opts_.mtu_budget) {
        batch.push_back(std::move(cur));
        cur = OutDatagram{};
        cur.addr = AddrFor(*ep);
      }
      cur.bytes.insert(cur.bytes.end(), u.wire.begin(), u.wire.end());
      cur.records++;
    }
    if (!cur.bytes.empty()) {
      batch.push_back(std::move(cur));
    }
    p->ready.clear();
    p->ready_bytes = 0;
  }
  TransmitBatch(std::move(batch));
  ArmRtoTimer();
}

void DatagramFabric::TransmitBatch(std::vector<OutDatagram> grams) {
  if (grams.empty() || fd_ < 0) {
    return;
  }
  Metrics& m = rt_->metrics();
  size_t i = 0;
  while (i < grams.size()) {
    const unsigned n = static_cast<unsigned>(
        std::min<size_t>(kMmsgBatch, grams.size() - i));
    mmsghdr hdrs[kMmsgBatch];
    iovec iovs[kMmsgBatch];
    std::memset(hdrs, 0, sizeof(mmsghdr) * n);
    for (unsigned j = 0; j < n; ++j) {
      OutDatagram& g = grams[i + j];
      iovs[j].iov_base = g.bytes.data();
      iovs[j].iov_len = g.bytes.size();
      hdrs[j].msg_hdr.msg_name = &g.addr;
      hdrs[j].msg_hdr.msg_namelen = sizeof(g.addr);
      hdrs[j].msg_hdr.msg_iov = &iovs[j];
      hdrs[j].msg_hdr.msg_iovlen = 1;
    }
    const int sent = ::sendmmsg(fd_, hdrs, n, 0);
    if (sent < 0 && (errno == ENOSYS || errno == EOPNOTSUPP)) {
      // Portable fallback: one syscall per datagram.
      for (size_t k = i; k < grams.size(); ++k) {
        SendOne(grams[k]);
      }
      return;
    }
    m.IncCounter(Counter::kTransportSendSyscalls);
    if (sent <= 0) {
      // EAGAIN (send buffer full) or a transient error: the rest of the
      // batch is dropped on the floor — it is UDP, the RTO recovers.
      return;
    }
    used_mmsg_ = true;
    for (int j = 0; j < sent; ++j) {
      m.IncCounter(Counter::kTransportDatagramsSent);
      m.IncCounter(Counter::kTransportRecordsSent, grams[i + j].records);
    }
    i += static_cast<size_t>(sent);
  }
}

void DatagramFabric::SendOne(const OutDatagram& g) {
  if (fd_ < 0) {
    return;
  }
  Metrics& m = rt_->metrics();
  m.IncCounter(Counter::kTransportSendSyscalls);
  const ssize_t n = ::sendto(fd_, g.bytes.data(), g.bytes.size(), 0,
                             reinterpret_cast<const sockaddr*>(&g.addr), sizeof(g.addr));
  if (n == static_cast<ssize_t>(g.bytes.size())) {
    m.IncCounter(Counter::kTransportDatagramsSent);
    m.IncCounter(Counter::kTransportRecordsSent, g.records);
  }
}

// --- DatagramFabric: retransmit timer -------------------------------------

void DatagramFabric::ArmRtoTimer() {
  TimePoint earliest = TimePoint() + Duration::Max();
  bool any = false;
  for (const auto& [to_key, peer] : peers_) {
    for (const auto& [seq, u] : peer->unacked) {
      if (u.admitted && (!any || u.deadline < earliest)) {
        earliest = u.deadline;
        any = true;
      }
    }
  }
  if (!any) {
    rto_timer_.Cancel();
    return;
  }
  const TimePoint now = rt_->Now();
  const Duration delta = earliest > now ? earliest - now : Duration::Zero();
  rto_deadline_ = earliest;
  rto_timer_.Start(delta, [this] { ProcessRtos(); });
}

void DatagramFabric::ProcessRtos() {
  const TimePoint now = rt_->Now();
  bool queued = false;
  for (auto& [to_key, peer] : peers_) {
    PeerState* p = peer.get();
    std::vector<uint64_t> due;
    for (const auto& [seq, u] : p->unacked) {
      if (u.admitted && u.deadline <= now) {
        due.push_back(seq);
      }
    }
    if (due.empty()) {
      continue;
    }
    // Congestion restraint: any timeout halves this peer's window once per
    // sweep (multiplicative decrease), so loss cannot amplify load.
    p->cwnd = std::max(opts_.cwnd_min, p->cwnd / 2);
    stats_.min_cwnd = std::min(stats_.min_cwnd, p->cwnd);
    for (const uint64_t seq : due) {
      auto it = p->unacked.find(seq);
      Unacked& u = it->second;
      if (u.attempts > opts_.max_retransmits) {
        // Silence exhausted the budget: the peer is gone (or the rule set
        // is a partition). This is the datagram analogue of a broken
        // connection.
        Transport::SendCallback cb = std::move(u.cb);
        p->unacked.erase(it);
        p->inflight--;
        FailSend(std::move(cb), "datagram: retransmit budget exhausted");
        continue;
      }
      u.deadline = now + u.rto;
      u.rto = std::min(u.rto * int64_t{2}, opts_.rto_max);
      p->ready.push_back(seq);
      p->ready_bytes += u.wire.size();
      rt_->metrics().IncCounter(Counter::kRetransmitsTotal);
      stats_.retransmits++;
      queued = true;
    }
    AdmitWaiting(p);
    if (!p->ready.empty()) {
      queued = true;
    }
  }
  if (queued) {
    FlushAll();  // also re-arms the timer
  } else {
    ArmRtoTimer();
  }
}

// --- DatagramFabric: receive path -----------------------------------------

void DatagramFabric::OnReadable(uint32_t) {
  static thread_local std::vector<uint8_t> bufs(kMmsgBatch * (kMaxDatagramBytes + 512));
  bool try_mmsg = true;
  for (;;) {
    if (try_mmsg) {
      mmsghdr hdrs[kMmsgBatch];
      iovec iovs[kMmsgBatch];
      sockaddr_in srcs[kMmsgBatch];
      std::memset(hdrs, 0, sizeof(hdrs));
      for (unsigned j = 0; j < kMmsgBatch; ++j) {
        iovs[j].iov_base = bufs.data() + j * (kMaxDatagramBytes + 512);
        iovs[j].iov_len = kMaxDatagramBytes + 512;
        hdrs[j].msg_hdr.msg_name = &srcs[j];
        hdrs[j].msg_hdr.msg_namelen = sizeof(srcs[j]);
        hdrs[j].msg_hdr.msg_iov = &iovs[j];
        hdrs[j].msg_hdr.msg_iovlen = 1;
      }
      const int got = ::recvmmsg(fd_, hdrs, kMmsgBatch, 0, nullptr);
      if (got < 0 && (errno == ENOSYS || errno == EOPNOTSUPP)) {
        try_mmsg = false;
        continue;
      }
      rt_->metrics().IncCounter(Counter::kTransportRecvSyscalls);
      if (got <= 0) {
        break;  // EAGAIN: drained
      }
      used_mmsg_ = true;
      for (int j = 0; j < got; ++j) {
        HandleDatagram(static_cast<const uint8_t*>(iovs[j].iov_base), hdrs[j].msg_len,
                       srcs[j]);
      }
      if (static_cast<unsigned>(got) < kMmsgBatch) {
        break;  // short batch: socket drained
      }
    } else {
      sockaddr_in src{};
      socklen_t slen = sizeof(src);
      rt_->metrics().IncCounter(Counter::kTransportRecvSyscalls);
      const ssize_t n = ::recvfrom(fd_, bufs.data(), kMaxDatagramBytes + 512, 0,
                                   reinterpret_cast<sockaddr*>(&src), &slen);
      if (n <= 0) {
        break;
      }
      HandleDatagram(bufs.data(), static_cast<size_t>(n), src);
    }
  }
  FlushAcks();
}

void DatagramFabric::HandleDatagram(const uint8_t* data, size_t len, const sockaddr_in& src) {
  size_t off = 0;
  while (off < len) {
    const uint8_t kind = data[off];
    if (kind == kRecData) {
      if (len - off < kDataHeaderBytes) {
        return;  // truncated: drop the tail
      }
      Reader r(data + off, kDataHeaderBytes);
      r.GetU8();  // kind
      const uint64_t session = r.GetU64();
      const uint64_t seq = r.GetU64();
      WireMessage msg;
      msg.from = HostId(r.GetU64());
      msg.to = HostId(r.GetU64());
      msg.type = r.GetU16();
      msg.category = static_cast<MsgCategory>(r.GetU8());
      const uint32_t plen = r.GetU32();
      if (!r.ok() || len - off - kDataHeaderBytes < plen) {
        return;
      }
      msg.payload = PayloadBuf(data + off + kDataHeaderBytes, plen);
      off += kDataHeaderBytes + plen;

      // Receiver-side rule check: a partition applied while the datagram was
      // in flight silently refuses it — no ack, so the sender retransmits.
      if (faults_.IsBlocked(msg.from, msg.to) || !locals_.contains(msg.to.value)) {
        continue;
      }
      RecvState& rs = recv_[session][msg.to.value];
      const bool duplicate = seq <= rs.watermark || rs.above.contains(seq);
      if (duplicate) {
        // A retransmit raced our ack. Suppress redelivery but re-ack: the
        // first ack may be the thing that was lost.
        rt_->metrics().IncCounter(Counter::kAcksDedupedTotal);
      } else {
        if (seq == rs.watermark + 1) {
          rs.watermark = seq;
          auto it = rs.above.begin();
          while (it != rs.above.end() && it->first == rs.watermark + 1) {
            rs.watermark = it->first;
            it = rs.above.erase(it);
          }
        } else {
          rs.above.emplace(seq, true);
        }
        DispatchLocal(msg);
      }
      // The ack travels the reverse path and is subject to the same native
      // fault semantics: blocked or burst-lost acks are silence.
      if (faults_.IsBlocked(msg.to, msg.from)) {
        continue;
      }
      const double loss = faults_.BurstLossProbability(msg.to, msg.from, rt_->Now());
      if (loss > 0.0 && rng_.Bernoulli(loss)) {
        continue;
      }
      QueueAck(src, session, seq, msg.to);
    } else if (kind == kRecAck) {
      if (len - off < kAckRecordBytes) {
        return;
      }
      HandleAckRecord(data + off, kAckRecordBytes);
      off += kAckRecordBytes;
    } else {
      return;  // unrecognized record: drop the rest of the datagram
    }
  }
}

void DatagramFabric::QueueAck(const sockaddr_in& src, uint64_t session, uint64_t seq,
                              HostId acker) {
  Writer w;
  w.PutU8(kRecAck);
  w.PutU64(session);
  w.PutU64(seq);
  w.PutU64(acker.value);
  auto& buf = ack_batch_[SrcKey(src)];
  buf.insert(buf.end(), w.bytes().begin(), w.bytes().end());
}

void DatagramFabric::FlushAcks() {
  if (ack_batch_.empty()) {
    return;
  }
  std::vector<OutDatagram> batch;
  for (auto& [src_key, buf] : ack_batch_) {
    size_t off = 0;
    while (off < buf.size()) {
      const size_t chunk =
          std::min(buf.size() - off,
                   (opts_.mtu_budget / kAckRecordBytes) * kAckRecordBytes);
      OutDatagram g;
      g.addr = AddrFor(PeerEndpoint{static_cast<uint32_t>(src_key >> 16),
                                    static_cast<uint16_t>(src_key & 0xffff)});
      g.bytes.assign(buf.begin() + static_cast<ptrdiff_t>(off),
                     buf.begin() + static_cast<ptrdiff_t>(off + chunk));
      g.records = 0;  // acks are not data records (batch occupancy excludes them)
      batch.push_back(std::move(g));
      off += chunk;
    }
  }
  ack_batch_.clear();
  TransmitBatch(std::move(batch));
}

void DatagramFabric::HandleAckRecord(const uint8_t* rec, size_t len) {
  Reader r(rec, len);
  r.GetU8();  // kind
  const uint64_t session = r.GetU64();
  const uint64_t seq = r.GetU64();
  const HostId acker(r.GetU64());
  if (!r.ok() || session != session_id_) {
    return;  // an ack for a previous incarnation of this port
  }
  const auto pit = peers_.find(acker.value);
  if (pit == peers_.end()) {
    return;
  }
  PeerState* p = pit->second.get();
  auto it = p->unacked.find(seq);
  if (it == p->unacked.end()) {
    return;  // duplicate ack (retransmit crossed the first ack)
  }
  Transport::SendCallback cb = std::move(it->second.cb);
  const bool was_admitted = it->second.admitted;
  p->unacked.erase(it);
  if (was_admitted) {
    p->inflight--;
  }
  // Additive increase; the window reopens after a loss episode ends.
  p->cwnd = std::min(opts_.cwnd_max, p->cwnd + 1);
  AdmitWaiting(p);
  if (!p->ready.empty()) {
    ScheduleFlush(p);
  }
  if (cb) {
    cb(Status::Ok());
  }
}

// --- probing --------------------------------------------------------------

bool DatagramSupportsMmsg() {
  const int fd = OpenUdpSocket();
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr = LoopbackAddr(0);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  uint8_t byte = 0;
  iovec iov{&byte, 1};
  mmsghdr hdr{};
  hdr.msg_hdr.msg_name = &addr;
  hdr.msg_hdr.msg_namelen = sizeof(addr);
  hdr.msg_hdr.msg_iov = &iov;
  hdr.msg_hdr.msg_iovlen = 1;
  const int sent = ::sendmmsg(fd, &hdr, 1, 0);
  const bool ok = sent == 1;
  ::close(fd);
  return ok;
}

}  // namespace fuse

#endif  // defined(__linux__)
