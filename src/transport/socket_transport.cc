#include "transport/socket_transport.h"

#if defined(__linux__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/serialize.h"

namespace fuse {

namespace {

// Frame kinds inside the length prefix.
constexpr uint8_t kFrameData = 1;
constexpr uint8_t kFrameAck = 2;   // delivered (dispatched or ignored) at dest
constexpr uint8_t kFrameNack = 3;  // refused: fault rules / not local here

// A frame larger than this is a corrupted stream, not a message.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

int SetNonBlockingSocket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

}  // namespace

// --- FramedSocket ---------------------------------------------------------

void FramedSocket::Adopt(int fd, bool connecting) {
  FUSE_CHECK(fd_ < 0) << "FramedSocket already has an fd";
  fd_ = fd;
  connecting_ = connecting;
  mask_ = connecting ? static_cast<uint32_t>(EPOLLIN | EPOLLOUT)
                     : static_cast<uint32_t>(EPOLLIN);
  rt_->WatchFd(fd_, mask_, [this](uint32_t ev) { OnEvents(ev); });
}

void FramedSocket::CloseFd() {
  if (fd_ >= 0) {
    rt_->UnwatchFd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void FramedSocket::UpdateMask() {
  const uint32_t want =
      EPOLLIN | (out_head_ < out_.size() ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  if (want != mask_ && fd_ >= 0) {
    mask_ = want;
    rt_->ModifyFd(fd_, want);
  }
}

void FramedSocket::SendFrame(const uint8_t* data, size_t len) {
  if (!open()) {
    return;
  }
  const uint32_t n = static_cast<uint32_t>(len);
  const size_t at = out_.size();
  out_.resize(at + 4 + len);
  std::memcpy(out_.data() + at, &n, 4);
  std::memcpy(out_.data() + at + 4, data, len);
  TryFlush();
  UpdateMask();
}

void FramedSocket::TryFlush() {
  while (out_head_ < out_.size()) {
    rt_->metrics().IncCounter(Counter::kTransportSendSyscalls);
    const ssize_t n = ::send(fd_, out_.data() + out_head_, out_.size() - out_head_,
                             MSG_NOSIGNAL);
    if (n > 0) {
      out_head_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Under sustained backpressure, compact the flushed prefix so the
      // buffer is bounded by the unsent backlog, not total traffic.
      if (out_head_ >= 65536) {
        out_.erase(out_.begin(), out_.begin() + static_cast<ptrdiff_t>(out_head_));
        out_head_ = 0;
      }
      return;
    }
    // A hard write error surfaces as EPOLLERR/HUP on the next wait; the
    // read path reports the close exactly once.
    return;
  }
  out_.clear();
  out_head_ = 0;
}

void FramedSocket::OnEvents(uint32_t events) {
  if (fd_ < 0) {
    return;  // spurious: already closed within this epoll batch
  }
  if (connecting_) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) {
      return;  // spurious wakeup: the connect has not resolved yet
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    const bool ok = err == 0 && (events & (EPOLLERR | EPOLLHUP)) == 0;
    connecting_ = false;
    if (!ok) {
      CloseFd();
    } else {
      UpdateMask();
    }
    // Tail position: the handler may retry with a fresh Adopt or destroy us.
    if (auto fn = on_connect_) {
      fn(ok);
    }
    return;
  }
  if (events & EPOLLOUT) {
    TryFlush();
    UpdateMask();
  }
  if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
    uint8_t buf[65536];
    bool closed = false;
    for (;;) {
      rt_->metrics().IncCounter(Counter::kTransportRecvSyscalls);
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        in_.insert(in_.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      // EOF or hard error. Complete frames already buffered are still
      // delivered below before the close surfaces — a peer's final acks
      // and control frames must not vanish with its connection.
      closed = true;
      break;
    }
    // Deliver complete frames. on_frame_ must not destroy this socket (the
    // fabric never tears a connection down from its own inbound frame).
    while (in_.size() - in_head_ >= 4) {
      uint32_t frame_len;
      std::memcpy(&frame_len, in_.data() + in_head_, 4);
      if (frame_len > kMaxFrameBytes) {
        CloseFd();
        if (auto fn = on_close_) {
          fn();
        }
        return;
      }
      if (in_.size() - in_head_ < 4 + static_cast<size_t>(frame_len)) {
        break;
      }
      const uint8_t* body = in_.data() + in_head_ + 4;
      in_head_ += 4 + frame_len;
      if (on_frame_) {
        on_frame_(body, frame_len);
      }
      if (fd_ < 0) {
        return;  // a frame handler closed us (corrupt stream)
      }
    }
    if (in_head_ == in_.size()) {
      in_.clear();
      in_head_ = 0;
    } else if (in_head_ >= 65536 && in_head_ * 2 >= in_.size()) {
      in_.erase(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(in_head_));
      in_head_ = 0;
    }
    if (closed) {
      // Tail position: the handler may destroy this object.
      CloseFd();
      if (auto fn = on_close_) {
        fn();
      }
      return;
    }
  }
}

// --- SocketTransport ------------------------------------------------------

void SocketTransport::Send(WireMessage msg, SendCallback cb) {
  msg.from = host_;
  fabric_->SendFrom(host_, std::move(msg), std::move(cb));
}

void SocketTransport::RegisterHandler(uint16_t type, Handler handler) {
  fabric_->RegisterHandler(host_, type, std::move(handler));
}

void SocketTransport::UnregisterAllHandlers() { fabric_->UnregisterAllHandlers(host_); }

Environment& SocketTransport::env() { return fabric_->env(); }

// --- SocketFabric ---------------------------------------------------------

SocketFabric::SocketFabric(LiveRuntime* rt) : SocketFabric(rt, Options()) {}

SocketFabric::SocketFabric(LiveRuntime* rt, Options opts) : rt_(rt), opts_(opts) {}

SocketFabric::~SocketFabric() {
  // The runtime may already be stopped (Unwatch on a dead loop is fine: the
  // fd table is just a map), but close everything explicitly so worker
  // teardown does not leak fds into forked siblings.
  if (listen_fd_ >= 0) {
    rt_->UnwatchFd(listen_fd_);
    ::close(listen_fd_);
  }
}

uint16_t SocketFabric::Listen() {
  FUSE_CHECK(listen_fd_ < 0) << "Listen called twice";
  listen_fd_ = SetNonBlockingSocket();
  FUSE_CHECK(listen_fd_ >= 0) << "socket() failed: " << std::strerror(errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  FUSE_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      << "bind(127.0.0.1:0) failed: " << std::strerror(errno);
  FUSE_CHECK(::listen(listen_fd_, 128) == 0) << "listen failed: " << std::strerror(errno);
  socklen_t len = sizeof(addr);
  FUSE_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  listen_port_ = ntohs(addr.sin_port);
  rt_->WatchFd(listen_fd_, EPOLLIN, [this](uint32_t ev) { OnAccept(ev); });
  return listen_port_;
}

void SocketFabric::OnAccept(uint32_t) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN or a transient error; epoll re-arms us
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Reuse a closed slot so long churn runs do not grow the vector.
    size_t slot = inbound_.size();
    for (size_t i = 0; i < inbound_.size(); ++i) {
      if (inbound_[i] == nullptr) {
        slot = i;
        break;
      }
    }
    if (slot == inbound_.size()) {
      inbound_.emplace_back();
    }
    inbound_[slot] = std::make_unique<FramedSocket>(rt_);
    FramedSocket* s = inbound_[slot].get();
    s->set_on_frame([this, slot](const uint8_t* d, size_t l) { OnInboundFrame(slot, d, l); });
    s->set_on_close([this, slot] { inbound_[slot] = nullptr; });
    s->Adopt(fd, /*connecting=*/false);
  }
}

SocketTransport* SocketFabric::TransportFor(HostId local) {
  auto& t = locals_[local.value];
  if (t == nullptr) {
    t = std::make_unique<SocketTransport>(this, local);
  }
  return t.get();
}

void SocketFabric::RegisterHandler(HostId h, uint16_t type, Transport::Handler handler) {
  const uint8_t slot = MsgTypeSlot(type);
  FUSE_CHECK(slot != 0) << "unknown message type " << type
                        << " (add it to msgtype::kAllTypes)";
  auto& table = handlers_[h.value];
  if (table.size() < msgtype::kNumSlots) {
    table.resize(msgtype::kNumSlots);
  }
  table[slot] = std::move(handler);
}

void SocketFabric::UnregisterAllHandlers(HostId h) { handlers_.erase(h.value); }

void SocketFabric::FailCb(Transport::SendCallback cb, const char* why) {
  if (!cb) {
    return;
  }
  // Deferred, so callbacks never run inside the Send/Break call stack that
  // is mutating connection state.
  rt_->Schedule(Duration::Zero(),
                [cb = std::move(cb), why] { cb(Status::Broken(why)); });
}

bool SocketFabric::DispatchLocal(const WireMessage& msg) {
  const auto it = handlers_.find(msg.to.value);
  if (it == handlers_.end()) {
    return locals_.contains(msg.to.value);  // delivered-and-ignored is still a delivery
  }
  const uint8_t slot = MsgTypeSlot(msg.type);
  if (slot < it->second.size() && it->second[slot]) {
    it->second[slot](msg);
  }
  return true;
}

void SocketFabric::SendFrom(HostId from, WireMessage msg, Transport::SendCallback cb) {
  rt_->metrics().IncMessage(msg.category, msg.WireSize());
  if (faults_.IsBlocked(from, msg.to)) {
    if (cb) {
      rt_->Schedule(opts_.blocked_fail_delay,
                    [cb = std::move(cb)] { cb(Status::Broken("socket: fault rules")); });
    }
    return;
  }
  if (IsLocal(msg.to)) {
    // Same-process destination: dispatch through the loop (async like the
    // wire) and ack from the delivery outcome, mirroring the remote path.
    rt_->Schedule(Duration::Zero(), [this, msg = std::move(msg), cb = std::move(cb)] {
      bool delivered = false;
      if (!faults_.IsBlocked(msg.from, msg.to)) {
        delivered = DispatchLocal(msg);
      }
      if (cb) {
        cb(delivered ? Status::Ok() : Status::Broken("socket: fault rules"));
      }
    });
    return;
  }

  // Resolve the destination endpoint from the address map at send time; all
  // hosts behind the same endpoint (co-hosted nodes of one multi-tenant
  // worker) share one connection.
  const PeerEndpoint* ep = addrs_.Find(msg.to);
  if (ep == nullptr || !ep->valid()) {
    FailCb(std::move(cb), "socket: no address for destination");
    return;
  }
  const uint64_t key = ep->Key();
  auto it = conns_.find(key);
  if (it == conns_.end()) {
    auto conn = std::make_unique<OutConn>(rt_);
    conn->ep = *ep;
    conn->rep_host = msg.to;
    OutConn* c = conn.get();
    it = conns_.emplace(key, std::move(conn)).first;
    c->sock.set_on_frame([this, c](const uint8_t* d, size_t l) { OnPeerFrame(c, d, l); });
    c->sock.set_on_close([this, key] { BreakConn(key, "socket: connection broke"); });
    c->sock.set_on_connect([this, key](bool ok) { OnConnectResolved(key, ok); });
    StartConnect(c);
    if (conns_.find(key) == conns_.end()) {
      // The dial failed synchronously past its budget and broke the conn.
      FailCb(std::move(cb), "socket: connect failed");
      return;
    }
  }
  OutConn* c = it->second.get();

  const uint64_t seq = c->next_seq++;
  Writer w;
  w.PutU8(kFrameData);
  w.PutU64(seq);
  w.PutU64(msg.from.value);
  w.PutU64(msg.to.value);
  w.PutU16(msg.type);
  w.PutU8(static_cast<uint8_t>(msg.category));
  w.PutBytes(msg.payload.data(), msg.payload.size());
  if (cb) {
    c->awaiting.emplace(seq, std::move(cb));
  }
  if (c->sock.open()) {
    c->sock.SendFrame(w.bytes().data(), w.bytes().size());
  } else {
    c->queued.push_back(w.Take());
  }
}

void SocketFabric::StartConnect(OutConn* c) {
  // Re-resolve the representative host on every (re)dial: if the address map
  // moved it since this connection was created (a restarted incarnation on a
  // fresh port), the endpoint is stale — break the conn so queued sends fail
  // fast and protocol retries resolve the new endpoint.
  const PeerEndpoint* cur = addrs_.Find(c->rep_host);
  if (cur == nullptr || cur->Key() != c->ep.Key()) {
    BreakConn(c->ep.Key(), "socket: peer re-advertised elsewhere");
    return;
  }
  const int fd = SetNonBlockingSocket();
  if (fd < 0) {
    BreakConn(c->ep.Key(), "socket: socket() failed");
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(c->ep.ip);
  addr.sin_port = htons(c->ep.port);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    c->sock.Adopt(fd, /*connecting=*/false);
    OnConnectResolved(c->ep.Key(), true);
    return;
  }
  if (errno == EINPROGRESS) {
    c->sock.Adopt(fd, /*connecting=*/true);
    return;
  }
  ::close(fd);
  OnConnectResolved(c->ep.Key(), false);
}

void SocketFabric::OnConnectResolved(uint64_t ep_key, bool ok) {
  const auto it = conns_.find(ep_key);
  if (it == conns_.end()) {
    return;
  }
  OutConn* c = it->second.get();
  if (ok) {
    c->attempt = 0;
    for (auto& frame : c->queued) {
      c->sock.SendFrame(frame.data(), frame.size());
    }
    c->queued.clear();
    return;
  }
  if (++c->attempt >= opts_.max_connect_attempts) {
    BreakConn(ep_key, "socket: peer refused connection");
    return;
  }
  // Exponentialish backoff; the endpoint is re-resolved on each retry so a
  // restarted peer's fresh advertisement takes effect mid-dial.
  c->retry.Bind(*rt_);
  c->retry.Start(opts_.connect_retry_backoff * int64_t{c->attempt}, [this, ep_key] {
    const auto rit = conns_.find(ep_key);
    if (rit != conns_.end()) {
      StartConnect(rit->second.get());
    }
  });
}

void SocketFabric::OnPeerFrame(OutConn* c, const uint8_t* data, size_t len) {
  Reader r(data, len);
  const uint8_t kind = r.GetU8();
  const uint64_t seq = r.GetU64();
  if (!r.ok() || (kind != kFrameAck && kind != kFrameNack)) {
    return;  // not a recognized control frame; ignore
  }
  const auto it = c->awaiting.find(seq);
  if (it == c->awaiting.end()) {
    return;  // callback-less send, or already failed by a break
  }
  Transport::SendCallback cb = std::move(it->second);
  c->awaiting.erase(it);
  if (kind == kFrameAck) {
    cb(Status::Ok());
  } else {
    cb(Status::Broken("socket: delivery refused"));
  }
}

void SocketFabric::BreakConn(uint64_t ep_key, const char* why) {
  const auto it = conns_.find(ep_key);
  if (it == conns_.end()) {
    return;
  }
  // Detach the connection first: the failure callbacks below may re-enter
  // Send (protocol retries), which must dial a fresh connection.
  std::unique_ptr<OutConn> c = std::move(it->second);
  conns_.erase(it);
  c->retry.Cancel();
  c->sock.CloseFd();
  for (auto& [seq, cb] : c->awaiting) {
    FailCb(std::move(cb), why);
  }
  c->awaiting.clear();
  c->queued.clear();
}

void SocketFabric::OnInboundFrame(size_t conn_index, const uint8_t* data, size_t len) {
  Reader r(data, len);
  const uint8_t kind = r.GetU8();
  if (kind != kFrameData) {
    return;
  }
  const uint64_t seq = r.GetU64();
  WireMessage msg;
  msg.from = HostId(r.GetU64());
  msg.to = HostId(r.GetU64());
  msg.type = r.GetU16();
  msg.category = static_cast<MsgCategory>(r.GetU8());
  if (!r.ok()) {
    return;
  }
  const size_t payload_len = r.remaining();
  msg.payload = PayloadBuf(data + (len - payload_len), payload_len);

  // Delivery-time rule check (receiver side): a partition applied while the
  // frame was in flight refuses it here, and the sender hears kBroken — the
  // same per-attempt semantics as the in-process runtimes.
  uint8_t verdict = kFrameAck;
  if (faults_.IsBlocked(msg.from, msg.to) || !DispatchLocal(msg)) {
    verdict = kFrameNack;
  }
  FramedSocket* s = inbound_[conn_index].get();
  if (s != nullptr && s->open()) {
    Writer w;
    w.PutU8(verdict);
    w.PutU64(seq);
    s->SendFrame(w.bytes().data(), w.bytes().size());
  }
}

}  // namespace fuse

#endif  // defined(__linux__)
