#include "transport/sharded_fabric.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "transport/message.h"

namespace fuse {

void ShardedTransport::Send(WireMessage msg, SendCallback cb) {
  fabric_->SendFrom(host_, std::move(msg), std::move(cb));
}

void ShardedTransport::RegisterHandler(uint16_t type, Handler handler) {
  fabric_->RegisterHandler(host_, type, std::move(handler));
}

void ShardedTransport::UnregisterAllHandlers() { fabric_->UnregisterAllHandlers(host_); }

Environment& ShardedTransport::env() { return fabric_->EnvFor(host_); }

TimePoint ShardedHostEnv::Now() const { return fabric_->ShardFor(host_).Now(); }

TimerId ShardedHostEnv::Schedule(Duration d, UniqueFunction fn) {
  const double rate = fabric_->network().faults().ClockRate(host_);
  if (rate == 1.0) {
    return fabric_->ShardFor(host_).Schedule(d, std::move(fn));
  }
  return fabric_->ShardFor(host_).Schedule(d * (1.0 / rate), std::move(fn));
}

bool ShardedHostEnv::Cancel(TimerId id) { return fabric_->ShardFor(host_).Cancel(id); }

Rng& ShardedHostEnv::rng() { return fabric_->ShardFor(host_).rng(); }

Metrics& ShardedHostEnv::metrics() { return fabric_->ShardFor(host_).metrics(); }

ShardedFabric::ShardedFabric(ShardedSim& sim, SimNetwork& net, CostModel cost, TcpParams tcp,
                             size_t expected_hosts, int hosts_per_machine)
    : sim_(sim), net_(net), cost_(cost), tcp_(tcp), expected_hosts_(expected_hosts) {
  FUSE_CHECK(expected_hosts > 0) << "sharded fabric needs a host count up front";
  const uint64_t align = hosts_per_machine > 0 ? static_cast<uint64_t>(hosts_per_machine) : 1;
  uint64_t per = (expected_hosts + sim_.num_shards() - 1) / sim_.num_shards();
  per = (per + align - 1) / align * align;  // co-located hosts share a shard
  block_ = per > 0 ? per : align;
  hosts_.reserve(expected_hosts);
  per_shard_.resize(sim_.num_shards());
}

ShardedFabric::HostState& ShardedFabric::StateOf(HostId h) {
  if (h.value >= hosts_.size()) {
    hosts_.resize(h.value + 1);
  }
  return hosts_[h.value];
}

const ShardedFabric::HostState* ShardedFabric::FindState(HostId h) const {
  if (h.value >= hosts_.size()) {
    return nullptr;
  }
  return &hosts_[h.value];
}

ShardedTransport* ShardedFabric::TransportFor(HostId host) {
  HostState& hs = StateOf(host);
  if (!hs.transport) {
    hs.transport = std::make_unique<ShardedTransport>(this, host);
    hs.host_env = std::make_unique<ShardedHostEnv>(this, host);
    // Once the full cluster is materialized (Build creates every host before
    // the sim first runs), the host placement is final and the conservative
    // lookahead can be computed from it.
    if (++materialized_hosts_ == expected_hosts_) {
      FinalizeLookahead();
    }
  }
  return hs.transport.get();
}

Environment& ShardedFabric::EnvFor(HostId host) {
  TransportFor(host);
  return *hosts_[host.value].host_env;
}

void ShardedFabric::CrashHost(HostId host) {
  HostState& hs = StateOf(host);
  hs.up = false;
  hs.incarnation++;
  hs.handlers.clear();
  hs.send_busy_until = TimePoint::Zero();
  // The next incarnation starts fresh FIFO channels. In-flight sends carry
  // the old incarnation and drop themselves lazily at their next attempt.
  hs.fifo_watermark = FlatMap<TimePoint>();
  net_.faults().SetHostDown(host, true);
}

void ShardedFabric::RestartHost(HostId host) {
  HostState& hs = StateOf(host);
  hs.up = true;
  hs.incarnation++;
  hs.handlers.clear();
  net_.faults().SetHostDown(host, false);
}

bool ShardedFabric::IsHostUp(HostId host) const {
  const HostState* hs = FindState(host);
  if (hs == nullptr) {
    return !net_.faults().IsHostDown(host);
  }
  return hs->up;
}

void ShardedFabric::RegisterHandler(HostId host, uint16_t type, Transport::Handler handler) {
  const uint8_t slot = MsgTypeSlot(type);
  FUSE_CHECK(slot != 0) << "unknown message type " << type
                        << " (add it to msgtype::kAllTypes)";
  HostState& hs = StateOf(host);
  if (hs.handlers.size() < msgtype::kNumSlots) {
    hs.handlers.resize(msgtype::kNumSlots);
  }
  hs.handlers[slot] = std::move(handler);
}

void ShardedFabric::UnregisterAllHandlers(HostId host) { StateOf(host).handlers.clear(); }

void ShardedFabric::SendFrom(HostId from, WireMessage msg, Transport::SendCallback cb) {
  {
    HostState& sender = StateOf(from);
    if (!sender.up) {
      InvokeCallback(std::move(cb), Status::Cancelled("sender crashed"));
      return;
    }
  }
  msg.from = from;
  const HostId to = msg.to;
  FUSE_CHECK(to.valid() && to != from) << "bad destination";
  // Take both incarnations by value before holding any reference: StateOf(to)
  // may grow hosts_. Both fields are barrier-stable, so reading the
  // destination's from the sender's shard is race-free.
  const uint64_t from_inc = StateOf(from).incarnation;
  const uint64_t to_inc = StateOf(to).incarnation;

  const uint32_t src_shard = ShardOf(from);
  Shard& shard = sim_.shard(src_shard);
  // Per-send CPU occupancy: sends from one host leave serialized (§7.4).
  const Duration overhead = cost_.SendOverhead();
  TimePoint depart = shard.Now();
  if (!overhead.IsZero()) {
    HostState& sender = StateOf(from);
    const TimePoint busy_from = sender.send_busy_until > depart ? sender.send_busy_until : depart;
    depart = busy_from + overhead;
    sender.send_busy_until = depart;
  }

  Pool<SendState>& pool = per_shard_[src_shard].send_pool;
  const SendRef ref = pool.Alloc();
  SendState& st = *pool.Get(ref);
  st.from = from;
  st.to = to;
  st.from_incarnation = from_inc;
  st.to_incarnation = to_inc;
  st.wire_size = msg.WireSize();
  st.category = msg.category;
  st.msg = std::move(msg);
  st.cb = std::move(cb);
  shard.queue().ScheduleAt(depart, [this, src_shard, ref] { Attempt(src_shard, ref); });
}

void ShardedFabric::Attempt(uint32_t src_shard, SendRef ref) {
  Pool<SendState>& pool = per_shard_[src_shard].send_pool;
  SendState* st = pool.Get(ref);
  if (st == nullptr) {
    return;
  }
  const HostId from = st->from;
  const HostId to = st->to;
  {
    // Lazy sender-crash cleanup: a crash (barrier context) does not walk
    // in-flight sends; each one notices the incarnation bump at its next
    // attempt and evaporates — the callback died with the old incarnation.
    const HostState& sender = hosts_[from.value];
    if (!sender.up || sender.incarnation != st->from_incarnation) {
      pool.Release(ref);
      return;
    }
  }
  if (st->attempt >= tcp_.max_data_attempts) {
    Transport::SendCallback cb = std::move(st->cb);
    pool.Release(ref);
    InvokeCallback(std::move(cb), Status::Broken("retransmission limit"));
    return;
  }
  st->attempt++;
  Shard& shard = sim_.shard(src_shard);
  shard.metrics().IncMessage(st->category, st->wire_size);
  const FaultInjector& faults = net_.faults();
  const Topology::PathInfo fwd = net_.GetPath(from, to);
  const Topology::PathInfo rev = net_.GetPath(to, from);
  // Same verdict structure as SimFabric::AttemptData — directional blocks,
  // per-route survival, optional burst loss — with every draw taken from the
  // sender's shard RNG in a fixed order.
  const bool data_blocked = faults.IsBlocked(from, to);
  const bool ack_blocked = faults.IsBlocked(to, from);
  const double burst =
      faults.HasLossBursts() ? faults.BurstLossProbability(from, to, shard.Now()) : 0.0;
  Rng& rng = shard.rng();
  const bool data_ok =
      !data_blocked &&
      rng.Bernoulli(net_.RouteSuccessProbabilityForHops(fwd.hops) * (1.0 - burst));
  const bool ack_ok =
      data_ok && !ack_blocked &&
      rng.Bernoulli(net_.RouteSuccessProbabilityForHops(rev.hops) * (1.0 - burst));
  const Duration fwd_extra = faults.ExtraDelay(from, to);
  Duration one_way = fwd.latency + fwd_extra;
  const Duration jitter_max = faults.ReorderJitterFor(from, to);
  if (!jitter_max.IsZero()) {
    // Drawn only when a reorder rule is active, preserving the rng sequence
    // of jitter-free schedules.
    one_way += Duration::Micros(rng.UniformInt(0, jitter_max.ToMicros()));
  }
  const Duration rtt = fwd.latency + rev.latency + fwd_extra + faults.ExtraDelay(to, from);

  if (data_ok && !st->delivered) {
    // First attempt to survive the route carries the payload; later lost-ack
    // retransmissions are duplicates the receiver-side already consumed.
    st->delivered = true;
    TimePoint deliver_at = shard.Now() + one_way;
    HostState& sender = hosts_[from.value];
    TimePoint& watermark = sender.fifo_watermark.FindOrInsert(to.value);
    if (deliver_at < watermark) {
      deliver_at = watermark;  // per-channel FIFO: never overtake earlier traffic
    }
    watermark = deliver_at;
    const uint64_t inc = st->to_incarnation;
    const uint32_t dst_shard = ShardOf(to);
    WireMessage payload = std::move(st->msg);
    auto deliver = [this, inc, m = std::move(payload)] { Deliver(m.to, inc, m); };
    if (dst_shard == src_shard) {
      shard.queue().ScheduleAt(deliver_at, std::move(deliver));
    } else {
      shard.PushCrossShard(dst_shard, deliver_at, std::move(deliver));
    }
  }
  if (data_ok && ack_ok) {
    Transport::SendCallback cb = std::move(st->cb);
    pool.Release(ref);
    shard.queue().ScheduleAt(shard.Now() + rtt, [cb = std::move(cb)]() mutable {
      InvokeCallback(std::move(cb), Status::Ok());
    });
    return;
  }
  // Retransmit with exponential backoff from the minimum RTO.
  const Duration base_rto = std::max(tcp_.min_rto, rtt * int64_t{2});
  const Duration backoff = base_rto * (int64_t{1} << (st->attempt - 1));
  shard.queue().ScheduleAt(shard.Now() + backoff,
                           [this, src_shard, ref] { Attempt(src_shard, ref); });
}

void ShardedFabric::Deliver(HostId to, uint64_t incarnation, const WireMessage& msg) {
  const HostState* hs = FindState(to);
  if (hs == nullptr) {
    return;
  }
  if (!hs->up || hs->incarnation != incarnation) {
    return;  // crashed or restarted since the packet left
  }
  const uint8_t slot = MsgTypeSlot(msg.type);
  if (slot >= hs->handlers.size() || !hs->handlers[slot]) {
    FUSE_LOG(Debug) << "host " << to.ToString() << " has no handler for type " << msg.type;
    return;
  }
  // Copy the handler: it may unregister itself while running.
  Transport::Handler handler = hs->handlers[slot];
  handler(msg);
}

void ShardedFabric::FinalizeLookahead() {
  // The epoch barrier distance is the minimum one-way base latency between
  // any two hosts in *different* shards. Fault rules only ever add latency
  // (delays, jitter) — they never shorten a path — and clock skew scales
  // timer durations, not network latency, so this stays a valid lower bound
  // under every fault schedule.
  const Topology& topo = net_.topology();
  const size_t num_as = topo.NumAs();

  // Pass 1: same-router cross-shard pairs pin the minimum (GetPath's
  // same-router case is a flat 200us local hop — below anything the AS-level
  // aggregation can see). Track each host-bearing router's owning shard.
  std::unordered_map<uint64_t, uint32_t> router_shard;
  router_shard.reserve(expected_hosts_);
  for (size_t h = 0; h < expected_hosts_; ++h) {
    const HostId host(h);
    const uint32_t s = ShardOf(host);
    const uint64_t r = net_.RouterOf(host).value;
    const auto [it, inserted] = router_shard.emplace(r, s);
    if (!inserted && it->second != s) {
      sim_.SetLookahead(Duration::Micros(200));
      return;
    }
  }

  // Pass 2: per-AS two lowest core distances held by *distinct* shards, over
  // the per-(shard, router) hosts. Within one router all hosts share a shard
  // (pass 1), so distinct routers suffice for distinctness bookkeeping.
  constexpr uint64_t kInf = UINT64_MAX;
  struct Best2 {
    uint64_t core1 = kInf;
    uint32_t shard1 = 0;
    uint64_t core2 = kInf;
    uint32_t shard2 = 0;
  };
  std::vector<Best2> best(num_as);
  std::vector<uint32_t> touched;  // ASes that actually host nodes
  for (const auto& [router_value, s] : router_shard) {
    const Topology::Router& r = topo.router(RouterId(router_value));
    Best2& b = best[r.as_index];
    if (b.core1 == kInf && b.core2 == kInf) {
      touched.push_back(r.as_index);
    }
    const uint64_t c = r.to_core_lat_us;
    if (s == b.shard1 && b.core1 != kInf) {
      b.core1 = std::min(b.core1, c);
    } else if (c < b.core1) {
      b.core2 = b.core1;
      b.shard2 = b.shard1;
      b.core1 = c;
      b.shard1 = s;
    } else if (s == b.shard2 && b.core2 != kInf) {
      b.core2 = std::min(b.core2, c);
    } else if (c < b.core2) {
      b.core2 = c;
      b.shard2 = s;
    }
  }

  uint64_t min_us = kInf;
  // Same-AS, cross-shard: latency is the two core distances summed.
  for (const uint32_t a : touched) {
    const Best2& b = best[a];
    if (b.core2 != kInf) {
      min_us = std::min(min_us, b.core1 + b.core2);
    }
  }
  // Cross-AS: core distance + AS-path latency + core distance, with the two
  // endpoints forced onto different shards.
  for (size_t i = 0; i < touched.size(); ++i) {
    for (size_t j = i + 1; j < touched.size(); ++j) {
      const uint32_t a = touched[i];
      const uint32_t bi = touched[j];
      const uint32_t as_lat = topo.AsLatencyUs(a, bi);
      if (as_lat == UINT32_MAX) {
        continue;  // disconnected AS pair: no traffic, no constraint
      }
      const Best2& ba = best[a];
      const Best2& bb = best[bi];
      uint64_t ends = kInf;
      if (ba.shard1 != bb.shard1) {
        ends = ba.core1 + bb.core1;
      } else {
        if (ba.core2 != kInf) {
          ends = std::min(ends, ba.core2 + bb.core1);
        }
        if (bb.core2 != kInf) {
          ends = std::min(ends, ba.core1 + bb.core2);
        }
      }
      if (ends != kInf) {
        min_us = std::min(min_us, ends + as_lat);
      }
    }
  }

  if (min_us == kInf) {
    // No cross-shard host pair at all (S == 1, or one shard holds every
    // host). Epochs are then bounded only by control events and the horizon;
    // a large lookahead keeps barriers rare.
    sim_.SetLookahead(Duration::Minutes(60));
    return;
  }
  sim_.SetLookahead(Duration::Micros(static_cast<int64_t>(min_us)));
}

}  // namespace fuse
