// SimFabric: the simulator's messaging layer.
//
// Models TCP-over-the-lossy-topology analytically:
//   * one cached connection per host pair; the first message pays a SYN
//     handshake (cluster cost model) — this produces the 1st-vs-2nd RPC
//     split of Figure 6;
//   * each message transmission attempt survives the route with probability
//     (1 - per_link_loss)^hops in each direction; lost attempts retransmit
//     with exponential backoff from a 1 s minimum RTO;
//   * after max_data_attempts consecutive losses the connection *breaks*
//     (the paper, section 7.6: "TCP sockets will break under such adverse
//     network conditions") and the sender's callback reports kBroken;
//   * per-send CPU occupancy serializes a host's outgoing messages (the XML
//     messaging cost measured in section 7.4);
//   * in-order delivery per connection direction.
// Host crash/restart is modeled with incarnation numbers: deliveries and
// callbacks addressed to a previous incarnation are dropped.
#ifndef FUSE_TRANSPORT_TCP_MODEL_H_
#define FUSE_TRANSPORT_TCP_MODEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/network.h"
#include "sim/environment.h"
#include "sim/timer.h"
#include "transport/cost_model.h"
#include "transport/transport.h"

namespace fuse {

class SimFabric;

// Per-host Transport view onto the fabric.
class SimTransport : public Transport {
 public:
  SimTransport(SimFabric* fabric, HostId host) : fabric_(fabric), host_(host) {}

  void Send(WireMessage msg, SendCallback cb) override;
  void RegisterHandler(uint16_t type, Handler handler) override;
  void UnregisterAllHandlers() override;
  HostId local_host() const override { return host_; }
  Environment& env() override;

 private:
  SimFabric* fabric_;
  HostId host_;
};

class SimFabric {
 public:
  SimFabric(Environment& env, SimNetwork& net, CostModel cost, TcpParams tcp = TcpParams());

  // Returns the transport for `host`, creating the fabric-side state lazily.
  SimTransport* TransportFor(HostId host);

  // Fail-stop crash: marks the host down in the fault rules, breaks all its
  // connections, clears its handlers, and bumps its incarnation so stale
  // deliveries are dropped.
  void CrashHost(HostId host);
  // Brings a crashed host back (fresh incarnation, empty handler table — the
  // node software re-registers on restart, as in the paper's trivial
  // stable-storage-free recovery).
  void RestartHost(HostId host);
  bool IsHostUp(HostId host) const;

  Environment& env() { return env_; }
  SimNetwork& network() { return net_; }
  const CostModel& cost_model() const { return cost_; }
  const TcpParams& tcp_params() const { return tcp_; }

  // Estimated round-trip latency (no loss); exposed for tests and benches.
  Duration Rtt(HostId a, HostId b) const;

  // --- used by SimTransport ---
  void SendFrom(HostId from, WireMessage msg, Transport::SendCallback cb);
  void RegisterHandler(HostId host, uint16_t type, Transport::Handler handler);
  void UnregisterAllHandlers(HostId host);

 private:
  struct PendingSend {
    WireMessage msg;
    Transport::SendCallback cb;
  };

  // A message awaiting in-order delivery on one connection direction. TCP
  // delivers in order: a segment that needed retransmission blocks everything
  // behind it (head-of-line blocking).
  struct DeliverySlot {
    WireMessage msg;
    uint64_t dest_incarnation = 0;
    bool ready = false;       // data has survived the route
    TimePoint ready_time;     // earliest possible delivery once ready
  };

  struct DataSendState;

  struct Connection {
    enum class State { kClosed, kConnecting, kOpen };
    State state = State::kClosed;
    uint64_t epoch = 0;  // bumped on break; stale attempts abandon themselves
    std::vector<PendingSend> pending;
    // Sends with retransmission state outstanding on this connection.
    // Breaking the connection cancels their retry timers and fails their
    // callbacks immediately instead of leaving dead backoff events queued.
    std::vector<std::shared_ptr<DataSendState>> inflight;
    // In-order delivery machinery per direction (0: lo->hi host id, 1: other).
    std::deque<std::shared_ptr<DeliverySlot>> delivery_queue[2];
    TimePoint delivery_watermark[2];
  };

  struct HostState {
    std::unique_ptr<SimTransport> transport;
    std::unordered_map<uint16_t, Transport::Handler> handlers;
    uint64_t incarnation = 1;
    bool up = true;
    TimePoint send_busy_until;  // send-CPU serialization
  };

  struct DataSendState {
    WireMessage msg;
    Transport::SendCallback cb;
    uint64_t conn_epoch;
    std::shared_ptr<DeliverySlot> slot;
    int attempt = 0;
    Timer retry;             // exponential-backoff retransmission timer
    size_t inflight_pos = 0; // index in the owning connection's inflight list
  };

  // Host ids are small sequential values (< 2^32), so the packed key is
  // invertible: lo = key >> 32, hi = key & 0xffffffff.
  static uint64_t PairKey(HostId a, HostId b) {
    const uint64_t lo = a.value < b.value ? a.value : b.value;
    const uint64_t hi = a.value < b.value ? b.value : a.value;
    return (lo << 32) | hi;
  }

  HostState& StateOf(HostId h);
  Connection& ConnOf(HostId a, HostId b);
  void StartHandshake(HostId initiator, HostId peer, Connection* conn);
  void AttemptConnect(HostId initiator, HostId peer, uint64_t epoch, int attempt);
  void FlushPending(HostId a, HostId b, Connection* conn);
  void StartDataSend(HostId from, Connection* conn, WireMessage msg, Transport::SendCallback cb);
  void AttemptData(HostId from, std::shared_ptr<DataSendState> st);
  static void RemoveInflight(Connection& conn, DataSendState* st);
  void FlushDeliveries(Connection* conn, int dir);
  void BreakConnection(Connection* conn);
  void Deliver(HostId to, uint64_t incarnation, WireMessage msg);
  void InvokeCallback(Transport::SendCallback cb, Status status);

  Environment& env_;
  SimNetwork& net_;
  CostModel cost_;
  TcpParams tcp_;
  std::unordered_map<HostId, HostState> hosts_;
  std::unordered_map<uint64_t, Connection> connections_;
};

}  // namespace fuse

#endif  // FUSE_TRANSPORT_TCP_MODEL_H_
