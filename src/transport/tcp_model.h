// SimFabric: the simulator's messaging layer.
//
// Models TCP-over-the-lossy-topology analytically:
//   * one cached connection per host pair; the first message pays a SYN
//     handshake (cluster cost model) — this produces the 1st-vs-2nd RPC
//     split of Figure 6;
//   * each message transmission attempt survives the route with probability
//     (1 - per_link_loss)^hops in each direction; lost attempts retransmit
//     with exponential backoff from a 1 s minimum RTO;
//   * after max_data_attempts consecutive losses the connection *breaks*
//     (the paper, section 7.6: "TCP sockets will break under such adverse
//     network conditions") and the sender's callback reports kBroken;
//   * per-send CPU occupancy serializes a host's outgoing messages (the XML
//     messaging cost measured in section 7.4);
//   * in-order delivery per connection direction.
// Host crash/restart is modeled with incarnation numbers: deliveries and
// callbacks addressed to a previous incarnation are dropped.
//
// The send/deliver fast path is allocation-free and index-addressed: host
// state lives in a dense vector indexed by HostId, connections in an
// open-addressed table keyed by the packed host pair, per-host handler
// dispatch in a flat array indexed by MsgTypeSlot, and the per-send
// retransmission/delivery state in generation-tagged pools (common/pool.h)
// whose refs are carried through event closures instead of shared_ptrs.
// WireMessage payloads are ref-counted PayloadBufs, so the delivery slot and
// the retransmission bookkeeping share one buffer.
#ifndef FUSE_TRANSPORT_TCP_MODEL_H_
#define FUSE_TRANSPORT_TCP_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "common/pool.h"
#include "common/status.h"
#include "net/network.h"
#include "sim/environment.h"
#include "transport/cost_model.h"
#include "transport/transport.h"

namespace fuse {

class SimFabric;

// Per-host Transport view onto the fabric.
class SimTransport : public Transport {
 public:
  SimTransport(SimFabric* fabric, HostId host) : fabric_(fabric), host_(host) {}

  void Send(WireMessage msg, SendCallback cb) override;
  void RegisterHandler(uint16_t type, Handler handler) override;
  void UnregisterAllHandlers() override;
  HostId local_host() const override { return host_; }
  Environment& env() override;

 private:
  SimFabric* fabric_;
  HostId host_;
};

// Per-host Environment facade implementing timer-rate clock skew: Schedule()
// durations are divided by the host's FaultInjector clock rate (rate 2.0 =
// the host's timers fire in half the nominal time, so it pings and declares
// timeouts early), while Now() stays global. This models relative timer-rate
// drift — the QoS-relevant effect — without forking the timeline. At the
// default rate 1.0 the facade is a pure passthrough, so schedules without
// skew rules are bit-identical to runs predating it.
class SkewedHostEnv : public Environment {
 public:
  SkewedHostEnv(SimFabric* fabric, HostId host) : fabric_(fabric), host_(host) {}

  TimePoint Now() const override;
  TimerId Schedule(Duration d, UniqueFunction fn) override;
  bool Cancel(TimerId id) override;
  Rng& rng() override;
  Metrics& metrics() override;

 private:
  SimFabric* fabric_;
  HostId host_;
};

class SimFabric {
 public:
  SimFabric(Environment& env, SimNetwork& net, CostModel cost, TcpParams tcp = TcpParams());

  // Returns the transport for `host`, creating the fabric-side state lazily.
  SimTransport* TransportFor(HostId host);

  // The environment node-level code on `host` runs against: the base env
  // wrapped in the host's clock-skew facade (see SkewedHostEnv).
  Environment& EnvFor(HostId host);

  // Fail-stop crash: marks the host down in the fault rules, breaks all its
  // connections, clears its handlers, and bumps its incarnation so stale
  // deliveries are dropped.
  void CrashHost(HostId host);
  // Brings a crashed host back (fresh incarnation, empty handler table — the
  // node software re-registers on restart, as in the paper's trivial
  // stable-storage-free recovery).
  void RestartHost(HostId host);
  bool IsHostUp(HostId host) const;

  Environment& env() { return env_; }
  SimNetwork& network() { return net_; }
  const CostModel& cost_model() const { return cost_; }
  const TcpParams& tcp_params() const { return tcp_; }

  // Estimated round-trip latency (no loss); exposed for tests and benches.
  Duration Rtt(HostId a, HostId b) const;

  // --- used by SimTransport ---
  void SendFrom(HostId from, WireMessage msg, Transport::SendCallback cb);
  void RegisterHandler(HostId host, uint16_t type, Transport::Handler handler);
  void UnregisterAllHandlers(HostId host);

 private:
  struct PendingSend {
    WireMessage msg;
    Transport::SendCallback cb;
  };

  // A message awaiting in-order delivery on one connection direction. TCP
  // delivers in order: a segment that needed retransmission blocks everything
  // behind it (head-of-line blocking). Owned by the connection's delivery
  // queue until it becomes ready and is scheduled, then by the scheduled
  // delivery event.
  struct DeliverySlot {
    WireMessage msg;
    uint64_t dest_incarnation = 0;
    bool ready = false;       // data has survived the route
    TimePoint ready_time;     // earliest possible delivery once ready
  };
  using SlotRef = Pool<DeliverySlot>::Ref;

  // Retransmission bookkeeping for one send. Pooled; referenced from the
  // connection's inflight list and from departure/backoff event closures.
  // Retransmission attempts never re-touch the payload (delivery happens via
  // the slot exactly once), so only the destination and the metrics
  // attribution are kept — no message copy at all.
  struct DataSendState {
    HostId to;
    uint64_t wire_size = 0;
    MsgCategory category = MsgCategory::kApp;
    Transport::SendCallback cb;
    uint64_t conn_epoch = 0;
    SlotRef slot;
    int attempt = 0;
    TimerId retry;            // pending backoff event, if any
    uint32_t inflight_pos = 0;  // index in the owning connection's inflight list
  };
  using SendRef = Pool<DataSendState>::Ref;

  // Vector-backed FIFO of slot refs that reuses its storage once warm (a
  // deque would reallocate chunks as the cursor advances).
  struct SlotQueue {
    std::vector<SlotRef> refs;
    size_t head = 0;

    bool empty() const { return head == refs.size(); }
    SlotRef front() const { return refs[head]; }
    void push_back(SlotRef r) { refs.push_back(r); }
    void pop_front() {
      if (++head == refs.size()) {
        refs.clear();
        head = 0;
      } else if (head >= 64 && head * 2 >= refs.size()) {
        // Compact consumed refs so a queue that never fully drains (sustained
        // head-of-line blocking) stays bounded by its live entries.
        refs.erase(refs.begin(), refs.begin() + static_cast<ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  struct Connection {
    enum class State { kClosed, kConnecting, kOpen };
    State state = State::kClosed;
    uint64_t epoch = 0;  // bumped on break; stale attempts abandon themselves
    std::vector<PendingSend> pending;
    // Sends with retransmission state outstanding on this connection.
    // Breaking the connection cancels their retry timers, fails their
    // callbacks immediately, and reclaims their pool entries.
    std::vector<SendRef> inflight;
    // In-order delivery machinery per direction (0: lo->hi host id, 1: other).
    SlotQueue delivery_queue[2];
    TimePoint delivery_watermark[2];
    // One-way paths between the pair, cached on first use: host placement
    // and the topology are immutable once hosts exist, and the data path
    // queries them three times per transmission attempt.
    bool path_cached = false;
    Topology::PathInfo path[2];  // same direction indexing as delivery_queue
  };

  struct HostState {
    std::unique_ptr<SimTransport> transport;  // null until materialized
    std::unique_ptr<SkewedHostEnv> host_env;  // created with the transport
    // Flat dispatch table indexed by MsgTypeSlot(type); sized on first
    // registration.
    std::vector<Transport::Handler> handlers;
    uint64_t incarnation = 1;
    bool up = true;
    TimePoint send_busy_until;  // send-CPU serialization
  };

  // Host ids are small sequential values (< 2^32), so the packed key is
  // invertible: lo = key >> 32, hi = key & 0xffffffff.
  static uint64_t PairKey(HostId a, HostId b) {
    const uint64_t lo = a.value < b.value ? a.value : b.value;
    const uint64_t hi = a.value < b.value ? b.value : a.value;
    return (lo << 32) | hi;
  }

  HostState& StateOf(HostId h);
  // Read-only lookup: nullptr for hosts the fabric has never materialized.
  const HostState* FindState(HostId h) const;
  Connection& ConnOf(HostId a, HostId b);
  // Per-packet route survival probability from the cached hop count
  // (delegates to SimNetwork so the loss model lives in one place).
  double RouteSuccess(uint32_t hops) const;
  void StartHandshake(HostId initiator, HostId peer, Connection* conn);
  void AttemptConnect(HostId initiator, HostId peer, uint64_t epoch, int attempt);
  void FlushPending(HostId a, HostId b, Connection* conn);
  void StartDataSend(HostId from, Connection* conn, WireMessage msg, Transport::SendCallback cb);
  void AttemptData(HostId from, SendRef ref);
  void RemoveInflight(Connection& conn, SendRef ref);
  void FlushDeliveries(Connection* conn, int dir);
  void BreakConnection(Connection* conn);
  // Resolves a scheduled delivery: reclaims the slot, then dispatches.
  void FinishDelivery(SlotRef ref);
  void Deliver(HostId to, uint64_t incarnation, const WireMessage& msg);
  void InvokeCallback(Transport::SendCallback cb, Status status);

  Environment& env_;
  SimNetwork& net_;
  CostModel cost_;
  TcpParams tcp_;
  std::vector<HostState> hosts_;  // dense, indexed by HostId::value
  FlatMap<Connection> connections_;  // keyed by PairKey
  Pool<DataSendState> send_pool_;
  Pool<DeliverySlot> slot_pool_;
};

}  // namespace fuse

#endif  // FUSE_TRANSPORT_TCP_MODEL_H_
