// Config-driven peer address resolution: the single host -> (ip, port)
// surface behind Fabric::SetPeerAddr.
//
// Every real-socket fabric (framed TCP, coalescing UDP) resolves destination
// endpoints from one of these maps *at transmit time*, never at enqueue time,
// so re-advertising a host — a restarted worker incarnation on a fresh port,
// or a node migrated to another machine — retargets all future traffic,
// including retransmits already pending when the map changed. Entries default
// to loopback, which is why local multi-process workers and remote hosts are
// addressed through the identical surface: pointing a deployment at real
// remote machines is a map edit (`FromText`/`LoadFile`), not transport work.
//
// This header is portable (no socket headers): fabric.h embeds a map
// unconditionally, including on non-Linux builds where the socket fabrics
// themselves are compiled out.
#ifndef FUSE_TRANSPORT_PEER_ADDRESS_MAP_H_
#define FUSE_TRANSPORT_PEER_ADDRESS_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/ids.h"
#include "common/serialize.h"

namespace fuse {

// One peer's location. `ip` is an IPv4 address in host byte order; the
// default is loopback, so a bare port advertises a same-machine peer.
struct PeerEndpoint {
  static constexpr uint32_t kLoopbackIp = 0x7f000001;  // 127.0.0.1

  uint32_t ip = kLoopbackIp;
  uint16_t port = 0;

  static PeerEndpoint Loopback(uint16_t port) { return PeerEndpoint{kLoopbackIp, port}; }

  // Dense (ip, port) key: equal keys iff equal endpoints. Used to index
  // per-endpoint state (TCP connections, UDP ack batches) so that N co-hosted
  // nodes behind one worker share one connection, not N.
  uint64_t Key() const { return (uint64_t{ip} << 16) | port; }

  bool valid() const { return port != 0; }
  bool operator==(const PeerEndpoint& o) const { return ip == o.ip && port == o.port; }
  bool operator!=(const PeerEndpoint& o) const { return !(*this == o); }

  std::string ToString() const;  // "a.b.c.d:port"
};

class PeerAddressMap {
 public:
  // Inserts or replaces the endpoint for `h`. Returns true (and bumps the
  // version) iff the mapping actually changed.
  bool Set(HostId h, const PeerEndpoint& ep);

  // nullptr when the host has never been advertised.
  const PeerEndpoint* Find(HostId h) const;
  bool Contains(HostId h) const { return Find(h) != nullptr; }

  // Overlays every entry of `other` on top of this map (last write wins).
  void Merge(const PeerAddressMap& other);

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  // Monotonic counter bumped on every effective Set; lets callers detect
  // address churn without diffing entries.
  uint64_t version() const { return version_; }
  const std::unordered_map<uint64_t, PeerEndpoint>& entries() const { return map_; }

  // Wire form: [u32 count] then (u64 host, u32 ip, u16 port) per entry.
  // DecodeFrom *merges* (it does not clear first) and returns false on a
  // malformed frame, leaving already-merged entries in place.
  void EncodeTo(Writer& w) const;
  bool DecodeFrom(Reader& r);

  // Text form, one entry per line: `<host-id> <a.b.c.d>:<port>` or the
  // loopback shorthand `<host-id> <port>`. `#` starts a comment; blank lines
  // are skipped. FromText merges; on a parse error it reports the offending
  // line in *err and returns false.
  std::string ToText() const;
  bool FromText(std::string_view text, std::string* err);
  bool LoadFile(const std::string& path, std::string* err);

 private:
  std::unordered_map<uint64_t, PeerEndpoint> map_;  // by HostId::value
  uint64_t version_ = 0;
};

}  // namespace fuse

#endif  // FUSE_TRANSPORT_PEER_ADDRESS_MAP_H_
