// SocketFabric: a real TCP messaging layer for multi-process deployments.
//
// Where SimFabric models TCP analytically and LiveRuntime delivers in
// process, this fabric moves WireMessages between OS processes over
// length-prefixed frames on nonblocking loopback TCP sockets, driven by the
// owning LiveRuntime's epoll loop (one thread owns both I/O readiness and
// timer firing — no reader threads). Linux-only.
//
// Semantics match the Transport contract the sim fabric implements
// (transport.h / tcp_model.h): per-destination connections are dialed lazily
// with bounded nonblocking connect retries; frames carry an application-level
// sequence number and the receiver acknowledges each message after
// dispatching it, so the sender's callback reports Ok only once the message
// actually reached the destination process; when the connection breaks — the
// peer process died (SIGKILL), refused the connection past the retry budget,
// or reset mid-stream — every queued and unacknowledged send fails with
// kBroken ("TCP sockets will break under such adverse network conditions",
// paper section 7.6). In-order delivery per connection is inherited from TCP.
//
// Fault rules (the same FaultInjector vocabulary the other fabrics consult)
// are evaluated sender-side on every send AND receiver-side on every
// delivery: a message in flight across a partition boundary is refused by the
// receiver (kBroken at the sender), mirroring the delivery-time re-check of
// the in-process runtimes.
#ifndef FUSE_TRANSPORT_SOCKET_TRANSPORT_H_
#define FUSE_TRANSPORT_SOCKET_TRANSPORT_H_

#if defined(__linux__)

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/fault_injector.h"
#include "runtime/live_runtime.h"
#include "sim/timer.h"
#include "transport/fabric.h"
#include "transport/transport.h"

namespace fuse {

class SocketFabric;

// A nonblocking stream socket carrying [u32 length]-prefixed frames, driven
// by a LiveRuntime epoll loop. Used for the TCP data connections and for the
// process-deployment control channels (unix socketpairs). All methods must
// run on the loop thread.
class FramedSocket {
 public:
  // `on_frame` receives each complete frame body. `on_close` fires once on
  // EOF/error (tail position: it may destroy this FramedSocket). `on_connect`
  // resolves a nonblocking connect; on failure the socket is already closed
  // (the handler may retry with a fresh Adopt or destroy the object).
  using FrameHandler = std::function<void(const uint8_t* data, size_t len)>;

  explicit FramedSocket(LiveRuntime* rt) : rt_(rt) {}
  ~FramedSocket() { CloseFd(); }

  FramedSocket(const FramedSocket&) = delete;
  FramedSocket& operator=(const FramedSocket&) = delete;

  void set_on_frame(FrameHandler fn) { on_frame_ = std::move(fn); }
  void set_on_close(std::function<void()> fn) { on_close_ = std::move(fn); }
  void set_on_connect(std::function<void(bool ok)> fn) { on_connect_ = std::move(fn); }

  // Takes ownership of `fd` (nonblocking) and registers it with the loop.
  // `connecting` marks an in-flight nonblocking connect().
  void Adopt(int fd, bool connecting);

  // Queues one frame ([length] prefix added here) and flushes what the socket
  // accepts. Silently drops when not adopted/open yet — callers queue frames
  // themselves until on_connect(true).
  void SendFrame(const uint8_t* data, size_t len);

  bool open() const { return fd_ >= 0 && !connecting_; }
  int fd() const { return fd_; }

  // Unwatches and closes. Safe to call repeatedly.
  void CloseFd();

 private:
  void OnEvents(uint32_t events);
  void TryFlush();
  void UpdateMask();

  LiveRuntime* rt_;
  int fd_ = -1;
  bool connecting_ = false;
  uint32_t mask_ = 0;
  std::vector<uint8_t> in_;
  size_t in_head_ = 0;
  std::vector<uint8_t> out_;
  size_t out_head_ = 0;
  FrameHandler on_frame_;
  std::function<void()> on_close_;
  std::function<void(bool)> on_connect_;
};

// Per-host Transport view onto the socket fabric.
class SocketTransport : public Transport {
 public:
  SocketTransport(SocketFabric* fabric, HostId host) : fabric_(fabric), host_(host) {}

  void Send(WireMessage msg, SendCallback cb) override;
  void RegisterHandler(uint16_t type, Handler handler) override;
  void UnregisterAllHandlers() override;
  HostId local_host() const override { return host_; }
  Environment& env() override;

 private:
  SocketFabric* fabric_;
  HostId host_;
};

class SocketFabric : public Fabric {
 public:
  struct Options {
    // Nonblocking connect retry budget: a freshly killed peer refuses
    // connections until its restarted incarnation advertises a new port, so
    // a bounded dial loop converts "process gone" into kBroken in
    // attempts * backoff time.
    int max_connect_attempts = 6;
    Duration connect_retry_backoff = Duration::Millis(20);
    // Sender-side fault-rule refusals report kBroken after this much delay
    // (a compressed stand-in for the broken-socket detection latency).
    Duration blocked_fail_delay = Duration::Millis(2);
  };

  explicit SocketFabric(LiveRuntime* rt);  // default options
  SocketFabric(LiveRuntime* rt, Options opts);
  ~SocketFabric() override;

  SocketFabric(const SocketFabric&) = delete;
  SocketFabric& operator=(const SocketFabric&) = delete;

  // Binds a loopback listener on an ephemeral port and starts accepting.
  // Returns the port (advertised to peers out of band by the deployment).
  uint16_t Listen() override;

  // Peer addresses come from the base Fabric's PeerAddressMap (SetPeerAddr /
  // ApplyAddressMap): every send resolves the destination endpoint from the
  // map, and every dial retry re-resolves it, so re-advertising a host (a
  // restarted incarnation on a fresh port) retargets traffic and a
  // connection to the stale endpoint is broken instead of retried.

  // Creates (or returns) the transport endpoint for a host local to this
  // process.
  SocketTransport* TransportFor(HostId local) override;
  bool IsLocal(HostId h) const { return locals_.contains(h.value); }

  // The fabric's fault-rule mirror, evaluated sender-side on every send and
  // receiver-side on every delivery.
  FaultInjector& faults() override { return faults_; }

  Environment& env() { return *rt_; }

  // --- used by SocketTransport ---
  void SendFrom(HostId from, WireMessage msg, Transport::SendCallback cb);
  void RegisterHandler(HostId h, uint16_t type, Transport::Handler handler);
  void UnregisterAllHandlers(HostId h);

 private:
  struct OutConn {
    explicit OutConn(LiveRuntime* rt) : sock(rt) {}
    // Connections are per destination *endpoint*, not per destination host:
    // N co-hosted nodes behind one multi-tenant worker share one socket.
    PeerEndpoint ep;
    // Any host that resolved to `ep` when the conn was created; dial retries
    // re-resolve it to detect a re-advertised (moved) endpoint.
    HostId rep_host;
    int attempt = 0;
    FramedSocket sock;
    Timer retry;
    uint64_t next_seq = 1;
    // Frames not yet handed to an open socket (dial or retry in progress).
    std::vector<std::vector<uint8_t>> queued;
    // seq -> sender callback, fired on the receiver's ack/nack.
    std::unordered_map<uint64_t, Transport::SendCallback> awaiting;
  };

  void OnAccept(uint32_t events);
  void StartConnect(OutConn* c);
  void OnConnectResolved(uint64_t ep_key, bool ok);
  void OnPeerFrame(OutConn* c, const uint8_t* data, size_t len);
  void OnInboundFrame(size_t conn_index, const uint8_t* data, size_t len);
  // Fails every queued/unacknowledged send on the connection to `ep_key`
  // with kBroken and removes it (a later send resolves fresh — and picks up
  // a restarted peer's new endpoint).
  void BreakConn(uint64_t ep_key, const char* why);
  // Dispatches to the local handler table; true iff the destination host is
  // local (handler registered or not — delivered-and-ignored still acks).
  bool DispatchLocal(const WireMessage& msg);
  void FailCb(Transport::SendCallback cb, const char* why);

  LiveRuntime* rt_;
  Options opts_;
  FaultInjector faults_;
  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  std::unordered_map<uint64_t, std::unique_ptr<SocketTransport>> locals_;
  std::unordered_map<uint64_t, std::vector<Transport::Handler>> handlers_;
  std::unordered_map<uint64_t, std::unique_ptr<OutConn>> conns_;  // by PeerEndpoint::Key()
  // Accepted (inbound) connections; slots are reused after close.
  std::vector<std::unique_ptr<FramedSocket>> inbound_;
};

}  // namespace fuse

#endif  // defined(__linux__)
#endif  // FUSE_TRANSPORT_SOCKET_TRANSPORT_H_
