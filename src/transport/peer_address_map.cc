#include "transport/peer_address_map.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace fuse {

namespace {

// Parses a decimal u64 from [*p, end); advances *p past the digits. False if
// no digit is present or the value overflows `max`.
bool ParseU64(const char** p, const char* end, uint64_t max, uint64_t* out) {
  const char* s = *p;
  if (s == end || !std::isdigit(static_cast<unsigned char>(*s))) {
    return false;
  }
  uint64_t v = 0;
  while (s != end && std::isdigit(static_cast<unsigned char>(*s))) {
    v = v * 10 + static_cast<uint64_t>(*s - '0');
    if (v > max) {
      return false;
    }
    ++s;
  }
  *p = s;
  *out = v;
  return true;
}

// Parses `a.b.c.d:port` or the loopback shorthand `port`.
bool ParseEndpoint(const char* p, const char* end, PeerEndpoint* out) {
  uint64_t first = 0;
  if (!ParseU64(&p, end, 255, &first)) {
    // A bare port > 255 fails the octet bound above; retry as port-only.
    uint64_t port = 0;
    if (!ParseU64(&p, end, 65535, &port) || p != end || port == 0) {
      return false;
    }
    *out = PeerEndpoint::Loopback(static_cast<uint16_t>(port));
    return true;
  }
  if (p == end || *p != '.') {
    // `first` was a small bare port, not an octet.
    if (p != end || first == 0) {
      return false;
    }
    *out = PeerEndpoint::Loopback(static_cast<uint16_t>(first));
    return true;
  }
  uint32_t ip = static_cast<uint32_t>(first);
  for (int octet = 1; octet < 4; ++octet) {
    if (p == end || *p != '.') {
      return false;
    }
    ++p;
    uint64_t v = 0;
    if (!ParseU64(&p, end, 255, &v)) {
      return false;
    }
    ip = (ip << 8) | static_cast<uint32_t>(v);
  }
  if (p == end || *p != ':') {
    return false;
  }
  ++p;
  uint64_t port = 0;
  if (!ParseU64(&p, end, 65535, &port) || p != end || port == 0) {
    return false;
  }
  out->ip = ip;
  out->port = static_cast<uint16_t>(port);
  return true;
}

}  // namespace

std::string PeerEndpoint::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff, port);
  return buf;
}

bool PeerAddressMap::Set(HostId h, const PeerEndpoint& ep) {
  auto [it, inserted] = map_.try_emplace(h.value, ep);
  if (!inserted) {
    if (it->second == ep) {
      return false;
    }
    it->second = ep;
  }
  ++version_;
  return true;
}

const PeerEndpoint* PeerAddressMap::Find(HostId h) const {
  const auto it = map_.find(h.value);
  return it == map_.end() ? nullptr : &it->second;
}

void PeerAddressMap::Merge(const PeerAddressMap& other) {
  for (const auto& [host, ep] : other.map_) {
    Set(HostId(host), ep);
  }
}

void PeerAddressMap::EncodeTo(Writer& w) const {
  w.PutU32(static_cast<uint32_t>(map_.size()));
  for (const auto& [host, ep] : map_) {
    w.PutU64(host);
    w.PutU32(ep.ip);
    w.PutU16(ep.port);
  }
}

bool PeerAddressMap::DecodeFrom(Reader& r) {
  const uint32_t count = r.GetU32();
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t host = r.GetU64();
    PeerEndpoint ep;
    ep.ip = r.GetU32();
    ep.port = r.GetU16();
    if (!r.ok()) {
      return false;
    }
    Set(HostId(host), ep);
  }
  return r.ok();
}

std::string PeerAddressMap::ToText() const {
  // Sorted by host id so the text form is stable across runs.
  std::map<uint64_t, PeerEndpoint> sorted(map_.begin(), map_.end());
  std::string out;
  for (const auto& [host, ep] : sorted) {
    out += std::to_string(host) + " " + ep.ToString() + "\n";
  }
  return out;
}

bool PeerAddressMap::FromText(std::string_view text, std::string* err) {
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    size_t b = 0;
    size_t e = line.size();
    while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1]))) --e;
    line = line.substr(b, e - b);
    if (line.empty()) {
      continue;
    }
    const char* p = line.data();
    const char* end = p + line.size();
    uint64_t host = 0;
    PeerEndpoint ep;
    bool ok = ParseU64(&p, end, UINT64_MAX, &host);
    if (ok) {
      while (p != end && std::isspace(static_cast<unsigned char>(*p))) ++p;
      ok = ParseEndpoint(p, end, &ep);
    }
    if (!ok) {
      if (err != nullptr) {
        *err = "address map line " + std::to_string(line_no) + ": expected '<host> <ip>:<port>'" +
               ", got '" + std::string(line) + "'";
      }
      return false;
    }
    Set(HostId(host), ep);
  }
  return true;
}

bool PeerAddressMap::LoadFile(const std::string& path, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (err != nullptr) {
      *err = "address map: cannot open '" + path + "'";
    }
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return FromText(ss.str(), err);
}

}  // namespace fuse
