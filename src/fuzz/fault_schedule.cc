#include "fuzz/fault_schedule.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace fuse {

namespace {

struct OpNameEntry {
  FaultOp op;
  const char* name;
};

constexpr OpNameEntry kOpNames[] = {
    {FaultOp::kCrash, "crash"},
    {FaultOp::kRestart, "restart"},
    {FaultOp::kBlockPair, "block_pair"},
    {FaultOp::kUnblockPair, "unblock_pair"},
    {FaultOp::kBlockOneWay, "block_oneway"},
    {FaultOp::kUnblockOneWay, "unblock_oneway"},
    {FaultOp::kPartition, "partition"},
    {FaultOp::kHealPartitions, "heal_partitions"},
    {FaultOp::kLossBurst, "loss_burst"},
    {FaultOp::kSlowHost, "slow_host"},
    {FaultOp::kSlowLink, "slow_link"},
    {FaultOp::kClockSkew, "clock_skew"},
    {FaultOp::kReorderJitter, "reorder_jitter"},
    {FaultOp::kSignalFailure, "signal"},
};

bool OpFromName(const char* name, FaultOp* out) {
  for (const auto& e : kOpNames) {
    if (std::strcmp(e.name, name) == 0) {
      *out = e.op;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* FaultOpName(FaultOp op) {
  for (const auto& e : kOpNames) {
    if (e.op == op) {
      return e.name;
    }
  }
  return "unknown";
}

std::string FaultSchedule::ToText() const {
  std::string s;
  char line[256];
  std::snprintf(line, sizeof(line), "fuse-fuzz-schedule v1\nseed %" PRIu64 "\nnodes %d\ngroups %d\n",
                seed, num_nodes, num_groups);
  s += line;
  for (const FaultClause& c : clauses) {
    std::snprintf(line, sizeof(line),
                  "%s at_us=%" PRId64 " a=%u b=%u dur_us=%" PRId64 " param=%.17g group=",
                  FaultOpName(c.op), c.at_us, c.a, c.b, c.dur_us, c.param);
    s += line;
    if (c.group.empty()) {
      s += '-';
    } else {
      for (size_t i = 0; i < c.group.size(); ++i) {
        if (i > 0) {
          s += ',';
        }
        std::snprintf(line, sizeof(line), "%u", c.group[i]);
        s += line;
      }
    }
    s += '\n';
  }
  return s;
}

bool FaultSchedule::FromText(const std::string& text, FaultSchedule* out) {
  FaultSchedule s;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "fuse-fuzz-schedule v1") {
    return false;
  }
  if (!std::getline(in, line) || std::sscanf(line.c_str(), "seed %" SCNu64, &s.seed) != 1) {
    return false;
  }
  if (!std::getline(in, line) || std::sscanf(line.c_str(), "nodes %d", &s.num_nodes) != 1 ||
      s.num_nodes < 1 || s.num_nodes > 4096) {
    return false;
  }
  if (!std::getline(in, line) || std::sscanf(line.c_str(), "groups %d", &s.num_groups) != 1 ||
      s.num_groups < 0 || s.num_groups > 1024) {
    return false;
  }
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    FaultClause c;
    char opname[32];
    char grouplist[160];
    const int n = std::sscanf(line.c_str(),
                              "%31s at_us=%" SCNd64 " a=%u b=%u dur_us=%" SCNd64
                              " param=%lg group=%159s",
                              opname, &c.at_us, &c.a, &c.b, &c.dur_us, &c.param, grouplist);
    if (n != 7 || !OpFromName(opname, &c.op)) {
      return false;
    }
    if (std::strcmp(grouplist, "-") != 0) {
      const char* p = grouplist;
      while (*p != '\0') {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p) {
          return false;
        }
        c.group.push_back(static_cast<uint32_t>(v));
        p = end;
        if (*p == ',') {
          ++p;
        } else if (*p != '\0') {
          return false;
        }
      }
    }
    s.clauses.push_back(std::move(c));
  }
  *out = std::move(s);
  return true;
}

namespace {

// One grammar production may expand to an onset clause plus a paired healing
// clause later in the window.
constexpr int64_t kWindowUs = 4LL * 60 * 1000 * 1000;  // clause times in [0, 4 min)

int64_t DrawTime(Rng& rng) { return rng.UniformInt(0, kWindowUs - 1); }

// A healing time strictly after `at`, still inside the window when possible.
int64_t DrawHealTime(Rng& rng, int64_t at) {
  return at + rng.UniformInt(10 * 1000 * 1000, kWindowUs);  // 10 s .. window later
}

}  // namespace

FaultSchedule GenerateSchedule(uint64_t seed) {
  Rng rng(seed ^ 0x5ca1ab1e0ddba11ULL);
  FaultSchedule s;
  s.seed = seed;
  s.num_nodes = static_cast<int>(rng.UniformInt(6, 10));
  s.num_groups = static_cast<int>(rng.UniformInt(1, 3));
  // A slice of empty schedules keeps the "no notification while healthy"
  // half of the oracle honest.
  if (rng.Bernoulli(0.08)) {
    return s;
  }
  const int productions = static_cast<int>(rng.UniformInt(1, 5));
  auto node = [&] { return static_cast<uint32_t>(rng.UniformInt(0, s.num_nodes - 1)); };
  for (int i = 0; i < productions; ++i) {
    const int64_t weight = rng.UniformInt(0, 99);
    FaultClause c;
    c.at_us = DrawTime(rng);
    if (weight < 25) {
      // Crash, often with a paired restart (sometimes instant — the rejoin
      // wart's regression pressure lives here).
      c.op = FaultOp::kCrash;
      c.a = node();
      const bool restart = rng.Bernoulli(0.6);
      const bool instant = restart && rng.Bernoulli(0.3);
      FaultClause r;
      if (restart) {
        r.op = FaultOp::kRestart;
        r.a = c.a;
        r.at_us = instant ? c.at_us : DrawHealTime(rng, c.at_us);
      }
      s.clauses.push_back(std::move(c));
      if (restart) {
        s.clauses.push_back(std::move(r));
      }
    } else if (weight < 40) {
      // Partition a random subset away; heal about half the time.
      c.op = FaultOp::kPartition;
      const size_t k = static_cast<size_t>(rng.UniformInt(1, s.num_nodes - 1));
      for (size_t idx : rng.SampleIndices(static_cast<size_t>(s.num_nodes), k)) {
        c.group.push_back(static_cast<uint32_t>(idx));
      }
      std::sort(c.group.begin(), c.group.end());
      const bool heal = rng.Bernoulli(0.5);
      FaultClause h;
      if (heal) {
        h.op = FaultOp::kHealPartitions;
        h.at_us = DrawHealTime(rng, c.at_us);
      }
      s.clauses.push_back(std::move(c));
      if (heal) {
        s.clauses.push_back(std::move(h));
      }
    } else if (weight < 50) {
      // Symmetric pair block (intransitive connectivity).
      c.op = FaultOp::kBlockPair;
      c.a = node();
      do {
        c.b = node();
      } while (c.b == c.a && s.num_nodes > 1);
      const bool heal = rng.Bernoulli(0.5);
      FaultClause h;
      if (heal) {
        h.op = FaultOp::kUnblockPair;
        h.a = c.a;
        h.b = c.b;
        h.at_us = DrawHealTime(rng, c.at_us);
      }
      s.clauses.push_back(std::move(c));
      if (heal) {
        s.clauses.push_back(std::move(h));
      }
    } else if (weight < 60) {
      // Asymmetric (one-way) block.
      c.op = FaultOp::kBlockOneWay;
      c.a = node();
      do {
        c.b = node();
      } while (c.b == c.a && s.num_nodes > 1);
      const bool heal = rng.Bernoulli(0.5);
      FaultClause h;
      if (heal) {
        h.op = FaultOp::kUnblockOneWay;
        h.a = c.a;
        h.b = c.b;
        h.at_us = DrawHealTime(rng, c.at_us);
      }
      s.clauses.push_back(std::move(c));
      if (heal) {
        s.clauses.push_back(std::move(h));
      }
    } else if (weight < 70) {
      // Timed loss burst, scoped to one node or everyone.
      c.op = FaultOp::kLossBurst;
      c.a = rng.Bernoulli(0.3) ? kAllNodes : node();
      c.dur_us = rng.UniformInt(20 * 1000 * 1000, 120 * 1000 * 1000);  // 20 s .. 2 min
      c.param = rng.UniformDouble(0.3, 0.95);
      s.clauses.push_back(std::move(c));
    } else if (weight < 78) {
      // Slow-but-alive host.
      c.op = FaultOp::kSlowHost;
      c.a = node();
      c.param = rng.UniformDouble(50.0, 2000.0);  // extra ms per message
      s.clauses.push_back(std::move(c));
    } else if (weight < 85) {
      // Slow link (one direction).
      c.op = FaultOp::kSlowLink;
      c.a = node();
      do {
        c.b = node();
      } while (c.b == c.a && s.num_nodes > 1);
      c.param = rng.UniformDouble(100.0, 4000.0);
      s.clauses.push_back(std::move(c));
    } else if (weight < 92) {
      // Clock skew: timers run fast or slow.
      c.op = FaultOp::kClockSkew;
      c.a = node();
      c.param = rng.Bernoulli(0.5) ? rng.UniformDouble(1.1, 2.5)   // fast
                                   : rng.UniformDouble(0.4, 0.9);  // slow
      s.clauses.push_back(std::move(c));
    } else if (weight < 96) {
      // Message reordering via random extra delay.
      c.op = FaultOp::kReorderJitter;
      c.a = rng.Bernoulli(0.4) ? kAllNodes : node();
      c.param = rng.UniformDouble(20.0, 500.0);  // max extra ms
      s.clauses.push_back(std::move(c));
    } else {
      // Explicit application-level signal on a group.
      c.op = FaultOp::kSignalFailure;
      c.a = static_cast<uint32_t>(rng.UniformInt(0, s.num_groups - 1));
      s.clauses.push_back(std::move(c));
    }
  }
  std::stable_sort(s.clauses.begin(), s.clauses.end(),
                   [](const FaultClause& x, const FaultClause& y) { return x.at_us < y.at_us; });
  return s;
}

}  // namespace fuse
