// Greedy schedule shrinker: minimizes a failing fault schedule while a
// caller-supplied predicate keeps failing (ddmin-lite).
//
// Passes, each run to a fixpoint and the whole sequence repeated until no
// pass makes progress:
//   1. drop whole clauses, one at a time;
//   2. collapse the group count to 1;
//   3. shrink the cluster (node operands re-map modulo the new size at
//      execution time, so clauses stay valid);
//   4. pull clause times to zero (collapses the schedule's timeline);
//   5. drop partition members one at a time.
// The shrinker itself draws no randomness: the same failing schedule and the
// same predicate always produce the same minimized schedule.
#ifndef FUSE_FUZZ_SHRINKER_H_
#define FUSE_FUZZ_SHRINKER_H_

#include <functional>

#include "fuzz/fault_schedule.h"

namespace fuse {

// Returns true when `candidate` still reproduces the failure being minimized
// (typically: RunSchedule(candidate, opts) reports >= 1 violation).
using StillFails = std::function<bool(const FaultSchedule&)>;

// Requires still_fails(failing) == true (callers check before shrinking; the
// shrinker trusts it and only ever keeps candidates the predicate accepts, so
// the result reproduces the failure by construction).
FaultSchedule ShrinkSchedule(const FaultSchedule& failing, const StillFails& still_fails);

}  // namespace fuse

#endif  // FUSE_FUZZ_SHRINKER_H_
