// Fault schedules: serializable random fault programs for the schedule
// fuzzer (ROADMAP "scenario fuzzing and gray failures").
//
// A schedule is a cluster size, a group count, and a time-ordered list of
// fault clauses drawn from a weighted grammar — crashes/restarts, symmetric
// and asymmetric (one-way) link failures, partitions, timed loss bursts,
// slow-but-alive hosts and links, clock skew, message reordering, and
// explicit SignalFailure calls. Everything is derived from a single uint64
// seed and replays byte-identically on the discrete-event simulator; the
// text form round-trips exactly, so a failing schedule is a self-contained
// repro file (`fuzz_schedules --replay <file>`).
#ifndef FUSE_FUZZ_FAULT_SCHEDULE_H_
#define FUSE_FUZZ_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace fuse {

enum class FaultOp : uint8_t {
  kCrash,           // a = node
  kRestart,         // a = node (no-op unless crashed)
  kBlockPair,       // a, b = nodes (symmetric link failure)
  kUnblockPair,     // a, b
  kBlockOneWay,     // a -> b only (asymmetric connectivity)
  kUnblockOneWay,   // a, b
  kPartition,       // group = node indices split away from the rest
  kHealPartitions,  // clears every partition
  kLossBurst,       // a = node scope (kAllNodes = everyone), dur, param = p
  kSlowHost,        // a = node, param = extra one-way delay in ms (0 heals)
  kSlowLink,        // a -> b, param = extra delay ms (0 heals)
  kClockSkew,       // a = node, param = timer rate (1.0 heals)
  kReorderJitter,   // a = node scope (kAllNodes = everyone), param = max ms
  kSignalFailure,   // a = group index (explicit application-level signal)
};

// Scope operand meaning "every node" (loss bursts, reorder jitter).
inline constexpr uint32_t kAllNodes = 0xffffffffu;

const char* FaultOpName(FaultOp op);

struct FaultClause {
  FaultOp op = FaultOp::kCrash;
  int64_t at_us = 0;   // offset from the start of the fault phase
  uint32_t a = 0;      // node operand (or group index / scope, per op)
  uint32_t b = 0;      // second node operand
  int64_t dur_us = 0;  // window length for timed ops (loss bursts)
  double param = 0.0;  // probability / rate / extra delay in ms, per op
  std::vector<uint32_t> group;  // partition member indices

  bool operator==(const FaultClause&) const = default;
};

struct FaultSchedule {
  uint64_t seed = 0;   // provenance + the run's derived rng seeds
  int num_nodes = 6;
  int num_groups = 1;
  std::vector<FaultClause> clauses;  // sorted by at_us (stable)

  bool operator==(const FaultSchedule&) const = default;

  // Exact, deterministic text form (one clause per line). FromText(ToText())
  // reproduces the schedule field-for-field.
  std::string ToText() const;
  static bool FromText(const std::string& text, FaultSchedule* out);
};

// Composes a random schedule from the weighted fault grammar. Same seed,
// same schedule — the generator draws only from its own Rng(seed).
FaultSchedule GenerateSchedule(uint64_t seed);

}  // namespace fuse

#endif  // FUSE_FUZZ_FAULT_SCHEDULE_H_
