#include "fuzz/shrinker.h"

#include <algorithm>
#include <utility>

namespace fuse {

namespace {

// Try removing one clause at a time; restart the scan after every successful
// removal so earlier clauses get re-tried against the smaller schedule.
bool DropClauses(FaultSchedule& best, const StillFails& still_fails) {
  bool progress = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < best.clauses.size(); ++i) {
      FaultSchedule candidate = best;
      candidate.clauses.erase(candidate.clauses.begin() + static_cast<long>(i));
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progress = changed = true;
        break;
      }
    }
  }
  return progress;
}

bool ShrinkGroups(FaultSchedule& best, const StillFails& still_fails) {
  bool progress = false;
  while (best.num_groups > 1) {
    FaultSchedule candidate = best;
    candidate.num_groups = best.num_groups - 1;
    if (!still_fails(candidate)) {
      break;
    }
    best = std::move(candidate);
    progress = true;
  }
  return progress;
}

// The runner clamps node operands modulo the cluster size, so a smaller
// cluster is always a well-formed candidate. Greedy: try the smallest size
// first, then walk upward until one reproduces.
bool ShrinkNodes(FaultSchedule& best, const StillFails& still_fails) {
  constexpr int kMinNodes = 4;  // smallest overlay the harness builds reliably
  for (int n = kMinNodes; n < best.num_nodes; ++n) {
    FaultSchedule candidate = best;
    candidate.num_nodes = n;
    if (still_fails(candidate)) {
      best = std::move(candidate);
      return true;
    }
  }
  return false;
}

bool ZeroTimes(FaultSchedule& best, const StillFails& still_fails) {
  bool progress = false;
  for (size_t i = 0; i < best.clauses.size(); ++i) {
    if (best.clauses[i].at_us == 0) {
      continue;
    }
    FaultSchedule candidate = best;
    candidate.clauses[i].at_us = 0;
    // Keep the clause order stable: a zeroed clause moves to the front of
    // its schedule position's time class, matching the runner's in-order
    // execution of the clause list.
    std::stable_sort(candidate.clauses.begin(), candidate.clauses.end(),
                     [](const FaultClause& x, const FaultClause& y) { return x.at_us < y.at_us; });
    if (still_fails(candidate)) {
      best = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

bool ShrinkPartitionMembers(FaultSchedule& best, const StillFails& still_fails) {
  bool progress = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < best.clauses.size() && !changed; ++i) {
      if (best.clauses[i].group.size() <= 1) {
        continue;
      }
      for (size_t m = 0; m < best.clauses[i].group.size(); ++m) {
        FaultSchedule candidate = best;
        auto& g = candidate.clauses[i].group;
        g.erase(g.begin() + static_cast<long>(m));
        if (still_fails(candidate)) {
          best = std::move(candidate);
          progress = changed = true;
          break;
        }
      }
    }
  }
  return progress;
}

}  // namespace

FaultSchedule ShrinkSchedule(const FaultSchedule& failing, const StillFails& still_fails) {
  FaultSchedule best = failing;
  bool progress = true;
  while (progress) {
    progress = false;
    progress |= DropClauses(best, still_fails);
    progress |= ShrinkGroups(best, still_fails);
    progress |= ShrinkNodes(best, still_fails);
    progress |= ZeroTimes(best, still_fails);
    progress |= ShrinkPartitionMembers(best, still_fails);
  }
  return best;
}

}  // namespace fuse
