#include "fuzz/fuzz_runner.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "runtime/sharded_sim_cluster.h"
#include "runtime/sim_cluster.h"

namespace fuse {

namespace {

// Per-group observation state. Shared with the failure-watch closures, which
// stay registered in the nodes for the cluster's whole lifetime.
struct GroupObs {
  FuseId id;
  std::vector<size_t> members;
  bool created = false;
  std::map<size_t, int> fired;             // member -> notification count
  std::map<size_t, int64_t> first_fire_us; // member -> first notification time
  // Oracle classification, filled during clause execution.
  bool must_fire = false;
  int64_t trigger_us = -1;  // first clause implicating this group
};

void NoteTrigger(GroupObs& g, int64_t now_us) {
  if (g.trigger_us < 0) {
    g.trigger_us = now_us;
  }
}

}  // namespace

FuzzRunResult RunSchedule(const FaultSchedule& schedule, const FuzzRunOptions& options) {
  FuzzRunResult res;
  char buf[192];
  auto violate = [&res, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    res.violations.emplace_back(buf);
  };

  const int n = std::max(schedule.num_nodes, 4);
  ClusterConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = schedule.seed * 2654435761ULL + 0x9e3779b9ULL;
  cfg.topology.num_as = 40;  // small physical topology: schedule throughput
  cfg.cost = CostModel::Simulator();
  cfg.num_shards = options.num_shards;
  cfg.threads = options.threads;
  cfg.fuse.incremental_link_digest = options.incremental_link_digest;
  cfg.fuse.coalesce_group_timers = options.coalesce_group_timers;
  const std::unique_ptr<ClusterHarness> cluster_ptr = MakeSimCluster(cfg);
  ClusterHarness& cluster = *cluster_ptr;
  cluster.Build();

  // Group membership is derived from the schedule seed alone (not the sim
  // rng), so the shrinker can re-run reduced schedules comparably.
  Rng group_rng(schedule.seed ^ 0xfacefeedcafef00dULL);
  std::vector<std::shared_ptr<GroupObs>> groups;
  for (int gi = 0; gi < schedule.num_groups; ++gi) {
    auto g = std::make_shared<GroupObs>();
    const size_t size =
        static_cast<size_t>(group_rng.UniformInt(2, std::min<int64_t>(5, n)));
    for (size_t idx : group_rng.SampleIndices(static_cast<size_t>(n), size)) {
      g->members.push_back(idx);
    }
    std::sort(g->members.begin(), g->members.end());
    groups.push_back(std::move(g));
  }

  // Create every group on the clean pre-fault network; a failure here is a
  // violation in its own right (creation must succeed without faults).
  for (int gi = 0; gi < schedule.num_groups; ++gi) {
    GroupObs& g = *groups[gi];
    struct CreateState {
      bool done = false;
      Status status;
      FuseId id;
    };
    auto st = std::make_shared<CreateState>();
    cluster.Run([&] {
      cluster.CreateGroupInContext(g.members[0], cluster.RefsOf(g.members),
                                   [st](const Status& s, FuseId id) {
                                     st->status = s;
                                     st->id = id;
                                     st->done = true;
                                   });
    });
    if (!cluster.Await([st] { return st->done; }, options.create_bound)) {
      violate("group %d: create returned no verdict on a clean network", gi);
      continue;
    }
    if (!st->status.ok()) {
      violate("group %d: create failed on a clean network", gi);
      continue;
    }
    g.id = st->id;
    g.created = true;
    ++res.groups_created;
    auto gp = groups[gi];
    cluster.Run([&] {
      for (size_t m : gp->members) {
        // The planted bug records every notification to the first member
        // twice, as if the delivery layer had duplicated it (the protocol's
        // own handler slot is replace-on-register, so a genuine double
        // registration would mask rather than duplicate).
        const int per_fire =
            options.plant_duplicate_watch && m == gp->members[0] ? 2 : 1;
        cluster.WatchGroupMemberInContext(m, gp->id, [gp, m, &cluster, per_fire] {
          gp->fired[m] += per_fire;
          if (!gp->first_fire_us.contains(m)) {
            gp->first_fire_us[m] = cluster.env().Now().ToMicros();
          }
        });
      }
    });
  }
  cluster.AdvanceFor(options.settle);

  // --- execute the fault clauses in time order ---
  // `shadow` mirrors only the partition state: a partition that still splits
  // two (never-crashed) members when the run ends cuts every path between
  // them, so the groups it splits are must-fire. Pair/one-way blocks are NOT
  // mirrored — they cut single links, which the delegate tree may legally
  // route around, so they only ever make a group may-fire.
  FaultInjector shadow;
  std::set<size_t> ever_crashed;
  bool any_fault_executed = false;
  const TimePoint fault_start = cluster.env().Now();
  int64_t cursor_us = 0;
  auto host_of = [&cluster](uint32_t idx) { return cluster.RefOf(idx).host; };

  auto note_split_groups = [&] {
    // After a partition-state change: any group with two never-crashed
    // members now split gets its trigger stamped (classification to
    // must-fire happens at the end, from the FINAL partition state).
    const int64_t now_us = (cluster.env().Now() - fault_start).ToMicros();
    for (auto& g : groups) {
      if (!g->created) {
        continue;
      }
      for (size_t i = 0; i < g->members.size(); ++i) {
        for (size_t j = i + 1; j < g->members.size(); ++j) {
          if (ever_crashed.contains(g->members[i]) || ever_crashed.contains(g->members[j])) {
            continue;
          }
          if (shadow.IsBlocked(host_of(static_cast<uint32_t>(g->members[i])),
                               host_of(static_cast<uint32_t>(g->members[j])))) {
            NoteTrigger(*g, now_us);
          }
        }
      }
    }
  };

  for (const FaultClause& raw : schedule.clauses) {
    FaultClause c = raw;
    // Clamp node operands so shrunk schedules (smaller clusters) stay valid.
    const auto nidx = [&](uint32_t v) { return v == kAllNodes ? v : v % static_cast<uint32_t>(n); };
    c.a = nidx(c.a);
    c.b = nidx(c.b);
    if (c.at_us > cursor_us) {
      cluster.AdvanceFor(Duration::Micros(c.at_us - cursor_us));
      cursor_us = c.at_us;
    }
    const int64_t now_us = (cluster.env().Now() - fault_start).ToMicros();
    switch (c.op) {
      case FaultOp::kCrash: {
        if (!cluster.IsUp(c.a)) {
          break;  // already down: clause is a no-op, not an error
        }
        cluster.Crash(c.a);
        ever_crashed.insert(c.a);
        any_fault_executed = true;
        for (auto& g : groups) {
          if (g->created && std::count(g->members.begin(), g->members.end(), c.a) > 0) {
            g->must_fire = true;
            NoteTrigger(*g, now_us);
          }
        }
        break;
      }
      case FaultOp::kRestart:
        if (!cluster.IsUp(c.a)) {
          cluster.RestartAsync(c.a);
          any_fault_executed = true;
        }
        break;
      case FaultOp::kBlockPair:
        if (c.a != c.b) {
          cluster.ApplyFaults(
              [&](FaultInjector& f) { f.BlockPair(host_of(c.a), host_of(c.b)); });
          any_fault_executed = true;
        }
        break;
      case FaultOp::kUnblockPair:
        cluster.ApplyFaults([&](FaultInjector& f) { f.UnblockPair(host_of(c.a), host_of(c.b)); });
        break;
      case FaultOp::kBlockOneWay:
        if (c.a != c.b) {
          cluster.ApplyFaults(
              [&](FaultInjector& f) { f.BlockOneWay(host_of(c.a), host_of(c.b)); });
          any_fault_executed = true;
        }
        break;
      case FaultOp::kUnblockOneWay:
        cluster.ApplyFaults(
            [&](FaultInjector& f) { f.UnblockOneWay(host_of(c.a), host_of(c.b)); });
        break;
      case FaultOp::kPartition: {
        std::vector<HostId> side;
        std::set<uint32_t> seen;
        for (uint32_t m : c.group) {
          const uint32_t idx = m % static_cast<uint32_t>(n);
          if (seen.insert(idx).second) {
            side.push_back(host_of(idx));
          }
        }
        if (!side.empty() && side.size() < static_cast<size_t>(n)) {
          cluster.ApplyFaults([&side](FaultInjector& f) { f.PartitionHosts(side); });
          shadow.PartitionHosts(side);
          any_fault_executed = true;
          note_split_groups();
        }
        break;
      }
      case FaultOp::kHealPartitions:
        cluster.ApplyFaults([](FaultInjector& f) { f.ClearPartitions(); });
        shadow.ClearPartitions();
        break;
      case FaultOp::kLossBurst: {
        const HostId scope = c.a == kAllNodes ? HostId() : host_of(c.a);
        const TimePoint from = cluster.env().Now();
        const TimePoint until = from + Duration::Micros(std::max<int64_t>(c.dur_us, 1));
        const double p = std::clamp(c.param, 0.0, 1.0);
        cluster.ApplyFaults(
            [&](FaultInjector& f) { f.AddLossBurst(scope, from, until, p); });
        any_fault_executed = true;
        break;
      }
      case FaultOp::kSlowHost:
        cluster.ApplyFaults(
            [&](FaultInjector& f) { f.SetHostDelay(host_of(c.a), Duration::MillisF(c.param)); });
        any_fault_executed = true;
        break;
      case FaultOp::kSlowLink:
        if (c.a != c.b) {
          cluster.ApplyFaults([&](FaultInjector& f) {
            f.SetLinkDelay(host_of(c.a), host_of(c.b), Duration::MillisF(c.param));
          });
          any_fault_executed = true;
        }
        break;
      case FaultOp::kClockSkew:
        cluster.ApplyFaults([&](FaultInjector& f) {
          f.SetClockRate(host_of(c.a), std::clamp(c.param, 0.1, 10.0));
        });
        any_fault_executed = true;
        break;
      case FaultOp::kReorderJitter: {
        const HostId scope = c.a == kAllNodes ? HostId() : host_of(c.a);
        cluster.ApplyFaults(
            [&](FaultInjector& f) { f.SetReorderJitter(scope, Duration::MillisF(c.param)); });
        any_fault_executed = true;
        break;
      }
      case FaultOp::kSignalFailure: {
        if (schedule.num_groups == 0) {
          break;
        }
        GroupObs& g = *groups[c.a % groups.size()];
        if (!g.created) {
          break;
        }
        // Signal from the first member that never crashed (it still holds
        // the group state); skip if every member has crashed.
        size_t signaler = g.members.size();
        for (size_t m : g.members) {
          if (!ever_crashed.contains(m) && cluster.IsUp(m)) {
            signaler = m;
            break;
          }
        }
        if (signaler == g.members.size()) {
          break;
        }
        cluster.Run([&] { cluster.node(signaler).fuse()->SignalFailure(g.id); });
        g.must_fire = true;
        NoteTrigger(g, now_us);
        any_fault_executed = true;
        break;
      }
    }
  }

  // Final partition state decides the connectivity half of must-fire: a
  // split that was never healed breaks the delegate tree across the
  // boundary, so both sides must detect and notify.
  for (auto& g : groups) {
    if (!g->created || g->must_fire) {
      continue;
    }
    for (size_t i = 0; i < g->members.size() && !g->must_fire; ++i) {
      for (size_t j = i + 1; j < g->members.size(); ++j) {
        if (ever_crashed.contains(g->members[i]) || ever_crashed.contains(g->members[j])) {
          continue;
        }
        if (shadow.IsBlocked(host_of(static_cast<uint32_t>(g->members[i])),
                             host_of(static_cast<uint32_t>(g->members[j])))) {
          g->must_fire = true;
          break;
        }
      }
    }
  }

  // --- detection tail + oracle ---
  cluster.AdvanceFor(options.detect_bound);
  auto incomplete = [&](const GroupObs& g) {
    // A group that must fire, or has partially fired, and is still missing a
    // never-crashed member's notification.
    bool any_fired = false;
    bool all_fired = true;
    for (size_t m : g.members) {
      if (ever_crashed.contains(m)) {
        continue;
      }
      const auto it = g.fired.find(m);
      if (it != g.fired.end() && it->second > 0) {
        any_fired = true;
      } else {
        all_fired = false;
      }
    }
    return (g.must_fire || any_fired) && !all_fired;
  };
  bool needs_extension = false;
  cluster.Run([&] {
    for (const auto& g : groups) {
      if (g->created && incomplete(*g)) {
        needs_extension = true;
      }
    }
  });
  if (needs_extension) {
    cluster.AdvanceFor(options.detect_bound);
  }

  cluster.Run([&] {
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      GroupObs& g = *groups[gi];
      if (!g.created) {
        continue;
      }
      bool any_fired = false;
      int64_t full_coverage_us = -1;
      for (size_t m : g.members) {
        const auto it = g.fired.find(m);
        const int count = it == g.fired.end() ? 0 : it->second;
        if (count > 1) {
          violate("group %zu: member %zu heard %d notifications (want at most 1)", gi, m, count);
        }
        if (count > 0) {
          any_fired = true;
        }
        if (ever_crashed.contains(m)) {
          continue;  // lost its watch state with its incarnation
        }
        if (count > 0) {
          full_coverage_us = std::max(full_coverage_us, g.first_fire_us[m]);
        }
      }
      size_t live_members = 0;
      for (size_t m : g.members) {
        if (!ever_crashed.contains(m)) {
          ++live_members;
        }
      }
      if (any_fired) {
        ++res.groups_fired;
        if (!g.must_fire) {
          ++res.false_positives;
        }
      }
      if (!any_fault_executed && any_fired) {
        violate("group %zu: notification while all members were live and connected", gi);
      }
      if (live_members == 0) {
        continue;  // nobody left holding watch state: agreement is vacuous
      }
      if (g.must_fire || any_fired) {
        for (size_t m : g.members) {
          if (ever_crashed.contains(m)) {
            continue;
          }
          const auto it = g.fired.find(m);
          const int count = it == g.fired.end() ? 0 : it->second;
          if (count < 1) {
            violate(g.must_fire
                        ? "group %zu: member %zu never heard the required notification"
                        : "group %zu: member %zu missed the notification other members heard",
                    gi, m);
          }
        }
      }
      if (full_coverage_us >= 0 && g.trigger_us >= 0) {
        const int64_t latency =
            full_coverage_us - (fault_start.ToMicros() + g.trigger_us);
        if (latency > res.max_detection_latency_us) {
          res.max_detection_latency_us = latency;
        }
      }
    }
  });

  std::snprintf(buf, sizeof(buf),
                "run seed=%" PRIu64
                " nodes=%d groups=%d clauses=%zu created=%d fired=%d fp=%d maxlat_us=%" PRId64
                " verdict=%s(%zu)",
                schedule.seed, schedule.num_nodes, schedule.num_groups, schedule.clauses.size(),
                res.groups_created, res.groups_fired, res.false_positives,
                res.max_detection_latency_us, res.ok() ? "ok" : "VIOLATION",
                res.violations.size());
  res.log_line = buf;
  return res;
}

}  // namespace fuse
