// Executes one fault schedule on the discrete-event simulator and grades the
// outcome against FUSE's guarantee (the invariant oracle).
//
// The oracle classifies each group from the executed schedule:
//   * must-fire — a member crashed, the application signaled the group, or a
//     never-healed partition splits the (never-crashed) members: every
//     never-crashed member must hear exactly one notification;
//   * must-not-fire — no fault executed at all: any notification is a
//     violation ("no notification while all members are live and connected");
//   * may-fire — everything else (loss bursts, slow links, skew, healed or
//     partial connectivity faults, non-member crashes): false positives are
//     legal FUSE behavior and are counted as detector QoS, but agreement is
//     still one-way — if any member heard a notification, every never-crashed
//     member must hear exactly one.
// Duplicate notifications are violations everywhere. Groups get one extra
// detection window before a partial delivery is declared a violation.
//
// Detector QoS (Duarte et al.'s diagnosis framing): per run, the number of
// false-positive groups and the worst time from a group's trigger to full
// member coverage are reported alongside the verdict.
#ifndef FUSE_FUZZ_FUZZ_RUNNER_H_
#define FUSE_FUZZ_FUZZ_RUNNER_H_

#include <string>
#include <vector>

#include "common/time.h"
#include "fuzz/fault_schedule.h"

namespace fuse {

struct FuzzRunOptions {
  // Test hook for the shrinker's own coverage: the first member's failure
  // watch counts every notification twice, so any real notification becomes
  // a duplicate-delivery violation the shrinker must minimize.
  bool plant_duplicate_watch = false;

  // Simulator backend (see MakeSimCluster): 0 runs the classic
  // single-threaded engine; >= 1 runs the sharded engine with that many
  // shards and `threads` workers. The oracle verdict and QoS counters are a
  // function of (schedule, num_shards) only — never of threads.
  int num_shards = 0;
  int threads = 1;

  // Group fast-path flags under test (FuseParams::incremental_link_digest /
  // coalesce_group_timers). The digest changes no message sizes, so its
  // verdicts AND log lines must match classic byte-for-byte; coalescing
  // shifts detection timing within the oracle's windows, so only its
  // verdicts must stay green.
  bool incremental_link_digest = false;
  bool coalesce_group_timers = false;

  // Virtual-time bounds (the simulator's analytic detection bound, as in
  // runtime/scenario.cc).
  Duration settle = Duration::Minutes(2);
  Duration create_bound = Duration::Minutes(3);
  Duration detect_bound = Duration::Minutes(8);
};

struct FuzzRunResult {
  std::vector<std::string> violations;  // empty = schedule passed
  int groups_created = 0;
  int groups_fired = 0;      // groups where >= 1 member heard a notification
  int false_positives = 0;   // fired groups the oracle did not require to fire
  int64_t max_detection_latency_us = 0;  // worst trigger->full-coverage time
  // Deterministic one-line summary (same schedule => byte-identical line).
  std::string log_line;

  bool ok() const { return violations.empty(); }
};

FuzzRunResult RunSchedule(const FaultSchedule& schedule, const FuzzRunOptions& options);

inline FuzzRunResult RunSchedule(const FaultSchedule& schedule) {
  return RunSchedule(schedule, FuzzRunOptions());
}

}  // namespace fuse

#endif  // FUSE_FUZZ_FUZZ_RUNNER_H_
