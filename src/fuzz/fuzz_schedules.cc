// fuzz_schedules: deterministic fault-schedule fuzzer for the FUSE stack.
//
// Sweep mode (default): generate and run `--schedules` random fault programs
// starting at `--seed` (schedule i uses seed base+i), grade each against the
// invariant oracle, and on a violation greedily shrink the schedule and write
// a self-contained repro pair (<dir>/fuzz_repro_seed<S>.txt and .min.txt).
// Replay mode: `--replay <file>` re-runs a saved schedule byte-identically.
//
// Exit status: 0 = every schedule passed, 1 = at least one violation (or a
// usage/file error).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/fault_schedule.h"
#include "fuzz/fuzz_runner.h"
#include "fuzz/shrinker.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--schedules N] [--seed S] [--repro-dir DIR] [--no-shrink] [--quiet]\n"
               "          [--shards S] [--threads T] [--incremental-digest]\n"
               "          [--coalesce-group-timers]\n"
               "       %s --replay FILE [--shrink]\n"
               "  --shards 0 (default) runs the classic single-threaded simulator;\n"
               "  --shards >= 1 runs the sharded engine with --threads workers\n"
               "  (verdicts depend on the shard count, never the thread count).\n"
               "  --incremental-digest / --coalesce-group-timers enable the group\n"
               "  fast path under test; digest-mode log lines must match classic.\n",
               argv0, argv0);
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t schedules = 100;
  uint64_t base_seed = 1;
  std::string repro_dir = ".";
  std::string replay_file;
  bool shrink = true;
  bool quiet = false;
  fuse::FuzzRunOptions run_options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--schedules") == 0) {
      schedules = std::strtoll(next(), nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0) {
      base_seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(arg, "--repro-dir") == 0) {
      repro_dir = next();
    } else if (std::strcmp(arg, "--replay") == 0) {
      replay_file = next();
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      shrink = false;
    } else if (std::strcmp(arg, "--shrink") == 0) {
      shrink = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--shards") == 0) {
      run_options.num_shards = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (std::strcmp(arg, "--threads") == 0) {
      run_options.threads = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (std::strcmp(arg, "--incremental-digest") == 0) {
      run_options.incremental_link_digest = true;
    } else if (std::strcmp(arg, "--coalesce-group-timers") == 0) {
      run_options.coalesce_group_timers = true;
    } else {
      Usage(argv[0]);
      return 1;
    }
  }

  const auto still_fails = [&run_options](const fuse::FaultSchedule& s) {
    return !fuse::RunSchedule(s, run_options).ok();
  };
  const auto report = [&](const fuse::FaultSchedule& s, const fuse::FuzzRunResult& r) {
    std::printf("%s\n", r.log_line.c_str());
    for (const std::string& v : r.violations) {
      std::printf("  violation: %s\n", v.c_str());
    }
    if (r.ok() || !shrink) {
      return;
    }
    const fuse::FaultSchedule min = fuse::ShrinkSchedule(s, still_fails);
    char name[160];
    std::snprintf(name, sizeof(name), "%s/fuzz_repro_seed%" PRIu64 ".txt", repro_dir.c_str(),
                  s.seed);
    WriteFile(name, s.ToText());
    std::printf("  repro: %s\n", name);
    std::snprintf(name, sizeof(name), "%s/fuzz_repro_seed%" PRIu64 ".min.txt", repro_dir.c_str(),
                  s.seed);
    WriteFile(name, min.ToText());
    std::printf("  minimized (%zu clauses, %d nodes): %s\n", min.clauses.size(), min.num_nodes,
                name);
  };

  if (!replay_file.empty()) {
    std::ifstream in(replay_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", replay_file.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    fuse::FaultSchedule s;
    if (!fuse::FaultSchedule::FromText(text.str(), &s)) {
      std::fprintf(stderr, "%s: not a valid schedule file\n", replay_file.c_str());
      return 1;
    }
    const fuse::FuzzRunResult r = fuse::RunSchedule(s, run_options);
    report(s, r);
    return r.ok() ? 0 : 1;
  }

  int64_t failures = 0;
  for (int64_t i = 0; i < schedules; ++i) {
    const fuse::FaultSchedule s = fuse::GenerateSchedule(base_seed + static_cast<uint64_t>(i));
    const fuse::FuzzRunResult r = fuse::RunSchedule(s, run_options);
    if (!r.ok()) {
      ++failures;
      report(s, r);
    } else if (!quiet) {
      std::printf("%s\n", r.log_line.c_str());
    } else if ((i + 1) % 500 == 0) {
      std::printf("progress: %" PRId64 "/%" PRId64 " schedules, %" PRId64 " violations\n", i + 1,
                  schedules, failures);
      std::fflush(stdout);
    }
  }
  std::printf("swept %" PRId64 " schedules base_seed=%" PRIu64 " violations=%" PRId64 "\n",
              schedules, base_seed, failures);
  return failures == 0 ? 0 : 1;
}
