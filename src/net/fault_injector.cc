#include "net/fault_injector.h"

#include <algorithm>

namespace fuse {

void FaultInjector::SetHostDown(HostId h, bool down) {
  if (down) {
    down_hosts_.insert(h);
  } else {
    down_hosts_.erase(h);
  }
}

void FaultInjector::BlockPair(HostId a, HostId b) { blocked_pairs_.insert(PairKey(a, b)); }

void FaultInjector::UnblockPair(HostId a, HostId b) { blocked_pairs_.erase(PairKey(a, b)); }

void FaultInjector::BlockOneWay(HostId from, HostId to) {
  oneway_blocked_.insert(OrderedKey(from, to));
}

void FaultInjector::UnblockOneWay(HostId from, HostId to) {
  oneway_blocked_.erase(OrderedKey(from, to));
}

void FaultInjector::PartitionHosts(const std::vector<HostId>& group) {
  const uint32_t id = next_partition_id_++;
  for (HostId h : group) {
    partition_of_[h] = id;
  }
}

void FaultInjector::ClearPartitions() { partition_of_.clear(); }

bool FaultInjector::IsBlocked(HostId a, HostId b) const {
  if (down_hosts_.contains(a) || down_hosts_.contains(b)) {
    return true;
  }
  if (blocked_pairs_.contains(PairKey(a, b))) {
    return true;
  }
  if (!oneway_blocked_.empty() && oneway_blocked_.contains(OrderedKey(a, b))) {
    return true;
  }
  if (!partition_of_.empty()) {
    const auto ita = partition_of_.find(a);
    const auto itb = partition_of_.find(b);
    const uint32_t ga = ita == partition_of_.end() ? 0 : ita->second;
    const uint32_t gb = itb == partition_of_.end() ? 0 : itb->second;
    if (ga != gb) {
      return true;
    }
  }
  return false;
}

void FaultInjector::SetLinkDelay(HostId from, HostId to, Duration extra) {
  if (extra.IsZero()) {
    link_delay_.erase(OrderedKey(from, to));
  } else {
    link_delay_[OrderedKey(from, to)] = extra;
  }
}

void FaultInjector::SetHostDelay(HostId h, Duration extra) {
  if (extra.IsZero()) {
    host_delay_.erase(h);
  } else {
    host_delay_[h] = extra;
  }
}

Duration FaultInjector::ExtraDelay(HostId a, HostId b) const {
  Duration total;
  if (!link_delay_.empty()) {
    const auto it = link_delay_.find(OrderedKey(a, b));
    if (it != link_delay_.end()) {
      total += it->second;
    }
  }
  if (!host_delay_.empty()) {
    const auto ita = host_delay_.find(a);
    if (ita != host_delay_.end()) {
      total += ita->second;
    }
    const auto itb = host_delay_.find(b);
    if (itb != host_delay_.end()) {
      total += itb->second;
    }
  }
  return total;
}

void FaultInjector::SetClockRate(HostId h, double rate) {
  if (rate == 1.0) {
    clock_rate_.erase(h);
  } else {
    clock_rate_[h] = rate;
  }
}

double FaultInjector::ClockRate(HostId h) const {
  if (clock_rate_.empty()) {
    return 1.0;
  }
  const auto it = clock_rate_.find(h);
  return it == clock_rate_.end() ? 1.0 : it->second;
}

void FaultInjector::AddLossBurst(HostId h, TimePoint from, TimePoint until, double p) {
  loss_bursts_.push_back(LossBurst{h, from, until, p});
}

void FaultInjector::ClearLossBursts() { loss_bursts_.clear(); }

double FaultInjector::BurstLossProbability(HostId a, HostId b, TimePoint now) const {
  // Compose overlapping bursts as independent drop chances: the attempt
  // survives only if it survives every active burst.
  double survive = 1.0;
  for (const LossBurst& burst : loss_bursts_) {
    if (now < burst.from || now >= burst.until) {
      continue;
    }
    if (burst.host.valid() && burst.host != a && burst.host != b) {
      continue;
    }
    survive *= 1.0 - burst.probability;
  }
  return 1.0 - survive;
}

void FaultInjector::SetReorderJitter(HostId h, Duration max) {
  if (!h.valid()) {
    global_reorder_jitter_ = max;
    return;
  }
  if (max.IsZero()) {
    reorder_jitter_.erase(h);
  } else {
    reorder_jitter_[h] = max;
  }
}

Duration FaultInjector::ReorderJitterFor(HostId a, HostId b) const {
  Duration max = global_reorder_jitter_;
  if (!reorder_jitter_.empty()) {
    const auto ita = reorder_jitter_.find(a);
    if (ita != reorder_jitter_.end() && ita->second > max) {
      max = ita->second;
    }
    const auto itb = reorder_jitter_.find(b);
    if (itb != reorder_jitter_.end() && itb->second > max) {
      max = itb->second;
    }
  }
  return max;
}

void FaultInjector::EncodeTo(Writer& w) const {
  std::vector<uint64_t> downs;
  downs.reserve(down_hosts_.size());
  for (HostId h : down_hosts_) {
    downs.push_back(h.value);
  }
  std::sort(downs.begin(), downs.end());
  w.PutU32(static_cast<uint32_t>(downs.size()));
  for (uint64_t v : downs) {
    w.PutU64(v);
  }

  std::vector<uint64_t> pairs(blocked_pairs_.begin(), blocked_pairs_.end());
  std::sort(pairs.begin(), pairs.end());
  w.PutU32(static_cast<uint32_t>(pairs.size()));
  for (uint64_t v : pairs) {
    w.PutU64(v);
  }

  std::vector<std::pair<uint64_t, uint32_t>> parts;
  parts.reserve(partition_of_.size());
  for (const auto& [h, g] : partition_of_) {
    parts.emplace_back(h.value, g);
  }
  std::sort(parts.begin(), parts.end());
  w.PutU32(static_cast<uint32_t>(parts.size()));
  for (const auto& [h, g] : parts) {
    w.PutU64(h);
    w.PutU32(g);
  }
  w.PutU32(next_partition_id_);

  // Gray-failure sections, appended after the original fields (the whole rule
  // set is always encoded/decoded as a unit, so no version tag is needed —
  // both sides of a process deployment run the same binary).
  std::vector<uint64_t> oneway(oneway_blocked_.begin(), oneway_blocked_.end());
  std::sort(oneway.begin(), oneway.end());
  w.PutU32(static_cast<uint32_t>(oneway.size()));
  for (uint64_t v : oneway) {
    w.PutU64(v);
  }

  std::vector<std::pair<uint64_t, int64_t>> links;
  links.reserve(link_delay_.size());
  for (const auto& [k, d] : link_delay_) {
    links.emplace_back(k, d.ToMicros());
  }
  std::sort(links.begin(), links.end());
  w.PutU32(static_cast<uint32_t>(links.size()));
  for (const auto& [k, us] : links) {
    w.PutU64(k);
    w.PutI64(us);
  }

  std::vector<std::pair<uint64_t, int64_t>> hosts;
  hosts.reserve(host_delay_.size());
  for (const auto& [h, d] : host_delay_) {
    hosts.emplace_back(h.value, d.ToMicros());
  }
  std::sort(hosts.begin(), hosts.end());
  w.PutU32(static_cast<uint32_t>(hosts.size()));
  for (const auto& [h, us] : hosts) {
    w.PutU64(h);
    w.PutI64(us);
  }

  std::vector<std::pair<uint64_t, double>> rates;
  rates.reserve(clock_rate_.size());
  for (const auto& [h, rate] : clock_rate_) {
    rates.emplace_back(h.value, rate);
  }
  std::sort(rates.begin(), rates.end());
  w.PutU32(static_cast<uint32_t>(rates.size()));
  for (const auto& [h, rate] : rates) {
    w.PutU64(h);
    w.PutDouble(rate);
  }

  // Bursts keep insertion order (overlap composition is order-independent but
  // the wire form should match what the originator holds).
  w.PutU32(static_cast<uint32_t>(loss_bursts_.size()));
  for (const LossBurst& burst : loss_bursts_) {
    w.PutU64(burst.host.value);
    w.PutI64(burst.from.ToMicros());
    w.PutI64(burst.until.ToMicros());
    w.PutDouble(burst.probability);
  }

  std::vector<std::pair<uint64_t, int64_t>> jitters;
  jitters.reserve(reorder_jitter_.size());
  for (const auto& [h, d] : reorder_jitter_) {
    jitters.emplace_back(h.value, d.ToMicros());
  }
  std::sort(jitters.begin(), jitters.end());
  w.PutU32(static_cast<uint32_t>(jitters.size()));
  for (const auto& [h, us] : jitters) {
    w.PutU64(h);
    w.PutI64(us);
  }
  w.PutI64(global_reorder_jitter_.ToMicros());
}

bool FaultInjector::DecodeFrom(Reader& r) {
  down_hosts_.clear();
  blocked_pairs_.clear();
  oneway_blocked_.clear();
  partition_of_.clear();
  link_delay_.clear();
  host_delay_.clear();
  clock_rate_.clear();
  loss_bursts_.clear();
  reorder_jitter_.clear();
  global_reorder_jitter_ = Duration::Zero();
  const uint32_t ndown = r.GetU32();
  for (uint32_t i = 0; i < ndown && r.ok(); ++i) {
    down_hosts_.insert(HostId(r.GetU64()));
  }
  const uint32_t npairs = r.GetU32();
  for (uint32_t i = 0; i < npairs && r.ok(); ++i) {
    blocked_pairs_.insert(r.GetU64());
  }
  const uint32_t nparts = r.GetU32();
  for (uint32_t i = 0; i < nparts && r.ok(); ++i) {
    const uint64_t h = r.GetU64();
    partition_of_[HostId(h)] = r.GetU32();
  }
  next_partition_id_ = r.GetU32();

  const uint32_t noneway = r.GetU32();
  for (uint32_t i = 0; i < noneway && r.ok(); ++i) {
    oneway_blocked_.insert(r.GetU64());
  }
  const uint32_t nlinks = r.GetU32();
  for (uint32_t i = 0; i < nlinks && r.ok(); ++i) {
    const uint64_t k = r.GetU64();
    link_delay_[k] = Duration::Micros(r.GetI64());
  }
  const uint32_t nhosts = r.GetU32();
  for (uint32_t i = 0; i < nhosts && r.ok(); ++i) {
    const uint64_t h = r.GetU64();
    host_delay_[HostId(h)] = Duration::Micros(r.GetI64());
  }
  const uint32_t nrates = r.GetU32();
  for (uint32_t i = 0; i < nrates && r.ok(); ++i) {
    const uint64_t h = r.GetU64();
    clock_rate_[HostId(h)] = r.GetDouble();
  }
  const uint32_t nbursts = r.GetU32();
  for (uint32_t i = 0; i < nbursts && r.ok(); ++i) {
    LossBurst burst;
    burst.host = HostId(r.GetU64());
    burst.from = TimePoint::FromMicros(r.GetI64());
    burst.until = TimePoint::FromMicros(r.GetI64());
    burst.probability = r.GetDouble();
    loss_bursts_.push_back(burst);
  }
  const uint32_t njitters = r.GetU32();
  for (uint32_t i = 0; i < njitters && r.ok(); ++i) {
    const uint64_t h = r.GetU64();
    reorder_jitter_[HostId(h)] = Duration::Micros(r.GetI64());
  }
  global_reorder_jitter_ = Duration::Micros(r.GetI64());
  return r.ok();
}

}  // namespace fuse
