#include "net/fault_injector.h"

#include <algorithm>

namespace fuse {

void FaultInjector::SetHostDown(HostId h, bool down) {
  if (down) {
    down_hosts_.insert(h);
  } else {
    down_hosts_.erase(h);
  }
}

void FaultInjector::BlockPair(HostId a, HostId b) { blocked_pairs_.insert(PairKey(a, b)); }

void FaultInjector::UnblockPair(HostId a, HostId b) { blocked_pairs_.erase(PairKey(a, b)); }

void FaultInjector::PartitionHosts(const std::vector<HostId>& group) {
  const uint32_t id = next_partition_id_++;
  for (HostId h : group) {
    partition_of_[h] = id;
  }
}

void FaultInjector::ClearPartitions() { partition_of_.clear(); }

bool FaultInjector::IsBlocked(HostId a, HostId b) const {
  if (down_hosts_.contains(a) || down_hosts_.contains(b)) {
    return true;
  }
  if (blocked_pairs_.contains(PairKey(a, b))) {
    return true;
  }
  if (!partition_of_.empty()) {
    const auto ita = partition_of_.find(a);
    const auto itb = partition_of_.find(b);
    const uint32_t ga = ita == partition_of_.end() ? 0 : ita->second;
    const uint32_t gb = itb == partition_of_.end() ? 0 : itb->second;
    if (ga != gb) {
      return true;
    }
  }
  return false;
}

void FaultInjector::EncodeTo(Writer& w) const {
  std::vector<uint64_t> downs;
  downs.reserve(down_hosts_.size());
  for (HostId h : down_hosts_) {
    downs.push_back(h.value);
  }
  std::sort(downs.begin(), downs.end());
  w.PutU32(static_cast<uint32_t>(downs.size()));
  for (uint64_t v : downs) {
    w.PutU64(v);
  }

  std::vector<uint64_t> pairs(blocked_pairs_.begin(), blocked_pairs_.end());
  std::sort(pairs.begin(), pairs.end());
  w.PutU32(static_cast<uint32_t>(pairs.size()));
  for (uint64_t v : pairs) {
    w.PutU64(v);
  }

  std::vector<std::pair<uint64_t, uint32_t>> parts;
  parts.reserve(partition_of_.size());
  for (const auto& [h, g] : partition_of_) {
    parts.emplace_back(h.value, g);
  }
  std::sort(parts.begin(), parts.end());
  w.PutU32(static_cast<uint32_t>(parts.size()));
  for (const auto& [h, g] : parts) {
    w.PutU64(h);
    w.PutU32(g);
  }
  w.PutU32(next_partition_id_);
}

bool FaultInjector::DecodeFrom(Reader& r) {
  down_hosts_.clear();
  blocked_pairs_.clear();
  partition_of_.clear();
  const uint32_t ndown = r.GetU32();
  for (uint32_t i = 0; i < ndown && r.ok(); ++i) {
    down_hosts_.insert(HostId(r.GetU64()));
  }
  const uint32_t npairs = r.GetU32();
  for (uint32_t i = 0; i < npairs && r.ok(); ++i) {
    blocked_pairs_.insert(r.GetU64());
  }
  const uint32_t nparts = r.GetU32();
  for (uint32_t i = 0; i < nparts && r.ok(); ++i) {
    const uint64_t h = r.GetU64();
    partition_of_[HostId(h)] = r.GetU32();
  }
  next_partition_id_ = r.GetU32();
  return r.ok();
}

}  // namespace fuse
