#include "net/fault_injector.h"

namespace fuse {

void FaultInjector::SetHostDown(HostId h, bool down) {
  if (down) {
    down_hosts_.insert(h);
  } else {
    down_hosts_.erase(h);
  }
}

void FaultInjector::BlockPair(HostId a, HostId b) { blocked_pairs_.insert(PairKey(a, b)); }

void FaultInjector::UnblockPair(HostId a, HostId b) { blocked_pairs_.erase(PairKey(a, b)); }

void FaultInjector::PartitionHosts(const std::vector<HostId>& group) {
  const uint32_t id = next_partition_id_++;
  for (HostId h : group) {
    partition_of_[h] = id;
  }
}

void FaultInjector::ClearPartitions() { partition_of_.clear(); }

bool FaultInjector::IsBlocked(HostId a, HostId b) const {
  if (down_hosts_.contains(a) || down_hosts_.contains(b)) {
    return true;
  }
  if (blocked_pairs_.contains(PairKey(a, b))) {
    return true;
  }
  if (!partition_of_.empty()) {
    const auto ita = partition_of_.find(a);
    const auto itb = partition_of_.find(b);
    const uint32_t ga = ita == partition_of_.end() ? 0 : ita->second;
    const uint32_t gb = itb == partition_of_.end() ? 0 : itb->second;
    if (ga != gb) {
      return true;
    }
  }
  return false;
}

}  // namespace fuse
