// SimNetwork: hosts attached to the router topology, plus the loss model and
// fault rules the transport consults. This is the ModelNet-emulator
// equivalent in our reproduction.
#ifndef FUSE_NET_NETWORK_H_
#define FUSE_NET_NETWORK_H_

#include <cmath>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/fault_injector.h"
#include "net/topology.h"

namespace fuse {

class SimNetwork {
 public:
  explicit SimNetwork(Topology topology) : topology_(std::move(topology)) {}

  // Attaches a new host to a uniformly random router.
  HostId AddHost(Rng& rng);
  // Attaches a new host to a specific router (used to co-locate hosts, the
  // analogue of running several virtual nodes on one cluster machine).
  HostId AddHostAt(RouterId router);

  size_t NumHosts() const { return host_routers_.size(); }
  RouterId RouterOf(HostId h) const { return host_routers_[h.value]; }

  // One-way latency and physical hop count between two hosts.
  Topology::PathInfo GetPath(HostId a, HostId b) const {
    return topology_.GetPath(host_routers_[a.value], host_routers_[b.value]);
  }

  // Uniform per-link packet loss probability (Figure 11/12 experiments).
  void SetPerLinkLossRate(double p) { per_link_loss_ = p; }
  double per_link_loss_rate() const { return per_link_loss_; }

  // Probability that a single packet survives the a->b route.
  double RouteSuccessProbability(HostId a, HostId b) const {
    if (per_link_loss_ <= 0.0) {
      return 1.0;
    }
    return RouteSuccessProbabilityForHops(GetPath(a, b).hops);
  }

  // Same survival model for a pre-resolved hop count (the transport caches
  // per-connection paths). Keep the loss model defined here, in one place.
  double RouteSuccessProbabilityForHops(uint32_t hops) const {
    if (per_link_loss_ <= 0.0) {
      return 1.0;
    }
    return std::pow(1.0 - per_link_loss_, static_cast<double>(hops));
  }

  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }
  const Topology& topology() const { return topology_; }

 private:
  Topology topology_;
  std::vector<RouterId> host_routers_;
  FaultInjector faults_;
  double per_link_loss_ = 0.0;
};

}  // namespace fuse

#endif  // FUSE_NET_NETWORK_H_
