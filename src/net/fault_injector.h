// Host-level fault injection.
//
// The paper's failure model (section 3.5) is fail-stop nodes plus arbitrary
// network failures: "any pattern of packet loss, duplication or re-ordering",
// including partitions and intransitive connectivity (A reaches B, B reaches
// C, A cannot reach C). This module expresses those as queryable rules that
// the transport consults on every delivery attempt.
#ifndef FUSE_NET_FAULT_INJECTOR_H_
#define FUSE_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/serialize.h"

namespace fuse {

class FaultInjector {
 public:
  // Fail-stop crash / full network disconnect of one host (the transport
  // additionally clears that host's connections on crash).
  void SetHostDown(HostId h, bool down);
  bool IsHostDown(HostId h) const { return down_hosts_.contains(h); }

  // Blocks the pair symmetrically (intransitive connectivity failures).
  void BlockPair(HostId a, HostId b);
  void UnblockPair(HostId a, HostId b);

  // Partitions `group` from all other hosts: messages cross the boundary in
  // neither direction. Multiple partitions may be layered; a host may appear
  // in at most one group at a time.
  void PartitionHosts(const std::vector<HostId>& group);
  void ClearPartitions();

  // True if traffic from a to b is currently impossible.
  bool IsBlocked(HostId a, HostId b) const;

  size_t NumDownHosts() const { return down_hosts_.size(); }

  // Wire form of the full rule set, for replicating the rules into worker
  // processes (the process deployment evaluates them sender-side in each
  // worker). Deterministic for a given state (entries are sorted); note the
  // partition group ids themselves are mutation-history-dependent, so two
  // injectors expressing the same reachability may still encode differently.
  void EncodeTo(Writer& w) const;
  // Replaces this rule set with the decoded one. Returns false (leaving the
  // rules in an unspecified but valid state) on a malformed buffer.
  bool DecodeFrom(Reader& r);

 private:
  static uint64_t PairKey(HostId a, HostId b) {
    const uint64_t lo = a.value < b.value ? a.value : b.value;
    const uint64_t hi = a.value < b.value ? b.value : a.value;
    return (lo << 32) ^ hi;
  }

  std::unordered_set<HostId> down_hosts_;
  std::unordered_set<uint64_t> blocked_pairs_;
  // host -> partition group id; hosts in different groups cannot talk.
  std::unordered_map<HostId, uint32_t> partition_of_;
  uint32_t next_partition_id_ = 1;
};

}  // namespace fuse

#endif  // FUSE_NET_FAULT_INJECTOR_H_
