// Host-level fault injection.
//
// The paper's failure model (section 3.5) is fail-stop nodes plus arbitrary
// network failures: "any pattern of packet loss, duplication or re-ordering",
// including partitions and intransitive connectivity (A reaches B, B reaches
// C, A cannot reach C). This module expresses those as queryable rules that
// the transport consults on every delivery attempt.
//
// Rule vocabulary (all independently layered; a message a->b is affected by
// every applicable rule):
//   * down hosts — fail-stop crash (blocks both directions);
//   * blocked pairs — symmetric link failures (intransitive connectivity);
//   * one-way blocks — asymmetric link failures (a reaches b, b cannot
//     reach a);
//   * partitions — group boundaries nothing crosses;
//   * link/host delays — slow-but-alive: extra one-way latency per ordered
//     pair and per host (gray failures that inflate RTTs without killing
//     liveness outright);
//   * clock rates — per-host timer skew (rate 2.0 = the host's timers run
//     twice as fast, so it pings and times out early);
//   * loss bursts — timed rules: extra drop probability for traffic touching
//     a host (or everyone) during [from, until);
//   * reorder jitter — uniform extra per-message delay, which reorders
//     traffic across connections.
#ifndef FUSE_NET_FAULT_INJECTOR_H_
#define FUSE_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/serialize.h"
#include "common/time.h"

namespace fuse {

class FaultInjector {
 public:
  // Fail-stop crash / full network disconnect of one host (the transport
  // additionally clears that host's connections on crash).
  void SetHostDown(HostId h, bool down);
  bool IsHostDown(HostId h) const { return down_hosts_.contains(h); }

  // Blocks the pair symmetrically (intransitive connectivity failures).
  void BlockPair(HostId a, HostId b);
  void UnblockPair(HostId a, HostId b);

  // Blocks traffic from `from` to `to` only (asymmetric connectivity: acks
  // and replies still flow the other way until the protocol gives up).
  void BlockOneWay(HostId from, HostId to);
  void UnblockOneWay(HostId from, HostId to);

  // Partitions `group` from all other hosts: messages cross the boundary in
  // neither direction. Multiple partitions may be layered; a host may appear
  // in at most one group at a time.
  void PartitionHosts(const std::vector<HostId>& group);
  void ClearPartitions();

  // True if traffic from a to b is currently impossible. Directional: a
  // one-way block from b to a does not block a to b.
  bool IsBlocked(HostId a, HostId b) const;

  // --- gray-failure rules (slow-but-alive, skew, bursts, reordering) ---

  // Extra one-way latency for messages from `from` to `to` (zero clears).
  void SetLinkDelay(HostId from, HostId to, Duration extra);
  // Slow-but-alive host: extra latency on every message into or out of `h`
  // (zero clears). Composes additively with link delays.
  void SetHostDelay(HostId h, Duration extra);
  // Total extra one-way latency for a message from a to b.
  Duration ExtraDelay(HostId a, HostId b) const;

  // Host `h`'s timers run at `rate` x nominal speed (1.0 clears). A fast
  // clock (rate > 1) shortens ping periods and timeouts — the classic
  // false-positive-detector gray failure.
  void SetClockRate(HostId h, double rate);
  double ClockRate(HostId h) const;

  // Timed rule: traffic touching `h` (or all traffic when `h` is invalid) is
  // additionally dropped with probability `p` while now is in [from, until).
  void AddLossBurst(HostId h, TimePoint from, TimePoint until, double p);
  void ClearLossBursts();
  // Combined extra drop probability for one a->b attempt at `now`.
  double BurstLossProbability(HostId a, HostId b, TimePoint now) const;
  bool HasLossBursts() const { return !loss_bursts_.empty(); }

  // Uniform extra delay in [0, max] per message touching `h` (invalid = all
  // traffic); zero clears. Delivery order across connections scrambles.
  void SetReorderJitter(HostId h, Duration max);
  // Largest applicable jitter bound for a->b traffic (zero = none).
  Duration ReorderJitterFor(HostId a, HostId b) const;

  size_t NumDownHosts() const { return down_hosts_.size(); }

  // Wire form of the full rule set, for replicating the rules into worker
  // processes (the process deployment evaluates them sender-side in each
  // worker). Deterministic for a given state (entries are sorted); note the
  // partition group ids themselves are mutation-history-dependent, so two
  // injectors expressing the same reachability may still encode differently.
  void EncodeTo(Writer& w) const;
  // Replaces this rule set with the decoded one. Returns false (leaving the
  // rules in an unspecified but valid state) on a malformed buffer.
  bool DecodeFrom(Reader& r);

 private:
  struct LossBurst {
    HostId host;  // invalid = applies to all traffic
    TimePoint from;
    TimePoint until;
    double probability = 0.0;
  };

  static uint64_t PairKey(HostId a, HostId b) {
    const uint64_t lo = a.value < b.value ? a.value : b.value;
    const uint64_t hi = a.value < b.value ? b.value : a.value;
    return (lo << 32) ^ hi;
  }
  // Ordered (directional) pair key; host ids are small sequential values.
  static uint64_t OrderedKey(HostId from, HostId to) {
    return (from.value << 32) | to.value;
  }

  std::unordered_set<HostId> down_hosts_;
  std::unordered_set<uint64_t> blocked_pairs_;
  std::unordered_set<uint64_t> oneway_blocked_;
  // host -> partition group id; hosts in different groups cannot talk.
  std::unordered_map<HostId, uint32_t> partition_of_;
  uint32_t next_partition_id_ = 1;

  std::unordered_map<uint64_t, Duration> link_delay_;  // ordered pair -> extra
  std::unordered_map<HostId, Duration> host_delay_;
  std::unordered_map<HostId, double> clock_rate_;  // absent = 1.0
  std::vector<LossBurst> loss_bursts_;
  std::unordered_map<HostId, Duration> reorder_jitter_;
  Duration global_reorder_jitter_;
};

}  // namespace fuse

#endif  // FUSE_NET_FAULT_INJECTOR_H_
