#include "net/network.h"

namespace fuse {

HostId SimNetwork::AddHost(Rng& rng) { return AddHostAt(topology_.RandomRouter(rng)); }

HostId SimNetwork::AddHostAt(RouterId router) {
  const HostId id(host_routers_.size());
  host_routers_.push_back(router);
  return id;
}

}  // namespace fuse
