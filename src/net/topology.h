// Synthetic wide-area router topology.
//
// The paper evaluates on a Mercator router-level topology (102,639 routers,
// 2,662 ASs) with ModelNet link characteristics: 97% OC3 links (10-40 ms),
// 3% T3 links (300-500 ms). We cannot redistribute Mercator, so this module
// generates a hierarchical AS topology calibrated to the route statistics the
// paper actually reports and depends on:
//   * per-route hop counts between hosts of 2-43 with median ~15
//     (drives the per-route loss rates of Figure 11), and
//   * median RPC round-trip latency ~130 ms with a T3-induced heavy tail
//     (Figure 6).
// Structure: a clique of tier-1 ASs; every stub AS multi-homes to 1-3 tier-1s
// and keeps a few stub-stub peering links. Within an AS, each router sits at a
// sampled depth below the AS core; intra-AS hops have sub-millisecond-to-low-
// millisecond latencies. See DESIGN.md ("Simulated / substituted pieces").
#ifndef FUSE_NET_TOPOLOGY_H_
#define FUSE_NET_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"

namespace fuse {

struct TopologyConfig {
  // AS-level structure.
  int num_as = 600;
  double tier1_fraction = 0.05;
  int min_uplinks = 1;  // stub-to-tier1 links per stub AS
  int max_uplinks = 3;
  double peer_link_fraction = 0.15;  // extra stub-stub links / stub count

  // Link classes (paper section 7.1).
  double t3_fraction = 0.03;
  Duration oc3_latency_min = Duration::Millis(10);
  Duration oc3_latency_max = Duration::Millis(40);
  Duration t3_latency_min = Duration::Millis(300);
  Duration t3_latency_max = Duration::Millis(500);

  // Intra-AS structure: routers hang below the AS core router at a sampled
  // depth; each intra-AS hop contributes a small latency.
  int routers_per_as_min = 8;
  int routers_per_as_max = 64;
  int router_depth_min = 1;
  int router_depth_max = 12;
  Duration intra_hop_latency_min = Duration::Micros(400);
  Duration intra_hop_latency_max = Duration::Micros(1200);
};

class Topology {
 public:
  // Generates a topology; deterministic given the config and RNG state.
  static Topology Generate(const TopologyConfig& config, Rng& rng);

  struct Router {
    uint32_t as_index;
    uint16_t depth;           // intra-AS hops between this router and the AS core
    uint32_t to_core_lat_us;  // summed latency of those hops
  };

  struct PathInfo {
    Duration latency;  // one-way propagation latency
    uint32_t hops;     // number of physical links traversed
  };

  size_t NumRouters() const { return routers_.size(); }
  size_t NumAs() const { return num_as_; }
  size_t NumAsLinks() const { return num_as_links_; }

  const Router& router(RouterId id) const { return routers_[id.value]; }
  RouterId RandomRouter(Rng& rng) const {
    return RouterId(static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(routers_.size()) - 1)));
  }

  // One-way path between two routers (shortest AS-level latency path through
  // the core hierarchy). Same router => a single local hop.
  PathInfo GetPath(RouterId a, RouterId b) const;

  // AS-core to AS-core one-way latency in microseconds (0 for a == b). Used
  // by the sharded simulator's lookahead computation, which needs the
  // AS-level component of GetPath without enumerating router pairs.
  uint32_t AsLatencyUs(uint32_t as_a, uint32_t as_b) const {
    return as_a == as_b ? 0 : as_lat_us_[static_cast<size_t>(as_a) * num_as_ + as_b];
  }

 private:
  Topology() = default;

  void ComputeAsAllPairs(const std::vector<std::vector<std::pair<uint32_t, uint32_t>>>& adj);

  size_t num_as_ = 0;
  size_t num_as_links_ = 0;
  std::vector<Router> routers_;
  // Flattened num_as x num_as tables from the AS-level all-pairs shortest
  // path (by latency); kUnreachable for disconnected pairs (should not occur).
  std::vector<uint32_t> as_lat_us_;
  std::vector<uint16_t> as_hops_;
};

}  // namespace fuse

#endif  // FUSE_NET_TOPOLOGY_H_
