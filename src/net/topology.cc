#include "net/topology.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "common/logging.h"

namespace fuse {
namespace {

constexpr uint32_t kUnreachableLat = std::numeric_limits<uint32_t>::max();

}  // namespace

Topology Topology::Generate(const TopologyConfig& config, Rng& rng) {
  FUSE_CHECK(config.num_as >= 4) << "need at least 4 ASs";
  Topology topo;
  topo.num_as_ = static_cast<size_t>(config.num_as);

  const int num_tier1 = std::max(3, static_cast<int>(config.num_as * config.tier1_fraction));

  // AS-level adjacency: (neighbor, latency_us). Links are symmetric.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> adj(topo.num_as_);
  size_t link_count = 0;
  auto sample_latency = [&](bool t3) -> uint32_t {
    const Duration lo = t3 ? config.t3_latency_min : config.oc3_latency_min;
    const Duration hi = t3 ? config.t3_latency_max : config.oc3_latency_max;
    return static_cast<uint32_t>(rng.UniformInt(lo.ToMicros(), hi.ToMicros()));
  };
  auto add_link = [&](uint32_t a, uint32_t b, bool t3) {
    if (a == b) {
      return;
    }
    for (const auto& [n, _] : adj[a]) {
      if (n == b) {
        return;  // already linked
      }
    }
    const uint32_t lat = sample_latency(t3);
    adj[a].emplace_back(b, lat);
    adj[b].emplace_back(a, lat);
    ++link_count;
  };

  // Tier-1 clique (ASs [0, num_tier1)); backbone links are always fast.
  for (int i = 0; i < num_tier1; ++i) {
    for (int j = i + 1; j < num_tier1; ++j) {
      add_link(static_cast<uint32_t>(i), static_cast<uint32_t>(j), /*t3=*/false);
    }
  }
  // Stub ASs multi-home to tier-1s. A t3_fraction of stubs is "T3-homed":
  // every uplink is a slow T3 line, so shortest-path routing cannot avoid it.
  // (With T3 assigned per link, Dijkstra routes around almost all of them and
  // the paper's heavy latency tail disappears.)
  std::vector<bool> t3_homed_stub(topo.num_as_, false);
  for (int s = num_tier1; s < config.num_as; ++s) {
    const bool t3_homed = rng.Bernoulli(config.t3_fraction);
    t3_homed_stub[static_cast<size_t>(s)] = t3_homed;
    const int uplinks =
        static_cast<int>(rng.UniformInt(config.min_uplinks, config.max_uplinks));
    for (int u = 0; u < uplinks; ++u) {
      const uint32_t t1 = static_cast<uint32_t>(rng.UniformInt(0, num_tier1 - 1));
      add_link(static_cast<uint32_t>(s), t1, t3_homed);
    }
  }
  // Stub-stub peering links among fast stubs only: T3-homed stubs have no
  // escape route, preserving the heavy latency tail the paper measured.
  const int num_stubs = config.num_as - num_tier1;
  const int num_peer_links = static_cast<int>(num_stubs * config.peer_link_fraction);
  for (int i = 0; i < num_peer_links; ++i) {
    const uint32_t a =
        static_cast<uint32_t>(rng.UniformInt(num_tier1, config.num_as - 1));
    const uint32_t b =
        static_cast<uint32_t>(rng.UniformInt(num_tier1, config.num_as - 1));
    if (t3_homed_stub[a] || t3_homed_stub[b]) {
      continue;
    }
    add_link(a, b, /*t3=*/false);
  }
  topo.num_as_links_ = link_count;

  // Routers: each AS gets a pool of routers below its core.
  for (uint32_t as = 0; as < topo.num_as_; ++as) {
    const int n_routers =
        static_cast<int>(rng.UniformInt(config.routers_per_as_min, config.routers_per_as_max));
    for (int r = 0; r < n_routers; ++r) {
      Router router;
      router.as_index = as;
      router.depth =
          static_cast<uint16_t>(rng.UniformInt(config.router_depth_min, config.router_depth_max));
      uint32_t lat = 0;
      for (int d = 0; d < router.depth; ++d) {
        lat += static_cast<uint32_t>(rng.UniformInt(config.intra_hop_latency_min.ToMicros(),
                                                    config.intra_hop_latency_max.ToMicros()));
      }
      router.to_core_lat_us = lat;
      topo.routers_.push_back(router);
    }
  }

  topo.ComputeAsAllPairs(adj);
  return topo;
}

void Topology::ComputeAsAllPairs(
    const std::vector<std::vector<std::pair<uint32_t, uint32_t>>>& adj) {
  const size_t n = num_as_;
  as_lat_us_.assign(n * n, kUnreachableLat);
  as_hops_.assign(n * n, 0);

  // Dijkstra from every AS. The AS graph is small (hundreds to a few
  // thousand nodes), so this is cheap and done once per topology.
  using HeapEntry = std::pair<uint64_t, uint32_t>;  // (dist, as)
  std::vector<uint64_t> dist(n);
  std::vector<uint16_t> hops(n);
  for (uint32_t src = 0; src < n; ++src) {
    std::fill(dist.begin(), dist.end(), std::numeric_limits<uint64_t>::max());
    std::fill(hops.begin(), hops.end(), 0);
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
    dist[src] = 0;
    heap.emplace(0, src);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) {
        continue;
      }
      for (const auto& [v, w] : adj[u]) {
        const uint64_t nd = d + w;
        if (nd < dist[v]) {
          dist[v] = nd;
          hops[v] = static_cast<uint16_t>(hops[u] + 1);
          heap.emplace(nd, v);
        }
      }
    }
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (dist[dst] != std::numeric_limits<uint64_t>::max()) {
        as_lat_us_[src * n + dst] = static_cast<uint32_t>(dist[dst]);
        as_hops_[src * n + dst] = hops[dst];
      }
    }
  }
}

Topology::PathInfo Topology::GetPath(RouterId a, RouterId b) const {
  FUSE_CHECK(a.value < routers_.size() && b.value < routers_.size()) << "bad router id";
  if (a == b) {
    // Co-located endpoints: one local hop.
    return PathInfo{Duration::Micros(200), 1};
  }
  const Router& ra = routers_[a.value];
  const Router& rb = routers_[b.value];
  if (ra.as_index == rb.as_index) {
    // Intra-AS path via the core.
    return PathInfo{Duration::Micros(ra.to_core_lat_us + rb.to_core_lat_us),
                    static_cast<uint32_t>(ra.depth + rb.depth)};
  }
  const size_t idx = static_cast<size_t>(ra.as_index) * num_as_ + rb.as_index;
  const uint32_t as_lat = as_lat_us_[idx];
  FUSE_CHECK(as_lat != kUnreachableLat) << "AS graph must be connected";
  return PathInfo{Duration::Micros(ra.to_core_lat_us + as_lat + rb.to_core_lat_us),
                  static_cast<uint32_t>(ra.depth + as_hops_[idx] + rb.depth)};
}

}  // namespace fuse
