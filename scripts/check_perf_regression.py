#!/usr/bin/env python3
"""Compare fresh bench JSON results against the committed perf baseline.

Usage:
  scripts/check_perf_regression.py [--results-dir bench-results] \
      [--baseline bench-results/BASELINE.json]

Reads every <name>.bench.json in the results directory, finds the matching
entry in the baseline (top-level key = bench binary name), and fails (exit 1)
on a regression beyond the tolerance:

  * higher-is-better metrics (throughput, delivered notifications) may not
    drop by more than the tolerance;
  * lower-is-better metrics (latencies, build time) may not grow by more
    than the tolerance;
  * band metrics (deterministic workload characteristics: simulated event
    and message counts, pending timers) may not drift in either direction —
    a large drift means the workload itself changed and the baseline must be
    re-blessed deliberately.

Tolerances (fractions): FUSE_PERF_TOLERANCE (default 0.20) for metrics that
are deterministic in simulated time, FUSE_PERF_WALL_TOLERANCE (default
0.20) for wall-clock metrics, which track the machine as much as the code —
raise it when comparing across heterogeneous machines, and re-bless the
baseline from the CI artifact when runners change. FUSE_PERF_SKIP_WALL=1
skips wall-clock metrics entirely: use it when the baseline was measured on
different hardware than the fresh results (sim-deterministic metrics still
gate at full strength).

Scale-sweep results ({"results": [...]}) are matched per entry by "nodes".
Metrics present on only one side, and unknown keys, are ignored.
"""

import argparse
import json
import os
import sys

HIGHER_BETTER = {
    "events_per_wall_s",
    "delivered",
    "delivered_notifications",
    "creates_per_wall_s",
    "notify_delivered",
    # Transport fast path: acked messages per wall second, per transport, and
    # how full the UDP coalescing batches run (records per datagram).
    "tcp_msgs_per_wall_s",
    "udp_msgs_per_wall_s",
    "udp_batch_occupancy",
}
LOWER_BETTER = {
    "latency_min_minutes",
    "latency_p50_minutes",
    "latency_p90_minutes",
    "latency_max_minutes",
    "notify_p50_min",
    "notify_max_min",
    # Group fast-path notification latencies are simulated time, so they gate
    # at full strength even on heterogeneous runners.
    "notify_p50_ms",
    "notify_p999_ms",
    "build_wall_s",
    # Transport fast path: I/O syscalls per acked message (the whole point of
    # sendmmsg batching) and RTO-driven resends on a loss-free run.
    "tcp_syscalls_per_msg",
    "udp_syscalls_per_msg",
    "udp_retransmit_rate",
}
BAND = {
    "steady_events",
    "msgs_per_sim_s",
    "pending_timers",
    "avg_neighbors",
    "affected_groups",
    "expected_notifications",
    "groups",
    # Structural O(1)-fast-path gates: per-group memory and armed-timer
    # counts are deterministic workload characteristics — growth in either
    # means per-group state or per-group timers crept back in.
    "bytes_per_group",
    "armed_group_timers",
    "notify_samples",
    "overlay_only_msgs_per_s",
    "with_groups_msgs_per_s",
    "stable300_msgs_per_s",
    "churn_msgs_per_s",
    "churn_fuse_msgs_per_s",
    # messages_total is deliberately NOT a band metric: the committed
    # bench_net_transport baseline is the --smoke run, while a local
    # full-size run writes 4x the messages — both are legitimate.
}
WALL_METRICS = {
    "events_per_wall_s",
    "build_wall_s",
    "creates_per_wall_s",
    # Real-socket throughput, syscall counts, batch fill, and retransmit
    # pressure all track machine load and kernel behavior; the bench binary
    # itself enforces the udp-vs-tcp ratio gate, which is machine-relative.
    "tcp_msgs_per_wall_s",
    "udp_msgs_per_wall_s",
    "tcp_syscalls_per_msg",
    "udp_syscalls_per_msg",
    "udp_batch_occupancy",
    "udp_retransmit_rate",
}


def tolerance_for(metric: str) -> float:
    if metric in WALL_METRICS:
        return float(os.environ.get("FUSE_PERF_WALL_TOLERANCE", "0.20"))
    return float(os.environ.get("FUSE_PERF_TOLERANCE", "0.20"))


def compare_record(name: str, fresh: dict, base: dict, failures: list, checked: list) -> None:
    for metric, base_value in base.items():
        if metric not in fresh or not isinstance(base_value, (int, float)):
            continue
        if isinstance(base_value, bool):
            continue
        fresh_value = fresh[metric]
        if metric in WALL_METRICS and os.environ.get("FUSE_PERF_SKIP_WALL") == "1":
            continue
        tol = tolerance_for(metric)
        if metric in HIGHER_BETTER:
            bad = fresh_value < base_value * (1.0 - tol)
            direction = "dropped"
        elif metric in LOWER_BETTER:
            bad = base_value > 0 and fresh_value > base_value * (1.0 + tol)
            direction = "grew"
        elif metric in BAND:
            bad = base_value > 0 and abs(fresh_value - base_value) > base_value * tol
            direction = "drifted"
        else:
            continue  # informational field
        checked.append(f"{name}:{metric}")
        if bad:
            failures.append(
                f"{name}: {metric} {direction} beyond {tol:.0%}: "
                f"baseline {base_value}, fresh {fresh_value}"
            )


def scale_entries(doc: dict) -> dict:
    return {entry.get("nodes"): entry for entry in doc.get("results", [])}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--results-dir", default="bench-results")
    parser.add_argument("--baseline", default="bench-results/BASELINE.json")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    failures: list = []
    checked: list = []
    compared_any = False
    for filename in sorted(os.listdir(args.results_dir)):
        if not filename.endswith(".bench.json"):
            continue
        name = filename[: -len(".bench.json")]
        if name not in baseline:
            print(f"note: no baseline entry for {name}; skipping")
            continue
        with open(os.path.join(args.results_dir, filename), encoding="utf-8") as f:
            fresh = json.load(f)
        base = baseline[name]
        compared_any = True
        if "results" in base or "results" in fresh:
            base_by_nodes = scale_entries(base)
            for nodes, fresh_entry in scale_entries(fresh).items():
                if nodes in base_by_nodes:
                    compare_record(f"{name}[{nodes} nodes]", fresh_entry,
                                   base_by_nodes[nodes], failures, checked)
        else:
            compare_record(name, fresh, base, failures, checked)

    if not compared_any:
        print("error: no fresh results matched any baseline entry", file=sys.stderr)
        return 2
    print(f"checked {len(checked)} metrics against {args.baseline}")
    if failures:
        print("PERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("perf baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
