#!/usr/bin/env bash
# One-command tier-1 verify: configure, build everything, run the full test
# suite. This is exactly what CI's build-and-test job runs.
#
#   scripts/check.sh            # full suite
#   scripts/check.sh -L tier1   # extra args are passed to ctest
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)" "$@"
