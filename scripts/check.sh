#!/usr/bin/env bash
# One-command tier-1 verify: configure, build everything, run the full test
# suite. This is exactly what CI's build-and-test job runs.
#
#   scripts/check.sh            # full suite
#   scripts/check.sh -L tier1   # extra args are passed to ctest
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"

# The process-backed suites (process-parity, the multi-tenant procN sweep,
# and the 1000-node procscale gate) fork worker processes and drive loopback
# TCP through epoll; skip them gracefully on sandboxes that lack that
# support (non-Linux hosts, or containers where loopback bind is walled off).
extra=()
if [[ "$(uname -s)" != "Linux" ]] || ! [[ -d /proc/sys/fs/epoll ]]; then
  echo "check.sh: no epoll support here; skipping the process-backed labels" >&2
  extra+=(-LE "process-parity|procN|procscale")
fi

# The UDP parity legs assume the datagram fabric's batched-syscall fast path
# is meaningful; on kernels without sendmmsg/recvmmsg (the probe below) the
# fabric still works via the sendto fallback, but the benchmark's syscall
# claims don't hold — skip the Udp-named parity legs and the ratio-gated
# bench there, mirroring the epoll guard above.
if [[ -x build/bench/bench_net_transport ]] \
    && ! build/bench/bench_net_transport --probe-sendmmsg >/dev/null; then
  echo "check.sh: no sendmmsg support here; skipping UDP parity legs" >&2
  extra+=(-E "Udp|bench_net_transport")
fi

ctest --test-dir build --output-on-failure -j"$(nproc)" "${extra[@]}" "$@"

# Always-on fuzz smoke: a short deterministic fault-schedule sweep through
# the fuzzer binary itself (tier-1's fuzz_test covers the library; the
# nightly lane runs the long, date-seeded sweep). Failing schedules are
# shrunk and written to build/ as self-contained repro files.
./build/src/fuzz_schedules --schedules 50 --seed 1 --quiet --repro-dir build

# Sharded-determinism cross-check: the same schedules on the sharded parallel
# backend must produce byte-identical per-schedule log lines at 1 and 2
# worker threads (the tier-1 determinism tests cover 1/2/8 at trace level;
# this catches a thread-count dependency in the full fuzzer pipeline too).
./build/src/fuzz_schedules --schedules 10 --seed 1 --repro-dir build \
  --shards 4 --threads 1 > build/fuzz_sharded_t1.log
./build/src/fuzz_schedules --schedules 10 --seed 1 --repro-dir build \
  --shards 4 --threads 2 > build/fuzz_sharded_t2.log
if ! diff -u build/fuzz_sharded_t1.log build/fuzz_sharded_t2.log; then
  echo "check.sh: sharded fuzz sweep diverged between 1 and 2 worker threads" >&2
  exit 1
fi
