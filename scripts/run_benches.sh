#!/usr/bin/env bash
# Runs the paper-figure benchmarks and tees each one's output into
# bench-results/<name>.txt so successive runs can be diffed for perf
# regressions (ROADMAP: perf baselining of Fig. 9/10).
#
#   scripts/run_benches.sh                 # all figure benches
#   scripts/run_benches.sh fig09 fig10     # only benches matching a pattern
#   scripts/run_benches.sh --json fig09    # also collect machine-readable
#                                          # results into BENCH_scale.json
#
# With --json, benches that support it (fig09, scale_10k) additionally write
# <name>.bench.json, and everything collected is merged into
# bench-results/BENCH_scale.json — the artifact CI uploads as the perf
# baseline (regression comparison against a stored baseline can land later).
set -euo pipefail
cd "$(dirname "$0")/.."

emit_json=0
patterns=()
for arg in "$@"; do
  if [[ ${arg} == "--json" ]]; then
    emit_json=1
  else
    patterns+=("${arg}")
  fi
done

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" >/dev/null

mkdir -p bench-results
if [[ ${emit_json} -eq 1 ]]; then
  # Stale per-bench JSON from earlier runs must not leak into the merged
  # baseline artifact.
  rm -f bench-results/*.bench.json
fi
json_capable=" bench_fig09_crash_notification bench_fig10_churn_load bench_net_transport bench_scale_10k bench_scale_100k "
shopt -s nullglob
for bin in build/bench/bench_*; do
  [[ -x ${bin} ]] || continue
  name=$(basename "${bin}")
  if [[ ${#patterns[@]} -gt 0 ]]; then
    keep=0
    for pat in "${patterns[@]}"; do
      [[ ${name} == *"${pat}"* ]] && keep=1
    done
    [[ ${keep} -eq 1 ]] || continue
  fi
  echo "=== ${name} ==="
  extra_args=()
  if [[ ${emit_json} -eq 1 && ${json_capable} == *" ${name} "* ]]; then
    extra_args=(--json "bench-results/${name}.bench.json")
  fi
  "${bin}" ${extra_args[@]+"${extra_args[@]}"} | tee "bench-results/${name}.txt"
done

if [[ ${emit_json} -eq 1 ]]; then
  out=bench-results/BENCH_scale.json
  {
    echo '{'
    first=1
    for f in bench-results/*.bench.json; do
      name=$(basename "${f}" .bench.json)
      [[ ${first} -eq 0 ]] && echo ','
      first=0
      printf '"%s":\n' "${name}"
      cat "${f}"
    done
    echo '}'
  } > "${out}"
  echo "wrote ${out}"
fi
