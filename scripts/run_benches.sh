#!/usr/bin/env bash
# Runs the paper-figure benchmarks and tees each one's output into
# bench-results/<name>.txt so successive runs can be diffed for perf
# regressions (ROADMAP: perf baselining of Fig. 9/10).
#
#   scripts/run_benches.sh                 # all figure benches
#   scripts/run_benches.sh fig09 fig10     # only benches matching a pattern
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" >/dev/null

mkdir -p bench-results
shopt -s nullglob
for bin in build/bench/bench_*; do
  [[ -x ${bin} ]] || continue
  name=$(basename "${bin}")
  if [[ $# -gt 0 ]]; then
    keep=0
    for pat in "$@"; do
      [[ ${name} == *"${pat}"* ]] && keep=1
    done
    [[ ${keep} -eq 1 ]] || continue
  fi
  echo "=== ${name} ==="
  "${bin}" | tee "bench-results/${name}.txt"
done
