// Tests for the RPC layer: request/response, timeouts, transport failures.
#include <gtest/gtest.h>

#include "net/network.h"
#include "rpc/rpc.h"
#include "sim/simulation.h"
#include "transport/tcp_model.h"

namespace fuse {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TopologyConfig cfg;
    cfg.num_as = 40;
    sim_ = std::make_unique<Simulation>(23);
    net_ = std::make_unique<SimNetwork>(Topology::Generate(cfg, sim_->rng()));
    a_ = net_->AddHost(sim_->rng());
    b_ = net_->AddHost(sim_->rng());
    fabric_ = std::make_unique<SimFabric>(*sim_, *net_, CostModel::Simulator());
    rpc_a_ = std::make_unique<RpcNode>(fabric_->TransportFor(a_));
    rpc_b_ = std::make_unique<RpcNode>(fabric_->TransportFor(b_));
  }

  std::unique_ptr<Simulation> sim_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SimFabric> fabric_;
  HostId a_, b_;
  std::unique_ptr<RpcNode> rpc_a_, rpc_b_;
};

TEST_F(RpcTest, CallRoundTrip) {
  rpc_b_->Handle(100, [](HostId caller, const std::vector<uint8_t>& req) {
    EXPECT_EQ(req, (std::vector<uint8_t>{5, 6}));
    (void)caller;
    return std::vector<uint8_t>{7, 8, 9};
  });
  Status status = Status::Failed("pending");
  std::vector<uint8_t> reply;
  rpc_a_->Call(b_, 100, {5, 6}, Duration::Seconds(10),
               [&](const Status& s, const std::vector<uint8_t>& r) {
                 status = s;
                 reply = r;
               });
  sim_->RunFor(Duration::Seconds(10));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(reply, (std::vector<uint8_t>{7, 8, 9}));
  EXPECT_EQ(rpc_a_->PendingCalls(), 0u);
}

TEST_F(RpcTest, TimeoutWhenNoServer) {
  // b_ has no handler for method 42: the server replies "no such method".
  Status status;
  rpc_a_->Call(b_, 42, {}, Duration::Seconds(5),
               [&](const Status& s, const std::vector<uint8_t>&) { status = s; });
  sim_->RunFor(Duration::Seconds(10));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, TimeoutWhenHostUnreachable) {
  net_->faults().SetHostDown(b_, true);
  Status status = Status::Ok();
  rpc_a_->Call(b_, 100, {}, Duration::Seconds(5),
               [&](const Status& s, const std::vector<uint8_t>&) { status = s; });
  sim_->RunFor(Duration::Minutes(2));
  EXPECT_FALSE(status.ok());
}

TEST_F(RpcTest, CallbackFiresExactlyOnce) {
  rpc_b_->Handle(100, [](HostId, const std::vector<uint8_t>&) {
    return std::vector<uint8_t>{1};
  });
  int fires = 0;
  // Tiny timeout: the timeout races the reply; only one should win.
  rpc_a_->Call(b_, 100, {}, Duration::Millis(1),
               [&](const Status&, const std::vector<uint8_t>&) { ++fires; });
  sim_->RunFor(Duration::Seconds(10));
  EXPECT_EQ(fires, 1);
}

TEST_F(RpcTest, ConcurrentCallsCorrelate) {
  rpc_b_->Handle(1, [](HostId, const std::vector<uint8_t>& req) {
    auto r = req;
    r.push_back(1);
    return r;
  });
  rpc_b_->Handle(2, [](HostId, const std::vector<uint8_t>& req) {
    auto r = req;
    r.push_back(2);
    return r;
  });
  std::vector<std::vector<uint8_t>> replies(10);
  int done = 0;
  for (uint8_t i = 0; i < 10; ++i) {
    rpc_a_->Call(b_, (i % 2) ? 1 : 2, {i}, Duration::Seconds(30),
                 [&, i](const Status& s, const std::vector<uint8_t>& r) {
                   ASSERT_TRUE(s.ok());
                   replies[i] = r;
                   ++done;
                 });
  }
  sim_->RunFor(Duration::Minutes(1));
  EXPECT_EQ(done, 10);
  for (uint8_t i = 0; i < 10; ++i) {
    ASSERT_EQ(replies[i].size(), 2u);
    EXPECT_EQ(replies[i][0], i);
    EXPECT_EQ(replies[i][1], (i % 2) ? 1 : 2);
  }
}

}  // namespace
}  // namespace fuse
