// Sim ↔ live ↔ process parity: the backend-parameterized fault schedules
// from runtime/scenario.h — the same definitions property_test.cc runs on
// the discrete-event simulator and live_parity_test.cc runs on the threaded
// in-process runtime — executed against ProcessCluster, where every node is
// its own OS process, messages are length-prefixed frames over loopback TCP,
// and a crash is a real SIGKILL. These run as the `process-parity` ctest
// label (gated in CI's main job and TSan job); scripts/check.sh skips the
// label on sandboxes without epoll/fork support.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "runtime/process_cluster.h"
#include "runtime/scenario.h"

#if defined(__linux__)

namespace fuse {
namespace {

ScenarioOptions ProcessOptions(uint64_t seed) {
  ScenarioOptions opts;
  opts.seed = seed;
  // Same shape as the live-parity runs: the point is cross-process coverage
  // per wall-clock second, not schedule breadth.
  opts.num_groups = 3;
  opts.min_group_size = 2;
  opts.max_group_size = 4;
  opts.timing = ScenarioTiming::Live();
  return opts;
}

// Parameterized over (scenario, transport): the same schedules run over
// loopback TCP frames and over the coalescing UDP datagram fabric, where a
// SIGKILLed worker is observed as silence + retransmit exhaustion rather
// than a broken connection. CI selects the UDP leg by test name (-R Udp).
class ProcessParityScenario
    : public ::testing::TestWithParam<std::tuple<ScenarioKind, TransportKind>> {};

TEST_P(ProcessParityScenario, AgreementHoldsAcrossOsProcesses) {
  const ScenarioKind kind = std::get<0>(GetParam());
  const TransportKind transport = std::get<1>(GetParam());
  // ChurnDuringCreate draws groups from the stable lower index half (and
  // SIGKILL/refork-cycles the upper half), so it needs headroom over
  // max_group_size.
  const int num_nodes = kind == ScenarioKind::kChurnDuringCreate ? 12 : 8;
  ProcessClusterConfig cfg = ProcessClusterConfig::FastProtocol(num_nodes, /*seed=*/42);
  cfg.transport = transport;
  ProcessCluster cluster(cfg);
  cluster.Build();
  const ScenarioResult result = RunAgreementScenario(cluster, kind, ProcessOptions(42));
  EXPECT_TRUE(result.ok()) << ScenarioKindName(kind) << " process: " << result.ToString();
  // A skipped target (all retried creates definitely failed under churn) is
  // a legal vacuous outcome on a nondeterministic backend; anything else
  // must have exercised the notification path.
  if (!result.target_skipped) {
    EXPECT_GE(result.notified, 1) << "scenario did not exercise the notification path";
  }

  // Transport accounting, summed across the surviving workers. Beyond the
  // report (visible with --gtest_also_run_disabled_tests-style verbosity via
  // ctest -V), assert the counters are live: every run moves real traffic.
  const std::map<std::string, uint64_t> counters = cluster.TransportCounters();
  std::string report;
  for (const auto& [name, value] : counters) {
    report += "  " + name + " = " + std::to_string(value) + "\n";
  }
  SCOPED_TRACE("transport counters:\n" + report);
  ASSERT_TRUE(counters.contains("transport_send_syscalls"));
  EXPECT_GT(counters.at("transport_send_syscalls"), 0u);
  EXPECT_GT(counters.at("transport_recv_syscalls"), 0u);
  if (transport == TransportKind::kUdp) {
    // The datagram fabric must actually be the one moving traffic. (No
    // records >= datagrams invariant: ack-only datagrams count toward
    // datagrams_sent but carry no data records.)
    EXPECT_GT(counters.at("transport_datagrams_sent"), 0u);
    EXPECT_GT(counters.at("transport_records_sent"), 0u);
  } else {
    EXPECT_EQ(counters.at("transport_datagrams_sent"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ProcessParityScenario,
    // kMachineFailure under the default one-node-per-worker placement: every
    // machine is a singleton, so the machine loss is one genuine SIGKILL —
    // the degenerate end of the placement spectrum (process_multinode_test.cc
    // covers the multi-tenant end).
    ::testing::Combine(::testing::Values(ScenarioKind::kCrashMember,
                                         ScenarioKind::kPartitionHeal,
                                         ScenarioKind::kChurnDuringCreate,
                                         ScenarioKind::kMachineFailure),
                       ::testing::Values(TransportKind::kTcp, TransportKind::kUdp)),
    [](const ::testing::TestParamInfo<std::tuple<ScenarioKind, TransportKind>>& pinfo) {
      std::string name = ScenarioKindName(std::get<0>(pinfo.param));
      if (std::get<1>(pinfo.param) == TransportKind::kUdp) {
        name += "Udp";
      }
      return name;
    });

// Crash/restart round trip at the deployment level: SIGKILL one worker, fork
// a fresh incarnation, and verify it rejoins the overlay (new port, new
// numeric id, re-advertised address map) well within the restart bound.
TEST(ProcessClusterLifecycle, SigkillThenRestartRejoins) {
  ProcessCluster cluster(ProcessClusterConfig::FastProtocol(6, /*seed=*/7));
  cluster.Build();
  bool joined0 = false;
  cluster.Run([&] { joined0 = cluster.IsJoined(3); });
  ASSERT_TRUE(joined0);

  cluster.Crash(3);
  bool up_now = true;
  bool joined_now = true;
  cluster.Run([&] {
    up_now = cluster.IsUp(3);
    joined_now = cluster.IsJoined(3);
  });
  EXPECT_FALSE(up_now);
  EXPECT_FALSE(joined_now);

  // No down-window: the fresh incarnation restarts immediately. The join
  // path is incarnation-aware — a hop that would route the join search to
  // the joiner's own (stale, dead) table entry evicts it and routes around —
  // so survivors need not notice the crash first.
  cluster.Restart(3);
  bool joined = false;
  cluster.Run([&] { joined = cluster.IsJoined(3); });
  EXPECT_TRUE(joined) << "restarted worker did not rejoin the overlay";
}

}  // namespace
}  // namespace fuse

#endif  // defined(__linux__)
