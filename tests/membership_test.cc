// Tests for the SWIM membership baseline and the heartbeat detector,
// including the intransitive-connectivity scenario the paper argues
// membership services handle poorly (section 2).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "membership/heartbeat_detector.h"
#include "membership/swim.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "transport/tcp_model.h"

namespace fuse {
namespace {

class SwimFixture : public ::testing::Test {
 protected:
  void Init(int n, uint64_t seed) {
    TopologyConfig cfg;
    cfg.num_as = 50;
    sim_ = std::make_unique<Simulation>(seed);
    net_ = std::make_unique<SimNetwork>(Topology::Generate(cfg, sim_->rng()));
    fabric_ = std::make_unique<SimFabric>(*sim_, *net_, CostModel::Simulator());
    for (int i = 0; i < n; ++i) {
      hosts_.push_back(net_->AddHost(sim_->rng()));
    }
    for (int i = 0; i < n; ++i) {
      members_.push_back(std::make_unique<SwimMember>(fabric_->TransportFor(hosts_[i])));
    }
    for (auto& m : members_) {
      m->Start(hosts_);
    }
  }

  std::unique_ptr<Simulation> sim_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SimFabric> fabric_;
  std::vector<HostId> hosts_;
  std::vector<std::unique_ptr<SwimMember>> members_;
};

TEST_F(SwimFixture, StablePopulationStaysAlive) {
  Init(16, 301);
  sim_->RunFor(Duration::Minutes(5));
  for (size_t i = 0; i < members_.size(); ++i) {
    EXPECT_EQ(members_[i]->NumDead(), 0u) << "node " << i << " sees false deaths";
  }
}

TEST_F(SwimFixture, CrashedNodeDeclaredDeadEverywhere) {
  Init(16, 302);
  sim_->RunFor(Duration::Minutes(1));
  fabric_->CrashHost(hosts_[5]);
  members_[5]->Stop();
  sim_->RunFor(Duration::Minutes(5));
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i == 5) {
      continue;
    }
    EXPECT_EQ(members_[i]->StateOf(hosts_[5]), SwimMember::State::kDead)
        << "node " << i << " has not learned of the death";
  }
}

TEST_F(SwimFixture, GossipDisseminatesWithoutDirectObservation) {
  Init(24, 303);
  sim_->RunFor(Duration::Minutes(1));
  fabric_->CrashHost(hosts_[3]);
  members_[3]->Stop();
  sim_->RunFor(Duration::Minutes(6));
  // Every node learns, though only a few probed the dead node directly.
  size_t knowing = 0;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i != 3 && members_[i]->StateOf(hosts_[3]) == SwimMember::State::kDead) {
      ++knowing;
    }
  }
  EXPECT_EQ(knowing, members_.size() - 1);
}

TEST_F(SwimFixture, IntransitiveFailureForcesBadChoice) {
  // The section-2 dilemma: A cannot reach B, but everyone else can reach
  // both. SWIM's indirect probes mask the problem (both stay alive), which
  // means A is stuck with a peer it cannot actually use — exactly the case
  // where FUSE lets the *application* fail the affected group only.
  Init(12, 304);
  sim_->RunFor(Duration::Minutes(1));
  net_->faults().BlockPair(hosts_[0], hosts_[1]);
  sim_->RunFor(Duration::Minutes(10));
  // Indirect probing keeps both alive in the global view.
  size_t draws_dead = 0;
  for (size_t i = 2; i < members_.size(); ++i) {
    if (members_[i]->StateOf(hosts_[0]) == SwimMember::State::kDead ||
        members_[i]->StateOf(hosts_[1]) == SwimMember::State::kDead) {
      ++draws_dead;
    }
  }
  EXPECT_EQ(draws_dead, 0u) << "third parties should keep both reachable nodes alive";
  // ... and node 0 also keeps node 1 alive despite being unable to talk to
  // it: the membership abstraction gives it no usable signal.
  EXPECT_NE(members_[0]->StateOf(hosts_[1]), SwimMember::State::kDead);
}

TEST(HeartbeatTest, DetectsCrashAndRecovery) {
  TopologyConfig cfg;
  cfg.num_as = 40;
  Simulation sim(305);
  SimNetwork net{Topology::Generate(cfg, sim.rng())};
  SimFabric fabric(sim, net, CostModel::Simulator());
  std::vector<HostId> hosts;
  for (int i = 0; i < 6; ++i) {
    hosts.push_back(net.AddHost(sim.rng()));
  }
  std::vector<std::unique_ptr<HeartbeatDetector>> detectors;
  for (int i = 0; i < 6; ++i) {
    detectors.push_back(std::make_unique<HeartbeatDetector>(fabric.TransportFor(hosts[i])));
    detectors.back()->Start(hosts);
  }
  sim.RunFor(Duration::Minutes(1));
  EXPECT_EQ(detectors[0]->NumUp(), 5u);

  int down_events = 0;
  detectors[0]->SetStatusHandler([&](HostId, bool up) {
    if (!up) {
      ++down_events;
    }
  });
  fabric.CrashHost(hosts[4]);
  detectors[4]->Stop();
  sim.RunFor(Duration::Minutes(2));
  EXPECT_FALSE(detectors[0]->IsUp(hosts[4]));
  EXPECT_EQ(down_events, 1);

  // Recovery: heartbeats resume (the detector object is restarted).
  fabric.RestartHost(hosts[4]);
  detectors[4] = std::make_unique<HeartbeatDetector>(fabric.TransportFor(hosts[4]));
  detectors[4]->Start(hosts);
  sim.RunFor(Duration::Minutes(2));
  EXPECT_TRUE(detectors[0]->IsUp(hosts[4]));
}

}  // namespace
}  // namespace fuse
