// Unit tests for the discrete event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace fuse {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(TimePoint::FromMicros(300), [&] { order.push_back(3); });
  q.ScheduleAt(TimePoint::FromMicros(100), [&] { order.push_back(1); });
  q.ScheduleAt(TimePoint::FromMicros(200), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now().ToMicros(), 300);
}

TEST(EventQueueTest, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(TimePoint::FromMicros(50), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, ScheduleAfter) {
  EventQueue q;
  bool fired = false;
  q.ScheduleAfter(Duration::Millis(5), [&] { fired = true; });
  q.RunUntil(TimePoint::FromMicros(4999));
  EXPECT_FALSE(fired);
  q.RunUntil(TimePoint::FromMicros(5000));
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const TimerId id = q.ScheduleAfter(Duration::Millis(1), [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double cancel
  q.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelInvalidId) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(TimerId()));
  EXPECT_FALSE(q.Cancel(TimerId(999)));
}

TEST(EventQueueTest, EventsScheduledFromEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      q.ScheduleAfter(Duration::Millis(1), chain);
    }
  };
  q.ScheduleAfter(Duration::Millis(1), chain);
  q.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.Now().ToMicros(), 5000);
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue q;
  q.RunUntil(TimePoint::FromMicros(1000));
  bool fired = false;
  q.ScheduleAt(TimePoint::FromMicros(10), [&] { fired = true; });
  q.RunOne();
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.Now().ToMicros(), 1000);  // did not go backwards
}

TEST(EventQueueTest, RunAllHonorsLimit) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAfter(Duration::Micros(i), [&] { ++count; });
  }
  EXPECT_EQ(q.RunAll(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.PendingCount(), 7u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.RunUntil(TimePoint::FromMicros(123456));
  EXPECT_EQ(q.Now().ToMicros(), 123456);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    std::vector<uint64_t> draws;
    for (int i = 0; i < 5; ++i) {
      sim.Schedule(Duration::Millis(i), [&] { draws.push_back(sim.rng().NextU64()); });
    }
    sim.RunAll();
    return draws;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(SimulationTest, RunUntilCondition) {
  Simulation sim(1);
  int x = 0;
  sim.Schedule(Duration::Seconds(1), [&] { x = 1; });
  sim.Schedule(Duration::Seconds(2), [&] { x = 2; });
  EXPECT_TRUE(sim.RunUntilCondition([&] { return x == 1; }, TimePoint::Max()));
  EXPECT_EQ(x, 1);
  // Condition never satisfied: stops at deadline.
  EXPECT_FALSE(
      sim.RunUntilCondition([&] { return x == 99; }, sim.Now() + Duration::Seconds(10)));
  EXPECT_EQ(x, 2);
}

TEST(SimulationTest, MetricsAccessible) {
  Simulation sim(1);
  sim.metrics().IncMessage(MsgCategory::kApp, 10);
  EXPECT_EQ(sim.metrics().TotalMessages(), 1u);
}

}  // namespace
}  // namespace fuse
