// Unit tests for the discrete event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "sim/timer.h"

namespace fuse {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(TimePoint::FromMicros(300), [&] { order.push_back(3); });
  q.ScheduleAt(TimePoint::FromMicros(100), [&] { order.push_back(1); });
  q.ScheduleAt(TimePoint::FromMicros(200), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now().ToMicros(), 300);
}

TEST(EventQueueTest, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(TimePoint::FromMicros(50), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, ScheduleAfter) {
  EventQueue q;
  bool fired = false;
  q.ScheduleAfter(Duration::Millis(5), [&] { fired = true; });
  q.RunUntil(TimePoint::FromMicros(4999));
  EXPECT_FALSE(fired);
  q.RunUntil(TimePoint::FromMicros(5000));
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const TimerId id = q.ScheduleAfter(Duration::Millis(1), [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double cancel
  q.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelInvalidId) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(TimerId()));
  EXPECT_FALSE(q.Cancel(TimerId(999)));
}

TEST(EventQueueTest, EventsScheduledFromEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      q.ScheduleAfter(Duration::Millis(1), chain);
    }
  };
  q.ScheduleAfter(Duration::Millis(1), chain);
  q.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.Now().ToMicros(), 5000);
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue q;
  q.RunUntil(TimePoint::FromMicros(1000));
  bool fired = false;
  q.ScheduleAt(TimePoint::FromMicros(10), [&] { fired = true; });
  q.RunOne();
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.Now().ToMicros(), 1000);  // did not go backwards
}

TEST(EventQueueTest, RunAllHonorsLimit) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAfter(Duration::Micros(i), [&] { ++count; });
  }
  EXPECT_EQ(q.RunAll(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.PendingCount(), 7u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.RunUntil(TimePoint::FromMicros(123456));
  EXPECT_EQ(q.Now().ToMicros(), 123456);
}

TEST(EventQueueTest, CancelAfterFireDoesNotCorruptCounts) {
  // Regression: the old lazy-cancel core decremented live_count_ when
  // cancelling an id whose event had already executed — corrupting Empty()
  // and PendingCount() — and left a tombstone in the cancelled set forever.
  EventQueue q;
  bool fired = false;
  const TimerId early = q.ScheduleAfter(Duration::Millis(1), [&] { fired = true; });
  q.ScheduleAfter(Duration::Millis(10), [] {});
  EXPECT_EQ(q.RunAll(1), 1u);
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_FALSE(q.Cancel(early));     // already ran: must be rejected...
  EXPECT_EQ(q.PendingCount(), 1u);   // ...without touching the live count
  EXPECT_FALSE(q.Empty());
  EXPECT_FALSE(q.Cancel(early));     // idempotently
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.PendingCount(), 0u);
}

TEST(EventQueueTest, StaleIdCannotCancelRecycledEntry) {
  // After an event fires (or is cancelled) its pool entry is recycled; the
  // old TimerId must not be able to cancel the entry's next occupant.
  EventQueue q;
  const TimerId old_id = q.ScheduleAfter(Duration::Millis(1), [] {});
  q.RunAll();
  bool fired = false;
  q.ScheduleAfter(Duration::Millis(1), [&] { fired = true; });  // reuses the pool slot
  EXPECT_FALSE(q.Cancel(old_id));
  q.RunAll();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, FarFutureEventsFireInOrder) {
  // Spans every wheel level plus the overflow heap: ~1 ms (level 0), ~70 s
  // (beyond level 1), ~2 h (level 2), ~3 days (overflow).
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(TimePoint::FromMicros(int64_t{3} * 24 * 3600 * 1000000), [&] { order.push_back(4); });
  q.ScheduleAt(TimePoint::FromMicros(int64_t{2} * 3600 * 1000000), [&] { order.push_back(3); });
  q.ScheduleAt(TimePoint::FromMicros(70 * 1000000), [&] { order.push_back(2); });
  q.ScheduleAt(TimePoint::FromMicros(1000), [&] { order.push_back(1); });
  EXPECT_EQ(q.RunAll(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.Now().ToMicros(), int64_t{3} * 24 * 3600 * 1000000);
}

TEST(EventQueueTest, CancelFarFutureEmptiesQueue) {
  EventQueue q;
  const TimerId near = q.ScheduleAfter(Duration::Millis(1), [] {});
  const TimerId mid = q.ScheduleAfter(Duration::Minutes(10), [] {});
  const TimerId far = q.ScheduleAfter(Duration::Minutes(int64_t{3} * 24 * 60), [] {});
  EXPECT_EQ(q.PendingCount(), 3u);
  EXPECT_TRUE(q.Cancel(mid));
  EXPECT_TRUE(q.Cancel(far));
  EXPECT_TRUE(q.Cancel(near));
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.RunAll(), 0u);
}

TEST(EventQueueTest, CancelFromWithinCallback) {
  EventQueue q;
  bool second_fired = false;
  TimerId second;
  q.ScheduleAfter(Duration::Millis(1), [&] { EXPECT_TRUE(q.Cancel(second)); });
  second = q.ScheduleAfter(Duration::Millis(2), [&] { second_fired = true; });
  q.RunAll();
  EXPECT_FALSE(second_fired);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, SameTimeOrderSurvivesLevelPromotion) {
  // Two events at the same far-future instant, scheduled in a known order,
  // must still fire in that order after cascading down through the wheel
  // levels to level 0.
  EventQueue q;
  std::vector<int> order;
  const TimePoint t = TimePoint::FromMicros(90 * 1000000);
  q.ScheduleAt(t, [&] { order.push_back(1); });
  q.ScheduleAt(t, [&] { order.push_back(2); });
  q.ScheduleAt(t, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerTest, FiresOnceAndAutoCancelsOnDestruction) {
  Simulation sim(1);
  int fires = 0;
  {
    Timer t(sim);
    t.Start(Duration::Millis(5), [&] { ++fires; });
    EXPECT_TRUE(t.pending());
    sim.RunFor(Duration::Millis(10));
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(t.pending());
    t.Restart(Duration::Millis(5));  // rearm with the stored callback
    EXPECT_TRUE(t.pending());
  }  // destroyed while armed: must not fire
  sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(fires, 1);
}

TEST(TimerTest, RestartPushesDeadlineOut) {
  Simulation sim(1);
  int fires = 0;
  Timer t(sim);
  t.Start(Duration::Millis(10), [&] { ++fires; });
  sim.RunFor(Duration::Millis(8));
  t.Restart(Duration::Millis(10));  // the old deadline must not fire
  sim.RunFor(Duration::Millis(8));
  EXPECT_EQ(fires, 0);
  sim.RunFor(Duration::Millis(5));
  EXPECT_EQ(fires, 1);
}

TEST(TimerTest, CancelPreventsFire) {
  Simulation sim(1);
  int fires = 0;
  Timer t(sim);
  t.Start(Duration::Millis(1), [&] { ++fires; });
  EXPECT_TRUE(t.Cancel());
  EXPECT_FALSE(t.Cancel());  // already disarmed
  sim.RunFor(Duration::Millis(10));
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, MoveKeepsArmedTimerWorking) {
  Simulation sim(1);
  int fires = 0;
  std::vector<Timer> timers;
  timers.emplace_back(sim);
  timers.back().Start(Duration::Millis(5), [&] { ++fires; });
  // Force relocation of the armed handle (as containers do).
  for (int i = 0; i < 16; ++i) {
    timers.emplace_back(sim);
  }
  sim.RunFor(Duration::Millis(10));
  EXPECT_EQ(fires, 1);
}

TEST(TimerTest, SelfRearmViaStart) {
  Simulation sim(1);
  int fires = 0;
  Timer t(sim);
  std::function<void()> tick = [&] {
    if (++fires < 3) {
      t.Start(Duration::Millis(1), tick);
    }
  };
  t.Start(Duration::Millis(1), tick);
  sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimerTest, FiresEveryPeriodFromPhase) {
  Simulation sim(1);
  std::vector<int64_t> fire_times;
  PeriodicTimer t(sim);
  t.Start(Duration::Millis(3), Duration::Millis(10),
          [&] { fire_times.push_back(sim.Now().ToMicros()); });
  EXPECT_TRUE(t.running());
  sim.RunFor(Duration::Millis(35));
  EXPECT_EQ(fire_times, (std::vector<int64_t>{3000, 13000, 23000, 33000}));
  t.Stop();
  EXPECT_FALSE(t.running());
  sim.RunFor(Duration::Millis(50));
  EXPECT_EQ(fire_times.size(), 4u);
}

TEST(PeriodicTimerTest, StopInsideCallbackEndsCycle) {
  Simulation sim(1);
  int fires = 0;
  PeriodicTimer t(sim);
  t.Start(Duration::Millis(1), [&] {
    if (++fires == 2) {
      t.Stop();
    }
  });
  sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimerTest, DestructionStopsCycle) {
  Simulation sim(1);
  int fires = 0;
  {
    PeriodicTimer t(sim);
    t.Start(Duration::Millis(1), [&] { ++fires; });
    sim.RunFor(Duration::MillisF(2.5));
    EXPECT_EQ(fires, 2);
  }
  sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(fires, 2);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    std::vector<uint64_t> draws;
    for (int i = 0; i < 5; ++i) {
      sim.Schedule(Duration::Millis(i), [&] { draws.push_back(sim.rng().NextU64()); });
    }
    sim.RunAll();
    return draws;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(SimulationTest, RunUntilCondition) {
  Simulation sim(1);
  int x = 0;
  sim.Schedule(Duration::Seconds(1), [&] { x = 1; });
  sim.Schedule(Duration::Seconds(2), [&] { x = 2; });
  EXPECT_TRUE(sim.RunUntilCondition([&] { return x == 1; }, TimePoint::Max()));
  EXPECT_EQ(x, 1);
  // Condition never satisfied: stops at deadline.
  EXPECT_FALSE(
      sim.RunUntilCondition([&] { return x == 99; }, sim.Now() + Duration::Seconds(10)));
  EXPECT_EQ(x, 2);
}

TEST(SimulationTest, MetricsAccessible) {
  Simulation sim(1);
  sim.metrics().IncMessage(MsgCategory::kApp, 10);
  EXPECT_EQ(sim.metrics().TotalMessages(), 1u);
}

}  // namespace
}  // namespace fuse
