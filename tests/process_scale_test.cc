// Scale leg of the multi-tenant placement work (`procscale` ctest label,
// RUN_SERIAL): 1000 nodes packed onto 16 worker processes — 16 epoll loops
// and 16 fabric listeners, not 1000 processes — driven through the same
// harness/scenario definitions as every other backend. The protocol
// constants are slowed well below the FastProtocol preset: a thousand
// wall-clock protocol stacks share one box with the controller, so the
// background load (pings, leaf exchanges) must fit the machine while
// failure detection still completes within the widened analytic bounds.
//
// The scenario is kMachineFailure: one SIGKILL takes out a worker hosting
// ~63 nodes at once, every group spanning it must notify each live member
// exactly once, and machine-disjoint groups must stay silent — on both the
// framed-TCP and coalescing-UDP fabrics.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "runtime/process_cluster.h"
#include "runtime/scenario.h"

#if defined(__linux__)

namespace fuse {
namespace {

constexpr int kNodes = 1000;
constexpr int kWorkers = 16;

ProcessClusterConfig ScaleConfig(TransportKind transport) {
  ProcessClusterConfig cfg = ProcessClusterConfig::FastProtocol(kNodes, /*seed=*/91);
  cfg.num_workers = kWorkers;
  cfg.transport = transport;
  // Slowed protocol constants: with 1000 live stacks the FastProtocol ping
  // rate alone would saturate a small box. Stretch the periods an order of
  // magnitude; the analytic detection bound stretches with them (checked by
  // the widened scenario timing below).
  cfg.overlay.ping_period = Duration::Seconds(2);
  cfg.overlay.ping_timeout = Duration::Seconds(1);
  cfg.overlay.join_timeout = Duration::Seconds(5);
  cfg.overlay.query_timeout = Duration::Seconds(2);
  cfg.overlay.repair_delay = Duration::Millis(500);
  cfg.overlay.leaf_exchange_period = Duration::Seconds(10);
  cfg.fuse.create_timeout = Duration::Seconds(30);
  cfg.fuse.install_timeout = Duration::Seconds(15);
  cfg.fuse.member_repair_timeout = Duration::Seconds(6);
  cfg.fuse.root_repair_timeout = Duration::Seconds(10);
  cfg.fuse.link_liveness_timeout = Duration::Seconds(4);
  cfg.fuse.grace_period = Duration::Seconds(1);
  cfg.fuse.repair_backoff_initial = Duration::Seconds(1);
  cfg.fuse.repair_backoff_cap = Duration::Seconds(4);
  cfg.timing.join_wait = Duration::Minutes(10);
  cfg.timing.settle_round = Duration::Seconds(2);
  cfg.timing.restart_wait = Duration::Minutes(2);
  cfg.join_batch = 8;
  return cfg;
}

ScenarioOptions ScaleOptions(uint64_t seed) {
  ScenarioOptions opts;
  opts.seed = seed;
  opts.num_groups = 4;  // 2 spanning the victim machine + 2 disjoint controls
  opts.min_group_size = 2;
  opts.max_group_size = 4;
  opts.timing = ScenarioTiming::Live();
  opts.timing.settle = Duration::Seconds(5);
  opts.timing.create_bound = Duration::Seconds(60);
  opts.timing.detect_bound = Duration::Seconds(180);
  opts.timing.post_settle = Duration::Seconds(15);
  return opts;
}

void RunScale(TransportKind transport) {
  ProcessCluster cluster(ScaleConfig(transport));
  cluster.Build();
  ASSERT_EQ(cluster.placement().NumMachines(), kWorkers);
  const ScenarioResult result =
      RunAgreementScenario(cluster, ScenarioKind::kMachineFailure, ScaleOptions(91));
  EXPECT_TRUE(result.ok()) << "MachineFailure at scale: " << result.ToString();
  EXPECT_GE(result.notified, 1) << "scenario did not exercise the notification path";

  // One counter slot per worker. The SIGKILLed machine is dark for sure;
  // collection is best-effort (bounded), so a heavily loaded survivor may
  // also miss the window — but most must report, with live traffic.
  const std::vector<std::map<std::string, uint64_t>> by_machine =
      cluster.TransportCountersByMachine();
  ASSERT_EQ(by_machine.size(), static_cast<size_t>(kWorkers));
  int live_machines = 0;
  for (const auto& counters : by_machine) {
    if (!counters.empty()) {
      ++live_machines;
      EXPECT_GT(counters.at("transport_send_syscalls"), 0u);
    }
  }
  EXPECT_LE(live_machines, kWorkers - 1);
  EXPECT_GE(live_machines, kWorkers / 2);
}

TEST(ProcScale1000, ParityTcp) { RunScale(TransportKind::kTcp); }

TEST(ProcScale1000, ParityUdp) { RunScale(TransportKind::kUdp); }

}  // namespace
}  // namespace fuse

#else
// Non-Linux: ProcessCluster needs fork + epoll; keep the binary linkable.
TEST(ProcScale1000, SkippedOffLinux) { GTEST_SKIP(); }
#endif  // defined(__linux__)
