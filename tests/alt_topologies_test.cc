// Tests for the alternative liveness-checking topologies (paper section 5.1):
// the same one-way agreement semantics with different cost structures.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "fuse/alt_topologies.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "transport/tcp_model.h"

namespace fuse {
namespace {

class AltFixture : public ::testing::TestWithParam<LivenessTopology> {
 protected:
  void Init(int n, uint64_t seed) {
    TopologyConfig cfg;
    cfg.num_as = 50;
    sim_ = std::make_unique<Simulation>(seed);
    net_ = std::make_unique<SimNetwork>(Topology::Generate(cfg, sim_->rng()));
    fabric_ = std::make_unique<SimFabric>(*sim_, *net_, CostModel::Simulator());
    for (int i = 0; i < n; ++i) {
      hosts_.push_back(net_->AddHost(sim_->rng()));
    }
    AltFuseConfig cfg2;
    cfg2.topology = GetParam();
    cfg2.central_server = hosts_[0];  // host 0 doubles as the server
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<AltFuseNode>(fabric_->TransportFor(hosts_[i]), cfg2));
    }
  }

  FuseId CreateSync(size_t creator, const std::vector<size_t>& member_idx, Status* status) {
    std::vector<HostId> members;
    for (size_t i : member_idx) {
      members.push_back(hosts_[i]);
    }
    FuseId id;
    bool done = false;
    nodes_[creator]->CreateGroup(members, [&](const Status& s, FuseId gid) {
      *status = s;
      id = gid;
      done = true;
    });
    sim_->RunUntilCondition([&] { return done; }, sim_->Now() + Duration::Minutes(2));
    EXPECT_TRUE(done);
    return id;
  }

  std::unique_ptr<Simulation> sim_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SimFabric> fabric_;
  std::vector<HostId> hosts_;
  std::vector<std::unique_ptr<AltFuseNode>> nodes_;
};

TEST_P(AltFixture, CreateAndExplicitSignal) {
  Init(10, 401);
  Status status;
  const std::vector<size_t> members{1, 2, 3, 4};
  const FuseId id = CreateSync(1, members, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::map<size_t, int> fired;
  for (size_t m : members) {
    nodes_[m]->RegisterFailureHandler(id, [&fired, m](FuseId) { fired[m]++; });
  }
  nodes_[3]->SignalFailure(id);
  sim_->RunFor(Duration::Minutes(2));
  for (size_t m : members) {
    EXPECT_EQ(fired[m], 1) << "member " << m;
    EXPECT_FALSE(nodes_[m]->HasLiveGroup(id));
  }
}

TEST_P(AltFixture, CrashNotifiesSurvivors) {
  Init(10, 402);
  Status status;
  const std::vector<size_t> members{1, 2, 3, 4, 5};
  const FuseId id = CreateSync(1, members, &status);
  ASSERT_TRUE(status.ok());
  std::map<size_t, int> fired;
  for (size_t m : members) {
    nodes_[m]->RegisterFailureHandler(id, [&fired, m](FuseId) { fired[m]++; });
  }
  fabric_->CrashHost(hosts_[4]);
  nodes_[4]->Shutdown();
  sim_->RunFor(Duration::Minutes(6));
  for (size_t m : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
    EXPECT_EQ(fired[m], 1) << "member " << m;
  }
}

TEST_P(AltFixture, QuiescentGroupsStayAlive) {
  Init(12, 403);
  Status status;
  std::vector<FuseId> ids;
  for (int g = 0; g < 5; ++g) {
    const std::vector<size_t> members{1, static_cast<size_t>(2 + g), 8};
    ids.push_back(CreateSync(1, members, &status));
    ASSERT_TRUE(status.ok());
  }
  sim_->RunFor(Duration::Minutes(20));
  for (const FuseId& id : ids) {
    EXPECT_TRUE(nodes_[1]->HasLiveGroup(id));
    EXPECT_TRUE(nodes_[8]->HasLiveGroup(id));
  }
}

TEST_P(AltFixture, RegisterOnDeadIdFiresImmediately) {
  Init(6, 404);
  FuseId bogus;
  bogus.hi = 1;
  bogus.lo = 2;
  int fired = 0;
  nodes_[2]->RegisterFailureHandler(bogus, [&](FuseId) { ++fired; });
  sim_->RunFor(Duration::Seconds(2));
  EXPECT_EQ(fired, 1);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, AltFixture,
                         ::testing::Values(LivenessTopology::kDirectTree,
                                           LivenessTopology::kAllToAll,
                                           LivenessTopology::kCentralServer),
                         [](const ::testing::TestParamInfo<LivenessTopology>& param_info) {
                           switch (param_info.param) {
                             case LivenessTopology::kDirectTree:
                               return "DirectTree";
                             case LivenessTopology::kAllToAll:
                               return "AllToAll";
                             case LivenessTopology::kCentralServer:
                               return "CentralServer";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace fuse
