// Minimized fault schedules from fuzzer-found failures, replayed as
// deterministic regression tests. Each schedule here once produced an
// invariant-oracle violation; the fix is described next to it and the replay
// must stay green.
#include <gtest/gtest.h>

#include "fuzz/fault_schedule.h"
#include "fuzz/fuzz_runner.h"

namespace fuse {
namespace {

FuzzRunResult Replay(const std::string& text) {
  FaultSchedule s;
  EXPECT_TRUE(FaultSchedule::FromText(text, &s));
  return RunSchedule(s);
}

// Crash with an instant restart: the fresh incarnation's join search used to
// be routed straight back to the joiner through the stale dead-incarnation
// routing entry on the search path, and the joiner's self-host guard dropped
// the delivered search — the rejoin stalled until the failure detector
// evicted the stale entry. Fixed by making the join path incarnation-aware:
// a routing hop that would resolve a join search to the searcher's own host
// evicts the stale entry and re-routes (see skipnet_node.cc).
TEST(FuzzRegressionTest, InstantRestartRejoin) {
  const FuzzRunResult r = Replay(
      "fuse-fuzz-schedule v1\n"
      "seed 11\n"
      "nodes 6\n"
      "groups 1\n"
      "crash at_us=0 a=1 b=0 dur_us=0 param=0 group=-\n"
      "restart at_us=0 a=1 b=0 dur_us=0 param=0 group=-\n");
  EXPECT_TRUE(r.ok()) << r.log_line << (r.violations.empty() ? "" : "\n  " + r.violations[0]);
}

// Shrunk from fuzzer seed 6086 (originally 2 groups, 4 clauses): three
// layered partitions around a group whose root is node 2. The first isolates
// the root; the second briefly reunites root and member 7, triggering a
// repair; the third strands 7 with bystander node 1 before 7's re-sent
// InstallChecking can reach the root. The install route dead-ended at node 1,
// which half-installed a delegate link back to 7 — and the two then refreshed
// each other's link hashes forever, so member 7 never heard the group fail
// (the rest of the group did). Fixed in FuseNode::OnInstallUpcall: an install
// that stalls mid-route, or is delivered at a node that is not the group's
// root, now fails the path loudly with a Hard notification to the member
// instead of leaving a checking chain anchored at nothing.
TEST(FuzzRegressionTest, OrphanedMemberBehindDeadEndInstall) {
  const FuzzRunResult r = Replay(
      "fuse-fuzz-schedule v1\n"
      "seed 6086\n"
      "nodes 10\n"
      "groups 1\n"
      "partition at_us=124991436 a=0 b=0 dur_us=0 param=0 group=2\n"
      "partition at_us=167594593 a=0 b=0 dur_us=0 param=0 group=2,7\n"
      "partition at_us=191454310 a=0 b=0 dur_us=0 param=0 group=1,7\n");
  EXPECT_TRUE(r.ok()) << r.log_line << (r.violations.empty() ? "" : "\n  " + r.violations[0]);
}

// Fuzzer seed 4874 used to crash outright (heap-use-after-free): the crash of
// node 2 broke connections whose pending-send callbacks ran synchronously;
// one was MemberInitiateRepair's NeedRepair error callback, which failed the
// group and freed the GroupState while MemberInitiateRepair was still about
// to arm the repair timer on it. Fixed by arming the timer before issuing the
// send (group destruction disarms it), plus the same hazard in
// RootStartRepair's member fan-out (the loop now iterates a snapshot and
// stops once the group is gone).
TEST(FuzzRegressionTest, SynchronousSendFailureDuringRepair) {
  const FuzzRunResult r = Replay(
      "fuse-fuzz-schedule v1\n"
      "seed 4874\n"
      "nodes 8\n"
      "groups 3\n"
      "crash at_us=47739786 a=6 b=0 dur_us=0 param=0 group=-\n"
      "block_oneway at_us=68397209 a=7 b=4 dur_us=0 param=0 group=-\n"
      "loss_burst at_us=127682903 a=4294967295 b=0 dur_us=67311485 "
      "param=0.63662771963433473 group=-\n"
      "crash at_us=146462357 a=2 b=0 dur_us=0 param=0 group=-\n"
      "restart at_us=146462357 a=2 b=0 dur_us=0 param=0 group=-\n"
      "clock_skew at_us=223627629 a=5 b=0 dur_us=0 param=0.85862943182599416 group=-\n"
      "unblock_oneway at_us=293798185 a=7 b=4 dur_us=0 param=0 group=-\n");
  EXPECT_TRUE(r.ok()) << r.log_line << (r.violations.empty() ? "" : "\n  " + r.violations[0]);
}

// Shrunk from fuzzer seed 102478 (originally 7 clauses): node 1 is slow but
// alive, then a 39-second 87% loss burst hits every link, then group 1's
// member 3 crashes. During the burst the root started a repair round; member
// 3's NeedRepair arrived while that round was in flight and was silently
// swallowed by RootScheduleRepair. The round then completed "successfully" —
// member 3's InstallChecking reached the root, clearing install_pending — but
// 3's own origin link had already been torn down by the link failure it was
// complaining about, leaving 3 with zero liveness links and nobody monitoring
// it. Its crash was therefore invisible: the rest of the tree stayed healthy
// and members 0/1/4 never heard the required notification. Fixed by recording
// a mid-round NeedRepair (GroupState::rerepair_requested) and running a
// follow-up repair round once the in-flight round and its installs complete.
TEST(FuzzRegressionTest, NeedRepairSwallowedByInFlightRound) {
  const FuzzRunResult r = Replay(
      "fuse-fuzz-schedule v1\n"
      "seed 102478\n"
      "nodes 7\n"
      "groups 2\n"
      "slow_host at_us=0 a=1 b=0 dur_us=0 param=853.51381030025425 group=-\n"
      "loss_burst at_us=103161255 a=4294967295 b=0 dur_us=39501569 "
      "param=0.87521573991814261 group=-\n"
      "crash at_us=184212150 a=3 b=0 dur_us=0 param=0 group=-\n");
  EXPECT_TRUE(r.ok()) << r.log_line << (r.violations.empty() ? "" : "\n  " + r.violations[0]);
}

}  // namespace
}  // namespace fuse
