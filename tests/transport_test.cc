// Tests for the TCP-model transport: delivery, handshake costs, retransmit
// under loss, connection breaks, crash semantics, send serialization, and
// the allocation-free warm fast path.
#include <gtest/gtest.h>

#include <vector>

#include "bench/alloc_counter.h"
#include "net/network.h"
#include "overlay/ping_manager.h"
#include "sim/simulation.h"
#include "transport/tcp_model.h"

namespace fuse {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TopologyConfig cfg;
    cfg.num_as = 40;
    sim_ = std::make_unique<Simulation>(17);
    net_ = std::make_unique<SimNetwork>(Topology::Generate(cfg, sim_->rng()));
    for (int i = 0; i < 4; ++i) {
      hosts_.push_back(net_->AddHost(sim_->rng()));
    }
  }

  void MakeFabric(CostModel cost, TcpParams tcp = TcpParams()) {
    fabric_ = std::make_unique<SimFabric>(*sim_, *net_, cost, tcp);
  }

  WireMessage Msg(HostId to, uint16_t type = msgtype::kTest) {
    WireMessage m;
    m.to = to;
    m.type = type;
    m.category = MsgCategory::kApp;
    m.payload = {1, 2, 3};
    return m;
  }

  std::unique_ptr<Simulation> sim_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SimFabric> fabric_;
  std::vector<HostId> hosts_;
};

TEST_F(TransportTest, DeliversMessage) {
  MakeFabric(CostModel::Simulator());
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  int received = 0;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage& m) {
    EXPECT_EQ(m.from, hosts_[0]);
    EXPECT_EQ(m.payload.size(), 3u);
    ++received;
  });
  Status sent_status = Status::Failed("pending");
  ta->Send(Msg(hosts_[1]), [&](const Status& s) { sent_status = s; });
  sim_->RunFor(Duration::Seconds(5));
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(sent_status.ok());
}

TEST_F(TransportTest, DeliveryTakesOneWayLatency) {
  MakeFabric(CostModel::Simulator());
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  TimePoint arrival;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage&) { arrival = sim_->Now(); });
  const Duration one_way = net_->GetPath(hosts_[0], hosts_[1]).latency;
  ta->Send(Msg(hosts_[1]), nullptr);
  sim_->RunFor(Duration::Seconds(5));
  EXPECT_EQ(arrival.ToMicros(), one_way.ToMicros());
}

TEST_F(TransportTest, ClusterModeFirstMessagePaysHandshake) {
  MakeFabric(CostModel::Cluster());
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  std::vector<TimePoint> arrivals;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage&) { arrivals.push_back(sim_->Now()); });

  const TimePoint t0 = sim_->Now();
  ta->Send(Msg(hosts_[1]), nullptr);
  sim_->RunFor(Duration::Seconds(10));
  const TimePoint t1 = sim_->Now();
  ta->Send(Msg(hosts_[1]), nullptr);
  sim_->RunFor(Duration::Seconds(10));

  ASSERT_EQ(arrivals.size(), 2u);
  const Duration first = arrivals[0] - t0;
  const Duration second = arrivals[1] - t1;
  // First delivery pays the SYN/SYNACK round trip; second reuses the cached
  // connection (this is the Figure 6 1st-vs-2nd RPC effect).
  const Duration rtt = fabric_->Rtt(hosts_[0], hosts_[1]);
  EXPECT_GE(first.ToMicros(), rtt.ToMicros());
  EXPECT_LT(second.ToMicros(), first.ToMicros());
}

TEST_F(TransportTest, SimulatorModeHasNoHandshake) {
  MakeFabric(CostModel::Simulator());
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  TimePoint arrival;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage&) { arrival = sim_->Now(); });
  ta->Send(Msg(hosts_[1]), nullptr);
  sim_->RunFor(Duration::Seconds(5));
  EXPECT_EQ(arrival.ToMicros(), net_->GetPath(hosts_[0], hosts_[1]).latency.ToMicros());
}

TEST_F(TransportTest, SendOverheadSerializesSends) {
  CostModel cost = CostModel::Cluster();
  MakeFabric(cost);
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  // Open the connection first so only send overhead matters.
  tb->RegisterHandler(msgtype::kTest, [](const WireMessage&) {});
  ta->Send(Msg(hosts_[1]), nullptr);
  sim_->RunFor(Duration::Seconds(10));

  std::vector<TimePoint> arrivals;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage&) { arrivals.push_back(sim_->Now()); });
  const int kBurst = 10;
  for (int i = 0; i < kBurst; ++i) {
    ta->Send(Msg(hosts_[1]), nullptr);
  }
  sim_->RunFor(Duration::Seconds(10));
  ASSERT_EQ(arrivals.size(), static_cast<size_t>(kBurst));
  // Consecutive deliveries are spaced by the per-send overhead.
  const Duration spacing = arrivals.back() - arrivals.front();
  const Duration expected = cost.SendOverhead() * int64_t{kBurst - 1};
  EXPECT_NEAR(spacing.ToMillisF(), expected.ToMillisF(), 0.01);
}

TEST_F(TransportTest, RetransmitsUnderLoss) {
  MakeFabric(CostModel::Simulator());
  net_->SetPerLinkLossRate(0.02);  // lossy but survivable
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  int received = 0;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage&) { ++received; });
  int ok = 0, failed = 0;
  const int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    ta->Send(Msg(hosts_[1]), [&](const Status& s) { s.ok() ? ++ok : ++failed; });
    sim_->RunFor(Duration::Seconds(120));
  }
  // With 2% per-link loss, nearly everything gets through via retransmission.
  EXPECT_GE(received, kMessages - 2);
  EXPECT_GE(ok, kMessages - 2);
  // No duplicate deliveries.
  EXPECT_LE(received, kMessages);
}

TEST_F(TransportTest, ConnectionBreaksUnderExtremeLoss) {
  MakeFabric(CostModel::Simulator());
  net_->SetPerLinkLossRate(0.35);  // per-route success is essentially zero
  auto* ta = fabric_->TransportFor(hosts_[0]);
  fabric_->TransportFor(hosts_[1]);  // materialize receiver
  int broken = 0;
  for (int i = 0; i < 5; ++i) {
    ta->Send(Msg(hosts_[1]), [&](const Status& s) {
      if (!s.ok()) {
        ++broken;
      }
    });
    sim_->RunFor(Duration::Minutes(5));
  }
  EXPECT_GE(broken, 4);  // sockets break under such adverse conditions (7.6)
}

TEST_F(TransportTest, BlockedPairReportsUnreachable) {
  MakeFabric(CostModel::Cluster());
  net_->faults().BlockPair(hosts_[0], hosts_[1]);
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  int received = 0;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage&) { ++received; });
  Status result;
  ta->Send(Msg(hosts_[1]), [&](const Status& s) { result = s; });
  sim_->RunFor(Duration::Minutes(5));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(received, 0);
}

TEST_F(TransportTest, CrashDropsDeliveriesAndBreaksConnections) {
  MakeFabric(CostModel::Simulator());
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  int received = 0;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage&) { ++received; });
  ta->Send(Msg(hosts_[1]), nullptr);
  sim_->RunFor(Duration::Seconds(5));
  EXPECT_EQ(received, 1);

  fabric_->CrashHost(hosts_[1]);
  EXPECT_FALSE(fabric_->IsHostUp(hosts_[1]));
  Status result;
  ta->Send(Msg(hosts_[1]), [&](const Status& s) { result = s; });
  sim_->RunFor(Duration::Minutes(5));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(received, 1);
}

TEST_F(TransportTest, RestartedHostGetsFreshIncarnation) {
  MakeFabric(CostModel::Simulator());
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  int received = 0;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage&) { ++received; });
  fabric_->CrashHost(hosts_[1]);
  fabric_->RestartHost(hosts_[1]);
  EXPECT_TRUE(fabric_->IsHostUp(hosts_[1]));
  // Handlers were cleared by the crash; re-register (as restarting node
  // software would), then delivery works again.
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage&) { received += 10; });
  ta->Send(Msg(hosts_[1]), nullptr);
  sim_->RunFor(Duration::Seconds(30));
  EXPECT_EQ(received, 10);
}

TEST_F(TransportTest, InOrderDeliveryPerConnection) {
  MakeFabric(CostModel::Simulator());
  net_->SetPerLinkLossRate(0.05);
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  std::vector<uint8_t> order;
  tb->RegisterHandler(msgtype::kTest, [&](const WireMessage& m) { order.push_back(m.payload[0]); });
  for (uint8_t i = 0; i < 30; ++i) {
    WireMessage m;
    m.to = hosts_[1];
    m.type = msgtype::kTest;
    m.category = MsgCategory::kApp;
    m.payload = {i};
    ta->Send(std::move(m), nullptr);
  }
  sim_->RunFor(Duration::Minutes(10));
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

// The steady-state liveness load — PingManager request → transport send →
// delivery → reply → timeout rearm, with a FUSE-style 20-byte piggyback
// payload on both legs — must be allocation-free once warm. This is the
// whole-path twin of the PR 2 timer-rearm guarantee: PayloadBuf inline
// storage, pooled send/delivery state, dense host/connection/peer tables,
// and reused scratch writers together leave nothing to allocate.
TEST(PingFastPathTest, TenThousandWarmPingRoundTripsAllocateNothing) {
  TopologyConfig cfg;
  cfg.num_as = 30;
  Simulation sim(4242);
  SimNetwork net{Topology::Generate(cfg, sim.rng())};
  SimFabric fabric(sim, net, CostModel::Simulator());
  // Co-located hosts: sub-millisecond RTT, so replies always beat the
  // timeout and the cycle never enters the failure path.
  const RouterId router = net.topology().RandomRouter(sim.rng());
  const HostId a = net.AddHostAt(router);
  const HostId b = net.AddHostAt(router);

  const Duration period = Duration::Millis(50);
  const Duration timeout = Duration::Millis(20);
  PingManager ping_a(fabric.TransportFor(a), period, timeout);
  PingManager ping_b(fabric.TransportFor(b), period, timeout);
  static const uint8_t kHash[20] = {0xfa, 0xce, 0xb0, 0x0c, 1, 2, 3, 4, 5, 6,
                                    7,    8,    9,    10,   11, 12, 13, 14, 15, 16};
  uint64_t payload_bytes_seen = 0;
  for (PingManager* pm : {&ping_a, &ping_b}) {
    pm->SetPayloadProvider([](HostId, Writer& w) { w.PutBytes(kHash, sizeof(kHash)); });
    pm->SetPayloadObserver(
        [&payload_bytes_seen](HostId, const uint8_t*, size_t len) { payload_bytes_seen += len; });
  }
  ping_a.UpdateNeighbors({b});
  ping_b.UpdateNeighbors({a});
  ping_a.Start();
  ping_b.Start();

  // Warm up: open the connection, size the pools, queues, and scratch
  // buffers, and let the event wheel touch its slots.
  sim.RunFor(Duration::Seconds(5));
  const uint64_t warm_payload_bytes = payload_bytes_seen;
  EXPECT_GT(warm_payload_bytes, 0u);

  // 10k round trips per direction: 500 s of simulated pinging at 50 ms.
  const uint64_t allocs_before = alloc_counter::Read();
  sim.RunFor(Duration::Seconds(500));
  const uint64_t allocs = alloc_counter::Read() - allocs_before;

  EXPECT_EQ(allocs, 0u) << "warm ping round trips must not touch the heap";
  // Sanity: the window really carried ~10k round trips per direction, with
  // payloads observed on every request and reply.
  const uint64_t payload_bytes = payload_bytes_seen - warm_payload_bytes;
  EXPECT_GE(payload_bytes, uint64_t{4} * 9900 * sizeof(kHash));
}

TEST_F(TransportTest, MessageMetricsAttributed) {
  MakeFabric(CostModel::Simulator());
  auto* ta = fabric_->TransportFor(hosts_[0]);
  auto* tb = fabric_->TransportFor(hosts_[1]);
  tb->RegisterHandler(msgtype::kTest, [](const WireMessage&) {});
  WireMessage m = Msg(hosts_[1]);
  m.category = MsgCategory::kRpc;
  ta->Send(std::move(m), nullptr);
  sim_->RunFor(Duration::Seconds(5));
  EXPECT_EQ(sim_->metrics().MessageCount(MsgCategory::kRpc), 1u);
}

}  // namespace
}  // namespace fuse
