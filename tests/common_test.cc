// Unit tests for src/common: time, rng, sha1, stats, serialize, status, ids,
// flat_map.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/ids.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/sha1.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time.h"

namespace fuse {
namespace {

TEST(TimeTest, DurationArithmetic) {
  const Duration a = Duration::Millis(1500);
  EXPECT_EQ(a.ToMicros(), 1500000);
  EXPECT_DOUBLE_EQ(a.ToSecondsF(), 1.5);
  EXPECT_EQ((a + Duration::Millis(500)).ToMicros(), 2000000);
  EXPECT_EQ((a - Duration::Seconds(1)).ToMicros(), 500000);
  EXPECT_EQ((a * int64_t{2}).ToMicros(), 3000000);
  EXPECT_EQ((a / int64_t{3}).ToMicros(), 500000);
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_EQ(Duration::Seconds(2).ToString(), "2s");
  EXPECT_EQ(Duration::Millis(20).ToString(), "20ms");
  EXPECT_EQ(Duration::Micros(7).ToString(), "7us");
}

TEST(TimeTest, TimePointArithmetic) {
  const TimePoint t = TimePoint::FromMicros(1000);
  EXPECT_EQ((t + Duration::Micros(500)).ToMicros(), 1500);
  EXPECT_EQ((t - Duration::Micros(500)).ToMicros(), 500);
  EXPECT_EQ((t + Duration::Micros(500)) - t, Duration::Micros(500));
  EXPECT_LT(t, t + Duration::Micros(1));
}

TEST(TimeTest, DurationScaleByDouble) {
  EXPECT_EQ((Duration::Seconds(10) * 0.5).ToMicros(), 5000000);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Degenerate range.
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.UniformInt(0, 7));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(31);
  const auto s = rng.SampleIndices(10, 5);
  EXPECT_EQ(s.size(), 5u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
  for (size_t i : s) {
    EXPECT_LT(i, 10u);
  }
}

TEST(RngTest, ForkIndependent) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

// FIPS 180-1 test vectors.
TEST(Sha1Test, KnownVectors) {
  EXPECT_EQ(Sha1::ToHex(Sha1::Hash("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::ToHex(Sha1::Hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::ToHex(Sha1::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionA) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(Sha1::ToHex(h.Finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog 0123456789";
  Sha1 h;
  for (char c : msg) {
    h.Update(&c, 1);
  }
  EXPECT_EQ(h.Finish(), Sha1::Hash(msg));
}

TEST(Sha1Test, DigestSensitivity) {
  EXPECT_NE(Sha1::Hash("abc"), Sha1::Hash("abd"));
}

// Every split of a message across Update calls must hash like the one-shot,
// in particular around the 55/56/64-byte padding boundaries the piggyback
// digests sit near.
TEST(Sha1Test, ChunkBoundariesMatchOneShot) {
  Rng rng(37);
  for (size_t len : {0u, 1u, 54u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    std::string msg(len, '\0');
    for (char& c : msg) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    const Sha1Digest expect = Sha1::Hash(msg);
    Sha1 h;
    size_t pos = 0;
    while (pos < msg.size()) {
      const size_t n = static_cast<size_t>(rng.UniformInt(1, 16));
      const size_t take = std::min(n, msg.size() - pos);
      h.Update(msg.data() + pos, take);
      pos += take;
    }
    EXPECT_EQ(h.Finish(), expect) << "len=" << len;
  }
}

TEST(Sha1Test, UpdateU64IsBigEndianBytes) {
  Sha1 a;
  a.UpdateU64(0x0102030405060708ULL);
  Sha1 b;
  const uint8_t bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  b.Update(bytes, 8);
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(StatsTest, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_EQ(s.Count(), 100u);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(25), 25.75, 0.01);
  EXPECT_NEAR(s.Percentile(75), 75.25, 0.01);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
}

TEST(StatsTest, EmptySummary) {
  Summary s;
  EXPECT_TRUE(s.Empty());
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(StatsTest, FractionAtMost) {
  Summary s;
  for (int i = 1; i <= 10; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.FractionAtMost(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionAtMost(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionAtMost(100.0), 1.0);
}

TEST(StatsTest, CdfMonotone) {
  Summary s;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    s.Add(rng.UniformDouble(0, 100));
  }
  const auto cdf = s.Cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SerializeTest, RoundTrip) {
  Writer w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(3.25);
  w.PutString("hello");
  Reader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU16(), 0x1234);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.25);
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_TRUE(r.Done());
}

TEST(SerializeTest, TruncatedReadFails) {
  Writer w;
  w.PutU32(7);
  Reader r(w.bytes());
  r.GetU64();  // longer than available
  EXPECT_FALSE(r.ok());
  // Subsequent reads keep failing safely.
  EXPECT_EQ(r.GetU32(), 0u);
  EXPECT_FALSE(r.Done());
}

TEST(SerializeTest, CorruptStringLength) {
  Writer w;
  w.PutU32(1000);  // claims 1000 bytes, none present
  Reader r(w.bytes());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.ok());
}

// Seeded fuzz loop: random typed sequences must round-trip exactly and
// consume the buffer to the last byte.
TEST(SerializeTest, RoundTripFuzz) {
  Rng rng(41);
  for (int iter = 0; iter < 200; ++iter) {
    Writer w;
    struct Op {
      int kind;
      uint64_t u;
      double d;
      std::string s;
    };
    std::vector<Op> ops;
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      Op op;
      op.kind = static_cast<int>(rng.UniformInt(0, 5));
      op.u = rng.NextU64();
      op.d = rng.UniformDouble(-1e9, 1e9);
      switch (op.kind) {
        case 0:
          w.PutU8(static_cast<uint8_t>(op.u));
          break;
        case 1:
          w.PutU16(static_cast<uint16_t>(op.u));
          break;
        case 2:
          w.PutU32(static_cast<uint32_t>(op.u));
          break;
        case 3:
          w.PutU64(op.u);
          break;
        case 4:
          w.PutDouble(op.d);
          break;
        case 5: {
          op.s.resize(static_cast<size_t>(rng.UniformInt(0, 64)));
          for (char& c : op.s) {
            c = static_cast<char>(rng.UniformInt(0, 255));
          }
          w.PutString(op.s);
          break;
        }
      }
      ops.push_back(std::move(op));
    }
    Reader r(w.bytes());
    for (const Op& op : ops) {
      switch (op.kind) {
        case 0:
          EXPECT_EQ(r.GetU8(), static_cast<uint8_t>(op.u));
          break;
        case 1:
          EXPECT_EQ(r.GetU16(), static_cast<uint16_t>(op.u));
          break;
        case 2:
          EXPECT_EQ(r.GetU32(), static_cast<uint32_t>(op.u));
          break;
        case 3:
          EXPECT_EQ(r.GetU64(), op.u);
          break;
        case 4:
          EXPECT_DOUBLE_EQ(r.GetDouble(), op.d);
          break;
        case 5:
          EXPECT_EQ(r.GetString(), op.s);
          break;
      }
    }
    ASSERT_TRUE(r.Done()) << "iteration " << iter;
  }
}

// Truncating a valid encoding at every possible length must fail cleanly
// (ok() flips false, reads return zero values), never crash or over-read.
TEST(SerializeTest, TruncationFuzz) {
  Writer w;
  w.PutU16(0xbeef);
  w.PutString("abcdef");
  w.PutU64(0x1122334455667788ULL);
  w.PutDouble(2.5);
  const auto& full = w.bytes();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Reader r(full.data(), cut);
    r.GetU16();
    r.GetString();
    r.GetU64();
    r.GetDouble();
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(StatusTest, Basics) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_FALSE(Status::Timeout("x").ok());
  EXPECT_EQ(Status::Timeout().code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Broken("conn").ToString(), "BROKEN: conn");
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode c : {StatusCode::kOk, StatusCode::kTimeout, StatusCode::kUnreachable,
                       StatusCode::kBroken, StatusCode::kCancelled, StatusCode::kNotFound,
                       StatusCode::kAlreadyExists, StatusCode::kInvalidArgument,
                       StatusCode::kFailed}) {
    EXPECT_STRNE(StatusCodeName(c), "");
    EXPECT_EQ(Status(c).ToString(), StatusCodeName(c));
  }
}

// The callback-heavy layers pass Status values through several hops; code and
// message must survive copies, moves, and early-return propagation chains.
TEST(StatusTest, PropagationPreservesCodeAndMessage) {
  auto inner = [] { return Status::Unreachable("host h42 dropped"); };
  auto middle = [&]() -> Status {
    Status s = inner();
    if (!s.ok()) {
      return s;  // propagate untouched
    }
    return Status::Ok();
  };
  auto outer = [&]() -> Status {
    const Status s = middle();
    return s.ok() ? Status::Ok() : s;
  };
  const Status got = outer();
  EXPECT_EQ(got.code(), StatusCode::kUnreachable);
  EXPECT_EQ(got.message(), "host h42 dropped");
  EXPECT_EQ(got.ToString(), "UNREACHABLE: host h42 dropped");

  Status moved = std::move(const_cast<Status&>(got));
  EXPECT_EQ(moved.code(), StatusCode::kUnreachable);
  EXPECT_EQ(moved.message(), "host h42 dropped");

  // Equality compares codes only: same failure class, different detail.
  EXPECT_EQ(moved, Status::Unreachable("other detail"));
  EXPECT_NE(moved, Status::Timeout());
}

TEST(IdsTest, StrongIdBehavior) {
  const HostId a(1);
  const HostId b(2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(HostId().valid());
  std::unordered_set<HostId> set{a, b, a};
  EXPECT_EQ(set.size(), 2u);
}

TEST(MetricsTest, CountsAndWindows) {
  Metrics m;
  m.IncMessage(MsgCategory::kOverlayPing, 68);
  m.IncMessage(MsgCategory::kOverlayPing, 68);
  m.IncMessage(MsgCategory::kFuseCreate, 100);
  EXPECT_EQ(m.MessageCount(MsgCategory::kOverlayPing), 2u);
  EXPECT_EQ(m.ByteCount(MsgCategory::kOverlayPing), 136u);
  EXPECT_EQ(m.TotalMessages(), 3u);
  EXPECT_EQ(m.TotalBytes(), 236u);

  const auto w = m.BeginWindow(TimePoint::FromMicros(0));
  m.IncMessage(MsgCategory::kRpc, 10);
  m.IncMessage(MsgCategory::kRpc, 10);
  EXPECT_DOUBLE_EQ(m.MessagesPerSecond(w, TimePoint::FromMicros(2000000)), 1.0);

  m.Reset();
  EXPECT_EQ(m.TotalMessages(), 0u);
}

// Interleaved insert/erase churn across multiple tombstone-forced
// compactions and capacity doublings, shadow-checked against
// std::unordered_map. The open-addressed probe loops terminate only while
// the table keeps >= 25% truly-empty slots (tombstones don't count); erase
// bursts are sized to force the compaction path repeatedly, and every phase
// re-verifies size, membership of all live keys, and miss-lookups of every
// erased key (an Erase-then-Find that can't find an empty slot would hang,
// not fail — passing at all is the termination guard).
TEST(FlatMapTest, ChurnStressAgainstShadowMap) {
  Rng rng(1234);
  FlatMap<uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> shadow;
  std::vector<uint64_t> erased_keys;

  // Keys drawn from a small-ish universe so erase/re-insert hits the same
  // slots (tombstone reuse), mixed with packed sequential keys like the
  // connection table's PairKey.
  auto make_key = [&rng](int phase) {
    if (rng.Bernoulli(0.5)) {
      return (uint64_t{1} << 32) | static_cast<uint64_t>(rng.UniformInt(0, 511));
    }
    return static_cast<uint64_t>(rng.UniformInt(0, 255)) + static_cast<uint64_t>(phase) * 7;
  };

  auto verify = [&] {
    ASSERT_EQ(map.size(), shadow.size());
    for (const auto& [k, v] : shadow) {
      uint64_t* found = map.Find(k);
      ASSERT_NE(found, nullptr) << "live key " << k << " missing";
      ASSERT_EQ(*found, v);
    }
    for (const uint64_t k : erased_keys) {
      if (!shadow.contains(k)) {
        ASSERT_EQ(map.Find(k), nullptr) << "erased key " << k << " still found";
      }
    }
    size_t iterated = 0;
    map.ForEach([&](uint64_t k, const uint64_t& v) {
      ++iterated;
      const auto it = shadow.find(k);
      ASSERT_NE(it, shadow.end());
      ASSERT_EQ(it->second, v);
    });
    ASSERT_EQ(iterated, shadow.size());
  };

  for (int phase = 0; phase < 40; ++phase) {
    // Growth burst: push well past the previous capacity.
    for (int i = 0; i < 200; ++i) {
      const uint64_t k = make_key(phase);
      const uint64_t v = rng.NextU64();
      map.FindOrInsert(k) = v;
      shadow[k] = v;
    }
    // Erase burst: drop ~70% of live keys, creating a tombstone majority
    // that forces the compact-without-doubling growth path on the next
    // insert wave.
    std::vector<uint64_t> live;
    live.reserve(shadow.size());
    for (const auto& [k, v] : shadow) {
      live.push_back(k);
    }
    rng.Shuffle(live);
    const size_t to_erase = live.size() * 7 / 10;
    for (size_t i = 0; i < to_erase; ++i) {
      ASSERT_TRUE(map.Erase(live[i]));
      shadow.erase(live[i]);
      erased_keys.push_back(live[i]);
    }
    // Erase of an absent key reports false and must not corrupt accounting.
    ASSERT_FALSE(map.Erase(~uint64_t{0} - phase));
    // Immediate re-probe of every erased key: Erase leaves a tombstone, so
    // the probe chain must still terminate at a true empty.
    for (size_t i = 0; i < to_erase; ++i) {
      ASSERT_EQ(map.Find(live[i]), nullptr);
    }
    verify();
  }
  EXPECT_GT(erased_keys.size(), 4000u) << "stress did not churn enough";
}

}  // namespace
}  // namespace fuse
