// Property-based tests (parameterized sweeps) of the paper's core guarantee
// and of structural invariants.
//
// The FUSE property (sections 1/3): for ANY fault schedule, once any member
// observes a failure of a group, every live member of that group hears
// exactly one notification within the analytic bound — and groups none of
// whose members/paths failed are never notified spuriously.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "overlay/routing_table.h"
#include "runtime/scenario.h"
#include "runtime/sim_cluster.h"

namespace fuse {
namespace {

// ---------------------------------------------------------------------------
// FUSE one-way agreement under randomized fault schedules.
// ---------------------------------------------------------------------------

enum class FaultKind {
  kCrashMember,    // crash one member of a watched group
  kCrashBystander, // crash nodes that are in no watched group
  kSignal,         // explicit SignalFailure by a random member
  kPartition,      // partition a subset of members away
  kPartitionHeal,  // partition, then heal mid-run: agreement is one-way, so
                   // the notification must still reach everyone exactly once
  kChurnCreate,    // create groups while bystanders churn, then crash
  kMixed,          // several of the above at random
};

std::string FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kCrashMember:
      return "CrashMember";
    case FaultKind::kCrashBystander:
      return "CrashBystander";
    case FaultKind::kSignal:
      return "Signal";
    case FaultKind::kPartition:
      return "Partition";
    case FaultKind::kPartitionHeal:
      return "PartitionHeal";
    case FaultKind::kChurnCreate:
      return "ChurnCreate";
    case FaultKind::kMixed:
      return "Mixed";
  }
  return "Unknown";
}

// The nightly scenario matrix sets FUSE_PROPERTY_LOSS_PCT (0 / 1 / 5) to run
// the same schedules over a lossy fabric; unset means a clean network.
double PerLinkLossFromEnv() {
  const char* pct = std::getenv("FUSE_PROPERTY_LOSS_PCT");
  return pct == nullptr ? 0.0 : std::atof(pct) / 100.0;
}

class FuseAgreementProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, FaultKind>> {};

TEST_P(FuseAgreementProperty, OneWayAgreementHolds) {
  const auto [seed, kind] = GetParam();
  ClusterConfig cfg;
  cfg.num_nodes = 36;
  cfg.seed = seed;
  cfg.topology.num_as = 60;
  cfg.cost = CostModel::Simulator();
  // Loss is applied to the built overlay (as in the paper's Fig. 11/12 route
  // loss experiments), not during construction: multi-hop joins under 5%
  // per-link loss would make Build itself flaky, which is not the property
  // under test.
  const double loss = PerLinkLossFromEnv();

  // CrashMember, PartitionHeal, and ChurnCreate are the backend-parameterized
  // schedules: ONE definition (runtime/scenario.h) runs here on virtual time
  // and, in live_parity_test.cc, on the wall-clock LiveCluster — the paper's
  // "identical code base on simulator and live cluster" methodology.
  if (kind == FaultKind::kCrashMember || kind == FaultKind::kPartitionHeal ||
      kind == FaultKind::kChurnCreate) {
    SimCluster cluster(cfg);
    cluster.Build();
    cluster.net().SetPerLinkLossRate(loss);
    ScenarioOptions opts;
    opts.seed = seed;
    opts.timing = ScenarioTiming::Sim();
    opts.tolerate_create_failures = loss > 0.0;
    const ScenarioKind sk = kind == FaultKind::kCrashMember ? ScenarioKind::kCrashMember
                            : kind == FaultKind::kPartitionHeal
                                ? ScenarioKind::kPartitionHeal
                                : ScenarioKind::kChurnDuringCreate;
    const ScenarioResult result = RunAgreementScenario(cluster, sk, opts);
    EXPECT_TRUE(result.ok()) << FaultKindName(kind) << " seed " << seed << ": "
                             << result.ToString();
    if (loss == 0.0) {
      // On a clean network the run must be substantive, not vacuous: the
      // target group exists and its members all heard the notification.
      EXPECT_FALSE(result.target_skipped);
      EXPECT_GE(result.notified, 1) << result.ToString();
    } else if (result.target_skipped) {
      // Under tolerated loss a skipped target is legal but worth seeing in
      // the nightly logs.
      std::printf("note: %s seed %llu skipped target under %.0f%% loss\n",
                  FaultKindName(kind).c_str(), static_cast<unsigned long long>(seed),
                  loss * 100.0);
    }
    return;
  }

  SimCluster cluster(cfg);
  cluster.Build();
  cluster.net().SetPerLinkLossRate(loss);
  Rng fault_rng(seed * 7919 + 13);

  // A handful of random groups; half will be targeted by faults, half are
  // "control" groups that must survive untouched (unless a shared node or
  // the partition happens to hit them — tracked below).
  struct Group {
    FuseId id;
    std::vector<size_t> members;
    std::map<size_t, int> fired;
  };
  std::vector<std::unique_ptr<Group>> groups;
  for (int g = 0; g < 6; ++g) {
    const size_t size = static_cast<size_t>(fault_rng.UniformInt(2, 6));
    auto grp = std::make_unique<Group>();
    grp->members = cluster.PickLiveNodes(size);
    bool done = false;
    Status status;
    cluster.node(grp->members[0])
        .fuse()
        ->CreateGroup(cluster.RefsOf(grp->members), [&](const Status& s, FuseId id) {
          status = s;
          grp->id = id;
          done = true;
        });
    cluster.sim().RunUntilCondition([&] { return done; },
                                    cluster.sim().Now() + Duration::Minutes(3));
    ASSERT_TRUE(done && status.ok());
    for (size_t m : grp->members) {
      Group* raw = grp.get();
      cluster.node(m).fuse()->RegisterFailureHandler(grp->id,
                                                     [raw, m](FuseId) { raw->fired[m]++; });
    }
    groups.push_back(std::move(grp));
  }
  cluster.sim().RunFor(Duration::Minutes(2));

  // Apply the fault schedule to group 0 (and bystanders for kCrashBystander).
  std::set<size_t> crashed;
  Group& target = *groups[0];
  auto in_any_group = [&](size_t n) {
    for (const auto& g : groups) {
      for (size_t m : g->members) {
        if (m == n) {
          return true;
        }
      }
    }
    return false;
  };
  bool target_must_fail = false;
  switch (kind) {
    case FaultKind::kCrashMember:
    case FaultKind::kPartitionHeal:
    case FaultKind::kChurnCreate:
      FAIL() << "backend-parameterized kinds return above via RunAgreementScenario";
      break;
    case FaultKind::kCrashBystander: {
      int budget = 3;
      for (size_t n = 0; n < cluster.size() && budget > 0; ++n) {
        if (!in_any_group(n) && fault_rng.Bernoulli(0.3)) {
          crashed.insert(n);
          cluster.Crash(n);
          --budget;
        }
      }
      target_must_fail = false;  // only delegates/bystanders died
      break;
    }
    case FaultKind::kSignal: {
      const size_t signaller =
          target.members[fault_rng.UniformInt(0, static_cast<int64_t>(target.members.size()) - 1)];
      cluster.node(signaller).fuse()->SignalFailure(target.id);
      target_must_fail = true;
      break;
    }
    case FaultKind::kPartition: {
      // Split the group: at least one member on each side (members all on
      // one side of a partition can still talk — that is not a failure).
      std::vector<HostId> side;
      for (size_t k = 0; k < std::max<size_t>(1, target.members.size() / 2); ++k) {
        side.push_back(cluster.node(target.members[k]).host());
      }
      cluster.net().faults().PartitionHosts(side);
      target_must_fail = true;
      break;
    }
    case FaultKind::kMixed: {
      const size_t victim = target.members.back();
      crashed.insert(victim);
      cluster.Crash(victim);
      const size_t signaller = target.members.front();
      cluster.node(signaller).fuse()->SignalFailure(target.id);
      target_must_fail = true;
      break;
    }
  }

  // The analytic bound: ping interval + ping timeout + repair timeouts,
  // with slack for backoff — well within 8 minutes for these parameters.
  cluster.sim().RunFor(Duration::Minutes(8));

  // Property 1: exactly-once delivery to every live member of the target.
  if (target_must_fail) {
    for (size_t m : target.members) {
      if (crashed.contains(m)) {
        continue;
      }
      EXPECT_EQ(target.fired[m], 1)
          << FaultKindName(kind) << " seed " << seed << ": member " << m;
    }
  }

  // Property 2: no handler ever fires more than once, on any group.
  for (const auto& g : groups) {
    for (const auto& [m, count] : g->fired) {
      EXPECT_LE(count, 1) << "member " << m << " heard " << count << " notifications";
    }
  }

  // Property 3: groups with no crashed member and no partitioned member may
  // only have fired if they shared a crashed/partitioned node (none here by
  // construction for kSignal; for crashes we verify membership overlap).
  if (kind == FaultKind::kSignal) {
    for (size_t gi = 1; gi < groups.size(); ++gi) {
      int total = 0;
      for (const auto& [m, c] : groups[gi]->fired) {
        total += c;
      }
      EXPECT_EQ(total, 0) << "independent group " << gi << " was notified";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, FuseAgreementProperty,
    ::testing::Combine(::testing::Values(1001, 1002, 1003, 1004, 1005),
                       ::testing::Values(FaultKind::kCrashMember, FaultKind::kCrashBystander,
                                         FaultKind::kSignal, FaultKind::kPartition,
                                         FaultKind::kPartitionHeal, FaultKind::kChurnCreate,
                                         FaultKind::kMixed)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, FaultKind>>& param_info) {
      return FaultKindName(std::get<1>(param_info.param)) + "_seed" +
             std::to_string(std::get<0>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Machine failure under co-located placement (the paper's 400-nodes-on-40-
// machines setup): crash one whole machine and require every group spanning
// it to notify each live member exactly once, while machine-disjoint groups
// stay silent — co-hosted repair must not leak false positives. Sim leg of
// the backend-parameterized kMachineFailure scenario (live_parity_test.cc
// and process_multinode_test.cc run the identical definition on wall-clock
// and multi-tenant-process backends).
// ---------------------------------------------------------------------------

class MachineFailureProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MachineFailureProperty, SpanningGroupsNotifyDisjointGroupsStaySilent) {
  const uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.num_nodes = 36;
  cfg.hosts_per_machine = 4;  // 9 machines of 4 co-located nodes
  cfg.seed = seed;
  cfg.topology.num_as = 60;
  cfg.cost = CostModel::Simulator();
  SimCluster cluster(cfg);
  cluster.Build();
  ScenarioOptions opts;
  opts.seed = seed;
  opts.timing = ScenarioTiming::Sim();
  const ScenarioResult result =
      RunAgreementScenario(cluster, ScenarioKind::kMachineFailure, opts);
  EXPECT_TRUE(result.ok()) << "MachineFailure seed " << seed << ": " << result.ToString();
  EXPECT_FALSE(result.target_skipped);
  EXPECT_GE(result.notified, 1) << result.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineFailureProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// ---------------------------------------------------------------------------
// Overlay routing invariants across seeds and sizes.
// ---------------------------------------------------------------------------

class OverlayRoutingProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(OverlayRoutingProperty, RingIsPerfectAndRoutingTerminatesExactly) {
  const auto [n, seed] = GetParam();
  ClusterConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.topology.num_as = 60;
  cfg.cost = CostModel::Simulator();
  SimCluster cluster(cfg);
  cluster.Build();
  EXPECT_EQ(cluster.CountRingViolations(), 0);

  int delivered = 0;
  int max_hops = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster.node(i).overlay()->SetRoutedHandler(11, [&](SkipNetNode::RoutedUpcall& u) {
      if (u.at_dest) {
        ++delivered;
        max_hops = std::max(max_hops, u.hop_index);
      }
      return false;
    });
  }
  const int kTrials = 25;
  for (int t = 0; t < kTrials; ++t) {
    const auto pick = cluster.PickLiveNodes(2);
    cluster.node(pick[0]).overlay()->RouteByName(cluster.RefOf(pick[1]).name, 11, {},
                                                 MsgCategory::kApp);
  }
  cluster.sim().RunFor(Duration::Minutes(1));
  EXPECT_EQ(delivered, kTrials);
  // Greedy clockwise progress never loops and stays far below the hop cap.
  EXPECT_LT(max_hops, 40);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OverlayRoutingProperty,
                         ::testing::Combine(::testing::Values(16, 48, 96),
                                            ::testing::Values(21u, 22u, 23u)),
                         [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& param_info) {
                           return "n" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

// ---------------------------------------------------------------------------
// RoutingTable structural invariants under random operation sequences.
// ---------------------------------------------------------------------------

class RoutingTableProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoutingTableProperty, LeafSetsStaySortedBoundedAndConsistent) {
  Rng rng(GetParam());
  OverlayParams params;
  params.leaf_set_half = 4;
  RoutingTable table("node0500", params);
  std::set<uint64_t> alive;
  for (int op = 0; op < 400; ++op) {
    if (alive.empty() || rng.Bernoulli(0.7)) {
      const uint64_t host = static_cast<uint64_t>(rng.UniformInt(1, 999));
      char name[16];
      std::snprintf(name, sizeof(name), "node%04d", static_cast<int>(host));
      if (std::string(name) != "node0500") {
        table.OfferLeaf(NodeRef{name, HostId(host)});
        alive.insert(host);
      }
    } else {
      auto it = alive.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1));
      table.RemoveHost(HostId(*it));
      alive.erase(it);
    }

    // Invariant: each side bounded by leaf_set_half and sorted
    // nearest-first in its walking direction, with no duplicates.
    ASSERT_LE(table.leaf_cw().size(), 4u);
    ASSERT_LE(table.leaf_ccw().size(), 4u);
    const auto& cw = table.leaf_cw();
    for (size_t i = 1; i < cw.size(); ++i) {
      ASSERT_TRUE(CwStrictlyBetween(cw[i - 1].name, "node0500", cw[i].name))
          << "cw side out of order at op " << op;
    }
    const auto& ccw = table.leaf_ccw();
    for (size_t i = 1; i < ccw.size(); ++i) {
      ASSERT_TRUE(CwStrictlyBetween(ccw[i].name, "node0500", ccw[i - 1].name) ||
                  CwStrictlyBetween(ccw[i - 1].name, ccw[i].name, "node0500"))
          << "ccw side out of order at op " << op;
    }
    std::set<uint64_t> seen;
    for (const auto& r : table.DistinctNeighborHosts()) {
      ASSERT_TRUE(seen.insert(r.value).second) << "duplicate neighbor";
    }
    // NextHop must never return a node outside the known set, and never
    // overshoot the destination.
    const std::string dest = "node0750";
    const auto hop = table.NextHopTowards(dest);
    if (hop.has_value()) {
      ASSERT_TRUE(CwInInterval(hop->name, "node0500", dest)) << "overshoot at op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingTableProperty,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u, 36u, 37u, 38u));

// ---------------------------------------------------------------------------
// Transport invariant: reliable-or-reported, never silent duplication.
// ---------------------------------------------------------------------------

class TransportDeliveryProperty : public ::testing::TestWithParam<double> {};

TEST_P(TransportDeliveryProperty, EveryMessageDeliveredOnceOrSenderToldOtherwise) {
  const double loss = GetParam();
  TopologyConfig tcfg;
  tcfg.num_as = 40;
  Simulation sim(static_cast<uint64_t>(loss * 1e6) + 5);
  SimNetwork net{Topology::Generate(tcfg, sim.rng())};
  net.SetPerLinkLossRate(loss);
  SimFabric fabric(sim, net, CostModel::Simulator());
  const HostId a = net.AddHost(sim.rng());
  const HostId b = net.AddHost(sim.rng());
  std::map<uint8_t, int> delivered;
  fabric.TransportFor(b)->RegisterHandler(msgtype::kTest, [&](const WireMessage& m) {
    delivered[m.payload[0]]++;
  });
  std::map<uint8_t, Status> reported;
  const int kMessages = 60;
  for (uint8_t i = 0; i < kMessages; ++i) {
    WireMessage m;
    m.to = b;
    m.type = msgtype::kTest;
    m.category = MsgCategory::kApp;
    m.payload = {i};
    fabric.TransportFor(a)->Send(std::move(m), [&reported, i](const Status& s) {
      reported[i] = s;
    });
    sim.RunFor(Duration::Minutes(3));
  }
  sim.RunFor(Duration::Minutes(10));
  for (uint8_t i = 0; i < kMessages; ++i) {
    // No duplicates, ever.
    EXPECT_LE(delivered[i], 1) << "message " << static_cast<int>(i) << " duplicated";
    // Every send has a verdict, and a positive verdict implies delivery.
    ASSERT_TRUE(reported.contains(i));
    if (reported[i].ok()) {
      EXPECT_EQ(delivered[i], 1) << "acked message " << static_cast<int>(i) << " not delivered";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, TransportDeliveryProperty,
                         ::testing::Values(0.0, 0.005, 0.02, 0.08));

}  // namespace
}  // namespace fuse
