// Determinism regression tripwire: the whole simulator — topology build,
// overlay joins, FUSE group creation, crash-driven notifications — must be a
// pure function of the seed. Two runs with the same seed must produce
// byte-identical event traces (including notification timestamps); runs with
// different seeds must diverge. Every Fig. 7-12 reproduction depends on this.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/sim_cluster.h"
#include "sim/event_queue.h"

namespace fuse {
namespace {

// Builds a small cluster, creates FUSE groups, crashes nodes mid-run, and
// records everything observable into one trace string: each notification
// delivery (virtual timestamp, observer node, group id), final per-category
// message counts, executed event counts, and the final clock.
std::string RunScenario(uint64_t seed) {
  std::string trace;
  char line[160];

  ClusterConfig cfg;
  cfg.num_nodes = 24;
  cfg.seed = seed;
  cfg.topology.num_as = 30;
  cfg.cost = CostModel::Simulator();
  SimCluster cluster(cfg);
  cluster.Build();

  // Three groups rooted at distinct nodes, each spanning 5 random members.
  const size_t roots[] = {0, 5, 11};
  std::vector<FuseId> ids;
  for (size_t root : roots) {
    std::vector<size_t> members = cluster.PickLiveNodes(6);
    // Make sure the root is not among its own member list.
    std::vector<NodeRef> refs;
    for (size_t m : members) {
      if (m != root && refs.size() < 5) {
        refs.push_back(cluster.RefOf(m));
      }
    }
    cluster.node(root).fuse()->CreateGroup(refs, [&, root](const Status& s, FuseId id) {
      std::snprintf(line, sizeof(line), "create t=%lld root=%zu ok=%d id=%s\n",
                    static_cast<long long>(cluster.sim().Now().ToMicros()), root, s.ok(),
                    id.ToString().c_str());
      trace += line;
      if (s.ok()) {
        ids.push_back(id);
      }
    });
    cluster.sim().RunFor(Duration::Seconds(30));
  }

  // Every live node registers a handler for every group it participates in.
  for (const FuseId& id : ids) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      if (!cluster.IsUp(i) || !cluster.node(i).fuse()->IsParticipant(id)) {
        continue;
      }
      cluster.node(i).fuse()->RegisterFailureHandler(id, [&trace, &line, &cluster, i](FuseId gid) {
        std::snprintf(line, sizeof(line), "notify t=%lld node=%zu id=%s\n",
                      static_cast<long long>(cluster.sim().Now().ToMicros()), i,
                      gid.ToString().c_str());
        trace += line;
      });
    }
  }

  // Crash two nodes (a group root and a likely member) and one explicit
  // signal — all three of the paper's failure classes feed the trace.
  cluster.sim().RunFor(Duration::Seconds(10));
  cluster.Crash(5);
  cluster.sim().RunFor(Duration::Minutes(3));
  cluster.Crash(3);
  cluster.sim().RunFor(Duration::Minutes(3));
  if (!ids.empty() && cluster.IsUp(11)) {
    cluster.node(11).fuse()->SignalFailure(ids.back());
  }
  cluster.sim().RunFor(Duration::Minutes(3));

  // Global accounting: any divergence in message flow or scheduling shows up.
  for (int c = 0; c < static_cast<int>(MsgCategory::kCount); ++c) {
    const auto cat = static_cast<MsgCategory>(c);
    std::snprintf(line, sizeof(line), "msgs %s n=%llu bytes=%llu\n", MsgCategoryName(cat),
                  static_cast<unsigned long long>(cluster.sim().metrics().MessageCount(cat)),
                  static_cast<unsigned long long>(cluster.sim().metrics().ByteCount(cat)));
    trace += line;
  }
  std::snprintf(line, sizeof(line), "events=%llu now=%lld live=%zu\n",
                static_cast<unsigned long long>(cluster.sim().queue().ExecutedCount()),
                static_cast<long long>(cluster.sim().Now().ToMicros()), cluster.NumLiveNodes());
  trace += line;
  return trace;
}

TEST(DeterminismTest, SameSeedSameTrace) {
  const std::string a = RunScenario(0xF00D);
  const std::string b = RunScenario(0xF00D);
  EXPECT_EQ(a, b) << "simulation is not a pure function of its seed";
  // The scenario must actually exercise the notification path.
  EXPECT_NE(a.find("create "), std::string::npos);
  EXPECT_NE(a.find("notify "), std::string::npos);
}

TEST(DeterminismTest, DifferentSeedDifferentTrace) {
  const std::string a = RunScenario(1);
  const std::string b = RunScenario(2);
  EXPECT_NE(a, b) << "seed is not actually feeding the simulation";
}

// Golden trace for the event core's ordering contract: events fire in
// (time, insertion-sequence) order, including among equal-time events that
// land in different wheel levels (and the overflow heap), survive
// cancellation of a neighbor, or are inserted into the currently-executing
// instant from a running callback. The expected string is written out by
// hand from the contract — if the core ever reorders equal-time events, this
// fails with a readable diff.
TEST(DeterminismTest, GoldenSameTimestampOrderingTrace) {
  EventQueue q;
  std::string trace;
  auto rec = [&trace, &q](const char* tag) {
    char line[48];
    std::snprintf(line, sizeof(line), "%s@%lld ", tag, static_cast<long long>(q.Now().ToMicros()));
    trace += line;
  };

  const TimePoint t_near = TimePoint::FromMicros(500);                        // level 0
  const TimePoint t_mid = TimePoint::FromMicros(70 * 1000000);                // level 2
  const TimePoint t_far = TimePoint::FromMicros(int64_t{5} * 3600 * 1000000); // overflow

  // Interleave insertions across the three horizons so that equal-time FIFO
  // order cannot fall out of per-level storage order by accident.
  q.ScheduleAt(t_near, [&] {
    rec("A");
    // Insert into the instant that is currently executing: same timestamp,
    // later sequence => must run after every pending t_near event.
    q.ScheduleAt(t_near, [&] { rec("H"); });
  });
  q.ScheduleAt(t_mid, [&] { rec("B"); });
  q.ScheduleAt(t_near, [&] { rec("C"); });
  q.ScheduleAt(t_far, [&] { rec("D"); });
  q.ScheduleAt(t_mid, [&] { rec("E"); });
  const TimerId cancelled = q.ScheduleAt(t_near, [&] { rec("X"); });
  q.ScheduleAt(t_far, [&] { rec("G"); });
  EXPECT_TRUE(q.Cancel(cancelled));

  q.RunAll();
  EXPECT_EQ(trace,
            "A@500 C@500 H@500 "
            "B@70000000 E@70000000 "
            "D@18000000000 G@18000000000 ");
}

}  // namespace
}  // namespace fuse
