// Determinism regression tripwire: the whole simulator — topology build,
// overlay joins, FUSE group creation, crash-driven notifications — must be a
// pure function of the seed. Two runs with the same seed must produce
// byte-identical event traces (including notification timestamps); runs with
// different seeds must diverge. Every Fig. 7-12 reproduction depends on this.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/sim_cluster.h"

namespace fuse {
namespace {

// Builds a small cluster, creates FUSE groups, crashes nodes mid-run, and
// records everything observable into one trace string: each notification
// delivery (virtual timestamp, observer node, group id), final per-category
// message counts, executed event counts, and the final clock.
std::string RunScenario(uint64_t seed) {
  std::string trace;
  char line[160];

  ClusterConfig cfg;
  cfg.num_nodes = 24;
  cfg.seed = seed;
  cfg.topology.num_as = 30;
  cfg.cost = CostModel::Simulator();
  SimCluster cluster(cfg);
  cluster.Build();

  // Three groups rooted at distinct nodes, each spanning 5 random members.
  const size_t roots[] = {0, 5, 11};
  std::vector<FuseId> ids;
  for (size_t root : roots) {
    std::vector<size_t> members = cluster.PickLiveNodes(6);
    // Make sure the root is not among its own member list.
    std::vector<NodeRef> refs;
    for (size_t m : members) {
      if (m != root && refs.size() < 5) {
        refs.push_back(cluster.RefOf(m));
      }
    }
    cluster.node(root).fuse()->CreateGroup(refs, [&, root](const Status& s, FuseId id) {
      std::snprintf(line, sizeof(line), "create t=%lld root=%zu ok=%d id=%s\n",
                    static_cast<long long>(cluster.sim().Now().ToMicros()), root, s.ok(),
                    id.ToString().c_str());
      trace += line;
      if (s.ok()) {
        ids.push_back(id);
      }
    });
    cluster.sim().RunFor(Duration::Seconds(30));
  }

  // Every live node registers a handler for every group it participates in.
  for (const FuseId& id : ids) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      if (!cluster.IsUp(i) || !cluster.node(i).fuse()->IsParticipant(id)) {
        continue;
      }
      cluster.node(i).fuse()->RegisterFailureHandler(id, [&trace, &line, &cluster, i](FuseId gid) {
        std::snprintf(line, sizeof(line), "notify t=%lld node=%zu id=%s\n",
                      static_cast<long long>(cluster.sim().Now().ToMicros()), i,
                      gid.ToString().c_str());
        trace += line;
      });
    }
  }

  // Crash two nodes (a group root and a likely member) and one explicit
  // signal — all three of the paper's failure classes feed the trace.
  cluster.sim().RunFor(Duration::Seconds(10));
  cluster.Crash(5);
  cluster.sim().RunFor(Duration::Minutes(3));
  cluster.Crash(3);
  cluster.sim().RunFor(Duration::Minutes(3));
  if (!ids.empty() && cluster.IsUp(11)) {
    cluster.node(11).fuse()->SignalFailure(ids.back());
  }
  cluster.sim().RunFor(Duration::Minutes(3));

  // Global accounting: any divergence in message flow or scheduling shows up.
  for (int c = 0; c < static_cast<int>(MsgCategory::kCount); ++c) {
    const auto cat = static_cast<MsgCategory>(c);
    std::snprintf(line, sizeof(line), "msgs %s n=%llu bytes=%llu\n", MsgCategoryName(cat),
                  static_cast<unsigned long long>(cluster.sim().metrics().MessageCount(cat)),
                  static_cast<unsigned long long>(cluster.sim().metrics().ByteCount(cat)));
    trace += line;
  }
  std::snprintf(line, sizeof(line), "events=%llu now=%lld live=%zu\n",
                static_cast<unsigned long long>(cluster.sim().queue().ExecutedCount()),
                static_cast<long long>(cluster.sim().Now().ToMicros()), cluster.NumLiveNodes());
  trace += line;
  return trace;
}

TEST(DeterminismTest, SameSeedSameTrace) {
  const std::string a = RunScenario(0xF00D);
  const std::string b = RunScenario(0xF00D);
  EXPECT_EQ(a, b) << "simulation is not a pure function of its seed";
  // The scenario must actually exercise the notification path.
  EXPECT_NE(a.find("create "), std::string::npos);
  EXPECT_NE(a.find("notify "), std::string::npos);
}

TEST(DeterminismTest, DifferentSeedDifferentTrace) {
  const std::string a = RunScenario(1);
  const std::string b = RunScenario(2);
  EXPECT_NE(a, b) << "seed is not actually feeding the simulation";
}

}  // namespace
}  // namespace fuse
