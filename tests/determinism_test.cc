// Determinism regression tripwire: the whole simulator — topology build,
// overlay joins, FUSE group creation, crash-driven notifications — must be a
// pure function of the seed. Two runs with the same seed must produce
// byte-identical event traces (including notification timestamps); runs with
// different seeds must diverge. Every Fig. 7-12 reproduction depends on this.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/network.h"
#include "runtime/sharded_sim_cluster.h"
#include "runtime/sim_cluster.h"
#include "sim/event_queue.h"
#include "transport/tcp_model.h"

namespace fuse {
namespace {

// Builds a small cluster, creates FUSE groups, crashes nodes mid-run, and
// records everything observable into one trace string: each notification
// delivery (virtual timestamp, observer node, group id), final per-category
// message counts, executed event counts, and the final clock.
std::string RunScenario(uint64_t seed) {
  std::string trace;
  char line[160];

  ClusterConfig cfg;
  cfg.num_nodes = 24;
  cfg.seed = seed;
  cfg.topology.num_as = 30;
  cfg.cost = CostModel::Simulator();
  SimCluster cluster(cfg);
  cluster.Build();

  // Three groups rooted at distinct nodes, each spanning 5 random members.
  const size_t roots[] = {0, 5, 11};
  std::vector<FuseId> ids;
  for (size_t root : roots) {
    std::vector<size_t> members = cluster.PickLiveNodes(6);
    // Make sure the root is not among its own member list.
    std::vector<NodeRef> refs;
    for (size_t m : members) {
      if (m != root && refs.size() < 5) {
        refs.push_back(cluster.RefOf(m));
      }
    }
    cluster.node(root).fuse()->CreateGroup(refs, [&, root](const Status& s, FuseId id) {
      std::snprintf(line, sizeof(line), "create t=%lld root=%zu ok=%d id=%s\n",
                    static_cast<long long>(cluster.sim().Now().ToMicros()), root, s.ok(),
                    id.ToString().c_str());
      trace += line;
      if (s.ok()) {
        ids.push_back(id);
      }
    });
    cluster.sim().RunFor(Duration::Seconds(30));
  }

  // Every live node registers a handler for every group it participates in.
  for (const FuseId& id : ids) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      if (!cluster.IsUp(i) || !cluster.node(i).fuse()->IsParticipant(id)) {
        continue;
      }
      cluster.node(i).fuse()->RegisterFailureHandler(id, [&trace, &line, &cluster, i](FuseId gid) {
        std::snprintf(line, sizeof(line), "notify t=%lld node=%zu id=%s\n",
                      static_cast<long long>(cluster.sim().Now().ToMicros()), i,
                      gid.ToString().c_str());
        trace += line;
      });
    }
  }

  // Crash two nodes (a group root and a likely member) and one explicit
  // signal — all three of the paper's failure classes feed the trace.
  cluster.sim().RunFor(Duration::Seconds(10));
  cluster.Crash(5);
  cluster.sim().RunFor(Duration::Minutes(3));
  cluster.Crash(3);
  cluster.sim().RunFor(Duration::Minutes(3));
  if (!ids.empty() && cluster.IsUp(11)) {
    cluster.node(11).fuse()->SignalFailure(ids.back());
  }
  cluster.sim().RunFor(Duration::Minutes(3));

  // Global accounting: any divergence in message flow or scheduling shows up.
  for (int c = 0; c < static_cast<int>(MsgCategory::kCount); ++c) {
    const auto cat = static_cast<MsgCategory>(c);
    std::snprintf(line, sizeof(line), "msgs %s n=%llu bytes=%llu\n", MsgCategoryName(cat),
                  static_cast<unsigned long long>(cluster.sim().metrics().MessageCount(cat)),
                  static_cast<unsigned long long>(cluster.sim().metrics().ByteCount(cat)));
    trace += line;
  }
  std::snprintf(line, sizeof(line), "events=%llu now=%lld live=%zu\n",
                static_cast<unsigned long long>(cluster.sim().queue().ExecutedCount()),
                static_cast<long long>(cluster.sim().Now().ToMicros()), cluster.NumLiveNodes());
  trace += line;
  return trace;
}

TEST(DeterminismTest, SameSeedSameTrace) {
  const std::string a = RunScenario(0xF00D);
  const std::string b = RunScenario(0xF00D);
  // For comparing traces across builds (e.g. before/after a transport
  // refactor), dump the trace when FUSE_TRACE_OUT names a file.
  if (const char* out = std::getenv("FUSE_TRACE_OUT"); out != nullptr) {
    if (FILE* f = std::fopen(out, "w"); f != nullptr) {
      std::fputs(a.c_str(), f);
      std::fclose(f);
    }
  }
  EXPECT_EQ(a, b) << "simulation is not a pure function of its seed";
  // The scenario must actually exercise the notification path.
  EXPECT_NE(a.find("create "), std::string::npos);
  EXPECT_NE(a.find("notify "), std::string::npos);
}

TEST(DeterminismTest, DifferentSeedDifferentTrace) {
  const std::string a = RunScenario(1);
  const std::string b = RunScenario(2);
  EXPECT_NE(a, b) << "seed is not actually feeding the simulation";
}

// Golden trace for the transport fast path: a fixed scenario driven directly
// through SimFabric — handshakes, warm in-order sends, loss-driven
// retransmission and backoff, a blocked pair breaking the connection, a
// crash with one active connection, and restart with a fresh incarnation.
// The expected string below was generated from the pre-pooling/pre-PayloadBuf
// implementation; any fast-path change (buffer sharing, send-state pooling,
// dense tables) must keep it byte-identical: same RNG draw order, same event
// schedule, same delivery and callback instants. On mismatch the actual
// trace is printed so it can be diffed (or re-blessed deliberately).
std::string RunTransportScenario() {
  std::string trace;
  char line[96];

  TopologyConfig tcfg;
  tcfg.num_as = 30;
  Simulation sim(0xBEEF);
  SimNetwork net{Topology::Generate(tcfg, sim.rng())};
  SimFabric fabric(sim, net, CostModel::Cluster());
  const HostId a = net.AddHost(sim.rng());
  const HostId b = net.AddHost(sim.rng());
  const HostId c = net.AddHost(sim.rng());

  for (const HostId h : {a, b, c}) {
    fabric.TransportFor(h)->RegisterHandler(
        msgtype::kTest, [&trace, &line, &sim, h](const WireMessage& m) {
          std::snprintf(line, sizeof(line), "rx t=%lld %llu<-%llu n=%zu b0=%d\n",
                        static_cast<long long>(sim.Now().ToMicros()),
                        static_cast<unsigned long long>(h.value),
                        static_cast<unsigned long long>(m.from.value), m.payload.size(),
                        m.payload.empty() ? -1 : static_cast<int>(m.payload[0]));
          trace += line;
        });
  }
  int tag = 0;
  auto send = [&](HostId from, HostId to, std::vector<uint8_t> payload) {
    WireMessage m;
    m.to = to;
    m.type = msgtype::kTest;
    m.category = MsgCategory::kApp;
    m.payload = std::move(payload);
    const int t = tag++;
    fabric.TransportFor(from)->Send(std::move(m), [&trace, &line, &sim, t](const Status& s) {
      std::snprintf(line, sizeof(line), "cb t=%lld tag=%d ok=%d\n",
                    static_cast<long long>(sim.Now().ToMicros()), t, s.ok());
      trace += line;
    });
  };

  // Cold connection + a warm in-order burst (serialized by send overhead).
  send(a, b, {1});
  send(a, b, {2});
  send(a, b, {3});
  sim.RunFor(Duration::Seconds(10));
  // Retransmission under loss: RNG draws per attempt, backoff timers.
  net.SetPerLinkLossRate(0.03);
  for (uint8_t i = 10; i < 16; ++i) {
    send(a, b, {i});
  }
  sim.RunFor(Duration::Minutes(5));
  net.SetPerLinkLossRate(0.0);
  // Reverse direction on the cached connection + a payload past any inline
  // buffer + a fresh pair (c,b).
  send(b, a, std::vector<uint8_t>(100, 0x5a));
  send(c, b, {42});
  sim.RunFor(Duration::Seconds(30));
  // Blocked pair: retransmits until the connection breaks.
  net.faults().BlockPair(a, b);
  send(a, b, {77});
  sim.RunFor(Duration::Minutes(10));
  net.faults().UnblockPair(a, b);
  // Crash c mid-send: exactly one connection (b,c) is affected.
  send(c, b, {43});
  fabric.CrashHost(c);
  send(a, c, {44});  // to a dead host: unreachable
  sim.RunFor(Duration::Minutes(10));
  fabric.RestartHost(c);
  fabric.TransportFor(c)->RegisterHandler(msgtype::kTest,
                                          [&trace, &line, &sim](const WireMessage& m) {
                                            std::snprintf(
                                                line, sizeof(line), "rx2 t=%lld b0=%d\n",
                                                static_cast<long long>(sim.Now().ToMicros()),
                                                static_cast<int>(m.payload[0]));
                                            trace += line;
                                          });
  send(c, b, {45});
  send(a, c, {46});
  sim.RunFor(Duration::Minutes(5));

  for (int cat = 0; cat < static_cast<int>(MsgCategory::kCount); ++cat) {
    const auto mc = static_cast<MsgCategory>(cat);
    if (sim.metrics().MessageCount(mc) == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "msgs %s n=%llu bytes=%llu\n", MsgCategoryName(mc),
                  static_cast<unsigned long long>(sim.metrics().MessageCount(mc)),
                  static_cast<unsigned long long>(sim.metrics().ByteCount(mc)));
    trace += line;
  }
  std::snprintf(line, sizeof(line), "events=%llu now=%lld\n",
                static_cast<unsigned long long>(sim.queue().ExecutedCount()),
                static_cast<long long>(sim.Now().ToMicros()));
  trace += line;
  return trace;
}

TEST(DeterminismTest, GoldenTransportFastPathTrace) {
  const std::string trace = RunTransportScenario();
  const std::string golden =
      "rx t=172602 1<-0 n=1 b0=1\n"
      "rx t=176502 1<-0 n=1 b0=2\n"
      "rx t=180402 1<-0 n=1 b0=3\n"
      "cb t=228836 tag=0 ok=1\n"
      "cb t=232736 tag=1 ok=1\n"
      "cb t=236636 tag=2 ok=1\n"
      "cb t=10120268 tag=4 ok=1\n"
      "cb t=11124168 tag=5 ok=1\n"
      "cb t=11128068 tag=6 ok=1\n"
      "cb t=11135868 tag=8 ok=1\n"
      "rx t=13060134 1<-0 n=1 b0=10\n"
      "rx t=13060134 1<-0 n=1 b0=11\n"
      "rx t=13060134 1<-0 n=1 b0=12\n"
      "rx t=13060134 1<-0 n=1 b0=13\n"
      "rx t=13060134 1<-0 n=1 b0=14\n"
      "rx t=13060134 1<-0 n=1 b0=15\n"
      "cb t=13116368 tag=3 ok=1\n"
      "cb t=17131968 tag=7 ok=1\n"
      "rx t=310060134 0<-1 n=100 b0=90\n"
      "cb t=310116368 tag=9 ok=1\n"
      "rx t=310147252 1<-2 n=1 b0=42\n"
      "cb t=310195036 tag=10 ok=1\n"
      "cb t=403003900 tag=11 ok=0\n"
      "cb t=940000000 tag=12 ok=0\n"
      "cb t=971000000 tag=13 ok=0\n"
      "rx2 t=1540035880 b0=46\n"
      "cb t=1540046540 tag=15 ok=1\n"
      "rx t=1540147252 1<-2 n=1 b0=45\n"
      "cb t=1540195036 tag=14 ok=1\n"
      "msgs app n=27 bytes=1422\n"
      "msgs transport_control n=13 bytes=624\n"
      "events=64 now=1840000000\n";
  if (trace != golden) {
    std::fprintf(stderr, "--- actual transport trace ---\n%s--- end ---\n", trace.c_str());
  }
  EXPECT_EQ(trace, golden);
}

// The sharded parallel simulator's determinism contract: the trace is a pure
// function of (seed, shard count) — the worker-thread count decides only how
// many shards execute concurrently, never what they execute. Same scenario
// shape as RunScenario above, expressed through the harness's *InContext
// vocabulary so every observation is recorded on the control thread (the
// sharded backend replays those upcalls at epoch barriers in canonical
// order; recording from raw protocol callbacks would race across workers).
std::string RunShardedScenario(uint64_t seed, int threads) {
  std::string trace;
  char line[160];

  ClusterConfig cfg;
  cfg.num_nodes = 24;
  cfg.seed = seed;
  cfg.topology.num_as = 30;
  cfg.cost = CostModel::Simulator();
  cfg.num_shards = 8;
  cfg.threads = threads;
  ShardedSimCluster cluster(cfg);
  cluster.Build();

  const size_t roots[] = {0, 5, 11};
  std::vector<FuseId> ids;
  for (size_t root : roots) {
    std::vector<size_t> members = cluster.PickLiveNodes(6);
    std::vector<NodeRef> refs;
    for (size_t m : members) {
      if (m != root && refs.size() < 5) {
        refs.push_back(cluster.RefOf(m));
      }
    }
    cluster.CreateGroupInContext(root, std::move(refs),
                                 [&, root](const Status& s, FuseId id) {
                                   std::snprintf(line, sizeof(line),
                                                 "create t=%lld root=%zu ok=%d id=%s\n",
                                                 static_cast<long long>(cluster.env().Now().ToMicros()),
                                                 root, s.ok(), id.ToString().c_str());
                                   trace += line;
                                   if (s.ok()) {
                                     ids.push_back(id);
                                   }
                                 });
    cluster.AdvanceFor(Duration::Seconds(30));
  }

  for (const FuseId& id : ids) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      if (!cluster.IsUp(i) || !cluster.node(i).fuse()->IsParticipant(id)) {
        continue;
      }
      cluster.WatchGroupMemberInContext(i, id, [&trace, &line, &cluster, i, id] {
        std::snprintf(line, sizeof(line), "notify t=%lld node=%zu id=%s\n",
                      static_cast<long long>(cluster.env().Now().ToMicros()), i,
                      id.ToString().c_str());
        trace += line;
      });
    }
  }

  cluster.AdvanceFor(Duration::Seconds(10));
  cluster.Crash(5);
  cluster.AdvanceFor(Duration::Minutes(3));
  cluster.Crash(3);
  cluster.AdvanceFor(Duration::Minutes(3));
  if (!ids.empty() && cluster.IsUp(11)) {
    cluster.node(11).fuse()->SignalFailure(ids.back());
  }
  cluster.AdvanceFor(Duration::Minutes(3));

  for (int c = 0; c < static_cast<int>(MsgCategory::kCount); ++c) {
    const auto cat = static_cast<MsgCategory>(c);
    std::snprintf(line, sizeof(line), "msgs %s n=%llu bytes=%llu\n", MsgCategoryName(cat),
                  static_cast<unsigned long long>(cluster.env().metrics().MessageCount(cat)),
                  static_cast<unsigned long long>(cluster.env().metrics().ByteCount(cat)));
    trace += line;
  }
  std::snprintf(line, sizeof(line), "events=%llu now=%lld live=%zu lookahead=%lld\n",
                static_cast<unsigned long long>(cluster.sim().TotalExecuted()),
                static_cast<long long>(cluster.env().Now().ToMicros()), cluster.NumLiveNodes(),
                static_cast<long long>(cluster.sim().lookahead().ToMicros()));
  trace += line;
  return trace;
}

TEST(ShardedDeterminismTest, TraceByteIdenticalAcrossThreadCounts) {
  const std::string t1 = RunShardedScenario(0xF00D, 1);
  const std::string t2 = RunShardedScenario(0xF00D, 2);
  const std::string t8 = RunShardedScenario(0xF00D, 8);
  EXPECT_EQ(t1, t2) << "2 workers diverged from sequential";
  EXPECT_EQ(t1, t8) << "8 workers diverged from sequential";
  // The scenario must actually exercise group creation and notification.
  EXPECT_NE(t1.find("create "), std::string::npos);
  EXPECT_NE(t1.find("notify "), std::string::npos);
}

TEST(ShardedDeterminismTest, SameSeedSameTrace) {
  EXPECT_EQ(RunShardedScenario(0xABCD, 2), RunShardedScenario(0xABCD, 2));
}

TEST(ShardedDeterminismTest, DifferentSeedDifferentTrace) {
  EXPECT_NE(RunShardedScenario(1, 2), RunShardedScenario(2, 2));
}

// Golden trace for the event core's ordering contract: events fire in
// (time, insertion-sequence) order, including among equal-time events that
// land in different wheel levels (and the overflow heap), survive
// cancellation of a neighbor, or are inserted into the currently-executing
// instant from a running callback. The expected string is written out by
// hand from the contract — if the core ever reorders equal-time events, this
// fails with a readable diff.
TEST(DeterminismTest, GoldenSameTimestampOrderingTrace) {
  EventQueue q;
  std::string trace;
  auto rec = [&trace, &q](const char* tag) {
    char line[48];
    std::snprintf(line, sizeof(line), "%s@%lld ", tag, static_cast<long long>(q.Now().ToMicros()));
    trace += line;
  };

  const TimePoint t_near = TimePoint::FromMicros(500);                        // level 0
  const TimePoint t_mid = TimePoint::FromMicros(70 * 1000000);                // level 2
  const TimePoint t_far = TimePoint::FromMicros(int64_t{5} * 3600 * 1000000); // overflow

  // Interleave insertions across the three horizons so that equal-time FIFO
  // order cannot fall out of per-level storage order by accident.
  q.ScheduleAt(t_near, [&] {
    rec("A");
    // Insert into the instant that is currently executing: same timestamp,
    // later sequence => must run after every pending t_near event.
    q.ScheduleAt(t_near, [&] { rec("H"); });
  });
  q.ScheduleAt(t_mid, [&] { rec("B"); });
  q.ScheduleAt(t_near, [&] { rec("C"); });
  q.ScheduleAt(t_far, [&] { rec("D"); });
  q.ScheduleAt(t_mid, [&] { rec("E"); });
  const TimerId cancelled = q.ScheduleAt(t_near, [&] { rec("X"); });
  q.ScheduleAt(t_far, [&] { rec("G"); });
  EXPECT_TRUE(q.Cancel(cancelled));

  q.RunAll();
  EXPECT_EQ(trace,
            "A@500 C@500 H@500 "
            "B@70000000 E@70000000 "
            "D@18000000000 G@18000000000 ");
}

}  // namespace
}  // namespace fuse
